module xdgp

go 1.24
