#!/usr/bin/env bash
# Coverage gate: runs the internal packages with -coverprofile and fails
# when total statement coverage drops below the committed baseline
# (ci/coverage-baseline.txt) minus a small tolerance for run-to-run
# variance in concurrent paths.
#
# Raise the baseline after landing tests that lift coverage:
#
#   ./ci/coverage.sh --update
#
# which re-measures and rewrites ci/coverage-baseline.txt.
set -euo pipefail
cd "$(dirname "$0")/.."

TOLERANCE=${TOLERANCE:-0.5} # percentage points

profile=$(mktemp)
trap 'rm -f "$profile"' EXIT

go test -coverprofile="$profile" ./internal/... >/dev/null
total=$(go tool cover -func="$profile" | awk '/^total:/ {gsub(/%/, "", $3); print $3}')

if [ "${1:-}" = "--update" ]; then
  echo "$total" > ci/coverage-baseline.txt
  echo "coverage baseline updated to ${total}%"
  exit 0
fi

baseline=$(cat ci/coverage-baseline.txt)
floor=$(awk -v b="$baseline" -v t="$TOLERANCE" 'BEGIN { printf "%.1f", b - t }')

echo "total coverage: ${total}% (baseline ${baseline}%, floor ${floor}%)"
if awk -v c="$total" -v f="$floor" 'BEGIN { exit !(c < f) }'; then
  echo "FAIL: coverage ${total}% fell below the floor ${floor}%" >&2
  echo "Either add tests or, for a justified drop, update ci/coverage-baseline.txt." >&2
  exit 1
fi
echo "coverage gate OK"
