#!/usr/bin/env bash
# End-to-end smoke test of the load-generation harness against a live
# daemon: build apartd + gengraph + loadgen, stream a generated graph
# through BOTH ingest planes (JSON and binary) with a concurrent read
# mix and a watch stream, and require a clean report each time — every
# offered mutation accepted, zero hard errors, zero read errors, and the
# ingest queue fully drained. CI runs this on every push/PR (the
# "loadgen smoke" job); the nightly workflow runs the same harness at
# 1M-vertex scale. Needs only bash and jq beyond the Go toolchain.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=${ADDR:-127.0.0.1:18293}
BINADDR=${BINADDR:-127.0.0.1:18294}
WORK=$(mktemp -d)
PID=""
cleanup() {
  [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/apartd" ./cmd/apartd
go build -o "$WORK/gengraph" ./cmd/gengraph
go build -o "$WORK/loadgen" ./cmd/loadgen

echo "== generate stream"
"$WORK/gengraph" -ba 20000:3 -stream -seed 7 -out "$WORK/ba.edges"
EDGES=$(grep -vc '^#' "$WORK/ba.edges")

echo "== start daemon (both planes, workload term active)"
"$WORK/apartd" -addr "$ADDR" -binary-addr "$BINADDR" -k 4 -seed 7 -tick 20ms \
  -workload-weight 4 -heat-sample 1 \
  >"$WORK/apartd.log" 2>&1 &
PID=$!
for _ in $(seq 1 100); do
  if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done

check_report() {
  local mode=$1 report=$2
  local offered accepted errors read_errors drained
  offered=$(jq -r .mutations_offered "$report")
  accepted=$(jq -r .mutations_accepted "$report")
  errors=$(jq -r '.errors + .read_errors' "$report")
  drained=$(jq -r .drained "$report")
  if [ "$offered" != "$EDGES" ] || [ "$accepted" != "$EDGES" ] \
    || [ "$errors" != 0 ] || [ "$drained" != true ]; then
    echo "$mode report violates the smoke contract:" >&2
    cat "$report" >&2
    return 1
  fi
  echo "$mode OK: $(jq -r '.mutations_per_sec | floor' "$report") mut/s," \
    "read p99 $(jq -r .read_p99_ms "$report") ms"
}

echo "== replay over the JSON plane (with read mix + watch)"
"$WORK/loadgen" -mode json -target "http://$ADDR" -in "$WORK/ba.edges" \
  -batch 2048 -conns 4 -read-qps 500 -read-batch 16 -watch 1 \
  -drain-wait 2m -quiet >"$WORK/json.report"
check_report json "$WORK/json.report"

echo "== replay over the binary plane (with read mix + watch)"
"$WORK/loadgen" -mode binary -binary-target "$BINADDR" -target "http://$ADDR" \
  -in "$WORK/ba.edges" -batch 2048 -conns 4 -read-qps 500 -watch 1 \
  -drain-wait 2m -quiet >"$WORK/binary.report"
check_report binary "$WORK/binary.report"

echo "== zipf flash-crowd read mix (read-only, shifting hotset)"
"$WORK/loadgen" -target "http://$ADDR" -read-only -read-max-id 19999 \
  -read-qps 2000 -read-batch 32 -read-zipf 1.2 -hotset-shift-every 2s \
  -duration 5s -quiet >"$WORK/zipf.report"
ZIPF=$(jq -r .read_zipf "$WORK/zipf.report")
ZREADS=$(jq -r .reads "$WORK/zipf.report")
ZERRS=$(jq -r .read_errors "$WORK/zipf.report")
ZSHIFTS=$(jq -r .hotset_shifts "$WORK/zipf.report")
if [ "$ZIPF" != 1.2 ] || [ "$ZREADS" -le 0 ] || [ "$ZERRS" != 0 ] \
  || [ "$ZSHIFTS" -lt 1 ]; then
  echo "zipf report violates the smoke contract:" >&2
  cat "$WORK/zipf.report" >&2
  exit 1
fi
echo "zipf OK: $ZREADS skewed reads, $ZSHIFTS hotset shift(s), zero errors"

echo "== heat pipeline saw the skewed reads"
STATS=$(curl -fsS "http://$ADDR/v1/stats")
if [ "$(jq -r .heat_recording <<<"$STATS")" != true ] \
  || [ "$(jq -r .heat_samples <<<"$STATS")" -le 0 ] \
  || [ "$(jq -r .heat_folds <<<"$STATS")" -le 0 ]; then
  echo "heat stats disagree with the skewed read mix: $STATS" >&2
  exit 1
fi
echo "heat OK: $(jq -r .heat_samples <<<"$STATS") samples," \
  "$(jq -r .heat_folds <<<"$STATS") folds," \
  "$(jq -r .heat_hot_vertices <<<"$STATS") hot vertices"

echo "== daemon absorbed both replays"
STATS=$(curl -fsS "http://$ADDR/v1/stats")
INGESTED=$(jq -r .mutations_ingested <<<"$STATS")
PENDING=$(jq -r .mutations_pending <<<"$STATS")
if [ "$INGESTED" != $((2 * EDGES)) ] || [ "$PENDING" != 0 ]; then
  echo "daemon stats disagree with the reports: $STATS" >&2
  exit 1
fi
curl -fsS "http://$ADDR/metrics" \
  | grep -E '^apartd_(binary_frames_total|ingest_rejected_total|watch_dropped_total)' >&2

kill -TERM "$PID"
wait "$PID" || true
PID=""
echo "loadgen smoke OK: $EDGES mutations through each plane, clean reports"
