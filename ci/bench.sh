#!/usr/bin/env bash
# Runs the migration-sweep benchmark set that CI gates on, in a fixed
# configuration so results are comparable with ci/bench-baseline.txt.
#
# Regenerate the committed baseline (after an intentional perf change, a
# benchmark rename, or reference-hardware drift) with:
#
#   ./ci/bench.sh > ci/bench-baseline.txt
#
# ideally on the same runner class CI uses. The gate threshold (15%) is
# deliberately loose to absorb runner-to-runner noise; benchstat output in
# the CI artifact gives the statistically annotated picture.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME=${BENCHTIME:-0.5s}
COUNT=${COUNT:-4}

# Per-iteration sweep cost, sequential vs sharded, plus the edge-balanced
# extension (internal/core).
go test -run='^$' -bench 'BenchmarkStepPowerLaw|BenchmarkStepEdgeBalanced' \
  -benchtime="$BENCHTIME" -count="$COUNT" ./internal/core
# Converged-graph churn absorption: the active-set scheduler's headline,
# at both 10k and 100k vertices (the pattern is unanchored, so n=10000
# matches n=100000 too — deliberately: the 100k acceptance number gates
# PRs as well; the nightly workflow re-runs it with more repetitions).
go test -run='^$' -bench 'BenchmarkStepConvergedChurn/n=10000' \
  -benchtime="$BENCHTIME" -count="$COUNT" ./internal/core
# Repository-level micro-benchmarks of the heuristic iteration.
go test -run='^$' -bench 'BenchmarkCoreIteration' \
  -benchtime="$BENCHTIME" -count="$COUNT" .
# Serving plane: placement read throughput while adaptation is actively
# migrating — locked (pre-serving-plane) vs routing-snapshot paths, and
# the batch lookup. Tracked in the baseline for the benchstat report but
# NOT gated by cmd/benchgate: contention benchmarks are too
# runner-sensitive for a hard ratio gate (the ≥5× snapshot-vs-locked
# acceptance property is asserted by its ~350× measured margin, not a
# CI threshold).
go test -run='^$' -bench 'BenchmarkPlacementUnderAdaptation|BenchmarkBatchLookupUnderAdaptation' \
  -benchtime="$BENCHTIME" -count="$COUNT" ./internal/server
# Read-path heat guard: what workload-heat sampling adds to a single
# placement lookup, recording off vs on. Uncontended and steady, so this
# pair IS gated — the heat table must not slow the serving plane.
go test -run='^$' -bench 'BenchmarkPlacementHeat' \
  -benchtime="$BENCHTIME" -count="$COUNT" ./internal/server
# Streaming analytics: absorbing one churn batch (100 edge rewires on a
# converged BA-10k instance) with the self-repairing connected-components
# program — the incremental re-flood path's per-batch cost. Gated.
go test -run='^$' -bench 'BenchmarkStreamingCCChurn' \
  -benchtime="$BENCHTIME" -count="$COUNT" ./internal/apps
