#!/usr/bin/env bash
# End-to-end smoke test of apartd cluster mode: three real daemon
# processes mesh over the cluster RPC plane (manual tick mode) and must
# compute byte-identical placements to a single-process daemon running
# Parallelism=3 on the same seed and stream. Then one shard is
# SIGTERMed, restarted from a deliberately stale checkpoint, and must
# replay the missed rounds from its peers' journals back to identical
# state before live ticks resume for everyone. CI runs this on every
# push/PR (the "cluster smoke" job); it needs only bash, curl and jq.
set -euo pipefail
cd "$(dirname "$0")/.."

HTTP0=${HTTP0:-127.0.0.1:19290}
HTTP1=${HTTP1:-127.0.0.1:19291}
HTTP2=${HTTP2:-127.0.0.1:19292}
HTTPR=${HTTPR:-127.0.0.1:19293}
CL0=127.0.0.1:19300
CL1=127.0.0.1:19301
CL2=127.0.0.1:19302
PEERS="$CL0,$CL1,$CL2"
WORK=$(mktemp -d)
PIDS=()
cleanup() {
  for p in "${PIDS[@]}"; do kill "$p" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$WORK" 2>/dev/null || true
}
trap cleanup EXIT

SNAP="$WORK/shard2.snap"
N=120 # ring size; k=4 keeps per-pair quotas non-zero so vertices migrate

go build -o "$WORK/apartd" ./cmd/apartd

start_shard() { # id http_addr cluster_addr extra...
  local id=$1 http=$2 cl=$3
  shift 3
  "$WORK/apartd" -addr "$http" -k 4 -seed 7 -tick 0 \
    -cluster-addr "$cl" -peers "$PEERS" -shard-id "$id" -shards 3 \
    -drain-ticks 0 "$@" >>"$WORK/shard$id.log" 2>&1 &
  PIDS+=($!)
}

wait_healthy() {
  local addr=$1
  for _ in $(seq 1 200); do
    if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "daemon on $addr did not become healthy" >&2
  cat "$WORK"/*.log >&2 || true
  return 1
}

post_batch() { # addr lo hi
  local addr=$1 lo=$2 hi=$3 muts="" v w
  for v in $(seq "$lo" "$((hi - 1))"); do
    w=$(((v + 1) % N))
    muts+="{\"op\":\"add-edge\",\"u\":$v,\"v\":$w},"
  done
  muts+="{\"op\":\"add-edge\",\"u\":$lo,\"v\":$(((lo + N / 2) % N))}"
  curl -fsS -X POST "http://$addr/v1/mutations" \
    -H 'Content-Type: application/json' \
    -d "{\"mutations\":[$muts]}" >/dev/null
}

# One global tick: all live shards concurrently (cluster rounds are
# barriers) plus the single-process reference. Prints shard 0's result.
tick_round() {
  curl -fsS --max-time 30 -X POST "http://$HTTP0/v1/tick" -o "$WORK/tick0.json" &
  local c0=$!
  curl -fsS --max-time 30 -X POST "http://$HTTP1/v1/tick" -o /dev/null &
  local c1=$!
  curl -fsS --max-time 30 -X POST "http://$HTTP2/v1/tick" -o /dev/null &
  local c2=$!
  wait "$c0" "$c1" "$c2"
  curl -fsS --max-time 30 -X POST "http://$HTTPR/v1/tick" >/dev/null
  cat "$WORK/tick0.json"
}

tick_until_quiescent() {
  for _ in $(seq 1 60); do
    local res
    res=$(tick_round)
    if [ "$(jq -r .converged <<<"$res")" = true ] &&
      [ "$(jq -r .more_pending <<<"$res")" = false ]; then return 0; fi
  done
  echo "cluster did not converge; last tick: $res" >&2
  return 1
}

dump_placements() { # addr out
  local addr=$1 out=$2 v
  : >"$out"
  for v in $(seq 0 $((N - 1))); do
    curl -fsS "http://$addr/v1/placement/$v" | jq -c '{vertex, partition}' >>"$out"
  done
}

# post_chords adds fresh (v, v+17 mod N) edges — new topology, so the
# ticks that absorb them run real step rounds, not just the batch round.
post_chords() { # addr lo hi
  local addr=$1 lo=$2 hi=$3 muts="" v
  for v in $(seq "$lo" "$((hi - 1))"); do
    muts+="{\"op\":\"add-edge\",\"u\":$v,\"v\":$(((v + 17) % N))},"
  done
  curl -fsS -X POST "http://$addr/v1/mutations" \
    -H 'Content-Type: application/json' \
    -d "{\"mutations\":[${muts%,}]}" >/dev/null
}

rounds_of() { curl -fsS "http://$1/v1/stats" | jq -r .cluster.rounds; }

echo "== start 3-shard cluster + single-process reference"
start_shard 0 "$HTTP0" "$CL0"
start_shard 1 "$HTTP1" "$CL1"
start_shard 2 "$HTTP2" "$CL2" -checkpoint "$SNAP"
"$WORK/apartd" -addr "$HTTPR" -k 4 -seed 7 -tick 0 -parallel 3 \
  >"$WORK/ref.log" 2>&1 &
PIDS+=($!)
for a in "$HTTP0" "$HTTP1" "$HTTP2" "$HTTPR"; do wait_healthy "$a"; done

echo "== stream ring, tick to convergence"
post_batch "$HTTP0" 0 "$N"
post_batch "$HTTPR" 0 "$N"
tick_until_quiescent

echo "== diff all shards against the single-process reference"
dump_placements "$HTTPR" "$WORK/ref.jsonl"
for i in 0 1 2; do
  addr_var="HTTP$i"
  dump_placements "${!addr_var}" "$WORK/shard$i.jsonl"
  if ! diff -u "$WORK/ref.jsonl" "$WORK/shard$i.jsonl" >&2; then
    echo "shard $i placements diverge from single-process reference" >&2
    exit 1
  fi
done
HASH0=$(curl -fsS "http://$HTTP0/v1/stats" | jq -r .cluster.state_hash)
for i in 1 2; do
  addr_var="HTTP$i"
  h=$(curl -fsS "http://${!addr_var}/v1/stats" | jq -r .cluster.state_hash)
  if [ "$h" != "$HASH0" ]; then
    echo "shard $i state hash $h != shard 0 $HASH0" >&2
    exit 1
  fi
done

echo "== checkpoint shard 2, keep a stale copy, then keep mutating"
curl -fsS -X POST "http://$HTTP2/v1/checkpoint" | jq . >&2
cp "$SNAP" "$SNAP.stale"
post_chords "$HTTP0" 0 $((N / 3))
post_chords "$HTTPR" 0 $((N / 3))
tick_until_quiescent

echo "== SIGTERM shard 2; survivors keep serving reads"
kill -TERM "${PIDS[2]}"
wait "${PIDS[2]}" || { echo "shard 2 exited non-zero" >&2; cat "$WORK/shard2.log" >&2; exit 1; }
curl -fsS "http://$HTTP0/v1/placement/1" >/dev/null
curl -fsS "http://$HTTP1/v1/placement/1" >/dev/null

echo "== restart shard 2 from the STALE checkpoint; journal replay must catch it up"
start_shard 2 "$HTTP2" "$CL2" -checkpoint "$SNAP" -restore "$SNAP.stale"
wait_healthy "$HTTP2"
TARGET=$(rounds_of "$HTTP0")
for _ in $(seq 1 100); do
  [ "$(rounds_of "$HTTP2")" = "$TARGET" ] && break
  curl -fsS --max-time 60 -X POST "http://$HTTP2/v1/tick" >/dev/null
done
if [ "$(rounds_of "$HTTP2")" != "$TARGET" ]; then
  echo "restarted shard stuck at round $(rounds_of "$HTTP2"), cluster at $TARGET" >&2
  exit 1
fi
REPLAYED=$(curl -fsS "http://$HTTP2/metrics" | awk '/^apartd_cluster_replayed_rounds_total/{print $2}')
if [ "${REPLAYED:-0}" = 0 ]; then
  echo "restarted shard replayed no rounds — the journal path never ran" >&2
  exit 1
fi
dump_placements "$HTTP2" "$WORK/shard2-reborn.jsonl"
dump_placements "$HTTP0" "$WORK/shard0-now.jsonl"
if ! diff -u "$WORK/shard0-now.jsonl" "$WORK/shard2-reborn.jsonl" >&2; then
  echo "restarted shard diverges from survivors after replay" >&2
  exit 1
fi

echo "== re-converge live: one more batch through all three shards"
post_chords "$HTTP1" $((N / 3)) $((2 * N / 3))
post_chords "$HTTPR" $((N / 3)) $((2 * N / 3))
tick_until_quiescent
dump_placements "$HTTPR" "$WORK/ref-final.jsonl"
for i in 0 1 2; do
  addr_var="HTTP$i"
  dump_placements "${!addr_var}" "$WORK/final$i.jsonl"
  if ! diff -u "$WORK/ref-final.jsonl" "$WORK/final$i.jsonl" >&2; then
    echo "shard $i diverges from reference after rejoin" >&2
    exit 1
  fi
done

echo "cluster smoke OK: 3 shards byte-identical to single-process, rejoin replayed $REPLAYED rounds"
