#!/usr/bin/env bash
# Tier-1 smoke of the streaming analytics suite: runs the "apps"
# experiment in miniature — all three streaming programs (connected
# components, SSSP, PageRank) over a churning BA graph, adaptive vs
# static partitioning. Every cell is oracle-checked inside the driver
# (drained and diffed against a from-scratch recompute), so a green run
# certifies correct answers under churn with migrations in flight, not
# just that the binary ran. The nightly analytics-churn job repeats this
# at 100k-vertex scale.
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go run ./cmd/experiments -run apps -quick
go run ./cmd/experiments -run apps -quick -incremental
