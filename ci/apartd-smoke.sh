#!/usr/bin/env bash
# End-to-end smoke test of the streaming partition daemon: build apartd,
# stream a small mutation sequence over HTTP, checkpoint, SIGTERM-drain,
# restart from the snapshot, and require byte-identical placements for
# every vertex. CI runs this on every push/PR (the "daemon smoke" job);
# it needs only bash, curl and jq.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=${ADDR:-127.0.0.1:18291}
WORK=$(mktemp -d)
PID=""
cleanup() {
  [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

SNAP="$WORK/state.snap"
# Ring size streamed below. Sized so per-pair migration quotas
# ⌊free/(k−1)⌋ are non-zero at k=4 and vertices actually migrate before
# the checkpoint — a restart must reproduce non-trivial RNG positions,
# not just a static placement.
N=200

go build -o "$WORK/apartd" ./cmd/apartd

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "apartd did not become healthy on $ADDR" >&2
  [ -f "$WORK/apartd.log" ] && cat "$WORK/apartd.log" >&2
  return 1
}

# Batch i of 3: a third of the ring edges plus a few chords.
post_batch() {
  local lo=$1 hi=$2 muts="" v w
  for v in $(seq "$lo" "$((hi - 1))"); do
    w=$(((v + 1) % N))
    muts+="{\"op\":\"add-edge\",\"u\":$v,\"v\":$w},"
  done
  muts+="{\"op\":\"add-edge\",\"u\":$lo,\"v\":$(((lo + N / 2) % N))}"
  curl -fsS -X POST "http://$ADDR/v1/mutations" \
    -H 'Content-Type: application/json' \
    -d "{\"mutations\":[$muts]}" >/dev/null
}

# Poll /v1/stats until the queue is drained and the heuristic converges.
wait_quiescent() {
  for _ in $(seq 1 200); do
    local stats pending converged
    stats=$(curl -fsS "http://$ADDR/v1/stats")
    pending=$(jq -r .mutations_pending <<<"$stats")
    converged=$(jq -r .converged <<<"$stats")
    if [ "$pending" = 0 ] && [ "$converged" = true ]; then return 0; fi
    sleep 0.1
  done
  echo "daemon did not quiesce; last stats: $stats" >&2
  return 1
}

dump_placements() {
  local out=$1 v
  : >"$out"
  for v in $(seq 0 $((N - 1))); do
    curl -fsS "http://$ADDR/v1/placement/$v" | jq -c . >>"$out"
  done
}

echo "== start fresh daemon"
"$WORK/apartd" -addr "$ADDR" -k 4 -seed 7 -tick 50ms -checkpoint "$SNAP" \
  >"$WORK/apartd.log" 2>&1 &
PID=$!
wait_healthy

echo "== stream mutations"
post_batch 0 70
post_batch 70 140
post_batch 140 200
wait_quiescent

echo "== checkpoint + placements before restart"
curl -fsS -X POST "http://$ADDR/v1/checkpoint" | jq .
dump_placements "$WORK/before.jsonl"
curl -fsS "http://$ADDR/metrics" | grep -E '^apartd_(ticks_total|mutations_ingested_total|vertices)' >&2

echo "== SIGTERM drain"
kill -TERM "$PID"
wait "$PID" || { echo "apartd exited non-zero" >&2; cat "$WORK/apartd.log" >&2; exit 1; }
PID=""

echo "== restart from snapshot"
"$WORK/apartd" -addr "$ADDR" -restore "$SNAP" -tick 50ms -checkpoint "$SNAP" \
  >>"$WORK/apartd.log" 2>&1 &
PID=$!
wait_healthy
dump_placements "$WORK/after.jsonl"

echo "== diff placements"
if ! diff -u "$WORK/before.jsonl" "$WORK/after.jsonl"; then
  echo "placements diverged across checkpoint/restart" >&2
  exit 1
fi

STATS=$(curl -fsS "http://$ADDR/v1/stats")
VERTICES=$(jq -r .vertices <<<"$STATS")
if [ "$VERTICES" != "$N" ]; then
  echo "restored daemon reports $VERTICES vertices, want $N" >&2
  exit 1
fi

kill -TERM "$PID"
wait "$PID" || true
PID=""
echo "daemon smoke OK: $N placements identical across restart"
