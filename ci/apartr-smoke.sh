#!/usr/bin/env bash
# End-to-end smoke test of the read-replica plane: build apartd and
# apartr, stream mutations into the primary, bring up a replica, require
# identical placements from both at the same epoch, then kill and
# restart the primary and require the replica to detect the new
# incarnation (apartr_resyncs_total ≥ 1) and re-converge to it. CI runs
# this on every push/PR (the "replica smoke" job); it needs only bash,
# curl and jq. docs/REPLICATION.md specifies the protocol under test.
set -euo pipefail
cd "$(dirname "$0")/.."

PRIMARY=${PRIMARY:-127.0.0.1:18293}
REPLICA=${REPLICA:-127.0.0.1:18294}
WORK=$(mktemp -d)
DPID=""
RPID=""
cleanup() {
  [ -n "$RPID" ] && kill "$RPID" 2>/dev/null || true
  [ -n "$DPID" ] && kill "$DPID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

N=200

go build -o "$WORK/apartd" ./cmd/apartd
go build -o "$WORK/apartr" ./cmd/apartr

wait_healthy() {
  local addr=$1 name=$2 log=$3
  for _ in $(seq 1 150); do
    if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "$name did not become healthy on $addr" >&2
  [ -f "$log" ] && cat "$log" >&2
  return 1
}

# Batch of ring edges [lo,hi) plus one chord, posted to the primary.
post_batch() {
  local lo=$1 hi=$2 muts="" v w
  for v in $(seq "$lo" "$((hi - 1))"); do
    w=$(((v + 1) % N))
    muts+="{\"op\":\"add-edge\",\"u\":$v,\"v\":$w},"
  done
  muts+="{\"op\":\"add-edge\",\"u\":$lo,\"v\":$(((lo + N / 2) % N))}"
  curl -fsS -X POST "http://$PRIMARY/v1/mutations" \
    -H 'Content-Type: application/json' \
    -d "{\"mutations\":[$muts]}" >/dev/null
}

# Poll the primary's /v1/stats until the queue drains and it converges.
wait_quiescent() {
  for _ in $(seq 1 200); do
    local stats pending converged
    stats=$(curl -fsS "http://$PRIMARY/v1/stats")
    pending=$(jq -r .mutations_pending <<<"$stats")
    converged=$(jq -r .converged <<<"$stats")
    if [ "$pending" = 0 ] && [ "$converged" = true ]; then return 0; fi
    sleep 0.1
  done
  echo "primary did not quiesce; last stats: $stats" >&2
  return 1
}

# Poll the replica until its served epoch matches the primary's routing
# epoch (the primary must be quiescent first). Epoch numbers alone are
# ambiguous across primary incarnations — a replica still serving an old
# incarnation's epoch-3 table "matches" a new primary that also reached
# epoch 3 — so callers that just restarted the primary must first
# wait_resynced to know the replica is on the new incarnation.
wait_caught_up() {
  local want got
  for _ in $(seq 1 200); do
    want=$(curl -fsS "http://$PRIMARY/v1/stats" | jq -r .routing_epoch)
    got=$(curl -fsS "http://$REPLICA/v1/stats" | jq -r .epoch)
    if [ "$got" = "$want" ]; then return 0; fi
    sleep 0.1
  done
  echo "replica stuck at epoch $got, primary at $want" >&2
  curl -fsS "http://$REPLICA/v1/stats" | jq . >&2
  return 1
}

# Poll the replica until it has re-bootstrapped at least once — the
# X-Apartd-Instance check firing after a primary restart. Generous
# deadline: the replica may still be in reconnect backoff when the new
# primary comes up.
wait_resynced() {
  local resyncs
  for _ in $(seq 1 300); do
    resyncs=$(curl -fsS "http://$REPLICA/v1/stats" | jq -r .resyncs)
    if [ "$resyncs" -ge 1 ]; then return 0; fi
    sleep 0.1
  done
  echo "replica reports $resyncs resyncs after a primary restart, want ≥ 1" >&2
  curl -fsS "http://$REPLICA/v1/stats" | jq . >&2
  return 1
}

# Dump every vertex's placement from one endpoint as sorted JSON lines,
# via the batch endpoint (one request, one epoch).
dump_placements() {
  local addr=$1 out=$2 ids
  ids=$(seq 0 $((N - 1)) | paste -sd, -)
  curl -fsS -X POST "http://$addr/v1/placements" \
    -H 'Content-Type: application/json' \
    -d "{\"vertices\":[$ids]}" | jq -c '.placements[]' >"$out"
}

echo "== start primary"
"$WORK/apartd" -addr "$PRIMARY" -k 4 -seed 7 -tick 50ms \
  >"$WORK/apartd.log" 2>&1 &
DPID=$!
wait_healthy "$PRIMARY" apartd "$WORK/apartd.log"

echo "== stream mutations into the primary"
post_batch 0 70
post_batch 70 140
post_batch 140 200
wait_quiescent

echo "== start replica"
"$WORK/apartr" -addr "$REPLICA" -upstream "http://$PRIMARY" \
  -lag-poll 100ms -reconnect-min 50ms -reconnect-max 1s \
  >"$WORK/apartr.log" 2>&1 &
RPID=$!
wait_healthy "$REPLICA" apartr "$WORK/apartr.log"
wait_caught_up

echo "== diff primary vs replica placements at matched epochs"
dump_placements "$PRIMARY" "$WORK/primary.jsonl"
dump_placements "$REPLICA" "$WORK/replica.jsonl"
if ! diff -u "$WORK/primary.jsonl" "$WORK/replica.jsonl"; then
  echo "replica placements diverged from the primary" >&2
  exit 1
fi
PEPOCH=$(curl -fsS "http://$PRIMARY/v1/stats" | jq -r .routing_epoch)
REPOCH=$(curl -fsS "http://$REPLICA/v1/stats" | jq -r .epoch)
if [ "$PEPOCH" != "$REPOCH" ]; then
  echo "epochs diverged after diff: primary $PEPOCH, replica $REPOCH" >&2
  exit 1
fi
curl -fsS "http://$REPLICA/metrics" | grep -E '^apartr_(epoch|bootstraps_total|resyncs_total)' >&2

echo "== kill the primary; replica must keep serving last-known-good"
kill -TERM "$DPID"
wait "$DPID" || true
DPID=""
sleep 0.3
P0=$(curl -fsS "http://$REPLICA/v1/placement/0" | jq -r .partition)
if [ "$P0" = "null" ] || [ -z "$P0" ]; then
  echo "replica stopped serving while the primary was down" >&2
  exit 1
fi

echo "== restart the primary (fresh incarnation, epochs reset)"
"$WORK/apartd" -addr "$PRIMARY" -k 4 -seed 7 -tick 50ms \
  >>"$WORK/apartd.log" 2>&1 &
DPID=$!
wait_healthy "$PRIMARY" apartd "$WORK/apartd.log"
post_batch 0 70
post_batch 70 140
post_batch 140 200
wait_quiescent

echo "== replica must resync to the new incarnation and re-converge"
wait_resynced
wait_caught_up
RESYNCS=$(curl -fsS "http://$REPLICA/v1/stats" | jq -r .resyncs)
dump_placements "$PRIMARY" "$WORK/primary2.jsonl"
dump_placements "$REPLICA" "$WORK/replica2.jsonl"
if ! diff -u "$WORK/primary2.jsonl" "$WORK/replica2.jsonl"; then
  echo "replica placements diverged from the restarted primary" >&2
  exit 1
fi

kill -TERM "$RPID"
wait "$RPID" || true
RPID=""
kill -TERM "$DPID"
wait "$DPID" || true
DPID=""
echo "replica smoke OK: $N placements identical, $RESYNCS resync(s) across primary restart"
