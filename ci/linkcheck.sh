#!/usr/bin/env bash
# Docs gate: every relative markdown link in the repository's
# documentation must resolve to an existing file or directory. External
# (http/https/mailto) links and pure in-page anchors are skipped — CI
# must not flake on network reachability. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# The documentation set has required members: the API reference and the
# operations runbook must exist (and therefore get link-checked below) —
# a rename or deletion should fail this gate, not silently shrink the
# docs.
for required in README.md docs/ARCHITECTURE.md docs/API.md docs/OPERATIONS.md \
  docs/REPLICATION.md examples/quickstart/README.md; do
  if [ ! -f "$required" ]; then
    echo "linkcheck: required documentation file missing: $required" >&2
    fail=1
  fi
done

# README.md, docs/, examples/, and the repo-level process docs.
mapfile -t files < <(find README.md ROADMAP.md docs examples -name '*.md' 2>/dev/null | sort)

for f in "${files[@]}"; do
  dir=$(dirname "$f")
  # Extract markdown link targets: [text](target). One per line; tolerate
  # several links on a line.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path=${target%%#*} # strip in-page anchor
    [ -z "$path" ] && continue
    # Skip paths that resolve outside the repository tree: those are
    # GitHub web routes (e.g. the ../../actions/... badge URLs), not
    # files this checkout can validate.
    abs=$(realpath -m "$dir/$path")
    case "$abs" in
      "$PWD"/*) ;;
      *) continue ;;
    esac
    if [ ! -e "$dir/$path" ]; then
      echo "$f: broken link -> $target" >&2
      fail=1
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$f" | sed 's/.*(\(.*\))/\1/')
done

if [ "$fail" -ne 0 ]; then
  echo "linkcheck: broken relative links found" >&2
  exit 1
fi
echo "linkcheck OK: ${#files[@]} markdown files checked"
