// Quickstart: partition a graph, adapt it, and see the payoff.
//
// This example walks the core workflow end to end in a few seconds:
//
//  1. generate a small cardiac-style 3-d mesh,
//  2. hash-partition it over 9 partitions (what most systems do),
//  3. run the paper's adaptive iterative heuristic to convergence,
//  4. compare cut ratios and show what that means for a real computation
//     by running PageRank on the BSP engine under both partitionings.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"xdgp/internal/apps"
	"xdgp/internal/bsp"
	"xdgp/internal/core"
	"xdgp/internal/gen"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

func main() {
	const k = 9
	// 1. A 20×20×20 mesh: 8 000 heart cells, 22 800 electrical couplings.
	g := gen.Cube3D(20)
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// 2. Hash partitioning, the lightweight default of large-scale graph
	// processing systems.
	asn := partition.Hash(g, k)
	hashCut := partition.CutRatio(g, asn)
	fmt.Printf("hash partitioning:     cut ratio %.3f\n", hashCut)

	// 3. The paper's adaptive heuristic: greedy vertex migration with
	// capacity quotas and willingness-to-move s = 0.5.
	p, err := core.New(g, asn, core.DefaultConfig(k, 42))
	if err != nil {
		log.Fatal(err)
	}
	res := p.Run()
	fmt.Printf("adaptive partitioning: cut ratio %.3f (converged at iteration %d, %d migrations)\n",
		res.FinalCutRatio, res.ConvergedAt, res.TotalMigrations)
	fmt.Printf("imbalance stays bounded by the capacity rule: %.3f (cap factor 1.10)\n",
		partition.Imbalance(p.Assignment()))

	// 4. What the cut reduction buys: the same PageRank run on the BSP
	// engine, timed by the engine's cluster cost clock.
	fmt.Println()
	hashTime := timePageRank(g, partition.Hash(g, k), k)
	adaptedTime := timePageRank(g, p.Assignment().Clone(), k)
	fmt.Printf("PageRank on hash partitioning:     %.0f cost units\n", hashTime)
	fmt.Printf("PageRank on adapted partitioning:  %.0f cost units (%.1f× faster)\n",
		adaptedTime, hashTime/adaptedTime)
}

// timePageRank runs 20 PageRank rounds on the engine and returns the total
// simulated time under the given (cloned) partitioning.
func timePageRank(g *graph.Graph, asn *partition.Assignment, k int) float64 {
	e, err := bsp.NewEngine(g.Clone(), asn, apps.NewPageRank(g.NumVertices(), 20), bsp.Config{
		Workers: k,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	total := 0.0
	stats, _ := e.RunUntilQuiescent(30)
	for _, st := range stats {
		total += st.Time
	}
	return total
}
