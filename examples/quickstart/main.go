// Quickstart: partition a graph, adapt it, and see the payoff.
//
// This example walks the core workflow end to end in a few seconds:
//
//  1. generate a small cardiac-style 3-d mesh,
//  2. hash-partition it over 9 partitions (what most systems do),
//  3. run the paper's adaptive iterative heuristic to convergence,
//  4. compare cut ratios and show what that means for a real computation
//     by running PageRank on the BSP engine under both partitionings,
//  5. run the same workflow as a *service*: an in-process apartd daemon
//     ingests a mutation stream over its HTTP API, serves placements
//     from its epoch-numbered routing snapshots (single and batch
//     lookups), streams per-epoch placement diffs over the watch feed,
//     checkpoints, and restores with identical assignments.
//
// Run with: go run ./examples/quickstart
// (See README.md in this directory for the same daemon walkthrough
// against a real apartd process, using curl.)
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"xdgp/internal/apps"
	"xdgp/internal/bsp"
	"xdgp/internal/core"
	"xdgp/internal/gen"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
	"xdgp/internal/server"
	"xdgp/internal/snapshot"
)

func main() {
	const k = 9
	// 1. A 20×20×20 mesh: 8 000 heart cells, 22 800 electrical couplings.
	g := gen.Cube3D(20)
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// 2. Hash partitioning, the lightweight default of large-scale graph
	// processing systems.
	asn := partition.Hash(g, k)
	hashCut := partition.CutRatio(g, asn)
	fmt.Printf("hash partitioning:     cut ratio %.3f\n", hashCut)

	// 3. The paper's adaptive heuristic: greedy vertex migration with
	// capacity quotas and willingness-to-move s = 0.5.
	p, err := core.New(g, asn, core.DefaultConfig(k, 42))
	if err != nil {
		log.Fatal(err)
	}
	res := p.Run()
	fmt.Printf("adaptive partitioning: cut ratio %.3f (converged at iteration %d, %d migrations)\n",
		res.FinalCutRatio, res.ConvergedAt, res.TotalMigrations)
	fmt.Printf("imbalance stays bounded by the capacity rule: %.3f (cap factor 1.10)\n",
		partition.Imbalance(p.Assignment()))

	// 4. What the cut reduction buys: the same PageRank run on the BSP
	// engine, timed by the engine's cluster cost clock.
	fmt.Println()
	hashTime := timePageRank(g, partition.Hash(g, k), k)
	adaptedTime := timePageRank(g, p.Assignment().Clone(), k)
	fmt.Printf("PageRank on hash partitioning:     %.0f cost units\n", hashTime)
	fmt.Printf("PageRank on adapted partitioning:  %.0f cost units (%.1f× faster)\n",
		adaptedTime, hashTime/adaptedTime)

	// 5. The serving form: the same heuristic as a streaming daemon.
	fmt.Println()
	daemonDemo(k)
}

// daemonDemo drives an in-process apartd daemon through the HTTP API:
// stream mutations while tailing the watch feed, batch-query
// placements at one consistent epoch, checkpoint, restore, and verify
// the restored daemon serves identical placements.
func daemonDemo(k int) {
	cfg := server.DefaultConfig(k, 42)
	cfg.TickEvery = time.Hour // we tick explicitly below
	srv, err := server.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Tail the watch feed from epoch 2 (epoch 1 is the empty bootstrap
	// snapshot): every line is one epoch's exact placement diff.
	type watchEvent struct {
		Resync  bool   `json:"resync"`
		Epoch   uint64 `json:"epoch"`
		Changes []struct {
			Vertex int64 `json:"vertex"`
			From   int64 `json:"from"`
			To     int64 `json:"to"`
		} `json:"changes"`
	}
	watchResp, err := http.Get(ts.URL + "/v1/watch?from=2")
	if err != nil {
		log.Fatal(err)
	}
	defer watchResp.Body.Close()
	watched := make(chan watchEvent, 1024)
	go func() {
		defer close(watched)
		sc := bufio.NewScanner(watchResp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			var ev watchEvent
			if json.Unmarshal(sc.Bytes(), &ev) != nil {
				return
			}
			watched <- ev
		}
	}()

	// Stream a community-structured graph — k communities of 100
	// vertices, dense inside, one bridge between consecutive
	// communities — exactly as curl would. (Sizing note: per-pair
	// migration quotas are ⌊free capacity/(k−1)⌋, so a stream much
	// smaller than ~k² / (CapacityFactor−1) vertices leaves every quota
	// at zero and nothing can move.)
	var req struct {
		Mutations []server.MutationJSON `json:"mutations"`
	}
	const commSize = 100
	n := int64(k * commSize)
	for c := 0; c < k; c++ {
		base := int64(c * commSize)
		for j := int64(0); j < commSize; j++ {
			for _, d := range []int64{1, 13, 29, 41} {
				req.Mutations = append(req.Mutations, server.MutationJSON{
					Op: "add-edge", U: base + j, V: base + (j+d)%commSize})
			}
		}
		req.Mutations = append(req.Mutations, server.MutationJSON{
			Op: "add-edge", U: base, V: (base + commSize) % n})
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/mutations", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	for !srv.Stats().Converged { // the daemon's tick loop, compressed
		srv.TickNow()
	}

	var placement struct {
		Vertex    int64 `json:"vertex"`
		Partition int64 `json:"partition"`
	}
	getJSON(ts.URL+"/v1/placement/17", &placement)
	st := srv.Stats()
	fmt.Printf("daemon: streamed %d mutations, adapted to cut ratio %.3f in %d iterations\n",
		st.Ingested, st.CutRatio, st.Iteration)
	fmt.Printf("daemon: vertex 17 → partition %d (GET /v1/placement/17)\n", placement.Partition)

	// Batch lookup: every placement in one request, answered from one
	// routing snapshot — mutually consistent, stamped with its epoch.
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i)
	}
	reqBody, _ := json.Marshal(map[string][]int64{"vertices": ids})
	batchResp, err := http.Post(ts.URL+"/v1/placements", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		log.Fatal(err)
	}
	var batch struct {
		Epoch      uint64 `json:"epoch"`
		Placements []struct {
			Vertex    int64 `json:"vertex"`
			Partition int64 `json:"partition"`
		} `json:"placements"`
	}
	if err := json.NewDecoder(batchResp.Body).Decode(&batch); err != nil {
		log.Fatal(err)
	}
	batchResp.Body.Close()
	fmt.Printf("daemon: batch-read all %d placements at epoch %d (POST /v1/placements)\n",
		len(batch.Placements), batch.Epoch)

	// The watch feed saw the same history as per-epoch diffs: replaying
	// them must land on exactly the batch-read table.
	replayed := map[int64]int64{}
	migrations := 0
	lastEpoch := uint64(0)
tail:
	for {
		select {
		case ev, ok := <-watched:
			if !ok || ev.Resync {
				log.Fatal("watch feed ended or resynced unexpectedly")
			}
			for _, ch := range ev.Changes {
				if ch.From != -1 && ch.To != -1 {
					migrations++
				}
				if ch.To == -1 {
					delete(replayed, ch.Vertex)
				} else {
					replayed[ch.Vertex] = ch.To
				}
			}
			lastEpoch = ev.Epoch
			if lastEpoch >= batch.Epoch {
				break tail
			}
		case <-time.After(5 * time.Second):
			log.Fatalf("watch feed stalled at epoch %d (want %d)", lastEpoch, batch.Epoch)
		}
	}
	for _, pl := range batch.Placements {
		got, ok := replayed[pl.Vertex]
		if !ok {
			got = -1
		}
		if got != pl.Partition {
			log.Fatalf("watch replay diverged at vertex %d: %d vs %d", pl.Vertex, got, pl.Partition)
		}
	}
	fmt.Printf("daemon: watch feed replayed %d epochs (%d migrations) to the identical table (GET /v1/watch)\n",
		lastEpoch-1, migrations)

	// Checkpoint, restore into a second daemon, verify placements match.
	dir, err := os.MkdirTemp("", "apartd-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "state.snap")
	if _, err := srv.Checkpoint(path); err != nil {
		log.Fatal(err)
	}
	snap, err := snapshot.Load(path)
	if err != nil {
		log.Fatal(err)
	}
	restored, err := server.Restore(cfg, snap)
	if err != nil {
		log.Fatal(err)
	}
	for v := graph.VertexID(0); v < graph.VertexID(n); v++ {
		a, okA := srv.Placement(v)
		b, okB := restored.Placement(v)
		if a != b || okA != okB {
			log.Fatalf("placement of %d diverged after restore: %d vs %d", v, a, b)
		}
	}
	fmt.Printf("daemon: checkpoint + restore verified — all %d placements identical\n", n)
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

// timePageRank runs 20 PageRank rounds on the engine and returns the total
// simulated time under the given (cloned) partitioning.
func timePageRank(g *graph.Graph, asn *partition.Assignment, k int) float64 {
	e, err := bsp.NewEngine(g.Clone(), asn, apps.NewPageRank(g.NumVertices(), 20), bsp.Config{
		Workers: k,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	total := 0.0
	stats, _ := e.RunUntilQuiescent(30)
	for _, st := range stats {
		total += st.Time
	}
	return total
}
