// Mobile: maximal cliques over a month of call records — the paper's
// mobile-network use case (Section 4.3) at laptop scale.
//
// A four-week synthetic CDR stream (8 %/week subscriber additions,
// 4 %/week inactivity deletions, community-structured calls) feeds a
// cluster running the neighbour-list-exchange clique algorithm. Because
// the algorithm needs frozen topology, changes are buffered per window:
// thaw → apply window → rerun cliques → repeat, with the adaptive
// partitioner working across windows. A static-hash cluster runs the same
// schedule for comparison, printed as the paper's weekly bars.
//
// Run with: go run ./examples/mobile
package main

import (
	"fmt"
	"log"

	"xdgp/internal/adaptive"
	"xdgp/internal/apps"
	"xdgp/internal/bsp"
	"xdgp/internal/gen"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
	"xdgp/internal/stats"
)

const workers = 5 // the paper's Figure 9 cluster

func main() {
	cfg := gen.DefaultCDRConfig()
	cfg.BaseUsers = 3000
	cfg.CallsPerTick = 500
	cfg.TicksPerWeek = 12
	cfg.InactiveTTL = 12

	fmt.Printf("CDR stream: %d subscribers, %d weeks, +%.0f%%/-%.0f%% weekly churn\n\n",
		cfg.BaseUsers, cfg.Weeks, cfg.AddPerWeek*100, cfg.DelPerWeek*100)

	dynCuts, dynTime, maxCliqueDyn := runMonth(cfg, true)
	staCuts, staTime, _ := runMonth(cfg, false)

	fmt.Println("        cuts (dynamic/static)   time per iteration (dynamic/static)")
	for wk := 0; wk < cfg.Weeks; wk++ {
		fmt.Printf("week %d    %.3f / %.3f             %.0f / %.0f\n",
			wk+1, dynCuts[wk], staCuts[wk], dynTime[wk], staTime[wk])
	}
	fmt.Printf("\nlargest clique observed in month: %d subscribers\n", maxCliqueDyn)
}

// runMonth replays the stream window by window (freeze → thaw → recompute)
// and returns weekly mean cuts and time per iteration.
func runMonth(cfg gen.CDRConfig, adapt bool) (cuts, times []float64, maxClique int) {
	stream := gen.NewCDRStream(cfg)
	e, err := bsp.NewEngine(graph.NewUndirected(cfg.BaseUsers), partition.NewAssignment(0, workers),
		apps.NewMaxClique(), bsp.Config{Workers: workers, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	if adapt {
		svc, err := adaptive.New(adaptive.DefaultConfig(5))
		if err != nil {
			log.Fatal(err)
		}
		e.SetRepartitioner(svc)
	}

	windowTicks := cfg.TicksPerWeek / 4
	weeklyCuts := make([][]float64, cfg.Weeks)
	weeklyTimes := make([][]float64, cfg.Weeks)
	tick := 0
	for !stream.Done() {
		// Freeze: buffer a window of changes while cliques are computed.
		var window graph.Batch
		week := 0
		for i := 0; i < windowTicks && !stream.Done(); i++ {
			week = stream.Week(tick)
			window = append(window, stream.Next()...)
			tick++
		}
		// Thaw: apply the buffered window, rerun the clique search.
		e.SetStream(graph.NewSliceStream([]graph.Batch{window}))
		e.RunSuperstep()
		e.ResetComputation()
		sts, _ := e.RunUntilQuiescent(12)
		total, steps := 0.0, 0
		for _, st := range sts {
			if st.ActiveVertices > 0 {
				total += st.Time
				steps++
			}
		}
		if size := int(e.Aggregated("maxclique.size")); size > maxClique {
			maxClique = size
		}
		if steps > 0 && week < cfg.Weeks {
			weeklyTimes[week] = append(weeklyTimes[week], total/float64(steps))
			weeklyCuts[week] = append(weeklyCuts[week], partition.CutRatio(e.Graph(), e.Addr()))
		}
	}
	for wk := 0; wk < cfg.Weeks; wk++ {
		cuts = append(cuts, stats.Mean(weeklyCuts[wk]))
		times = append(times, stats.Mean(weeklyTimes[wk]))
	}
	return cuts, times, maxClique
}
