// Biomedical: adaptive partitioning under a continuously running cardiac
// simulation — the paper's first real-world use case (Section 4.3) at
// laptop scale.
//
// A 3-d finite-element mesh of heart cells runs the excitable-cell model
// (32 equations over a 100-variable state per cell, membrane potential
// diffusing to neighbours) on the BSP engine, loaded with plain hash
// partitioning. The adaptive algorithm runs in the background and
// re-arranges the partitioning while the simulation makes progress; then a
// forest-fire burst grows the tissue by 10 % and the algorithm absorbs it.
//
// Run with: go run ./examples/biomedical
package main

import (
	"fmt"
	"log"

	"xdgp/internal/adaptive"
	"xdgp/internal/apps"
	"xdgp/internal/bsp"
	"xdgp/internal/gen"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

func main() {
	const k = 9
	g := gen.Cube3D(16) // 4 096 cells
	fmt.Printf("cardiac mesh: %d cells, %d couplings, %d workers\n",
		g.NumVertices(), g.NumEdges(), k)

	prog := apps.NewCardiac()
	cost := bsp.DefaultCostModel()
	cost.PerMigration = float64(prog.NumVars) * cost.PerRemoteMsg // state transfer

	e, err := bsp.NewEngine(g, partition.Hash(g, k), prog, bsp.Config{
		Workers:     k,
		Seed:        7,
		Cost:        cost,
		RecordEvery: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	svc, err := adaptive.New(adaptive.DefaultConfig(7))
	if err != nil {
		log.Fatal(err)
	}
	e.SetRepartitioner(svc)

	fmt.Printf("\ninitial hash cut ratio: %.3f\n", partition.CutRatio(g, e.Addr()))
	fmt.Println("\nphase a: background re-arrangement while the simulation runs")
	report(e.RunSupersteps(80))

	fmt.Println("\nphase b: +10% forest-fire growth burst, then absorption")
	burst := gen.ForestFireExpansion(e.Graph(), e.Graph().NumVertices()/10, gen.DefaultForestFire(), 99)
	fmt.Printf("burst: +%d cells, +%d couplings\n", burst.NumAdds(), burst.NumEdgeAdds())
	e.SetStream(graph.NewSliceStream([]graph.Batch{burst}))
	report(e.RunSupersteps(80))

	fmt.Printf("\nfinal cut ratio: %.3f (max membrane potential %.2f — tissue still beating)\n",
		partition.CutRatio(e.Graph(), e.Addr()), e.Aggregated("cardiac.maxV"))
}

// report prints a compact digest of a superstep window.
func report(stats []bsp.SuperstepStats) {
	migrations := 0
	var first, last float64
	for i, st := range stats {
		migrations += st.MigrationsCompleted
		if i == 0 {
			first = st.Time
		}
		last = st.Time
	}
	cut := -1.0
	for i := len(stats) - 1; i >= 0; i-- {
		if stats[i].CutEdges >= 0 {
			cut = stats[i].CutRatio
			break
		}
	}
	fmt.Printf("  %d supersteps, %d migrations, time/superstep %.0f → %.0f cost units, cut ratio now %.3f\n",
		len(stats), migrations, first, last, cut)
}
