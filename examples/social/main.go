// Social: continuous influence ranking over a live mention stream — the
// paper's online-social-network use case (Section 4.3) at laptop scale.
//
// A synthetic day of tweets (diurnal rate, conversational communities,
// Zipf celebrities) streams into two identical clusters running TunkRank
// continuously: one adapts its partitioning in the background, the other
// keeps static hash placement. The example prints the morning/afternoon/
// evening progression of superstep times and the final influence podium.
//
// Run with: go run ./examples/social
package main

import (
	"fmt"
	"log"
	"sort"

	"xdgp/internal/adaptive"
	"xdgp/internal/apps"
	"xdgp/internal/bsp"
	"xdgp/internal/gen"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
	"xdgp/internal/stats"
)

func main() {
	const k = 9
	cfg := gen.DefaultTwitterConfig()
	cfg.Users = 6000
	cfg.Hours = 12
	cfg.PeakRate = 20
	cfg.TroughRate = 5

	adaptiveTimes, adaptiveEngine := runDay(cfg, true)
	staticTimes, _ := runDay(cfg, false)

	fmt.Printf("mention stream: %d users, %d ten-minute windows\n\n", cfg.Users, len(adaptiveTimes.Y))
	buckets := []struct {
		name     string
		from, to float64
	}{
		{"early", 0, 0.33}, {"midday", 0.33, 0.66}, {"late", 0.66, 1},
	}
	for _, b := range buckets {
		fmt.Printf("%-8s static %.0f  adaptive %.0f cost units/superstep\n",
			b.name, windowMean(staticTimes, b.from, b.to), windowMean(adaptiveTimes, b.from, b.to))
	}
	sMean := stats.Mean(staticTimes.Y[len(staticTimes.Y)/2:])
	aMean := stats.Mean(adaptiveTimes.Y[len(adaptiveTimes.Y)/2:])
	fmt.Printf("\nsecond-half mean superstep time: static %.0f vs adaptive %.0f (%.1f× faster)\n",
		sMean, aMean, sMean/aMean)

	// Influence podium from the adaptive cluster.
	type ranked struct {
		id  graph.VertexID
		inf float64
	}
	var top []ranked
	adaptiveEngine.Graph().ForEachVertex(func(v graph.VertexID) {
		if inf, ok := adaptiveEngine.Value(v).(float64); ok {
			top = append(top, ranked{v, inf})
		}
	})
	sort.Slice(top, func(i, j int) bool { return top[i].inf > top[j].inf })
	fmt.Println("\nmost influential users (TunkRank):")
	for i := 0; i < 3 && i < len(top); i++ {
		fmt.Printf("  #%d user %d, influence %.1f\n", i+1, top[i].id, top[i].inf)
	}
}

// runDay replays the identical stream on a fresh cluster and returns the
// superstep-time series.
func runDay(cfg gen.TwitterConfig, adapt bool) (*stats.Series, *bsp.Engine) {
	stream := gen.NewTwitterStream(cfg)
	g := graph.NewDirected(cfg.Users)
	e, err := bsp.NewEngine(g, partition.NewAssignment(0, 9), apps.NewTunkRank(), bsp.Config{
		Workers: 9,
		Seed:    3,
	})
	if err != nil {
		log.Fatal(err)
	}
	if adapt {
		svc, err := adaptive.New(adaptive.DefaultConfig(3))
		if err != nil {
			log.Fatal(err)
		}
		e.SetRepartitioner(svc)
	}
	e.SetStream(stream)
	times := stats.NewSeries("time")
	for i := 0; i < stream.NumTicks(); i++ {
		st := e.RunSuperstep()
		times.Add(float64(i), st.Time)
	}
	return times, e
}

// windowMean averages a fraction [from,to) of the series.
func windowMean(s *stats.Series, from, to float64) float64 {
	lo, hi := int(from*float64(s.Len())), int(to*float64(s.Len()))
	if hi > s.Len() {
		hi = s.Len()
	}
	if lo >= hi {
		return 0
	}
	return stats.Mean(s.Y[lo:hi])
}
