package core

import (
	"testing"

	"xdgp/internal/gen"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

func TestEdgeLoadsAndImbalance(t *testing.T) {
	// A star with the hub in partition 0: partition 0 carries half of all
	// edge endpoints.
	g := graph.NewUndirected(0)
	hub := g.AddVertex()
	asn := partition.NewAssignment(1, 2)
	asn.Assign(hub, 0)
	for i := 0; i < 10; i++ {
		leaf := g.AddVertex()
		g.AddEdge(hub, leaf)
		asn.Grow(g.NumSlots())
		asn.Assign(leaf, 1)
	}
	loads := EdgeLoads(g, asn)
	if loads[0] != 10 || loads[1] != 10 {
		t.Fatalf("loads = %v, want [10 10]", loads)
	}
	if imb := EdgeImbalance(g, asn); imb != 1.0 {
		t.Fatalf("imbalance = %v, want 1.0", imb)
	}
	// Move one leaf next to the hub: partition 0 now carries 11 of 20.
	asn.Assign(graph.VertexID(1), 0)
	if imb := EdgeImbalance(g, asn); imb != 1.1 {
		t.Fatalf("imbalance = %v, want 1.1", imb)
	}
}

func TestEdgeImbalanceEmpty(t *testing.T) {
	g := graph.NewUndirected(0)
	a := partition.NewAssignment(0, 3)
	if EdgeImbalance(g, a) != 0 {
		t.Fatal("empty graph must report zero edge imbalance")
	}
}

func TestBalanceEdgesKeepsEdgeLoadBounded(t *testing.T) {
	// On a hub-heavy power-law graph, the edge-balanced extension must
	// keep the degree-sum per partition within the capacity factor even
	// as it reduces cuts. (Vertex-balanced mode has no such guarantee.)
	g := gen.HolmeKim(3000, 8, 0.1, 3)
	asn := partition.Random(g, 6, 3)
	cfg := DefaultConfig(6, 3)
	cfg.BalanceEdges = true
	cfg.RecordEvery = 0
	p, err := New(g, asn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := partition.CutRatio(g, asn.Clone())
	startImb := EdgeImbalance(g, p.Assignment())
	for i := 0; i < 80 && !p.Converged(); i++ {
		p.Step()
		// The quota rule in degree units: a partition's edge load never
		// exceeds max(start load, degree capacity).
		imb := EdgeImbalance(g, p.Assignment())
		if imb > startImb+0.001 && imb > 1.12 {
			t.Fatalf("iteration %d: edge imbalance %.3f exceeded both start %.3f and cap band",
				i, imb, startImb)
		}
	}
	after := p.CutRatio()
	if after >= before {
		t.Fatalf("edge-balanced mode did not reduce cuts: %.3f -> %.3f", before, after)
	}
}

func TestDisableQuotasCausesDensification(t *testing.T) {
	// The ablation the quotas exist to prevent (Section 2.2): on a
	// connected graph with small k, unquota'd greedy migration cascades —
	// one partition swallows the entire graph (imbalance = k), because
	// total colocation trivially minimises the cut.
	g := gen.HolmeKim(1500, 6, 0.1, 1)
	run := func(disable bool) float64 {
		cfg := DefaultConfig(3, 1)
		cfg.DisableQuotas = disable
		cfg.RecordEvery = 0
		cfg.MaxIterations = 300
		p, err := New(g.Clone(), partition.Random(g, 3, 1), cfg)
		if err != nil {
			t.Fatal(err)
		}
		p.Run()
		return partition.Imbalance(p.Assignment())
	}
	with := run(false)
	without := run(true)
	if with > 1.15 {
		t.Fatalf("quotas on: imbalance %.3f above capacity band", with)
	}
	if without < 2.5 {
		t.Fatalf("quotas off: imbalance %.3f — expected near-total densification (≈3.0)", without)
	}
}

func TestBalanceEdgesDynamic(t *testing.T) {
	// Edge-balance mode must survive graph mutations (loads recomputed).
	g := gen.Cube3D(6)
	cfg := DefaultConfig(4, 1)
	cfg.BalanceEdges = true
	cfg.RecordEvery = 0
	p, err := New(g, partition.Random(g, 4, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Run()
	burst := gen.ForestFireExpansion(g, 20, gen.DefaultForestFire(), 2)
	p.ApplyBatch(burst)
	res := p.Run()
	if !res.Converged {
		t.Fatal("did not re-converge after burst in edge-balance mode")
	}
	if err := p.Assignment().Validate(g); err != nil {
		t.Fatal(err)
	}
}
