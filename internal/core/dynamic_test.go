package core

import (
	"testing"

	"xdgp/internal/gen"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

func TestApplyBatchPlacesNewVertices(t *testing.T) {
	g := gen.Cube3D(5)
	p := mustNew(t, g, partition.Hash(g, 4), DefaultConfig(4, 1))
	next := graph.VertexID(g.NumSlots())
	batch := graph.Batch{
		{Kind: graph.MutAddVertex, U: next},
		{Kind: graph.MutAddEdge, U: next, V: 0},
	}
	if applied := p.ApplyBatch(batch); applied != 2 {
		t.Fatalf("applied = %d, want 2", applied)
	}
	if p.Assignment().Of(next) == partition.None {
		t.Fatal("new vertex was not placed")
	}
	if err := p.Assignment().Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestApplyBatchUnassignsRemoved(t *testing.T) {
	g := gen.Cube3D(5)
	p := mustNew(t, g, partition.Hash(g, 4), DefaultConfig(4, 1))
	victim := graph.VertexID(7)
	p.ApplyBatch(graph.Batch{{Kind: graph.MutRemoveVertex, U: victim}})
	if p.Assignment().Of(victim) != partition.None {
		t.Fatal("removed vertex still assigned")
	}
	if err := p.Assignment().Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestApplyBatchResetsConvergence(t *testing.T) {
	g := gen.Cube3D(5)
	p := mustNew(t, g, partition.Hash(g, 4), DefaultConfig(4, 1))
	p.Run()
	if !p.Converged() {
		t.Fatal("expected convergence")
	}
	next := graph.VertexID(g.NumSlots())
	p.ApplyBatch(graph.Batch{
		{Kind: graph.MutAddVertex, U: next},
		{Kind: graph.MutAddEdge, U: next, V: 0},
	})
	if p.Converged() {
		t.Fatal("mutation must reset the convergence window")
	}
}

func TestApplyBatchEmptyAndNoop(t *testing.T) {
	g := gen.Cube3D(4)
	p := mustNew(t, g, partition.Hash(g, 4), DefaultConfig(4, 1))
	if p.ApplyBatch(nil) != 0 {
		t.Fatal("nil batch must be a no-op")
	}
	// A batch of pure duplicates applies nothing and keeps convergence.
	p.Run()
	if p.ApplyBatch(graph.Batch{{Kind: graph.MutAddVertex, U: 0}}) != 0 {
		t.Fatal("duplicate add must apply nothing")
	}
	if !p.Converged() {
		t.Fatal("no-op batch must not reset convergence")
	}
}

func TestCapacityGrowsWithGraph(t *testing.T) {
	g := gen.Cube3D(5) // 125 vertices
	p := mustNew(t, g, partition.Hash(g, 4), DefaultConfig(4, 1))
	cap0 := p.Capacities()[0]
	// Add 25 % more vertices.
	var batch graph.Batch
	next := graph.VertexID(g.NumSlots())
	for i := 0; i < 31; i++ {
		batch = append(batch, graph.Mutation{Kind: graph.MutAddVertex, U: next + graph.VertexID(i)})
		batch = append(batch, graph.Mutation{Kind: graph.MutAddEdge, U: next + graph.VertexID(i), V: graph.VertexID(i)})
	}
	p.ApplyBatch(batch)
	if p.Capacities()[0] <= cap0 {
		t.Fatalf("capacity did not grow: %d -> %d", cap0, p.Capacities()[0])
	}
}

func TestForestFireAbsorption(t *testing.T) {
	// The Figure 7(b) scenario in miniature: converge on a mesh, inject a
	// 10 % forest-fire burst, and verify the heuristic re-converges with a
	// cut ratio close to the pre-burst level.
	g := gen.Cube3D(8) // 512 vertices
	asn := partition.Hash(g, 4)
	cfg := DefaultConfig(4, 1)
	p := mustNew(t, g, asn, cfg)
	res1 := p.Run()
	if !res1.Converged {
		t.Fatal("phase 1 did not converge")
	}
	preBurst := p.CutRatio()

	burst := gen.ForestFireExpansion(g, g.NumVertices()/10, gen.DefaultForestFire(), 5)
	p.ApplyBatch(burst)
	afterBurst := p.CutRatio()

	res2 := p.Run()
	if !res2.Converged {
		t.Fatal("did not re-converge after the burst")
	}
	recovered := p.CutRatio()
	if err := p.Assignment().Validate(g); err != nil {
		t.Fatal(err)
	}
	// The burst must be absorbed: final cut within 1.5× of pre-burst, and
	// not worse than the immediate post-burst state.
	if recovered > preBurst*1.5+0.05 {
		t.Fatalf("burst not absorbed: pre=%.3f post=%.3f recovered=%.3f", preBurst, afterBurst, recovered)
	}
	if recovered > afterBurst {
		t.Fatalf("adaptation made things worse: post=%.3f recovered=%.3f", afterBurst, recovered)
	}
}

func TestRunDynamicWithStream(t *testing.T) {
	g := gen.Cube3D(6)
	// Build a three-batch stream that tacks a small path onto the mesh.
	next := graph.VertexID(g.NumSlots())
	batches := []graph.Batch{
		{{Kind: graph.MutAddVertex, U: next}, {Kind: graph.MutAddEdge, U: next, V: 0}},
		{{Kind: graph.MutAddVertex, U: next + 1}, {Kind: graph.MutAddEdge, U: next + 1, V: next}},
		{{Kind: graph.MutRemoveVertex, U: next}},
	}
	p := mustNew(t, g, partition.Hash(g, 4), DefaultConfig(4, 1))
	res := p.RunDynamic(graph.NewSliceStream(batches))
	if !res.Converged {
		t.Fatal("dynamic run did not converge after stream end")
	}
	if !g.Has(next+1) || g.Has(next) {
		t.Fatal("stream mutations were not applied")
	}
	if err := p.Assignment().Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicCutStaysBounded(t *testing.T) {
	// Continuous churn: the adaptive heuristic must keep the cut ratio
	// bounded well below the static-hash level while edges arrive.
	base := gen.HolmeKim(800, 4, 0.1, 1)
	gAdaptive := base.Clone()
	gStatic := base.Clone()

	pa := mustNew(t, gAdaptive, partition.Hash(gAdaptive, 8), DefaultConfig(8, 2))
	pa.Run() // optimise initial placement

	staticAsn := partition.Hash(gStatic, 8)

	// Apply identical growth to both, adapting only one.
	for round := 0; round < 5; round++ {
		burst := gen.ForestFireExpansion(gAdaptive, 40, gen.DefaultForestFire(), int64(round))
		pa.ApplyBatch(burst)
		gStatic.Apply(burst)
		for _, mu := range burst {
			if mu.Kind == graph.MutAddVertex {
				staticAsn.Assign(mu.U, partition.HashVertex(mu.U, 8))
			}
		}
		for i := 0; i < 30; i++ {
			pa.Step()
		}
	}
	adaptive := pa.CutRatio()
	static := partition.CutRatio(gStatic, staticAsn)
	if adaptive >= static {
		t.Fatalf("adaptive %.3f not below static %.3f under churn", adaptive, static)
	}
}

func TestApplyBatchSelfLoopPlacesVertex(t *testing.T) {
	// Regression: a rejected self-loop edge on a fresh ID materialises a
	// live vertex; ApplyBatch must place it (in both scheduling modes) so
	// the next Step never sees an unassigned live vertex.
	for _, incremental := range []bool{false, true} {
		g := gen.Cube3D(3)
		cfg := DefaultConfig(4, 1)
		cfg.Incremental = incremental
		p := mustNew(t, g, partition.Hash(g, 4), cfg)
		loop := graph.VertexID(g.NumSlots())
		if applied := p.ApplyBatch(graph.Batch{{Kind: graph.MutAddEdge, U: loop, V: loop}}); applied != 1 {
			t.Fatalf("incremental=%t: applied = %d, want 1", incremental, applied)
		}
		if p.Assignment().Of(loop) == partition.None {
			t.Fatalf("incremental=%t: self-loop vertex unplaced", incremental)
		}
		p.Step() // must not panic on the new vertex
		if err := p.Assignment().Validate(g); err != nil {
			t.Fatalf("incremental=%t: %v", incremental, err)
		}
	}
}
