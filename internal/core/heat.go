package core

import (
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// This file implements the workload term of the migration utility
// (Config.WorkloadWeight): an AWAPart-style extension that co-locates
// vertices which are *read together*, not just connected.
//
// The serving plane samples read traffic off the lock-free lookup path
// (internal/heat) and, at tick boundaries, folds the sampled vertex IDs
// into the partitioner via FoldHeat. The fold maintains a dense decayed
// per-slot accumulator: every fold first multiplies all entries by the
// caller's decay factor (derived from the configured half-life), then
// adds the sample weight for every sampled vertex. Between folds the
// accumulator is immutable, so every iteration of the heuristic scores
// against one frozen heat view — decisions stay a pure function of
// (seed, graph, assignment, heat trace) and runs replay byte-identically
// for a fixed fold schedule.
//
// Scoring: with the term active, a member w of Γ(v) votes for its
// partition with weight 1 + WorkloadWeight·heat(w)/max(heat) instead of
// 1. Cold regions (heat 0 everywhere in Γ(v)) therefore produce exactly
// the integer votes of the paper's objective — including identical ties,
// so tie-break shuffles consume identical randomness — and only hot
// neighbourhoods are perturbed, pulling a hot vertex's co-read
// neighbours toward its partition. Capacities and quotas are untouched:
// the workload term changes which destination wins, never how much may
// move.
//
// With Config.WorkloadWeight == 0 the fold still maintains the
// accumulator (so operators can watch heat before enabling the term) but
// heatScale stays 0, the integer scorer runs unconditionally, no frontier
// wake happens, and no randomness is consumed: runs are byte-identical
// to a build without the feature, mirroring the change-tracking
// passivity contract.

// heatFloor is the accumulator value below which a decayed entry snaps
// to zero. It keeps long-cold vertices exactly cold (restoring the
// integer-vote fast ties) and bounds HotVertices.
const heatFloor = 1e-3

// FoldHeat folds one tick's read samples into the decayed heat
// accumulator: heat ← heat·decay, then heat[v] += sampleWeight for every
// sampled vertex v (IDs beyond the current slot range are dropped).
// decay must be in (0, 1]; sampleWeight is the number of reads each
// sample stands for. It returns the accumulator's new maximum and the
// number of vertices with non-zero heat.
//
// When the workload term is active (WorkloadWeight > 0) and the
// incremental scheduler is on, the neighbourhoods of newly sampled
// vertices are re-woken — their members' votes changed, so their
// decisions must be re-examined. With WorkloadWeight == 0 the fold is
// completely passive. Callers synchronize with Step/ApplyBatch
// externally (the daemon holds its state lock).
func (p *Partitioner) FoldHeat(decay float64, samples []graph.VertexID, sampleWeight float64) (max float64, hot int) {
	slots := p.g.NumSlots()
	if len(p.heat) < slots {
		p.heat = append(p.heat, make([]float32, slots-len(p.heat))...)
	}
	for i, h := range p.heat {
		if h == 0 {
			continue
		}
		d := float64(h) * decay
		if d < heatFloor {
			d = 0
		}
		p.heat[i] = float32(d)
	}
	added := 0
	for _, v := range samples {
		if i := int(v); i >= 0 && i < len(p.heat) {
			p.heat[i] += float32(sampleWeight)
			added++
		}
	}
	for _, h := range p.heat {
		if h > 0 {
			hot++
			if m := float64(h); m > max {
				max = m
			}
		}
	}
	p.setHeatScale(max)
	if p.heatScale != 0 && added > 0 {
		// Fresh heat changes decision inputs, so convergence must be
		// re-proven — without this a converged daemon would never react
		// to a flash crowd. Decay-only folds skip it: uniform decay
		// cancels in the max-normalised votes, so nothing re-decides.
		p.quiet = 0
		if p.active != nil {
			// Wake the sampled neighbourhoods: heat(w) feeds every
			// neighbour of w's decision (and w's own). Dedupe first —
			// hot vertices repeat in the sample stream and
			// MarkNeighborhood walks Γ(v).
			seen := make(map[graph.VertexID]struct{}, len(samples))
			for _, v := range samples {
				if _, dup := seen[v]; dup || !p.g.Has(v) {
					continue
				}
				seen[v] = struct{}{}
				p.active.MarkNeighborhood(p.g, v)
			}
		}
	}
	return max, hot
}

// setHeatScale derives the vote multiplier from the accumulator maximum:
// votes are 1 + WorkloadWeight·heat/max, so scale = WorkloadWeight/max
// (0 whenever the term is configured off or no heat exists).
func (p *Partitioner) setHeatScale(max float64) {
	if p.cfg.WorkloadWeight > 0 && max > 0 {
		p.heatScale = p.cfg.WorkloadWeight / max
	} else {
		p.heatScale = 0
	}
}

// HeatSnapshot returns a copy of the decayed heat accumulator (nil when
// no heat has ever been folded). Indexed by vertex slot, like the
// assignment table.
func (p *Partitioner) HeatSnapshot() []float32 {
	if p.heat == nil {
		return nil
	}
	return append([]float32(nil), p.heat...)
}

// bestPartitionsHeatInto is the heat-weighted form of bestPartitionsInto:
// member w of Γ(v) votes 1 + scale·heat(w) for its partition (scale is
// WorkloadWeight/max(heat), precomputed by FoldHeat). Exactly like the
// integer form it returns tied with the winners appended, or tied[:0]
// when the current partition is among them. Vertices past the heat
// slice's length (arrived since the last fold) are cold.
func bestPartitionsHeatInto(g *graph.Graph, asn *partition.Assignment, v graph.VertexID, cur partition.ID, heat []float32, scale float64, countsF []float64, tied []partition.ID) []partition.ID {
	vote := func(w graph.VertexID) float64 {
		if i := int(w); i < len(heat) {
			return 1 + scale*float64(heat[i])
		}
		return 1
	}
	for i := range countsF {
		countsF[i] = 0
	}
	// Γ(v) includes v itself, but the self-vote stays 1 even when v is
	// hot: a vertex is always co-located with itself, so inflating it
	// would only anchor hot vertices in place — the opposite of pulling
	// co-read neighbourhoods together.
	countsF[cur]++
	if nbrs, ok := g.CleanNeighbors(v); ok {
		for _, w := range nbrs {
			if pw := asn.Of(w); pw != partition.None {
				countsF[pw] += vote(w)
			}
		}
	} else {
		var c graph.Cursor
		c.Reset(g, v)
		for {
			chunk := c.NextChunk()
			if chunk == nil {
				break
			}
			for _, w := range chunk {
				if pw := asn.Of(w); pw != partition.None {
					countsF[pw] += vote(w)
				}
			}
		}
	}
	if g.Directed() {
		if nbrs, ok := g.CleanInNeighbors(v); ok {
			for _, w := range nbrs {
				if pw := asn.Of(w); pw != partition.None {
					countsF[pw] += vote(w)
				}
			}
		} else {
			var c graph.Cursor
			c.ResetIn(g, v)
			for {
				chunk := c.NextChunk()
				if chunk == nil {
					break
				}
				for _, w := range chunk {
					if pw := asn.Of(w); pw != partition.None {
						countsF[pw] += vote(w)
					}
				}
			}
		}
	}
	max := 0.0
	for _, c := range countsF {
		if c > max {
			max = c
		}
	}
	tied = tied[:0]
	if countsF[cur] == max {
		return tied
	}
	for i, c := range countsF {
		if c == max {
			tied = append(tied, partition.ID(i))
		}
	}
	return tied
}
