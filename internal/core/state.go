package core

import (
	"fmt"
	"math/rand/v2"

	"xdgp/internal/activeset"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// This file implements checkpoint/restore of the Partitioner's mutable
// state (internal/snapshot packages it with the graph and assignment into
// the on-disk format). The design goal is the daemon's determinism
// guarantee: restore(checkpoint(run at tick t)) followed by the same
// stream suffix must produce byte-identical assignments to the
// uninterrupted run.
//
// Everything except the RNGs is either re-derived (capacities, quotas,
// scratch buffers) or exported directly (iteration counters, the
// active-set frontier/parking state). The RNGs are math/rand/v2 PCG
// generators — chosen over math/rand specifically because their state
// is small (two words) and serializable via MarshalBinary, so a restored
// generator continues the exact stream with no replay and no per-draw
// bookkeeping on the hot path.

// newPCG builds the deterministic generator for a (seed, stream) pair:
// stream 0 is the sequential sweep's generator, stream i ≥ 1 belongs to
// parallel shard i−1. The second PCG seed word separates the streams
// (golden-ratio stride) so shards never share a sequence even though
// they share the user seed.
func newPCG(seed int64, stream int) *rand.PCG {
	return rand.NewPCG(uint64(seed), 0x9E3779B97F4A7C15*uint64(stream+1))
}

// State is the serializable mutable state of a Partitioner, as produced
// by ExportState and consumed by Restore. It intentionally excludes the
// graph, the assignment and the Config — the snapshot container carries
// those separately — and everything derivable from them (capacities,
// quotas, scratch space).
type State struct {
	// Iteration, Quiet and LastMigration mirror the convergence
	// bookkeeping: iterations executed, consecutive zero-migration
	// iterations, and the index of the most recent migration.
	Iteration     int
	Quiet         int
	LastMigration int
	// RNG is the sequential generator's serialized PCG state
	// (rand.PCG.MarshalBinary).
	RNG []byte
	// ShardRNGs are the per-shard equivalents for the parallel sweep,
	// indexed by shard; empty when the partitioner runs one shard.
	ShardRNGs [][]byte
	// Active is the frontier/parking state of the incremental scheduler;
	// nil when Config.Incremental is off.
	Active *activeset.State
	// Heat is the decayed read-traffic accumulator by vertex slot (see
	// FoldHeat); nil when no heat was ever folded. Restoring it
	// mid-decay keeps workload-weighted runs byte-identical across a
	// checkpoint/restore boundary.
	Heat []float32
}

// ExportState captures the partitioner's mutable state. The result holds
// no references into the partitioner: every slice is a fresh copy, so a
// snapshot taken between ticks stays valid while the partitioner keeps
// running.
func (p *Partitioner) ExportState() State {
	st := State{
		Iteration:     p.iter,
		Quiet:         p.quiet,
		LastMigration: p.lastMigration,
		RNG:           marshalPCG(p.rngSrc),
	}
	if len(p.shards) > 0 {
		st.ShardRNGs = make([][]byte, len(p.shards))
		for i, sh := range p.shards {
			st.ShardRNGs[i] = marshalPCG(sh.src)
		}
	}
	if p.active != nil {
		a := p.active.Export()
		st.Active = &a
	}
	st.Heat = p.HeatSnapshot()
	return st
}

// marshalPCG serializes a PCG generator. The error path is unreachable
// (PCG's MarshalBinary cannot fail), but stays checked so a future
// library change surfaces loudly.
func marshalPCG(src *rand.PCG) []byte {
	b, err := src.MarshalBinary()
	if err != nil {
		panic(fmt.Sprintf("core: marshal PCG: %v", err))
	}
	return b
}

// Restore reconstructs a Partitioner mid-run: g and asn must be the
// graph and assignment captured together with st (the snapshot container
// guarantees this), and cfg must carry the same algorithmic parameters as
// the checkpointed run — in particular the same Seed, resolved
// Parallelism and Incremental flag, since all three shape the random
// streams. The restored partitioner continues exactly where the exported
// one stopped: same RNG states, same convergence bookkeeping, same
// active-set frontier.
func Restore(g *graph.Graph, asn *partition.Assignment, cfg Config, st State) (*Partitioner, error) {
	if st.Iteration < 0 || st.Quiet < 0 || st.LastMigration < 0 {
		return nil, fmt.Errorf("core: negative counters in state (iter=%d quiet=%d last=%d)",
			st.Iteration, st.Quiet, st.LastMigration)
	}
	p, err := New(g, asn, cfg)
	if err != nil {
		return nil, err
	}
	if p.par > 1 {
		if len(st.ShardRNGs) != p.par {
			return nil, fmt.Errorf("core: state has %d shard RNG states, config resolves to %d shards",
				len(st.ShardRNGs), p.par)
		}
	} else if len(st.ShardRNGs) != 0 {
		return nil, fmt.Errorf("core: state has %d shard RNG states but config is sequential", len(st.ShardRNGs))
	}
	if cfg.Incremental != (st.Active != nil) {
		return nil, fmt.Errorf("core: state incremental=%v, config incremental=%v", st.Active != nil, cfg.Incremental)
	}
	p.iter = st.Iteration
	p.quiet = st.Quiet
	p.lastMigration = st.LastMigration
	if err := p.rngSrc.UnmarshalBinary(st.RNG); err != nil {
		return nil, fmt.Errorf("core: restore RNG: %w", err)
	}
	for i, sh := range p.shards {
		if err := sh.src.UnmarshalBinary(st.ShardRNGs[i]); err != nil {
			return nil, fmt.Errorf("core: restore shard %d RNG: %w", i, err)
		}
	}
	if st.Active != nil {
		// New seeded the frontier with every live vertex; replace it with
		// the exported scheduler state.
		active, err := activeset.RestoreSet(cfg.K, g.NumSlots(), *st.Active)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		p.active = active
	}
	if st.Heat != nil {
		if len(st.Heat) > g.NumSlots() {
			return nil, fmt.Errorf("core: state has heat for %d slots, graph has %d", len(st.Heat), g.NumSlots())
		}
		p.heat = append([]float32(nil), st.Heat...)
		max := 0.0
		for _, h := range p.heat {
			if m := float64(h); m > max {
				max = m
			}
		}
		p.setHeatScale(max)
	}
	return p, nil
}
