package core

import (
	"fmt"
	"testing"

	"xdgp/internal/gen"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// TestIncrementalIterationInvariants drives the active-set scheduler —
// sequential and sharded — through full iterations on both graph
// families, asserting the quota/capacity/partition invariants at every
// barrier, exactly as the full-sweep paths are checked.
func TestIncrementalIterationInvariants(t *testing.T) {
	graphs := map[string]func() *graph.Graph{
		"powerlaw":   func() *graph.Graph { return gen.HolmeKim(1200, 5, 0.1, 7) },
		"forestfire": func() *graph.Graph { return forestFireGraph(t, 7) },
	}
	for name, build := range graphs {
		for _, par := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/P=%d", name, par), func(t *testing.T) {
				g := build()
				k := 9
				cfg := DefaultConfig(k, 11)
				cfg.Parallelism = par
				cfg.Incremental = true
				cfg.RecordEvery = 0
				p := mustNew(t, g, partition.Random(g, k, 11), cfg)
				for i := 0; i < 60 && !p.Converged(); i++ {
					stepAndCheckInvariants(t, p, i)
				}
			})
		}
	}
}

// TestIncrementalDeterminism pins the reproducibility contract for the
// active-set scheduler: fixed seed and shard count replay byte-identical
// assignments and histories.
func TestIncrementalDeterminism(t *testing.T) {
	for _, par := range []int{1, 4} {
		run := func() (*Partitioner, Result) {
			g := gen.HolmeKim(1500, 5, 0.1, 3)
			cfg := DefaultConfig(9, 42)
			cfg.Parallelism = par
			cfg.Incremental = true
			cfg.RecordEvery = 0
			cfg.MaxIterations = 400
			p := mustNewT(g, partition.Hash(g, 9), cfg)
			return p, p.Run()
		}
		p1, r1 := run()
		p2, r2 := run()
		if r1.Iterations != r2.Iterations || r1.TotalMigrations != r2.TotalMigrations ||
			r1.FinalCutRatio != r2.FinalCutRatio {
			t.Fatalf("P=%d: runs diverged: %+v vs %+v", par, r1, r2)
		}
		for i, st := range r1.History {
			if st != r2.History[i] {
				t.Fatalf("P=%d iteration %d: history diverged: %+v vs %+v", par, i, st, r2.History[i])
			}
		}
		for v := 0; v < p1.g.NumSlots(); v++ {
			if p1.Assignment().Of(graph.VertexID(v)) != p2.Assignment().Of(graph.VertexID(v)) {
				t.Fatalf("P=%d: vertex %d assigned differently across runs", par, v)
			}
		}
	}
}

// TestIncrementalComparableQuality checks the active-set schedule
// converges to a cut ratio in the same band as the full sweep (it cannot
// be identical: the schedule visits vertices in a different order, so RNG
// consumption differs).
func TestIncrementalComparableQuality(t *testing.T) {
	graphs := map[string]func() *graph.Graph{
		"powerlaw":   func() *graph.Graph { return gen.HolmeKim(1500, 5, 0.1, 5) },
		"forestfire": func() *graph.Graph { return forestFireGraph(t, 5) },
	}
	for name, build := range graphs {
		t.Run(name, func(t *testing.T) {
			run := func(incremental bool) (before, after float64, converged bool) {
				g := build()
				asn := partition.Hash(g, 9)
				before = partition.CutRatio(g, asn)
				cfg := DefaultConfig(9, 21)
				cfg.Incremental = incremental
				cfg.RecordEvery = 0
				p := mustNewT(g, asn, cfg)
				res := p.Run()
				return before, res.FinalCutRatio, res.Converged
			}
			before, full, fullConv := run(false)
			_, inc, incConv := run(true)
			if !fullConv || !incConv {
				t.Fatalf("convergence: full=%t incremental=%t", fullConv, incConv)
			}
			if full >= before || inc >= before {
				t.Fatalf("no improvement: initial %.3f, full %.3f, incremental %.3f", before, full, inc)
			}
			if diff := inc - full; diff > 0.10 || diff < -0.10 {
				t.Fatalf("incremental cut %.3f not comparable to full sweep %.3f (initial %.3f)", inc, full, before)
			}
		})
	}
}

// TestIncrementalFrontierDrains is the asymptotic point of the scheduler:
// after convergence the active set is empty and an iteration examines
// nothing; a small churn burst wakes only the region of change, so the
// next sweeps stay proportional to the burst instead of |V|.
func TestIncrementalFrontierDrains(t *testing.T) {
	g := gen.HolmeKim(5000, 5, 0.1, 3)
	n := g.NumVertices()
	cfg := DefaultConfig(9, 3)
	cfg.Incremental = true
	cfg.RecordEvery = 0
	p := mustNew(t, g, partition.Hash(g, 9), cfg)
	res := p.Run()
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if res.History[0].Examined != n {
		t.Fatalf("first iteration examined %d, want the full seed %d", res.History[0].Examined, n)
	}
	if got := p.DirtyCount(); got != 0 {
		t.Fatalf("converged frontier not empty: %d vertices still dirty", got)
	}
	if st := p.Step(); st.Examined != 0 || st.Migrations != 0 {
		t.Fatalf("idle iteration examined %d vertices, migrated %d", st.Examined, st.Migrations)
	}

	// 1% churn: the woken set must be proportional to the burst (touched
	// vertices and their neighbourhoods), far below the full sweep.
	burst := gen.ForestFireExpansion(g, n/100, gen.DefaultForestFire(), 8)
	p.ApplyBatch(burst)
	woken := p.DirtyCount()
	if woken == 0 {
		t.Fatal("burst woke nothing")
	}
	if woken > n/4 {
		t.Fatalf("burst of %d vertices woke %d of %d — not proportional to churn", n/100, woken, n)
	}
	st := p.Step()
	if st.Examined != woken {
		t.Fatalf("examined %d != frontier %d", st.Examined, woken)
	}
	res = p.Run()
	if !res.Converged {
		t.Fatal("did not re-converge after the burst")
	}
	for _, it := range res.History {
		if it.Examined > n/4 {
			t.Fatalf("iteration %d examined %d of %d after a 1%% burst", it.Iteration, it.Examined, n)
		}
	}
	if err := p.Assignment().Validate(g); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalEmptyBatchNoop pins the satellite requirement: an empty
// or fully-duplicate batch must leave the drained dirty set empty.
func TestIncrementalEmptyBatchNoop(t *testing.T) {
	g := gen.Cube3D(5)
	cfg := DefaultConfig(4, 1)
	cfg.Incremental = true
	p := mustNew(t, g, partition.Hash(g, 4), cfg)
	p.Run()
	if !p.Converged() {
		t.Fatal("expected convergence")
	}
	if got := p.DirtyCount(); got != 0 {
		t.Fatalf("converged frontier not empty: %d", got)
	}
	if p.ApplyBatch(nil) != 0 {
		t.Fatal("nil batch must apply nothing")
	}
	if p.ApplyBatch(graph.Batch{{Kind: graph.MutAddVertex, U: 0}, {Kind: graph.MutAddEdge, U: 0, V: 1}}) != 0 {
		t.Fatal("duplicate batch must apply nothing")
	}
	if got := p.DirtyCount(); got != 0 {
		t.Fatalf("no-op batches dirtied %d vertices", got)
	}
	if !p.Converged() {
		t.Fatal("no-op batches must not reset convergence")
	}
}

// TestIncrementalVertexRecycling streams removals followed by re-adds so
// vertex IDs are recycled mid-stream while they may still sit on the
// frontier; the scheduler must neither examine dead slots nor lose the
// recycled vertex's wake.
func TestIncrementalVertexRecycling(t *testing.T) {
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("P=%d", par), func(t *testing.T) {
			g := gen.Cube3D(6)
			victims := []graph.VertexID{3, 50, 101}
			var batches []graph.Batch
			// Remove hub-ish vertices (waking their neighbourhoods), then
			// immediately re-add edges that recycle the freed IDs.
			for _, v := range victims {
				batches = append(batches, graph.Batch{{Kind: graph.MutRemoveVertex, U: v}})
			}
			for _, v := range victims {
				batches = append(batches, graph.Batch{
					{Kind: graph.MutAddVertex, U: v},
					{Kind: graph.MutAddEdge, U: v, V: v + 1},
				})
			}
			cfg := DefaultConfig(4, 9)
			cfg.Incremental = true
			cfg.Parallelism = par
			cfg.RecordEvery = 0
			p := mustNew(t, g, partition.Hash(g, 4), cfg)
			res := p.RunDynamic(graph.NewSliceStream(batches))
			if !res.Converged {
				t.Fatal("dynamic run did not converge")
			}
			for _, v := range victims {
				if !g.Has(v) {
					t.Fatalf("recycled vertex %d missing", v)
				}
				if p.Assignment().Of(v) == partition.None {
					t.Fatalf("recycled vertex %d unplaced", v)
				}
			}
			if err := g.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if err := p.Assignment().Validate(g); err != nil {
				t.Fatal(err)
			}
			if got := p.DirtyCount(); got != 0 {
				t.Fatalf("converged frontier not empty: %d", got)
			}
		})
	}
}

// TestIncrementalRemovalOfScheduledVertex removes a vertex that is
// sitting on the frontier: the next iteration must drop it without
// examining the dead slot.
func TestIncrementalRemovalOfScheduledVertex(t *testing.T) {
	g := gen.Cube3D(5)
	cfg := DefaultConfig(4, 2)
	cfg.Incremental = true
	p := mustNew(t, g, partition.Hash(g, 4), cfg)
	p.Run()
	victim := graph.VertexID(31)
	// Wake the victim's neighbourhood, then kill the victim before it is
	// ever examined.
	p.ApplyBatch(graph.Batch{{Kind: graph.MutAddEdge, U: victim, V: 0}})
	p.ApplyBatch(graph.Batch{{Kind: graph.MutRemoveVertex, U: victim}})
	st := p.Step()
	if st.Examined >= g.NumSlots() {
		t.Fatalf("examined %d — swept dead slots", st.Examined)
	}
	if p.Assignment().Of(victim) != partition.None {
		t.Fatal("removed vertex still assigned")
	}
	if res := p.Run(); !res.Converged {
		t.Fatal("did not re-converge")
	}
	if err := p.Assignment().Validate(g); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalDynamicStream interleaves the active-set scheduler with
// a forest-fire mutation stream on both execution paths and validates the
// final state.
func TestIncrementalDynamicStream(t *testing.T) {
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("P=%d", par), func(t *testing.T) {
			g := gen.Cube3D(7)
			stream := forestFireStream(g, 10, 40, 13)
			cfg := DefaultConfig(6, 13)
			cfg.Incremental = true
			cfg.Parallelism = par
			cfg.RecordEvery = 0
			cfg.MaxIterations = 600
			p := mustNew(t, g, partition.Hash(g, 6), cfg)
			res := p.RunDynamic(stream)
			if !res.Converged {
				t.Fatalf("dynamic run did not converge in %d iterations", res.Iterations)
			}
			if err := p.Assignment().Validate(p.g); err != nil {
				t.Fatal(err)
			}
			if err := p.g.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if !partition.WithinCapacities(p.Assignment(), p.Capacities()) {
				t.Fatalf("capacity exceeded after dynamic run: sizes=%v caps=%v",
					p.Assignment().Sizes(), p.Capacities())
			}
		})
	}
}

// TestIncrementalEdgeBalanced runs the edge-balanced extension under the
// active-set scheduler: degree-weighted quotas must still admit moves.
func TestIncrementalEdgeBalanced(t *testing.T) {
	g := gen.HolmeKim(800, 5, 0.1, 9)
	cfg := DefaultConfig(6, 9)
	cfg.Incremental = true
	cfg.BalanceEdges = true
	cfg.RecordEvery = 0
	cfg.MaxIterations = 150
	p := mustNew(t, g, partition.Random(g, 6, 9), cfg)
	res := p.Run()
	if err := p.Assignment().Validate(p.g); err != nil {
		t.Fatal(err)
	}
	if res.TotalMigrations == 0 {
		t.Fatal("edge-balanced incremental run never migrated")
	}
}

// TestIncrementalZeroWillingness pins s=0 semantics: no vertex ever
// evaluates, nothing moves, but the run still converges (the frontier
// stays populated — unwilling vertices remain scheduled — yet quiet
// iterations accumulate exactly as in the full sweep).
func TestIncrementalZeroWillingness(t *testing.T) {
	g := gen.Cube3D(5)
	cfg := DefaultConfig(4, 1)
	cfg.S = 0
	cfg.Incremental = true
	p := mustNew(t, g, partition.Hash(g, 4), cfg)
	for i := 0; i < 40; i++ {
		if st := p.Step(); st.Migrations != 0 || st.Requested != 0 {
			t.Fatalf("s=0 produced %d migrations", st.Migrations)
		}
	}
	if !p.Converged() {
		t.Fatal("zero-migration run must converge")
	}
}
