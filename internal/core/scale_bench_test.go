package core

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"testing"

	"xdgp/internal/gen"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// BenchmarkChurnScenario is the million-scale storage scenario: a
// power-law graph at n vertices (default 1M; the nightly workflow runs
// 10M via XDGP_CHURN_SCALE) is partitioned, settled by the incremental
// scheduler, then driven with stationary 0.1 % vertex churn — the
// ROADMAP's production regime in miniature. It reports the two numbers
// the CSR-arena layout is accountable for:
//
//   - bytes/edge — measured resident adjacency bytes of the arena layout,
//     with oldbytes/edge measured the same way for the naive
//     slice-of-slices layout it replaced (the ≥40 % improvement
//     acceptance bar compares the two);
//   - ns/examined — wall time per examined vertex across the churn-absorb
//     iterations, the storage-sensitive inner loop.
//
// The scenario is deliberately not in ci/bench.sh (PR gates run the 10k
// and 100k churn benches); the nightly workflow runs it at both scales.
func BenchmarkChurnScenario(b *testing.B) {
	n := 1_000_000
	if v := os.Getenv("XDGP_CHURN_SCALE"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1000 {
			b.Fatalf("XDGP_CHURN_SCALE %q invalid", v)
		}
		n = parsed
	}
	b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
		// Average degree 6 (m=3), the regime of the paper's sparse
		// real-world graphs.
		g := gen.BarabasiAlbert(n, 3, 1)

		newBytes := measureArenaBytes(b, g)
		oldBytes := measureSliceOfSlicesBytes(b, g)

		cfg := DefaultConfig(16, 1)
		cfg.RecordEvery = 0
		cfg.Incremental = true
		p, err := New(g, partition.Hash(g, 16), cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Settle the bulk of the initial frontier; full convergence at
		// this scale is a multi-minute affair and the churn measurement
		// only needs a quiescent-enough baseline.
		for s := 0; s < 40 && p.DirtyCount() > n/100; s++ {
			p.Step()
		}

		rng := rand.New(rand.NewSource(1))
		stepsPerBurst := cfg.ConvergenceWindow
		examined := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			p.ApplyBatch(churnBatch(g, n/1000, rng))
			b.StartTimer()
			for s := 0; s < stepsPerBurst; s++ {
				st := p.Step()
				examined += st.Examined
				if p.Converged() {
					break
				}
			}
		}
		b.StopTimer()
		// ResetTimer wipes user metrics, so everything reports here.
		m := float64(g.NumEdges())
		b.ReportMetric(newBytes/m, "bytes/edge")
		b.ReportMetric(oldBytes/m, "oldbytes/edge")
		b.ReportMetric(100*(1-newBytes/oldBytes), "mem-improve-%")
		if examined > 0 {
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(examined), "ns/examined")
			b.ReportMetric(float64(examined)/float64(b.N), "examined/burst")
		}
	})
}

// measureArenaBytes rebuilds g's edge set into a fresh compacted
// CSR-arena graph between two GC-settled heap readings, returning the
// resident bytes of the complete graph structure.
func measureArenaBytes(b *testing.B, g *graph.Graph) float64 {
	b.Helper()
	before := settledHeap()
	fresh := graph.NewUndirected(g.NumSlots())
	for i := 0; i < g.NumSlots(); i++ {
		fresh.AddVertex()
	}
	g.ForEachEdge(func(u, v graph.VertexID) { fresh.AddEdge(u, v) })
	fresh.Compact()
	after := settledHeap()
	if fresh.NumEdges() != g.NumEdges() {
		b.Fatalf("arena rebuild lost edges: %d vs %d", fresh.NumEdges(), g.NumEdges())
	}
	bytes := float64(after - before)
	runtime.KeepAlive(fresh)
	return bytes
}

// sosGraph is the storage layout this PR replaced — adjacency as one heap
// allocation per vertex — rebuilt here as the memory comparison baseline.
type sosGraph struct {
	out   [][]graph.VertexID
	alive []bool
}

// measureSliceOfSlicesBytes builds the same edge set in the former
// [][]VertexID layout (append-grown per-vertex lists, alive table)
// between GC-settled heap readings.
func measureSliceOfSlicesBytes(b *testing.B, g *graph.Graph) float64 {
	b.Helper()
	before := settledHeap()
	old := &sosGraph{
		out:   make([][]graph.VertexID, g.NumSlots()),
		alive: make([]bool, g.NumSlots()),
	}
	ends := 0
	g.ForEachEdge(func(u, v graph.VertexID) {
		old.out[u] = append(old.out[u], v)
		old.out[v] = append(old.out[v], u)
		old.alive[u], old.alive[v] = true, true
		ends += 2
	})
	after := settledHeap()
	if ends != 2*g.NumEdges() {
		b.Fatalf("slice-of-slices rebuild lost edges: %d ends vs %d", ends, 2*g.NumEdges())
	}
	bytes := float64(after - before)
	runtime.KeepAlive(old)
	return bytes
}

func settledHeap() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}
