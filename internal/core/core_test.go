package core

import (
	"testing"
	"testing/quick"

	"xdgp/internal/gen"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

func mustNew(t *testing.T, g *graph.Graph, asn *partition.Assignment, cfg Config) *Partitioner {
	t.Helper()
	p, err := New(g, asn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidation(t *testing.T) {
	g := gen.Cube3D(3)
	asn := partition.Hash(g, 4)
	bad := []Config{
		{K: 0, CapacityFactor: 1.1, S: 0.5, ConvergenceWindow: 30, MaxIterations: 10},
		{K: 4, CapacityFactor: 0.9, S: 0.5, ConvergenceWindow: 30, MaxIterations: 10},
		{K: 4, CapacityFactor: 1.1, S: -0.1, ConvergenceWindow: 30, MaxIterations: 10},
		{K: 4, CapacityFactor: 1.1, S: 1.5, ConvergenceWindow: 30, MaxIterations: 10},
		{K: 4, CapacityFactor: 1.1, S: 0.5, ConvergenceWindow: 0, MaxIterations: 10},
		{K: 4, CapacityFactor: 1.1, S: 0.5, ConvergenceWindow: 30, MaxIterations: 0},
	}
	for i, cfg := range bad {
		if _, err := New(g, asn, cfg); err == nil {
			t.Errorf("case %d: expected config error", i)
		}
	}
	// Mismatched k between config and assignment.
	if _, err := New(g, partition.Hash(g, 3), DefaultConfig(4, 1)); err == nil {
		t.Error("k mismatch must error")
	}
	// Unassigned vertices must be rejected.
	if _, err := New(g, partition.NewAssignment(g.NumSlots(), 4), DefaultConfig(4, 1)); err == nil {
		t.Error("incomplete assignment must error")
	}
}

func TestImprovesHashCutOnMesh(t *testing.T) {
	g := gen.Cube3D(10) // 1000 vertices
	asn := partition.Hash(g, 9)
	before := partition.CutRatio(g, asn)
	p := mustNew(t, g, asn, DefaultConfig(9, 1))
	res := p.Run()
	if !res.Converged {
		t.Fatalf("did not converge in %d iterations", res.Iterations)
	}
	// Paper Figure 4A: hash starts near 0.9 and the iterative algorithm
	// removes at least 0.2 of cut ratio on meshes.
	if res.FinalCutRatio > before-0.2 {
		t.Fatalf("cut ratio %.3f -> %.3f: improvement below the paper's band", before, res.FinalCutRatio)
	}
	if err := p.Assignment().Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestCapacitiesNeverExceeded(t *testing.T) {
	g := gen.HolmeKim(1500, 5, 0.1, 2)
	asn := partition.Random(g, 9, 2) // balanced start: within capacity throughout
	cfg := DefaultConfig(9, 3)
	p := mustNew(t, g, asn, cfg)
	for i := 0; i < 150 && !p.Converged(); i++ {
		p.Step()
		if !partition.WithinCapacities(p.Assignment(), p.Capacities()) {
			t.Fatalf("iteration %d: capacity exceeded: sizes=%v caps=%v",
				i, p.Assignment().Sizes(), p.Capacities())
		}
	}
}

func TestQuotaWorstCaseProperty(t *testing.T) {
	// Even if every source partition fully uses its quota towards j, the
	// total inbound to j never exceeds its free capacity: (k−1)·⌊free/(k−1)⌋ ≤ free.
	f := func(free uint16, k uint8) bool {
		kk := int(k%32) + 2
		fr := int(free % 10000)
		q := fr / (kk - 1)
		return (kk-1)*q <= fr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroWillingnessNeverMoves(t *testing.T) {
	g := gen.Cube3D(5)
	asn := partition.Hash(g, 4)
	cfg := DefaultConfig(4, 1)
	cfg.S = 0 // paper: "A value of s = 0 causes no migration whatsoever"
	p := mustNew(t, g, asn, cfg)
	for i := 0; i < 40; i++ {
		st := p.Step()
		if st.Migrations != 0 || st.Requested != 0 {
			t.Fatalf("s=0 produced %d migrations", st.Migrations)
		}
	}
	if !p.Converged() {
		t.Fatal("zero-migration run must converge")
	}
}

func TestSingletonPartitionIsStable(t *testing.T) {
	g := gen.Cube3D(4)
	asn := partition.Hash(g, 1)
	p := mustNew(t, g, asn, DefaultConfig(1, 1))
	res := p.Run()
	if res.TotalMigrations != 0 {
		t.Fatalf("k=1 must never migrate, got %d", res.TotalMigrations)
	}
	if res.FinalCutRatio != 0 {
		t.Fatalf("k=1 cut ratio = %v", res.FinalCutRatio)
	}
}

func TestPerfectPartitioningIsStable(t *testing.T) {
	// Two disjoint cliques already split perfectly: no vertex should want
	// to move (its own partition always holds the most neighbours).
	g := graph.NewUndirected(0)
	for i := 0; i < 12; i++ {
		g.AddVertex()
	}
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			g.AddEdge(graph.VertexID(i), graph.VertexID(j))
			g.AddEdge(graph.VertexID(i+6), graph.VertexID(j+6))
		}
	}
	asn := partition.NewAssignment(g.NumSlots(), 2)
	for i := 0; i < 6; i++ {
		asn.Assign(graph.VertexID(i), 0)
		asn.Assign(graph.VertexID(i+6), 1)
	}
	p := mustNew(t, g, asn, DefaultConfig(2, 1))
	res := p.Run()
	if res.TotalMigrations != 0 {
		t.Fatalf("perfect partitioning migrated %d times", res.TotalMigrations)
	}
	if res.ConvergedAt != 1 {
		t.Fatalf("ConvergedAt = %d, want 1 (no migration ever)", res.ConvergedAt)
	}
}

func TestStepStatsRecording(t *testing.T) {
	g := gen.Cube3D(5)
	cfg := DefaultConfig(4, 1)
	cfg.RecordEvery = 2
	p := mustNew(t, g, partition.Hash(g, 4), cfg)
	s0 := p.Step()
	s1 := p.Step()
	if s0.CutEdges < 0 {
		t.Fatal("iteration 0 must record cuts with RecordEvery=2")
	}
	if s1.CutEdges != -1 {
		t.Fatal("iteration 1 must skip cut recording with RecordEvery=2")
	}
	cfg2 := DefaultConfig(4, 1)
	cfg2.RecordEvery = 0
	p2 := mustNew(t, gen.Cube3D(5), partition.Hash(gen.Cube3D(5), 4), cfg2)
	if st := p2.Step(); st.CutEdges != -1 {
		t.Fatal("RecordEvery=0 must not record cuts")
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	run := func() Result {
		g := gen.Cube3D(6)
		return mustNewT(g, partition.Hash(g, 4), DefaultConfig(4, 42)).Run()
	}
	r1, r2 := run(), run()
	if r1.Iterations != r2.Iterations || r1.FinalCutRatio != r2.FinalCutRatio ||
		r1.TotalMigrations != r2.TotalMigrations {
		t.Fatalf("same seed, different runs: %+v vs %+v", r1, r2)
	}
}

func mustNewT(g *graph.Graph, asn *partition.Assignment, cfg Config) *Partitioner {
	p, err := New(g, asn, cfg)
	if err != nil {
		panic(err)
	}
	return p
}

func TestConvergenceTimeReported(t *testing.T) {
	g := gen.Cube3D(6)
	p := mustNew(t, g, partition.Hash(g, 4), DefaultConfig(4, 1))
	res := p.Run()
	if !res.Converged {
		t.Fatal("expected convergence")
	}
	if res.ConvergedAt <= 0 || res.ConvergedAt > res.Iterations {
		t.Fatalf("ConvergedAt = %d outside (0, %d]", res.ConvergedAt, res.Iterations)
	}
	// The quiet window means total iterations ≈ ConvergedAt + window.
	if res.Iterations < res.ConvergedAt+DefaultConfig(4, 1).ConvergenceWindow {
		t.Fatalf("Iterations %d < ConvergedAt %d + window", res.Iterations, res.ConvergedAt)
	}
}

func TestMaxIterationsBound(t *testing.T) {
	g := gen.HolmeKim(500, 4, 0.1, 1)
	cfg := DefaultConfig(8, 1)
	cfg.MaxIterations = 5
	p := mustNew(t, g, partition.Hash(g, 8), cfg)
	res := p.Run()
	if res.Iterations > 5 {
		t.Fatalf("ran %d iterations, bound was 5", res.Iterations)
	}
	if res.Converged {
		t.Fatal("cannot have converged in 5 iterations with window 30")
	}
}

func TestRunPropertyInvariants(t *testing.T) {
	// For random small graphs and k, starting from a balanced assignment,
	// after a run: assignment valid, within capacities, cut ratio in [0,1].
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%6) + 2
		g := gen.HolmeKim(200, 3, 0.1, seed)
		asn := partition.Random(g, k, seed)
		cfg := DefaultConfig(k, seed)
		cfg.MaxIterations = 200
		p, err := New(g, asn, cfg)
		if err != nil {
			return false
		}
		res := p.Run()
		if err := p.Assignment().Validate(g); err != nil {
			return false
		}
		if !partition.WithinCapacities(p.Assignment(), p.Capacities()) {
			return false
		}
		return res.FinalCutRatio >= 0 && res.FinalCutRatio <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestOverfullInitialPartitionOnlyDrains(t *testing.T) {
	// Hash placement ignores capacities, so a partition may start above
	// C(i). The quota rule must never let it grow further; it can only
	// drain. (Section 2.2's guarantee concerns migration-driven growth.)
	g := gen.HolmeKim(1000, 5, 0.1, 4)
	asn := partition.Hash(g, 9)
	p := mustNew(t, g, asn, DefaultConfig(9, 4))
	caps := p.Capacities()
	limit := make([]int, 9)
	for i := range limit {
		limit[i] = caps[i]
		if s := asn.Size(partition.ID(i)); s > limit[i] {
			limit[i] = s // initially overfull: may not grow
		}
	}
	for i := 0; i < 120 && !p.Converged(); i++ {
		p.Step()
		for pi := 0; pi < 9; pi++ {
			if s := p.Assignment().Size(partition.ID(pi)); s > limit[pi] {
				t.Fatalf("iteration %d: partition %d grew to %d above limit %d",
					i, pi, s, limit[pi])
			}
		}
	}
}
