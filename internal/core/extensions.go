package core

import (
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// This file implements the paper's stated future-work extensions
// (Section 6) on top of the core heuristic:
//
//   - Edge-balanced partitioning: "as many graph algorithms like PageRank
//     have a complexity that is proportional to the number of edges, we
//     would like to extend our heuristic to create partitions that are
//     balanced on the number of edges." Enabled with Config.BalanceEdges:
//     capacities and quotas are accounted in edge endpoints (vertex
//     degree) instead of vertex counts, so a hub "costs" its degree.
//
//   - Quota ablation: Config.DisableQuotas removes Section 2.2's
//     capacity quotas entirely, reproducing the node densification the
//     paper introduces them to prevent. For ablation studies only.

// EdgeLoads returns the degree sum hosted by each partition — the load
// metric of the edge-balanced extension.
func EdgeLoads(g *graph.Graph, a *partition.Assignment) []int {
	loads := make([]int, a.K())
	g.ForEachVertex(func(v graph.VertexID) {
		if p := a.Of(v); p != partition.None {
			loads[p] += g.Degree(v)
		}
	})
	return loads
}

// EdgeImbalance returns the maximum partition degree-sum divided by the
// balanced share; 1.0 is perfect edge balance.
func EdgeImbalance(g *graph.Graph, a *partition.Assignment) float64 {
	loads := EdgeLoads(g, a)
	total := 0
	maxLoad := 0
	for _, l := range loads {
		total += l
		if l > maxLoad {
			maxLoad = l
		}
	}
	if total == 0 {
		return 0
	}
	return float64(maxLoad) / (float64(total) / float64(a.K()))
}

// edgeCapacities derives per-partition capacities in degree units.
func (p *Partitioner) edgeCapacities() []int {
	total := 0
	p.g.ForEachVertex(func(v graph.VertexID) { total += p.g.Degree(v) })
	return partition.UniformCapacities(total, p.cfg.K, p.cfg.CapacityFactor)
}
