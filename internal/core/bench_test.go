package core

import (
	"fmt"
	"testing"

	"xdgp/internal/gen"
	"xdgp/internal/partition"
)

// benchStep measures one full iteration (decide + grant + apply) at the
// given shard count, on a power-law graph large enough that the sweep
// dominates goroutine fan-out overhead.
func benchStep(b *testing.B, par int) {
	g := gen.HolmeKim(30000, 7, 0.1, 1)
	cfg := DefaultConfig(16, 1)
	cfg.RecordEvery = 0
	cfg.Parallelism = par
	p, err := New(g, partition.Hash(g, 16), cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}

// BenchmarkStepPowerLaw compares the sequential iteration against the
// sharded sweep: the decide phase is embarrassingly parallel, so on a
// multicore machine P≥4 is expected to beat seq by ≥2x.
func BenchmarkStepPowerLaw(b *testing.B) {
	b.Run("seq", func(b *testing.B) { benchStep(b, 1) })
	for _, par := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("P=%d", par), func(b *testing.B) { benchStep(b, par) })
	}
}

// BenchmarkStepEdgeBalanced measures the edge-balanced extension under
// both paths (quota units are degrees, so the grant phase claims larger
// amounts).
func BenchmarkStepEdgeBalanced(b *testing.B) {
	for _, bc := range []struct {
		name string
		par  int
	}{{"seq", 1}, {"P=4", 4}} {
		b.Run(bc.name, func(b *testing.B) {
			g := gen.HolmeKim(20000, 6, 0.1, 2)
			cfg := DefaultConfig(12, 2)
			cfg.RecordEvery = 0
			cfg.BalanceEdges = true
			cfg.Parallelism = bc.par
			p, err := New(g, partition.Random(g, 12, 2), cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Step()
			}
		})
	}
}
