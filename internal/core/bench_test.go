package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"xdgp/internal/gen"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// benchStep measures one full iteration (decide + grant + apply) at the
// given shard count, on a power-law graph large enough that the sweep
// dominates goroutine fan-out overhead.
func benchStep(b *testing.B, par int) {
	g := gen.HolmeKim(30000, 7, 0.1, 1)
	cfg := DefaultConfig(16, 1)
	cfg.RecordEvery = 0
	cfg.Parallelism = par
	p, err := New(g, partition.Hash(g, 16), cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}

// BenchmarkStepPowerLaw compares the sequential iteration against the
// sharded sweep: the decide phase is embarrassingly parallel, so on a
// multicore machine P≥4 is expected to beat seq by ≥2x.
func BenchmarkStepPowerLaw(b *testing.B) {
	b.Run("seq", func(b *testing.B) { benchStep(b, 1) })
	for _, par := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("P=%d", par), func(b *testing.B) { benchStep(b, par) })
	}
}

// churnBases caches, per graph size, a power-law graph converged by the
// heuristic — the expensive shared fixture of the churn benchmarks.
var churnBases sync.Map // int -> *churnBase

type churnBase struct {
	once sync.Once
	g    *graph.Graph
	asn  *partition.Assignment
}

// convergedPowerLaw returns fresh clones of a converged n-vertex
// power-law graph and its adapted 16-way assignment.
func convergedPowerLaw(b *testing.B, n int) (*graph.Graph, *partition.Assignment) {
	b.Helper()
	v, _ := churnBases.LoadOrStore(n, &churnBase{})
	base := v.(*churnBase)
	base.once.Do(func() {
		g := gen.HolmeKim(n, 7, 0.1, 1)
		cfg := DefaultConfig(16, 1)
		cfg.RecordEvery = 0
		cfg.Incremental = true // fixture setup only; both paths start from the same state
		p, err := New(g, partition.Hash(g, 16), cfg)
		if err != nil {
			b.Fatal(err)
		}
		p.Run()
		base.g, base.asn = g, p.Assignment()
	})
	return base.g.Clone(), base.asn.Clone()
}

// churnBatch builds one 1% churn tick: `size` distinct vertices leave
// and the same IDs rejoin with fresh attachments (the paper's CDR
// workload shape — subscribers churning). Reusing the removed IDs keeps
// |V| and the slot table exactly fixed, so per-tick cost is stationary
// no matter how many ticks the benchmark executes (fresh-ID generators
// like ForestFireExpansion grow the slot table, which a slot-iterating
// full sweep pays for, coupling ns/op to b.N).
func churnBatch(g *graph.Graph, size int, rng *rand.Rand) graph.Batch {
	slots := g.NumSlots()
	victims := make([]graph.VertexID, 0, size)
	seen := make(map[graph.VertexID]bool, size)
	for len(victims) < size {
		v := graph.VertexID(rng.Intn(slots))
		if g.Has(v) && !seen[v] {
			seen[v] = true
			victims = append(victims, v)
		}
	}
	batch := make(graph.Batch, 0, size*9)
	for _, v := range victims {
		batch = append(batch, graph.Mutation{Kind: graph.MutRemoveVertex, U: v})
	}
	for _, v := range victims {
		batch = append(batch, graph.Mutation{Kind: graph.MutAddVertex, U: v})
		for e := 0; e < 7; e++ {
			batch = append(batch, graph.Mutation{Kind: graph.MutAddEdge, U: v, V: graph.VertexID(rng.Intn(slots))})
		}
	}
	return batch
}

// BenchmarkStepConvergedChurn is the headline measurement of the
// active-set scheduler: on a converged power-law graph, each benchmark
// iteration applies a 1% churn tick (adds balanced by removals, keeping
// |V| stationary across b.N) and runs the heuristic iterations that
// absorb it — the paper's streaming loop: churn arrives, the partitioner
// re-adapts between ticks. The per-tick iteration budget is the paper's
// ConvergenceWindow (30): a mutated graph must run that many quiet
// iterations to re-declare convergence, so every tick costs at least a
// window of iterations under the paper's protocol. Only the Steps are
// timed — tick generation and ApplyBatch are identical for both modes
// and would otherwise drown the sweep they feed. The full sweep pays
// O(|V|) for every one of those iterations regardless of churn; the
// incremental schedule pays for the woken region once and then for its
// shrinking residue, so the gap widens with graph size (the acceptance
// bar is ≥5× at n=100k).
func BenchmarkStepConvergedChurn(b *testing.B) {
	stepsPerBurst := DefaultConfig(16, 1).ConvergenceWindow
	for _, n := range []int{10000, 100000} {
		for _, bc := range []struct {
			name        string
			incremental bool
		}{{"full", false}, {"incremental", true}} {
			b.Run(fmt.Sprintf("n=%d/%s", n, bc.name), func(b *testing.B) {
				g, asn := convergedPowerLaw(b, n)
				cfg := DefaultConfig(16, 1)
				cfg.RecordEvery = 0
				cfg.Incremental = bc.incremental
				p, err := New(g, asn, cfg)
				if err != nil {
					b.Fatal(err)
				}
				rng := rand.New(rand.NewSource(1))
				examined := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					p.ApplyBatch(churnBatch(g, n/100, rng))
					b.StartTimer()
					examined = 0
					for s := 0; s < stepsPerBurst; s++ {
						examined += p.Step().Examined
					}
				}
				b.ReportMetric(float64(examined), "examined/burst")
			})
		}
	}
}

// BenchmarkStepEdgeBalanced measures the edge-balanced extension under
// both paths (quota units are degrees, so the grant phase claims larger
// amounts).
func BenchmarkStepEdgeBalanced(b *testing.B) {
	for _, bc := range []struct {
		name string
		par  int
	}{{"seq", 1}, {"P=4", 4}} {
		b.Run(bc.name, func(b *testing.B) {
			g := gen.HolmeKim(20000, 6, 0.1, 2)
			cfg := DefaultConfig(12, 2)
			cfg.RecordEvery = 0
			cfg.BalanceEdges = true
			cfg.Parallelism = bc.par
			p, err := New(g, partition.Random(g, 12, 2), cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Step()
			}
		})
	}
}
