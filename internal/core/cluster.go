package core

import (
	"fmt"

	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// This file splits one heuristic iteration into the two halves a
// multi-process cluster needs: a local decide phase that produces one
// shard's migration requests, and a global apply phase that merges every
// shard's requests and runs the grant + barrier exactly as the
// single-process parallel path would.
//
// The cluster is a deterministic replicated state machine. Every replica
// holds the full graph, the full assignment, and all N per-shard RNG
// streams (Parallelism is pinned to the shard count), but replica i only
// ever *advances* stream i: it runs decide for its own contiguous
// graph.ShardRange slice, exchanges the resulting ShardDecision with its
// peers, and then every replica applies the identical merged outcome.
// Because the decide phase is a pure function of (seed, iteration,
// graph, assignment) and the apply phase below reproduces the exact
// grant order of the in-process atomic ledger, N cooperating processes
// compute byte-identical assignments to one process running with
// Parallelism = N — the property the cluster tests and ci/cluster-smoke
// pin.
//
// Grant-order equivalence: grantAll distributes ledger rows (source
// partitions) over goroutines so each row is claimed by exactly one
// claimant, which walks the requests shard-major then slot-major. Rows
// are independent (a request with source i only ever decrements row i),
// so a plain sequential loop over rows 0..k-1 × shards 0..N-1 — the loop
// in StepClusterApply — grants the identical request set. The resulting
// move *order* differs from the concatenated grant buffers, which is
// harmless: move application is order-independent (assignments touch
// distinct vertices, dirty-bit marks and unparks are set-like and the
// next Prepare sorts the frontier).

// ClusterReq is one vertex's migration request inside a ShardDecision:
// the shuffled tied-best destinations live in the decision's Cands
// arena at [Off, Off+N).
type ClusterReq struct {
	V   graph.VertexID
	Off int32
	N   int32
	W   int32 // quota units the move consumes (1, or degree when edge-balanced)
}

// ClusterPark is one hard-denied vertex inside a ShardDecision: its
// tied-best destinations live in the decision's ParkDests arena at
// [Off, Off+N). Parked vertices leave the frontier until capacity frees
// up at one of those destinations.
type ClusterPark struct {
	V   graph.VertexID
	Off int32
	N   int32
}

// ShardDecision is one shard's complete contribution to one cluster
// iteration: everything the other replicas need to reproduce the grant
// and barrier phases without re-running this shard's RNG stream. The
// slices alias the shard's scratch buffers — valid until the next decide
// on the same partitioner, so encode (or copy) before stepping again.
type ShardDecision struct {
	// Examined is the number of frontier slots this shard's chunk
	// covered (incremental mode; the full sweep reports vertices
	// globally at apply time).
	Examined int
	// Requested counts post-coin, pre-quota migration requests.
	Requested int
	// Reqs groups the requests by source partition (len K), in slot
	// order within each group — the order the grant loop consumes.
	Reqs [][]ClusterReq
	// Cands is the arena backing every request's candidate list.
	Cands []partition.ID
	// Settled lists frontier vertices that chose to stay (incremental
	// mode): every replica unschedules them at the barrier.
	Settled []graph.VertexID
	// Keeps lists frontier vertices staying dirty (incremental mode).
	Keeps []graph.VertexID
	// Parks lists hard-denied vertices with ParkDests as their
	// destination arena (incremental mode).
	Parks     []ClusterPark
	ParkDests []partition.ID
}

// StepClusterDecide runs the decide half of one iteration for a single
// shard: the preamble (capacity + quota refresh) runs exactly as in
// Step, then only shard's slice of the sweep (or of the sorted frontier,
// in incremental mode) is decided, advancing only that shard's RNG
// stream. The returned decision aliases shard scratch — encode it before
// the next decide. Pair every call with StepClusterApply on the merged
// decisions of all shards, with no graph or assignment mutations in
// between.
func (p *Partitioner) StepClusterDecide(shard int) (*ShardDecision, error) {
	if shard < 0 || shard >= p.par {
		return nil, fmt.Errorf("core: cluster shard %d out of range [0,%d)", shard, p.par)
	}
	weight := p.beginIteration()
	d := &ShardDecision{}
	if p.cfg.K <= 1 {
		return d, nil // single partition: nothing can move
	}
	sh := p.shards[shard]
	sh.capture = true
	defer func() { sh.capture = false }()
	if p.cfg.Incremental {
		p.active.Grow(p.g.NumSlots())
		frontier := p.active.Prepare(p.g.Has)
		if len(frontier) == 0 {
			return d, nil
		}
		lo, hi := graph.ShardRange(shard, p.par, len(frontier))
		sh.decideFrontier(p, frontier[lo:hi], weight)
		d.Examined = hi - lo
	} else {
		lo, hi := graph.ShardRange(shard, p.par, p.g.NumSlots())
		sh.decide(p, lo, hi, weight)
	}
	d.Requested = sh.requested
	d.Cands = sh.candBuf
	d.Reqs = make([][]ClusterReq, p.cfg.K)
	for i, reqs := range sh.reqs {
		if len(reqs) == 0 {
			continue
		}
		out := make([]ClusterReq, len(reqs))
		for j, r := range reqs {
			out[j] = ClusterReq{V: r.v, Off: r.off, N: r.n, W: r.w}
		}
		d.Reqs[i] = out
	}
	d.Settled = sh.settled
	d.Keeps = sh.keep
	d.ParkDests = sh.parkDests
	if len(sh.parkBuf) > 0 {
		d.Parks = make([]ClusterPark, len(sh.parkBuf))
		for j, pk := range sh.parkBuf {
			d.Parks[j] = ClusterPark{V: pk.v, Off: pk.off, N: pk.n}
		}
	}
	return d, nil
}

// StepClusterApply completes the iteration begun by StepClusterDecide:
// decisions must hold one entry per shard, in shard order, merged
// identically on every replica. The grant loop reproduces the atomic
// ledger's deterministic order (see the file comment), then the
// incremental barrier and the simultaneous move application run exactly
// as in Step. Every replica executing this on identical decisions ends
// the iteration in an identical state.
func (p *Partitioner) StepClusterApply(decisions []*ShardDecision) (IterationStats, error) {
	if len(decisions) != p.par {
		return IterationStats{}, fmt.Errorf("core: cluster apply got %d decisions, want %d", len(decisions), p.par)
	}
	k := p.cfg.K
	p.moves = p.moves[:0]
	requested, examined := 0, 0
	for _, d := range decisions {
		if d == nil {
			return IterationStats{}, fmt.Errorf("core: cluster apply got a nil decision")
		}
		// An empty-frontier (or K ≤ 1) decide legitimately carries no
		// request groups at all; anything else must group by partition.
		if len(d.Reqs) != 0 && len(d.Reqs) != k {
			return IterationStats{}, fmt.Errorf("core: cluster decision groups requests into %d partitions, want %d", len(d.Reqs), k)
		}
		requested += d.Requested
		examined += d.Examined
	}
	if !p.cfg.Incremental && k > 1 {
		examined = p.g.NumVertices()
	}

	if k > 1 {
		// Grant: rows are independent, so a sequential row-major walk in
		// shard-major request order grants the exact set the in-process
		// atomic ledger would.
		for i := 0; i < k; i++ {
			from := partition.ID(i)
			for _, d := range decisions {
				if i >= len(d.Reqs) {
					continue
				}
				for _, r := range d.Reqs[i] {
					if int(r.Off) < 0 || int(r.Off)+int(r.N) > len(d.Cands) {
						return IterationStats{}, fmt.Errorf("core: cluster request candidates out of range")
					}
					for _, dst := range d.Cands[r.Off : r.Off+r.N] {
						if int(dst) >= k {
							return IterationStats{}, fmt.Errorf("core: cluster request destination %d out of range", dst)
						}
						if p.cfg.DisableQuotas {
							p.moves = append(p.moves, move{v: r.V, from: from, to: dst})
							break
						}
						if p.quota[i][dst] >= int(r.W) {
							p.quota[i][dst] -= int(r.W)
							p.moves = append(p.moves, move{v: r.V, from: from, to: dst})
							break
						}
					}
				}
			}
		}
	}

	if p.cfg.Incremental && examined > 0 {
		// Barrier bookkeeping in the same order as stepIncrementalParallel:
		// settles, then the frontier rebuild from the keep lists, then the
		// hard-denied parks — all in shard order.
		for _, d := range decisions {
			for _, v := range d.Settled {
				p.active.Unschedule(v)
			}
		}
		keeps := make([][]graph.VertexID, len(decisions))
		for i, d := range decisions {
			keeps[i] = d.Keeps
		}
		p.active.Rebuild(keeps...)
		for _, d := range decisions {
			for _, pk := range d.Parks {
				if int(pk.Off) < 0 || int(pk.Off)+int(pk.N) > len(d.ParkDests) {
					return IterationStats{}, fmt.Errorf("core: cluster park destinations out of range")
				}
				p.active.Park(pk.V, d.ParkDests[pk.Off:pk.Off+pk.N])
			}
		}
	}

	return p.finishIteration(requested, examined), nil
}
