package core

import (
	"testing"

	"xdgp/internal/gen"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// foldTrace is a synthetic read-heat trace: the samples folded before
// step i. It rotates a small hot window through the vertex range so
// successive folds heat different neighbourhoods, exercising decay,
// re-heating and the frontier wake.
func foldTrace(step, n int) []graph.VertexID {
	base := (step * 13) % n
	s := make([]graph.VertexID, 0, 12)
	for j := 0; j < 12; j++ {
		s = append(s, graph.VertexID((base+j*j)%n))
	}
	return s
}

// heatModes are the execution paths the heat tests cover: the
// paper-exact sequential full sweep and the sharded-parallel
// incremental scheduler (the daemon's configuration).
var heatModes = []struct {
	name        string
	parallelism int
	incremental bool
}{
	{"sequential-full", 1, false},
	{"parallel2-incremental", 2, true},
}

// TestHeatFoldIsPassiveAtZeroWeight mirrors the change-tracking
// passivity contract: with WorkloadWeight == 0, folding heat every few
// steps (the daemon does this whenever recording is on, for the
// apartd_heat_* gauges) must not perturb the heuristic — same seed,
// same stream, byte-identical assignments.
func TestHeatFoldIsPassiveAtZeroWeight(t *testing.T) {
	for _, mode := range heatModes {
		t.Run(mode.name, func(t *testing.T) {
			run := func(fold bool) []partition.ID {
				g := gen.BarabasiAlbert(400, 2, 5)
				asn := partition.Hash(g, 4)
				cfg := DefaultConfig(4, 3)
				cfg.RecordEvery = 0
				cfg.Parallelism = mode.parallelism
				cfg.Incremental = mode.incremental
				p, err := New(g, asn, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 60; i++ {
					if fold && i%5 == 0 {
						p.FoldHeat(0.8, foldTrace(i, 400), 16)
					}
					p.Step()
				}
				return p.Assignment().Table()
			}
			a, b := run(false), run(true)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("slot %d diverged with heat folds on: %d vs %d", i, a[i], b[i])
				}
			}
		})
	}
}

// TestHeatDeterminismAtPositiveWeight pins the replay contract the
// checkpoint/restore path depends on: with the workload term active,
// a fixed seed plus a fixed fold schedule must reproduce byte-identical
// assignments on every execution path.
func TestHeatDeterminismAtPositiveWeight(t *testing.T) {
	for _, mode := range heatModes {
		t.Run(mode.name, func(t *testing.T) {
			run := func() []partition.ID {
				g := gen.BarabasiAlbert(400, 2, 5)
				asn := partition.Hash(g, 4)
				cfg := DefaultConfig(4, 3)
				cfg.RecordEvery = 0
				cfg.Parallelism = mode.parallelism
				cfg.Incremental = mode.incremental
				cfg.WorkloadWeight = 6
				p, err := New(g, asn, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 60; i++ {
					if i%5 == 0 {
						p.FoldHeat(0.8, foldTrace(i, 400), 16)
					}
					p.Step()
				}
				return p.Assignment().Table()
			}
			a, b := run(), run()
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("slot %d not reproducible at WorkloadWeight>0: %d vs %d", i, a[i], b[i])
				}
			}
		})
	}
}

// TestHeatWeightedScoringPullsCoReadNeighbours checks the objective
// actually changes behaviour when it should: on a tie between two
// destinations, decayed heat must break it toward the partition whose
// members are read together with the decider.
func TestHeatWeightedScoringPullsCoReadNeighbours(t *testing.T) {
	// Vertex 0 has two neighbours in partition 1 (vertices 1, 3) and two
	// in partition 2 (vertices 2, 4) — an exact tie, and either beats
	// staying on partition 0 alone. Heat on vertex 2 must make
	// partition 2 the unique argmax.
	g := graph.NewUndirected(8)
	g.Apply(graph.Batch{
		{Kind: graph.MutAddEdge, U: 0, V: 1},
		{Kind: graph.MutAddEdge, U: 0, V: 2},
		{Kind: graph.MutAddEdge, U: 0, V: 3},
		{Kind: graph.MutAddEdge, U: 0, V: 4},
	})
	asn := partition.NewAssignment(g.NumSlots(), 3)
	asn.Assign(0, 0)
	asn.Assign(1, 1)
	asn.Assign(2, 2)
	asn.Assign(3, 1)
	asn.Assign(4, 2)
	cfg := DefaultConfig(3, 1)
	cfg.RecordEvery = 0
	cfg.WorkloadWeight = 4
	p, err := New(g, asn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.FoldHeat(1.0, []graph.VertexID{2, 2, 2}, 1)

	tied := p.scoreBest(0, 0, p.counts, p.countsF, nil)
	if len(tied) != 1 || tied[0] != 2 {
		t.Fatalf("tied = %v, want the hot partition [2]", tied)
	}

	// Same topology, weight off: the tie stands and both appear.
	cfg.WorkloadWeight = 0
	p2, err := New(g, asn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2.FoldHeat(1.0, []graph.VertexID{2, 2, 2}, 1)
	tied = p2.scoreBest(0, 0, p2.counts, p2.countsF, nil)
	if len(tied) != 2 {
		t.Fatalf("tied = %v at weight 0, want the untouched two-way tie", tied)
	}
}
