package core

import (
	"fmt"
	"testing"

	"xdgp/internal/gen"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// forestFireGraph grows a mesh seed by forest-fire expansion — the dynamic
// workload family of the paper's streams — and returns the settled graph.
func forestFireGraph(t testing.TB, seed int64) *graph.Graph {
	t.Helper()
	g := gen.Cube3D(6)
	ff := gen.DefaultForestFire()
	for i := 0; i < 8; i++ {
		g.Apply(gen.ForestFireExpansion(g, 60, ff, seed+int64(i)))
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return g
}

// forestFireStream pre-computes a batch stream by replaying the expansion
// on a scratch copy, so a dynamic run sees the same mutations.
func forestFireStream(g *graph.Graph, batches, perBatch int, seed int64) graph.Stream {
	scratch := g.Clone()
	ff := gen.DefaultForestFire()
	out := make([]graph.Batch, 0, batches)
	for i := 0; i < batches; i++ {
		b := gen.ForestFireExpansion(scratch, perBatch, ff, seed+int64(i))
		scratch.Apply(b)
		out = append(out, b)
	}
	return graph.NewSliceStream(out)
}

// expectedQuotas recomputes Section 2.2's per-pair quota matrix
// Q(i,j) = ⌊free(j)/(k−1)⌋ from the state at the start of an iteration,
// exactly as Step derives it for the default vertex-count accounting.
func expectedQuotas(p *Partitioner) [][]int {
	k := p.cfg.K
	caps := p.Capacities()
	q := make([][]int, k)
	for i := range q {
		q[i] = make([]int, k)
	}
	for j := 0; j < k; j++ {
		free := caps[j] - p.Assignment().Size(partition.ID(j))
		if free < 0 {
			free = 0
		}
		per := free
		if k > 1 {
			per = free / (k - 1)
		}
		for i := range q {
			q[i][j] = per
		}
	}
	return q
}

// stepAndCheckInvariants runs one Step and asserts the three partitioning
// invariants the quota protocol guarantees: per-pair migrations never
// exceed Q(i,j), no partition that was within capacity leaves it, and the
// assignment stays a proper partition (every live vertex in exactly one
// partition, consistent counters).
func stepAndCheckInvariants(t *testing.T, p *Partitioner, iter int) {
	t.Helper()
	k := p.cfg.K
	quotas := expectedQuotas(p)
	before := p.Assignment().Clone()
	p.Step()
	moved := make([][]int, k)
	for i := range moved {
		moved[i] = make([]int, k)
	}
	p.g.ForEachVertex(func(v graph.VertexID) {
		src, dst := before.Of(v), p.Assignment().Of(v)
		if src == partition.None || dst == partition.None {
			t.Fatalf("iteration %d: vertex %d unassigned (src=%d dst=%d)", iter, v, src, dst)
		}
		if src != dst {
			moved[src][dst]++
		}
	})
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if moved[i][j] > quotas[i][j] {
				t.Fatalf("iteration %d: %d migrations %d→%d exceed quota %d",
					iter, moved[i][j], i, j, quotas[i][j])
			}
		}
	}
	if !partition.WithinCapacities(p.Assignment(), p.Capacities()) {
		t.Fatalf("iteration %d: capacity exceeded: sizes=%v caps=%v",
			iter, p.Assignment().Sizes(), p.Capacities())
	}
	if err := p.Assignment().Validate(p.g); err != nil {
		t.Fatalf("iteration %d: %v", iter, err)
	}
}

// TestIterationInvariants drives both execution paths — sequential and
// sharded — through full iterations on a power-law graph and a forest-fire
// graph, asserting the quota/capacity/partition invariants at every
// barrier.
func TestIterationInvariants(t *testing.T) {
	graphs := map[string]func() *graph.Graph{
		"powerlaw":   func() *graph.Graph { return gen.HolmeKim(1200, 5, 0.1, 7) },
		"forestfire": func() *graph.Graph { return forestFireGraph(t, 7) },
	}
	for name, build := range graphs {
		for _, par := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%s/P=%d", name, par), func(t *testing.T) {
				g := build()
				k := 9
				cfg := DefaultConfig(k, 11)
				cfg.Parallelism = par
				cfg.RecordEvery = 0
				p := mustNew(t, g, partition.Random(g, k, 11), cfg)
				for i := 0; i < 60 && !p.Converged(); i++ {
					stepAndCheckInvariants(t, p, i)
				}
			})
		}
	}
}

// TestParallelDeterminismFixedShards pins the reproducibility contract:
// a fixed seed and a fixed shard count produce byte-identical assignments
// and identical iteration histories, run after run.
func TestParallelDeterminismFixedShards(t *testing.T) {
	for _, par := range []int{2, 4, 8} {
		run := func() (*Partitioner, Result) {
			g := gen.HolmeKim(1500, 5, 0.1, 3)
			cfg := DefaultConfig(9, 42)
			cfg.Parallelism = par
			cfg.RecordEvery = 0
			cfg.MaxIterations = 400
			p := mustNewT(g, partition.Hash(g, 9), cfg)
			return p, p.Run()
		}
		p1, r1 := run()
		p2, r2 := run()
		if r1.Iterations != r2.Iterations || r1.TotalMigrations != r2.TotalMigrations ||
			r1.FinalCutRatio != r2.FinalCutRatio {
			t.Fatalf("P=%d: runs diverged: %+v vs %+v", par, r1, r2)
		}
		for i, st := range r1.History {
			if st != r2.History[i] {
				t.Fatalf("P=%d iteration %d: history diverged: %+v vs %+v", par, i, st, r2.History[i])
			}
		}
		for v := 0; v < p1.g.NumSlots(); v++ {
			if p1.Assignment().Of(graph.VertexID(v)) != p2.Assignment().Of(graph.VertexID(v)) {
				t.Fatalf("P=%d: vertex %d assigned differently across runs", par, v)
			}
		}
	}
}

// TestParallelComparableQuality checks the sharded sweep converges to a
// cut ratio in the same band as the sequential paper path on the quality
// workloads (it cannot be identical: each shard consumes its own random
// stream).
func TestParallelComparableQuality(t *testing.T) {
	graphs := map[string]func() *graph.Graph{
		"powerlaw":   func() *graph.Graph { return gen.HolmeKim(1500, 5, 0.1, 5) },
		"forestfire": func() *graph.Graph { return forestFireGraph(t, 5) },
	}
	for name, build := range graphs {
		t.Run(name, func(t *testing.T) {
			run := func(par int) (before, after float64, converged bool) {
				g := build()
				asn := partition.Hash(g, 9)
				before = partition.CutRatio(g, asn)
				cfg := DefaultConfig(9, 21)
				cfg.Parallelism = par
				cfg.RecordEvery = 0
				p := mustNewT(g, asn, cfg)
				res := p.Run()
				return before, res.FinalCutRatio, res.Converged
			}
			before, seq, seqConv := run(1)
			_, par, parConv := run(4)
			if !seqConv || !parConv {
				t.Fatalf("convergence: sequential=%t parallel=%t", seqConv, parConv)
			}
			if seq >= before || par >= before {
				t.Fatalf("no improvement: initial %.3f, sequential %.3f, parallel %.3f", before, seq, par)
			}
			if diff := par - seq; diff > 0.10 || diff < -0.10 {
				t.Fatalf("parallel cut %.3f not comparable to sequential %.3f (initial %.3f)", par, seq, before)
			}
		})
	}
}

// TestParallelDynamicStream interleaves the sharded sweep with a
// forest-fire mutation stream and validates the final state — the dynamic
// scenario every later scaling PR builds on.
func TestParallelDynamicStream(t *testing.T) {
	g := gen.Cube3D(7)
	stream := forestFireStream(g, 10, 40, 13)
	cfg := DefaultConfig(6, 13)
	cfg.Parallelism = 4
	cfg.RecordEvery = 0
	cfg.MaxIterations = 600
	p := mustNew(t, g, partition.Hash(g, 6), cfg)
	res := p.RunDynamic(stream)
	if !res.Converged {
		t.Fatalf("dynamic run did not converge in %d iterations", res.Iterations)
	}
	if err := p.Assignment().Validate(p.g); err != nil {
		t.Fatal(err)
	}
	if err := p.g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !partition.WithinCapacities(p.Assignment(), p.Capacities()) {
		t.Fatalf("capacity exceeded after dynamic run: sizes=%v caps=%v",
			p.Assignment().Sizes(), p.Capacities())
	}
}

// TestParallelZeroWillingnessNeverMoves mirrors the sequential s=0 pin on
// the sharded path.
func TestParallelZeroWillingnessNeverMoves(t *testing.T) {
	g := gen.Cube3D(5)
	cfg := DefaultConfig(4, 1)
	cfg.S = 0
	cfg.Parallelism = 4
	p := mustNew(t, g, partition.Hash(g, 4), cfg)
	for i := 0; i < 40; i++ {
		if st := p.Step(); st.Migrations != 0 || st.Requested != 0 {
			t.Fatalf("s=0 produced %d migrations under P=4", st.Migrations)
		}
	}
	if !p.Converged() {
		t.Fatal("zero-migration run must converge")
	}
}

// TestParallelEdgeBalanced runs the edge-balanced extension under the
// sharded path: quota units are vertex degrees, and the degree-weighted
// loads must respect the degree capacities granted at each iteration.
func TestParallelEdgeBalanced(t *testing.T) {
	g := gen.HolmeKim(800, 5, 0.1, 9)
	cfg := DefaultConfig(6, 9)
	cfg.Parallelism = 4
	cfg.BalanceEdges = true
	cfg.RecordEvery = 0
	cfg.MaxIterations = 150
	p := mustNew(t, g, partition.Random(g, 6, 9), cfg)
	res := p.Run()
	if err := p.Assignment().Validate(p.g); err != nil {
		t.Fatal(err)
	}
	if res.TotalMigrations == 0 {
		t.Fatal("edge-balanced parallel run never migrated")
	}
}

// TestParallelismResolution pins the knob semantics: 0 = one shard per
// CPU, 1 = sequential, n = n shards, negative rejected.
func TestParallelismResolution(t *testing.T) {
	g := gen.Cube3D(3)
	cfg := DefaultConfig(4, 1)
	cfg.Parallelism = -1
	if _, err := New(g, partition.Hash(g, 4), cfg); err == nil {
		t.Fatal("negative Parallelism must error")
	}
	cfg.Parallelism = 0
	if p := mustNew(t, g, partition.Hash(g, 4), cfg); p.Parallelism() < 1 {
		t.Fatalf("auto parallelism resolved to %d", p.Parallelism())
	}
	cfg.Parallelism = 3
	if p := mustNew(t, g, partition.Hash(g, 4), cfg); p.Parallelism() != 3 {
		t.Fatalf("explicit parallelism resolved to %d, want 3", p.Parallelism())
	}
}
