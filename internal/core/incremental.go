package core

import (
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// This file implements the active-set (frontier) scheduler: with
// Config.Incremental set, an iteration re-examines only vertices whose
// decision inputs could have changed since they last chose to stay,
// instead of sweeping every live vertex.
//
// The stay/request decision of the heuristic depends exclusively on the
// partitions of Γ(v) = {v} ∪ N(v) (Section 2.1); quotas are re-derived
// from global free capacity at every iteration regardless of the
// schedule. A vertex's decision can therefore only change when
//
//   - the graph mutates around it (ApplyBatch marks the mutated vertices
//     and their neighbourhoods dirty, via graph.ApplyTouched),
//   - a neighbour migrates (every granted move re-wakes the mover's
//     neighbourhood at the iteration barrier), or
//   - it never finished deciding: vertices that fail the willingness
//     coin stay scheduled (preserving the stochastic symmetry-breaking),
//     and so do vertices denied only by in-iteration competition for a
//     quota that the free capacities would otherwise admit — the
//     competitors' moves change the odds next iteration.
//
// Requesters denied "hard" — every tied-best destination's per-pair
// quota Q(i,j), derived from free capacity at the start of the
// iteration, is too small for the vertex's weight even before any
// competitor claims it — cannot succeed until capacity shifts. They are
// parked under their desired destinations (activeset.Set.Park) and
// re-woken when a migration departs such a destination (freeing capacity
// there) or when ApplyBatch changes the graph (capacities are re-derived
// from |V|, so every parked vertex re-wakes). This distinction matters:
// parking a soft-denied vertex would forfeit migrations the full sweep
// makes, while keeping hard-denied vertices scheduled would leave a
// permanent residual frontier on converged graphs.
//
// A vertex that evaluates migration and prefers to stay leaves the
// frontier; it is re-woken only by one of the events above. On a
// converged graph the frontier is empty and an iteration costs O(1), so
// steady-state cost is proportional to churn — the property SDP and the
// near-real-time survey demand of a streaming partitioner.
//
// The frontier is drained in ascending vertex-ID order (sorted once per
// iteration, O(D log D) for D dirty vertices), which keeps both execution
// paths deterministic: the sequential path replays one RNG over a
// deterministic vertex sequence, and the parallel path splits the sorted
// frontier into Config.Parallelism contiguous chunks, each served by its
// shard's own RNG and granted through the same fixed-order atomic quota
// ledger as the full parallel sweep.

// DirtyCount returns the current size of the active set — the number of
// vertices scheduled for re-examination. It is 0 when the scheduler is
// idle (or when Incremental is off).
func (p *Partitioner) DirtyCount() int {
	if p.active == nil {
		return 0
	}
	return p.active.Len()
}

// stepIncremental runs one iteration's decide and grant phases over the
// active set only. Step has already filled p.quota; granted moves are
// left in p.moves for Step to apply at the barrier. It returns the number
// of requests (post-coin, pre-quota) and the number of examined vertices.
func (p *Partitioner) stepIncremental(weight func(graph.VertexID) int) (requested, examined int) {
	p.active.Grow(p.g.NumSlots())
	frontier := p.active.Prepare(p.g.Has)
	examined = len(frontier)
	if examined == 0 {
		return 0, 0
	}
	if p.par > 1 {
		requested = p.stepIncrementalParallel(frontier, weight)
		return requested, examined
	}

	for _, v := range frontier {
		if p.cfg.S < 1 && p.rng.Float64() >= p.cfg.S {
			p.active.Keep(v) // unwilling: stays scheduled
			continue
		}
		cur := p.asn.Of(v)
		best := p.bestPartitions(v, cur)
		if best == nil {
			// Settled: only a mutation or a neighbour's move re-wakes it.
			p.active.Unschedule(v)
			continue
		}
		requested++
		p.rng.Shuffle(len(best), func(i, j int) { best[i], best[j] = best[j], best[i] })
		w := weight(v)
		granted := false
		for _, dst := range best {
			if p.cfg.DisableQuotas {
				p.moves = append(p.moves, move{v: v, from: cur, to: dst})
				granted = true
				break
			}
			if p.quota[cur][dst] >= w {
				p.quota[cur][dst] -= w
				p.moves = append(p.moves, move{v: v, from: cur, to: dst})
				granted = true
				break
			}
		}
		switch {
		case granted:
			// A mover re-settles after its move applies at the barrier.
			p.active.Keep(v)
		case p.hardDenied(best, w):
			// No destination can admit v until capacity shifts: park.
			p.active.Park(v, best)
		default:
			// Denied only by in-iteration competition — the competitors'
			// moves change the odds, so retry next iteration.
			p.active.Keep(v)
		}
	}
	p.active.Commit()
	return requested, examined
}

// hardDenied reports whether a request of weight w cannot be granted
// towards any of dsts even without competition: the iteration-start
// per-pair quota of every destination is below w.
func (p *Partitioner) hardDenied(dsts []partition.ID, w int) bool {
	for _, dst := range dsts {
		if p.quotaCol[dst] >= w {
			return false
		}
	}
	return true
}

// stepIncrementalParallel is the sharded form: the sorted frontier is cut
// into contiguous chunks, one per shard, decided concurrently, then
// granted through the same fixed-order atomic ledger as the full parallel
// sweep. Determinism holds for a fixed shard count because the frontier
// content, the split, and each shard's RNG stream are all deterministic.
func (p *Partitioner) stepIncrementalParallel(frontier []graph.VertexID, weight func(graph.VertexID) int) int {
	k := p.cfg.K
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			p.ledger[i*k+j] = int64(p.quota[i][j])
		}
	}
	p.forEachShard(func(s int, sh *coreShard) {
		lo, hi := graph.ShardRange(s, p.par, len(frontier))
		sh.decideFrontier(p, frontier[lo:hi], weight)
	})
	requested := 0
	for _, sh := range p.shards {
		requested += sh.requested
	}
	p.grantAll()
	// Rebuild the frontier from the shards' keep lists (order is
	// irrelevant: the next Prepare re-sorts; dirty bits of kept vertices
	// are still set, so barrier-side wakes dedupe against them), then
	// merge the shards' park buffers. Hard denials are decided against
	// the read-only iteration-start quotas, so they are competition- and
	// interleaving-independent; the shared park lists are only written
	// here, at the barrier.
	keeps := make([][]graph.VertexID, len(p.shards))
	for i, sh := range p.shards {
		keeps[i] = sh.keep
	}
	p.active.Rebuild(keeps...)
	for _, sh := range p.shards {
		for _, pk := range sh.parkBuf {
			p.active.Park(pk.v, sh.parkDests[pk.off:pk.off+pk.n])
		}
	}
	return requested
}

// decideFrontier is the frontier-driven form of decide: same per-vertex
// logic, but iterating a chunk of the sorted active set instead of a slot
// range. Kept (still-dirty) vertices land in sh.keep; vertices that chose
// to stay are unscheduled (distinct elements of the bitmap, so shards
// race on nothing) and hard-denied ones queue in the shard's park buffer
// for barrier-side parking.
func (sh *coreShard) decideFrontier(p *Partitioner, chunk []graph.VertexID, weight func(graph.VertexID) int) {
	sh.requested = 0
	sh.candBuf = sh.candBuf[:0]
	sh.keep = sh.keep[:0]
	sh.parkBuf = sh.parkBuf[:0]
	sh.parkDests = sh.parkDests[:0]
	sh.settled = sh.settled[:0]
	for i := range sh.reqs {
		sh.reqs[i] = sh.reqs[i][:0]
	}
	s := p.cfg.S
	for _, v := range chunk {
		if s < 1 && sh.rng.Float64() >= s {
			sh.keep = append(sh.keep, v)
			continue
		}
		cur := p.asn.Of(v)
		sh.tied = p.scoreBest(v, cur, sh.counts, sh.countsF, sh.tied)
		if len(sh.tied) == 0 {
			// Unscheduling only clears a dirty bit (idempotent), so the
			// cluster path can safely re-apply broadcast settles on top
			// of this inline one.
			p.active.Unschedule(v)
			if sh.capture {
				sh.settled = append(sh.settled, v)
			}
			continue
		}
		sh.requested++
		w := weight(v)
		if !p.cfg.DisableQuotas && p.hardDenied(sh.tied, w) {
			// No destination can admit v regardless of competition; park
			// at the barrier instead of queueing a doomed request. The
			// scheduled bit stays set until the barrier-side Park so
			// concurrent wakes keep deduping correctly.
			off := int32(len(sh.parkDests))
			sh.parkDests = append(sh.parkDests, sh.tied...)
			sh.parkBuf = append(sh.parkBuf, shardPark{v: v, off: off, n: int32(len(sh.tied))})
			continue
		}
		sh.rng.Shuffle(len(sh.tied), func(i, j int) { sh.tied[i], sh.tied[j] = sh.tied[j], sh.tied[i] })
		off := int32(len(sh.candBuf))
		sh.candBuf = append(sh.candBuf, sh.tied...)
		sh.reqs[cur] = append(sh.reqs[cur], shardReq{v: v, off: off, n: int32(len(sh.tied)), w: int32(w)})
		sh.keep = append(sh.keep, v)
	}
}
