package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"xdgp/internal/gen"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// stateChurnBatch builds a deterministic mutation batch against g: a mix
// of edge additions (possibly materialising new vertices), edge removals
// and vertex removals. (bench_test.go's churnBatch keeps |V| stationary
// for stable ns/op; this one deliberately lets the slot table grow and
// shrink so the serialized free list is exercised.)
func stateChurnBatch(g *graph.Graph, rng *rand.Rand, size int) graph.Batch {
	var b graph.Batch
	slots := g.NumSlots()
	if slots == 0 {
		slots = 1
	}
	for i := 0; i < size; i++ {
		switch rng.Intn(5) {
		case 0, 1, 2: // add edge, sometimes to a fresh vertex
			u := graph.VertexID(rng.Intn(slots))
			v := graph.VertexID(rng.Intn(slots + 4))
			b = append(b, graph.Mutation{Kind: graph.MutAddEdge, U: u, V: v})
		case 3: // remove an edge if the picked vertex has one
			u := graph.VertexID(rng.Intn(slots))
			if nb := g.Neighbors(u); len(nb) > 0 {
				b = append(b, graph.Mutation{Kind: graph.MutRemoveEdge, U: u, V: nb[rng.Intn(len(nb))]})
			}
		case 4: // remove a vertex
			b = append(b, graph.Mutation{Kind: graph.MutRemoveVertex, U: graph.VertexID(rng.Intn(slots))})
		}
	}
	return b
}

// serializeRoundTrip pushes the partitioner's full state through the same
// serialization chain the snapshot container uses — graph codec,
// assignment table, exported core state — and restores a fresh
// partitioner from the copies.
func serializeRoundTrip(t *testing.T, p *Partitioner, cfg Config) *Partitioner {
	t.Helper()
	var buf bytes.Buffer
	if err := p.g.EncodeBinary(&buf); err != nil {
		t.Fatalf("encode graph: %v", err)
	}
	g2, err := graph.DecodeGraph(&buf)
	if err != nil {
		t.Fatalf("decode graph: %v", err)
	}
	asn2, err := partition.FromTable(p.Assignment().Table(), cfg.K)
	if err != nil {
		t.Fatalf("rebuild assignment: %v", err)
	}
	p2, err := Restore(g2, asn2, cfg, p.ExportState())
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	return p2
}

func assignmentsEqual(a, b *partition.Assignment) bool {
	ta, tb := a.Table(), b.Table()
	if len(ta) != len(tb) {
		return false
	}
	for i := range ta {
		if ta[i] != tb[i] {
			return false
		}
	}
	return true
}

// TestCheckpointRestoreDeterminism is the paper-system acceptance test:
// fixed seed + same stream ⇒ identical assignments whether the run is
// uninterrupted or checkpointed and restored mid-stream — across the
// sequential and sharded paths, full-sweep and incremental schedules.
func TestCheckpointRestoreDeterminism(t *testing.T) {
	modes := []struct {
		name        string
		parallelism int
		incremental bool
	}{
		{"sequential-full", 1, false},
		{"sequential-incremental", 1, true},
		{"parallel2-full", 2, false},
		{"parallel2-incremental", 2, true},
		{"parallel3-incremental", 3, true},
	}
	const (
		ticks        = 12
		checkpointAt = 5
		stepsPerTick = 4
	)
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			run := func(restart bool) *Partitioner {
				g := gen.HolmeKim(300, 3, 0.1, 7)
				cfg := DefaultConfig(5, 99)
				cfg.Parallelism = mode.parallelism
				cfg.Incremental = mode.incremental
				cfg.RecordEvery = 0
				asn := partition.Hash(g, cfg.K)
				p, err := New(g, asn, cfg)
				if err != nil {
					t.Fatal(err)
				}
				streamRNG := rand.New(rand.NewSource(41))
				for tick := 0; tick < ticks; tick++ {
					p.ApplyBatch(stateChurnBatch(p.g, streamRNG, 20))
					for s := 0; s < stepsPerTick; s++ {
						p.Step()
					}
					if restart && tick == checkpointAt {
						p = serializeRoundTrip(t, p, cfg)
					}
				}
				return p
			}
			straight := run(false)
			restarted := run(true)
			if straight.Iteration() != restarted.Iteration() {
				t.Fatalf("iteration diverged: %d vs %d", straight.Iteration(), restarted.Iteration())
			}
			if !assignmentsEqual(straight.Assignment(), restarted.Assignment()) {
				t.Fatal("assignments diverged after checkpoint/restore")
			}
			if straight.Converged() != restarted.Converged() {
				t.Fatalf("convergence state diverged: %v vs %v", straight.Converged(), restarted.Converged())
			}
			if mode.incremental && straight.DirtyCount() != restarted.DirtyCount() {
				t.Fatalf("dirty count diverged: %d vs %d", straight.DirtyCount(), restarted.DirtyCount())
			}
		})
	}
}

// TestCheckpointEveryTick round-trips the state at *every* tick of a
// churn run — any single field missing from State shows up as divergence
// on some tick.
func TestCheckpointEveryTick(t *testing.T) {
	g := gen.HolmeKim(200, 3, 0.1, 3)
	cfg := DefaultConfig(4, 17)
	cfg.Incremental = true
	cfg.RecordEvery = 0
	asn := partition.Hash(g, cfg.K)
	p, err := New(g, asn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(gen.HolmeKim(200, 3, 0.1, 3), partition.Hash(gen.HolmeKim(200, 3, 0.1, 3), cfg.K), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rngA := rand.New(rand.NewSource(23))
	rngB := rand.New(rand.NewSource(23))
	for tick := 0; tick < 8; tick++ {
		p.ApplyBatch(stateChurnBatch(p.g, rngA, 15))
		ref.ApplyBatch(stateChurnBatch(ref.g, rngB, 15))
		for s := 0; s < 3; s++ {
			p.Step()
			ref.Step()
		}
		p = serializeRoundTrip(t, p, cfg)
		if !assignmentsEqual(p.Assignment(), ref.Assignment()) {
			t.Fatalf("tick %d: assignments diverged after round-trip", tick)
		}
	}
}

// TestExportStateIsDetached guards the snapshot path against aliasing:
// mutating an exported state (or continuing the partitioner) must not
// corrupt the other side.
func TestExportStateIsDetached(t *testing.T) {
	g := gen.Cube3D(5)
	cfg := DefaultConfig(3, 5)
	cfg.Incremental = true
	p, err := New(g, partition.Hash(g, cfg.K), cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Step()
	st := p.ExportState()
	if st.Active == nil {
		t.Fatal("incremental run exported no active-set state")
	}
	wantFrontier := len(st.Active.Frontier)
	// Mutating the export must not touch the live scheduler.
	for i := range st.Active.Frontier {
		st.Active.Frontier[i] = -1
	}
	for j := range st.Active.Parked {
		for i := range st.Active.Parked[j] {
			st.Active.Parked[j][i] = -1
		}
	}
	st2 := p.ExportState()
	if len(st2.Active.Frontier) != wantFrontier {
		t.Fatalf("frontier size changed after mutating export: %d vs %d", len(st2.Active.Frontier), wantFrontier)
	}
	for _, v := range st2.Active.Frontier {
		if v == -1 {
			t.Fatal("mutating exported frontier leaked into the partitioner")
		}
	}
	// Continuing the partitioner must not invalidate an earlier export.
	before := fmt.Sprint(st2)
	for i := 0; i < 5; i++ {
		p.Step()
	}
	if fmt.Sprint(st2) != before {
		t.Fatal("partitioner progress mutated a previously exported state")
	}
}

// TestRestoreValidation exercises the mismatch errors.
func TestRestoreValidation(t *testing.T) {
	g := gen.Cube3D(4)
	cfg := DefaultConfig(3, 5)
	p, err := New(g, partition.Hash(g, cfg.K), cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Step()
	st := p.ExportState()

	// Incremental flag mismatch.
	badCfg := cfg
	badCfg.Incremental = true
	if _, err := Restore(g.Clone(), partition.Hash(g, cfg.K), badCfg, st); err == nil {
		t.Fatal("restore accepted incremental config for full-sweep state")
	}
	// Shard-count mismatch.
	parCfg := cfg
	parCfg.Parallelism = 4
	if _, err := Restore(g.Clone(), partition.Hash(g, cfg.K), parCfg, st); err == nil {
		t.Fatal("restore accepted 4-shard config for sequential state")
	}
	// Negative counters.
	bad := st
	bad.Iteration = -1
	if _, err := Restore(g.Clone(), partition.Hash(g, cfg.K), cfg, bad); err == nil {
		t.Fatal("restore accepted negative iteration counter")
	}
}
