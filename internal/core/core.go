// Package core implements the paper's primary contribution (Section 2):
// a decentralised, iterative, greedy vertex-migration heuristic that adapts
// a k-way graph partitioning to dynamic structural change using only local
// per-vertex information.
//
// Every iteration, each vertex — with probability S, the "willingness to
// move" that breaks neighbour-chasing symmetry (Section 2.3) — inspects the
// partitions of its neighbourhood Γ(v) = {v} ∪ N(v) and requests migration
// to a partition holding the most neighbours, preferring to stay when the
// current partition is among the best. Per-pair migration quotas
// Q(i,j) = C(j)/(k−1), derived worst-case from the free capacities known at
// the start of the iteration (Section 2.2), keep partitions below their
// capacity without any coordination. Granted moves are applied
// simultaneously at the end of the iteration, matching the BSP semantics of
// the system implementation in internal/bsp.
//
// This package is the sequential/simulation form used by the paper's
// quality experiments (Figures 1, 4, 5, 6); internal/adaptive integrates
// the same heuristic into the Pregel-like engine for the system experiments
// (Figures 7, 8, 9).
package core

import (
	"fmt"
	"math/rand/v2"
	"runtime"

	"xdgp/internal/activeset"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// Config parameterises the heuristic. The zero value is invalid; use
// DefaultConfig and adjust.
type Config struct {
	// K is the number of partitions.
	K int
	// CapacityFactor sizes each partition's capacity as
	// ceil(|V|/K × CapacityFactor); the paper's experiments use 1.10
	// (110 % of the balanced load). Capacities are recomputed whenever the
	// vertex count changes, so a dynamic graph keeps proportional slack.
	CapacityFactor float64
	// S is the willingness to move: the per-iteration probability that a
	// vertex evaluates migration at all (Section 2.3). 0 < S ≤ 1; the
	// paper recommends 0.5.
	S float64
	// ConvergenceWindow is the number of consecutive zero-migration
	// iterations required to declare convergence; the paper uses 30.
	ConvergenceWindow int
	// MaxIterations bounds Run as a safety net.
	MaxIterations int
	// Seed drives every random choice (move coins, tie-breaks).
	Seed int64
	// Parallelism is the number of shards the per-iteration vertex sweep
	// is split across, each served by its own goroutine and deterministic
	// RNG (a PCG stream selected by Seed and the shard index). 0 picks
	// runtime.GOMAXPROCS(0); 1 runs the exact sequential path the paper's
	// quality experiments use. Results are reproducible for a fixed shard
	// count but differ between shard counts, because each shard consumes
	// its own random stream.
	Parallelism int
	// Incremental enables the active-set (frontier) scheduler: an
	// iteration re-examines only vertices whose decision inputs could
	// have changed — vertices touched by mutations (and their
	// neighbourhoods), neighbours of granted movers, and vertices that
	// have not finished deciding (failed the S coin or were quota-denied).
	// Steady-state iteration cost becomes proportional to churn instead
	// of |V|. Off by default: the full sweep re-examines every vertex
	// every iteration and remains the paper-exact reference path. The
	// incremental schedule visits vertices in a different order, so runs
	// are deterministic per (Seed, Parallelism, Incremental) but differ
	// numerically from full-sweep runs; quality and every capacity/quota
	// invariant are preserved (see incremental_test.go).
	Incremental bool
	// RecordEvery controls how often per-iteration cut statistics are
	// computed: every n iterations (n ≥ 1), or only on demand when 0.
	// Migration counts are always recorded.
	RecordEvery int
	// Placer assigns partitions to vertices arriving from a dynamic
	// stream before the heuristic adapts them; nil means hash placement
	// with least-loaded fallback when the hashed partition is full.
	Placer func(v graph.VertexID, k int) partition.ID
	// WorkloadWeight scales the workload term of the migration utility:
	// when > 0, a neighbour w's vote for its partition is weighted
	// 1 + WorkloadWeight·heat(w)/max(heat), where heat is the decayed
	// read-traffic accumulator fed by FoldHeat. 0 (the default) is the
	// paper-exact objective — the heuristic stays byte-identical to a
	// build without the feature even while heat is being folded. See
	// heat.go.
	WorkloadWeight float64
	// BalanceEdges switches capacity accounting from vertex counts to
	// edge endpoints (vertex degrees) — the paper's first future-work
	// extension (Section 6). Quotas are then expressed in degree units
	// and a migrating vertex consumes its degree.
	BalanceEdges bool
	// DisableQuotas removes the per-pair migration quotas of Section 2.2
	// for ablation studies: it reproduces the node densification the
	// quotas exist to prevent. All capacity guarantees are void when set.
	DisableQuotas bool
}

// DefaultConfig returns the paper's standard setting: capacity 110 %,
// s = 0.5, 30-iteration convergence window, sequential sweep. The
// sequential default keeps results reproducible across machines — an
// explicit Parallelism (or 0 for one shard per CPU) trades that for
// speed.
func DefaultConfig(k int, seed int64) Config {
	return Config{
		K:                 k,
		CapacityFactor:    1.10,
		S:                 0.5,
		ConvergenceWindow: 30,
		MaxIterations:     5000,
		Seed:              seed,
		RecordEvery:       1,
		Parallelism:       1,
	}
}

func (c *Config) validate() error {
	if c.K < 1 {
		return fmt.Errorf("core: K must be ≥ 1, got %d", c.K)
	}
	if c.CapacityFactor < 1.0 {
		return fmt.Errorf("core: CapacityFactor must be ≥ 1.0, got %g", c.CapacityFactor)
	}
	if c.S < 0 || c.S > 1 {
		return fmt.Errorf("core: S must be in [0,1], got %g", c.S)
	}
	if c.ConvergenceWindow < 1 {
		return fmt.Errorf("core: ConvergenceWindow must be ≥ 1, got %d", c.ConvergenceWindow)
	}
	if c.MaxIterations < 1 {
		return fmt.Errorf("core: MaxIterations must be ≥ 1, got %d", c.MaxIterations)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("core: Parallelism must be ≥ 0, got %d", c.Parallelism)
	}
	if c.WorkloadWeight < 0 {
		return fmt.Errorf("core: WorkloadWeight must be ≥ 0, got %g", c.WorkloadWeight)
	}
	return nil
}

// IterationStats records one iteration of the heuristic; the system
// experiments plot these series directly (e.g. Figure 7's cuts, migrations
// and time-per-iteration curves are built from them).
type IterationStats struct {
	Iteration  int
	Examined   int // vertices whose decision was evaluated (|V| on a full sweep, the active set when incremental)
	Requested  int // vertices that passed the S coin and wanted to move
	Migrations int // granted and applied moves
	CutEdges   int // -1 when not recorded this iteration
	CutRatio   float64
	Imbalance  float64
}

// Result summarises a Run.
type Result struct {
	// Iterations is the total number of iterations executed, including the
	// quiet convergence window.
	Iterations int
	// ConvergedAt is the iteration index after the last migration — the
	// paper's "convergence time". Equal to Iterations when the run hit
	// MaxIterations without converging.
	ConvergedAt int
	// Converged reports whether the zero-migration window was reached.
	Converged bool
	// FinalCutRatio is the cut ratio of the final assignment.
	FinalCutRatio float64
	// TotalMigrations accumulates granted moves over the whole run.
	TotalMigrations int
	// History holds per-iteration stats (cut fields filled according to
	// Config.RecordEvery).
	History []IterationStats
}

// Partitioner runs the adaptive heuristic over a graph and an assignment.
// It owns neither: the graph may be mutated externally between iterations
// (apply stream batches via ApplyBatch so bookkeeping stays consistent).
type Partitioner struct {
	cfg    Config
	g      *graph.Graph
	asn    *partition.Assignment
	caps   []int
	capsN  int // vertex count the capacities were derived from
	rng    *rand.Rand
	rngSrc *rand.PCG // rng's source; serializable for checkpoint/restore
	iter   int
	quiet  int
	// lastMigration is the iteration index of the most recent migration.
	lastMigration int
	// scratch buffers reused across iterations.
	counts []int
	tied   []partition.ID
	moves  []move
	quota  [][]int
	// par is the resolved shard count; shards, ledger and grantBufs are
	// the parallel path's state (nil/empty when par == 1).
	par       int
	shards    []*coreShard
	ledger    []int64
	grantBufs [][]move
	// Active-set scheduler state (Config.Incremental): active holds the
	// frontier/parking bookkeeping shared with internal/adaptive,
	// touchScratch buffers the per-batch mutation notices, and quotaCol
	// is the iteration-start per-pair quota by destination column — the
	// competition-free admission bound parking decisions test against.
	active       *activeset.Set
	touchScratch []graph.VertexID
	quotaCol     []int
	// Change tracking (SetChangeTracking): when on, every vertex whose
	// assignment this partitioner writes — granted moves, stream
	// placements, removal unassignments — is appended to changed until
	// the next DrainChanges. Off by default and entirely passive: it
	// consumes no randomness and cannot alter any decision, so runs are
	// byte-identical with tracking on or off.
	trackChanges bool
	changed      []graph.VertexID
	// Workload heat (FoldHeat): heat is the dense decayed per-slot read
	// accumulator, heatScale the precomputed WorkloadWeight/max(heat)
	// vote multiplier (0 disables the weighted scorer entirely), and
	// countsF the float vote scratch of the sequential path (each
	// parallel shard owns its own).
	heat      []float32
	heatScale float64
	countsF   []float64
}

type move struct {
	v        graph.VertexID
	from, to partition.ID
}

// New creates a Partitioner over g starting from the given initial
// assignment (which it adopts and mutates in place).
func New(g *graph.Graph, asn *partition.Assignment, cfg Config) (*Partitioner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if asn.K() != cfg.K {
		return nil, fmt.Errorf("core: assignment has k=%d, config k=%d", asn.K(), cfg.K)
	}
	if err := asn.Validate(g); err != nil {
		return nil, fmt.Errorf("core: invalid initial assignment: %w", err)
	}
	src := newPCG(cfg.Seed, 0)
	p := &Partitioner{
		cfg:     cfg,
		g:       g,
		asn:     asn,
		rng:     rand.New(src),
		rngSrc:  src,
		counts:  make([]int, cfg.K),
		countsF: make([]float64, cfg.K),
		tied:    make([]partition.ID, 0, cfg.K),
		quota:   make([][]int, cfg.K),
	}
	for i := range p.quota {
		p.quota[i] = make([]int, cfg.K)
	}
	p.par = cfg.Parallelism
	if p.par == 0 {
		p.par = runtime.GOMAXPROCS(0)
	}
	if p.par > 1 {
		p.shards = make([]*coreShard, p.par)
		for s := range p.shards {
			p.shards[s] = newCoreShard(cfg.Seed, s, cfg.K)
		}
		p.ledger = make([]int64, cfg.K*cfg.K)
	}
	p.recomputeCapacities()
	if cfg.Incremental {
		p.quotaCol = make([]int, cfg.K)
		// Seed the frontier with every live vertex — the initial state,
		// equivalent to a full sweep until the first vertices settle.
		p.active = activeset.New(cfg.K)
		p.active.Grow(g.NumSlots())
		g.ForEachVertex(p.active.Mark)
	}
	return p, nil
}

// Parallelism returns the resolved shard count the sweep runs with.
func (p *Partitioner) Parallelism() int { return p.par }

// SetChangeTracking turns assignment-change recording on or off. While
// on, ApplyBatch and Step append every vertex whose placement they write
// to an internal buffer that DrainChanges hands over; the daemon's
// serving plane uses this to derive per-epoch routing diffs. Tracking is
// passive — it never affects the heuristic's decisions or RNG streams —
// but the buffer grows until drained, so only enable it when something
// drains it. Toggling clears any undrained entries. Not safe for
// concurrent use with Step/ApplyBatch; callers synchronize externally
// (the daemon holds its state lock).
func (p *Partitioner) SetChangeTracking(on bool) {
	p.trackChanges = on
	p.changed = nil
}

// DrainChanges returns the vertices whose assignment changed since the
// previous drain (or since tracking was enabled) and resets the buffer.
// The returned slice is owned by the caller; it may contain duplicates
// when a vertex changed more than once, and entries whose placement
// ended up back where it started — consumers diff against their own
// previous table. Returns nil when tracking is off or nothing changed.
// Same synchronization contract as SetChangeTracking.
func (p *Partitioner) DrainChanges() []graph.VertexID {
	c := p.changed
	p.changed = nil
	return c
}

// recordChange notes that v's assignment was written, when tracking.
func (p *Partitioner) recordChange(v graph.VertexID) {
	if p.trackChanges {
		p.changed = append(p.changed, v)
	}
}

// Assignment returns the live assignment table (mutated by Step).
func (p *Partitioner) Assignment() *partition.Assignment { return p.asn }

// Graph returns the live graph the partitioner adapts. It is the same
// object passed to New/Restore — mutated by ApplyBatch — and callers must
// treat it as read-only between those calls; the snapshot path serializes
// it with graph.EncodeBinary rather than retaining the reference.
func (p *Partitioner) Graph() *graph.Graph { return p.g }

// Capacities returns a copy of the current per-partition capacities.
func (p *Partitioner) Capacities() []int { return append([]int(nil), p.caps...) }

// Iteration returns the number of iterations executed so far.
func (p *Partitioner) Iteration() int { return p.iter }

// Converged reports whether the zero-migration window has been reached.
func (p *Partitioner) Converged() bool { return p.quiet >= p.cfg.ConvergenceWindow }

// recomputeCapacities re-derives C(i) from the current vertex count. The
// heuristic calls it whenever |V| changes so that a growing graph keeps the
// same proportional headroom (DESIGN.md §7).
func (p *Partitioner) recomputeCapacities() {
	p.capsN = p.g.NumVertices()
	p.caps = partition.UniformCapacities(p.capsN, p.cfg.K, p.cfg.CapacityFactor)
}

// ApplyBatch applies a mutation batch to the graph, places any new
// vertices, unassigns removed ones, resizes capacities, and resets the
// convergence window (a changed graph must re-converge). It returns the
// number of effective mutations.
func (p *Partitioner) ApplyBatch(b graph.Batch) int {
	if len(b) == 0 {
		return 0
	}
	// Track vertices present before, to detect removals handled by Apply.
	removedCandidates := make([]graph.VertexID, 0, len(b))
	for _, mu := range b {
		if mu.Kind == graph.MutRemoveVertex && p.g.Has(mu.U) {
			removedCandidates = append(removedCandidates, mu.U)
		}
	}
	// In incremental mode the graph reports every vertex the batch
	// touched; these seed the active set (together with their live
	// neighbourhoods, below) so the next Step examines exactly the
	// region of change.
	var touched func(graph.VertexID)
	if p.cfg.Incremental {
		p.touchScratch = p.touchScratch[:0]
		touched = func(v graph.VertexID) { p.touchScratch = append(p.touchScratch, v) }
	}
	applied := p.g.ApplyTouched(b, touched)
	if applied == 0 {
		return 0
	}
	p.asn.Grow(p.g.NumSlots())
	for _, v := range removedCandidates {
		if !p.g.Has(v) {
			p.asn.Unassign(v)
			p.recordChange(v)
		}
	}
	// Place newly-live vertices that have no partition yet.
	for _, mu := range b {
		switch mu.Kind {
		case graph.MutAddVertex:
			p.placeIfNew(mu.U)
		case graph.MutAddEdge:
			p.placeIfNew(mu.U)
			p.placeIfNew(mu.V)
		}
	}
	p.recomputeCapacities()
	if p.cfg.Incremental {
		p.active.Grow(p.g.NumSlots())
		// The touched set already covers every vertex whose Γ changed:
		// an edge mutation changes only its endpoints' neighbourhoods,
		// and a removal reports the removed vertex's neighbours. Marking
		// exactly that set keeps the wake proportional to the batch.
		for _, v := range p.touchScratch {
			if p.g.Has(v) {
				p.active.Mark(v)
			}
		}
		// Capacities were just re-derived from the new |V| (or degree
		// totals), which can raise any destination's quota: every parked
		// vertex gets another chance.
		p.active.UnparkAll()
	}
	p.quiet = 0
	return applied
}

func (p *Partitioner) placeIfNew(v graph.VertexID) {
	if !p.g.Has(v) || p.asn.Of(v) != partition.None {
		return
	}
	var target partition.ID
	if p.cfg.Placer != nil {
		target = p.cfg.Placer(v, p.cfg.K)
	} else {
		target = partition.HashVertex(v, p.cfg.K)
		// Hash placement ignores capacity in real systems; we only divert
		// when the hashed partition is already at capacity so the
		// |P(i)| ≤ C(i) invariant survives stream growth.
		if p.asn.Size(target) >= p.caps[target] {
			target = p.leastLoaded()
		}
	}
	p.asn.Assign(v, target)
	p.recordChange(v)
}

func (p *Partitioner) leastLoaded() partition.ID {
	best := partition.ID(0)
	for i := 1; i < p.cfg.K; i++ {
		if p.asn.Size(partition.ID(i)) < p.asn.Size(best) {
			best = partition.ID(i)
		}
	}
	return best
}

// Step executes one iteration of the heuristic and returns its stats.
func (p *Partitioner) Step() IterationStats {
	k := p.cfg.K
	weight := p.beginIteration()

	p.moves = p.moves[:0]
	requested := 0
	examined := 0
	switch {
	case k <= 1:
		// Single partition: nothing can move.
	case p.cfg.Incremental:
		requested, examined = p.stepIncremental(weight)
	case p.par > 1:
		examined = p.g.NumVertices()
		requested = p.stepParallel(weight)
	default:
		examined = p.g.NumVertices()
		p.g.ForEachVertex(func(v graph.VertexID) {
			if p.cfg.S < 1 && p.rng.Float64() >= p.cfg.S {
				return // unwilling this iteration
			}
			cur := p.asn.Of(v)
			best := p.bestPartitions(v, cur)
			if best == nil {
				return // current partition is among the candidates: stay
			}
			requested++
			// Try tied best destinations in random order until one has
			// quota left; otherwise stay (worst-case capacity rule).
			p.rng.Shuffle(len(best), func(i, j int) { best[i], best[j] = best[j], best[i] })
			w := weight(v)
			for _, dst := range best {
				if p.cfg.DisableQuotas {
					p.moves = append(p.moves, move{v: v, from: cur, to: dst})
					break
				}
				if p.quota[cur][dst] >= w {
					p.quota[cur][dst] -= w
					p.moves = append(p.moves, move{v: v, from: cur, to: dst})
					break
				}
			}
		})
	}

	return p.finishIteration(requested, examined)
}

// beginIteration runs the iteration preamble shared by every execution
// path: capacities are refreshed, the per-pair quota matrix (and its
// column mirror) is filled from free capacity, and the request-weight
// function is returned. Pure function of (graph, assignment, config), so
// every cluster replica derives the identical quota view independently.
func (p *Partitioner) beginIteration() func(graph.VertexID) int {
	k := p.cfg.K
	if p.g.NumVertices() != p.capsN {
		p.recomputeCapacities()
	}

	// Capacity accounting: vertex counts by default, degree units with
	// the edge-balanced extension.
	caps := p.caps
	var loads []int
	if p.cfg.BalanceEdges {
		caps = p.edgeCapacities()
		loads = EdgeLoads(p.g, p.asn)
	}
	loadOf := func(j int) int {
		if loads != nil {
			return loads[j]
		}
		return p.asn.Size(partition.ID(j))
	}
	weight := func(v graph.VertexID) int {
		if p.cfg.BalanceEdges {
			if d := p.g.Degree(v); d > 0 {
				return d
			}
		}
		return 1
	}

	// Quotas from free capacity at the start of the iteration:
	// Q(i,j) = floor(C_free(j) / (k−1)) for i ≠ j (Section 2.2).
	for j := 0; j < k; j++ {
		free := caps[j] - loadOf(j)
		if free < 0 {
			free = 0
		}
		q := free
		if k > 1 {
			q = free / (k - 1)
		}
		for i := 0; i < k; i++ {
			p.quota[i][j] = q
		}
		if p.quotaCol != nil {
			p.quotaCol[j] = q
		}
	}
	return weight
}

// finishIteration is the iteration barrier shared by Step and the
// cluster apply path: every granted move in p.moves is applied
// simultaneously, the incremental scheduler's neighbourhood wakes run,
// and the iteration/convergence counters advance.
func (p *Partitioner) finishIteration(requested, examined int) IterationStats {
	// Apply all granted migrations simultaneously (end of iteration).
	// Every execution path (sequential, sharded, incremental) funnels its
	// grants into p.moves, so recording here covers them all.
	for _, mv := range p.moves {
		p.asn.Assign(mv.v, mv.to)
		p.recordChange(mv.v)
	}
	if p.cfg.Incremental {
		// Every applied move changes the Γ-counts of the mover's
		// neighbours: re-wake them (and the mover, which re-settles).
		// Departures also free capacity in the source partition, so
		// vertices parked on it get another chance.
		for _, mv := range p.moves {
			p.active.MarkNeighborhood(p.g, mv.v)
		}
		for _, mv := range p.moves {
			p.active.UnparkDest(mv.from)
		}
	}

	st := IterationStats{
		Iteration:  p.iter,
		Examined:   examined,
		Requested:  requested,
		Migrations: len(p.moves),
		CutEdges:   -1,
	}
	if p.cfg.RecordEvery > 0 && p.iter%p.cfg.RecordEvery == 0 {
		st.CutEdges = partition.CutEdges(p.g, p.asn)
		st.CutRatio = ratio(st.CutEdges, p.g.NumEdges())
		st.Imbalance = partition.Imbalance(p.asn)
	}
	if len(p.moves) == 0 {
		p.quiet++
	} else {
		p.quiet = 0
		p.lastMigration = p.iter
	}
	p.iter++
	return st
}

// bestPartitions returns the tied argmax destinations for v over
// |Γ(v) ∩ P(i)| (heat-weighted when the workload term is active), or nil
// when the current partition is itself a candidate (the heuristic
// preferentially stays, Section 2.1).
func (p *Partitioner) bestPartitions(v graph.VertexID, cur partition.ID) []partition.ID {
	p.tied = p.scoreBest(v, cur, p.counts, p.countsF, p.tied)
	if len(p.tied) == 0 {
		return nil
	}
	return p.tied
}

// scoreBest dispatches between the paper-exact integer scorer and the
// heat-weighted scorer (heat.go). The integer path is taken whenever the
// workload term is inert — WorkloadWeight zero or no heat folded yet —
// so the default configuration pays one predictable branch per decision.
func (p *Partitioner) scoreBest(v graph.VertexID, cur partition.ID, counts []int, countsF []float64, tied []partition.ID) []partition.ID {
	if p.heatScale != 0 {
		return bestPartitionsHeatInto(p.g, p.asn, v, cur, p.heat, p.heatScale, countsF, tied)
	}
	return bestPartitionsInto(p.g, p.asn, v, cur, counts, tied)
}

// bestPartitionsInto is the buffer-parameterised form of bestPartitions,
// shared by the sequential path and the parallel shards (each shard passes
// its own scratch so the sweep is data-race free). It returns tied with the
// winners appended, or tied[:0] when the current partition is among them.
func bestPartitionsInto(g *graph.Graph, asn *partition.Assignment, v graph.VertexID, cur partition.ID, counts []int, tied []partition.ID) []partition.ID {
	for i := range counts {
		counts[i] = 0
	}
	counts[cur]++ // Γ(v) includes v itself
	// This is the hottest read in the system. Vertices untouched since
	// the last arena compaction — the overwhelming majority on a
	// converged graph — iterate their zero-copy arena span directly
	// (CleanNeighbors inlines to an array load); dirty vertices fall back
	// to the chunked cursor, which merges the pending overlay without
	// allocating.
	if nbrs, ok := g.CleanNeighbors(v); ok {
		for _, w := range nbrs {
			if pw := asn.Of(w); pw != partition.None {
				counts[pw]++
			}
		}
	} else {
		var c graph.Cursor
		c.Reset(g, v)
		for {
			chunk := c.NextChunk()
			if chunk == nil {
				break
			}
			for _, w := range chunk {
				if pw := asn.Of(w); pw != partition.None {
					counts[pw]++
				}
			}
		}
	}
	if g.Directed() {
		// Both directions matter on digraphs: a cut edge costs
		// communication whichever way messages flow.
		if nbrs, ok := g.CleanInNeighbors(v); ok {
			for _, w := range nbrs {
				if pw := asn.Of(w); pw != partition.None {
					counts[pw]++
				}
			}
		} else {
			var c graph.Cursor
			c.ResetIn(g, v)
			for {
				chunk := c.NextChunk()
				if chunk == nil {
					break
				}
				for _, w := range chunk {
					if pw := asn.Of(w); pw != partition.None {
						counts[pw]++
					}
				}
			}
		}
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	tied = tied[:0]
	if counts[cur] == max {
		return tied
	}
	for i, c := range counts {
		if c == max {
			tied = append(tied, partition.ID(i))
		}
	}
	return tied
}

// Run iterates until convergence (ConvergenceWindow quiet iterations) or
// MaxIterations, whichever comes first, and returns the run summary.
func (p *Partitioner) Run() Result {
	var res Result
	for p.iter < p.cfg.MaxIterations && !p.Converged() {
		st := p.Step()
		res.History = append(res.History, st)
		res.TotalMigrations += st.Migrations
	}
	res.Iterations = p.iter
	res.Converged = p.Converged()
	if res.Converged {
		res.ConvergedAt = p.lastMigration + 1
	} else {
		res.ConvergedAt = p.iter
	}
	res.FinalCutRatio = partition.CutRatio(p.g, p.asn)
	return res
}

// RunDynamic interleaves the heuristic with a mutation stream: each
// iteration first applies the stream's next batch (if any), then runs one
// Step. After the stream is exhausted the loop continues until convergence
// or MaxIterations. It returns the run summary; History always includes
// every iteration.
func (p *Partitioner) RunDynamic(stream graph.Stream) Result {
	var res Result
	for p.iter < p.cfg.MaxIterations {
		if !stream.Done() {
			p.ApplyBatch(stream.Next())
		} else if p.Converged() {
			break
		}
		st := p.Step()
		res.History = append(res.History, st)
		res.TotalMigrations += st.Migrations
	}
	res.Iterations = p.iter
	res.Converged = p.Converged()
	if res.Converged {
		res.ConvergedAt = p.lastMigration + 1
	} else {
		res.ConvergedAt = p.iter
	}
	res.FinalCutRatio = partition.CutRatio(p.g, p.asn)
	return res
}

// CutRatio computes the current cut ratio on demand.
func (p *Partitioner) CutRatio() float64 { return partition.CutRatio(p.g, p.asn) }

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
