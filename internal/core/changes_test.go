package core

import (
	"testing"

	"xdgp/internal/gen"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

func ringBatchN(n int) graph.Batch {
	b := make(graph.Batch, 0, n)
	for i := 0; i < n; i++ {
		b = append(b, graph.Mutation{Kind: graph.MutAddEdge,
			U: graph.VertexID(i), V: graph.VertexID((i + 1) % n)})
	}
	return b
}

// TestChangeTrackingCoversAllWrites pins the contract the daemon's
// routing-snapshot publisher depends on: with tracking enabled, every
// vertex whose assignment the partitioner writes — stream placements,
// removal unassignments, granted migrations — appears in DrainChanges
// before the write becomes externally visible as a table difference.
func TestChangeTrackingCoversAllWrites(t *testing.T) {
	g := graph.NewUndirected(0)
	cfg := DefaultConfig(4, 11)
	cfg.RecordEvery = 0
	p, err := New(g, partition.NewAssignment(0, 4), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Tracking off (the default): nothing accumulates.
	p.ApplyBatch(ringBatchN(50))
	if c := p.DrainChanges(); c != nil {
		t.Fatalf("tracking off but DrainChanges returned %d entries", len(c))
	}

	p.SetChangeTracking(true)
	prev := p.Assignment().Freeze()

	verifyDrainExplainsDiff := func(step string) {
		t.Helper()
		cur := p.Assignment().Freeze()
		changed := make(map[graph.VertexID]bool)
		for _, v := range p.DrainChanges() {
			changed[v] = true
		}
		slots := cur.Slots()
		if prev.Slots() > slots {
			slots = prev.Slots()
		}
		for v := graph.VertexID(0); int(v) < slots; v++ {
			if prev.Of(v) != cur.Of(v) && !changed[v] {
				t.Fatalf("%s: vertex %d moved %d→%d but was not reported",
					step, v, prev.Of(v), cur.Of(v))
			}
		}
		prev = cur
	}

	// Stream placements.
	p.ApplyBatch(ringBatchN(100))
	verifyDrainExplainsDiff("placements")

	// Granted migrations, across enough iterations to see real moves.
	moved := 0
	for i := 0; i < 40 && moved == 0; i++ {
		moved += p.Step().Migrations
		verifyDrainExplainsDiff("step")
	}
	if moved == 0 {
		t.Fatal("no migrations happened; test exercised nothing")
	}

	// Removal unassignments.
	p.ApplyBatch(graph.Batch{{Kind: graph.MutRemoveVertex, U: 7}})
	verifyDrainExplainsDiff("removal")

	// Drain resets: an immediate second drain is empty.
	if c := p.DrainChanges(); c != nil {
		t.Fatalf("second drain returned %d entries", len(c))
	}
}

// TestChangeTrackingIsPassive: enabling tracking must not perturb the
// heuristic — same seed, same stream, byte-identical assignments.
func TestChangeTrackingIsPassive(t *testing.T) {
	run := func(track bool) []partition.ID {
		g := gen.BarabasiAlbert(400, 2, 5)
		asn := partition.Hash(g, 4)
		cfg := DefaultConfig(4, 3)
		cfg.RecordEvery = 0
		p, err := New(g, asn, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if track {
			p.SetChangeTracking(true)
		}
		for i := 0; i < 60; i++ {
			p.Step()
			if track {
				p.DrainChanges()
			}
		}
		return p.Assignment().Table()
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("slot %d diverged with tracking on: %d vs %d", i, a[i], b[i])
		}
	}
}
