package core

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// This file implements the parallel form of the heuristic's iteration. The
// per-vertex decision is embarrassingly parallel — each vertex inspects
// only its own neighbourhood — so the sweep is sharded across
// Config.Parallelism goroutines. Determinism is preserved for a fixed
// shard count:
//
//   - Decide phase: each shard owns a contiguous range of vertex slots and
//     its own RNG (a PCG stream selected by Config.Seed and the shard
//     index), so coin flips and tie-break shuffles replay identically run
//     to run.
//
//   - Grant phase: candidate requests claim per-pair quotas Q(i,j) from an
//     atomic quota ledger. A claim only ever decrements row i = the
//     vertex's current partition, so rows are distributed over the grant
//     goroutines and each counter sees a single claimant processing its
//     requests in a fixed order (shard-major, then slot order) — the
//     outcome cannot depend on goroutine interleaving.
//
// Granted moves are applied simultaneously at the iteration barrier by
// Step, exactly as in the sequential path, preserving the paper's BSP
// semantics.

// coreShard is the per-goroutine state of the parallel sweep.
type coreShard struct {
	rng       *rand.Rand
	src       *rand.PCG // rng's source; serializable for checkpoint/restore
	counts    []int
	countsF   []float64 // float vote scratch for the heat-weighted scorer
	tied      []partition.ID
	candBuf   []partition.ID   // arena backing every request's candidate list
	reqs      [][]shardReq     // migration requests grouped by source partition
	keep      []graph.VertexID // frontier vertices staying dirty (incremental mode)
	parkBuf   []shardPark      // hard-denied vertices to park at the barrier
	parkDests []partition.ID   // arena backing the park entries' destination lists
	settled   []graph.VertexID // cluster mode: vertices that chose to stay, for broadcast
	capture   bool             // record settled vertices (cluster decide only)
	requested int
}

// shardPark is one hard-denied vertex awaiting barrier-side parking: its
// tied-best destinations live in the shard's parkDests at [off, off+n).
type shardPark struct {
	v   graph.VertexID
	off int32
	n   int32
}

// shardReq is one vertex's migration request: the shuffled tied-best
// destinations live in the shard's candBuf at [off, off+n).
type shardReq struct {
	v   graph.VertexID
	off int32
	n   int32
	w   int32 // quota units the move consumes (1, or degree when edge-balanced)
}

func newCoreShard(seed int64, idx, k int) *coreShard {
	// The shard index selects a distinct PCG stream; see newPCG. The
	// per-shard generators stay a pure function of (seed, idx).
	src := newPCG(seed, idx+1)
	return &coreShard{
		rng:     rand.New(src),
		src:     src,
		counts:  make([]int, k),
		countsF: make([]float64, k),
		reqs:    make([][]shardReq, k),
	}
}

// decide runs the shard's share of the sweep: slots [lo, hi). It only
// reads the graph and the assignment, so shards race on nothing.
func (sh *coreShard) decide(p *Partitioner, lo, hi int, weight func(graph.VertexID) int) {
	sh.requested = 0
	sh.candBuf = sh.candBuf[:0]
	for i := range sh.reqs {
		sh.reqs[i] = sh.reqs[i][:0]
	}
	s := p.cfg.S
	for id := lo; id < hi; id++ {
		v := graph.VertexID(id)
		if !p.g.Has(v) {
			continue
		}
		if s < 1 && sh.rng.Float64() >= s {
			continue // unwilling this iteration
		}
		cur := p.asn.Of(v)
		sh.tied = p.scoreBest(v, cur, sh.counts, sh.countsF, sh.tied)
		if len(sh.tied) == 0 {
			continue // current partition is among the candidates: stay
		}
		sh.requested++
		sh.rng.Shuffle(len(sh.tied), func(i, j int) { sh.tied[i], sh.tied[j] = sh.tied[j], sh.tied[i] })
		off := int32(len(sh.candBuf))
		sh.candBuf = append(sh.candBuf, sh.tied...)
		sh.reqs[cur] = append(sh.reqs[cur], shardReq{v: v, off: off, n: int32(len(sh.tied)), w: int32(weight(v))})
	}
}

// stepParallel runs one iteration's decide and grant phases across the
// shards. Step has already filled p.quota from the free capacities at the
// start of the iteration; stepParallel loads them into the atomic ledger,
// fans out, and leaves the granted moves in p.moves for Step to apply at
// the barrier. It returns the number of requests (post-coin, pre-quota).
func (p *Partitioner) stepParallel(weight func(graph.VertexID) int) int {
	k := p.cfg.K
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			p.ledger[i*k+j] = int64(p.quota[i][j])
		}
	}

	// Decide: contiguous slot ranges, one per shard.
	slots := p.g.NumSlots()
	p.forEachShard(func(s int, sh *coreShard) {
		lo, hi := graph.ShardRange(s, p.par, slots)
		sh.decide(p, lo, hi, weight)
	})
	requested := 0
	for _, sh := range p.shards {
		requested += sh.requested
	}
	p.grantAll()
	return requested
}

// forEachShard fans fn out over the shards, one goroutine each, and waits.
func (p *Partitioner) forEachShard(fn func(s int, sh *coreShard)) {
	var wg sync.WaitGroup
	for s, sh := range p.shards {
		wg.Add(1)
		go func(s int, sh *coreShard) {
			defer wg.Done()
			fn(s, sh)
		}(s, sh)
	}
	wg.Wait()
}

// grantAll runs the grant phase over the shards' request queues: row g of
// the ledger is claimed only by goroutine g%G, in shard-major order —
// deterministic for a fixed shard count. Granted moves land in p.moves.
func (p *Partitioner) grantAll() {
	k := p.cfg.K
	grantees := k
	if p.par < grantees {
		grantees = p.par
	}
	if p.grantBufs == nil {
		p.grantBufs = make([][]move, 0, grantees)
	}
	for len(p.grantBufs) < grantees {
		p.grantBufs = append(p.grantBufs, nil)
	}
	var wg sync.WaitGroup
	for gi := 0; gi < grantees; gi++ {
		p.grantBufs[gi] = p.grantBufs[gi][:0]
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			p.grantRows(gi, grantees)
		}(gi)
	}
	wg.Wait()
	for gi := 0; gi < grantees; gi++ {
		p.moves = append(p.moves, p.grantBufs[gi]...)
	}
}

// grantRows claims quotas for every request whose source partition i
// satisfies i % grantees == gi, appending granted moves to p.grantBufs[gi].
func (p *Partitioner) grantRows(gi, grantees int) {
	k := p.cfg.K
	out := p.grantBufs[gi]
	for i := gi; i < k; i += grantees {
		from := partition.ID(i)
		for _, sh := range p.shards {
			for _, r := range sh.reqs[i] {
				cands := sh.candBuf[r.off : r.off+r.n]
				for _, dst := range cands {
					if p.cfg.DisableQuotas {
						out = append(out, move{v: r.v, from: from, to: dst})
						break
					}
					idx := i*k + int(dst)
					if atomic.AddInt64(&p.ledger[idx], -int64(r.w)) >= 0 {
						out = append(out, move{v: r.v, from: from, to: dst})
						break
					}
					// Restore the over-claim and try the next tied
					// destination; no quota left anywhere means stay
					// (worst-case capacity rule).
					atomic.AddInt64(&p.ledger[idx], int64(r.w))
				}
			}
		}
	}
	p.grantBufs[gi] = out
}
