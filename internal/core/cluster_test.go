package core

import (
	"fmt"
	"testing"

	"xdgp/internal/gen"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// clusterReplicas builds n replicated-state-machine replicas: each holds
// its own clone of the graph and the same deterministic initial
// assignment, with Parallelism pinned to the shard count.
func clusterReplicas(t *testing.T, g *graph.Graph, k, n int, mut func(*Config)) []*Partitioner {
	t.Helper()
	out := make([]*Partitioner, n)
	for i := range out {
		gc := g.Clone()
		cfg := DefaultConfig(k, 13)
		cfg.Parallelism = n
		cfg.RecordEvery = 1
		if mut != nil {
			mut(&cfg)
		}
		out[i] = mustNew(t, gc, partition.Hash(gc, k), cfg)
	}
	return out
}

// TestClusterStepMatchesSingleProcess pins the tentpole determinism
// contract at the core layer: N replicas, each running decide for only
// its own shard and applying the merged decisions, stay byte-identical —
// to each other AND to one process running Step with Parallelism = N —
// through a dynamic run with mutation batches landing mid-flight.
func TestClusterStepMatchesSingleProcess(t *testing.T) {
	for _, mode := range []struct {
		name        string
		incremental bool
	}{{"fullsweep", false}, {"incremental", true}} {
		for _, n := range []int{2, 3, 4} {
			t.Run(fmt.Sprintf("%s/N=%d", mode.name, n), func(t *testing.T) {
				const k = 6
				g := gen.HolmeKim(800, 5, 0.1, 7)
				stream := forestFireStream(g, 6, 40, 99)

				refG := g.Clone()
				cfg := DefaultConfig(k, 13)
				cfg.Parallelism = n
				cfg.RecordEvery = 1
				cfg.Incremental = mode.incremental
				ref := mustNew(t, refG, partition.Hash(refG, k), cfg)

				reps := clusterReplicas(t, g, k, n, func(c *Config) { c.Incremental = mode.incremental })

				decs := make([]*ShardDecision, n)
				// Batches stop arriving at iteration 38, so the tail of
				// this loop steps a drained (eventually empty) frontier —
				// empty decisions must merge exactly like busy ones.
				for iter := 0; iter < 55; iter++ {
					if iter%7 == 3 {
						if b := stream.Next(); b != nil {
							ref.ApplyBatch(b)
							for _, r := range reps {
								r.ApplyBatch(b)
							}
						}
					}
					refSt := ref.Step()
					for i, r := range reps {
						d, err := r.StepClusterDecide(i)
						if err != nil {
							t.Fatalf("iter %d shard %d decide: %v", iter, i, err)
						}
						decs[i] = d
					}
					for i, r := range reps {
						st, err := r.StepClusterApply(decs)
						if err != nil {
							t.Fatalf("iter %d shard %d apply: %v", iter, i, err)
						}
						if st != refSt {
							t.Fatalf("iter %d shard %d: stats diverged from single-process:\n cluster: %+v\n single:  %+v", iter, i, st, refSt)
						}
					}
					for i, r := range reps {
						if r.DirtyCount() != ref.DirtyCount() {
							t.Fatalf("iter %d shard %d: frontier size %d, single-process %d", iter, i, r.DirtyCount(), ref.DirtyCount())
						}
						for v := 0; v < refG.NumSlots(); v++ {
							id := graph.VertexID(v)
							if got, want := r.Assignment().Of(id), ref.Assignment().Of(id); got != want {
								t.Fatalf("iter %d shard %d: vertex %d → %d, single-process → %d", iter, i, v, got, want)
							}
						}
					}
				}
				if !ref.Converged() {
					// Sanity: the workload should be long enough to exercise
					// quiet iterations too; not fatal, the identity above is
					// the contract.
					t.Logf("reference not converged after 40 iterations (fine)")
				}
			})
		}
	}
}

// TestClusterDecideValidation covers the error paths: out-of-range
// shard, wrong decision count, nil decisions.
func TestClusterDecideValidation(t *testing.T) {
	g := gen.Cube3D(4)
	cfg := DefaultConfig(4, 7)
	cfg.Parallelism = 2
	p := mustNew(t, g, partition.Hash(g, 4), cfg)
	if _, err := p.StepClusterDecide(2); err == nil {
		t.Fatal("decide with shard ≥ parallelism must fail")
	}
	if _, err := p.StepClusterDecide(-1); err == nil {
		t.Fatal("decide with negative shard must fail")
	}
	d, err := p.StepClusterDecide(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.StepClusterApply([]*ShardDecision{d}); err == nil {
		t.Fatal("apply with missing decisions must fail")
	}
	if _, err := p.StepClusterApply([]*ShardDecision{d, nil}); err == nil {
		t.Fatal("apply with nil decision must fail")
	}
}
