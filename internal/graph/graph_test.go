package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddVertexAndEdge(t *testing.T) {
	g := NewUndirected(4)
	a := g.AddVertex()
	b := g.AddVertex()
	c := g.AddVertex()
	if g.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d, want 3", g.NumVertices())
	}
	if !g.AddEdge(a, b) || !g.AddEdge(b, c) {
		t.Fatal("AddEdge failed")
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge(a, b) || !g.HasEdge(b, a) {
		t.Fatal("undirected edge must be visible from both sides")
	}
	if g.Degree(b) != 2 {
		t.Fatalf("Degree(b) = %d, want 2", g.Degree(b))
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRejectSelfLoopAndDuplicate(t *testing.T) {
	g := NewUndirected(2)
	a := g.AddVertex()
	b := g.AddVertex()
	if g.AddEdge(a, a) {
		t.Fatal("self-loop must be rejected")
	}
	if !g.AddEdge(a, b) {
		t.Fatal("first edge must succeed")
	}
	if g.AddEdge(a, b) || g.AddEdge(b, a) {
		t.Fatal("duplicate edge must be rejected")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestRemoveVertexCleansEdges(t *testing.T) {
	g := NewUndirected(3)
	a, b, c := g.AddVertex(), g.AddVertex(), g.AddVertex()
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	g.AddEdge(a, c)
	g.RemoveVertex(b)
	if g.Has(b) {
		t.Fatal("b should be gone")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 (only a-c)", g.NumEdges())
	}
	if g.HasEdge(a, b) || g.HasEdge(c, b) {
		t.Fatal("edges to removed vertex must be gone")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestVertexIDRecycling(t *testing.T) {
	g := NewUndirected(2)
	a := g.AddVertex()
	b := g.AddVertex()
	g.RemoveVertex(a)
	c := g.AddVertex()
	if c != a {
		t.Fatalf("expected recycled ID %d, got %d", a, c)
	}
	if g.NumSlots() != 2 {
		t.Fatalf("NumSlots = %d, want 2", g.NumSlots())
	}
	_ = b
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEnsureVertexGrowsTable(t *testing.T) {
	g := NewUndirected(0)
	g.EnsureVertex(5)
	if !g.Has(5) || g.NumVertices() != 1 {
		t.Fatalf("EnsureVertex(5) failed: has=%v n=%d", g.Has(5), g.NumVertices())
	}
	if g.NumSlots() != 6 {
		t.Fatalf("NumSlots = %d, want 6", g.NumSlots())
	}
	// IDs 0..4 must be on the free list and reusable.
	v := g.AddVertex()
	if v >= 5 {
		t.Fatalf("expected a recycled ID < 5, got %d", v)
	}
	g.EnsureVertex(5) // idempotent
	if g.NumVertices() != 2 {
		t.Fatalf("NumVertices = %d, want 2", g.NumVertices())
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDirectedEdges(t *testing.T) {
	g := NewDirected(2)
	a, b := g.AddVertex(), g.AddVertex()
	if !g.AddEdge(a, b) {
		t.Fatal("AddEdge failed")
	}
	if !g.HasEdge(a, b) || g.HasEdge(b, a) {
		t.Fatal("directed edge must be one-way")
	}
	if g.Degree(a) != 1 || g.InDegree(a) != 0 {
		t.Fatalf("a out/in = %d/%d, want 1/0", g.Degree(a), g.InDegree(a))
	}
	if g.Degree(b) != 0 || g.InDegree(b) != 1 {
		t.Fatalf("b out/in = %d/%d, want 0/1", g.Degree(b), g.InDegree(b))
	}
	// Reverse edge is a distinct edge.
	if !g.AddEdge(b, a) {
		t.Fatal("reciprocal edge must be allowed in digraphs")
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDirectedRemoveVertex(t *testing.T) {
	g := NewDirected(3)
	a, b, c := g.AddVertex(), g.AddVertex(), g.AddVertex()
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	g.AddEdge(c, a)
	g.RemoveVertex(b)
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUndirectedView(t *testing.T) {
	g := NewDirected(3)
	a, b, c := g.AddVertex(), g.AddVertex(), g.AddVertex()
	g.AddEdge(a, b)
	g.AddEdge(b, a) // reciprocal pair collapses
	g.AddEdge(b, c)
	u := g.Undirected()
	if u.Directed() {
		t.Fatal("view must be undirected")
	}
	if u.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 (a-b collapsed)", u.NumEdges())
	}
	if u.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d, want 3", u.NumVertices())
	}
	if err := u.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := NewUndirected(2)
	a, b := g.AddVertex(), g.AddVertex()
	g.AddEdge(a, b)
	c := g.Clone()
	c.RemoveEdge(a, b)
	if !g.HasEdge(a, b) {
		t.Fatal("clone mutation leaked into original")
	}
	if c.NumEdges() != 0 || g.NumEdges() != 1 {
		t.Fatalf("edges: clone=%d orig=%d", c.NumEdges(), g.NumEdges())
	}
}

func TestForEachEdgeVisitsOnce(t *testing.T) {
	g := NewUndirected(4)
	ids := []VertexID{g.AddVertex(), g.AddVertex(), g.AddVertex(), g.AddVertex()}
	g.AddEdge(ids[0], ids[1])
	g.AddEdge(ids[1], ids[2])
	g.AddEdge(ids[2], ids[3])
	count := 0
	g.ForEachEdge(func(u, v VertexID) {
		if u >= v {
			t.Errorf("undirected visit must have u < v, got (%d,%d)", u, v)
		}
		count++
	})
	if count != 3 {
		t.Fatalf("visited %d edges, want 3", count)
	}
}

func TestAvgAndMaxDegree(t *testing.T) {
	g := NewUndirected(3)
	a, b, c := g.AddVertex(), g.AddVertex(), g.AddVertex()
	g.AddEdge(a, b)
	g.AddEdge(a, c)
	if g.MaxDegree() != 2 {
		t.Fatalf("MaxDegree = %d, want 2", g.MaxDegree())
	}
	if got := g.AvgDegree(); got != 4.0/3.0 {
		t.Fatalf("AvgDegree = %v, want 4/3", got)
	}
}

// TestRandomMutationInvariants drives a random mutation sequence and checks
// structural invariants after every step — the property that underpins the
// dynamic experiments.
func TestRandomMutationInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := NewUndirected(0)
	var live []VertexID
	for step := 0; step < 3000; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // add vertex
			live = append(live, g.AddVertex())
		case op < 7 && len(live) >= 2: // add edge
			u := live[rng.Intn(len(live))]
			v := live[rng.Intn(len(live))]
			g.AddEdge(u, v)
		case op < 8 && len(live) > 0: // remove vertex
			i := rng.Intn(len(live))
			g.RemoveVertex(live[i])
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		case len(live) >= 2: // remove edge
			u := live[rng.Intn(len(live))]
			v := live[rng.Intn(len(live))]
			g.RemoveEdge(u, v)
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != len(live) {
		t.Fatalf("NumVertices = %d, tracker says %d", g.NumVertices(), len(live))
	}
}

// TestDegreeSumProperty: for any random undirected graph, the degree sum
// equals 2|E|.
func TestDegreeSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewUndirected(0)
		n := 2 + rng.Intn(30)
		for i := 0; i < n; i++ {
			g.AddVertex()
		}
		for i := 0; i < 3*n; i++ {
			g.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
		}
		sum := 0
		g.ForEachVertex(func(v VertexID) { sum += g.Degree(v) })
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborsOfDeadVertex(t *testing.T) {
	g := NewUndirected(1)
	v := g.AddVertex()
	g.RemoveVertex(v)
	if g.Neighbors(v) != nil || g.Degree(v) != 0 || g.InDegree(v) != 0 {
		t.Fatal("dead vertex must report empty adjacency")
	}
	if g.Has(NoVertex) {
		t.Fatal("NoVertex must never be live")
	}
}
