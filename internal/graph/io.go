package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph in the plain whitespace-separated
// edge-list format used by SNAP and the Walshaw archive: one "u v" pair per
// line, '#' comments allowed. Isolated vertices are emitted as single-field
// lines so a round trip preserves them.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# vertices %d edges %d directed %t\n", g.n, g.m, g.directed); err != nil {
		return err
	}
	var writeErr error
	g.ForEachEdge(func(u, v VertexID) {
		if writeErr != nil {
			return
		}
		_, writeErr = fmt.Fprintf(bw, "%d %d\n", u, v)
	})
	if writeErr != nil {
		return writeErr
	}
	g.ForEachVertex(func(v VertexID) {
		if writeErr != nil || g.Degree(v) > 0 || g.InDegree(v) > 0 {
			return
		}
		_, writeErr = fmt.Fprintf(bw, "%d\n", v)
	})
	if writeErr != nil {
		return writeErr
	}
	return bw.Flush()
}

// MaxReadVertexID bounds the vertex IDs the parsers accept. The vertex
// table is dense — EnsureVertex materialises every slot up to the largest
// ID — so an adversarial or corrupt file containing one huge ID would
// otherwise allocate gigabytes before any error surfaced. 1<<24 caps the
// worst-case table at a few hundred megabytes while covering every
// dataset scale in the paper; files with larger ID spaces must be
// renumbered first.
const MaxReadVertexID = 1 << 24

// parseVertexID parses one whitespace-separated vertex field, rejecting
// non-numeric input, negative IDs and IDs above MaxReadVertexID.
func parseVertexID(field string) (VertexID, error) {
	id, err := strconv.ParseInt(field, 10, 64)
	if err != nil {
		return NoVertex, fmt.Errorf("parse %q: %w", field, err)
	}
	if id < 0 {
		return NoVertex, fmt.Errorf("vertex id %d is negative", id)
	}
	if id > MaxReadVertexID {
		return NoVertex, fmt.Errorf("vertex id %d exceeds the supported maximum %d", id, MaxReadVertexID)
	}
	return VertexID(id), nil
}

// ReadEdgeList parses the edge-list format produced by WriteEdgeList (and
// by SNAP datasets). Lines starting with '#' are ignored; vertices are
// created on first reference. Malformed fields, negative IDs and IDs above
// MaxReadVertexID are errors, never panics.
func ReadEdgeList(r io.Reader, directed bool) (*Graph, error) {
	var g *Graph
	if directed {
		g = NewDirected(0)
	} else {
		g = NewUndirected(0)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		u, err := parseVertexID(fields[0])
		if err != nil {
			return nil, fmt.Errorf("edge list line %d: %w", lineNo, err)
		}
		g.EnsureVertex(u)
		if len(fields) == 1 {
			continue
		}
		v, err := parseVertexID(fields[1])
		if err != nil {
			return nil, fmt.Errorf("edge list line %d: %w", lineNo, err)
		}
		g.EnsureVertex(v)
		g.AddEdge(u, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("edge list scan: %w", err)
	}
	return g, nil
}
