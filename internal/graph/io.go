package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph in the plain whitespace-separated
// edge-list format used by SNAP and the Walshaw archive: one "u v" pair per
// line, '#' comments allowed. Isolated vertices are emitted as single-field
// lines so a round trip preserves them.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# vertices %d edges %d directed %t\n", g.n, g.m, g.directed); err != nil {
		return err
	}
	var writeErr error
	g.ForEachEdge(func(u, v VertexID) {
		if writeErr != nil {
			return
		}
		_, writeErr = fmt.Fprintf(bw, "%d %d\n", u, v)
	})
	if writeErr != nil {
		return writeErr
	}
	g.ForEachVertex(func(v VertexID) {
		if writeErr != nil || g.Degree(v) > 0 || g.InDegree(v) > 0 {
			return
		}
		_, writeErr = fmt.Fprintf(bw, "%d\n", v)
	})
	if writeErr != nil {
		return writeErr
	}
	return bw.Flush()
}

// ReadEdgeList parses the edge-list format produced by WriteEdgeList (and
// by SNAP datasets). Lines starting with '#' are ignored; vertices are
// created on first reference.
func ReadEdgeList(r io.Reader, directed bool) (*Graph, error) {
	var g *Graph
	if directed {
		g = NewDirected(0)
	} else {
		g = NewUndirected(0)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("edge list line %d: parse %q: %w", lineNo, fields[0], err)
		}
		g.EnsureVertex(VertexID(u))
		if len(fields) == 1 {
			continue
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("edge list line %d: parse %q: %w", lineNo, fields[1], err)
		}
		g.EnsureVertex(VertexID(v))
		g.AddEdge(VertexID(u), VertexID(v))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("edge list scan: %w", err)
	}
	return g, nil
}
