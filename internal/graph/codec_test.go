package graph

import (
	"bytes"
	"testing"
)

// buildChurnedGraph constructs a graph whose free list and slot layout are
// non-trivial: vertices added, removed, and IDs recycled.
func buildChurnedGraph(directed bool) *Graph {
	var g *Graph
	if directed {
		g = NewDirected(0)
	} else {
		g = NewUndirected(0)
	}
	for i := 0; i < 12; i++ {
		g.AddVertex()
	}
	for i := 0; i < 11; i++ {
		g.AddEdge(VertexID(i), VertexID(i+1))
	}
	g.AddEdge(0, 5)
	g.AddEdge(3, 9)
	g.RemoveVertex(4)
	g.RemoveVertex(7)
	g.RemoveEdge(0, 1)
	recycled := g.AddVertex() // recycles a freed ID
	g.AddEdge(recycled, 0)
	return g
}

func TestGraphCodecRoundTrip(t *testing.T) {
	for _, directed := range []bool{false, true} {
		g := buildChurnedGraph(directed)
		var buf bytes.Buffer
		if err := g.EncodeBinary(&buf); err != nil {
			t.Fatalf("directed=%v: encode: %v", directed, err)
		}
		got, err := DecodeGraph(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("directed=%v: decode: %v", directed, err)
		}
		if err := got.CheckInvariants(); err != nil {
			t.Fatalf("directed=%v: decoded graph invalid: %v", directed, err)
		}
		if got.Directed() != g.Directed() || got.NumVertices() != g.NumVertices() ||
			got.NumEdges() != g.NumEdges() || got.NumSlots() != g.NumSlots() {
			t.Fatalf("directed=%v: header mismatch: got |V|=%d |E|=%d slots=%d",
				directed, got.NumVertices(), got.NumEdges(), got.NumSlots())
		}
		// Identity-level equality: the free-list order decides which IDs
		// future AddVertex calls hand out, so it must round-trip exactly.
		a, b := g.AddVertex(), got.AddVertex()
		if a != b {
			t.Fatalf("directed=%v: free-list order lost: next ID %d vs %d", directed, a, b)
		}
		// Adjacency order decides iteration order, hence RNG consumption.
		g.ForEachVertex(func(v VertexID) {
			gn, hn := g.Neighbors(v), got.Neighbors(v)
			if len(gn) != len(hn) {
				t.Fatalf("directed=%v: vertex %d degree %d vs %d", directed, v, len(gn), len(hn))
			}
			for i := range gn {
				if gn[i] != hn[i] {
					t.Fatalf("directed=%v: vertex %d neighbour %d: %d vs %d", directed, v, i, gn[i], hn[i])
				}
			}
		})
	}
}

func TestGraphCodecRejectsCorruption(t *testing.T) {
	g := buildChurnedGraph(false)
	var buf bytes.Buffer
	if err := g.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Truncations at every prefix must error, never panic.
	for cut := 0; cut < len(full); cut += 7 {
		if _, err := DecodeGraph(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes decoded successfully", cut)
		}
	}
	// A flipped alive byte breaks the live-count validation.
	mut := append([]byte(nil), full...)
	mut[1+4+8+8] ^= 1 // first alive byte
	if _, err := DecodeGraph(bytes.NewReader(mut)); err == nil {
		t.Fatal("flipped alive bitmap decoded successfully")
	}
	// A huge slot count must be rejected before allocation.
	huge := append([]byte(nil), full...)
	huge[1], huge[2], huge[3], huge[4] = 0xff, 0xff, 0xff, 0x7f
	if _, err := DecodeGraph(bytes.NewReader(huge)); err == nil {
		t.Fatal("oversized slot count decoded successfully")
	}
}

func TestGraphCodecEmptyGraph(t *testing.T) {
	g := NewUndirected(0)
	var buf bytes.Buffer
	if err := g.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != 0 || got.NumEdges() != 0 || got.NumSlots() != 0 {
		t.Fatalf("empty graph round-trip: |V|=%d |E|=%d slots=%d",
			got.NumVertices(), got.NumEdges(), got.NumSlots())
	}
}
