package graph

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"testing"
)

func wireBatch() Batch {
	return Batch{
		{Kind: MutAddVertex, U: 0},
		{Kind: MutAddEdge, U: 1, V: 2},
		{Kind: MutAddEdge, U: 2, V: MaxReadVertexID},
		{Kind: MutRemoveEdge, U: 1, V: 2},
		{Kind: MutRemoveVertex, U: 0},
	}
}

func TestWireBatchRoundTrip(t *testing.T) {
	for _, b := range []Batch{nil, wireBatch()} {
		var buf bytes.Buffer
		if err := WriteBatchFrame(&buf, b); err != nil {
			t.Fatal(err)
		}
		f, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if f.Type != FrameBatch {
			t.Fatalf("type %v, want batch", f.Type)
		}
		if len(b) == 0 {
			if len(f.Batch) != 0 {
				t.Fatalf("empty batch decoded to %d mutations", len(f.Batch))
			}
		} else if !reflect.DeepEqual(f.Batch, b) {
			t.Fatalf("round trip mismatch:\n got %v\nwant %v", f.Batch, b)
		}
		if buf.Len() != 0 {
			t.Fatalf("%d trailing bytes after one frame", buf.Len())
		}
	}
}

// TestWireVertexOpDropsV pins the canonical-encoding rule: vertex ops
// carry v=0 on the wire regardless of what the in-memory mutation held,
// so equal streams encode to equal bytes.
func TestWireVertexOpDropsV(t *testing.T) {
	a, err := AppendBatchFrame(nil, Batch{{Kind: MutAddVertex, U: 3, V: 99}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := AppendBatchFrame(nil, Batch{{Kind: MutAddVertex, U: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("vertex-op v leaked into the encoding")
	}
	f, err := ReadFrame(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if f.Batch[0].V != 0 {
		t.Fatalf("decoded v = %d, want 0", f.Batch[0].V)
	}
}

func TestWireAckNakRoundTrip(t *testing.T) {
	buf := AppendAckFrame(nil, Ack{Accepted: 7, Queued: 4242})
	buf = AppendNakFrame(buf, Nak{Code: NakBackpressure, RetryAfterMillis: 250})
	buf = AppendNakFrame(buf, Nak{Code: NakMalformed})
	r := bytes.NewReader(buf)
	f, err := ReadFrame(r)
	if err != nil || f.Type != FrameAck || f.Ack != (Ack{Accepted: 7, Queued: 4242}) {
		t.Fatalf("ack round trip: %+v, %v", f, err)
	}
	f, err = ReadFrame(r)
	if err != nil || f.Type != FrameNak || f.Nak != (Nak{Code: NakBackpressure, RetryAfterMillis: 250}) {
		t.Fatalf("nak round trip: %+v, %v", f, err)
	}
	f, err = ReadFrame(r)
	if err != nil || f.Type != FrameNak || f.Nak != (Nak{Code: NakMalformed}) {
		t.Fatalf("malformed-nak round trip: %+v, %v", f, err)
	}
	if _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}
}

func TestWireEncodeRejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		b    Batch
	}{
		{"zero kind", Batch{{Kind: 0, U: 1}}},
		{"unknown kind", Batch{{Kind: 9, U: 1}}},
		{"negative u", Batch{{Kind: MutAddVertex, U: -2}}},
		{"huge u", Batch{{Kind: MutAddVertex, U: MaxReadVertexID + 1}}},
		{"huge v", Batch{{Kind: MutAddEdge, U: 0, V: MaxReadVertexID + 1}}},
	}
	for _, tc := range cases {
		if _, err := AppendBatchFrame(nil, tc.b); err == nil {
			t.Errorf("%s: encode accepted invalid batch", tc.name)
		}
	}
}

// TestWireDecodeMalformed is the malformed/truncated-frame table test:
// every hostile prefix or mutated frame must yield a clean error (or a
// clean io.EOF only on an empty stream), never a panic or a bogus batch.
func TestWireDecodeMalformed(t *testing.T) {
	good, err := AppendBatchFrame(nil, wireBatch())
	if err != nil {
		t.Fatal(err)
	}
	u32 := func(v uint32) []byte {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		return b[:]
	}
	frame := func(parts ...[]byte) []byte { return bytes.Join(parts, nil) }

	cases := []struct {
		name    string
		data    []byte
		wantEOF bool // clean io.EOF (empty stream), not ErrUnexpectedEOF
	}{
		{"empty", nil, true},
		{"version only", []byte{WireVersion}, false},
		{"bad version", []byte{0x00, byte(FrameBatch), 0, 0, 0, 0}, false},
		{"future version", []byte{99, byte(FrameBatch), 0, 0, 0, 0}, false},
		{"unknown type", frame([]byte{WireVersion, 0x7f}, u32(0)), false},
		{"truncated header", good[:3], false},
		{"truncated count", good[:7], false},
		{"truncated mid-mutation", good[:len(good)-5], false},
		{"payload under count", frame([]byte{WireVersion, byte(FrameBatch)}, u32(4), u32(2)), false},
		{"payload over count", frame([]byte{WireVersion, byte(FrameBatch)}, u32(14), u32(0), make([]byte, 10)), false},
		{"payload lacks count", frame([]byte{WireVersion, byte(FrameBatch)}, u32(2), []byte{0, 0}), false},
		{"oversized payload claim", frame([]byte{WireVersion, byte(FrameBatch)}, u32(1<<31)), false},
		{"count over maximum", frame([]byte{WireVersion, byte(FrameBatch)}, u32(4+9*(MaxWireBatch+1)), u32(MaxWireBatch+1)), false},
		{"bad mutation kind", frame([]byte{WireVersion, byte(FrameBatch)}, u32(13), u32(1), []byte{0}, u32(1), u32(0)), false},
		{"negative vertex", frame([]byte{WireVersion, byte(FrameBatch)}, u32(13), u32(1), []byte{byte(MutAddVertex)}, u32(1<<31), u32(0)), false},
		{"vertex above max", frame([]byte{WireVersion, byte(FrameBatch)}, u32(13), u32(1), []byte{byte(MutAddVertex)}, u32(MaxReadVertexID+1), u32(0)), false},
		{"vertex op with v", frame([]byte{WireVersion, byte(FrameBatch)}, u32(13), u32(1), []byte{byte(MutAddVertex)}, u32(1), u32(5)), false},
		{"ack payload wrong size", frame([]byte{WireVersion, byte(FrameAck)}, u32(5), make([]byte, 5)), false},
		{"nak payload wrong size", frame([]byte{WireVersion, byte(FrameNak)}, u32(8), make([]byte, 8)), false},
		{"nak unknown code", frame([]byte{WireVersion, byte(FrameNak)}, u32(5), []byte{9}, u32(0)), false},
		{"ack truncated", AppendAckFrame(nil, Ack{1, 2})[:9], false},
	}
	for _, tc := range cases {
		_, err := ReadFrame(bytes.NewReader(tc.data))
		if err == nil {
			t.Errorf("%s: decode accepted malformed frame", tc.name)
			continue
		}
		if tc.wantEOF != (err == io.EOF) {
			t.Errorf("%s: error %v (wantEOF=%v)", tc.name, err, tc.wantEOF)
		}
		if !tc.wantEOF && err == io.EOF {
			t.Errorf("%s: mid-frame truncation reported as clean EOF", tc.name)
		}
	}

	// Every truncation point of a good frame must be ErrUnexpectedEOF or a
	// format error — never clean EOF, never success.
	for i := 1; i < len(good); i++ {
		_, err := ReadFrame(bytes.NewReader(good[:i]))
		if err == nil {
			t.Fatalf("truncation at %d/%d decoded successfully", i, len(good))
		}
		if err == io.EOF {
			t.Fatalf("truncation at %d/%d reported clean EOF", i, len(good))
		}
	}
}

// FuzzReadFrame mirrors FuzzDecodeGraph for the wire protocol: arbitrary
// bytes must decode to a valid frame that re-encodes byte-identically to
// its own consumed prefix, or fail cleanly — never panic, never allocate
// unboundedly.
func FuzzReadFrame(f *testing.F) {
	seed, err := AppendBatchFrame(nil, wireBatch())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	empty, _ := AppendBatchFrame(nil, nil)
	f.Add(empty)
	f.Add(AppendAckFrame(nil, Ack{Accepted: 3, Queued: 9}))
	f.Add(AppendNakFrame(nil, Nak{Code: NakBackpressure, RetryAfterMillis: 100}))
	f.Add([]byte{WireVersion, byte(FrameBatch), 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out []byte
		switch fr.Type {
		case FrameBatch:
			out, err = AppendBatchFrame(nil, fr.Batch)
			if err != nil {
				t.Fatalf("decoded batch failed to re-encode: %v", err)
			}
		case FrameAck:
			out = AppendAckFrame(nil, fr.Ack)
		case FrameNak:
			out = AppendNakFrame(nil, fr.Nak)
		default:
			t.Fatalf("decoder returned unknown frame type %v", fr.Type)
		}
		if !bytes.Equal(out, data[:len(out)]) {
			t.Fatalf("re-encode is not the consumed prefix:\n got %x\nwant %x", out, data[:len(out)])
		}
		// The re-encoded frame must decode to the same value (fixed point).
		fr2, err := ReadFrame(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if !reflect.DeepEqual(fr, fr2) {
			t.Fatalf("codec is not a fixed point: %+v vs %+v", fr, fr2)
		}
	})
}
