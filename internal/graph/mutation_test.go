package graph

import "testing"

func TestApplyBatch(t *testing.T) {
	g := NewUndirected(0)
	batch := Batch{
		{Kind: MutAddVertex, U: 0},
		{Kind: MutAddVertex, U: 1},
		{Kind: MutAddVertex, U: 2},
		{Kind: MutAddEdge, U: 0, V: 1},
		{Kind: MutAddEdge, U: 1, V: 2},
	}
	applied := g.Apply(batch)
	if applied != 5 {
		t.Fatalf("applied = %d, want 5", applied)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyIsIdempotentForDuplicates(t *testing.T) {
	g := NewUndirected(0)
	batch := Batch{
		{Kind: MutAddVertex, U: 0},
		{Kind: MutAddVertex, U: 0}, // duplicate
		{Kind: MutAddEdge, U: 0, V: 1},
		{Kind: MutAddEdge, U: 0, V: 1}, // duplicate
	}
	applied := g.Apply(batch)
	// One effective vertex add + one effective edge add; duplicates are
	// no-ops (the edge's on-demand creation of vertex 1 is not counted).
	if applied != 2 {
		t.Fatalf("applied = %d, want 2", applied)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestApplyEdgeCreatesEndpoints(t *testing.T) {
	g := NewUndirected(0)
	g.Apply(Batch{{Kind: MutAddEdge, U: 7, V: 9}})
	if !g.Has(7) || !g.Has(9) || !g.HasEdge(7, 9) {
		t.Fatal("edge mutation must create endpoints on demand")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyRemovals(t *testing.T) {
	g := NewUndirected(0)
	g.Apply(Batch{
		{Kind: MutAddEdge, U: 0, V: 1},
		{Kind: MutAddEdge, U: 1, V: 2},
	})
	applied := g.Apply(Batch{
		{Kind: MutRemoveEdge, U: 0, V: 1},
		{Kind: MutRemoveVertex, U: 2},
		{Kind: MutRemoveVertex, U: 2}, // already gone: no-op
	})
	if applied != 2 {
		t.Fatalf("applied = %d, want 2", applied)
	}
	if g.NumVertices() != 2 || g.NumEdges() != 0 {
		t.Fatalf("got %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
}

func TestBatchCounters(t *testing.T) {
	b := Batch{
		{Kind: MutAddVertex, U: 0},
		{Kind: MutAddVertex, U: 1},
		{Kind: MutAddEdge, U: 0, V: 1},
		{Kind: MutRemoveVertex, U: 5},
	}
	if b.NumAdds() != 2 {
		t.Errorf("NumAdds = %d, want 2", b.NumAdds())
	}
	if b.NumEdgeAdds() != 1 {
		t.Errorf("NumEdgeAdds = %d, want 1", b.NumEdgeAdds())
	}
}

func TestSliceStream(t *testing.T) {
	s := NewSliceStream([]Batch{
		{{Kind: MutAddVertex, U: 0}},
		nil,
		{{Kind: MutAddVertex, U: 1}},
	})
	if s.Done() {
		t.Fatal("stream should not start done")
	}
	b1 := s.Next()
	if len(b1) != 1 || b1[0].U != 0 {
		t.Fatalf("unexpected first batch %v", b1)
	}
	if b := s.Next(); b != nil {
		t.Fatalf("second batch should be nil, got %v", b)
	}
	s.Next()
	if !s.Done() {
		t.Fatal("stream should be done after three batches")
	}
	if s.Next() != nil {
		t.Fatal("exhausted stream must return nil")
	}
}

func TestMutationKindString(t *testing.T) {
	kinds := map[MutationKind]string{
		MutAddVertex:    "add-vertex",
		MutRemoveVertex: "remove-vertex",
		MutAddEdge:      "add-edge",
		MutRemoveEdge:   "remove-edge",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if MutationKind(99).String() != "mutation(99)" {
		t.Error("unknown kind should render numerically")
	}
}

func TestApplyTouchedReportsBatchTouches(t *testing.T) {
	g := NewUndirected(4)
	a, b, c := g.AddVertex(), g.AddVertex(), g.AddVertex()
	g.AddEdge(a, b)
	g.AddEdge(a, c)
	var touched []VertexID
	note := func(v VertexID) { touched = append(touched, v) }

	// Removing a vertex must report its ex-neighbours (their Γ changed).
	if applied := g.ApplyTouched(Batch{{Kind: MutRemoveVertex, U: a}}, note); applied != 1 {
		t.Fatalf("applied = %d, want 1", applied)
	}
	seen := map[VertexID]bool{}
	for _, v := range touched {
		seen[v] = true
	}
	for _, want := range []VertexID{a, b, c} {
		if !seen[want] {
			t.Fatalf("removal touched %v, missing %d", touched, want)
		}
	}

	// Edge add/remove report both endpoints; no-ops report nothing.
	touched = nil
	g.ApplyTouched(Batch{{Kind: MutAddEdge, U: b, V: c}, {Kind: MutAddEdge, U: b, V: c}}, note)
	if len(touched) != 2 {
		t.Fatalf("edge add touched %v, want exactly the two endpoints once", touched)
	}
}

func TestApplyRejectedSelfLoopStillCreatesVertex(t *testing.T) {
	// A self-loop on a fresh ID is rejected as an edge, but EnsureVertex
	// has already materialised the endpoint: that is a graph change and
	// must be reported as applied and touched, or callers' applied==0
	// fast paths would leave a live vertex unplaced.
	g := NewUndirected(2)
	g.AddVertex()
	loop := VertexID(7)
	var touched []VertexID
	applied := g.ApplyTouched(Batch{{Kind: MutAddEdge, U: loop, V: loop}}, func(v VertexID) {
		touched = append(touched, v)
	})
	if applied != 1 {
		t.Fatalf("applied = %d, want 1 (vertex materialised)", applied)
	}
	if !g.Has(loop) {
		t.Fatal("endpoint not created")
	}
	if len(touched) == 0 || touched[0] != loop {
		t.Fatalf("touched = %v, want [%d]", touched, loop)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// A duplicate of an existing edge with live endpoints stays a no-op.
	if applied := g.Apply(Batch{{Kind: MutAddEdge, U: loop, V: loop}}); applied != 0 {
		t.Fatalf("repeat self-loop applied = %d, want 0", applied)
	}
}
