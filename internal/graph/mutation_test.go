package graph

import "testing"

func TestApplyBatch(t *testing.T) {
	g := NewUndirected(0)
	batch := Batch{
		{Kind: MutAddVertex, U: 0},
		{Kind: MutAddVertex, U: 1},
		{Kind: MutAddVertex, U: 2},
		{Kind: MutAddEdge, U: 0, V: 1},
		{Kind: MutAddEdge, U: 1, V: 2},
	}
	applied := g.Apply(batch)
	if applied != 5 {
		t.Fatalf("applied = %d, want 5", applied)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyIsIdempotentForDuplicates(t *testing.T) {
	g := NewUndirected(0)
	batch := Batch{
		{Kind: MutAddVertex, U: 0},
		{Kind: MutAddVertex, U: 0}, // duplicate
		{Kind: MutAddEdge, U: 0, V: 1},
		{Kind: MutAddEdge, U: 0, V: 1}, // duplicate
	}
	applied := g.Apply(batch)
	// One effective vertex add + one effective edge add; duplicates are
	// no-ops (the edge's on-demand creation of vertex 1 is not counted).
	if applied != 2 {
		t.Fatalf("applied = %d, want 2", applied)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestApplyEdgeCreatesEndpoints(t *testing.T) {
	g := NewUndirected(0)
	g.Apply(Batch{{Kind: MutAddEdge, U: 7, V: 9}})
	if !g.Has(7) || !g.Has(9) || !g.HasEdge(7, 9) {
		t.Fatal("edge mutation must create endpoints on demand")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyRemovals(t *testing.T) {
	g := NewUndirected(0)
	g.Apply(Batch{
		{Kind: MutAddEdge, U: 0, V: 1},
		{Kind: MutAddEdge, U: 1, V: 2},
	})
	applied := g.Apply(Batch{
		{Kind: MutRemoveEdge, U: 0, V: 1},
		{Kind: MutRemoveVertex, U: 2},
		{Kind: MutRemoveVertex, U: 2}, // already gone: no-op
	})
	if applied != 2 {
		t.Fatalf("applied = %d, want 2", applied)
	}
	if g.NumVertices() != 2 || g.NumEdges() != 0 {
		t.Fatalf("got %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
}

func TestBatchCounters(t *testing.T) {
	b := Batch{
		{Kind: MutAddVertex, U: 0},
		{Kind: MutAddVertex, U: 1},
		{Kind: MutAddEdge, U: 0, V: 1},
		{Kind: MutRemoveVertex, U: 5},
	}
	if b.NumAdds() != 2 {
		t.Errorf("NumAdds = %d, want 2", b.NumAdds())
	}
	if b.NumEdgeAdds() != 1 {
		t.Errorf("NumEdgeAdds = %d, want 1", b.NumEdgeAdds())
	}
}

func TestSliceStream(t *testing.T) {
	s := NewSliceStream([]Batch{
		{{Kind: MutAddVertex, U: 0}},
		nil,
		{{Kind: MutAddVertex, U: 1}},
	})
	if s.Done() {
		t.Fatal("stream should not start done")
	}
	b1 := s.Next()
	if len(b1) != 1 || b1[0].U != 0 {
		t.Fatalf("unexpected first batch %v", b1)
	}
	if b := s.Next(); b != nil {
		t.Fatalf("second batch should be nil, got %v", b)
	}
	s.Next()
	if !s.Done() {
		t.Fatal("stream should be done after three batches")
	}
	if s.Next() != nil {
		t.Fatal("exhausted stream must return nil")
	}
}

func TestMutationKindString(t *testing.T) {
	kinds := map[MutationKind]string{
		MutAddVertex:    "add-vertex",
		MutRemoveVertex: "remove-vertex",
		MutAddEdge:      "add-edge",
		MutRemoveEdge:   "remove-edge",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if MutationKind(99).String() != "mutation(99)" {
		t.Error("unknown kind should render numerically")
	}
}
