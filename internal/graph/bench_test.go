package graph

import (
	"math/rand"
	"testing"
)

func benchGraph(n int) *Graph {
	g := NewUndirected(n)
	for i := 0; i < n; i++ {
		g.AddVertex()
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 4*n; i++ {
		g.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
	}
	return g
}

func BenchmarkAddEdge(b *testing.B) {
	g := NewUndirected(b.N + 1)
	for i := 0; i <= b.N; i++ {
		g.AddVertex()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.AddEdge(VertexID(i), VertexID(i+1))
	}
}

func BenchmarkHasEdge(b *testing.B) {
	g := benchGraph(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(VertexID(i%10000), VertexID((i*7)%10000))
	}
}

// BenchmarkHasEdgeHub measures membership tests against a power-law hub:
// a star with 100k leaves, the worst case for the former O(degree)
// linear scan. The sorted CSR base span answers these with a binary
// search (the overlay stays linear but is bounded by the compaction
// threshold), so this must stay logarithmic in the hub degree.
func BenchmarkHasEdgeHub(b *testing.B) {
	const leaves = 100000
	g := NewUndirected(leaves + 1)
	hub := g.AddVertex()
	for i := 0; i < leaves; i++ {
		g.AddEdge(hub, g.AddVertex())
	}
	g.Compact()
	for _, bc := range []struct {
		name string
		dirt bool
	}{{"clean", false}, {"overlaid", true}} {
		b.Run(bc.name, func(b *testing.B) {
			h := g
			if bc.dirt {
				h = g.Clone()
				// Touch the hub so the probe also walks its overlay.
				extra := h.AddVertex()
				h.AddEdge(hub, extra)
				h.RemoveEdge(hub, 17)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.HasEdge(hub, VertexID(1+i%leaves))
			}
		})
	}
}

func BenchmarkNeighborsScan(b *testing.B) {
	g := benchGraph(10000)
	b.ResetTimer()
	sum := 0
	for i := 0; i < b.N; i++ {
		for _, w := range g.Neighbors(VertexID(i % 10000)) {
			sum += int(w)
		}
	}
	_ = sum
}

func BenchmarkApplyChurnBatch(b *testing.B) {
	g := benchGraph(10000)
	batch := Batch{
		{Kind: MutAddVertex, U: VertexID(g.NumSlots())},
		{Kind: MutAddEdge, U: VertexID(g.NumSlots()), V: 0},
		{Kind: MutRemoveVertex, U: VertexID(g.NumSlots())},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Apply(batch)
	}
}

func BenchmarkRemoveVertexWithEdges(b *testing.B) {
	b.StopTimer()
	for i := 0; i < b.N; i++ {
		g := NewUndirected(64)
		center := g.AddVertex()
		for j := 0; j < 32; j++ {
			leaf := g.AddVertex()
			g.AddEdge(center, leaf)
		}
		b.StartTimer()
		g.RemoveVertex(center)
		b.StopTimer()
	}
}
