package graph

import (
	"math/rand"
	"testing"
)

func benchGraph(n int) *Graph {
	g := NewUndirected(n)
	for i := 0; i < n; i++ {
		g.AddVertex()
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 4*n; i++ {
		g.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
	}
	return g
}

func BenchmarkAddEdge(b *testing.B) {
	g := NewUndirected(b.N + 1)
	for i := 0; i <= b.N; i++ {
		g.AddVertex()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.AddEdge(VertexID(i), VertexID(i+1))
	}
}

func BenchmarkHasEdge(b *testing.B) {
	g := benchGraph(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(VertexID(i%10000), VertexID((i*7)%10000))
	}
}

func BenchmarkNeighborsScan(b *testing.B) {
	g := benchGraph(10000)
	b.ResetTimer()
	sum := 0
	for i := 0; i < b.N; i++ {
		for _, w := range g.Neighbors(VertexID(i % 10000)) {
			sum += int(w)
		}
	}
	_ = sum
}

func BenchmarkApplyChurnBatch(b *testing.B) {
	g := benchGraph(10000)
	batch := Batch{
		{Kind: MutAddVertex, U: VertexID(g.NumSlots())},
		{Kind: MutAddEdge, U: VertexID(g.NumSlots()), V: 0},
		{Kind: MutRemoveVertex, U: VertexID(g.NumSlots())},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Apply(batch)
	}
}

func BenchmarkRemoveVertexWithEdges(b *testing.B) {
	b.StopTimer()
	for i := 0; i < b.N; i++ {
		g := NewUndirected(64)
		center := g.AddVertex()
		for j := 0; j < 32; j++ {
			leaf := g.AddVertex()
			g.AddEdge(center, leaf)
		}
		b.StartTimer()
		g.RemoveVertex(center)
		b.StopTimer()
	}
}
