package graph

import (
	"bytes"
	"strings"
	"testing"
)

// Tests for the CSR-arena storage layer itself: cursor iteration against
// the materialised views, compaction triggers and canonical layout, and
// exact (byte-identical) codec round-trips of mid-overlay state.

// cursorIDs drains a cursor via Next.
func cursorIDs(c Cursor) []VertexID {
	var out []VertexID
	for {
		w, ok := c.Next()
		if !ok {
			return out
		}
		out = append(out, w)
	}
}

// chunkIDs drains a cursor via NextChunk.
func chunkIDs(c Cursor) []VertexID {
	var out []VertexID
	for {
		chunk := c.NextChunk()
		if chunk == nil {
			return out
		}
		out = append(out, chunk...)
	}
}

func sameIDs(a, b []VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCursorMatchesNeighborsAcrossMutations(t *testing.T) {
	g := buildChurnedGraph(false)
	check := func(stage string) {
		t.Helper()
		g.ForEachVertex(func(v VertexID) {
			want := g.Neighbors(v)
			if got := cursorIDs(g.NeighborCursor(v)); !sameIDs(got, want) {
				t.Fatalf("%s: vertex %d: Next yields %v, Neighbors %v", stage, v, got, want)
			}
			if got := chunkIDs(g.NeighborCursor(v)); !sameIDs(got, want) {
				t.Fatalf("%s: vertex %d: NextChunk yields %v, Neighbors %v", stage, v, got, want)
			}
			if nbrs, ok := g.CleanNeighbors(v); ok {
				if !sameIDs(nbrs, want) {
					t.Fatalf("%s: vertex %d: CleanNeighbors yields %v, Neighbors %v", stage, v, nbrs, want)
				}
			}
			var viaFn []VertexID
			g.ForEachNeighbor(v, func(w VertexID) { viaFn = append(viaFn, w) })
			if !sameIDs(viaFn, want) {
				t.Fatalf("%s: vertex %d: ForEachNeighbor yields %v, Neighbors %v", stage, v, viaFn, want)
			}
		})
	}
	check("overlaid")
	g.Compact()
	check("compacted")
	g.RemoveEdge(0, 5)
	g.RemoveVertex(3)
	v := g.AddVertex()
	g.AddEdge(v, 0)
	check("re-churned")
}

func TestCursorDeadAndEmptyVertices(t *testing.T) {
	g := NewUndirected(2)
	a := g.AddVertex()
	g.RemoveVertex(a)
	if ids := cursorIDs(g.NeighborCursor(a)); len(ids) != 0 {
		t.Fatalf("dead vertex cursor yielded %v", ids)
	}
	if ids := cursorIDs(g.NeighborCursor(999)); len(ids) != 0 {
		t.Fatalf("out-of-range cursor yielded %v", ids)
	}
	b := g.AddVertex()
	if ids := cursorIDs(g.NeighborCursor(b)); len(ids) != 0 {
		t.Fatalf("isolated vertex cursor yielded %v", ids)
	}
}

func TestCompactProducesCanonicalSortedLayout(t *testing.T) {
	g := buildChurnedGraph(false)
	g.Compact()
	if got := g.OverlayMass(); got != 0 {
		t.Fatalf("OverlayMass after Compact = %d", got)
	}
	g.ForEachVertex(func(v VertexID) {
		nbrs := g.Neighbors(v)
		for i := 1; i < len(nbrs); i++ {
			if nbrs[i] <= nbrs[i-1] {
				t.Fatalf("vertex %d adjacency not ascending after Compact: %v", v, nbrs)
			}
		}
	})
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// A second compact is a no-op structurally.
	before := g.MemoryStats()
	g.Compact()
	after := g.MemoryStats()
	if before.ArenaEntries != after.ArenaEntries || after.GarbageEntries != 0 {
		t.Fatalf("second Compact changed arena: %+v vs %+v", before, after)
	}
}

func TestAutoCompactionBoundsOverlay(t *testing.T) {
	g := NewUndirected(0)
	const n = 2000
	for i := 0; i < n; i++ {
		g.AddVertex()
	}
	// A long pure-append workload must keep the overlay below the policy
	// bound via automatic compaction, without any explicit Compact call.
	for i := 0; i < n; i++ {
		g.AddEdge(VertexID(i), VertexID((i+1)%n))
		g.AddEdge(VertexID(i), VertexID((i+7)%n))
	}
	if g.Compactions() == 0 {
		t.Fatal("no automatic compaction over a 4000-edge append workload")
	}
	bound := 2*g.NumEdges()/compactSlackDen + minCompactSlack
	if mass := g.OverlayMass(); mass > bound {
		t.Fatalf("overlay mass %d exceeds policy bound %d", mass, bound)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMaybeCompactThreshold(t *testing.T) {
	g := NewUndirected(0)
	for i := 0; i < 10; i++ {
		g.AddVertex()
	}
	g.AddEdge(0, 1)
	if g.MaybeCompact() {
		t.Fatal("MaybeCompact fired below the floor threshold")
	}
	g.Compact() // explicit compaction always folds
	if got := g.OverlayMass(); got != 0 {
		t.Fatalf("OverlayMass after explicit Compact = %d", got)
	}
}

// TestMaybeCompactEagerWindow pins that the quiet-point trigger is
// actually reachable: mutation-time auto-compaction keeps the overlay at
// or below the 1/16 bar, so MaybeCompact folds at the lower 1/64 bar —
// an overlay load between the two must survive mutations untouched and
// then fold on the explicit call.
func TestMaybeCompactEagerWindow(t *testing.T) {
	const n = 40000
	g := NewUndirected(n)
	for i := 0; i < n; i++ {
		g.AddVertex()
	}
	for i := 0; i < n; i++ {
		g.AddEdge(VertexID(i), VertexID((i+1)%n))
	}
	g.Compact()
	// Park the overlay between the eager (2m/64 = 1250) and automatic
	// (2m/16 = 5000) thresholds.
	for i := 0; i < 1000; i++ {
		g.AddEdge(VertexID(i), VertexID((i+n/2)%n))
	}
	load := g.OverlayMass()
	if load <= g.eagerCompactThreshold() || load > g.compactThreshold() {
		t.Fatalf("fixture overlay %d not between eager %d and auto %d",
			load, g.eagerCompactThreshold(), g.compactThreshold())
	}
	if !g.MaybeCompact() {
		t.Fatal("MaybeCompact declined an overlay above the eager threshold")
	}
	if g.OverlayMass() != 0 {
		t.Fatalf("OverlayMass after MaybeCompact = %d", g.OverlayMass())
	}
	if g.MaybeCompact() {
		t.Fatal("MaybeCompact fired on an empty overlay")
	}
}

// TestCheckInvariantsRejectsAliasedSpans pins the decode-safety fix: two
// slots aliasing the same arena region balance the arena-accounting
// identity (the double-counted overlap offsets unreferenced filler) and
// satisfy every symmetry check, so only the span-disjointness pass can
// catch them. Mutating such a graph would corrupt the aliased vertex.
func TestCheckInvariantsRejectsAliasedSpans(t *testing.T) {
	g := &Graph{
		alive: []bool{true, true, true, true},
		n:     4,
		m:     4,
	}
	// Slots 0 and 1 both claim arena [0,+2) = {2,3}; slots 2 and 3 hold
	// the symmetric halves; two filler entries go unreferenced.
	g.out.arena = []VertexID{2, 3, 0, 1, 0, 1, 0, 0}
	g.out.spans = []span{{off: 0, n: 2}, {off: 0, n: 2}, {off: 2, n: 2}, {off: 4, n: 2}}
	err := g.CheckInvariants()
	if err == nil {
		t.Fatal("aliased base spans passed CheckInvariants")
	}
	if !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("aliased spans rejected for the wrong reason: %v", err)
	}
	// The same payload must be rejected at decode time.
	var buf bytes.Buffer
	if err := g.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeGraph(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("decode accepted a payload with aliased spans")
	}
}

// TestCodecRoundTripMidOverlay pins the determinism acceptance criterion:
// a graph serialized with a non-empty overlay (and arena garbage) decodes
// to identical iteration order, free-list order AND byte-identical
// re-encode — so a daemon checkpointed mid-overlay restores exactly.
func TestCodecRoundTripMidOverlay(t *testing.T) {
	for _, directed := range []bool{false, true} {
		g := buildChurnedGraph(directed)
		g.Compact()
		// Build overlay state on top of the compacted base: splices,
		// appends, a removed vertex (garbage), and a recycled ID.
		g.RemoveEdge(2, 3)
		g.RemoveVertex(9)
		v := g.AddVertex()
		g.AddEdge(v, 0)
		g.AddEdge(v, 5)
		g.AddEdge(1, 8)
		if g.OverlayMass() == 0 {
			t.Fatal("fixture has no overlay — test would be vacuous")
		}

		var a bytes.Buffer
		if err := g.EncodeBinary(&a); err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeGraph(bytes.NewReader(a.Bytes()))
		if err != nil {
			t.Fatalf("directed=%v: decode mid-overlay: %v", directed, err)
		}
		var b bytes.Buffer
		if err := dec.EncodeBinary(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("directed=%v: mid-overlay re-encode not byte-identical (%d vs %d bytes)", directed, a.Len(), b.Len())
		}
		// Iteration order must survive exactly.
		g.ForEachVertex(func(u VertexID) {
			if !sameIDs(g.Neighbors(u), dec.Neighbors(u)) {
				t.Fatalf("directed=%v: vertex %d order diverged: %v vs %v", directed, u, g.Neighbors(u), dec.Neighbors(u))
			}
		})
		// Overlay bookkeeping — and therefore future compaction points —
		// must survive too.
		if g.OverlayMass() != dec.OverlayMass() {
			t.Fatalf("directed=%v: overlay mass %d vs %d", directed, g.OverlayMass(), dec.OverlayMass())
		}
		// Both must behave identically under further mutations.
		gv, dv := g.AddVertex(), dec.AddVertex()
		if gv != dv {
			t.Fatalf("directed=%v: free list diverged: next ID %d vs %d", directed, gv, dv)
		}
	}
}

func TestHasEdgeOnHub(t *testing.T) {
	// A star graph: membership tests on the hub must agree with the
	// model regardless of where the probe lands (binary search over the
	// sorted base plus linear overlay scan).
	g := NewUndirected(0)
	hub := g.AddVertex()
	const leaves = 500
	for i := 0; i < leaves; i++ {
		leaf := g.AddVertex()
		if !g.AddEdge(hub, leaf) {
			t.Fatalf("AddEdge(hub, %d) failed", leaf)
		}
	}
	g.Compact()
	// Mix in post-compaction churn so both base and overlay paths run.
	extra := g.AddVertex()
	g.AddEdge(hub, extra)
	g.RemoveEdge(hub, 3)
	for i := 1; i <= leaves; i++ {
		want := i != 3
		if got := g.HasEdge(hub, VertexID(i)); got != want {
			t.Fatalf("HasEdge(hub,%d) = %v, want %v", i, got, want)
		}
		if got := g.HasEdge(VertexID(i), hub); got != want {
			t.Fatalf("HasEdge(%d,hub) = %v, want %v", i, got, want)
		}
	}
	if !g.HasEdge(hub, extra) {
		t.Fatal("overlay edge invisible to HasEdge")
	}
	if g.HasEdge(hub, hub) || g.HasEdge(hub, VertexID(leaves+100)) {
		t.Fatal("phantom edge reported")
	}
}

func TestMemoryStatsAccounting(t *testing.T) {
	g := buildChurnedGraph(false)
	st := g.MemoryStats()
	if st.ArenaEntries != st.GarbageEntries+liveSpanEnds(g) {
		t.Fatalf("arena %d != garbage %d + live span ends %d", st.ArenaEntries, st.GarbageEntries, liveSpanEnds(g))
	}
	if st.Bytes <= 0 {
		t.Fatalf("Bytes = %d", st.Bytes)
	}
	g.Compact()
	st = g.MemoryStats()
	if st.GarbageEntries != 0 || st.OverlayAdds != 0 || st.DirtyVertices != 0 {
		t.Fatalf("post-compact stats not clean: %+v", st)
	}
	if st.ArenaEntries != 2*g.NumEdges() {
		t.Fatalf("post-compact arena %d != 2m %d", st.ArenaEntries, 2*g.NumEdges())
	}
}

// liveSpanEnds sums base-span lengths over all slots (the non-garbage
// arena portion).
func liveSpanEnds(g *Graph) int {
	total := 0
	for _, sp := range g.out.spans {
		total += int(sp.n)
	}
	return total
}
