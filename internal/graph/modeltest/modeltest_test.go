package modeltest

import (
	"os"
	"testing"
	"time"
)

// Tier-1 coverage: ≥10k operations per seed, three seeds, both graph
// modes, small slot budgets so vertex-ID recycling and duplicate-edge
// traffic dominate. Runs in well under a second per seed.

func TestModelUndirected(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		Run(t, Options{Seed: seed, Ops: 12000, Directed: false})
	}
}

func TestModelDirected(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		Run(t, Options{Seed: seed, Ops: 12000, Directed: true})
	}
}

// TestModelWideSlots runs with a slot budget large enough that the graph
// stays sparse and the free list long — the opposite regime of the dense
// default.
func TestModelWideSlots(t *testing.T) {
	Run(t, Options{Seed: 7, Ops: 12000, MaxSlots: 4096})
	Run(t, Options{Seed: 8, Ops: 12000, MaxSlots: 4096, Directed: true})
}

// TestModelLong is the nightly soak: it cycles seeds until the
// MODELTEST_BUDGET duration (e.g. "5m") is spent. Without the variable it
// runs a single extra seed, so the path stays exercised in tier-1.
func TestModelLong(t *testing.T) {
	budget := time.Duration(0)
	if v := os.Getenv("MODELTEST_BUDGET"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("MODELTEST_BUDGET %q: %v", v, err)
		}
		budget = d
	}
	deadline := time.Now().Add(budget)
	seed := uint64(1000)
	for {
		directed := seed%2 == 0
		slots := 64
		if seed%3 == 0 {
			slots = 1024
		}
		Run(t, Options{Seed: seed, Ops: 50000, Directed: directed, MaxSlots: slots})
		seed++
		if time.Now().After(deadline) {
			break
		}
	}
	t.Logf("soaked %d seeds", seed-1000)
}

// TestShrinkProducesMinimalSequence pins the shrinker itself: a sequence
// seeded with a known divergence (an artificial failing predicate is not
// injectable, so we instead assert shrinking is a no-op on passing runs
// and that generate is deterministic).
func TestGenerateDeterministic(t *testing.T) {
	a := generate(Options{Seed: 42, Ops: 1000}.withDefaults())
	b := generate(Options{Seed: 42, Ops: 1000}.withDefaults())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs between identical seeds: %v vs %v", i, a[i], b[i])
		}
	}
}
