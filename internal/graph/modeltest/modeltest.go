// Package modeltest implements model-based randomized testing of the
// CSR-arena graph store: long pseudo-random mutation sequences (vertex
// and edge addition/removal, ID recycling, explicit compactions, codec
// round-trips) run against both graph.Graph and a naive map-of-sets
// reference model, with full adjacency equality and CheckInvariants
// asserted after every batch. A storage layout rewritten under vertex-ID
// recycling is exactly where silent corruption hides; this harness is the
// lock on it.
//
// Sequences are generated up front from a seed as state-agnostic
// operations (IDs are drawn modulo a fixed slot budget), so a failing run
// shrinks: the harness first binary-searches the shortest failing prefix,
// then greedily drops operations that are not needed to reproduce, and
// reports the minimal sequence with its seed.
package modeltest

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"testing"

	"xdgp/internal/graph"
)

// opKind enumerates generated operations.
type opKind uint8

const (
	opAddVertex opKind = iota
	opEnsureVertex
	opRemoveVertex
	opAddEdge
	opRemoveEdge
	opCompact
	opMaybeCompact
	opCodecRoundTrip
	numOpKinds
)

func (k opKind) String() string {
	switch k {
	case opAddVertex:
		return "add-vertex"
	case opEnsureVertex:
		return "ensure-vertex"
	case opRemoveVertex:
		return "remove-vertex"
	case opAddEdge:
		return "add-edge"
	case opRemoveEdge:
		return "remove-edge"
	case opCompact:
		return "compact"
	case opMaybeCompact:
		return "maybe-compact"
	case opCodecRoundTrip:
		return "codec-round-trip"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// op is one state-agnostic operation: A and B resolve to vertex IDs
// modulo the run's slot budget at apply time, which keeps a sequence
// meaningful under shrinking.
type op struct {
	kind opKind
	a, b uint32
}

// Options configures one harness run.
type Options struct {
	// Seed selects the operation sequence.
	Seed uint64
	// Ops is the sequence length.
	Ops int
	// Directed selects the graph mode.
	Directed bool
	// MaxSlots is the ID budget operations draw from; small budgets force
	// heavy ID collision, recycling and duplicate-edge traffic.
	MaxSlots int
	// CheckEvery is the batch size between full model comparisons.
	CheckEvery int
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.Ops <= 0 {
		o.Ops = 10000
	}
	if o.MaxSlots <= 0 {
		o.MaxSlots = 64
	}
	if o.CheckEvery <= 0 {
		o.CheckEvery = 64
	}
	return o
}

// Run executes one model-based harness run, failing tb with the minimal
// reproducing sequence on divergence.
func Run(tb testing.TB, opts Options) {
	tb.Helper()
	opts = opts.withDefaults()
	ops := generate(opts)
	if err := replay(ops, opts); err != nil {
		minimal := shrink(ops, opts)
		finalErr := replay(minimal, opts)
		tb.Fatalf("model divergence (seed=%d directed=%v ops=%d): %v\nshrunk to %d ops: %s\nshrunk failure: %v",
			opts.Seed, opts.Directed, opts.Ops, err, len(minimal), formatOps(minimal), finalErr)
	}
}

// generate materialises the operation sequence for a seed. Kind weights
// skew towards edge traffic, with enough removals to keep the free list
// busy.
func generate(opts Options) []op {
	rng := rand.New(rand.NewPCG(opts.Seed, 0x9E3779B97F4A7C15))
	ops := make([]op, opts.Ops)
	for i := range ops {
		var k opKind
		switch r := rng.IntN(100); {
		case r < 12:
			k = opAddVertex
		case r < 20:
			k = opEnsureVertex
		case r < 30:
			k = opRemoveVertex
		case r < 62:
			k = opAddEdge
		case r < 88:
			k = opRemoveEdge
		case r < 92:
			k = opCompact
		case r < 96:
			k = opMaybeCompact
		default:
			k = opCodecRoundTrip
		}
		ops[i] = op{kind: k, a: rng.Uint32(), b: rng.Uint32()}
	}
	return ops
}

// model is the naive reference: adjacency as maps of sets, no sharing
// with the implementation under test beyond the semantic rules.
type model struct {
	directed bool
	adj      map[graph.VertexID]map[graph.VertexID]bool // out-adjacency of live vertices
	radj     map[graph.VertexID]map[graph.VertexID]bool // in-adjacency (directed only)
	edges    int
}

func newModel(directed bool) *model {
	m := &model{
		directed: directed,
		adj:      make(map[graph.VertexID]map[graph.VertexID]bool),
	}
	if directed {
		m.radj = make(map[graph.VertexID]map[graph.VertexID]bool)
	}
	return m
}

func (m *model) has(v graph.VertexID) bool { _, ok := m.adj[v]; return ok }

func (m *model) ensure(v graph.VertexID) {
	if !m.has(v) {
		m.adj[v] = make(map[graph.VertexID]bool)
		if m.directed {
			m.radj[v] = make(map[graph.VertexID]bool)
		}
	}
}

func (m *model) addEdge(u, v graph.VertexID) bool {
	if u == v || !m.has(u) || !m.has(v) || m.adj[u][v] {
		return false
	}
	m.adj[u][v] = true
	if m.directed {
		m.radj[v][u] = true
	} else {
		m.adj[v][u] = true
	}
	m.edges++
	return true
}

func (m *model) removeEdge(u, v graph.VertexID) bool {
	if !m.has(u) || !m.has(v) || !m.adj[u][v] {
		return false
	}
	delete(m.adj[u], v)
	if m.directed {
		delete(m.radj[v], u)
	} else {
		delete(m.adj[v], u)
	}
	m.edges--
	return true
}

func (m *model) removeVertex(v graph.VertexID) {
	if !m.has(v) {
		return
	}
	for w := range m.adj[v] {
		if m.directed {
			delete(m.radj[w], v)
		} else {
			delete(m.adj[w], v)
		}
		m.edges--
	}
	if m.directed {
		for w := range m.radj[v] {
			delete(m.adj[w], v)
			m.edges--
		}
		delete(m.radj, v)
	}
	delete(m.adj, v)
}

// replay drives ops against a fresh graph and model, returning the first
// divergence (nil when the run is clean).
func replay(ops []op, opts Options) error {
	var g *graph.Graph
	if opts.Directed {
		g = graph.NewDirected(0)
	} else {
		g = graph.NewUndirected(0)
	}
	m := newModel(opts.Directed)
	slotMod := uint32(opts.MaxSlots)
	for i, o := range ops {
		u := graph.VertexID(o.a % slotMod)
		v := graph.VertexID(o.b % slotMod)
		switch o.kind {
		case opAddVertex:
			id := g.AddVertex()
			if m.has(id) {
				return fmt.Errorf("op %d %s: AddVertex returned live ID %d", i, o.kind, id)
			}
			if int(id) >= g.NumSlots() {
				return fmt.Errorf("op %d %s: AddVertex returned out-of-table ID %d", i, o.kind, id)
			}
			m.ensure(id)
		case opEnsureVertex:
			g.EnsureVertex(u)
			m.ensure(u)
		case opRemoveVertex:
			g.RemoveVertex(u)
			m.removeVertex(u)
		case opAddEdge:
			want := false
			if m.has(u) && m.has(v) {
				want = m.addEdge(u, v)
			}
			if got := g.AddEdge(u, v); got != want {
				return fmt.Errorf("op %d %s(%d,%d): graph=%v model=%v", i, o.kind, u, v, got, want)
			}
		case opRemoveEdge:
			want := m.removeEdge(u, v)
			if got := g.RemoveEdge(u, v); got != want {
				return fmt.Errorf("op %d %s(%d,%d): graph=%v model=%v", i, o.kind, u, v, got, want)
			}
		case opCompact:
			g.Compact()
		case opMaybeCompact:
			g.MaybeCompact()
		case opCodecRoundTrip:
			var err error
			if g, err = roundTrip(g); err != nil {
				return fmt.Errorf("op %d %s: %w", i, o.kind, err)
			}
		}
		if (i+1)%opts.CheckEvery == 0 || i == len(ops)-1 {
			if err := compare(g, m); err != nil {
				return fmt.Errorf("after op %d (%s): %w", i, o.kind, err)
			}
		}
	}
	return nil
}

// compare asserts full equivalence between implementation and model.
func compare(g *graph.Graph, m *model) error {
	if err := g.CheckInvariants(); err != nil {
		return fmt.Errorf("invariants: %w", err)
	}
	if g.NumVertices() != len(m.adj) {
		return fmt.Errorf("vertices: graph=%d model=%d", g.NumVertices(), len(m.adj))
	}
	if g.NumEdges() != m.edges {
		return fmt.Errorf("edges: graph=%d model=%d", g.NumEdges(), m.edges)
	}
	for slot := 0; slot < g.NumSlots(); slot++ {
		v := graph.VertexID(slot)
		if g.Has(v) != m.has(v) {
			return fmt.Errorf("liveness of %d: graph=%v model=%v", v, g.Has(v), m.has(v))
		}
		if !g.Has(v) {
			if g.Degree(v) != 0 || g.Neighbors(v) != nil {
				return fmt.Errorf("dead vertex %d reports adjacency", v)
			}
			continue
		}
		if err := compareAdjacency(v, g.Degree(v), collect(g.NeighborCursor(v)), m.adj[v]); err != nil {
			return fmt.Errorf("out-adjacency: %w", err)
		}
		if m.directed {
			if err := compareAdjacency(v, g.InDegree(v), collect(g.InNeighborCursor(v)), m.radj[v]); err != nil {
				return fmt.Errorf("in-adjacency: %w", err)
			}
		}
		// The three read paths must agree with each other too.
		if ns := g.Neighbors(v); len(ns) != g.Degree(v) {
			return fmt.Errorf("vertex %d: Neighbors len %d != Degree %d", v, len(ns), g.Degree(v))
		}
		for w := range m.adj[v] {
			if !g.HasEdge(v, w) {
				return fmt.Errorf("HasEdge(%d,%d) false, model has it", v, w)
			}
		}
	}
	return nil
}

func compareAdjacency(v graph.VertexID, degree int, got []graph.VertexID, want map[graph.VertexID]bool) error {
	if degree != len(want) {
		return fmt.Errorf("vertex %d: degree graph=%d model=%d", v, degree, len(want))
	}
	if len(got) != len(want) {
		return fmt.Errorf("vertex %d: cursor yields %d neighbours, model %d", v, len(got), len(want))
	}
	seen := make(map[graph.VertexID]bool, len(got))
	for _, w := range got {
		if seen[w] {
			return fmt.Errorf("vertex %d: neighbour %d yielded twice", v, w)
		}
		seen[w] = true
		if !want[w] {
			return fmt.Errorf("vertex %d: neighbour %d not in model", v, w)
		}
	}
	return nil
}

func collect(c graph.Cursor) []graph.VertexID {
	var out []graph.VertexID
	for {
		w, ok := c.Next()
		if !ok {
			return out
		}
		out = append(out, w)
	}
}

// roundTrip encodes the graph, decodes it back, and verifies the re-encode
// is byte-identical — the determinism contract a mid-overlay checkpoint
// depends on. The decoded graph replaces the original so the run
// continues on restored state, exercising restore-then-mutate paths.
func roundTrip(g *graph.Graph) (*graph.Graph, error) {
	var a bytes.Buffer
	if err := g.EncodeBinary(&a); err != nil {
		return nil, fmt.Errorf("encode: %w", err)
	}
	dec, err := graph.DecodeGraph(bytes.NewReader(a.Bytes()))
	if err != nil {
		return nil, fmt.Errorf("decode: %w", err)
	}
	var b bytes.Buffer
	if err := dec.EncodeBinary(&b); err != nil {
		return nil, fmt.Errorf("re-encode: %w", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		return nil, fmt.Errorf("re-encode differs: %d vs %d bytes", a.Len(), b.Len())
	}
	return dec, nil
}

// shrink minimises a failing sequence: binary-search the shortest failing
// prefix, then greedily remove chunks that are not needed to reproduce.
func shrink(ops []op, opts Options) []op {
	fails := func(seq []op) bool { return replay(seq, opts) != nil }
	// Shortest failing prefix.
	lo, hi := 1, len(ops)
	for lo < hi {
		mid := (lo + hi) / 2
		if fails(ops[:mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	cur := append([]op(nil), ops[:lo]...)
	// Greedy chunk removal, halving chunk size.
	for chunk := len(cur) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start+chunk <= len(cur); {
			cand := append(append([]op(nil), cur[:start]...), cur[start+chunk:]...)
			if fails(cand) {
				cur = cand
			} else {
				start += chunk
			}
		}
	}
	return cur
}

func formatOps(ops []op) string {
	out := ""
	for i, o := range ops {
		if i > 0 {
			out += "; "
		}
		out += fmt.Sprintf("%s(%d,%d)", o.kind, o.a, o.b)
	}
	return out
}
