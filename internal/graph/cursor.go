package graph

// Cursor iterates one vertex's adjacency without allocating. A vertex's
// live adjacency is at most two contiguous runs — its base span in the
// arena (sorted, spliced in place on removal) and its overlay adds (in
// insertion order) — so iteration needs no merge logic. Obtain a cursor
// with NeighborCursor/InNeighborCursor, or reuse one across a sweep with
// Reset/ResetIn:
//
//	for c := g.NeighborCursor(v); ; {
//		w, ok := c.Next()
//		if !ok {
//			break
//		}
//		...
//	}
//
// A cursor is a point-in-time view: it must not be used across mutations
// of the graph. Concurrent cursors over an unmutated graph are safe — the
// sharded sweep and the BSP workers iterate this way.
type Cursor struct {
	base []VertexID
	adds []VertexID
	bi   int
	ai   int
}

// NeighborCursor returns a cursor over v's out-neighbours (all neighbours
// for undirected graphs). Dead vertices yield an empty cursor.
func (g *Graph) NeighborCursor(v VertexID) Cursor {
	var c Cursor
	c.Reset(g, v)
	return c
}

// InNeighborCursor returns a cursor over v's in-neighbours (identical to
// NeighborCursor for undirected graphs).
func (g *Graph) InNeighborCursor(v VertexID) Cursor {
	var c Cursor
	c.ResetIn(g, v)
	return c
}

// Reset repoints the cursor at v's out-adjacency (all neighbours for
// undirected graphs). Re-using one cursor variable across a sweep avoids
// copying the cursor struct per vertex — the form the per-iteration
// migration sweep uses.
func (c *Cursor) Reset(g *Graph, v VertexID) { c.reset(&g.out, v) }

// ResetIn repoints the cursor at v's in-adjacency (identical to Reset for
// undirected graphs).
func (c *Cursor) ResetIn(g *Graph, v VertexID) {
	if g.directed {
		c.reset(&g.in, v)
	} else {
		c.reset(&g.out, v)
	}
}

func (c *Cursor) reset(s *store, v VertexID) {
	c.bi, c.ai = 0, 0
	if v < 0 || int(v) >= len(s.spans) {
		c.base, c.adds = nil, nil
		return
	}
	sp := s.spans[v]
	c.base = s.arena[sp.off : sp.off+uint32(sp.n)]
	c.adds = nil
	if s.ovIdx != nil {
		if i := s.ovIdx[v]; i >= 0 {
			c.adds = s.ovTab[i].adds
		}
	}
}

func (s *store) cursor(v VertexID) Cursor {
	var c Cursor
	c.reset(s, v)
	return c
}

// Next returns the next live neighbour. The second result is false when
// the adjacency is exhausted.
func (c *Cursor) Next() (VertexID, bool) {
	if c.bi < len(c.base) {
		w := c.base[c.bi]
		c.bi++
		return w, true
	}
	if c.ai < len(c.adds) {
		w := c.adds[c.ai]
		c.ai++
		return w, true
	}
	return NoVertex, false
}

// NextChunk returns the next contiguous run of live neighbours, or nil
// when the adjacency is exhausted: the base arena span first, then the
// overlay adds. Callers iterate each chunk at raw slice-range speed — at
// most two calls plus a terminating one per vertex:
//
//	for c := g.NeighborCursor(v); ; {
//		chunk := c.NextChunk()
//		if chunk == nil {
//			break
//		}
//		for _, w := range chunk {
//			...
//		}
//	}
//
// Chunks are views into graph-owned memory: never mutate them. NextChunk
// and Next draw from the same position and may be interleaved.
func (c *Cursor) NextChunk() []VertexID {
	if c.bi < len(c.base) {
		chunk := c.base[c.bi:]
		c.bi = len(c.base)
		return chunk
	}
	if c.ai < len(c.adds) {
		chunk := c.adds[c.ai:]
		c.ai = len(c.adds)
		return chunk
	}
	return nil
}

// CleanNeighbors returns v's adjacency as a single zero-copy arena span
// when the vertex has no pending overlay — the common case on a compacted
// graph — with ok=true. ok=false means v is dirty and the caller must
// fall back to a cursor. Unlike Neighbors it never allocates, and it is
// small enough to inline, so sweep loops test it first and pay one array
// load per clean vertex.
func (g *Graph) CleanNeighbors(v VertexID) (nbrs []VertexID, ok bool) {
	s := &g.out
	if v < 0 || int(v) >= len(s.spans) {
		return nil, true
	}
	if s.ovIdx != nil && s.ovIdx[v] >= 0 {
		return nil, false
	}
	sp := s.spans[v]
	return s.arena[sp.off : sp.off+uint32(sp.n)], true
}

// CleanInNeighbors is CleanNeighbors for the in-adjacency (identical to
// CleanNeighbors on undirected graphs).
func (g *Graph) CleanInNeighbors(v VertexID) (nbrs []VertexID, ok bool) {
	s := &g.out
	if g.directed {
		s = &g.in
	}
	if v < 0 || int(v) >= len(s.spans) {
		return nil, true
	}
	if s.ovIdx != nil && s.ovIdx[v] >= 0 {
		return nil, false
	}
	sp := s.spans[v]
	return s.arena[sp.off : sp.off+uint32(sp.n)], true
}

// ForEachNeighbor calls fn for every out-neighbour of v (every neighbour
// when undirected), allocation-free.
func (g *Graph) ForEachNeighbor(v VertexID, fn func(VertexID)) {
	for c := g.NeighborCursor(v); ; {
		chunk := c.NextChunk()
		if chunk == nil {
			return
		}
		for _, w := range chunk {
			fn(w)
		}
	}
}

// ForEachInNeighbor calls fn for every in-neighbour of v (identical to
// ForEachNeighbor for undirected graphs), allocation-free.
func (g *Graph) ForEachInNeighbor(v VertexID, fn func(VertexID)) {
	for c := g.InNeighborCursor(v); ; {
		chunk := c.NextChunk()
		if chunk == nil {
			return
		}
		for _, w := range chunk {
			fn(w)
		}
	}
}
