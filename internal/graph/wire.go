package graph

import (
	"fmt"
	"io"
)

// This file implements the binary mutation wire protocol: the
// length-prefixed framing the daemon's binary ingest plane speaks over
// persistent connections. It reuses the codec conventions of codec.go —
// little-endian fixed-width integers, every length bounded before
// allocation, arbitrary input yields a clean error, never a panic — but
// is a *separate* format with its own version byte: the graph snapshot
// codec serializes storage identity, the wire protocol serializes
// mutation streams, and the two must be able to evolve independently.
//
// Frame layout (all integers little-endian):
//
//	u8  version            — WireVersion (1); anything else is an error
//	u8  type               — FrameBatch / FrameAck / FrameNak
//	u32 payloadLen         — exact payload byte count, bounded
//	payloadLen × u8        — payload, by type:
//
//	FrameBatch (client → server):
//	  u32 count            — mutations in the batch, ≤ MaxWireBatch
//	  count × (u8 kind, i32 u, i32 v)
//	                       — kind is the MutationKind enum; vertex ops
//	                         carry v = 0 on the wire
//	FrameAck (server → client):
//	  u32 accepted, u32 queued
//	                       — this frame's count; total now pending
//	FrameNak (server → client):
//	  u8 code, u32 retryAfterMillis
//	                       — NakBackpressure: queue full, retry the SAME
//	                         batch after the hint (nothing was enqueued);
//	                         NakMalformed: protocol error, the server
//	                         closes the connection after sending it;
//	                         NakShutdown: server draining, nothing was
//	                         enqueued and the connection is about to close
//
// The payload length must match the type's content exactly (4 + 9·count
// for a batch); trailing or missing bytes are errors, so a desynced
// stream fails fast instead of silently re-framing.

// WireVersion is the protocol version byte every frame starts with. A
// reader refuses other versions instead of guessing at the layout.
const WireVersion = 1

// FrameType discriminates the payloads of the mutation wire protocol.
type FrameType byte

// Frame types. Batch flows client→server; Ack and Nak are the server's
// per-frame replies.
const (
	FrameBatch FrameType = 1
	FrameAck   FrameType = 2
	FrameNak   FrameType = 3
)

// String returns the mnemonic used in error messages.
func (t FrameType) String() string {
	switch t {
	case FrameBatch:
		return "batch"
	case FrameAck:
		return "ack"
	case FrameNak:
		return "nak"
	default:
		return fmt.Sprintf("frame(%d)", byte(t))
	}
}

// NakCode classifies a negative acknowledgement.
type NakCode byte

// Nak codes. Backpressure is retryable (the batch was not enqueued);
// Malformed means the connection is being closed on a protocol error;
// Shutdown means the server is draining — the batch was not enqueued and
// the producer should fail over or resend after the daemon restarts,
// not retry this connection.
const (
	NakBackpressure NakCode = 1
	NakMalformed    NakCode = 2
	NakShutdown     NakCode = 3
)

// MaxWireBatch bounds the mutations one batch frame may carry (≈18 MiB
// of payload), mirroring the JSON plane's 64 MiB body limit at the
// denser binary encoding. Larger streams chunk into multiple frames.
const MaxWireBatch = 2 << 20

// wireMutationSize is the fixed on-wire size of one mutation.
const wireMutationSize = 9

// maxWirePayload is the largest payload any frame type can legitimately
// declare (a maximal batch); a header claiming more is rejected before
// any allocation.
const maxWirePayload = 4 + MaxWireBatch*wireMutationSize

// Ack is the payload of a FrameAck: the server accepted this frame's
// Accepted mutations and Queued are now pending across all shards.
type Ack struct {
	Accepted uint32
	Queued   uint32
}

// Nak is the payload of a FrameNak. RetryAfterMillis is the server's
// backoff hint (meaningful for NakBackpressure; 0 otherwise).
type Nak struct {
	Code             NakCode
	RetryAfterMillis uint32
}

// Frame is one decoded wire frame. Exactly the field matching Type is
// meaningful.
type Frame struct {
	Type  FrameType
	Batch Batch
	Ack   Ack
	Nak   Nak
}

// AppendBatchFrame appends the complete wire encoding of b to dst and
// returns the extended slice — the allocation-free path loadgen and the
// binary ingest plane's replies use. Batches over MaxWireBatch or
// containing out-of-range IDs or kinds must be chunked/validated by the
// caller; this encoder checks and returns an error rather than emitting
// a frame no reader would accept.
func AppendBatchFrame(dst []byte, b Batch) ([]byte, error) {
	if len(b) > MaxWireBatch {
		return dst, fmt.Errorf("graph wire: batch of %d mutations exceeds the frame maximum %d", len(b), MaxWireBatch)
	}
	for i, mu := range b {
		if mu.Kind < MutAddVertex || mu.Kind > MutRemoveEdge {
			return dst, fmt.Errorf("graph wire: mutation %d has invalid kind %d", i, mu.Kind)
		}
		if err := checkWireVertex(mu.U); err != nil {
			return dst, fmt.Errorf("graph wire: mutation %d u: %w", i, err)
		}
		if mu.Kind == MutAddEdge || mu.Kind == MutRemoveEdge {
			if err := checkWireVertex(mu.V); err != nil {
				return dst, fmt.Errorf("graph wire: mutation %d v: %w", i, err)
			}
		}
	}
	payload := 4 + len(b)*wireMutationSize
	dst = append(dst, WireVersion, byte(FrameBatch))
	dst = appendU32(dst, uint32(payload))
	dst = appendU32(dst, uint32(len(b)))
	for _, mu := range b {
		dst = append(dst, byte(mu.Kind))
		dst = appendU32(dst, uint32(mu.U))
		v := VertexID(0)
		if mu.Kind == MutAddEdge || mu.Kind == MutRemoveEdge {
			v = mu.V
		}
		dst = appendU32(dst, uint32(v))
	}
	return dst, nil
}

// WriteBatchFrame encodes b as one batch frame onto w.
func WriteBatchFrame(w io.Writer, b Batch) error {
	buf, err := AppendBatchFrame(nil, b)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// AppendAckFrame appends an ack frame to dst.
func AppendAckFrame(dst []byte, a Ack) []byte {
	dst = append(dst, WireVersion, byte(FrameAck))
	dst = appendU32(dst, 8)
	dst = appendU32(dst, a.Accepted)
	return appendU32(dst, a.Queued)
}

// AppendNakFrame appends a nak frame to dst.
func AppendNakFrame(dst []byte, n Nak) []byte {
	dst = append(dst, WireVersion, byte(FrameNak))
	dst = appendU32(dst, 5)
	dst = append(dst, byte(n.Code))
	return appendU32(dst, n.RetryAfterMillis)
}

// ReadFrame reads exactly one frame from r. Truncated input, unknown
// versions/types/kinds, out-of-range vertex IDs, oversized or
// inconsistent lengths all yield errors; the payload is read
// incrementally so a lying header hits EOF long before its claimed
// allocation. io.EOF is returned bare only when the stream ends cleanly
// between frames (a half-read frame is io.ErrUnexpectedEOF).
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [6]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return Frame{}, err // clean EOF between frames stays io.EOF
	}
	if hdr[0] != WireVersion {
		return Frame{}, fmt.Errorf("graph wire: unsupported version %d (want %d)", hdr[0], WireVersion)
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return Frame{}, fmt.Errorf("graph wire: header: %w", noEOF(err))
	}
	typ := FrameType(hdr[1])
	payload := int(leU32(hdr[2:6]))
	if payload > maxWirePayload {
		return Frame{}, fmt.Errorf("graph wire: payload of %d bytes exceeds the maximum %d", payload, maxWirePayload)
	}
	switch typ {
	case FrameBatch:
		return readBatchPayload(r, payload)
	case FrameAck:
		if payload != 8 {
			return Frame{}, fmt.Errorf("graph wire: ack payload is %d bytes, want 8", payload)
		}
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return Frame{}, fmt.Errorf("graph wire: ack: %w", noEOF(err))
		}
		return Frame{Type: FrameAck, Ack: Ack{Accepted: leU32(buf[0:4]), Queued: leU32(buf[4:8])}}, nil
	case FrameNak:
		if payload != 5 {
			return Frame{}, fmt.Errorf("graph wire: nak payload is %d bytes, want 5", payload)
		}
		var buf [5]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return Frame{}, fmt.Errorf("graph wire: nak: %w", noEOF(err))
		}
		code := NakCode(buf[0])
		if code != NakBackpressure && code != NakMalformed && code != NakShutdown {
			return Frame{}, fmt.Errorf("graph wire: unknown nak code %d", buf[0])
		}
		return Frame{Type: FrameNak, Nak: Nak{Code: code, RetryAfterMillis: leU32(buf[1:5])}}, nil
	default:
		return Frame{}, fmt.Errorf("graph wire: unknown frame type %d", hdr[1])
	}
}

func readBatchPayload(r io.Reader, payload int) (Frame, error) {
	if payload < 4 {
		return Frame{}, fmt.Errorf("graph wire: batch payload of %d bytes lacks a count", payload)
	}
	var cntBuf [4]byte
	if _, err := io.ReadFull(r, cntBuf[:]); err != nil {
		return Frame{}, fmt.Errorf("graph wire: batch count: %w", noEOF(err))
	}
	count := int(leU32(cntBuf[:]))
	if count > MaxWireBatch {
		return Frame{}, fmt.Errorf("graph wire: batch of %d mutations exceeds the frame maximum %d", count, MaxWireBatch)
	}
	if payload != 4+count*wireMutationSize {
		return Frame{}, fmt.Errorf("graph wire: batch payload %d bytes does not match count %d (want %d)",
			payload, count, 4+count*wireMutationSize)
	}
	// Read mutation-by-mutation: a frame lying about count fails at EOF
	// without ever allocating for the claim.
	b := make(Batch, 0, min64(uint64(count), 1<<16))
	var mbuf [wireMutationSize]byte
	for i := 0; i < count; i++ {
		if _, err := io.ReadFull(r, mbuf[:]); err != nil {
			return Frame{}, fmt.Errorf("graph wire: mutation %d: %w", i, noEOF(err))
		}
		kind := MutationKind(mbuf[0])
		if kind < MutAddVertex || kind > MutRemoveEdge {
			return Frame{}, fmt.Errorf("graph wire: mutation %d has invalid kind %d", i, mbuf[0])
		}
		u := int32(leU32(mbuf[1:5]))
		v := int32(leU32(mbuf[5:9]))
		if err := checkWireVertex(VertexID(u)); err != nil {
			return Frame{}, fmt.Errorf("graph wire: mutation %d u: %w", i, err)
		}
		mu := Mutation{Kind: kind, U: VertexID(u)}
		switch kind {
		case MutAddEdge, MutRemoveEdge:
			if err := checkWireVertex(VertexID(v)); err != nil {
				return Frame{}, fmt.Errorf("graph wire: mutation %d v: %w", i, err)
			}
			mu.V = VertexID(v)
		default:
			if v != 0 {
				return Frame{}, fmt.Errorf("graph wire: mutation %d is a vertex op with non-zero v %d", i, v)
			}
		}
		b = append(b, mu)
	}
	return Frame{Type: FrameBatch, Batch: b}, nil
}

// checkWireVertex enforces the same ID bounds as every other ingest
// surface (the dense vertex table must never be sized by a hostile ID).
func checkWireVertex(v VertexID) error {
	if v < 0 {
		return fmt.Errorf("vertex id %d is negative", int64(v))
	}
	if v > MaxReadVertexID {
		return fmt.Errorf("vertex id %d exceeds the supported maximum %d", int64(v), int64(MaxReadVertexID))
	}
	return nil
}

// noEOF maps io.EOF to io.ErrUnexpectedEOF: once a frame has begun, a
// short read is corruption, not a clean end of stream.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
