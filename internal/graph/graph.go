// Package graph implements the in-memory dynamic graph store that every
// other subsystem builds on. Graphs are simple (no self-loops, no parallel
// edges), may be directed or undirected, and support streaming addition and
// removal of vertices and edges — the dynamism at the heart of the paper.
//
// Vertices are identified by dense integer IDs. Removing a vertex frees its
// ID for recycling, so long-running dynamic workloads (such as the paper's
// month of call-detail records with weekly addition/deletion churn) do not
// grow the vertex table without bound.
//
// # Storage layout
//
// Adjacency lives in a CSR-style arena with a mutable delta overlay rather
// than a slice of per-vertex slices: one flat []VertexID arena holds every
// vertex's base neighbour span (sorted ascending), an 8-byte span per slot
// points into it, edge additions land in a small per-vertex overlay of
// appends, and removals splice the base span in place (retiring the freed
// slot as arena garbage), so a vertex's adjacency is always at most two
// contiguous runs.
// Compact folds the overlay back into a fresh arena; it runs automatically
// once the overlay plus arena garbage outgrow a fixed fraction of the live
// edge ends, which keeps mutation cost amortised O(1) and bounds overlay
// scans. The layout cuts bytes-per-edge roughly in half against the naive
// [][]VertexID representation (no per-vertex slice headers, no allocator
// slack, no pointer chasing) and keeps the per-iteration neighbourhood
// sweep of the migration heuristic sequential in memory. Compaction points
// are a pure function of the mutation history, so two runs fed the same
// stream — or a run restored from a checkpoint mid-overlay — stay
// byte-identical. See docs/ARCHITECTURE.md, "Memory layout".
package graph

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex. IDs are dense and recycled after removal,
// so they can index plain slices (assignment tables, per-vertex state).
type VertexID int32

// NoVertex is the sentinel returned when no vertex applies.
const NoVertex VertexID = -1

// Compaction policy: the overlay (adds + arena garbage) may grow to
// liveEnds/compactSlackDen entries before the next mutation folds it
// into a fresh arena. The fraction bounds the memory overhead, the
// linear overlay scans of HasEdge, and — most importantly — the share of
// vertices iterating through the slower dirty-cursor path between
// compactions; 1/16 keeps rebuild cost amortised at ~16 entry copies per
// mutation, which churn benchmarks show is far below the sweep savings.
// MaybeCompact — the explicit quiet-point trigger (the daemon between
// ticks) — folds four times more eagerly: mutation-time auto-compaction
// keeps the load at or below the 1/16 bar at every quiescent point, so a
// quiet-point trigger at the same bar would never fire. The floor keeps
// small graphs from compacting on every few mutations.
const (
	compactSlackDen      = 16
	eagerCompactSlackDen = 64
	minCompactSlack      = 1024
)

// span locates one vertex's base adjacency inside the arena: entries
// arena[off : off+n], sorted ascending. n counts base entries including
// those tombstoned by the overlay.
type span struct {
	off uint32
	n   int32
}

// overlay is the mutable delta of one vertex since the last compaction.
// It holds additions only: removals splice the base span in place (the
// span stays sorted and contiguous, the freed tail slot becomes arena
// garbage), so iteration over a dirty vertex is exactly two contiguous
// runs — base then adds — with no merge logic on the read path.
type overlay struct {
	// v is the owning vertex (backref for ovTab swap-deletes).
	v VertexID
	// adds holds neighbours gained since the last compaction, in insertion
	// order, deduplicated and disjoint from the base span.
	adds []VertexID
}

// store is one adjacency direction (out, or in for digraphs) in CSR-arena
// form with the mutation overlay on top. Overlays are reached through a
// per-slot index (an O(1) array load on the sweep's hot path, where a map
// probe would dominate) into a dense table; the index is allocated lazily
// on the first post-compaction mutation and released by Compact, so a
// converged, compacted graph carries zero overlay memory.
type store struct {
	arena   []VertexID // flat base adjacency; spans are sorted ascending
	spans   []span     // per-slot base span, len == slots
	ovIdx   []int32    // per-slot index into ovTab, -1 when clean; nil when no overlay exists
	ovTab   []overlay  // dense overlay table (order irrelevant; swap-deleted)
	ovEnts  int        // Σ len(adds) across ovTab
	garbage int        // arena entries retired by vertex removal
}

// Graph is a simple dynamic graph. The zero value is not usable; construct
// with NewUndirected or NewDirected.
//
// Graph is not safe for concurrent mutation. Concurrent readers (cursors,
// Neighbors, Degree, HasEdge) are safe as long as no mutation runs — the
// BSP engine and the sharded core sweep rely on exactly that.
type Graph struct {
	directed    bool
	out         store // out-adjacency (the only adjacency when undirected)
	in          store // in-adjacency; unused for undirected graphs
	alive       []bool
	free        []VertexID // recycled IDs, LIFO
	n           int        // live vertices
	m           int        // live edges (each undirected edge counted once)
	compactions uint64     // arena rebuilds since construction (stats only)
}

// NewUndirected creates an empty undirected graph with capacity hints for
// the expected number of vertices.
func NewUndirected(vertexHint int) *Graph {
	g := &Graph{alive: make([]bool, 0, vertexHint)}
	g.out.spans = make([]span, 0, vertexHint)
	return g
}

// NewDirected creates an empty directed graph with capacity hints for the
// expected number of vertices.
func NewDirected(vertexHint int) *Graph {
	g := NewUndirected(vertexHint)
	g.directed = true
	g.in.spans = make([]span, 0, vertexHint)
	return g
}

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// NumVertices returns the number of live vertices.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of live edges; an undirected edge counts once.
func (g *Graph) NumEdges() int { return g.m }

// NumSlots returns the size of the underlying vertex table: every live
// VertexID is < NumSlots(). Callers use it to size ID-indexed arrays.
func (g *Graph) NumSlots() int { return len(g.out.spans) }

// Has reports whether id is a live vertex.
func (g *Graph) Has(id VertexID) bool {
	return id >= 0 && int(id) < len(g.alive) && g.alive[id]
}

// growSlot appends one slot to every per-slot table.
func (g *Graph) growSlot() {
	g.out.growSlot()
	if g.directed {
		g.in.growSlot()
	}
	g.alive = append(g.alive, false)
}

func (s *store) growSlot() {
	s.spans = append(s.spans, span{})
	if s.ovIdx != nil {
		s.ovIdx = append(s.ovIdx, -1)
	}
}

// AddVertex allocates a new vertex, recycling a freed ID if one is
// available, and returns its ID.
func (g *Graph) AddVertex() VertexID {
	var id VertexID
	if len(g.free) > 0 {
		id = g.free[len(g.free)-1]
		g.free = g.free[:len(g.free)-1]
		g.alive[id] = true
	} else {
		id = VertexID(len(g.out.spans))
		g.growSlot()
		g.alive[id] = true
	}
	g.n++
	return id
}

// EnsureVertex makes id a live vertex, growing the table as needed. It is
// used by loaders and generators that pick their own IDs. Adding an ID that
// is already live is a no-op.
func (g *Graph) EnsureVertex(id VertexID) {
	if id < 0 {
		return
	}
	for int(id) >= len(g.out.spans) {
		g.growSlot()
		g.free = append(g.free, VertexID(len(g.out.spans)-1))
	}
	if !g.alive[id] {
		// Remove id from the free list (it is there by construction).
		for i, f := range g.free {
			if f == id {
				g.free[i] = g.free[len(g.free)-1]
				g.free = g.free[:len(g.free)-1]
				break
			}
		}
		g.alive[id] = true
		g.n++
	}
}

// RemoveVertex deletes a vertex and all its incident edges. Removing a
// vertex that is not live is a no-op.
func (g *Graph) RemoveVertex(id VertexID) {
	if !g.Has(id) {
		return
	}
	// Detach the reverse half of every incident edge first. Mutating the
	// neighbours' overlays is safe while cursoring id's own adjacency.
	deg := 0
	for c := g.out.cursor(id); ; {
		w, ok := c.Next()
		if !ok {
			break
		}
		deg++
		if g.directed {
			g.in.del(w, id)
		} else {
			g.out.del(w, id)
		}
	}
	g.m -= deg
	if g.directed {
		indeg := 0
		for c := g.in.cursor(id); ; {
			w, ok := c.Next()
			if !ok {
				break
			}
			indeg++
			g.out.del(w, id)
		}
		g.m -= indeg
		g.in.clearVertex(id)
	}
	g.out.clearVertex(id)
	g.alive[id] = false
	g.free = append(g.free, id)
	g.n--
	g.maybeCompact()
}

// HasEdge reports whether the edge (u,v) exists. For undirected graphs the
// order of endpoints is irrelevant. Membership tests run a binary search
// over the sorted base span plus a bounded linear scan of the overlay, so
// hub vertices cost O(log d) rather than O(d).
func (g *Graph) HasEdge(u, v VertexID) bool {
	if !g.Has(u) || !g.Has(v) {
		return false
	}
	// Probe the smaller endpoint for undirected graphs: its overlay scan
	// is shorter (the base half is logarithmic either way).
	if !g.directed && g.out.degree(v) < g.out.degree(u) {
		return g.out.has(v, u)
	}
	return g.out.has(u, v)
}

// AddEdge inserts the edge (u,v). Both endpoints must be live; self-loops
// and duplicate edges are rejected. It reports whether the edge was added.
func (g *Graph) AddEdge(u, v VertexID) bool {
	if u == v || !g.Has(u) || !g.Has(v) || g.HasEdge(u, v) {
		return false
	}
	g.out.add(u, v)
	if g.directed {
		g.in.add(v, u)
	} else {
		g.out.add(v, u)
	}
	g.m++
	g.maybeCompact()
	return true
}

// RemoveEdge deletes the edge (u,v) if present and reports whether it did.
func (g *Graph) RemoveEdge(u, v VertexID) bool {
	if !g.HasEdge(u, v) {
		return false
	}
	g.out.del(u, v)
	if g.directed {
		g.in.del(v, u)
	} else {
		g.out.del(v, u)
	}
	g.m--
	g.maybeCompact()
	return true
}

// Neighbors returns the adjacency list of v: out-neighbours for directed
// graphs, all neighbours for undirected ones. For vertices untouched since
// the last compaction this is a zero-copy view into the arena; vertices
// with a pending overlay materialise a fresh slice. Hot paths iterate via
// NeighborCursor instead, which never allocates. The returned slice must
// not be mutated or retained across mutations.
func (g *Graph) Neighbors(v VertexID) []VertexID {
	if !g.Has(v) {
		return nil
	}
	return g.out.neighbors(v)
}

// InNeighbors returns the in-adjacency of v for directed graphs; for
// undirected graphs it is identical to Neighbors. Same ownership and
// allocation contract as Neighbors.
func (g *Graph) InNeighbors(v VertexID) []VertexID {
	if !g.Has(v) {
		return nil
	}
	if g.directed {
		return g.in.neighbors(v)
	}
	return g.out.neighbors(v)
}

// Degree returns the out-degree of v (full degree for undirected graphs).
func (g *Graph) Degree(v VertexID) int {
	if !g.Has(v) {
		return 0
	}
	return g.out.degree(v)
}

// InDegree returns the in-degree of v (same as Degree when undirected).
func (g *Graph) InDegree(v VertexID) int {
	if !g.Has(v) {
		return 0
	}
	if g.directed {
		return g.in.degree(v)
	}
	return g.out.degree(v)
}

// ForEachVertex calls fn for every live vertex in increasing ID order.
func (g *Graph) ForEachVertex(fn func(VertexID)) {
	for id := range g.alive {
		if g.alive[id] {
			fn(VertexID(id))
		}
	}
}

// Vertices returns the live vertex IDs in increasing order.
func (g *Graph) Vertices() []VertexID {
	ids := make([]VertexID, 0, g.n)
	g.ForEachVertex(func(v VertexID) { ids = append(ids, v) })
	return ids
}

// ForEachEdge calls fn once per live edge. For undirected graphs each edge
// is visited once with u < v; for directed graphs fn receives (from, to).
func (g *Graph) ForEachEdge(fn func(u, v VertexID)) {
	for id := range g.alive {
		if !g.alive[id] {
			continue
		}
		u := VertexID(id)
		for c := g.out.cursor(u); ; {
			v, ok := c.Next()
			if !ok {
				break
			}
			if g.directed || u < v {
				fn(u, v)
			}
		}
	}
}

// Clone returns a deep copy of the graph, preserving the arena layout,
// overlay state and free-list order exactly — a clone behaves
// byte-identically to the original under any subsequent mutation sequence.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		directed:    g.directed,
		out:         g.out.clone(),
		alive:       append([]bool(nil), g.alive...),
		free:        append([]VertexID(nil), g.free...),
		n:           g.n,
		m:           g.m,
		compactions: g.compactions,
	}
	if g.directed {
		c.in = g.in.clone()
	}
	return c
}

// Undirected returns an undirected copy of the graph: each directed edge
// becomes an undirected edge, reciprocal pairs collapse to one. Calling it
// on an undirected graph returns a clone. Partitioning always operates on
// the undirected structure, since a cut edge costs communication in both
// directions.
func (g *Graph) Undirected() *Graph {
	if !g.directed {
		return g.Clone()
	}
	u := NewUndirected(len(g.out.spans))
	for u.NumSlots() < len(g.out.spans) {
		u.growSlot()
	}
	for id := range g.alive {
		if g.alive[id] {
			u.alive[id] = true
			u.n++
		} else {
			u.free = append(u.free, VertexID(id))
		}
	}
	g.ForEachEdge(func(a, b VertexID) { u.AddEdge(a, b) })
	return u
}

// MaxDegree returns the maximum degree over live vertices.
func (g *Graph) MaxDegree() int {
	max := 0
	g.ForEachVertex(func(v VertexID) {
		if d := g.Degree(v); d > max {
			max = d
		}
	})
	return max
}

// AvgDegree returns the average (out-)degree over live vertices.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	if g.directed {
		return float64(g.m) / float64(g.n)
	}
	return 2 * float64(g.m) / float64(g.n)
}

// SortAdjacency brings every adjacency list into ascending order by
// folding the overlay into the arena (Compact's canonical layout is fully
// sorted). Generators call it once after construction so that iteration
// order — and therefore every seeded experiment — is deterministic
// regardless of construction order.
func (g *Graph) SortAdjacency() { g.Compact() }

// ---- store operations ----

// base returns v's base span (including tombstoned entries).
func (s *store) base(v VertexID) []VertexID {
	sp := s.spans[v]
	if sp.n == 0 {
		return nil
	}
	return s.arena[sp.off : sp.off+uint32(sp.n)]
}

// overlayOf returns v's overlay, or nil when v is clean. The pointer is
// invalidated by the next overlay mutation (the dense table may move);
// use it immediately.
func (s *store) overlayOf(v VertexID) *overlay {
	if s.ovIdx == nil {
		return nil
	}
	i := s.ovIdx[v]
	if i < 0 {
		return nil
	}
	return &s.ovTab[i]
}

func (s *store) ensureOverlay(v VertexID) *overlay {
	if s.ovIdx == nil {
		s.ovIdx = make([]int32, len(s.spans))
		for i := range s.ovIdx {
			s.ovIdx[i] = -1
		}
	}
	if i := s.ovIdx[v]; i >= 0 {
		return &s.ovTab[i]
	}
	s.ovIdx[v] = int32(len(s.ovTab))
	s.ovTab = append(s.ovTab, overlay{v: v})
	return &s.ovTab[len(s.ovTab)-1]
}

// dropIfEmpty retires v's overlay when both delta lists emptied, so a
// vertex whose mutations cancelled out returns to the zero-cost clean
// path. The table entry is swap-deleted; table order never influences
// behaviour (iteration and encoding always go slot-ascending).
func (s *store) dropIfEmpty(v VertexID, o *overlay) {
	if len(o.adds) != 0 {
		return
	}
	i := s.ovIdx[v]
	last := len(s.ovTab) - 1
	if int(i) != last {
		s.ovTab[i] = s.ovTab[last]
		s.ovIdx[s.ovTab[i].v] = i
	}
	s.ovTab = s.ovTab[:last]
	s.ovIdx[v] = -1
}

// degree returns v's live degree in this direction.
func (s *store) degree(v VertexID) int {
	d := int(s.spans[v].n)
	if o := s.overlayOf(v); o != nil {
		d += len(o.adds)
	}
	return d
}

// has reports whether w is a live neighbour of v: binary search over the
// sorted base span, then a linear scan of the bounded overlay adds.
func (s *store) has(v, w VertexID) bool {
	if base := s.base(v); containsSorted(base, w) {
		return true
	}
	if o := s.overlayOf(v); o != nil {
		for _, x := range o.adds {
			if x == w {
				return true
			}
		}
	}
	return false
}

// add inserts w into v's adjacency. The caller has established that w is
// not currently a neighbour of v.
func (s *store) add(v, w VertexID) {
	o := s.ensureOverlay(v)
	o.adds = append(o.adds, w)
	s.ovEnts++
}

// del removes w from v's adjacency. The caller has established that w is a
// neighbour of v. Overlay adds are removed in order; base entries splice
// out of the span in place (the span stays sorted, its freed tail slot
// becomes garbage) — O(degree) like the slice-of-slices layout's removal,
// but leaving the read path merge-free.
func (s *store) del(v, w VertexID) {
	if o := s.overlayOf(v); o != nil {
		for i, x := range o.adds {
			if x == w {
				o.adds = append(o.adds[:i], o.adds[i+1:]...)
				s.ovEnts--
				s.dropIfEmpty(v, o)
				return
			}
		}
	}
	sp := s.spans[v]
	base := s.arena[sp.off : sp.off+uint32(sp.n)]
	i := sort.Search(len(base), func(i int) bool { return base[i] >= w })
	copy(base[i:], base[i+1:])
	s.spans[v].n--
	s.garbage++
}

// clearVertex empties v's adjacency: the base span becomes arena garbage
// and the overlay is discarded.
func (s *store) clearVertex(v VertexID) {
	if o := s.overlayOf(v); o != nil {
		s.ovEnts -= len(o.adds)
		o.adds = nil
		s.dropIfEmpty(v, o)
	}
	s.garbage += int(s.spans[v].n)
	s.spans[v] = span{}
}

// neighbors materialises v's live adjacency: zero-copy for clean vertices,
// a fresh slice otherwise.
func (s *store) neighbors(v VertexID) []VertexID {
	o := s.overlayOf(v)
	if o == nil {
		return s.base(v)
	}
	d := s.degree(v)
	if d == 0 {
		return nil
	}
	out := make([]VertexID, 0, d)
	for c := s.cursor(v); ; {
		w, ok := c.Next()
		if !ok {
			break
		}
		out = append(out, w)
	}
	return out
}

func (s *store) clone() store {
	c := store{
		arena:   append([]VertexID(nil), s.arena...),
		spans:   append([]span(nil), s.spans...),
		ovIdx:   append([]int32(nil), s.ovIdx...),
		ovTab:   append([]overlay(nil), s.ovTab...),
		ovEnts:  s.ovEnts,
		garbage: s.garbage,
	}
	for i := range c.ovTab {
		c.ovTab[i].adds = append([]VertexID(nil), c.ovTab[i].adds...)
	}
	return c
}

// ---- invariants ----

// CheckInvariants validates internal consistency (degree symmetry, edge
// counts, liveness, arena/overlay bookkeeping) and returns a descriptive
// error on the first violation. Tests — and the binary decoder — call it
// after mutation sequences.
func (g *Graph) CheckInvariants() error {
	slots := len(g.out.spans)
	if len(g.alive) != slots {
		return fmt.Errorf("alive table %d != slots %d", len(g.alive), slots)
	}
	if g.directed && len(g.in.spans) != slots {
		return fmt.Errorf("in-spans %d != slots %d", len(g.in.spans), slots)
	}
	if err := g.out.checkStructure(slots, "out"); err != nil {
		return err
	}
	if g.directed {
		if err := g.in.checkStructure(slots, "in"); err != nil {
			return err
		}
	}
	liveCount := 0
	outEnds, inEnds := 0, 0
	for id := range g.alive {
		v := VertexID(id)
		if !g.alive[id] {
			if g.out.spans[v].n != 0 || g.out.overlayOf(v) != nil {
				return fmt.Errorf("dead vertex %d has out-adjacency state", v)
			}
			if g.directed && (g.in.spans[v].n != 0 || g.in.overlayOf(v) != nil) {
				return fmt.Errorf("dead vertex %d has in-adjacency state", v)
			}
			continue
		}
		liveCount++
		for c := g.out.cursor(v); ; {
			w, ok := c.Next()
			if !ok {
				break
			}
			outEnds++
			if !g.Has(w) {
				return fmt.Errorf("edge (%d,%d) points to dead vertex", v, w)
			}
			if w == v {
				return fmt.Errorf("self-loop at %d", v)
			}
			if g.directed {
				if !g.in.has(w, v) {
					return fmt.Errorf("missing in-edge for (%d,%d)", v, w)
				}
			} else if !g.out.has(w, v) {
				return fmt.Errorf("missing reverse edge for (%d,%d)", v, w)
			}
		}
		if g.directed {
			for c := g.in.cursor(v); ; {
				w, ok := c.Next()
				if !ok {
					break
				}
				inEnds++
				if !g.Has(w) {
					return fmt.Errorf("in-edge (%d,%d) points to dead vertex", w, v)
				}
				if !g.out.has(w, v) {
					return fmt.Errorf("in-edge (%d,%d) missing its out half", w, v)
				}
			}
		}
	}
	if liveCount != g.n {
		return fmt.Errorf("live count %d != n %d", liveCount, g.n)
	}
	wantEnds := 2 * g.m
	if g.directed {
		wantEnds = g.m
		if inEnds != g.m {
			return fmt.Errorf("in-edge ends %d != m %d", inEnds, g.m)
		}
	}
	if outEnds != wantEnds {
		return fmt.Errorf("edge ends %d != expected %d (m=%d)", outEnds, wantEnds, g.m)
	}
	if len(g.free)+liveCount != slots {
		return fmt.Errorf("free list %d + live %d != slots %d", len(g.free), liveCount, slots)
	}
	seen := make(map[VertexID]bool, len(g.free))
	for _, f := range g.free {
		if f < 0 || int(f) >= slots {
			return fmt.Errorf("free list entry %d out of range", f)
		}
		if g.alive[f] {
			return fmt.Errorf("free list contains live vertex %d", f)
		}
		if seen[f] {
			return fmt.Errorf("free list contains %d twice", f)
		}
		seen[f] = true
	}
	return nil
}

// checkStructure validates one store's arena/span/overlay bookkeeping.
func (s *store) checkStructure(slots int, dir string) error {
	if len(s.spans) != slots {
		return fmt.Errorf("%s: spans %d != slots %d", dir, len(s.spans), slots)
	}
	spanEnds := 0
	occupied := make([]span, 0, len(s.spans))
	for i, sp := range s.spans {
		if sp.n < 0 || uint64(sp.off)+uint64(sp.n) > uint64(len(s.arena)) {
			return fmt.Errorf("%s: slot %d span [%d,+%d) exceeds arena %d", dir, i, sp.off, sp.n, len(s.arena))
		}
		spanEnds += int(sp.n)
		base := s.arena[sp.off : sp.off+uint32(sp.n)]
		for j := 1; j < len(base); j++ {
			if base[j] <= base[j-1] {
				return fmt.Errorf("%s: slot %d base span not strictly ascending at %d", dir, i, j)
			}
		}
		if sp.n > 0 {
			occupied = append(occupied, sp)
		}
	}
	if spanEnds+s.garbage != len(s.arena) {
		return fmt.Errorf("%s: span ends %d + garbage %d != arena %d", dir, spanEnds, s.garbage, len(s.arena))
	}
	// Non-empty spans must be pairwise disjoint: the encoder only ever
	// produces disjoint spans, and an aliased pair would let one vertex's
	// in-place splice corrupt another's adjacency. (The arena-accounting
	// identity above cannot catch aliasing on its own — double-counted
	// overlap can be balanced by unreferenced filler.)
	sort.Slice(occupied, func(i, j int) bool { return occupied[i].off < occupied[j].off })
	for i := 1; i < len(occupied); i++ {
		prev := occupied[i-1]
		if uint64(prev.off)+uint64(prev.n) > uint64(occupied[i].off) {
			return fmt.Errorf("%s: base spans [%d,+%d) and [%d,+%d) overlap", dir,
				prev.off, prev.n, occupied[i].off, occupied[i].n)
		}
	}
	if s.ovIdx != nil && len(s.ovIdx) != slots {
		return fmt.Errorf("%s: overlay index %d != slots %d", dir, len(s.ovIdx), slots)
	}
	indexed := 0
	for i := 0; i < slots; i++ {
		o := s.overlayOf(VertexID(i))
		if o == nil {
			continue
		}
		indexed++
		if o.v != VertexID(i) {
			return fmt.Errorf("%s: slot %d overlay backref says %d", dir, i, o.v)
		}
		if len(o.adds) == 0 {
			return fmt.Errorf("%s: slot %d has an empty overlay", dir, i)
		}
		base := s.base(VertexID(i))
		seen := make(map[VertexID]bool, len(o.adds))
		for _, w := range o.adds {
			if seen[w] {
				return fmt.Errorf("%s: slot %d overlay add %d duplicated", dir, i, w)
			}
			seen[w] = true
			if containsSorted(base, w) {
				return fmt.Errorf("%s: slot %d overlay add %d shadows a base entry", dir, i, w)
			}
		}
	}
	if indexed != len(s.ovTab) {
		return fmt.Errorf("%s: %d indexed overlays but table holds %d", dir, indexed, len(s.ovTab))
	}
	ents := 0
	for i := range s.ovTab {
		ents += len(s.ovTab[i].adds)
	}
	if ents != s.ovEnts {
		return fmt.Errorf("%s: overlay entries %d != counter %d", dir, ents, s.ovEnts)
	}
	return nil
}

// ShardRange returns the half-open slot range [lo, hi) owned by shard i of
// n when the table has the given number of slots: contiguous ceil(slots/n)
// blocks, with trailing shards clamped (possibly empty). Both the BSP
// engine's workers and the core heuristic's parallel sweep divide the
// vertex table with it, so the two parallel paths can never disagree on
// slot ownership.
func ShardRange(i, n, slots int) (lo, hi int) {
	per := (slots + n - 1) / n
	lo = i * per
	if lo > slots {
		lo = slots
	}
	hi = lo + per
	if hi > slots {
		hi = slots
	}
	return lo, hi
}

// ---- sorted-slice helpers ----

func containsSorted(list []VertexID, id VertexID) bool {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= id })
	return i < len(list) && list[i] == id
}

func sortIDs(ids []VertexID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
