// Package graph implements the in-memory dynamic graph store that every
// other subsystem builds on. Graphs are simple (no self-loops, no parallel
// edges), may be directed or undirected, and support streaming addition and
// removal of vertices and edges — the dynamism at the heart of the paper.
//
// Vertices are identified by dense integer IDs. Removing a vertex frees its
// ID for recycling, so long-running dynamic workloads (such as the paper's
// month of call-detail records with weekly addition/deletion churn) do not
// grow the vertex table without bound.
package graph

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex. IDs are dense and recycled after removal,
// so they can index plain slices (assignment tables, per-vertex state).
type VertexID int32

// NoVertex is the sentinel returned when no vertex applies.
const NoVertex VertexID = -1

// Graph is a simple dynamic graph. The zero value is not usable; construct
// with NewUndirected or NewDirected.
//
// Graph is not safe for concurrent mutation. The BSP engine gives each
// worker exclusive ownership of its partition's adjacency, matching the
// paper's shared-nothing worker model.
type Graph struct {
	directed bool
	out      [][]VertexID // out-adjacency (the only adjacency when undirected)
	in       [][]VertexID // in-adjacency; nil for undirected graphs
	alive    []bool
	free     []VertexID // recycled IDs, LIFO
	n        int        // live vertices
	m        int        // live edges (each undirected edge counted once)
}

// NewUndirected creates an empty undirected graph with capacity hints for
// the expected number of vertices.
func NewUndirected(vertexHint int) *Graph {
	return &Graph{
		out:   make([][]VertexID, 0, vertexHint),
		alive: make([]bool, 0, vertexHint),
	}
}

// NewDirected creates an empty directed graph with capacity hints for the
// expected number of vertices.
func NewDirected(vertexHint int) *Graph {
	return &Graph{
		directed: true,
		out:      make([][]VertexID, 0, vertexHint),
		in:       make([][]VertexID, 0, vertexHint),
		alive:    make([]bool, 0, vertexHint),
	}
}

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// NumVertices returns the number of live vertices.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of live edges; an undirected edge counts once.
func (g *Graph) NumEdges() int { return g.m }

// NumSlots returns the size of the underlying vertex table: every live
// VertexID is < NumSlots(). Callers use it to size ID-indexed arrays.
func (g *Graph) NumSlots() int { return len(g.out) }

// Has reports whether id is a live vertex.
func (g *Graph) Has(id VertexID) bool {
	return id >= 0 && int(id) < len(g.alive) && g.alive[id]
}

// AddVertex allocates a new vertex, recycling a freed ID if one is
// available, and returns its ID.
func (g *Graph) AddVertex() VertexID {
	var id VertexID
	if len(g.free) > 0 {
		id = g.free[len(g.free)-1]
		g.free = g.free[:len(g.free)-1]
		g.alive[id] = true
	} else {
		id = VertexID(len(g.out))
		g.out = append(g.out, nil)
		if g.directed {
			g.in = append(g.in, nil)
		}
		g.alive = append(g.alive, true)
	}
	g.n++
	return id
}

// EnsureVertex makes id a live vertex, growing the table as needed. It is
// used by loaders and generators that pick their own IDs. Adding an ID that
// is already live is a no-op.
func (g *Graph) EnsureVertex(id VertexID) {
	if id < 0 {
		return
	}
	for int(id) >= len(g.out) {
		g.out = append(g.out, nil)
		if g.directed {
			g.in = append(g.in, nil)
		}
		g.alive = append(g.alive, false)
		g.free = append(g.free, VertexID(len(g.out)-1))
	}
	if !g.alive[id] {
		// Remove id from the free list (it is there by construction).
		for i, f := range g.free {
			if f == id {
				g.free[i] = g.free[len(g.free)-1]
				g.free = g.free[:len(g.free)-1]
				break
			}
		}
		g.alive[id] = true
		g.n++
	}
}

// RemoveVertex deletes a vertex and all its incident edges. Removing a
// vertex that is not live is a no-op.
func (g *Graph) RemoveVertex(id VertexID) {
	if !g.Has(id) {
		return
	}
	// Detach from neighbours first.
	for _, w := range g.out[id] {
		if g.directed {
			g.in[w] = removeOne(g.in[w], id)
		} else {
			g.out[w] = removeOne(g.out[w], id)
		}
		g.m--
	}
	if g.directed {
		for _, w := range g.in[id] {
			g.out[w] = removeOne(g.out[w], id)
			g.m--
		}
		g.in[id] = nil
	}
	g.out[id] = nil
	g.alive[id] = false
	g.free = append(g.free, id)
	g.n--
}

// HasEdge reports whether the edge (u,v) exists. For undirected graphs the
// order of endpoints is irrelevant.
func (g *Graph) HasEdge(u, v VertexID) bool {
	if !g.Has(u) || !g.Has(v) {
		return false
	}
	// Scan the shorter list for undirected graphs.
	if !g.directed && len(g.out[v]) < len(g.out[u]) {
		return contains(g.out[v], u)
	}
	return contains(g.out[u], v)
}

// AddEdge inserts the edge (u,v). Both endpoints must be live; self-loops
// and duplicate edges are rejected. It reports whether the edge was added.
func (g *Graph) AddEdge(u, v VertexID) bool {
	if u == v || !g.Has(u) || !g.Has(v) || g.HasEdge(u, v) {
		return false
	}
	g.out[u] = append(g.out[u], v)
	if g.directed {
		g.in[v] = append(g.in[v], u)
	} else {
		g.out[v] = append(g.out[v], u)
	}
	g.m++
	return true
}

// RemoveEdge deletes the edge (u,v) if present and reports whether it did.
func (g *Graph) RemoveEdge(u, v VertexID) bool {
	if !g.HasEdge(u, v) {
		return false
	}
	g.out[u] = removeOne(g.out[u], v)
	if g.directed {
		g.in[v] = removeOne(g.in[v], u)
	} else {
		g.out[v] = removeOne(g.out[v], u)
	}
	g.m--
	return true
}

// Neighbors returns the adjacency list of v: out-neighbours for directed
// graphs, all neighbours for undirected ones. The returned slice is owned
// by the graph and must not be mutated or retained across mutations.
func (g *Graph) Neighbors(v VertexID) []VertexID {
	if !g.Has(v) {
		return nil
	}
	return g.out[v]
}

// InNeighbors returns the in-adjacency of v for directed graphs; for
// undirected graphs it is identical to Neighbors. The returned slice is
// owned by the graph.
func (g *Graph) InNeighbors(v VertexID) []VertexID {
	if !g.Has(v) {
		return nil
	}
	if g.directed {
		return g.in[v]
	}
	return g.out[v]
}

// Degree returns the out-degree of v (full degree for undirected graphs).
func (g *Graph) Degree(v VertexID) int {
	if !g.Has(v) {
		return 0
	}
	return len(g.out[v])
}

// InDegree returns the in-degree of v (same as Degree when undirected).
func (g *Graph) InDegree(v VertexID) int {
	if !g.Has(v) {
		return 0
	}
	if g.directed {
		return len(g.in[v])
	}
	return len(g.out[v])
}

// ForEachVertex calls fn for every live vertex in increasing ID order.
func (g *Graph) ForEachVertex(fn func(VertexID)) {
	for id := range g.out {
		if g.alive[id] {
			fn(VertexID(id))
		}
	}
}

// Vertices returns the live vertex IDs in increasing order.
func (g *Graph) Vertices() []VertexID {
	ids := make([]VertexID, 0, g.n)
	g.ForEachVertex(func(v VertexID) { ids = append(ids, v) })
	return ids
}

// ForEachEdge calls fn once per live edge. For undirected graphs each edge
// is visited once with u < v; for directed graphs fn receives (from, to).
func (g *Graph) ForEachEdge(fn func(u, v VertexID)) {
	for id := range g.out {
		if !g.alive[id] {
			continue
		}
		u := VertexID(id)
		for _, v := range g.out[id] {
			if g.directed || u < v {
				fn(u, v)
			}
		}
	}
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		directed: g.directed,
		out:      make([][]VertexID, len(g.out)),
		alive:    append([]bool(nil), g.alive...),
		free:     append([]VertexID(nil), g.free...),
		n:        g.n,
		m:        g.m,
	}
	for i, adj := range g.out {
		if adj != nil {
			c.out[i] = append([]VertexID(nil), adj...)
		}
	}
	if g.directed {
		c.in = make([][]VertexID, len(g.in))
		for i, adj := range g.in {
			if adj != nil {
				c.in[i] = append([]VertexID(nil), adj...)
			}
		}
	}
	return c
}

// Undirected returns an undirected copy of the graph: each directed edge
// becomes an undirected edge, reciprocal pairs collapse to one. Calling it
// on an undirected graph returns a clone. Partitioning always operates on
// the undirected structure, since a cut edge costs communication in both
// directions.
func (g *Graph) Undirected() *Graph {
	if !g.directed {
		return g.Clone()
	}
	u := NewUndirected(len(g.out))
	for int(u.NumSlots()) < len(g.out) {
		u.out = append(u.out, nil)
		u.alive = append(u.alive, false)
	}
	for id := range g.out {
		if g.alive[id] {
			u.alive[id] = true
			u.n++
		} else {
			u.free = append(u.free, VertexID(id))
		}
	}
	g.ForEachEdge(func(a, b VertexID) { u.AddEdge(a, b) })
	return u
}

// MaxDegree returns the maximum degree over live vertices.
func (g *Graph) MaxDegree() int {
	max := 0
	g.ForEachVertex(func(v VertexID) {
		if d := g.Degree(v); d > max {
			max = d
		}
	})
	return max
}

// AvgDegree returns the average (out-)degree over live vertices.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	if g.directed {
		return float64(g.m) / float64(g.n)
	}
	return 2 * float64(g.m) / float64(g.n)
}

// SortAdjacency sorts every adjacency list in place. Generators call it
// once after construction so that iteration order — and therefore every
// seeded experiment — is deterministic regardless of construction order.
func (g *Graph) SortAdjacency() {
	for i := range g.out {
		sortIDs(g.out[i])
		if g.directed {
			sortIDs(g.in[i])
		}
	}
}

// CheckInvariants validates internal consistency (degree symmetry, edge
// counts, liveness) and returns a descriptive error on the first violation.
// Tests call it after mutation sequences.
func (g *Graph) CheckInvariants() error {
	liveCount := 0
	edgeEnds := 0
	for id := range g.out {
		v := VertexID(id)
		if !g.alive[id] {
			if len(g.out[id]) != 0 {
				return fmt.Errorf("dead vertex %d has out-edges", v)
			}
			if g.directed && len(g.in[id]) != 0 {
				return fmt.Errorf("dead vertex %d has in-edges", v)
			}
			continue
		}
		liveCount++
		for _, w := range g.out[id] {
			if !g.Has(w) {
				return fmt.Errorf("edge (%d,%d) points to dead vertex", v, w)
			}
			if w == v {
				return fmt.Errorf("self-loop at %d", v)
			}
			if g.directed {
				if !contains(g.in[w], v) {
					return fmt.Errorf("missing in-edge for (%d,%d)", v, w)
				}
			} else {
				if !contains(g.out[w], v) {
					return fmt.Errorf("missing reverse edge for (%d,%d)", v, w)
				}
			}
		}
		edgeEnds += len(g.out[id])
	}
	if liveCount != g.n {
		return fmt.Errorf("live count %d != n %d", liveCount, g.n)
	}
	wantEnds := g.m
	if !g.directed {
		wantEnds = 2 * g.m
	}
	if edgeEnds != wantEnds {
		return fmt.Errorf("edge ends %d != expected %d (m=%d)", edgeEnds, wantEnds, g.m)
	}
	if len(g.free)+liveCount != len(g.out) {
		return fmt.Errorf("free list %d + live %d != slots %d", len(g.free), liveCount, len(g.out))
	}
	return nil
}

// ShardRange returns the half-open slot range [lo, hi) owned by shard i of
// n when the table has the given number of slots: contiguous ceil(slots/n)
// blocks, with trailing shards clamped (possibly empty). Both the BSP
// engine's workers and the core heuristic's parallel sweep divide the
// vertex table with it, so the two parallel paths can never disagree on
// slot ownership.
func ShardRange(i, n, slots int) (lo, hi int) {
	per := (slots + n - 1) / n
	lo = i * per
	if lo > slots {
		lo = slots
	}
	hi = lo + per
	if hi > slots {
		hi = slots
	}
	return lo, hi
}

func contains(list []VertexID, id VertexID) bool {
	for _, x := range list {
		if x == id {
			return true
		}
	}
	return false
}

// removeOne deletes the first occurrence of id from list, preserving the
// remaining order is not required so it swaps with the tail.
func removeOne(list []VertexID, id VertexID) []VertexID {
	for i, x := range list {
		if x == id {
			list[i] = list[len(list)-1]
			return list[:len(list)-1]
		}
	}
	return list
}

func sortIDs(ids []VertexID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
