package graph

import (
	"bytes"
	"strings"
	"testing"
)

// The fuzz targets assert the parser and codec robustness contract:
// arbitrary input — malformed lines, huge or negative IDs, truncated
// files, binary noise — must produce either a structurally sound graph or
// an error, never a panic and never an unbounded allocation. Run
// continuously with
//
//	go test -fuzz=FuzzReadEdgeList ./internal/graph
//	go test -fuzz=FuzzReadMetis ./internal/graph
//	go test -fuzz=FuzzDecodeGraph ./internal/graph
//
// and in CI the seed corpus below executes as ordinary tests.

func FuzzReadEdgeList(f *testing.F) {
	seeds := []string{
		"",
		"# vertices 3 edges 2 directed false\n0 1\n1 2\n",
		"0 1\n1 2\n2 0\n",
		"7\n",                      // isolated vertex
		"0 1 9.5\n",                // trailing weight field (SNAP variants)
		"a b\n",                    // non-numeric
		"1 x\n",                    // second field non-numeric
		"-1 2\n",                   // negative ID
		"0 -7\n",                   // negative second ID
		"99999999999999999999 1\n", // overflows int64
		"4294967296 1\n",           // overflows int32
		"16777217 0\n",             // just above MaxReadVertexID
		"0 1",                      // no trailing newline
		"0\x001\n",                 // NUL byte
		"0 1\n0 1\n1 0\n",          // duplicates and reciprocal
		"5 5\n",                    // self-loop
	}
	for _, s := range seeds {
		f.Add(s, false)
		f.Add(s, true)
	}
	f.Fuzz(func(t *testing.T, input string, directed bool) {
		g, err := ReadEdgeList(strings.NewReader(input), directed)
		if err != nil {
			return
		}
		if g == nil {
			t.Fatal("nil graph with nil error")
		}
		if err := g.CheckInvariants(); err != nil {
			t.Fatalf("accepted input produced inconsistent graph: %v\ninput: %q", err, input)
		}
	})
}

func FuzzReadMetis(f *testing.F) {
	seeds := []string{
		"",
		"3 3\n2 3\n1 3\n1 2\n",
		"% comment\n2 1\n2\n1\n",
		"4 2\n2\n1\n4\n3\n",
		"2 1\n2\n",                 // truncated: vertex 2's line missing
		"3 9\n2\n1\n\n",            // edge count mismatch
		"2 1 011\n2\n1\n",          // weighted flag
		"-1 0\n",                   // negative n
		"99999999999999999999 0\n", // n overflows
		"16777217 0\n",             // n above MaxReadVertexID
		"2 1\n3\n1\n",              // neighbour out of range
		"2 1\n0\n1\n",              // neighbour below 1
		"2 1\nx\n1\n",              // non-numeric neighbour
		"1 0\n1\n",                 // self-loop (vertex 1 lists itself)
		"junk\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadMetis(strings.NewReader(input))
		if err != nil {
			return
		}
		if g == nil {
			t.Fatal("nil graph with nil error")
		}
		if err := g.CheckInvariants(); err != nil {
			t.Fatalf("accepted input produced inconsistent graph: %v\ninput: %q", err, input)
		}
	})
}

// FuzzDecodeGraph feeds arbitrary bytes through the binary arena codec:
// any input must either decode to a graph that passes CheckInvariants and
// re-encodes byte-identically (the determinism contract checkpoints rely
// on), or fail with a clean error — never panic, never allocate
// unboundedly. The corpus seeds the interesting regions of the format:
// a compacted snapshot (overlay-free), an overlay-heavy snapshot taken
// mid-churn, a directed graph, and an empty graph.
func FuzzDecodeGraph(f *testing.F) {
	seed := func(g *Graph) []byte {
		var buf bytes.Buffer
		if err := g.EncodeBinary(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	// Compacted: everything in the arena.
	compacted := buildChurnedGraph(false)
	compacted.Compact()
	f.Add(seed(compacted))
	// Overlay-heavy: compact, then churn without recompacting.
	dirty := buildChurnedGraph(false)
	dirty.Compact()
	dirty.RemoveEdge(2, 3)
	dirty.RemoveVertex(9)
	v := dirty.AddVertex()
	dirty.AddEdge(v, 0)
	dirty.AddEdge(v, 5)
	f.Add(seed(dirty))
	f.Add(seed(buildChurnedGraph(true)))
	f.Add(seed(NewUndirected(0)))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := DecodeGraph(bytes.NewReader(data))
		if err != nil {
			return
		}
		if g == nil {
			t.Fatal("nil graph with nil error")
		}
		if err := g.CheckInvariants(); err != nil {
			t.Fatalf("accepted payload produced inconsistent graph: %v", err)
		}
		var out bytes.Buffer
		if err := g.EncodeBinary(&out); err != nil {
			t.Fatalf("decoded graph failed to re-encode: %v", err)
		}
		// Re-decode the re-encode: the codec must be a fixed point after
		// one round trip.
		g2, err := DecodeGraph(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded payload failed to decode: %v", err)
		}
		var out2 bytes.Buffer
		if err := g2.EncodeBinary(&out2); err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatalf("codec is not a fixed point: %d vs %d bytes", out.Len(), out2.Len())
		}
	})
}

// TestReadEdgeListRejectsHostileIDs pins the explicit error contract the
// fuzz targets rely on: negative and oversized IDs must fail fast instead
// of sizing the dense vertex table to the ID.
func TestReadEdgeListRejectsHostileIDs(t *testing.T) {
	cases := []string{
		"-1 2\n",
		"0 -2\n",
		"16777217 0\n", // MaxReadVertexID + 1
		"0 16777217\n",
		"9223372036854775808 0\n", // overflows int64
		"4294967296 1\n",          // overflows int32 but not int64
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in), false); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
	// Large-but-legal IDs parse fine (the full 1<<24 boundary is legal too
	// but materialises a table of several hundred megabytes, so the test
	// stops at a million slots).
	if _, err := ReadEdgeList(strings.NewReader("1000000\n"), false); err != nil {
		t.Errorf("large legal ID must be accepted: %v", err)
	}
}

func TestReadMetisRejectsHostileHeaders(t *testing.T) {
	cases := []string{
		"16777217 0\n",             // n above MaxReadVertexID
		"99999999999999999999 0\n", // n overflows
		"-3 1\n",
	}
	for _, in := range cases {
		if _, err := ReadMetis(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}
