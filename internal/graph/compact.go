package graph

// This file implements arena compaction: folding the mutation overlay
// (per-vertex appends and tombstones) and the arena garbage left by
// removed vertices back into a fresh, fully sorted CSR arena.
//
// Compaction runs automatically from the mutating operations once the
// overlay mass crosses compactThreshold — a fixed fraction of the live
// edge ends — which makes its cost amortised O(1) per mutation and, more
// importantly, makes compaction points a pure function of the mutation
// history: a run restored from a checkpoint taken mid-overlay compacts at
// exactly the same future points as the uninterrupted run, preserving the
// determinism contract of internal/snapshot. The daemon additionally
// calls MaybeCompact between coalescing ticks so a long-idle process
// folds its last burst eagerly; that call is behaviourally neutral (the
// heuristic's neighbourhood counts are order-independent sums).

// compactThreshold returns the overlay mass (adds + arena garbage, in
// entries) beyond which the next mutation compacts.
func (g *Graph) compactThreshold() int {
	t := 2 * g.m / compactSlackDen
	if t < minCompactSlack {
		t = minCompactSlack
	}
	return t
}

// eagerCompactThreshold is MaybeCompact's lower bar. It must be below
// compactThreshold to be reachable at all: automatic compaction keeps
// the overlay at or below compactThreshold at every quiescent point.
func (g *Graph) eagerCompactThreshold() int {
	t := 2 * g.m / eagerCompactSlackDen
	if t < minCompactSlack {
		t = minCompactSlack
	}
	return t
}

// overlayLoad returns the current overlay mass in entries.
func (g *Graph) overlayLoad() int {
	return g.out.ovEnts + g.out.garbage + g.in.ovEnts + g.in.garbage
}

// OverlayMass returns the number of adjacency entries currently held
// outside the base arena (overlay adds and tombstones) plus retired arena
// entries awaiting compaction. Zero after Compact.
func (g *Graph) OverlayMass() int { return g.overlayLoad() }

// Compactions returns how many arena rebuilds the graph has performed
// (automatic and explicit). Informational; not part of serialized state.
func (g *Graph) Compactions() uint64 { return g.compactions }

// maybeCompact is the automatic trigger invoked by mutating operations.
func (g *Graph) maybeCompact() {
	if g.overlayLoad() > g.compactThreshold() {
		g.Compact()
	}
}

// MaybeCompact folds the overlay into the arena if its mass exceeds the
// eager (quiet-point) threshold — a quarter of the automatic mutation-
// time bar — reporting whether it did. Long-running callers with natural
// quiet points (the daemon between ticks) use it to fold pending churn
// off the ingest and query paths instead of waiting for the next
// mutation burst to trip the automatic trigger mid-batch.
func (g *Graph) MaybeCompact() bool {
	if g.overlayLoad() <= g.eagerCompactThreshold() {
		return false
	}
	g.Compact()
	return true
}

// Compact rebuilds the adjacency arena: every live vertex's base span and
// overlay merge into a fresh, contiguous, sorted span; tombstones and
// garbage vanish. Neighbor slices and cursors obtained before Compact are
// invalidated. The resulting layout is canonical: it depends only on the
// edge set, not on the mutation order that produced it.
func (g *Graph) Compact() {
	g.out.compact()
	if g.directed {
		g.in.compact()
	}
	g.compactions++
}

func (s *store) compact() {
	total := 0
	for i := range s.spans {
		total += s.degree(VertexID(i))
	}
	arena := make([]VertexID, 0, total)
	for i := range s.spans {
		v := VertexID(i)
		off := uint32(len(arena))
		o := s.overlayOf(v)
		base := s.base(v)
		if o == nil {
			arena = append(arena, base...)
		} else {
			// The overlay is being discarded, so its adds can sort in place.
			sortIDs(o.adds)
			arena = mergeAdjacency(arena, base, o.adds)
		}
		s.spans[i] = span{off: off, n: int32(len(arena)) - int32(off)}
	}
	s.arena = arena
	// Release the overlay structures entirely: a compacted graph carries
	// zero overlay memory until the next mutation re-materialises the
	// per-slot index.
	s.ovIdx = nil
	s.ovTab = nil
	s.ovEnts = 0
	s.garbage = 0
}

// mergeAdjacency appends to dst the ascending merge of base with adds;
// both inputs are ascending and disjoint.
func mergeAdjacency(dst, base, adds []VertexID) []VertexID {
	ai := 0
	for _, w := range base {
		for ai < len(adds) && adds[ai] < w {
			dst = append(dst, adds[ai])
			ai++
		}
		dst = append(dst, w)
	}
	return append(dst, adds[ai:]...)
}

// MemoryStats reports the adjacency storage footprint, the observability
// behind the bytes-per-edge benchmarks and the daemon's /metrics gauges.
type MemoryStats struct {
	// ArenaEntries is the total arena length across directions (live base
	// entries plus garbage), 4 bytes each.
	ArenaEntries int
	// GarbageEntries counts arena entries retired by vertex removals and
	// awaiting compaction.
	GarbageEntries int
	// OverlayAdds counts pending overlay entries (added neighbours not
	// yet folded into the arena).
	OverlayAdds int
	// DirtyVertices counts vertices with a non-empty overlay.
	DirtyVertices int
	// Compactions is the number of arena rebuilds so far.
	Compactions uint64
	// Bytes estimates the resident size of the adjacency structures
	// (arena + spans + dirty bitmaps + overlay lists and map overhead),
	// excluding the alive/free vertex tables shared by any layout.
	Bytes int64
}

// MemoryStats returns the current storage footprint.
func (g *Graph) MemoryStats() MemoryStats {
	st := MemoryStats{Compactions: g.compactions}
	for _, s := range []*store{&g.out, &g.in} {
		st.ArenaEntries += len(s.arena)
		st.GarbageEntries += s.garbage
		st.DirtyVertices += len(s.ovTab)
		st.Bytes += int64(cap(s.arena))*4 + int64(len(s.spans))*8 + int64(cap(s.ovIdx))*4
		for i := range s.ovTab {
			o := &s.ovTab[i]
			st.OverlayAdds += len(o.adds)
			// Table entry header plus its list capacity.
			st.Bytes += 32 + int64(cap(o.adds))*4
		}
	}
	return st
}
