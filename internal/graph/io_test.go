package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestEdgeListRoundTripUndirected(t *testing.T) {
	g := NewUndirected(0)
	for i := 0; i < 5; i++ {
		g.AddVertex()
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	// Vertex 2..4 connected; add an isolated vertex to test preservation.
	iso := g.AddVertex()

	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != g.NumVertices() {
		t.Fatalf("vertices: %d, want %d", back.NumVertices(), g.NumVertices())
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatalf("edges: %d, want %d", back.NumEdges(), g.NumEdges())
	}
	if !back.Has(iso) {
		t.Fatal("isolated vertex lost in round trip")
	}
	if !back.HasEdge(0, 1) || !back.HasEdge(3, 4) {
		t.Fatal("edges lost in round trip")
	}
}

func TestEdgeListRoundTripDirected(t *testing.T) {
	g := NewDirected(0)
	for i := 0; i < 3; i++ {
		g.AddVertex()
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != 3 {
		t.Fatalf("edges: %d, want 3", back.NumEdges())
	}
	if !back.HasEdge(0, 1) || !back.HasEdge(1, 0) {
		t.Fatal("reciprocal pair lost")
	}
}

func TestReadEdgeListComments(t *testing.T) {
	in := "# comment line\n\n0 1\n1 2\n# trailing\n"
	g, err := ReadEdgeList(strings.NewReader(in), false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
}

func TestReadEdgeListBadInput(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("a b\n"), false); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := ReadEdgeList(strings.NewReader("0 x\n"), false); err == nil {
		t.Fatal("expected parse error on second field")
	}
}
