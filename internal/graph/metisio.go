package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteMetis writes an undirected graph in the METIS/Chaco .graph format
// used by the Walshaw archive (the paper's 3elt/4elt source): a header
// line "n m", then one line per vertex listing its 1-based neighbours.
// Directed graphs are rejected — the format has no direction.
func (g *Graph) WriteMetis(w io.Writer) error {
	if g.directed {
		return fmt.Errorf("graph: METIS format is undirected")
	}
	// The format has no holes: compact live vertices to 1..n.
	ids := g.Vertices()
	index := make(map[VertexID]int, len(ids))
	for i, v := range ids {
		index[v] = i + 1
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	for _, v := range ids {
		nbrs := g.Neighbors(v)
		parts := make([]string, len(nbrs))
		for i, u := range nbrs {
			parts[i] = strconv.Itoa(index[u])
		}
		if _, err := fmt.Fprintln(bw, strings.Join(parts, " ")); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMetis parses the METIS/Chaco .graph format into an undirected graph
// with vertices 0..n−1. Comment lines beginning with '%' are skipped; the
// optional fmt/weight fields of the header are rejected (this repository
// only uses unweighted graphs).
func ReadMetis(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	line, err := nextMetisLine(sc)
	if err != nil {
		return nil, fmt.Errorf("metis: missing header: %w", err)
	}
	header := strings.Fields(line)
	if len(header) < 2 {
		return nil, fmt.Errorf("metis: header %q needs 'n m'", line)
	}
	if len(header) > 2 && header[2] != "0" && header[2] != "00" && header[2] != "000" {
		return nil, fmt.Errorf("metis: weighted format %q not supported", header[2])
	}
	n, err := strconv.Atoi(header[0])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("metis: bad vertex count %q", header[0])
	}
	if n > MaxReadVertexID {
		return nil, fmt.Errorf("metis: vertex count %d exceeds the supported maximum %d", n, MaxReadVertexID)
	}
	m, err := strconv.Atoi(header[1])
	if err != nil || m < 0 {
		return nil, fmt.Errorf("metis: bad edge count %q", header[1])
	}
	g := NewUndirected(n)
	for i := 0; i < n; i++ {
		g.AddVertex()
	}
	for v := 0; v < n; v++ {
		line, err := nextMetisLine(sc)
		if err != nil {
			return nil, fmt.Errorf("metis: vertex %d: %w", v+1, err)
		}
		for _, f := range strings.Fields(line) {
			u, err := strconv.Atoi(f)
			if err != nil || u < 1 || u > n {
				return nil, fmt.Errorf("metis: vertex %d: bad neighbour %q", v+1, f)
			}
			g.AddEdge(VertexID(v), VertexID(u-1))
		}
	}
	if g.NumEdges() != m {
		return nil, fmt.Errorf("metis: header claims %d edges, adjacency has %d", m, g.NumEdges())
	}
	return g, nil
}

// nextMetisLine returns the next non-comment line (possibly empty: an
// isolated vertex has an empty adjacency line).
func nextMetisLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(line), "%") {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}
