package graph

import "fmt"

// MutationKind enumerates the structural changes a dynamic graph stream can
// carry.
type MutationKind int

// Mutation kinds. Enum starts at one so the zero value is invalid.
const (
	MutAddVertex MutationKind = iota + 1
	MutRemoveVertex
	MutAddEdge
	MutRemoveEdge
)

// String returns the mnemonic used in traces and error messages.
func (k MutationKind) String() string {
	switch k {
	case MutAddVertex:
		return "add-vertex"
	case MutRemoveVertex:
		return "remove-vertex"
	case MutAddEdge:
		return "add-edge"
	case MutRemoveEdge:
		return "remove-edge"
	default:
		return fmt.Sprintf("mutation(%d)", int(k))
	}
}

// Mutation is one structural change. For vertex mutations only U is
// meaningful; edge mutations use both endpoints. Streams carry explicit
// vertex IDs so that replay is deterministic.
type Mutation struct {
	Kind MutationKind
	U, V VertexID
}

// Batch is an ordered set of mutations applied between two iterations, the
// granularity at which the paper's adaptive algorithm observes change.
type Batch []Mutation

// NumAdds returns how many vertices the batch adds.
func (b Batch) NumAdds() int {
	n := 0
	for _, mu := range b {
		if mu.Kind == MutAddVertex {
			n++
		}
	}
	return n
}

// NumEdgeAdds returns how many edges the batch adds.
func (b Batch) NumEdgeAdds() int {
	n := 0
	for _, mu := range b {
		if mu.Kind == MutAddEdge {
			n++
		}
	}
	return n
}

// Apply executes the batch against g in order. Mutations referencing dead
// or duplicate entities follow the Graph method semantics (no-ops), which
// makes replaying overlapping streams safe. It returns the number of
// mutations that changed the graph.
func (g *Graph) Apply(b Batch) int {
	return g.ApplyTouched(b, nil)
}

// ApplyTouched executes the batch like Apply and additionally reports every
// vertex whose decision inputs the batch could have changed to touched:
// added vertices, the endpoints of added/removed edges, and — for vertex
// removals — the removed vertex's neighbours at the moment of removal.
// Incremental schedulers (core's active set, the adaptive service's
// frontier) seed their dirty sets from these notifications, so a sweep
// costs O(churn) instead of O(|V|). touched may be called more than once
// for the same vertex and may see IDs that a later mutation in the batch
// removes; callers dedupe and re-check liveness. A nil touched reduces to
// Apply. It returns the number of mutations that changed the graph.
func (g *Graph) ApplyTouched(b Batch, touched func(VertexID)) int {
	applied := 0
	for _, mu := range b {
		switch mu.Kind {
		case MutAddVertex:
			if !g.Has(mu.U) {
				g.EnsureVertex(mu.U)
				applied++
				if touched != nil {
					touched(mu.U)
				}
			}
		case MutRemoveVertex:
			if g.Has(mu.U) {
				if touched != nil {
					// Neighbours lose a member of their Γ; report them
					// before the adjacency is destroyed.
					g.ForEachNeighbor(mu.U, touched)
					if g.directed {
						g.ForEachInNeighbor(mu.U, touched)
					}
					touched(mu.U)
				}
				g.RemoveVertex(mu.U)
				applied++
			}
		case MutAddEdge:
			createdU, createdV := !g.Has(mu.U), !g.Has(mu.V)
			g.EnsureVertex(mu.U)
			g.EnsureVertex(mu.V)
			if g.AddEdge(mu.U, mu.V) {
				applied++
				if touched != nil {
					touched(mu.U)
					touched(mu.V)
				}
			} else {
				// The edge was rejected (self-loop/duplicate) but
				// EnsureVertex may still have materialised an endpoint —
				// that IS a graph change: it must count as applied, or
				// callers' applied==0 fast paths would skip placing the
				// new live vertex entirely.
				createdU = createdU && g.Has(mu.U)
				createdV = createdV && g.Has(mu.V)
				if createdU || createdV {
					applied++
				}
				if touched != nil {
					if createdU {
						touched(mu.U)
					}
					if createdV {
						touched(mu.V)
					}
				}
			}
		case MutRemoveEdge:
			if g.RemoveEdge(mu.U, mu.V) {
				applied++
				if touched != nil {
					touched(mu.U)
					touched(mu.V)
				}
			}
		}
	}
	return applied
}

// Stream produces mutation batches, one per iteration tick. It abstracts
// the paper's dynamic inputs: the forest-fire burst of Section 4.3, the
// Twitter mention stream and the CDR call stream. Next returns nil when a
// tick carries no change; Done reports stream exhaustion.
type Stream interface {
	// Next returns the batch for the next tick.
	Next() Batch
	// Done reports whether the stream has been fully consumed.
	Done() bool
}

// SliceStream replays a fixed schedule of batches. It implements Stream.
type SliceStream struct {
	batches []Batch
	pos     int
}

// NewSliceStream builds a stream that replays batches in order.
func NewSliceStream(batches []Batch) *SliceStream {
	return &SliceStream{batches: batches}
}

// Next returns the next scheduled batch, or nil after exhaustion.
func (s *SliceStream) Next() Batch {
	if s.pos >= len(s.batches) {
		return nil
	}
	b := s.batches[s.pos]
	s.pos++
	return b
}

// Done reports whether all batches have been consumed.
func (s *SliceStream) Done() bool { return s.pos >= len(s.batches) }

var _ Stream = (*SliceStream)(nil)
