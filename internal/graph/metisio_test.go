package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMetisRoundTrip(t *testing.T) {
	g := NewUndirected(0)
	for i := 0; i < 5; i++ {
		g.AddVertex()
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(0, 3)
	// vertex 4 isolated
	var buf bytes.Buffer
	if err := g.WriteMetis(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMetis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != 5 || back.NumEdges() != 4 {
		t.Fatalf("round trip: |V|=%d |E|=%d", back.NumVertices(), back.NumEdges())
	}
	for _, e := range [][2]VertexID{{0, 1}, {1, 2}, {2, 3}, {0, 3}} {
		if !back.HasEdge(e[0], e[1]) {
			t.Fatalf("edge %v lost", e)
		}
	}
}

func TestMetisRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewUndirected(0)
		n := 2 + rng.Intn(40)
		for i := 0; i < n; i++ {
			g.AddVertex()
		}
		for i := 0; i < 2*n; i++ {
			g.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
		}
		var buf bytes.Buffer
		if err := g.WriteMetis(&buf); err != nil {
			return false
		}
		back, err := ReadMetis(&buf)
		if err != nil {
			return false
		}
		if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
			return false
		}
		ok := true
		g.ForEachEdge(func(u, v VertexID) {
			if !back.HasEdge(u, v) {
				ok = false
			}
		})
		return ok && back.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMetisRoundTripWithHoles(t *testing.T) {
	// Removed vertices leave ID holes; the writer must compact them.
	g := NewUndirected(0)
	for i := 0; i < 4; i++ {
		g.AddVertex()
	}
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.RemoveVertex(1)
	var buf bytes.Buffer
	if err := g.WriteMetis(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMetis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != 3 || back.NumEdges() != 1 {
		t.Fatalf("|V|=%d |E|=%d, want 3/1", back.NumVertices(), back.NumEdges())
	}
}

func TestMetisRejectsDirected(t *testing.T) {
	g := NewDirected(0)
	g.AddVertex()
	if err := g.WriteMetis(&bytes.Buffer{}); err == nil {
		t.Fatal("directed graphs must be rejected")
	}
}

func TestReadMetisComments(t *testing.T) {
	in := "% a comment\n3 2\n2\n1 3\n2\n"
	g, err := ReadMetis(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("|V|=%d |E|=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestReadMetisErrors(t *testing.T) {
	cases := []string{
		"",                // no header
		"x y\n",           // bad header
		"2 1 011\n2\n1\n", // weighted unsupported
		"2 5\n2\n1\n",     // edge count mismatch
		"2 1\n7\n\n",      // neighbour out of range
		"3 2\n2\n1\n",     // truncated adjacency
	}
	for _, in := range cases {
		if _, err := ReadMetis(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}
