package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// This file implements the stable binary serialization of a Graph used by
// the snapshot/restore path (internal/snapshot). The format captures the
// *identity-level* state, not just the topology: slot layout, the alive
// bitmap, the free-list order, the arena spans AND the pending mutation
// overlay all round-trip exactly. Vertex IDs are recycled LIFO, neighbour
// iteration order feeds the deterministic schedulers, and compaction
// points are a function of overlay mass — so a restored daemon must
// reproduce all three byte-for-byte, including a checkpoint taken with a
// non-empty overlay (determinism acceptance criterion).
//
// Layout (all integers little-endian, fixed width):
//
//	u8  directed
//	u32 slots
//	u64 n (live vertices), u64 m (live edges)     — validated on decode
//	slots × u8   alive bitmap (one byte per slot)
//	u32 freeLen, freeLen × i32                    — free list, stack order
//	store (out-adjacency):
//	  u64 arenaLen, arenaLen × i32                — arena, verbatim
//	  slots × (u32 off, u32 len)                  — base spans
//	  u64 garbage                                 — == arenaLen − Σ len
//	  u32 dirtyCount                              — overlays, slot-ascending
//	  dirtyCount × (u32 slot, u32 nAdds, nAdds × i32)
//	[directed only] store (in-adjacency)
//
// The format is versioned by the enclosing snapshot container, which also
// carries a CRC; the decoder still bounds every length and finishes with
// a full CheckInvariants pass, so a corrupt or adversarial payload errors
// instead of panicking or allocating unbounded memory.

// maxCodecSlots bounds the vertex-table size EncodeBinary/DecodeGraph
// accept, mirroring MaxReadVertexID for the text parsers.
const maxCodecSlots = MaxReadVertexID + 1

// maxCodecArena bounds a single direction's arena length. Decoding reads
// the arena incrementally, so a lying header fails at EOF long before the
// claimed allocation is reached.
const maxCodecArena = 1 << 31

// EncodeBinary writes the graph in the stable binary snapshot format.
// Encoding does not canonicalise: the arena (including garbage), spans
// and overlay serialize verbatim, so encode∘decode∘encode is
// byte-identical and a restored graph compacts at exactly the same future
// points as the original.
func (g *Graph) EncodeBinary(w io.Writer) error {
	if len(g.out.spans) > maxCodecSlots {
		return fmt.Errorf("graph: %d slots exceed the serializable maximum %d", len(g.out.spans), maxCodecSlots)
	}
	// Mirror every decode-side bound at encode time: a checkpoint that
	// writes cleanly must restore cleanly, never fail only on read.
	if len(g.out.arena) > maxCodecArena || len(g.in.arena) > maxCodecArena {
		return fmt.Errorf("graph: arena exceeds the serializable maximum %d entries", maxCodecArena)
	}
	bw := bufio.NewWriter(w)
	dir := byte(0)
	if g.directed {
		dir = 1
	}
	if err := bw.WriteByte(dir); err != nil {
		return err
	}
	writeU32(bw, uint32(len(g.out.spans)))
	writeU64(bw, uint64(g.n))
	writeU64(bw, uint64(g.m))
	for _, a := range g.alive {
		b := byte(0)
		if a {
			b = 1
		}
		bw.WriteByte(b)
	}
	writeU32(bw, uint32(len(g.free)))
	for _, id := range g.free {
		writeI32(bw, int32(id))
	}
	g.out.encode(bw)
	if g.directed {
		g.in.encode(bw)
	}
	return bw.Flush()
}

func (s *store) encode(bw *bufio.Writer) {
	writeU64(bw, uint64(len(s.arena)))
	for _, v := range s.arena {
		writeI32(bw, int32(v))
	}
	for _, sp := range s.spans {
		writeU32(bw, sp.off)
		writeU32(bw, uint32(sp.n))
	}
	writeU64(bw, uint64(s.garbage))
	writeU32(bw, uint32(len(s.ovTab)))
	// Slot-ascending overlay order keeps the encoding canonical (the
	// dense table's internal order must never leak into the bytes).
	for i := range s.spans {
		v := VertexID(i)
		o := s.overlayOf(v)
		if o == nil {
			continue
		}
		writeU32(bw, uint32(i))
		writeU32(bw, uint32(len(o.adds)))
		for _, w := range o.adds {
			writeI32(bw, int32(w))
		}
	}
}

// DecodeGraph reads a graph previously written by EncodeBinary. The full
// invariant suite (degree symmetry, counts, span/overlay bookkeeping)
// is validated; a mismatch or out-of-range ID yields an error, never a
// panic or unbounded allocation.
func DecodeGraph(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	dir, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("graph decode: %w", err)
	}
	if dir > 1 {
		return nil, fmt.Errorf("graph decode: invalid directed flag %d", dir)
	}
	slots, err := readU32(br)
	if err != nil {
		return nil, fmt.Errorf("graph decode: slots: %w", err)
	}
	if int(slots) > maxCodecSlots {
		return nil, fmt.Errorf("graph decode: %d slots exceed the supported maximum %d", slots, maxCodecSlots)
	}
	n, err := readU64(br)
	if err != nil {
		return nil, fmt.Errorf("graph decode: n: %w", err)
	}
	m, err := readU64(br)
	if err != nil {
		return nil, fmt.Errorf("graph decode: m: %w", err)
	}
	if n > uint64(slots) {
		return nil, fmt.Errorf("graph decode: %d live vertices in %d slots", n, slots)
	}
	g := &Graph{directed: dir == 1, alive: make([]bool, slots)}
	live := 0
	for i := range g.alive {
		b, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("graph decode: alive bitmap: %w", err)
		}
		switch b {
		case 0:
		case 1:
			g.alive[i] = true
			live++
		default:
			return nil, fmt.Errorf("graph decode: invalid alive byte %d at slot %d", b, i)
		}
	}
	if uint64(live) != n {
		return nil, fmt.Errorf("graph decode: alive bitmap has %d live vertices, header says %d", live, n)
	}
	freeLen, err := readU32(br)
	if err != nil {
		return nil, fmt.Errorf("graph decode: free list: %w", err)
	}
	if int(freeLen)+live != int(slots) {
		return nil, fmt.Errorf("graph decode: free %d + live %d != slots %d", freeLen, live, slots)
	}
	g.free = make([]VertexID, freeLen)
	for i := range g.free {
		id, err := readSlotID(br, slots)
		if err != nil {
			return nil, fmt.Errorf("graph decode: free list entry %d: %w", i, err)
		}
		if g.alive[id] {
			return nil, fmt.Errorf("graph decode: free list contains live vertex %d", id)
		}
		g.free[i] = id
	}
	if err := g.out.decode(br, slots); err != nil {
		return nil, fmt.Errorf("graph decode: out store: %w", err)
	}
	if g.directed {
		if err := g.in.decode(br, slots); err != nil {
			return nil, fmt.Errorf("graph decode: in store: %w", err)
		}
	}
	g.n = int(n)
	g.m = int(m)
	if err := g.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("graph decode: inconsistent payload: %w", err)
	}
	return g, nil
}

func (s *store) decode(br *bufio.Reader, slots uint32) error {
	arenaLen, err := readU64(br)
	if err != nil {
		return fmt.Errorf("arena length: %w", err)
	}
	if arenaLen > maxCodecArena {
		return fmt.Errorf("arena length %d exceeds the supported maximum %d", arenaLen, maxCodecArena)
	}
	// Grow incrementally: a lying length hits EOF, not a huge allocation.
	s.arena = make([]VertexID, 0, min64(arenaLen, 1<<16))
	for i := uint64(0); i < arenaLen; i++ {
		id, err := readSlotID(br, slots)
		if err != nil {
			return fmt.Errorf("arena entry %d: %w", i, err)
		}
		s.arena = append(s.arena, id)
	}
	s.spans = make([]span, slots)
	for i := range s.spans {
		off, err := readU32(br)
		if err != nil {
			return fmt.Errorf("slot %d span offset: %w", i, err)
		}
		length, err := readU32(br)
		if err != nil {
			return fmt.Errorf("slot %d span length: %w", i, err)
		}
		if uint64(off)+uint64(length) > arenaLen || length > uint32(maxCodecSlots) {
			return fmt.Errorf("slot %d span [%d,+%d) exceeds arena %d", i, off, length, arenaLen)
		}
		s.spans[i] = span{off: off, n: int32(length)}
	}
	garbage, err := readU64(br)
	if err != nil {
		return fmt.Errorf("garbage counter: %w", err)
	}
	spanEnds := uint64(0)
	for _, sp := range s.spans {
		spanEnds += uint64(sp.n)
	}
	if spanEnds+garbage != arenaLen {
		return fmt.Errorf("span ends %d + garbage %d != arena %d", spanEnds, garbage, arenaLen)
	}
	s.garbage = int(garbage)
	dirtyCount, err := readU32(br)
	if err != nil {
		return fmt.Errorf("overlay count: %w", err)
	}
	if dirtyCount > slots {
		return fmt.Errorf("overlay count %d exceeds slot count %d", dirtyCount, slots)
	}
	prev := int64(-1)
	for i := uint32(0); i < dirtyCount; i++ {
		slot, err := readU32(br)
		if err != nil {
			return fmt.Errorf("overlay %d slot: %w", i, err)
		}
		if int64(slot) <= prev || slot >= slots {
			return fmt.Errorf("overlay slots not ascending (%d after %d)", slot, prev)
		}
		prev = int64(slot)
		o := s.ensureOverlay(VertexID(slot))
		if o.adds, err = readVertexList(br, slots, "adds"); err != nil {
			return fmt.Errorf("overlay %d: %w", slot, err)
		}
		if len(o.adds) == 0 {
			return fmt.Errorf("overlay %d is empty", slot)
		}
		s.ovEnts += len(o.adds)
	}
	return nil
}

func readVertexList(br *bufio.Reader, slots uint32, what string) ([]VertexID, error) {
	n, err := readU32(br)
	if err != nil {
		return nil, fmt.Errorf("%s length: %w", what, err)
	}
	if n > slots {
		return nil, fmt.Errorf("%s length %d exceeds slot count %d", what, n, slots)
	}
	if n == 0 {
		return nil, nil
	}
	list := make([]VertexID, n)
	for i := range list {
		id, err := readSlotID(br, slots)
		if err != nil {
			return nil, fmt.Errorf("%s entry %d: %w", what, i, err)
		}
		list[i] = id
	}
	return list, nil
}

func readSlotID(br *bufio.Reader, slots uint32) (VertexID, error) {
	raw, err := readI32(br)
	if err != nil {
		return NoVertex, err
	}
	if raw < 0 || uint32(raw) >= slots {
		return NoVertex, fmt.Errorf("vertex id %d out of range [0,%d)", raw, slots)
	}
	return VertexID(raw), nil
}

func min64(a uint64, b int) int {
	if a < uint64(b) {
		return int(a)
	}
	return b
}

func writeU32(w *bufio.Writer, v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	w.Write(buf[:])
}

func writeU64(w *bufio.Writer, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	w.Write(buf[:])
}

func writeI32(w *bufio.Writer, v int32) { writeU32(w, uint32(v)) }

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func readU64(r io.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

func readI32(r io.Reader) (int32, error) {
	v, err := readU32(r)
	return int32(v), err
}
