package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// This file implements the stable binary serialization of a Graph used by
// the snapshot/restore path (internal/snapshot). The format captures the
// *identity-level* state, not just the topology: slot layout, the alive
// bitmap and the free-list order all round-trip, because vertex IDs are
// recycled LIFO and a restored daemon must hand out exactly the IDs the
// uninterrupted run would have (determinism acceptance criterion).
//
// Layout (all integers little-endian, fixed width):
//
//	u8  directed
//	u32 slots
//	u64 n (live vertices), u64 m (live edges)   — validated on decode
//	slots × u8   alive bitmap (one byte per slot)
//	u32 freeLen, freeLen × i32                  — free list, stack order
//	slots × (u32 deg, deg × i32)                — out-adjacency, slot order
//	[directed only] slots × (u32 deg, deg × i32) — in-adjacency
//
// The format is versioned by the enclosing snapshot container, which also
// carries a CRC; the decoder still bounds every length so a corrupt or
// adversarial payload errors instead of allocating unbounded memory.

// maxCodecSlots bounds the vertex-table size EncodeBinary/DecodeGraph
// accept, mirroring MaxReadVertexID for the text parsers.
const maxCodecSlots = MaxReadVertexID + 1

// EncodeBinary writes the graph in the stable binary snapshot format.
func (g *Graph) EncodeBinary(w io.Writer) error {
	if len(g.out) > maxCodecSlots {
		return fmt.Errorf("graph: %d slots exceed the serializable maximum %d", len(g.out), maxCodecSlots)
	}
	bw := bufio.NewWriter(w)
	dir := byte(0)
	if g.directed {
		dir = 1
	}
	if err := bw.WriteByte(dir); err != nil {
		return err
	}
	writeU32(bw, uint32(len(g.out)))
	writeU64(bw, uint64(g.n))
	writeU64(bw, uint64(g.m))
	for _, a := range g.alive {
		b := byte(0)
		if a {
			b = 1
		}
		bw.WriteByte(b)
	}
	writeU32(bw, uint32(len(g.free)))
	for _, id := range g.free {
		writeI32(bw, int32(id))
	}
	writeAdjacency(bw, g.out)
	if g.directed {
		writeAdjacency(bw, g.in)
	}
	return bw.Flush()
}

func writeAdjacency(bw *bufio.Writer, adj [][]VertexID) {
	for _, list := range adj {
		writeU32(bw, uint32(len(list)))
		for _, v := range list {
			writeI32(bw, int32(v))
		}
	}
}

// DecodeGraph reads a graph previously written by EncodeBinary. Structural
// counters (n, m, free-list/alive consistency) are validated; a mismatch
// or out-of-range ID yields an error, never a panic or unbounded
// allocation.
func DecodeGraph(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	dir, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("graph decode: %w", err)
	}
	if dir > 1 {
		return nil, fmt.Errorf("graph decode: invalid directed flag %d", dir)
	}
	slots, err := readU32(br)
	if err != nil {
		return nil, fmt.Errorf("graph decode: slots: %w", err)
	}
	if int(slots) > maxCodecSlots {
		return nil, fmt.Errorf("graph decode: %d slots exceed the supported maximum %d", slots, maxCodecSlots)
	}
	n, err := readU64(br)
	if err != nil {
		return nil, fmt.Errorf("graph decode: n: %w", err)
	}
	m, err := readU64(br)
	if err != nil {
		return nil, fmt.Errorf("graph decode: m: %w", err)
	}
	if n > uint64(slots) {
		return nil, fmt.Errorf("graph decode: %d live vertices in %d slots", n, slots)
	}
	g := &Graph{
		directed: dir == 1,
		out:      make([][]VertexID, slots),
		alive:    make([]bool, slots),
	}
	if g.directed {
		g.in = make([][]VertexID, slots)
	}
	live := 0
	for i := range g.alive {
		b, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("graph decode: alive bitmap: %w", err)
		}
		switch b {
		case 0:
		case 1:
			g.alive[i] = true
			live++
		default:
			return nil, fmt.Errorf("graph decode: invalid alive byte %d at slot %d", b, i)
		}
	}
	if uint64(live) != n {
		return nil, fmt.Errorf("graph decode: alive bitmap has %d live vertices, header says %d", live, n)
	}
	freeLen, err := readU32(br)
	if err != nil {
		return nil, fmt.Errorf("graph decode: free list: %w", err)
	}
	if int(freeLen)+live != int(slots) {
		return nil, fmt.Errorf("graph decode: free %d + live %d != slots %d", freeLen, live, slots)
	}
	g.free = make([]VertexID, freeLen)
	for i := range g.free {
		id, err := readSlotID(br, slots)
		if err != nil {
			return nil, fmt.Errorf("graph decode: free list entry %d: %w", i, err)
		}
		if g.alive[id] {
			return nil, fmt.Errorf("graph decode: free list contains live vertex %d", id)
		}
		g.free[i] = id
	}
	ends, err := readAdjacency(br, g.out, slots)
	if err != nil {
		return nil, fmt.Errorf("graph decode: out-adjacency: %w", err)
	}
	wantEnds := 2 * m
	if g.directed {
		wantEnds = m
	}
	if ends != wantEnds {
		return nil, fmt.Errorf("graph decode: %d out-edge ends, header implies %d", ends, wantEnds)
	}
	if g.directed {
		inEnds, err := readAdjacency(br, g.in, slots)
		if err != nil {
			return nil, fmt.Errorf("graph decode: in-adjacency: %w", err)
		}
		if inEnds != m {
			return nil, fmt.Errorf("graph decode: %d in-edge ends, header says %d edges", inEnds, m)
		}
	}
	g.n = int(n)
	g.m = int(m)
	return g, nil
}

func readAdjacency(br *bufio.Reader, adj [][]VertexID, slots uint32) (ends uint64, err error) {
	for i := range adj {
		deg, err := readU32(br)
		if err != nil {
			return 0, fmt.Errorf("slot %d degree: %w", i, err)
		}
		if deg > slots {
			return 0, fmt.Errorf("slot %d degree %d exceeds slot count %d", i, deg, slots)
		}
		if deg == 0 {
			continue
		}
		list := make([]VertexID, deg)
		for j := range list {
			id, err := readSlotID(br, slots)
			if err != nil {
				return 0, fmt.Errorf("slot %d neighbour %d: %w", i, j, err)
			}
			list[j] = id
		}
		adj[i] = list
		ends += uint64(deg)
	}
	return ends, nil
}

func readSlotID(br *bufio.Reader, slots uint32) (VertexID, error) {
	raw, err := readI32(br)
	if err != nil {
		return NoVertex, err
	}
	if raw < 0 || uint32(raw) >= slots {
		return NoVertex, fmt.Errorf("vertex id %d out of range [0,%d)", raw, slots)
	}
	return VertexID(raw), nil
}

func writeU32(w *bufio.Writer, v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	w.Write(buf[:])
}

func writeU64(w *bufio.Writer, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	w.Write(buf[:])
}

func writeI32(w *bufio.Writer, v int32) { writeU32(w, uint32(v)) }

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func readU64(r io.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

func readI32(r io.Reader) (int32, error) {
	v, err := readU32(r)
	return int32(v), err
}
