package metis

import (
	"container/heap"
	"math/rand"
)

// gainEntry is a lazy priority-queue item for FM refinement; stale entries
// (whose gain no longer matches the vertex's current gain) are skipped on
// pop.
type gainEntry struct {
	v    int32
	gain int64
}

type gainHeap []gainEntry

func (h gainHeap) Len() int               { return len(h) }
func (h gainHeap) Less(i, j int) bool     { return h[i].gain > h[j].gain }
func (h gainHeap) Swap(i, j int)          { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x any)            { *h = append(*h, x.(gainEntry)) }
func (h *gainHeap) Pop() any              { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h *gainHeap) push(v int32, g int64) { heap.Push(h, gainEntry{v: v, gain: g}) }

// fmRefine runs Fiduccia–Mattheyses passes on the bipartition part,
// keeping side weights at or below maxW[0], maxW[1]. Each pass tentatively
// moves every vertex once in best-gain order and rolls back to the best
// prefix. Refinement stops when a pass yields no improvement.
func fmRefine(wg *wgraph, part []uint8, maxW [2]int64, rng *rand.Rand) {
	n := wg.n()
	var w [2]int64
	for v := 0; v < n; v++ {
		w[part[v]] += int64(wg.vw[v])
	}
	gains := make([]int64, n)
	locked := make([]bool, n)
	computeGain := func(v int32) int64 {
		var ext, int_ int64
		for _, e := range wg.adj[v] {
			if part[e.to] == part[v] {
				int_ += int64(e.w)
			} else {
				ext += int64(e.w)
			}
		}
		return ext - int_
	}

	// Rebalance first: projections from coarser levels (and greedy initial
	// bisections) can overflow a side; move best-gain vertices off the
	// overfull side until both sides are feasible.
	for side := uint8(0); side < 2; side++ {
		if w[side] <= maxW[side] {
			continue
		}
		h := make(gainHeap, 0, n)
		for v := int32(0); v < int32(n); v++ {
			if part[v] == side {
				gains[v] = computeGain(v)
				h.push(v, gains[v])
			}
		}
		for w[side] > maxW[side] && h.Len() > 0 {
			it := heap.Pop(&h).(gainEntry)
			v := it.v
			if part[v] != side || it.gain != gains[v] {
				continue
			}
			other := 1 - side
			part[v] = other
			w[side] -= int64(wg.vw[v])
			w[other] += int64(wg.vw[v])
			for _, e := range wg.adj[v] {
				if part[e.to] == side {
					gains[e.to] += 2 * int64(e.w)
					h.push(e.to, gains[e.to])
				}
			}
		}
	}

	const maxPasses = 8
	for pass := 0; pass < maxPasses; pass++ {
		for i := range locked {
			locked[i] = false
		}
		h := make(gainHeap, 0, n)
		for v := int32(0); v < int32(n); v++ {
			gains[v] = computeGain(v)
			h.push(v, gains[v])
		}

		type move struct {
			v    int32
			gain int64
		}
		moves := make([]move, 0, n)
		var cum, bestCum int64
		bestIdx := -1

		for h.Len() > 0 {
			it := heap.Pop(&h).(gainEntry)
			v := it.v
			if locked[v] || it.gain != gains[v] {
				continue // stale entry
			}
			from := part[v]
			to := 1 - from
			if w[to]+int64(wg.vw[v]) > maxW[to] {
				continue // would overflow the destination side
			}
			// Apply tentative move.
			part[v] = to
			w[from] -= int64(wg.vw[v])
			w[to] += int64(wg.vw[v])
			locked[v] = true
			cum += it.gain
			moves = append(moves, move{v: v, gain: it.gain})
			if cum > bestCum {
				bestCum = cum
				bestIdx = len(moves) - 1
			}
			// Update neighbour gains: an edge to v flips between internal
			// and external, shifting the neighbour's gain by ±2w.
			for _, e := range wg.adj[v] {
				if locked[e.to] {
					continue
				}
				if part[e.to] == to {
					gains[e.to] -= 2 * int64(e.w)
				} else {
					gains[e.to] += 2 * int64(e.w)
				}
				h.push(e.to, gains[e.to])
			}
		}

		// Roll back to the best prefix.
		for i := len(moves) - 1; i > bestIdx; i-- {
			v := moves[i].v
			to := part[v]
			from := 1 - to
			part[v] = from
			w[to] -= int64(wg.vw[v])
			w[from] += int64(wg.vw[v])
			// Gains will be recomputed next pass; no need to fix here.
		}
		if bestCum <= 0 {
			break // no improving prefix: converged
		}
	}
	_ = rng
}

// growBisect produces an initial bipartition by greedy graph growing: a
// random seed grows side 0, always absorbing the frontier vertex with the
// highest gain, until side 0 reaches target0 weight.
func growBisect(wg *wgraph, target0 int64, rng *rand.Rand) []uint8 {
	n := wg.n()
	part := make([]uint8, n)
	for i := range part {
		part[i] = 1
	}
	if n == 0 {
		return part
	}
	gains := make([]int64, n)
	inFrontier := make([]bool, n)
	h := make(gainHeap, 0, n)
	seed := int32(rng.Intn(n))
	var w0 int64
	add := func(v int32) {
		part[v] = 0
		w0 += int64(wg.vw[v])
		for _, e := range wg.adj[v] {
			if part[e.to] == 1 {
				gains[e.to] += int64(e.w)
				inFrontier[e.to] = true
				h.push(e.to, gains[e.to])
			}
		}
	}
	add(seed)
	for w0 < target0 && h.Len() > 0 {
		it := heap.Pop(&h).(gainEntry)
		v := it.v
		if part[v] == 0 || it.gain != gains[v] {
			continue
		}
		add(v)
	}
	// Disconnected graph: top up side 0 with arbitrary side-1 vertices.
	for v := int32(0); v < int32(n) && w0 < target0; v++ {
		if part[v] == 1 {
			part[v] = 0
			w0 += int64(wg.vw[v])
		}
	}
	return part
}
