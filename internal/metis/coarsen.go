package metis

import (
	"math/rand"
	"sort"
)

// coarsen collapses wg one level using heavy-edge matching: vertices are
// visited in random order and matched with the unmatched neighbour reached
// by the heaviest edge. It returns the coarse graph and the fine→coarse
// projection map.
func coarsen(wg *wgraph, rng *rand.Rand) (*wgraph, []int32) {
	n := wg.n()
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)

	coarseCount := int32(0)
	cmap := make([]int32, n)
	for i := range cmap {
		cmap[i] = -1
	}
	for _, vi := range order {
		v := int32(vi)
		if match[v] != -1 {
			continue
		}
		// Find the heaviest-edge unmatched neighbour.
		best := int32(-1)
		bestW := int32(-1)
		for _, e := range wg.adj[v] {
			if match[e.to] == -1 && e.to != v && e.w > bestW {
				best, bestW = e.to, e.w
			}
		}
		if best != -1 {
			match[v], match[best] = best, v
			cmap[v] = coarseCount
			cmap[best] = coarseCount
		} else {
			match[v] = v
			cmap[v] = coarseCount
		}
		coarseCount++
	}

	coarse := &wgraph{
		adj: make([][]wedge, coarseCount),
		vw:  make([]int32, coarseCount),
	}
	for v := 0; v < n; v++ {
		coarse.vw[cmap[v]] += wg.vw[v]
	}
	// Merge parallel edges with a scratch accumulator keyed by coarse id.
	acc := make(map[int32]int32)
	for cv := int32(0); cv < coarseCount; cv++ {
		_ = cv
	}
	// Build adjacency per coarse vertex by scanning fine vertices grouped
	// via cmap. A bucket pass keeps this O(E).
	buckets := make([][]int32, coarseCount)
	for v := 0; v < n; v++ {
		buckets[cmap[v]] = append(buckets[cmap[v]], int32(v))
	}
	for cv := int32(0); cv < coarseCount; cv++ {
		clear(acc)
		for _, v := range buckets[cv] {
			for _, e := range wg.adj[v] {
				ct := cmap[e.to]
				if ct != cv {
					acc[ct] += e.w
				}
			}
		}
		lst := make([]wedge, 0, len(acc))
		for to, w := range acc {
			lst = append(lst, wedge{to: to, w: w})
		}
		// Map iteration order is random; sort so heap tie-breaking — and
		// therefore the whole partitioning — is deterministic per seed.
		sort.Slice(lst, func(i, j int) bool { return lst[i].to < lst[j].to })
		coarse.adj[cv] = lst
	}
	return coarse, cmap
}

// coarsenTo repeatedly coarsens wg until it has at most target vertices or
// coarsening stalls (reduction < 10 %). It returns the level stack: the
// graphs from finest to coarsest and the projection maps between
// consecutive levels.
func coarsenTo(wg *wgraph, target int, rng *rand.Rand) (levels []*wgraph, maps [][]int32) {
	levels = []*wgraph{wg}
	for levels[len(levels)-1].n() > target {
		cur := levels[len(levels)-1]
		coarse, cmap := coarsen(cur, rng)
		if float64(coarse.n()) > 0.9*float64(cur.n()) {
			break // matching stalled (e.g. star graphs)
		}
		levels = append(levels, coarse)
		maps = append(maps, cmap)
	}
	return levels, maps
}
