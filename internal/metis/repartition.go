package metis

import (
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// Repartition is the "re-partition from scratch" baseline the paper
// motivates against: when the graph changes, centralised systems recompute
// the whole partitioning — "a costly process that effectively also
// increases processing time". It computes a fresh multilevel k-way
// partitioning and then *remaps* the new partition labels onto the old
// ones (greedy maximum-overlap matching, the scratch-remap strategy of
// ParMETIS) so that as few vertices as possible physically move.
//
// It returns the remapped assignment and the number of vertices whose
// partition changed versus old — the migration volume a system would pay
// to adopt the fresh partitioning.
func Repartition(g *graph.Graph, k int, old *partition.Assignment, opts Options) (*partition.Assignment, int, error) {
	fresh, err := PartitionKWay(g, k, opts)
	if err != nil {
		return nil, 0, err
	}
	if old == nil || old.K() != k {
		return fresh, g.NumVertices(), nil
	}

	// Overlap matrix: overlap[newLabel][oldLabel] = shared vertices.
	overlap := make([][]int, k)
	for i := range overlap {
		overlap[i] = make([]int, k)
	}
	g.ForEachVertex(func(v graph.VertexID) {
		np := fresh.Of(v)
		op := old.Of(v)
		if np != partition.None && op != partition.None {
			overlap[np][op]++
		}
	})

	// Greedy maximum-weight matching of new labels to old labels.
	relabel := make([]partition.ID, k)
	for i := range relabel {
		relabel[i] = partition.None
	}
	usedOld := make([]bool, k)
	assignedNew := make([]bool, k)
	for round := 0; round < k; round++ {
		bestNew, bestOld, bestW := -1, -1, -1
		for np := 0; np < k; np++ {
			if assignedNew[np] {
				continue
			}
			for op := 0; op < k; op++ {
				if usedOld[op] {
					continue
				}
				if overlap[np][op] > bestW {
					bestNew, bestOld, bestW = np, op, overlap[np][op]
				}
			}
		}
		if bestNew < 0 {
			break
		}
		relabel[bestNew] = partition.ID(bestOld)
		assignedNew[bestNew] = true
		usedOld[bestOld] = true
	}

	remapped := partition.NewAssignment(g.NumSlots(), k)
	moved := 0
	g.ForEachVertex(func(v graph.VertexID) {
		p := relabel[fresh.Of(v)]
		remapped.Assign(v, p)
		if p != old.Of(v) {
			moved++
		}
	})
	return remapped, moved, nil
}
