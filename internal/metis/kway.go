package metis

import (
	"fmt"
	"math"
	"math/rand"

	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// Options tunes the multilevel partitioner. The zero value is invalid; use
// DefaultOptions.
type Options struct {
	// Imbalance is the allowed load-imbalance factor (1.10 matches the
	// paper's 110 % capacity setting).
	Imbalance float64
	// CoarsestSize stops coarsening once a level has at most this many
	// vertices.
	CoarsestSize int
	// Tries is the number of random initial bisections per split; the best
	// refined cut wins.
	Tries int
	// Seed drives all randomised choices.
	Seed int64

	// levelImbalance is the per-bisection budget derived from Imbalance;
	// computed internally by PartitionKWay.
	levelImbalance float64
}

// DefaultOptions returns the configuration used by the experiment harness.
func DefaultOptions(seed int64) Options {
	return Options{Imbalance: 1.10, CoarsestSize: 240, Tries: 4, Seed: seed}
}

// PartitionKWay computes a balanced k-way partitioning of g by multilevel
// recursive bisection and returns it as an assignment table.
func PartitionKWay(g *graph.Graph, k int, opts Options) (*partition.Assignment, error) {
	if k < 1 {
		return nil, fmt.Errorf("metis: k must be ≥ 1, got %d", k)
	}
	if opts.Imbalance < 1.0 {
		return nil, fmt.Errorf("metis: imbalance factor must be ≥ 1.0, got %g", opts.Imbalance)
	}
	if opts.CoarsestSize <= 0 {
		opts.CoarsestSize = 240
	}
	if opts.Tries <= 0 {
		opts.Tries = 1
	}
	a := partition.NewAssignment(g.NumSlots(), k)
	if g.NumVertices() == 0 {
		return a, nil
	}
	// Recursive bisection compounds imbalance across levels, so each level
	// gets the depth-th root of the overall budget.
	depth := 0
	for 1<<depth < k {
		depth++
	}
	if depth > 0 {
		opts.levelImbalance = math.Pow(opts.Imbalance, 1/float64(depth))
	} else {
		opts.levelImbalance = opts.Imbalance
	}
	if opts.levelImbalance < 1.01 {
		opts.levelImbalance = 1.01
	}
	wg, ids := fromGraph(g)
	rng := rand.New(rand.NewSource(opts.Seed))
	out := make([]int32, wg.n())
	rb(wg, identity(wg.n()), k, 0, out, rng, opts)
	for i, v := range ids {
		a.Assign(v, partition.ID(out[i]))
	}
	return a, nil
}

func identity(n int) []int32 {
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	return ids
}

// rb recursively bisects wg (whose vertices map to original indices via
// toOrig) into k parts numbered firstPart..firstPart+k-1, writing results
// into out (indexed by original vertex index).
func rb(wg *wgraph, toOrig []int32, k int, firstPart int32, out []int32, rng *rand.Rand, opts Options) {
	if k == 1 {
		for _, o := range toOrig {
			out[o] = firstPart
		}
		return
	}
	kl := k / 2
	kr := k - kl
	total := wg.totalVW()
	target0 := total * int64(kl) / int64(k)
	part := multilevelBisect(wg, target0, total-target0, rng, opts)

	var leftLocal, rightLocal []int32
	for v := int32(0); v < int32(wg.n()); v++ {
		if part[v] == 0 {
			leftLocal = append(leftLocal, v)
		} else {
			rightLocal = append(rightLocal, v)
		}
	}
	leftWG, leftVerts := wg.subgraph(leftLocal)
	rightWG, rightVerts := wg.subgraph(rightLocal)
	leftOrig := make([]int32, len(leftVerts))
	for i, lv := range leftVerts {
		leftOrig[i] = toOrig[lv]
	}
	rightOrig := make([]int32, len(rightVerts))
	for i, rv := range rightVerts {
		rightOrig[i] = toOrig[rv]
	}
	rb(leftWG, leftOrig, kl, firstPart, out, rng, opts)
	rb(rightWG, rightOrig, kr, firstPart+int32(kl), out, rng, opts)
}

// multilevelBisect computes a bipartition of wg with side-0 weight near
// target0: coarsen, bisect the coarsest level (best of opts.Tries), then
// project back up refining with FM at every level.
func multilevelBisect(wg *wgraph, target0, target1 int64, rng *rand.Rand, opts Options) []uint8 {
	levels, maps := coarsenTo(wg, opts.CoarsestSize, rng)
	coarsest := levels[len(levels)-1]
	maxW := [2]int64{
		int64(float64(target0) * opts.levelImbalance),
		int64(float64(target1) * opts.levelImbalance),
	}
	// Weights must be feasible: a side must at least fit the heaviest
	// vertex, and rounding slack of +1 avoids degenerate zero targets.
	for s := 0; s < 2; s++ {
		if maxW[s] <= 0 {
			maxW[s] = 1
		}
	}

	var best []uint8
	var bestCut int64 = -1
	for try := 0; try < opts.Tries; try++ {
		part := growBisect(coarsest, target0, rng)
		fmRefine(coarsest, part, maxW, rng)
		cut := coarsest.cutWeight(part)
		if bestCut < 0 || cut < bestCut {
			bestCut = cut
			best = part
		}
	}

	// Project back to the finest level, refining at each step.
	part := best
	for lvl := len(levels) - 2; lvl >= 0; lvl-- {
		fine := levels[lvl]
		cmap := maps[lvl]
		finePart := make([]uint8, fine.n())
		for v := range finePart {
			finePart[v] = part[cmap[v]]
		}
		fmRefine(fine, finePart, maxW, rng)
		part = finePart
	}
	return part
}
