package metis

import (
	"testing"

	"xdgp/internal/gen"
	"xdgp/internal/partition"
)

func TestRepartitionRemapMinimisesMoves(t *testing.T) {
	g := gen.Cube3D(8)
	// First partitioning.
	first, err := PartitionKWay(g, 4, DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	// Repartition the *unchanged* graph with the same seed: the fresh
	// partitioning equals the first up to label names, so remapping must
	// bring moves to zero.
	remapped, moved, err := Repartition(g, 4, first, DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 {
		t.Fatalf("repartitioning an unchanged graph moved %d vertices, want 0", moved)
	}
	if err := remapped.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestRepartitionAfterGrowth(t *testing.T) {
	g := gen.Cube3D(8)
	first, err := PartitionKWay(g, 4, DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	// Grow the graph 10 %, then repartition from scratch.
	burst := gen.ForestFireExpansion(g, g.NumVertices()/10, gen.DefaultForestFire(), 2)
	g.Apply(burst)
	first.Grow(g.NumSlots()) // new vertices unassigned in `old`
	remapped, moved, err := Repartition(g, 4, first, DefaultOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := remapped.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Quality matches a fresh run; moves stay well below |V| thanks to
	// the remap (an unmatched relabelling would move ~3/4 of vertices).
	if moved >= g.NumVertices()*3/4 {
		t.Fatalf("remap moved %d of %d vertices — matching ineffective", moved, g.NumVertices())
	}
	ratio := partition.CutRatio(g, remapped)
	if ratio > 0.3 {
		t.Fatalf("repartitioned cut ratio %.3f implausibly high for a mesh", ratio)
	}
}

func TestRepartitionNilOld(t *testing.T) {
	g := gen.Cube3D(5)
	asn, moved, err := Repartition(g, 4, nil, DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if moved != g.NumVertices() {
		t.Fatalf("nil old: moved = %d, want all %d", moved, g.NumVertices())
	}
	if err := asn.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestRepartitionMismatchedK(t *testing.T) {
	g := gen.Cube3D(5)
	old := partition.Hash(g, 2)
	asn, moved, err := Repartition(g, 4, old, DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	// k changed: everything counts as moved, result is the fresh k=4 cut.
	if moved != g.NumVertices() {
		t.Fatalf("k-change: moved = %d, want all", moved)
	}
	if asn.K() != 4 {
		t.Fatalf("k = %d, want 4", asn.K())
	}
}
