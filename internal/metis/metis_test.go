package metis

import (
	"math/rand"
	"testing"

	"xdgp/internal/gen"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

func TestPartitionKWayValid(t *testing.T) {
	g := gen.Cube3D(10) // 1000 vertices
	for _, k := range []int{2, 3, 9} {
		a, err := PartitionKWay(g, k, DefaultOptions(1))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := a.Validate(g); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if imb := partition.Imbalance(a); imb > 1.25 {
			t.Errorf("k=%d: imbalance %.3f above tolerance", k, imb)
		}
	}
}

func TestPartitionKWayBeatsHashOnMesh(t *testing.T) {
	g := gen.Cube3D(12)
	hash := partition.CutRatio(g, partition.Hash(g, 9))
	a, err := PartitionKWay(g, 9, DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	ml := partition.CutRatio(g, a)
	if ml >= hash/2 {
		t.Fatalf("multilevel cut %.3f should be far below hash %.3f", ml, hash)
	}
}

func TestPartitionKWayBeatsGreedyOnMesh(t *testing.T) {
	// METIS is the paper's quality benchmark: it should be at least as
	// good as the streaming DGR heuristic on meshes.
	g := gen.Cube3D(10)
	dgr := partition.CutRatio(g, partition.LinearGreedy(g, 9, 1.10, 1))
	a, err := PartitionKWay(g, 9, DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	ml := partition.CutRatio(g, a)
	if ml > dgr*1.1 {
		t.Fatalf("multilevel cut %.3f worse than DGR %.3f", ml, dgr)
	}
}

func TestPartitionKWayPowerLaw(t *testing.T) {
	g := gen.HolmeKim(3000, 5, 0.1, 3)
	a, err := PartitionKWay(g, 9, DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
	if imb := partition.Imbalance(a); imb > 1.3 {
		t.Errorf("imbalance %.3f above tolerance", imb)
	}
	ratio := partition.CutRatio(g, a)
	hash := partition.CutRatio(g, partition.Hash(g, 9))
	if ratio >= hash {
		t.Fatalf("multilevel %.3f not below hash %.3f on power-law", ratio, hash)
	}
}

func TestPartitionKWayEdgeCases(t *testing.T) {
	// k = 1: everything in partition 0, zero cut.
	g := gen.Cube3D(4)
	a, err := PartitionKWay(g, 1, DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if partition.CutEdges(g, a) != 0 {
		t.Fatal("k=1 must have zero cut")
	}
	// Empty graph.
	empty := graph.NewUndirected(0)
	if _, err := PartitionKWay(empty, 4, DefaultOptions(1)); err != nil {
		t.Fatal(err)
	}
	// Invalid arguments.
	if _, err := PartitionKWay(g, 0, DefaultOptions(1)); err == nil {
		t.Fatal("k=0 must error")
	}
	bad := DefaultOptions(1)
	bad.Imbalance = 0.5
	if _, err := PartitionKWay(g, 2, bad); err == nil {
		t.Fatal("imbalance < 1 must error")
	}
}

func TestPartitionKWayMoreWaysThanVertices(t *testing.T) {
	g := graph.NewUndirected(0)
	for i := 0; i < 3; i++ {
		g.AddVertex()
	}
	a, err := PartitionKWay(g, 8, DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionDisconnectedGraph(t *testing.T) {
	// Two disjoint cliques: the natural bisection should cut nothing.
	g := graph.NewUndirected(0)
	for i := 0; i < 8; i++ {
		g.AddVertex()
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(graph.VertexID(i), graph.VertexID(j))
			g.AddEdge(graph.VertexID(i+4), graph.VertexID(j+4))
		}
	}
	a, err := PartitionKWay(g, 2, DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if cut := partition.CutEdges(g, a); cut != 0 {
		t.Fatalf("disjoint cliques cut = %d, want 0", cut)
	}
}

func TestCoarsenPreservesWeight(t *testing.T) {
	g := gen.Cube3D(6)
	wg, _ := fromGraph(g)
	rng := rand.New(rand.NewSource(1))
	coarse, cmap := coarsen(wg, rng)
	if coarse.totalVW() != wg.totalVW() {
		t.Fatalf("coarse weight %d != fine weight %d", coarse.totalVW(), wg.totalVW())
	}
	if coarse.n() >= wg.n() {
		t.Fatalf("coarsening did not shrink: %d -> %d", wg.n(), coarse.n())
	}
	for v, cv := range cmap {
		if cv < 0 || int(cv) >= coarse.n() {
			t.Fatalf("vertex %d maps to invalid coarse vertex %d", v, cv)
		}
	}
}

func TestCoarsenToTerminates(t *testing.T) {
	// A star graph stalls heavy-edge matching quickly; coarsenTo must not
	// loop forever.
	g := graph.NewUndirected(0)
	hub := g.AddVertex()
	for i := 0; i < 500; i++ {
		leaf := g.AddVertex()
		g.AddEdge(hub, leaf)
	}
	wg, _ := fromGraph(g)
	levels, maps := coarsenTo(wg, 10, rand.New(rand.NewSource(1)))
	if len(levels) != len(maps)+1 {
		t.Fatalf("levels/maps mismatch: %d vs %d", len(levels), len(maps))
	}
}

func TestFMRefineImprovesRandomBisection(t *testing.T) {
	g := gen.Cube3D(8)
	wg, _ := fromGraph(g)
	rng := rand.New(rand.NewSource(1))
	part := make([]uint8, wg.n())
	for i := range part {
		part[i] = uint8(rng.Intn(2))
	}
	before := wg.cutWeight(part)
	total := wg.totalVW()
	maxW := [2]int64{total/2 + total/10, total/2 + total/10}
	fmRefine(wg, part, maxW, rng)
	after := wg.cutWeight(part)
	if after >= before {
		t.Fatalf("FM did not improve: %d -> %d", before, after)
	}
	// Balance must hold.
	var w0 int64
	for v, p := range part {
		if p == 0 {
			w0 += int64(wg.vw[v])
		}
	}
	if w0 > maxW[0] || total-w0 > maxW[1] {
		t.Fatalf("FM broke balance: w0=%d total=%d max=%v", w0, total, maxW)
	}
}

func TestGrowBisectTargetsWeight(t *testing.T) {
	g := gen.Cube3D(6)
	wg, _ := fromGraph(g)
	target := wg.totalVW() / 2
	part := growBisect(wg, target, rand.New(rand.NewSource(1)))
	var w0 int64
	for v, p := range part {
		if p == 0 {
			w0 += int64(wg.vw[v])
		}
	}
	if w0 < target {
		t.Fatalf("side 0 weight %d below target %d", w0, target)
	}
	if w0 > target+target/2 {
		t.Fatalf("side 0 weight %d far above target %d", w0, target)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	g := gen.Cube3D(6)
	a1, err := PartitionKWay(g, 4, DefaultOptions(7))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := PartitionKWay(g, 4, DefaultOptions(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range g.Vertices() {
		if a1.Of(v) != a2.Of(v) {
			t.Fatal("same seed must give identical partitionings")
		}
	}
}
