// Package metis implements a from-scratch multilevel k-way graph
// partitioner in the METIS family (Karypis & Kumar): heavy-edge-matching
// coarsening, greedy-graph-growing initial bisection, Fiduccia–Mattheyses
// boundary refinement, and recursive bisection for k-way partitions. The
// paper uses METIS as the centralised "best-of-breed" quality benchmark
// (the dashed line of Figure 4); this package provides that reference
// line without the external binary.
package metis

import (
	"xdgp/internal/graph"
)

// wedge is a weighted edge endpoint in the internal multilevel
// representation.
type wedge struct {
	to int32
	w  int32
}

// wgraph is the weighted working graph used across coarsening levels.
// Vertices are dense 0..n-1; vw holds vertex weights (collapsed original
// vertices), adj holds weighted adjacency.
type wgraph struct {
	adj [][]wedge
	vw  []int32
}

func (wg *wgraph) n() int { return len(wg.vw) }

// totalVW returns the total vertex weight.
func (wg *wgraph) totalVW() int64 {
	var t int64
	for _, w := range wg.vw {
		t += int64(w)
	}
	return t
}

// fromGraph compacts the live vertices of g into a unit-weight wgraph and
// returns the index→VertexID mapping.
func fromGraph(g *graph.Graph) (*wgraph, []graph.VertexID) {
	ids := g.Vertices()
	index := make(map[graph.VertexID]int32, len(ids))
	for i, v := range ids {
		index[v] = int32(i)
	}
	wg := &wgraph{
		adj: make([][]wedge, len(ids)),
		vw:  make([]int32, len(ids)),
	}
	for i, v := range ids {
		wg.vw[i] = 1
		nbrs := g.Neighbors(v)
		lst := make([]wedge, 0, len(nbrs))
		for _, w := range nbrs {
			lst = append(lst, wedge{to: index[w], w: 1})
		}
		wg.adj[i] = lst
	}
	return wg, ids
}

// subgraph extracts the induced weighted subgraph over the given vertex
// indices and returns it with the local→parent index mapping.
func (wg *wgraph) subgraph(vertices []int32) (*wgraph, []int32) {
	local := make(map[int32]int32, len(vertices))
	for i, v := range vertices {
		local[v] = int32(i)
	}
	sub := &wgraph{
		adj: make([][]wedge, len(vertices)),
		vw:  make([]int32, len(vertices)),
	}
	for i, v := range vertices {
		sub.vw[i] = wg.vw[v]
		for _, e := range wg.adj[v] {
			if li, ok := local[e.to]; ok {
				sub.adj[i] = append(sub.adj[i], wedge{to: li, w: e.w})
			}
		}
	}
	return sub, append([]int32(nil), vertices...)
}

// cutWeight returns the total weight of edges crossing the bipartition
// part (each edge counted once).
func (wg *wgraph) cutWeight(part []uint8) int64 {
	var cut int64
	for v := range wg.adj {
		for _, e := range wg.adj[v] {
			if int32(v) < e.to && part[v] != part[e.to] {
				cut += int64(e.w)
			}
		}
	}
	return cut
}
