package adaptive

import (
	"testing"

	"xdgp/internal/bsp"
	"xdgp/internal/gen"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// idleProgram is a minimal vertex program that immediately halts, leaving
// the engine to the background partitioner.
type idleProgram struct{}

func (idleProgram) Init(ctx *bsp.VertexContext) any         { return nil }
func (idleProgram) Compute(ctx *bsp.VertexContext, _ []any) { ctx.VoteToHalt() }

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{S: -0.1, CapacityFactor: 1.1}); err == nil {
		t.Fatal("negative S must error")
	}
	if _, err := New(Config{S: 0.5, CapacityFactor: 0.9}); err == nil {
		t.Fatal("capacity factor < 1 must error")
	}
	svc, err := New(Config{S: 0.5, CapacityFactor: 1.1, Interval: 0})
	if err != nil {
		t.Fatal(err)
	}
	if svc.cfg.Interval != 1 {
		t.Fatal("Interval must default to 1")
	}
}

func TestAdaptiveReducesCutOnEngine(t *testing.T) {
	g := gen.Cube3D(8) // 512 vertices
	asn := partition.Hash(g, 4)
	before := partition.CutRatio(g, asn)
	e, err := bsp.NewEngine(g, asn, idleProgram{}, bsp.Config{Workers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	e.SetRepartitioner(svc)
	e.RunSupersteps(120)
	after := partition.CutRatio(g, e.Addr())
	if after > before-0.2 {
		t.Fatalf("cut ratio %.3f -> %.3f: engine-integrated heuristic below paper band", before, after)
	}
	if err := e.Addr().Validate(g); err != nil {
		t.Fatal(err)
	}
	if svc.TotalGranted() == 0 || svc.TotalRequested() < svc.TotalGranted() {
		t.Fatalf("bookkeeping: requested=%d granted=%d", svc.TotalRequested(), svc.TotalGranted())
	}
}

// TestAdaptiveWithDecoupledWorkers runs the background service on an
// engine whose compute-goroutine count differs from k: the service plans
// against partitions, so adaptation quality must not depend on workers.
func TestAdaptiveWithDecoupledWorkers(t *testing.T) {
	for _, workers := range []int{1, 3, 7} {
		g := gen.Cube3D(8)
		asn := partition.Hash(g, 4)
		before := partition.CutRatio(g, asn)
		e, err := bsp.NewEngine(g, asn, idleProgram{}, bsp.Config{Workers: workers, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		svc, err := New(DefaultConfig(1))
		if err != nil {
			t.Fatal(err)
		}
		e.SetRepartitioner(svc)
		e.RunSupersteps(120)
		after := partition.CutRatio(g, e.Addr())
		if after > before-0.2 {
			t.Fatalf("workers=%d: cut ratio %.3f -> %.3f below paper band", workers, before, after)
		}
		if err := e.Addr().Validate(g); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}

func TestAdaptiveRespectsCapacitiesFromBalancedStart(t *testing.T) {
	g := gen.HolmeKim(1200, 5, 0.1, 3)
	asn := partition.Random(g, 9, 3)
	e, err := bsp.NewEngine(g, asn, idleProgram{}, bsp.Config{Workers: 9, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	e.SetRepartitioner(svc)
	caps := partition.UniformCapacities(g.NumVertices(), 9, 1.10)
	for i := 0; i < 80; i++ {
		e.RunSuperstep()
		if !partition.WithinCapacities(e.Addr(), caps) {
			t.Fatalf("superstep %d: capacity exceeded: sizes=%v caps=%v",
				i, e.Addr().Sizes(), caps)
		}
	}
}

func TestIntervalSkipsSupersteps(t *testing.T) {
	g := gen.Cube3D(5)
	asn := partition.Hash(g, 4)
	e, err := bsp.NewEngine(g, asn, idleProgram{}, bsp.Config{Workers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1)
	cfg.Interval = 3
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.SetRepartitioner(svc)
	sts := e.RunSupersteps(6)
	// Only supersteps 0 and 3 may start migrations.
	for i, st := range sts {
		if i%3 != 0 && st.MigrationsStarted > 0 {
			t.Fatalf("superstep %d started migrations despite Interval=3", i)
		}
	}
}

func TestZeroWillingnessNeverMigrates(t *testing.T) {
	g := gen.Cube3D(5)
	asn := partition.Hash(g, 4)
	e, err := bsp.NewEngine(g, asn, idleProgram{}, bsp.Config{Workers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1)
	cfg.S = 0
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.SetRepartitioner(svc)
	for _, st := range e.RunSupersteps(10) {
		if st.MigrationsStarted != 0 {
			t.Fatal("s=0 must never migrate")
		}
	}
}

func TestSinglePartitionNoMigration(t *testing.T) {
	g := gen.Cube3D(4)
	asn := partition.Hash(g, 1)
	e, err := bsp.NewEngine(g, asn, idleProgram{}, bsp.Config{Workers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	e.SetRepartitioner(svc)
	for _, st := range e.RunSupersteps(5) {
		if st.MigrationsStarted != 0 {
			t.Fatal("k=1 must never migrate")
		}
	}
}

// skewProgram burns compute proportional to the vertex ID parity so that
// one partition measures hot, exercising the hot-spot extension.
type skewProgram struct{}

func (skewProgram) Init(ctx *bsp.VertexContext) any { return nil }
func (skewProgram) Compute(ctx *bsp.VertexContext, _ []any) {
	// Keep every vertex active so worker costs are measured each step.
	ctx.SendTo(ctx.ID(), struct{}{})
}

func TestHotSpotAwareShiftsLoadAway(t *testing.T) {
	// All vertices start on worker 0 (the hot spot); the hot-spot-aware
	// service must drain it faster towards the cool workers than the
	// plain service does in the same number of supersteps — and never
	// stack extra load onto it.
	build := func(hotAware bool) float64 {
		g := gen.HolmeKim(800, 4, 0.1, 5)
		asn := partition.NewAssignment(g.NumSlots(), 4)
		for _, v := range g.Vertices() {
			asn.Assign(v, 0)
		}
		e, err := bsp.NewEngine(g, asn, skewProgram{}, bsp.Config{Workers: 4, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(5)
		cfg.HotSpotAware = hotAware
		svc, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.SetRepartitioner(svc)
		e.RunSupersteps(40)
		return float64(e.Addr().Size(0))
	}
	plain := build(false)
	aware := build(true)
	// Plain adaptation has no reason to leave a zero-cut placement; the
	// hot-spot drain must break the stay-preference and unload at least
	// half of the hot worker.
	if aware > plain/2 {
		t.Fatalf("hot-spot-aware did not drain the hot worker: %v vs plain %v", aware, plain)
	}
}

func TestAdaptiveAbsorbsStreamChurn(t *testing.T) {
	// Engine-level version of the Figure 7(b) absorption property: grow
	// the graph 10 % via forest fire mid-run; the adaptive engine must end
	// with a cut ratio far below static hash on the same final topology.
	g := gen.Cube3D(7) // 343 vertices
	burst := gen.ForestFireExpansion(g, g.NumVertices()/10, gen.DefaultForestFire(), 11)

	asn := partition.Hash(g, 4)
	e, err := bsp.NewEngine(g, asn, idleProgram{}, bsp.Config{Workers: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	e.SetRepartitioner(svc)
	e.RunSupersteps(60) // settle
	e.SetStream(graph.NewSliceStream([]graph.Batch{burst}))
	e.RunSupersteps(60) // absorb

	adaptive := partition.CutRatio(e.Graph(), e.Addr())
	static := partition.CutRatio(e.Graph(), partition.Hash(e.Graph(), 4))
	if adaptive >= static*0.8 {
		t.Fatalf("adaptive %.3f vs static hash %.3f: churn not absorbed", adaptive, static)
	}
	if err := e.Addr().Validate(e.Graph()); err != nil {
		t.Fatal(err)
	}
}
