// Package adaptive integrates the greedy vertex-migration heuristic of
// internal/core into the BSP engine as the paper's background partitioning
// application (Section 3). It implements bsp.Repartitioner.
//
// The implementation follows the paper's two system protocols:
//
//   - Deferred vertex migration: requests returned from Plan enter the
//     engine's two-barrier window — addressing changes immediately (peers
//     are "notified" for superstep t+1), the physical move completes one
//     barrier later, and no message is lost (engine-side, paper Fig. 3).
//
//   - Worker-to-worker capacity messaging: migration quotas at superstep t
//     are computed from the predicted free capacities broadcast at the end
//     of superstep t−1 (C^{t+1}(i) = C^t(i) − V_o + V_i), never from
//     current global state — respecting Pregel's one-superstep messaging
//     delay. The service keeps that delayed view in knownFree.
//
// Decisions themselves use only vertex-local information: the partitions
// of a vertex's own neighbours (available locally because every worker
// hears migration notices for vertices adjacent to its own) and the
// delayed capacity vector.
//
// Program independence: with HotSpotAware off, a Plan pass reads only the
// topology, the assignment and the delayed capacity view — never the
// vertex values or message traffic of the program running above it — and
// consumes its RNG in an order determined by those inputs alone. Two
// engines running different vertex programs over the same seed, initial
// assignment and mutation stream therefore receive byte-identical
// migration plans (pinned by TestAnalyticsDoNotPerturbPartitionerRNG in
// internal/apps). HotSpotAware trades this away deliberately: it folds
// measured per-partition compute times into the advertised capacities,
// coupling placement to the workload.
package adaptive

import (
	"fmt"
	"math/rand"

	"xdgp/internal/activeset"
	"xdgp/internal/bsp"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// Config parameterises the background partitioner.
type Config struct {
	// S is the willingness to move (Section 2.3); the paper uses 0.5.
	S float64
	// CapacityFactor sizes partition capacities relative to the balanced
	// load (the paper's experiments use 1.10).
	CapacityFactor float64
	// Interval runs the migration decision every n supersteps (1 = every
	// superstep, the paper's continuous mode).
	Interval int
	// HotSpotAware enables the paper's second future-work extension
	// (Section 6): partitions that measured hotter than the mean in the
	// previous superstep advertise proportionally less free capacity, so
	// migration pressure drains towards cool workers.
	HotSpotAware bool
	// Incremental enables the active-set scheduler: a Plan pass examines
	// only vertices whose decision inputs could have changed — vertices
	// the barrier's mutation batch touched (View.MutatedVertices),
	// neighbours of vertices the service migrated (their Γ-counts shift
	// when the addressing changes), vertices that have not finished
	// deciding (failed the S coin, denied a quota that in-pass
	// competition exhausted, or still inside the deferred-migration
	// window), and — with HotSpotAware — every vertex of a partition
	// measuring hotter than the mean, since the hot-spot drain is driven
	// by load, not topology. Requesters every advertised quota column
	// rejects outright are parked per destination and re-woken when that
	// column turns positive (the delayed capacity view is re-derived
	// every pass, so graph growth, departures and hot-spot relaxation
	// all surface there). Steady-state Plan cost is proportional to
	// churn instead of |V|. Off by default (full sweep, the paper-exact
	// reference).
	Incremental bool
	// WorkloadWeight enables the workload term of the migration
	// objective: each member of Γ(v) votes for its partition with weight
	// 1 + WorkloadWeight·heat(w)/max(heat) instead of 1, where heat is
	// the frozen per-vertex read-heat view installed via SetHeat. Zero
	// (the default) keeps the paper-exact topology-only objective,
	// byte-identical plans included. See internal/core/heat.go for the
	// scoring model this mirrors.
	WorkloadWeight float64
	// Seed drives the move coins and tie-breaks.
	Seed int64
}

// DefaultConfig mirrors the paper's standard setting.
func DefaultConfig(seed int64) Config {
	return Config{S: 0.5, CapacityFactor: 1.10, Interval: 1, Seed: seed}
}

// Service is the adaptive repartitioning background application.
type Service struct {
	cfg Config
	rng *rand.Rand

	// knownFree is the delayed capacity knowledge: free slots per
	// partition as of the previous barrier's capacity broadcast.
	knownFree []int
	booted    bool

	// scratch
	counts  []int
	countsF []float64
	tied    []partition.ID
	quota   [][]int

	// Workload term (Config.WorkloadWeight, heat.go): the frozen heat
	// view, its precomputed vote multiplier, and whether the next Plan
	// still owes the frontier a hot-neighbourhood wake.
	heat      []float32
	heatScale float64
	heatDirty bool

	// Active-set scheduler state (Config.Incremental): active holds the
	// frontier/parking bookkeeping shared with internal/core, colQuota
	// the planning-pass per-pair quota by destination column (the
	// competition-free admission bound parking decisions test against).
	// seeded flips after the first Plan populates the frontier with
	// every live vertex.
	active   *activeset.Set
	colQuota []int
	seeded   bool

	// Totals for reporting.
	totalRequested int
	totalGranted   int
	totalExamined  int
}

// New creates the service. It returns an error for invalid configuration.
func New(cfg Config) (*Service, error) {
	if cfg.S < 0 || cfg.S > 1 {
		return nil, fmt.Errorf("adaptive: S must be in [0,1], got %g", cfg.S)
	}
	if cfg.CapacityFactor < 1.0 {
		return nil, fmt.Errorf("adaptive: CapacityFactor must be ≥ 1.0, got %g", cfg.CapacityFactor)
	}
	if cfg.WorkloadWeight < 0 {
		return nil, fmt.Errorf("adaptive: WorkloadWeight must be ≥ 0, got %g", cfg.WorkloadWeight)
	}
	if cfg.Interval < 1 {
		cfg.Interval = 1
	}
	return &Service{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// TotalRequested returns how many migration requests vertices have made
// (post-coin, pre-quota) over the service's lifetime.
func (s *Service) TotalRequested() int { return s.totalRequested }

// TotalGranted returns how many requests passed quota admission.
func (s *Service) TotalGranted() int { return s.totalGranted }

// TotalExamined returns how many per-vertex decisions the service has
// evaluated over its lifetime: |V| per pass on a full sweep, the active
// set when incremental — the denominator of the scheduler's win.
func (s *Service) TotalExamined() int { return s.totalExamined }

// DirtyCount returns the current size of the active set (0 when the
// scheduler is idle or Incremental is off).
func (s *Service) DirtyCount() int {
	if s.active == nil {
		return 0
	}
	return s.active.Len()
}

// ensureActive lazily builds the scheduler state (k is only known once a
// View arrives) and sizes it to the engine's vertex table.
func (s *Service) ensureActive(k, slots int) {
	if s.active == nil {
		s.active = activeset.New(k)
		s.colQuota = make([]int, k)
	}
	s.active.Grow(slots)
}

// Plan implements bsp.Repartitioner. It runs each worker's local decision
// pass and returns the granted migration requests.
func (s *Service) Plan(view *bsp.View) []bsp.MigrationRequest {
	g := view.Graph()
	if s.cfg.Incremental {
		// Collect this barrier's mutation notices even on supersteps the
		// Interval skips — the engine resets them every superstep, and a
		// wake lost here would never be re-delivered.
		s.ensureActive(view.K(), g.NumSlots())
		for _, v := range view.MutatedVertices() {
			if g.Has(v) {
				s.active.Mark(v)
			}
		}
	}
	if view.Superstep()%s.cfg.Interval != 0 {
		return nil
	}
	k := view.K()
	if k < 2 {
		return nil
	}
	addr := view.Addr()
	caps := partition.UniformCapacities(g.NumVertices(), k, s.cfg.CapacityFactor)

	if len(s.counts) != k {
		s.counts = make([]int, k)
		s.countsF = make([]float64, k)
		s.quota = make([][]int, k)
		for i := range s.quota {
			s.quota[i] = make([]int, k)
		}
	}
	if s.cfg.Incremental {
		s.wakeHotNeighborhoods(g)
	}

	// Capacity knowledge: the broadcast from the previous barrier. On the
	// very first run the loading phase's broadcast equals current state.
	sizes := addr.Sizes()
	if !s.booted || len(s.knownFree) != k {
		s.knownFree = make([]int, k)
		for j := 0; j < k; j++ {
			s.knownFree[j] = caps[j] - sizes[j]
		}
		s.booted = true
	}

	// Quotas from the delayed capacity view: Q(i,j) = ⌊free(j)/(k−1)⌋.
	// With hot-spot awareness, partitions measured hotter than the mean
	// advertise proportionally less free capacity.
	var costs []float64
	if s.cfg.HotSpotAware {
		costs = view.WorkerCosts()
	}
	meanCost := 0.0
	if len(costs) == k {
		for _, c := range costs {
			meanCost += c
		}
		meanCost /= float64(k)
	}
	for j := 0; j < k; j++ {
		free := s.knownFree[j]
		if free < 0 {
			free = 0
		}
		if len(costs) == k && meanCost > 0 && costs[j] > meanCost {
			free = int(float64(free) * meanCost / costs[j])
		}
		q := free / (k - 1)
		for i := 0; i < k; i++ {
			s.quota[i][j] = q
		}
		if s.colQuota != nil {
			s.colQuota[j] = q
		}
	}

	// Hotness per partition: fractional overload vs the mean measured
	// cost. A vertex on an overloaded partition will consider leaving
	// even when staying is locally optimal for the cut — load balancing
	// traded against locality, the point of the extension.
	hotness := make([]float64, k)
	if len(costs) == k && meanCost > 0 {
		for j := 0; j < k; j++ {
			if h := costs[j]/meanCost - 1; h > 0 {
				hotness[j] = h
			}
		}
	}

	var reqs []bsp.MigrationRequest
	granted := make([]int, k)  // inbound grants per partition
	departed := make([]int, k) // outbound grants per partition

	// decide evaluates one vertex and reports whether an incremental
	// schedule must keep it on the frontier: vertices that have not
	// finished deciding (inside the migration window, failed the S coin,
	// or denied a quota that in-pass competition exhausted) stay;
	// vertices that settled or migrated leave (a mover's wake re-marks
	// its neighbourhood below), and hard-denied requesters — every
	// tied-best destination advertising zero quota before any competitor
	// claimed it — park until that capacity shifts (planIncremental
	// unparks every destination whose column quota turns positive).
	decide := func(v graph.VertexID) (keep bool) {
		s.totalExamined++
		cur := addr.Of(v)
		if cur == partition.None {
			return false
		}
		if view.Migrating(v) {
			return true // mid-window: revisit once the move completes
		}
		if s.cfg.S < 1 && s.rng.Float64() >= s.cfg.S {
			return true // unwilling this pass: stays scheduled
		}
		best := s.bestPartitions(g, addr, v, cur)
		if best == nil {
			if hotness[cur] == 0 || s.rng.Float64() >= hotness[cur] {
				// Settled. While cur stays hot the hot-spot wake below
				// re-schedules the whole partition, so dropping here is
				// safe even when only the drain coin declined.
				return false
			}
			// Hot-spot drain: staying is locally optimal for the cut,
			// but the partition is overloaded — fall back to the best
			// destinations among the other partitions.
			best = s.bestOtherPartitions(g, addr, v, cur)
			if best == nil {
				return false
			}
		}
		s.totalRequested++
		s.rng.Shuffle(len(best), func(i, j int) { best[i], best[j] = best[j], best[i] })
		for _, dst := range best {
			if s.quota[cur][dst] > 0 {
				s.quota[cur][dst]--
				reqs = append(reqs, bsp.MigrationRequest{V: v, To: dst})
				granted[dst]++
				departed[cur]++
				s.totalGranted++
				return false // mover: its wake re-marks the neighbourhood
			}
		}
		if s.active != nil {
			hard := true
			for _, dst := range best {
				if s.colQuota[dst] > 0 {
					hard = false
					break
				}
			}
			if hard {
				s.active.Park(v, best)
				return false
			}
		}
		return true // competition-denied: the odds change next pass
	}

	if !s.cfg.Incremental {
		g.ForEachVertex(func(v graph.VertexID) { decide(v) })
	} else {
		s.planIncremental(g, addr, hotness, decide)
	}

	if s.cfg.Incremental {
		// The engine rewrites the addressing of every granted vertex at
		// this barrier, so the movers' neighbours see new Γ-counts on the
		// next pass: re-wake them (and the mover, which re-settles).
		// Departures also free capacity in the mover's source partition,
		// so vertices parked on it get another chance.
		for _, r := range reqs {
			s.active.MarkNeighborhood(g, r.V)
		}
		for j := 0; j < k; j++ {
			if departed[j] > 0 {
				s.active.UnparkDest(partition.ID(j))
			}
		}
	}

	// Broadcast predicted capacities for the next superstep:
	// C^{t+1}(i) = C^t(i) − V_in + V_out applied to the free view.
	for j := 0; j < k; j++ {
		s.knownFree[j] = caps[j] - (sizes[j] + granted[j] - departed[j])
	}
	return reqs
}

// planIncremental runs the decision pass over the active set only. The
// frontier is seeded with every live vertex on the first pass and woken
// by: the barrier's mutation notices (collected in Plan); any
// destination whose column quota turned positive — the capacity-shift
// event hard-parked requesters wait on, covering graph growth, migration
// departures and hot-spot scaling alike, since the delayed capacity view
// is re-derived every pass; and — when the hot-spot extension measures
// an overloaded partition — every vertex of that partition (load
// pressure is global, so the drain cannot be frontier-local). The
// frontier is drained in ascending vertex-ID order for deterministic RNG
// replay. decide's verdict keeps a vertex scheduled, settles it, or (for
// hard denials) parks it inside decide itself.
func (s *Service) planIncremental(g *graph.Graph, addr *partition.Assignment, hotness []float64, decide func(graph.VertexID) bool) {
	if !s.seeded {
		g.ForEachVertex(s.active.Mark)
		s.seeded = true
	}
	for j, q := range s.colQuota {
		if q > 0 {
			s.active.UnparkDest(partition.ID(j))
		}
	}
	anyHot := false
	for _, h := range hotness {
		if h > 0 {
			anyHot = true
			break
		}
	}
	if anyHot {
		g.ForEachVertex(func(v graph.VertexID) {
			if p := addr.Of(v); p != partition.None && hotness[p] > 0 {
				s.active.Mark(v)
			}
		})
	}

	for _, v := range s.active.Prepare(g.Has) {
		if decide(v) {
			s.active.Keep(v)
		} else {
			s.active.Unschedule(v)
		}
	}
	s.active.Commit()
}

// bestPartitions mirrors core's greedy rule: argmax over |Γ(v) ∩ P(i)|
// using only the locations of v's own neighbours; nil when the current
// partition is itself among the best (prefer to stay). On directed graphs
// both directions count — a cut edge costs communication whichever way
// messages flow (mentions reach celebrities along in-edges).
func (s *Service) bestPartitions(g *graph.Graph, addr *partition.Assignment, v graph.VertexID, cur partition.ID) []partition.ID {
	if s.heatScale != 0 {
		return s.bestPartitionsHeat(g, addr, v, cur)
	}
	counts := s.counts
	for i := range counts {
		counts[i] = 0
	}
	counts[cur]++
	countNeighborPartitions(g, addr, v, counts)
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if counts[cur] == max {
		return nil
	}
	s.tied = s.tied[:0]
	for i, c := range counts {
		if c == max {
			s.tied = append(s.tied, partition.ID(i))
		}
	}
	return s.tied
}

// countNeighborPartitions folds the partition of every neighbour of v
// into counts — both directions on digraphs, since a cut edge costs
// communication whichever way messages flow. Vertices untouched since
// the last arena compaction take the inlined zero-copy fast path; dirty
// ones go through the chunked cursor. Never allocates.
func countNeighborPartitions(g *graph.Graph, addr *partition.Assignment, v graph.VertexID, counts []int) {
	if nbrs, ok := g.CleanNeighbors(v); ok {
		tally(addr, counts, nbrs)
	} else {
		var c graph.Cursor
		c.Reset(g, v)
		for chunk := c.NextChunk(); chunk != nil; chunk = c.NextChunk() {
			tally(addr, counts, chunk)
		}
	}
	if !g.Directed() {
		return
	}
	if nbrs, ok := g.CleanInNeighbors(v); ok {
		tally(addr, counts, nbrs)
	} else {
		var c graph.Cursor
		c.ResetIn(g, v)
		for chunk := c.NextChunk(); chunk != nil; chunk = c.NextChunk() {
			tally(addr, counts, chunk)
		}
	}
}

func tally(addr *partition.Assignment, counts []int, nbrs []graph.VertexID) {
	for _, w := range nbrs {
		if pw := addr.Of(w); pw != partition.None {
			counts[pw]++
		}
	}
}

// bestOtherPartitions returns the tied argmax destinations over
// |Γ(v) ∩ P(i)| excluding the current partition — the fallback used by
// the hot-spot drain, which must leave even when staying is optimal.
func (s *Service) bestOtherPartitions(g *graph.Graph, addr *partition.Assignment, v graph.VertexID, cur partition.ID) []partition.ID {
	if s.heatScale != 0 {
		return s.bestOtherPartitionsHeat(g, addr, v, cur)
	}
	counts := s.counts
	for i := range counts {
		counts[i] = 0
	}
	countNeighborPartitions(g, addr, v, counts)
	max := -1
	for i, c := range counts {
		if partition.ID(i) != cur && c > max {
			max = c
		}
	}
	if max < 0 {
		return nil
	}
	s.tied = s.tied[:0]
	for i, c := range counts {
		if partition.ID(i) != cur && c == max {
			s.tied = append(s.tied, partition.ID(i))
		}
	}
	return s.tied
}

var _ bsp.Repartitioner = (*Service)(nil)
