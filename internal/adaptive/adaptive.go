// Package adaptive integrates the greedy vertex-migration heuristic of
// internal/core into the BSP engine as the paper's background partitioning
// application (Section 3). It implements bsp.Repartitioner.
//
// The implementation follows the paper's two system protocols:
//
//   - Deferred vertex migration: requests returned from Plan enter the
//     engine's two-barrier window — addressing changes immediately (peers
//     are "notified" for superstep t+1), the physical move completes one
//     barrier later, and no message is lost (engine-side, paper Fig. 3).
//
//   - Worker-to-worker capacity messaging: migration quotas at superstep t
//     are computed from the predicted free capacities broadcast at the end
//     of superstep t−1 (C^{t+1}(i) = C^t(i) − V_o + V_i), never from
//     current global state — respecting Pregel's one-superstep messaging
//     delay. The service keeps that delayed view in knownFree.
//
// Decisions themselves use only vertex-local information: the partitions
// of a vertex's own neighbours (available locally because every worker
// hears migration notices for vertices adjacent to its own) and the
// delayed capacity vector.
package adaptive

import (
	"fmt"
	"math/rand"

	"xdgp/internal/bsp"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// Config parameterises the background partitioner.
type Config struct {
	// S is the willingness to move (Section 2.3); the paper uses 0.5.
	S float64
	// CapacityFactor sizes partition capacities relative to the balanced
	// load (the paper's experiments use 1.10).
	CapacityFactor float64
	// Interval runs the migration decision every n supersteps (1 = every
	// superstep, the paper's continuous mode).
	Interval int
	// HotSpotAware enables the paper's second future-work extension
	// (Section 6): partitions that measured hotter than the mean in the
	// previous superstep advertise proportionally less free capacity, so
	// migration pressure drains towards cool workers.
	HotSpotAware bool
	// Seed drives the move coins and tie-breaks.
	Seed int64
}

// DefaultConfig mirrors the paper's standard setting.
func DefaultConfig(seed int64) Config {
	return Config{S: 0.5, CapacityFactor: 1.10, Interval: 1, Seed: seed}
}

// Service is the adaptive repartitioning background application.
type Service struct {
	cfg Config
	rng *rand.Rand

	// knownFree is the delayed capacity knowledge: free slots per
	// partition as of the previous barrier's capacity broadcast.
	knownFree []int
	booted    bool

	// scratch
	counts []int
	tied   []partition.ID
	quota  [][]int

	// Totals for reporting.
	totalRequested int
	totalGranted   int
}

// New creates the service. It returns an error for invalid configuration.
func New(cfg Config) (*Service, error) {
	if cfg.S < 0 || cfg.S > 1 {
		return nil, fmt.Errorf("adaptive: S must be in [0,1], got %g", cfg.S)
	}
	if cfg.CapacityFactor < 1.0 {
		return nil, fmt.Errorf("adaptive: CapacityFactor must be ≥ 1.0, got %g", cfg.CapacityFactor)
	}
	if cfg.Interval < 1 {
		cfg.Interval = 1
	}
	return &Service{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// TotalRequested returns how many migration requests vertices have made
// (post-coin, pre-quota) over the service's lifetime.
func (s *Service) TotalRequested() int { return s.totalRequested }

// TotalGranted returns how many requests passed quota admission.
func (s *Service) TotalGranted() int { return s.totalGranted }

// Plan implements bsp.Repartitioner. It runs each worker's local decision
// pass and returns the granted migration requests.
func (s *Service) Plan(view *bsp.View) []bsp.MigrationRequest {
	if view.Superstep()%s.cfg.Interval != 0 {
		return nil
	}
	k := view.K()
	if k < 2 {
		return nil
	}
	g := view.Graph()
	addr := view.Addr()
	caps := partition.UniformCapacities(g.NumVertices(), k, s.cfg.CapacityFactor)

	if len(s.counts) != k {
		s.counts = make([]int, k)
		s.quota = make([][]int, k)
		for i := range s.quota {
			s.quota[i] = make([]int, k)
		}
	}

	// Capacity knowledge: the broadcast from the previous barrier. On the
	// very first run the loading phase's broadcast equals current state.
	sizes := addr.Sizes()
	if !s.booted || len(s.knownFree) != k {
		s.knownFree = make([]int, k)
		for j := 0; j < k; j++ {
			s.knownFree[j] = caps[j] - sizes[j]
		}
		s.booted = true
	}

	// Quotas from the delayed capacity view: Q(i,j) = ⌊free(j)/(k−1)⌋.
	// With hot-spot awareness, partitions measured hotter than the mean
	// advertise proportionally less free capacity.
	var costs []float64
	if s.cfg.HotSpotAware {
		costs = view.WorkerCosts()
	}
	meanCost := 0.0
	if len(costs) == k {
		for _, c := range costs {
			meanCost += c
		}
		meanCost /= float64(k)
	}
	for j := 0; j < k; j++ {
		free := s.knownFree[j]
		if free < 0 {
			free = 0
		}
		if len(costs) == k && meanCost > 0 && costs[j] > meanCost {
			free = int(float64(free) * meanCost / costs[j])
		}
		q := free / (k - 1)
		for i := 0; i < k; i++ {
			s.quota[i][j] = q
		}
	}

	// Hotness per partition: fractional overload vs the mean measured
	// cost. A vertex on an overloaded partition will consider leaving
	// even when staying is locally optimal for the cut — load balancing
	// traded against locality, the point of the extension.
	hotness := make([]float64, k)
	if len(costs) == k && meanCost > 0 {
		for j := 0; j < k; j++ {
			if h := costs[j]/meanCost - 1; h > 0 {
				hotness[j] = h
			}
		}
	}

	var reqs []bsp.MigrationRequest
	granted := make([]int, k)  // inbound grants per partition
	departed := make([]int, k) // outbound grants per partition
	g.ForEachVertex(func(v graph.VertexID) {
		cur := addr.Of(v)
		if cur == partition.None || view.Migrating(v) {
			return
		}
		if s.cfg.S < 1 && s.rng.Float64() >= s.cfg.S {
			return
		}
		best := s.bestPartitions(g, addr, v, cur)
		if best == nil {
			if hotness[cur] == 0 || s.rng.Float64() >= hotness[cur] {
				return
			}
			// Hot-spot drain: staying is locally optimal for the cut,
			// but the partition is overloaded — fall back to the best
			// destinations among the other partitions.
			best = s.bestOtherPartitions(g, addr, v, cur)
			if best == nil {
				return
			}
		}
		s.totalRequested++
		s.rng.Shuffle(len(best), func(i, j int) { best[i], best[j] = best[j], best[i] })
		for _, dst := range best {
			if s.quota[cur][dst] > 0 {
				s.quota[cur][dst]--
				reqs = append(reqs, bsp.MigrationRequest{V: v, To: dst})
				granted[dst]++
				departed[cur]++
				s.totalGranted++
				break
			}
		}
	})

	// Broadcast predicted capacities for the next superstep:
	// C^{t+1}(i) = C^t(i) − V_in + V_out applied to the free view.
	for j := 0; j < k; j++ {
		s.knownFree[j] = caps[j] - (sizes[j] + granted[j] - departed[j])
	}
	return reqs
}

// bestPartitions mirrors core's greedy rule: argmax over |Γ(v) ∩ P(i)|
// using only the locations of v's own neighbours; nil when the current
// partition is itself among the best (prefer to stay). On directed graphs
// both directions count — a cut edge costs communication whichever way
// messages flow (mentions reach celebrities along in-edges).
func (s *Service) bestPartitions(g *graph.Graph, addr *partition.Assignment, v graph.VertexID, cur partition.ID) []partition.ID {
	counts := s.counts
	for i := range counts {
		counts[i] = 0
	}
	counts[cur]++
	for _, w := range g.Neighbors(v) {
		if pw := addr.Of(w); pw != partition.None {
			counts[pw]++
		}
	}
	if g.Directed() {
		for _, w := range g.InNeighbors(v) {
			if pw := addr.Of(w); pw != partition.None {
				counts[pw]++
			}
		}
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if counts[cur] == max {
		return nil
	}
	s.tied = s.tied[:0]
	for i, c := range counts {
		if c == max {
			s.tied = append(s.tied, partition.ID(i))
		}
	}
	return s.tied
}

// bestOtherPartitions returns the tied argmax destinations over
// |Γ(v) ∩ P(i)| excluding the current partition — the fallback used by
// the hot-spot drain, which must leave even when staying is optimal.
func (s *Service) bestOtherPartitions(g *graph.Graph, addr *partition.Assignment, v graph.VertexID, cur partition.ID) []partition.ID {
	counts := s.counts
	for i := range counts {
		counts[i] = 0
	}
	for _, w := range g.Neighbors(v) {
		if pw := addr.Of(w); pw != partition.None {
			counts[pw]++
		}
	}
	if g.Directed() {
		for _, w := range g.InNeighbors(v) {
			if pw := addr.Of(w); pw != partition.None {
				counts[pw]++
			}
		}
	}
	max := -1
	for i, c := range counts {
		if partition.ID(i) != cur && c > max {
			max = c
		}
	}
	if max < 0 {
		return nil
	}
	s.tied = s.tied[:0]
	for i, c := range counts {
		if partition.ID(i) != cur && c == max {
			s.tied = append(s.tied, partition.ID(i))
		}
	}
	return s.tied
}

var _ bsp.Repartitioner = (*Service)(nil)
