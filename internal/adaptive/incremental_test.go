package adaptive

import (
	"testing"

	"xdgp/internal/bsp"
	"xdgp/internal/gen"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// newIncrementalEngine wires an idle program, a k-way hash assignment and
// an incremental adaptive service over g.
func newIncrementalEngine(t *testing.T, g *graph.Graph, k int, seed int64) (*bsp.Engine, *Service) {
	t.Helper()
	e, err := bsp.NewEngine(g, partition.Hash(g, k), idleProgram{}, bsp.Config{Workers: k, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(seed)
	cfg.Incremental = true
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.SetRepartitioner(svc)
	return e, svc
}

// TestIncrementalReducesCutOnEngine mirrors the full-sweep quality pin:
// the active-set service must land in the same paper band.
func TestIncrementalReducesCutOnEngine(t *testing.T) {
	g := gen.Cube3D(8) // 512 vertices
	before := partition.CutRatio(g, partition.Hash(g, 4))
	e, svc := newIncrementalEngine(t, g, 4, 1)
	e.RunSupersteps(120)
	after := partition.CutRatio(g, e.Addr())
	if after > before-0.2 {
		t.Fatalf("cut ratio %.3f -> %.3f: incremental service below paper band", before, after)
	}
	if err := e.Addr().Validate(g); err != nil {
		t.Fatal(err)
	}
	if svc.TotalGranted() == 0 || svc.TotalRequested() < svc.TotalGranted() {
		t.Fatalf("bookkeeping: requested=%d granted=%d", svc.TotalRequested(), svc.TotalGranted())
	}
}

// TestIncrementalFrontierDrainsOnEngine pins the asymptotic win: once the
// partitioning settles and the engine goes quiet, a Plan pass examines a
// small residual set (quota-denied and still-unwilling vertices), far
// below |V| per superstep — then a mutation burst wakes only the region
// of change.
func TestIncrementalFrontierDrainsOnEngine(t *testing.T) {
	g := gen.Cube3D(8)
	n := g.NumVertices()
	e, svc := newIncrementalEngine(t, g, 4, 1)
	e.RunSupersteps(150)

	settled := svc.TotalExamined()
	e.RunSupersteps(30)
	tail := svc.TotalExamined() - settled
	if tail > 30*n/10 {
		t.Fatalf("settled service examined %d vertices over 30 supersteps (|V|=%d) — not incremental", tail, n)
	}

	// A small stream burst must wake the touched region, not the world.
	next := graph.VertexID(g.NumSlots())
	batch := graph.Batch{
		{Kind: graph.MutAddVertex, U: next},
		{Kind: graph.MutAddEdge, U: next, V: 0},
		{Kind: graph.MutAddEdge, U: next, V: 1},
	}
	e.SetStream(graph.NewSliceStream([]graph.Batch{batch}))
	before := svc.TotalExamined()
	e.RunSupersteps(2)
	woken := svc.TotalExamined() - before
	if woken == 0 {
		t.Fatal("mutation burst woke nothing")
	}
	if woken > n/2 {
		t.Fatalf("3-mutation burst triggered %d examinations of |V|=%d", woken, n)
	}
	if e.Addr().Of(next) == partition.None {
		t.Fatal("streamed vertex was not placed")
	}
	if err := e.Addr().Validate(g); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalMatchesFullSweepUnderChurn runs the same engine+stream
// twice — full sweep vs active set — and checks the incremental service
// stays in the same cut band while examining far fewer vertices.
func TestIncrementalMatchesFullSweepUnderChurn(t *testing.T) {
	build := func(incremental bool) (float64, *Service) {
		g := gen.Cube3D(7)
		e, err := bsp.NewEngine(g, partition.Hash(g, 4), idleProgram{}, bsp.Config{Workers: 4, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(3)
		cfg.Incremental = incremental
		svc, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.SetRepartitioner(svc)
		// Converge, then stream churn.
		e.RunSupersteps(100)
		scratch := g.Clone()
		ff := gen.DefaultForestFire()
		var batches []graph.Batch
		for i := 0; i < 10; i++ {
			b := gen.ForestFireExpansion(scratch, 10, ff, int64(i))
			scratch.Apply(b)
			batches = append(batches, b)
		}
		e.SetStream(graph.NewSliceStream(batches))
		e.RunSupersteps(60)
		if err := e.Addr().Validate(g); err != nil {
			t.Fatal(err)
		}
		return partition.CutRatio(g, e.Addr()), svc
	}
	fullCut, fullSvc := build(false)
	incCut, incSvc := build(true)
	if diff := incCut - fullCut; diff > 0.10 || diff < -0.10 {
		t.Fatalf("incremental cut %.3f not comparable to full sweep %.3f", incCut, fullCut)
	}
	if incSvc.TotalExamined() >= fullSvc.TotalExamined() {
		t.Fatalf("incremental examined %d >= full sweep %d", incSvc.TotalExamined(), fullSvc.TotalExamined())
	}
}

// TestIncrementalHotSpotWakesHotPartition checks the capacity-shift wake:
// with HotSpotAware on, vertices of an overloaded partition re-enter the
// frontier even after settling, so load drains exactly as with the full
// sweep.
func TestIncrementalHotSpotWakesHotPartition(t *testing.T) {
	run := func(incremental bool) int {
		g := gen.Cube3D(7)
		k := 4
		// Pathological start: everything on partition 0, so partition 0
		// measures hot as soon as costs exist.
		asn := partition.NewAssignment(g.NumSlots(), k)
		g.ForEachVertex(func(v graph.VertexID) { asn.Assign(v, 0) })
		prog := countProgram{}
		e, err := bsp.NewEngine(g, asn, prog, bsp.Config{Workers: k, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(5)
		cfg.HotSpotAware = true
		cfg.Incremental = incremental
		svc, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.SetRepartitioner(svc)
		e.RunSupersteps(80)
		return svc.TotalGranted()
	}
	full := run(false)
	inc := run(true)
	if inc == 0 {
		t.Fatal("incremental hot-spot drain never migrated")
	}
	// The drain volume must be in the same ballpark (same mechanism,
	// different RNG schedules).
	if inc < full/4 {
		t.Fatalf("incremental drained %d vs full sweep %d", inc, full)
	}
}

// countProgram never halts, so every partition accrues compute cost and
// the hot-spot statistics are live.
type countProgram struct{}

func (countProgram) Init(ctx *bsp.VertexContext) any { return 0 }
func (countProgram) Compute(ctx *bsp.VertexContext, _ []any) {
	ctx.SetValue(ctx.Value().(int) + 1)
}

// TestIncrementalIntervalKeepsWakes pins the Interval interaction: wakes
// arriving on skipped supersteps must not be lost.
func TestIncrementalIntervalKeepsWakes(t *testing.T) {
	g := gen.Cube3D(6)
	e, err := bsp.NewEngine(g, partition.Hash(g, 4), idleProgram{}, bsp.Config{Workers: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(7)
	cfg.Incremental = true
	cfg.Interval = 3
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.SetRepartitioner(svc)
	e.RunSupersteps(90)
	drained := svc.DirtyCount()

	// Deliver a batch on a superstep the Interval skips (90 % 3 == 0, so
	// the next two are skipped). The wake must survive until the next
	// planning pass.
	next := graph.VertexID(g.NumSlots())
	e.SetStream(graph.NewSliceStream([]graph.Batch{
		nil,
		{{Kind: graph.MutAddVertex, U: next}, {Kind: graph.MutAddEdge, U: next, V: 0}},
	}))
	e.RunSupersteps(2) // batch lands on superstep 91 — a skipped pass
	if svc.DirtyCount() <= drained {
		t.Fatal("mutation notice on a skipped superstep was lost")
	}
	e.RunSupersteps(4)
	if e.Addr().Of(next) == partition.None {
		t.Fatal("streamed vertex was not placed")
	}
	if err := e.Addr().Validate(g); err != nil {
		t.Fatal(err)
	}
}
