package adaptive

import (
	"testing"

	"xdgp/internal/bsp"
	"xdgp/internal/gen"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// heatView is a synthetic frozen heat snapshot: a small hot window
// rotated through the slot range by step, mirroring the fold trace the
// core tests replay, so successive installs heat different
// neighbourhoods.
func heatView(slots, step int) []float32 {
	h := make([]float32, slots)
	base := (step * 13) % slots
	for j := 0; j < 12; j++ {
		h[(base+j*j)%slots] += float32(12 - j)
	}
	return h
}

// adaptiveHeatModes are the scheduler paths the heat tests cover: the
// paper-exact full sweep and the active-set scheduler (whose SetHeat
// additionally owes the frontier a hot-neighbourhood wake).
var adaptiveHeatModes = []struct {
	name        string
	incremental bool
}{
	{"full", false},
	{"incremental", true},
}

// runHeatEngine converges an idle engine over a 512-vertex cube with
// the given workload weight, installing a fresh heat view every 10
// supersteps, and returns the final assignment table.
func runHeatEngine(t *testing.T, incremental bool, ww float64, install bool) []partition.ID {
	t.Helper()
	g := gen.Cube3D(8)
	e, err := bsp.NewEngine(g, partition.Hash(g, 4), idleProgram{}, bsp.Config{Workers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1)
	cfg.Incremental = incremental
	cfg.WorkloadWeight = ww
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.SetRepartitioner(svc)
	for i := 0; i < 80; i++ {
		if install && i%10 == 0 {
			svc.SetHeat(heatView(g.NumSlots(), i))
		}
		e.RunSuperstep()
	}
	if err := e.Addr().Validate(g); err != nil {
		t.Fatal(err)
	}
	return e.Addr().Table()
}

// TestSetHeatPassiveAtZeroWeight pins the passivity contract: with
// WorkloadWeight == 0, installing heat views mid-run (an embedder may
// ship them unconditionally) must not perturb the heuristic — same
// seed, byte-identical assignments, on both scheduler paths.
func TestSetHeatPassiveAtZeroWeight(t *testing.T) {
	for _, mode := range adaptiveHeatModes {
		t.Run(mode.name, func(t *testing.T) {
			a := runHeatEngine(t, mode.incremental, 0, false)
			b := runHeatEngine(t, mode.incremental, 0, true)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("slot %d diverged with heat installed at weight 0: %d vs %d", i, a[i], b[i])
				}
			}
		})
	}
}

// TestSetHeatDeterminismOnEngine pins the replay contract: with the
// workload term active and a fixed install schedule, the engine-side
// service must reproduce byte-identical assignments run over run.
func TestSetHeatDeterminismOnEngine(t *testing.T) {
	for _, mode := range adaptiveHeatModes {
		t.Run(mode.name, func(t *testing.T) {
			a := runHeatEngine(t, mode.incremental, 5, true)
			b := runHeatEngine(t, mode.incremental, 5, true)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("slot %d not reproducible at WorkloadWeight>0: %d vs %d", i, a[i], b[i])
				}
			}
		})
	}
}

// newScoringFixture builds the tie-break fixture shared with the core
// tests: vertex 0 on partition 0 with two neighbours on partition 1
// (vertices 1, 3) and two on partition 2 (vertices 2, 4) — an exact
// tie, and either destination beats staying.
func newScoringFixture() (*graph.Graph, *partition.Assignment) {
	g := graph.NewUndirected(8)
	g.Apply(graph.Batch{
		{Kind: graph.MutAddEdge, U: 0, V: 1},
		{Kind: graph.MutAddEdge, U: 0, V: 2},
		{Kind: graph.MutAddEdge, U: 0, V: 3},
		{Kind: graph.MutAddEdge, U: 0, V: 4},
	})
	asn := partition.NewAssignment(g.NumSlots(), 3)
	asn.Assign(0, 0)
	asn.Assign(1, 1)
	asn.Assign(2, 2)
	asn.Assign(3, 1)
	asn.Assign(4, 2)
	return g, asn
}

// newScoringService builds a service with scratch sized for direct
// scorer calls (Plan normally allocates it from the view).
func newScoringService(t *testing.T, k int, ww float64) *Service {
	t.Helper()
	cfg := DefaultConfig(1)
	cfg.WorkloadWeight = ww
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc.counts = make([]int, k)
	svc.countsF = make([]float64, k)
	return svc
}

// TestHeatWeightedScoringOnService checks the service-side scorers
// change behaviour when they should: heat on vertex 2 must break the
// two-way destination tie toward partition 2, and the hot-spot drain
// variant must agree.
func TestHeatWeightedScoringOnService(t *testing.T) {
	g, asn := newScoringFixture()
	svc := newScoringService(t, 3, 4)
	// A short view (covering slots 0..2 only) also exercises the
	// vertices-past-the-view default vote of 1.
	svc.SetHeat([]float32{0, 0, 3})
	if svc.heatScale == 0 {
		t.Fatal("SetHeat with positive weight and heat must activate the term")
	}

	if tied := svc.bestPartitionsHeat(g, asn, 0, 0); len(tied) != 1 || tied[0] != 2 {
		t.Fatalf("bestPartitionsHeat = %v, want the hot partition [2]", tied)
	}
	if tied := svc.bestOtherPartitionsHeat(g, asn, 0, 0); len(tied) != 1 || tied[0] != 2 {
		t.Fatalf("bestOtherPartitionsHeat = %v, want the hot partition [2]", tied)
	}

	// Weight off: SetHeat stays passive and the scorer reproduces the
	// unweighted two-way tie.
	cold := newScoringService(t, 3, 0)
	cold.SetHeat([]float32{0, 0, 3})
	if cold.heatScale != 0 {
		t.Fatal("SetHeat must stay passive at WorkloadWeight == 0")
	}
	if tied := cold.bestPartitionsHeat(g, asn, 0, 0); len(tied) != 2 {
		t.Fatalf("tied = %v at weight 0, want the untouched two-way tie", tied)
	}

	// A nil view deactivates the term again.
	svc.SetHeat(nil)
	if svc.heatScale != 0 {
		t.Fatal("SetHeat(nil) must deactivate the workload term")
	}
}

// TestHeatWeighingCoversBothDirections pins the digraph contract: on a
// directed graph the weighted Γ-count weighs out- AND in-neighbours,
// like the unweighted scorer it mirrors.
func TestHeatWeighingCoversBothDirections(t *testing.T) {
	g := graph.NewDirected(4)
	g.Apply(graph.Batch{
		{Kind: graph.MutAddEdge, U: 0, V: 1}, // out-neighbour of 0
		{Kind: graph.MutAddEdge, U: 2, V: 0}, // in-neighbour of 0
	})
	asn := partition.NewAssignment(g.NumSlots(), 3)
	asn.Assign(0, 0)
	asn.Assign(1, 1)
	asn.Assign(2, 2)

	svc := newScoringService(t, 3, 4)
	svc.SetHeat([]float32{0, 0, 2})
	// Partition 1 holds the cold out-neighbour (vote 1), partition 2
	// the hot in-neighbour (vote 1 + 4·2/2 = 5): unique argmax.
	if tied := svc.bestPartitionsHeat(g, asn, 0, 0); len(tied) != 1 || tied[0] != 2 {
		t.Fatalf("tied = %v, want the hot in-neighbour's partition [2]", tied)
	}
}
