package adaptive

import (
	"testing"

	"xdgp/internal/gen"
)

// PR 3's snapshot path exports partitioner state across package
// boundaries, so this audit pins the adaptive service's exposure
// surface the same way PR 2 pinned View.WorkerCosts and Engine.History:
//
//   - TotalRequested/TotalGranted/TotalExamined/DirtyCount return plain
//     ints — values, nothing to alias;
//   - Plan allocates its request slice fresh on every pass (the engine
//     consumes it at the same barrier; no scratch buffer is ever handed
//     out);
//   - the service's scratch (counts, tied, quota) and scheduler state
//     (active, colQuota) are unexported and unreachable;
//   - the daemon checkpoints core.Partitioner, not Service, so no
//     Service state crosses the snapshot boundary at all.
//
// The test below locks in the observable part of that contract: service
// bookkeeping stays internally consistent and idle re-reads are stable,
// which breaks if any caller-visible buffer were reused across passes.

func TestServiceAccessorBookkeeping(t *testing.T) {
	g := gen.Cube3D(8)
	e, svc := newIncrementalEngine(t, g, 4, 1)
	e.RunSupersteps(20)

	requested, granted := svc.TotalRequested(), svc.TotalGranted()
	examined, dirty := svc.TotalExamined(), svc.DirtyCount()
	if examined == 0 {
		t.Fatal("service never examined a vertex")
	}
	if requested < granted {
		t.Fatalf("requested=%d < granted=%d", requested, granted)
	}
	// Idle accessor re-reads must be stable (values, not views of
	// mutating internals).
	if svc.TotalRequested() != requested || svc.TotalGranted() != granted ||
		svc.TotalExamined() != examined || svc.DirtyCount() != dirty {
		t.Fatal("idle accessor re-reads diverged")
	}
	// Further passes keep totals monotone — a scratch-aliasing bug that
	// rewrites granted requests after accounting shows up here.
	e.RunSupersteps(10)
	if svc.TotalRequested() < requested || svc.TotalGranted() < granted || svc.TotalExamined() < examined {
		t.Fatalf("totals went backwards: requested %d->%d granted %d->%d examined %d->%d",
			requested, svc.TotalRequested(), granted, svc.TotalGranted(), examined, svc.TotalExamined())
	}
}
