package adaptive

import (
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// This file is the BSP-side mirror of internal/core's workload term
// (see internal/core/heat.go for the scoring model). The service does
// not sample or decay heat itself — it runs inside a compute engine
// with no serving plane — it consumes a frozen per-slot heat view
// installed by the embedder via SetHeat, e.g. a core.HeatSnapshot
// shipped from the serving daemon or a trace replayed by a test.

// SetHeat installs the decayed read-heat view the workload term scores
// against: heat[slot] is the vertex's accumulated decayed read count,
// exactly the shape core.(*Partitioner).HeatSnapshot returns. The slice
// is retained, not copied — callers hand over ownership. Passing nil
// (or all-zero heat) deactivates the term; so does WorkloadWeight == 0,
// under which SetHeat is completely passive and plans stay
// byte-identical to a heat-free run.
//
// With the incremental scheduler, the next Plan pass re-wakes the
// neighbourhood of every vertex whose heat is non-zero: their members'
// votes changed, so settled decisions around them must be re-examined.
func (s *Service) SetHeat(heat []float32) {
	s.heat = heat
	max := 0.0
	for _, h := range heat {
		if m := float64(h); m > max {
			max = m
		}
	}
	if s.cfg.WorkloadWeight > 0 && max > 0 {
		s.heatScale = s.cfg.WorkloadWeight / max
		s.heatDirty = true
	} else {
		s.heatScale = 0
	}
}

// wakeHotNeighborhoods marks the frontier around every hot vertex after
// a SetHeat, so a converged incremental schedule re-examines the
// decisions the new heat view perturbs. Runs at most once per SetHeat,
// from Plan (the frontier does not exist before the first View).
func (s *Service) wakeHotNeighborhoods(g *graph.Graph) {
	if !s.heatDirty || s.heatScale == 0 || s.active == nil {
		s.heatDirty = false
		return
	}
	s.heatDirty = false
	for i, h := range s.heat {
		if v := graph.VertexID(i); h > 0 && g.Has(v) {
			s.active.MarkNeighborhood(g, v)
		}
	}
}

// vote is a Γ-member's contribution to its partition's score:
// 1 + WorkloadWeight·heat(w)/max(heat), exactly 1 for cold vertices
// (and for vertices past the heat view, which arrived after it was
// taken) — so cold regions reproduce the integer votes, ties included.
func (s *Service) vote(w graph.VertexID) float64 {
	if i := int(w); i < len(s.heat) {
		return 1 + s.heatScale*float64(s.heat[i])
	}
	return 1
}

// bestPartitionsHeat is the heat-weighted form of bestPartitions: nil
// when the current partition is among the argmax, the tied winners
// otherwise.
func (s *Service) bestPartitionsHeat(g *graph.Graph, addr *partition.Assignment, v graph.VertexID, cur partition.ID) []partition.ID {
	countsF := s.countsF
	for i := range countsF {
		countsF[i] = 0
	}
	// Self-vote stays 1 even for a hot decider — co-location with
	// yourself is free, and inflating it would anchor hot vertices in
	// place (see core's heat scorer).
	countsF[cur]++
	s.weighNeighborPartitions(g, addr, v, countsF)
	max := 0.0
	for _, c := range countsF {
		if c > max {
			max = c
		}
	}
	if countsF[cur] == max {
		return nil
	}
	s.tied = s.tied[:0]
	for i, c := range countsF {
		if c == max {
			s.tied = append(s.tied, partition.ID(i))
		}
	}
	return s.tied
}

// bestOtherPartitionsHeat is the heat-weighted hot-spot drain fallback:
// the tied argmax excluding the current partition.
func (s *Service) bestOtherPartitionsHeat(g *graph.Graph, addr *partition.Assignment, v graph.VertexID, cur partition.ID) []partition.ID {
	countsF := s.countsF
	for i := range countsF {
		countsF[i] = 0
	}
	s.weighNeighborPartitions(g, addr, v, countsF)
	max, seen := 0.0, false
	for i, c := range countsF {
		if partition.ID(i) != cur && (!seen || c > max) {
			max, seen = c, true
		}
	}
	if !seen {
		return nil
	}
	s.tied = s.tied[:0]
	for i, c := range countsF {
		if partition.ID(i) != cur && c == max {
			s.tied = append(s.tied, partition.ID(i))
		}
	}
	return s.tied
}

// weighNeighborPartitions is countNeighborPartitions with per-member
// vote weights — both directions on digraphs, zero-copy fast path when
// the adjacency is clean.
func (s *Service) weighNeighborPartitions(g *graph.Graph, addr *partition.Assignment, v graph.VertexID, countsF []float64) {
	weigh := func(nbrs []graph.VertexID) {
		for _, w := range nbrs {
			if pw := addr.Of(w); pw != partition.None {
				countsF[pw] += s.vote(w)
			}
		}
	}
	if nbrs, ok := g.CleanNeighbors(v); ok {
		weigh(nbrs)
	} else {
		var c graph.Cursor
		c.Reset(g, v)
		for chunk := c.NextChunk(); chunk != nil; chunk = c.NextChunk() {
			weigh(chunk)
		}
	}
	if !g.Directed() {
		return
	}
	if nbrs, ok := g.CleanInNeighbors(v); ok {
		weigh(nbrs)
	} else {
		var c graph.Cursor
		c.ResetIn(g, v)
		for chunk := c.NextChunk(); chunk != nil; chunk = c.NextChunk() {
			weigh(chunk)
		}
	}
}
