package apps

import (
	"xdgp/internal/bsp"
)

// PageRank computes R rounds of the classic damped PageRank and halts. The
// paper's introduction motivates partitioning quality with exactly this
// class of content-ranking random-walk algorithms.
type PageRank struct {
	// N is the vertex count used for the uniform prior (fixed at start;
	// PageRank is run on frozen topology).
	N int
	// Rounds is the number of power iterations before halting.
	Rounds int
	// Damping is the damping factor (0.85 classically).
	Damping float64
}

// NewPageRank returns a PageRank program with the classic damping of 0.85.
func NewPageRank(n, rounds int) *PageRank {
	return &PageRank{N: n, Rounds: rounds, Damping: 0.85}
}

// Init gives every vertex the uniform prior 1/N.
func (p *PageRank) Init(ctx *bsp.VertexContext) any { return 1 / float64(p.N) }

// Compute implements one power-iteration step per superstep.
func (p *PageRank) Compute(ctx *bsp.VertexContext, msgs []any) {
	if ctx.Superstep() > 0 {
		sum := 0.0
		for _, m := range msgs {
			if x, ok := m.(float64); ok {
				sum += x
			}
		}
		ctx.SetValue((1-p.Damping)/float64(p.N) + p.Damping*sum)
	}
	if ctx.Superstep() < p.Rounds {
		if d := ctx.Degree(); d > 0 {
			share := ctx.Value().(float64) / float64(d)
			ctx.SendToNeighbors(share)
		}
	} else {
		ctx.VoteToHalt()
	}
}

// CombineMessages sums rank contributions at the sender (Pregel combiner),
// cutting message volume on high-degree destinations.
func (p *PageRank) CombineMessages(a, b any) any {
	af, aok := a.(float64)
	bf, bok := b.(float64)
	if !aok || !bok {
		return a
	}
	return af + bf
}

var (
	_ bsp.Program         = (*PageRank)(nil)
	_ bsp.MessageCombiner = (*PageRank)(nil)
)
