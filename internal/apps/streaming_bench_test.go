package apps

import (
	"math/rand"
	"testing"

	"xdgp/internal/bsp"
	"xdgp/internal/gen"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// BenchmarkStreamingCCChurn measures the steady-state cost of absorbing one
// churn batch with the self-repairing connected-components program: a
// converged BA(10000, 3) instance takes a batch of paired edge rewires and
// is drained back to quiescence per iteration. This is the incremental
// path's headline — re-flood work proportional to the damage, not to |V|.
func BenchmarkStreamingCCChurn(b *testing.B) {
	const (
		n        = 10000
		k        = 8
		rewires  = 100
		drainCap = 2000
	)
	g := gen.BarabasiAlbert(n, 3, 1)
	e, err := bsp.NewEngine(g, partition.Hash(g, k), NewStreamingCC(), bsp.Config{Workers: k, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if _, done := e.RunUntilQuiescent(drainCap); !done {
		b.Fatal("initial computation did not converge")
	}

	// Pre-generate b.N batches against an evolving shadow so every
	// iteration applies live rewires; the paired add/remove keeps |E|
	// stationary across the whole run.
	rng := rand.New(rand.NewSource(2))
	shadow := g.Clone()
	var verts []graph.VertexID
	var edges [][2]graph.VertexID
	shadow.ForEachVertex(func(v graph.VertexID) { verts = append(verts, v) })
	shadow.ForEachEdge(func(u, v graph.VertexID) { edges = append(edges, [2]graph.VertexID{u, v}) })
	batches := make([]graph.Batch, b.N)
	for i := range batches {
		bat := make(graph.Batch, 0, 2*rewires)
		for j := 0; j < rewires && len(edges) > 0; j++ {
			idx := rng.Intn(len(edges))
			u, v := edges[idx][0], edges[idx][1]
			edges[idx] = edges[len(edges)-1]
			edges = edges[:len(edges)-1]
			shadow.RemoveEdge(u, v)
			bat = append(bat, graph.Mutation{Kind: graph.MutRemoveEdge, U: u, V: v})
		}
		for j := 0; j < rewires; j++ {
			for tries := 0; tries < 32; tries++ {
				u := verts[rng.Intn(len(verts))]
				v := verts[rng.Intn(len(verts))]
				if u != v && !shadow.HasEdge(u, v) {
					shadow.AddEdge(u, v)
					edges = append(edges, [2]graph.VertexID{u, v})
					bat = append(bat, graph.Mutation{Kind: graph.MutAddEdge, U: u, V: v})
					break
				}
			}
		}
		batches[i] = bat
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.SetStream(graph.NewSliceStream([]graph.Batch{batches[i]}))
		if _, done := e.RunUntilQuiescent(drainCap); !done {
			b.Fatalf("iteration %d did not re-converge", i)
		}
	}
}
