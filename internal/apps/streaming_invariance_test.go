package apps

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"xdgp/internal/adaptive"
	"xdgp/internal/bsp"
	"xdgp/internal/gen"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// Invariance and determinism pins for the streaming programs: simulated
// stats and results must be byte-identical for any worker count (with and
// without combiners), two identical runs must agree bit-for-bit in both
// scheduling modes, and the choice of analytics program must not perturb
// the adaptive partitioner's RNG stream.

// invariancePlan is the fixed workload the pins run: a BA(300, 2) seed
// graph, 40 churn batches over its ID space consumed one per superstep,
// then a drain to quiescence with the adaptive service migrating
// underneath.
type invariancePlan struct {
	prog        func() bsp.Program
	workers     int
	incremental bool
	adapt       bool
}

const (
	invVertices = 300
	invBatches  = 40
	invDrainCap = 900
	invK        = 4
)

func invariantChurn(seed int64) []graph.Batch {
	rng := rand.New(rand.NewSource(seed))
	batches := make([]graph.Batch, invBatches)
	for i := range batches {
		b := make(graph.Batch, 0, 8)
		for j := 0; j < 8; j++ {
			u := graph.VertexID(rng.Intn(invVertices + 16))
			v := graph.VertexID(rng.Intn(invVertices + 16))
			switch r := rng.Intn(100); {
			case r < 45:
				b = append(b, graph.Mutation{Kind: graph.MutAddEdge, U: u, V: v})
			case r < 75:
				b = append(b, graph.Mutation{Kind: graph.MutRemoveEdge, U: u, V: v})
			case r < 90:
				b = append(b, graph.Mutation{Kind: graph.MutAddVertex, U: u})
			default:
				b = append(b, graph.Mutation{Kind: graph.MutRemoveVertex, U: u})
			}
		}
		batches[i] = b
	}
	return batches
}

// runInvariant executes the plan and returns the full superstep history,
// every live vertex's value rendered to a string (pointer values print
// their pointees, so this is a deep, comparable encoding), and the final
// assignment table.
func runInvariant(t *testing.T, p invariancePlan, batches []graph.Batch) ([]bsp.SuperstepStats, map[graph.VertexID]string, map[graph.VertexID]partition.ID) {
	t.Helper()
	g := gen.BarabasiAlbert(invVertices, 2, 5)
	prog := p.prog()
	e, err := bsp.NewEngine(g, partition.Hash(g, invK), prog, bsp.Config{Workers: p.workers, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if p.adapt {
		cfg := adaptive.DefaultConfig(13)
		cfg.Incremental = p.incremental
		svc, err := adaptive.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.SetRepartitioner(svc)
	}
	e.SetStream(graph.NewSliceStream(batches))
	e.RunSupersteps(invBatches)
	if _, done := e.RunUntilQuiescent(invDrainCap); !done {
		t.Fatalf("no quiescence within %d supersteps", invDrainCap)
	}
	values := make(map[graph.VertexID]string)
	assign := make(map[graph.VertexID]partition.ID)
	g.ForEachVertex(func(v graph.VertexID) {
		values[v] = fmt.Sprintf("%v", e.Value(v))
		assign[v] = e.Addr().Of(v)
	})
	return e.History(), values, assign
}

// statsEqual compares superstep stats exactly, except Time, where float
// summation order across workers differs — 1e-9 matches the engine's own
// invariance tests.
func statsEqual(a, b bsp.SuperstepStats) bool {
	ta, tb := a.Time, b.Time
	a.Time, b.Time = 0, 0
	return a == b && math.Abs(ta-tb) < 1e-9
}

func diffRuns(t *testing.T, label string,
	h1 []bsp.SuperstepStats, v1 map[graph.VertexID]string, a1 map[graph.VertexID]partition.ID,
	h2 []bsp.SuperstepStats, v2 map[graph.VertexID]string, a2 map[graph.VertexID]partition.ID) {
	t.Helper()
	if len(h1) != len(h2) {
		t.Fatalf("%s: superstep counts differ: %d vs %d", label, len(h1), len(h2))
	}
	for i := range h1 {
		if !statsEqual(h1[i], h2[i]) {
			t.Fatalf("%s: superstep %d stats differ:\n%+v\n%+v", label, i, h1[i], h2[i])
		}
	}
	if !reflect.DeepEqual(v1, v2) {
		t.Fatalf("%s: vertex values differ", label)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Fatalf("%s: final assignments differ", label)
	}
}

// streamingVariants lists each program in its combiner-on and (for those
// with a combiner) combiner-off forms.
func streamingVariants() []struct {
	name string
	prog func() bsp.Program
} {
	return []struct {
		name string
		prog func() bsp.Program
	}{
		{"cc", func() bsp.Program { return NewStreamingCC() }},
		{"cc-nocombine", func() bsp.Program { return WithoutCombiner{P: NewStreamingCC()} }},
		{"sssp", func() bsp.Program { return NewStreamingSSSP(0) }},
		{"sssp-nocombine", func() bsp.Program { return WithoutCombiner{P: NewStreamingSSSP(0)} }},
		{"pagerank", func() bsp.Program { return NewStreamingPageRank() }},
	}
}

// TestStreamingWorkerCountInvariance pins that per-superstep stats,
// results and final assignments are byte-identical for Workers ∈ {1, 2, 8}
// under churn with migrations in flight, with and without combiners.
func TestStreamingWorkerCountInvariance(t *testing.T) {
	batches := invariantChurn(21)
	for _, v := range streamingVariants() {
		ref := invariancePlan{prog: v.prog, workers: 4, adapt: true}
		h0, v0, a0 := runInvariant(t, ref, batches)
		for _, workers := range []int{1, 2, 8} {
			p := ref
			p.workers = workers
			h, vals, asn := runInvariant(t, p, batches)
			diffRuns(t, fmt.Sprintf("%s workers=%d", v.name, workers), h0, v0, a0, h, vals, asn)
		}
	}
}

// TestStreamingCombinerEquivalence pins that combining changes only the
// message statistics, never the results: values and assignments match the
// uncombined run, and the combiner strictly reduces priced messages on
// this workload.
func TestStreamingCombinerEquivalence(t *testing.T) {
	batches := invariantChurn(22)
	for _, c := range []struct {
		name string
		on   func() bsp.Program
		off  func() bsp.Program
	}{
		{"cc", func() bsp.Program { return NewStreamingCC() },
			func() bsp.Program { return WithoutCombiner{P: NewStreamingCC()} }},
		{"sssp", func() bsp.Program { return NewStreamingSSSP(0) },
			func() bsp.Program { return WithoutCombiner{P: NewStreamingSSSP(0)} }},
	} {
		hOn, vOn, aOn := runInvariant(t, invariancePlan{prog: c.on, workers: 3, adapt: true}, batches)
		hOff, vOff, aOff := runInvariant(t, invariancePlan{prog: c.off, workers: 3, adapt: true}, batches)
		if !reflect.DeepEqual(vOn, vOff) {
			t.Fatalf("%s: combiner changed the results", c.name)
		}
		if !reflect.DeepEqual(aOn, aOff) {
			t.Fatalf("%s: combiner changed the final assignments", c.name)
		}
		on, off := bsp.Summarize(hOn), bsp.Summarize(hOff)
		if onMsgs, offMsgs := on.LocalMsgs+on.RemoteMsgs, off.LocalMsgs+off.RemoteMsgs; onMsgs >= offMsgs {
			t.Fatalf("%s: combiner did not reduce messages: %d vs %d", c.name, onMsgs, offMsgs)
		}
	}
}

// TestStreamingDeterminism pins bit-for-bit reproducibility: a fixed seed
// and churn stream give identical histories (Time included — the worker
// count is fixed), values and assignments across two full runs, in both
// the full-sweep and incremental scheduling modes.
func TestStreamingDeterminism(t *testing.T) {
	batches := invariantChurn(23)
	for _, v := range streamingVariants() {
		for _, incremental := range []bool{false, true} {
			p := invariancePlan{prog: v.prog, workers: 3, adapt: true, incremental: incremental}
			h1, v1, a1 := runInvariant(t, p, batches)
			h2, v2, a2 := runInvariant(t, p, batches)
			label := fmt.Sprintf("%s incremental=%v", v.name, incremental)
			if !reflect.DeepEqual(h1, h2) {
				t.Fatalf("%s: histories differ between identical runs", label)
			}
			diffRuns(t, label, h1, v1, a1, h2, v2, a2)
		}
	}
}

// TestAnalyticsDoNotPerturbPartitionerRNG pins that the adaptive service's
// decisions depend only on the topology and the assignment, not on which
// analytics program runs above it (hot-spot awareness off): streaming CC
// and streaming PageRank over the same seed and churn stream must land on
// identical final assignments.
func TestAnalyticsDoNotPerturbPartitionerRNG(t *testing.T) {
	batches := invariantChurn(24)
	for _, incremental := range []bool{false, true} {
		var assigns []map[graph.VertexID]partition.ID
		for _, prog := range []func() bsp.Program{
			func() bsp.Program { return NewStreamingCC() },
			func() bsp.Program { return NewStreamingPageRank() },
		} {
			_, _, a := runInvariant(t, invariancePlan{prog: prog, workers: 2, adapt: true, incremental: incremental}, batches)
			assigns = append(assigns, a)
		}
		if !reflect.DeepEqual(assigns[0], assigns[1]) {
			t.Fatalf("incremental=%v: program choice perturbed the partitioner: assignments differ", incremental)
		}
	}
}
