package apps

import (
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"xdgp/internal/adaptive"
	"xdgp/internal/bsp"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// Differential harness for the streaming programs: run randomized churn
// batches through an engine (with and without the adaptive repartitioner),
// run to quiescence after every batch, and diff the vertex values against
// the from-scratch oracles. On divergence the failing sequence is shrunk
// modeltest-style (binary-search the shortest failing prefix, then greedily
// drop interior batches) before reporting.

// churnSlotBudget bounds the vertex ID space of generated mutations. Small
// graphs shake out repair bugs fastest: every mutation is a large relative
// change, and oracle checks stay cheap enough to run after every batch.
const churnSlotBudget = 48

type streamingCase struct {
	name string
	prog func() bsp.Program
	// batchCap bounds the supersteps allowed to re-quiesce after one
	// batch. PageRank needs headroom: residual waves die geometrically
	// but slowly near the announcement tolerance.
	batchCap int
}

func streamingCases() []streamingCase {
	return []streamingCase{
		{name: "cc", prog: func() bsp.Program { return NewStreamingCC() }, batchCap: 400},
		{name: "sssp", prog: func() bsp.Program { return NewStreamingSSSP(0) }, batchCap: 400},
		{name: "pagerank", prog: func() bsp.Program { return NewStreamingPageRank() }, batchCap: 900},
	}
}

// randChurnBatch draws 1–5 state-agnostic mutations: IDs come from the
// fixed slot budget regardless of what is currently live, so sequences
// replay identically during shrinking and no-ops exercise the engine's
// idempotence paths.
func randChurnBatch(rng *rand.Rand) graph.Batch {
	n := 1 + rng.Intn(5)
	b := make(graph.Batch, 0, n)
	for i := 0; i < n; i++ {
		u := graph.VertexID(rng.Intn(churnSlotBudget))
		v := graph.VertexID(rng.Intn(churnSlotBudget))
		switch r := rng.Intn(100); {
		case r < 45:
			b = append(b, graph.Mutation{Kind: graph.MutAddEdge, U: u, V: v})
		case r < 70:
			b = append(b, graph.Mutation{Kind: graph.MutRemoveEdge, U: u, V: v})
		case r < 85:
			b = append(b, graph.Mutation{Kind: graph.MutAddVertex, U: u})
		default:
			b = append(b, graph.Mutation{Kind: graph.MutRemoveVertex, U: u})
		}
	}
	return b
}

// runChurnSequence replays batches through a fresh engine, quiescing and
// oracle-checking after every batch. It returns the index of the first
// diverging batch and the divergence (or -1, nil).
func runChurnSequence(c streamingCase, batches []graph.Batch, adapt bool) (int, error) {
	g := graph.NewUndirected(0)
	prog := c.prog()
	e, err := bsp.NewEngine(g, partition.Hash(g, 3), prog, bsp.Config{Workers: 2, Seed: 7})
	if err != nil {
		return -1, err
	}
	if adapt {
		svc, err := adaptive.New(adaptive.DefaultConfig(11))
		if err != nil {
			return -1, err
		}
		e.SetRepartitioner(svc)
	}
	for i, b := range batches {
		e.SetStream(graph.NewSliceStream([]graph.Batch{b}))
		if _, done := e.RunUntilQuiescent(c.batchCap); !done {
			return i, fmt.Errorf("no quiescence within %d supersteps", c.batchCap)
		}
		if err := VerifyStreaming(e, prog); err != nil {
			return i, err
		}
	}
	return -1, nil
}

// shrinkChurnFailure minimises a failing sequence: binary-search the
// shortest failing prefix, then greedily drop interior batches while the
// failure reproduces.
func shrinkChurnFailure(c streamingCase, batches []graph.Batch, adapt bool) ([]graph.Batch, error) {
	fails := func(seq []graph.Batch) (bool, error) {
		i, err := runChurnSequence(c, seq, adapt)
		return i >= 0, err
	}
	lo, hi := 1, len(batches)
	for lo < hi {
		mid := (lo + hi) / 2
		if bad, _ := fails(batches[:mid]); bad {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	seq := append([]graph.Batch(nil), batches[:lo]...)
	for i := len(seq) - 2; i >= 0; i-- {
		cand := append(append([]graph.Batch(nil), seq[:i]...), seq[i+1:]...)
		if bad, _ := fails(cand); bad {
			seq = cand
		}
	}
	_, err := runChurnSequence(c, seq, adapt)
	return seq, err
}

// checkChurnSeed generates nBatches of churn from the seed and fails the
// test with a shrunk reproduction on any divergence. Odd seeds run with
// the adaptive repartitioner migrating underneath the computation.
func checkChurnSeed(t *testing.T, c streamingCase, seed int64, nBatches int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	batches := make([]graph.Batch, nBatches)
	for i := range batches {
		batches[i] = randChurnBatch(rng)
	}
	adapt := seed%2 == 1
	i, err := runChurnSequence(c, batches, adapt)
	if err == nil {
		return
	}
	seq, serr := shrinkChurnFailure(c, batches[:i+1], adapt)
	t.Fatalf("%s: seed %d (adaptive=%v) diverged at batch %d: %v\nshrunk to %d batches (%v): %v",
		c.name, seed, adapt, i, err, len(seq), serr, seq)
}

// oracleSeeds and oracleBatches size the tier-1 run: 3 programs × 4 seeds
// × the per-case batch counts ≈ 10k oracle-checked churn batches.
var oracleSeeds = []int64{1, 2, 3, 4}

func oracleBatches(name string) int {
	if name == "pagerank" {
		return 550 // convergence tails make PageRank batches ~5× dearer
	}
	return 1000
}

func TestStreamingCCMatchesOracle(t *testing.T) {
	c := streamingCases()[0]
	for _, seed := range oracleSeeds {
		checkChurnSeed(t, c, seed, oracleBatches(c.name))
	}
}

func TestStreamingSSSPMatchesOracle(t *testing.T) {
	c := streamingCases()[1]
	for _, seed := range oracleSeeds {
		checkChurnSeed(t, c, seed, oracleBatches(c.name))
	}
}

func TestStreamingPageRankMatchesOracle(t *testing.T) {
	c := streamingCases()[2]
	for _, seed := range oracleSeeds {
		checkChurnSeed(t, c, seed, oracleBatches(c.name))
	}
}

// TestStreamingOracleSoak runs the differential harness with a wall-clock
// budget from ANALYTICS_BUDGET (e.g. "5m"), rotating programs and fresh
// seeds until it expires — the nightly long-run twin of the tier-1 tests,
// mirroring MODELTEST_BUDGET.
func TestStreamingOracleSoak(t *testing.T) {
	budget := os.Getenv("ANALYTICS_BUDGET")
	if budget == "" {
		t.Skip("set ANALYTICS_BUDGET (e.g. 5m) to run the soak")
	}
	d, err := time.ParseDuration(budget)
	if err != nil {
		t.Fatalf("bad ANALYTICS_BUDGET %q: %v", budget, err)
	}
	deadline := time.Now().Add(d)
	cases := streamingCases()
	total := 0
	for seed := int64(1000); time.Now().Before(deadline); seed++ {
		c := cases[int(seed)%len(cases)]
		n := oracleBatches(c.name)
		checkChurnSeed(t, c, seed, n)
		total += n
	}
	t.Logf("soak clean: %d oracle-checked churn batches", total)
}
