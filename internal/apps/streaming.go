package apps

import (
	"math"
	"sort"

	"xdgp/internal/bsp"
	"xdgp/internal/graph"
)

// This file implements the shared incremental core of the streaming
// analytics programs: a self-repairing minimum flood with parent pointers.
//
// Every vertex holds a lexicographic potential (key, hops) and the
// neighbour it derived it from (its parent in the flood forest; roots are
// their own parent). Streaming connected components roots every vertex at
// key = its own ID with hops 0, so the minimum vertex ID floods each
// component; incremental SSSP roots only the source at (0, 0), so hops is
// the shortest-path distance. Repair is targeted rather than from-scratch:
// when a vertex's derivation breaks — the parent edge disappeared, the
// parent was removed, or the parent announced a worse potential — the
// vertex resets to its root potential and re-adopts from its neighbours'
// announcements, cascading only through the subtree that actually lost its
// support. Mutation notices (VertexContext.TopologyChanged) trigger the
// validation and make newly-wired vertices re-announce, so the re-flood
// frontier is exactly View.MutatedVertices plus the broken subtrees.
//
// Two properties make the repair safe under arbitrary churn:
//
//   - Stale potentials cannot survive: a potential is only held together
//     with a parent pointer along a live edge, every potential change is
//     re-announced, and a worse announcement from the parent always resets
//     the child. Detached "ghost" potentials echoing between neighbours
//     climb their hop count on every bounce and are cut off by the
//     admission bound hops < NumVertices (the classic count-to-infinity
//     cutoff), after which the true minimum re-floods.
//   - Results are independent of message arrival order: announcements are
//     folded with an exactly-commutative lexicographic minimum after
//     sorting by sender, so worker counts and combining cannot change the
//     outcome.

// floodEntry is one sender's announcement: its current potential and its
// identity (the receiver validates the edge and may adopt the sender as
// parent).
type floodEntry struct {
	key  float64
	hops int32
	from graph.VertexID
}

// floodMsg is the message of the flood programs. A plain send carries one
// entry; the combiner concatenates entries so that one merged message per
// (source partition, destination) is priced while every individual
// announcement — needed for parent validation — survives verbatim.
type floodMsg struct{ entries []floodEntry }

// combineFlood concatenates announcement lists. Receivers sort entries by
// sender before folding, so the concatenation order (which depends on the
// worker count) is immaterial.
func combineFlood(a, b any) any {
	am, aok := a.(floodMsg)
	bm, bok := b.(floodMsg)
	if !aok || !bok {
		return a
	}
	return floodMsg{entries: append(am.entries, bm.entries...)}
}

// floodState is the per-vertex value of the flood programs: the current
// potential, the neighbour it was derived from (parent == the vertex
// itself marks a root), and whether the vertex has announced itself since
// (re)initialisation. It is a comparable value type, so engine checkpoints
// need no cloning.
type floodState struct {
	key    float64
	hops   int32
	parent graph.VertexID
	booted bool
}

// floodLess compares potentials lexicographically: smaller key first, then
// fewer hops.
func floodLess(k1 float64, h1 int32, k2 float64, h2 int32) bool {
	if k1 != k2 {
		return k1 < k2
	}
	return h1 < h2
}

// floodCompute is the shared Compute of the flood programs. root returns a
// vertex's rest potential key (its own label for components, 0 or +Inf for
// SSSP).
func floodCompute(ctx *bsp.VertexContext, msgs []any, root func(graph.VertexID) float64) {
	me := ctx.ID()
	st, ok := ctx.Value().(floodState)
	if !ok {
		st = floodState{key: root(me), parent: me}
	}
	wasBooted := st.booted
	st.booted = true
	notice := ctx.TopologyChanged()

	// Collect announcements in sender order: delivery order varies with
	// the worker count and with combining, the sorted fold does not.
	var entries []floodEntry
	for _, m := range msgs {
		if fm, ok := m.(floodMsg); ok {
			entries = append(entries, fm.entries...)
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].from < entries[j].from })

	oldKey, oldHops := st.key, st.hops

	// 1. Validate the derivation. The parent edge must still exist
	// (checked when the neighbourhood changed), and the parent must not
	// have announced a potential worse than the one we derived from it.
	if st.parent != me {
		broken := notice && !ctx.HasNeighbor(st.parent)
		if !broken {
			for _, en := range entries {
				if en.from == st.parent && floodLess(st.key, st.hops, en.key, en.hops+1) {
					broken = true
					break
				}
			}
		}
		if broken {
			st.key, st.hops, st.parent = root(me), 0, me
		}
	}

	// 2. Adopt the best admissible candidate: a strictly better potential
	// announced over a live edge, with the hop bound cutting off
	// count-to-infinity walks of detached potentials.
	bound := int32(ctx.NumVertices())
	for _, en := range entries {
		if floodLess(en.key, en.hops+1, st.key, st.hops) && en.hops+1 < bound && ctx.HasNeighbor(en.from) {
			st.key, st.hops, st.parent = en.key, en.hops+1, en.from
		}
	}

	changed := st.key != oldKey || st.hops != oldHops
	if changed || !wasBooted || notice {
		// Announce the new potential to the whole neighbourhood: the
		// re-flood frontier advances (or the reset cascades).
		ctx.SendToNeighbors(floodMsg{entries: []floodEntry{{key: st.key, hops: st.hops, from: me}}})
	} else {
		// Nothing changed here, but a neighbour announced a potential we
		// can improve — typically a vertex that just reset and lost its
		// derivation. Offer ours back, point-to-point.
		for _, en := range entries {
			if floodLess(st.key, st.hops+1, en.key, en.hops) && ctx.HasNeighbor(en.from) {
				ctx.SendTo(en.from, floodMsg{entries: []floodEntry{{key: st.key, hops: st.hops, from: me}}})
			}
		}
	}
	ctx.SetValue(st)
	ctx.VoteToHalt()
}

// StreamingCC computes connected components by min-label flood and keeps
// the labels correct while the graph churns: edge additions re-announce and
// merge labels, and removals tear down exactly the flood subtrees whose
// support crossed the lost edge, which then re-adopt from their remaining
// neighbours. Quiescence implies every live vertex is labelled with the
// minimum vertex ID of its component, byte-identical to a from-scratch run.
type StreamingCC struct{}

// NewStreamingCC returns the program.
func NewStreamingCC() *StreamingCC { return &StreamingCC{} }

// Init roots the vertex at its own ID.
func (c *StreamingCC) Init(ctx *bsp.VertexContext) any {
	return floodState{key: float64(ctx.ID()), parent: ctx.ID()}
}

// Compute runs the shared self-repairing flood with every vertex a
// potential root.
func (c *StreamingCC) Compute(ctx *bsp.VertexContext, msgs []any) {
	floodCompute(ctx, msgs, func(v graph.VertexID) float64 { return float64(v) })
}

// CombineMessages concatenates announcements (one priced message per
// source partition and destination).
func (c *StreamingCC) CombineMessages(a, b any) any { return combineFlood(a, b) }

// StreamingCCLabel extracts the component label from a StreamingCC vertex
// value (ok is false for nil or foreign values).
func StreamingCCLabel(v any) (graph.VertexID, bool) {
	st, ok := v.(floodState)
	if !ok {
		return 0, false
	}
	return graph.VertexID(st.key), true
}

// StreamingSSSP maintains single-source shortest hop distances under
// churn: an added edge triggers a bounded re-flood from its endpoints, and
// a removed tree edge invalidates exactly the distances that were derived
// through it (the subtree resets to +Inf and re-relaxes from its frontier).
// Distances of vertices disconnected from the source converge to +Inf via
// the hop-bound cutoff. Quiescence implies every distance equals the
// from-scratch BFS distance.
type StreamingSSSP struct {
	// Source is the flood root. It may arrive later from the stream — or
	// be removed, which floats every distance back to +Inf.
	Source graph.VertexID
}

// NewStreamingSSSP returns the program rooted at source.
func NewStreamingSSSP(source graph.VertexID) *StreamingSSSP {
	return &StreamingSSSP{Source: source}
}

// Init roots the source at distance 0 and every other vertex at +Inf.
func (s *StreamingSSSP) Init(ctx *bsp.VertexContext) any {
	return floodState{key: s.rootKey(ctx.ID()), parent: ctx.ID()}
}

func (s *StreamingSSSP) rootKey(v graph.VertexID) float64 {
	if v == s.Source {
		return 0
	}
	return math.Inf(1)
}

// Compute runs the shared self-repairing flood rooted at the source.
func (s *StreamingSSSP) Compute(ctx *bsp.VertexContext, msgs []any) {
	floodCompute(ctx, msgs, s.rootKey)
}

// CombineMessages concatenates announcements (one priced message per
// source partition and destination).
func (s *StreamingSSSP) CombineMessages(a, b any) any { return combineFlood(a, b) }

// StreamingSSSPDist extracts the hop distance from a StreamingSSSP vertex
// value: +Inf for unreachable vertices, ok false for nil or foreign
// values.
func StreamingSSSPDist(v any) (float64, bool) {
	st, ok := v.(floodState)
	if !ok {
		return 0, false
	}
	if math.IsInf(st.key, 1) {
		return math.Inf(1), true
	}
	return float64(st.hops), true
}

// WithoutCombiner wraps a program, hiding any MessageCombiner (and
// CostDeclarer) it implements while forwarding everything else — the
// combiner-off axis of the invariance tests. Vertex values, and therefore
// results, must not depend on the wrapping; only message statistics may.
type WithoutCombiner struct{ P bsp.Program }

// Init forwards to the wrapped program.
func (w WithoutCombiner) Init(ctx *bsp.VertexContext) any { return w.P.Init(ctx) }

// Compute forwards to the wrapped program.
func (w WithoutCombiner) Compute(ctx *bsp.VertexContext, msgs []any) { w.P.Compute(ctx, msgs) }

// CloneValue forwards to the wrapped program's ValueCloner, or returns the
// value unchanged when it has none.
func (w WithoutCombiner) CloneValue(v any) any {
	if c, ok := w.P.(bsp.ValueCloner); ok {
		return c.CloneValue(v)
	}
	return v
}

var (
	_ bsp.Program         = (*StreamingCC)(nil)
	_ bsp.MessageCombiner = (*StreamingCC)(nil)
	_ bsp.Program         = (*StreamingSSSP)(nil)
	_ bsp.MessageCombiner = (*StreamingSSSP)(nil)
	_ bsp.Program         = WithoutCombiner{}
	_ bsp.ValueCloner     = WithoutCombiner{}
)
