package apps

import (
	"math"
	"strings"
	"testing"

	"xdgp/internal/bsp"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// Unit pins for the small exported surfaces of the streaming suite: value
// accessors on foreign values, combiner and clone edge cases, and
// VerifyStreaming's failure modes (the differential harness only ever
// sees it succeed).

func TestStreamingValueAccessors(t *testing.T) {
	if _, ok := StreamingCCLabel(nil); ok {
		t.Error("CC label from nil value")
	}
	if _, ok := StreamingCCLabel("foreign"); ok {
		t.Error("CC label from foreign value")
	}
	if got, ok := StreamingCCLabel(floodState{key: 5}); !ok || got != 5 {
		t.Errorf("CC label = %v, %v", got, ok)
	}
	if _, ok := StreamingSSSPDist(nil); ok {
		t.Error("SSSP distance from nil value")
	}
	if got, ok := StreamingSSSPDist(floodState{key: math.Inf(1), hops: 3}); !ok || !math.IsInf(got, 1) {
		t.Errorf("unreachable SSSP distance = %v, %v", got, ok)
	}
	if got, ok := StreamingSSSPDist(floodState{key: 0, hops: 4}); !ok || got != 4 {
		t.Errorf("SSSP distance = %v, %v", got, ok)
	}
	if _, ok := StreamingRank(nil); ok {
		t.Error("rank from nil value")
	}
	if got, ok := StreamingRank(&prState{rank: 2.5}); !ok || got != 2.5 {
		t.Errorf("rank = %v, %v", got, ok)
	}
}

func TestCombineFloodForeignValues(t *testing.T) {
	a := floodMsg{entries: []floodEntry{{key: 1, from: 7}}}
	b := floodMsg{entries: []floodEntry{{key: 2, from: 8}}}
	merged, ok := combineFlood(a, b).(floodMsg)
	if !ok || len(merged.entries) != 2 {
		t.Fatalf("merged = %+v", merged)
	}
	// A foreign operand must pass through rather than panic.
	if got := combineFlood("foreign", b); got != "foreign" {
		t.Errorf("foreign combine = %v", got)
	}
}

func TestWithoutCombinerCloneValue(t *testing.T) {
	// Wrapping a ValueCloner forwards to its deep copy.
	pr := WithoutCombiner{P: NewStreamingPageRank()}
	orig := &prState{rank: 1, in: []prContrib{{from: 3, share: 0.5}}}
	clone := pr.CloneValue(orig).(*prState)
	orig.in[0].share = 9
	if clone.in[0].share != 0.5 {
		t.Error("clone aliases the original in-contribution table")
	}
	// Wrapping a value-type program returns the value unchanged.
	cc := WithoutCombiner{P: NewStreamingCC()}
	v := floodState{key: 4, hops: 2}
	if got := cc.CloneValue(v); got != any(v) {
		t.Errorf("CloneValue = %v, want %v", got, v)
	}
}

// quietProgram is a non-streaming program (nil values, immediate halt)
// used to provoke VerifyStreaming's no-value and no-oracle errors.
type quietProgram struct{}

func (quietProgram) Init(ctx *bsp.VertexContext) any            { return nil }
func (quietProgram) Compute(ctx *bsp.VertexContext, msgs []any) { ctx.VoteToHalt() }

func pathEngine(t *testing.T, prog bsp.Program) *bsp.Engine {
	t.Helper()
	g := graph.NewUndirected(3)
	a, b, c := g.AddVertex(), g.AddVertex(), g.AddVertex()
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	e, err := bsp.NewEngine(g, partition.Hash(g, 2), prog, bsp.Config{Workers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, done := e.RunUntilQuiescent(50); !done {
		t.Fatal("no quiescence")
	}
	return e
}

func TestVerifyStreamingFailureModes(t *testing.T) {
	cc := NewStreamingCC()
	e := pathEngine(t, cc)
	if err := VerifyStreaming(e, cc); err != nil {
		t.Fatalf("correct CC run rejected: %v", err)
	}
	// The same values read as SSSP distances from source 2 must diverge
	// (the flood is rooted at vertex 0, the oracle at vertex 2).
	if err := VerifyStreaming(e, NewStreamingSSSP(2)); err == nil || !strings.Contains(err.Error(), "sssp") {
		t.Errorf("mislabelled program not caught: %v", err)
	}
	// A program without an oracle must be rejected, not silently pass.
	if err := VerifyStreaming(e, quietProgram{}); err == nil || !strings.Contains(err.Error(), "no oracle") {
		t.Errorf("oracle-less program not rejected: %v", err)
	}

	// An engine holding non-flood values must fail the value check for
	// every streaming oracle.
	eq := pathEngine(t, quietProgram{})
	if err := VerifyStreaming(eq, NewStreamingCC()); err == nil || !strings.Contains(err.Error(), "no label") {
		t.Errorf("CC accepted foreign values: %v", err)
	}
	if err := VerifyStreaming(eq, NewStreamingSSSP(0)); err == nil || !strings.Contains(err.Error(), "no distance") {
		t.Errorf("SSSP accepted foreign values: %v", err)
	}
	if err := VerifyStreaming(eq, NewStreamingPageRank()); err == nil || !strings.Contains(err.Error(), "no rank") {
		t.Errorf("PageRank accepted foreign values: %v", err)
	}

	// WithoutCombiner unwraps before dispatch.
	ew := pathEngine(t, WithoutCombiner{P: NewStreamingCC()})
	if err := VerifyStreaming(ew, WithoutCombiner{P: NewStreamingCC()}); err != nil {
		t.Errorf("wrapped CC run rejected: %v", err)
	}
}
