package apps

import (
	"sort"

	"xdgp/internal/bsp"
	"xdgp/internal/graph"
)

// StreamingPageRank maintains PageRank under churn without global
// restarts. It solves the unnormalised system
//
//	rank(v) = (1 − d) + d · Σ_{u ∈ N(v)} rank(u) / deg(u)
//
// whose teleport term is per-vertex rather than 1/N, so a topology change
// perturbs the fixed point only around the mutation: mass is re-seeded at
// the mutated vertices and their frontier, and updates propagate only
// while they exceed Tol (each hop damps the residual by d, so waves die
// geometrically). Every vertex remembers its in-contributions per sender;
// a mutation notice prunes contributions from ex-neighbours and
// re-announces the vertex's own share, and quiescence implies the ranks
// match the from-scratch fixed point to within the tolerance.
type StreamingPageRank struct {
	// Damping is the damping factor (0.85 classically).
	Damping float64
	// Tol is the share-change threshold below which a vertex does not
	// re-announce; it bounds both the convergence tail and the distance
	// from the exact fixed point.
	Tol float64
}

// NewStreamingPageRank returns the program with the classic damping of
// 0.85 and a 1e-10 announcement tolerance.
func NewStreamingPageRank() *StreamingPageRank {
	return &StreamingPageRank{Damping: 0.85, Tol: 1e-10}
}

// prContrib is one remembered in-contribution: the sending neighbour and
// its last announced share.
type prContrib struct {
	from  graph.VertexID
	share float64
}

// prState is the mutable per-vertex value: current rank, the share last
// announced to neighbours, and the in-contributions sorted by sender (the
// fixed summation order that keeps results byte-identical across worker
// counts).
type prState struct {
	rank   float64
	share  float64
	booted bool
	in     []prContrib
}

// prMsg announces the sender's absolute share; the receiver replaces any
// previous contribution from the same sender. Absolute (not delta)
// announcements make delivery idempotent, which is what lets repair and
// regular propagation share one code path. The program has no combiner:
// contributions need per-sender identity.
type prMsg struct {
	share float64
	from  graph.VertexID
}

// Init starts the vertex at the bare teleport mass.
func (p *StreamingPageRank) Init(ctx *bsp.VertexContext) any {
	return &prState{rank: 1 - p.Damping}
}

// CloneValue deep-copies the mutable state for engine checkpoints.
func (p *StreamingPageRank) CloneValue(v any) any {
	st := v.(*prState)
	cp := *st
	cp.in = append([]prContrib(nil), st.in...)
	return &cp
}

// Compute folds announced shares into the in-contribution table, prunes it
// against the live neighbourhood on topology notices, recomputes the rank
// and re-announces its own share when it moved by more than Tol.
func (p *StreamingPageRank) Compute(ctx *bsp.VertexContext, msgs []any) {
	st := ctx.Value().(*prState)
	notice := ctx.TopologyChanged()

	// Apply announcements in sender order (delivery order varies with the
	// worker count), dropping senders that are no longer neighbours —
	// their edge vanished while the message was in flight.
	if len(msgs) > 0 {
		anns := make([]prMsg, 0, len(msgs))
		for _, m := range msgs {
			if pm, ok := m.(prMsg); ok {
				anns = append(anns, pm)
			}
		}
		sort.Slice(anns, func(i, j int) bool { return anns[i].from < anns[j].from })
		for _, a := range anns {
			if !ctx.HasNeighbor(a.from) {
				continue
			}
			i := sort.Search(len(st.in), func(i int) bool { return st.in[i].from >= a.from })
			if i < len(st.in) && st.in[i].from == a.from {
				st.in[i].share = a.share
			} else {
				st.in = append(st.in, prContrib{})
				copy(st.in[i+1:], st.in[i:])
				st.in[i] = prContrib{from: a.from, share: a.share}
			}
		}
	}
	if notice {
		// The neighbourhood changed: contributions from ex-neighbours are
		// no longer part of the sum.
		kept := st.in[:0]
		for _, c := range st.in {
			if ctx.HasNeighbor(c.from) {
				kept = append(kept, c)
			}
		}
		st.in = kept
	}

	sum := 0.0
	for _, c := range st.in {
		sum += c.share
	}
	st.rank = (1 - p.Damping) + p.Damping*sum

	share := 0.0
	if d := ctx.Degree(); d > 0 {
		share = st.rank / float64(d)
	}
	delta := share - st.share
	if delta < 0 {
		delta = -delta
	}
	if !st.booted || notice || delta > p.Tol {
		st.share = share
		st.booted = true
		ctx.SendToNeighbors(prMsg{share: share, from: ctx.ID()})
	}
	ctx.VoteToHalt()
}

// StreamingRank extracts the rank from a StreamingPageRank vertex value
// (ok is false for nil or foreign values).
func StreamingRank(v any) (float64, bool) {
	st, ok := v.(*prState)
	if !ok {
		return 0, false
	}
	return st.rank, true
}

var (
	_ bsp.Program     = (*StreamingPageRank)(nil)
	_ bsp.ValueCloner = (*StreamingPageRank)(nil)
)
