package apps

import (
	"math"

	"xdgp/internal/bsp"
	"xdgp/internal/graph"
)

// SSSP computes single-source shortest hop counts in the classic Pregel
// formulation: the source floods distance 0, every vertex keeps the
// minimum distance seen and propagates distance+1, and the computation
// halts when no distance improves. Used by tests and examples as a
// ground-truth-checkable workload.
type SSSP struct {
	Source graph.VertexID
}

// NewSSSP returns the program rooted at source.
func NewSSSP(source graph.VertexID) *SSSP { return &SSSP{Source: source} }

// Init assigns +Inf everywhere except the source.
func (s *SSSP) Init(ctx *bsp.VertexContext) any {
	if ctx.ID() == s.Source {
		return 0.0
	}
	return math.Inf(1)
}

// Compute relaxes incoming distances and halts when stable.
func (s *SSSP) Compute(ctx *bsp.VertexContext, msgs []any) {
	dist := ctx.Value().(float64)
	best := dist
	for _, m := range msgs {
		if d, ok := m.(float64); ok && d < best {
			best = d
		}
	}
	improved := best < dist
	if improved {
		ctx.SetValue(best)
	}
	// The source must flood once at superstep 0.
	if improved || (ctx.Superstep() == 0 && ctx.ID() == s.Source) {
		ctx.SendToNeighbors(best + 1)
	}
	ctx.VoteToHalt()
}

// CombineMessages keeps only the minimum candidate distance (combiner).
func (s *SSSP) CombineMessages(a, b any) any {
	af, aok := a.(float64)
	bf, bok := b.(float64)
	if !aok || !bok {
		return a
	}
	if bf < af {
		return bf
	}
	return af
}

var (
	_ bsp.Program         = (*SSSP)(nil)
	_ bsp.MessageCombiner = (*SSSP)(nil)
)

// WCC computes weakly connected components by min-label propagation: each
// vertex adopts the smallest vertex ID it has heard of and halts when its
// label stops changing. On undirected graphs the result is the connected
// components.
type WCC struct{}

// NewWCC returns the program.
func NewWCC() *WCC { return &WCC{} }

// Init labels every vertex with itself.
func (w *WCC) Init(ctx *bsp.VertexContext) any { return int64(ctx.ID()) }

// Compute adopts the minimum heard label and propagates improvements.
func (w *WCC) Compute(ctx *bsp.VertexContext, msgs []any) {
	label := ctx.Value().(int64)
	best := label
	for _, m := range msgs {
		if l, ok := m.(int64); ok && l < best {
			best = l
		}
	}
	if best < label || ctx.Superstep() == 0 {
		ctx.SetValue(best)
		ctx.SendToNeighbors(best)
	}
	ctx.VoteToHalt()
}

// CombineMessages keeps only the minimum candidate label (combiner).
func (w *WCC) CombineMessages(a, b any) any {
	al, aok := a.(int64)
	bl, bok := b.(int64)
	if !aok || !bok {
		return a
	}
	if bl < al {
		return bl
	}
	return al
}

var (
	_ bsp.Program         = (*WCC)(nil)
	_ bsp.MessageCombiner = (*WCC)(nil)
)
