package apps

import (
	"sort"

	"xdgp/internal/bsp"
	"xdgp/internal/graph"
)

// MaxClique finds a maximal clique containing each vertex using the
// neighbour-list-exchange algorithm the paper describes for its mobile
// call-graph use case (Section 4.3): "In the first iteration, each vertex
// sends its lists of neighbours to all its neighbours. On the next
// iteration, [each vertex intersects the lists]... As these lists can get
// large, this algorithm produces heavy messaging overhead for large
// graphs."
//
// The per-vertex result is a maximal (not maximum — that is NP-hard)
// clique grown greedily inside the vertex's closed neighbourhood from the
// exchanged lists. The global maximum clique size is published through the
// "maxclique.size" aggregator. The computation is restartable: the mobile
// experiment freezes topology, runs it to quiescence, applies the buffered
// stream window via the engine, calls ResetComputation and repeats.
type MaxClique struct{}

// NewMaxClique returns the program.
func NewMaxClique() *MaxClique { return &MaxClique{} }

// cliqueState is the per-vertex value.
type cliqueState struct {
	phase  int
	clique []graph.VertexID
}

// neighborList is the phase-0 message payload: the sender and its
// adjacency list.
type neighborList struct {
	from graph.VertexID
	adj  []graph.VertexID
}

// Init starts every vertex in the exchange phase.
func (mc *MaxClique) Init(ctx *bsp.VertexContext) any { return &cliqueState{} }

// CloneValue deep-copies the mutable clique state for checkpointing.
func (mc *MaxClique) CloneValue(v any) any {
	st, ok := v.(*cliqueState)
	if !ok {
		return v
	}
	return &cliqueState{phase: st.phase, clique: append([]graph.VertexID(nil), st.clique...)}
}

// Compute implements the two-phase exchange-and-intersect algorithm.
func (mc *MaxClique) Compute(ctx *bsp.VertexContext, msgs []any) {
	st, ok := ctx.Value().(*cliqueState)
	if !ok {
		st = &cliqueState{}
		ctx.SetValue(st)
	}
	switch st.phase {
	case 0:
		// Send a copy of the adjacency list to every neighbour. The copy
		// matters: the engine owns the original and topology may mutate.
		adj := append([]graph.VertexID(nil), ctx.Neighbors()...)
		ctx.SendToNeighbors(neighborList{from: ctx.ID(), adj: adj})
		st.phase = 1
		if len(adj) == 0 {
			// Isolated vertex: its maximal clique is itself.
			st.clique = []graph.VertexID{ctx.ID()}
			st.phase = 2
			ctx.AggregateMax("maxclique.size", 1)
			ctx.VoteToHalt()
		}
	case 1:
		st.clique = mc.greedyClique(ctx.ID(), msgs)
		st.phase = 2
		ctx.AggregateMax("maxclique.size", float64(len(st.clique)))
		ctx.VoteToHalt()
	default:
		ctx.VoteToHalt()
	}
}

// greedyClique grows a maximal clique containing v from the received
// neighbour lists: candidates are v's neighbours ordered by how many of
// v's other neighbours they connect to (descending), each admitted iff
// adjacent to every member so far.
func (mc *MaxClique) greedyClique(v graph.VertexID, msgs []any) []graph.VertexID {
	adjOf := make(map[graph.VertexID]map[graph.VertexID]bool, len(msgs))
	order := make([]graph.VertexID, 0, len(msgs))
	for _, m := range msgs {
		nl, ok := m.(neighborList)
		if !ok {
			continue
		}
		set := make(map[graph.VertexID]bool, len(nl.adj))
		for _, w := range nl.adj {
			set[w] = true
		}
		if _, dup := adjOf[nl.from]; !dup {
			order = append(order, nl.from)
		}
		adjOf[nl.from] = set
	}
	// Score candidates by connectivity inside the neighbourhood.
	score := make(map[graph.VertexID]int, len(order))
	for _, u := range order {
		s := 0
		for _, w := range order {
			if w != u && adjOf[u][w] {
				s++
			}
		}
		score[u] = s
	}
	sort.Slice(order, func(i, j int) bool {
		if score[order[i]] != score[order[j]] {
			return score[order[i]] > score[order[j]]
		}
		return order[i] < order[j]
	})
	clique := []graph.VertexID{v}
	for _, u := range order {
		ok := true
		for _, w := range clique {
			if w == v {
				continue // u is a neighbour of v by construction
			}
			if !adjOf[u][w] {
				ok = false
				break
			}
		}
		if ok {
			clique = append(clique, u)
		}
	}
	sort.Slice(clique, func(i, j int) bool { return clique[i] < clique[j] })
	return clique
}

// Clique returns the vertex's computed maximal clique (nil before phase 2).
func Clique(v any) []graph.VertexID {
	if st, ok := v.(*cliqueState); ok && st.phase == 2 {
		return st.clique
	}
	return nil
}

var (
	_ bsp.Program     = (*MaxClique)(nil)
	_ bsp.ValueCloner = (*MaxClique)(nil)
)
