package apps

import (
	"math"

	"xdgp/internal/bsp"
)

// Cardiac simulates electrically coupled heart cells on a 3-d FEM mesh,
// the paper's biomedical use case: "Each vertex computes more than 32
// differential equations on one hundred variables representing the way
// cardiac cells are excited to produce a synchronised heart contraction"
// (ten Tusscher et al. 2004). The cell model here is a FitzHugh–Nagumo-
// style excitable system extended to NumVars gating/concentration
// variables so that the per-vertex compute cost matches the paper's
// CPU-heavy profile ("CPU time is not negligible, more than 17%"), while
// membrane potential diffuses to mesh neighbours through messages — the
// communication that dominates iteration time (">80%") under poor
// partitionings.
//
// The program never votes to halt: the simulation runs continuously.
type Cardiac struct {
	// NumVars is the size of each cell's state vector (paper: ~100).
	NumVars int
	// NumEquations is how many update equations run per step (paper: >32).
	NumEquations int
	// Dt is the integration step.
	Dt float64
	// DiffusionCoeff couples neighbouring membrane potentials.
	DiffusionCoeff float64
	// StimulusPeriod re-excites pacemaker cells every so many supersteps.
	StimulusPeriod int
}

// NewCardiac returns the configuration matching the paper's description.
func NewCardiac() *Cardiac {
	return &Cardiac{
		NumVars:        100,
		NumEquations:   32,
		Dt:             0.02,
		DiffusionCoeff: 0.4,
		StimulusPeriod: 50,
	}
}

// CostPerVertex declares the heavy per-vertex compute to the engine's cost
// clock (32 equations vs a one-line PageRank update).
func (c *Cardiac) CostPerVertex() float64 { return float64(c.NumEquations) }

// cellState is the per-vertex value; index 0 is the membrane potential,
// index 1 the recovery variable, the rest are auxiliary gating variables.
type cellState []float64

// Init creates a resting cell; vertex 0 acts as the pacemaker.
func (c *Cardiac) Init(ctx *bsp.VertexContext) any {
	st := make(cellState, c.NumVars)
	if ctx.ID() == 0 {
		st[0] = 1.0 // initial stimulus at the pacemaker
	}
	return st
}

// CloneValue deep-copies cell state for checkpointing.
func (c *Cardiac) CloneValue(v any) any {
	st, ok := v.(cellState)
	if !ok {
		return v
	}
	return append(cellState(nil), st...)
}

// Compute advances the cell one time step: diffusion from neighbour
// potentials, FitzHugh–Nagumo excitation dynamics, and NumEquations
// auxiliary gating updates over the state vector.
func (c *Cardiac) Compute(ctx *bsp.VertexContext, msgs []any) {
	st, ok := ctx.Value().(cellState)
	if !ok || len(st) < 2 {
		st = make(cellState, c.NumVars)
		ctx.SetValue(st)
	}
	v, w := st[0], st[1]

	// Diffusive coupling with neighbours (cable equation term).
	if len(msgs) > 0 {
		sum := 0.0
		n := 0
		for _, m := range msgs {
			if x, ok := m.(float64); ok {
				sum += x
				n++
			}
		}
		if n > 0 {
			v += c.Dt * c.DiffusionCoeff * (sum/float64(n) - v)
		}
	}

	// FitzHugh–Nagumo excitation.
	v += c.Dt * (v*(1-v)*(v-0.1) - w)
	w += c.Dt * 0.02 * (0.5*v - w)

	// Periodic pacemaker stimulus keeps the tissue active.
	if ctx.ID() == 0 && c.StimulusPeriod > 0 && ctx.Superstep()%c.StimulusPeriod == 0 {
		v = 1.0
	}

	// Auxiliary gating equations: a deterministic relaxation cascade over
	// the remaining variables, standing in for the ten-Tusscher system's
	// ionic currents (same arithmetic volume, bounded dynamics).
	prev := v
	for eq := 0; eq < c.NumEquations; eq++ {
		idx := 2 + eq%(len(st)-2)
		g := st[idx]
		g += c.Dt * (sigmoid(prev) - g)
		st[idx] = g
		prev = g
	}

	st[0] = clamp(v, -2, 2)
	st[1] = clamp(w, -2, 2)
	ctx.AggregateMax("cardiac.maxV", st[0])

	// Share the membrane potential with the coupled neighbours.
	ctx.SendToNeighbors(st[0])
}

// Potential extracts the membrane potential from a cell value.
func Potential(v any) float64 {
	if st, ok := v.(cellState); ok && len(st) > 0 {
		return st[0]
	}
	return 0
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-4*x)) }

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

var (
	_ bsp.Program      = (*Cardiac)(nil)
	_ bsp.CostDeclarer = (*Cardiac)(nil)
	_ bsp.ValueCloner  = (*Cardiac)(nil)
)
