package apps

import "xdgp/internal/bsp"

// TunkRank estimates Twitter user influence on a mention graph — "a
// Twitter analog to PageRank" (Tunkelang 2009), the algorithm the paper
// runs continuously over its London tweet stream (Section 4.3, Figure 8).
//
// The mention graph is directed: an edge a→b means a mentioned b. The
// influence of b accrues from every mentioner a as (1 + p·I(a)) / out(a),
// where p is the retweet probability. The program never votes to halt: it
// recomputes continuously as the stream mutates the graph, exactly the
// paper's continuous-processing mode.
type TunkRank struct {
	// P is the probability that a mention is retweeted/propagated.
	P float64
}

// NewTunkRank returns the program with the conventional p = 0.5.
func NewTunkRank() *TunkRank { return &TunkRank{P: 0.5} }

// Init starts every user with zero influence.
func (t *TunkRank) Init(ctx *bsp.VertexContext) any { return 0.0 }

// Compute folds incoming mention contributions into the influence estimate
// and forwards this vertex's contribution to everyone it mentions.
func (t *TunkRank) Compute(ctx *bsp.VertexContext, msgs []any) {
	if ctx.Superstep() > 0 {
		inf := 0.0
		for _, m := range msgs {
			if x, ok := m.(float64); ok {
				inf += x
			}
		}
		ctx.SetValue(inf)
		ctx.Aggregate("tunkrank.total", inf)
	}
	if d := ctx.Degree(); d > 0 {
		contribution := (1 + t.P*ctx.Value().(float64)) / float64(d)
		ctx.SendToNeighbors(contribution)
	}
	// Never halts: the system processes the stream continuously.
}

// CombineMessages sums influence contributions at the sender, the natural
// combiner for a celebrity receiving thousands of mentions per superstep.
func (t *TunkRank) CombineMessages(a, b any) any {
	af, aok := a.(float64)
	bf, bok := b.(float64)
	if !aok || !bok {
		return a
	}
	return af + bf
}

var (
	_ bsp.Program         = (*TunkRank)(nil)
	_ bsp.MessageCombiner = (*TunkRank)(nil)
)
