package apps

import (
	"fmt"
	"math"

	"xdgp/internal/bsp"
	"xdgp/internal/graph"
)

// This file holds plain-Go from-scratch reference implementations (the
// ground truth the streaming programs are differentially tested against)
// and VerifyStreaming, which diffs a quiescent engine against them. They
// are exported so the experiments driver can oracle-check its runs, not
// just the test harness.

// OracleComponents recomputes connected components from scratch via
// union-find and returns every live vertex's component label: the minimum
// vertex ID of its component.
func OracleComponents(g *graph.Graph) map[graph.VertexID]graph.VertexID {
	parent := make(map[graph.VertexID]graph.VertexID)
	var find func(v graph.VertexID) graph.VertexID
	find = func(v graph.VertexID) graph.VertexID {
		p, ok := parent[v]
		if !ok || p == v {
			return v
		}
		r := find(p)
		parent[v] = r
		return r
	}
	g.ForEachEdge(func(u, v graph.VertexID) {
		ru, rv := find(u), find(v)
		if ru != rv {
			parent[ru] = rv
		}
	})
	minOf := make(map[graph.VertexID]graph.VertexID)
	g.ForEachVertex(func(v graph.VertexID) {
		r := find(v)
		if m, ok := minOf[r]; !ok || v < m {
			minOf[r] = v
		}
	})
	labels := make(map[graph.VertexID]graph.VertexID)
	g.ForEachVertex(func(v graph.VertexID) {
		labels[v] = minOf[find(v)]
	})
	return labels
}

// OracleDistances recomputes shortest hop distances from src from scratch
// via BFS. Unreachable (and all, when src is not live) vertices are absent
// from the map.
func OracleDistances(g *graph.Graph, src graph.VertexID) map[graph.VertexID]int {
	dist := make(map[graph.VertexID]int)
	if !g.Has(src) {
		return dist
	}
	dist[src] = 0
	frontier := []graph.VertexID{src}
	for len(frontier) > 0 {
		var next []graph.VertexID
		for _, u := range frontier {
			du := dist[u]
			for _, w := range g.Neighbors(u) {
				if _, seen := dist[w]; !seen {
					dist[w] = du + 1
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return dist
}

// OraclePageRank recomputes the unnormalised PageRank fixed point
//
//	rank(v) = (1 − d) + d · Σ_{u ∈ N(v)} rank(u) / deg(u)
//
// from scratch by dense Jacobi iteration until the largest per-vertex
// change drops below tol.
func OraclePageRank(g *graph.Graph, damping, tol float64) map[graph.VertexID]float64 {
	rank := make(map[graph.VertexID]float64)
	g.ForEachVertex(func(v graph.VertexID) { rank[v] = 1 - damping })
	for iter := 0; iter < 100000; iter++ {
		next := make(map[graph.VertexID]float64, len(rank))
		maxDelta := 0.0
		g.ForEachVertex(func(v graph.VertexID) {
			sum := 0.0
			for _, u := range g.Neighbors(v) {
				if d := g.Degree(u); d > 0 {
					sum += rank[u] / float64(d)
				}
			}
			r := (1 - damping) + damping*sum
			next[v] = r
			if d := math.Abs(r - rank[v]); d > maxDelta {
				maxDelta = d
			}
		})
		rank = next
		if maxDelta < tol {
			break
		}
	}
	return rank
}

// prOracleTol is how tightly VerifyStreaming requires streaming PageRank
// to match the from-scratch fixed point. The program's announcement
// tolerance leaves a residual of at most ~Tol·maxdeg/(1−d), far below
// this.
const prOracleTol = 1e-6

// VerifyStreaming diffs a quiescent engine's vertex values against the
// matching from-scratch oracle and returns the first divergence found.
// prog must be the program the engine runs: one of the streaming programs,
// optionally wrapped in WithoutCombiner.
func VerifyStreaming(e *bsp.Engine, prog bsp.Program) error {
	if w, ok := prog.(WithoutCombiner); ok {
		prog = w.P
	}
	g := e.Graph()
	var err error
	switch p := prog.(type) {
	case *StreamingCC:
		want := OracleComponents(g)
		g.ForEachVertex(func(v graph.VertexID) {
			if err != nil {
				return
			}
			got, ok := StreamingCCLabel(e.Value(v))
			if !ok {
				err = fmt.Errorf("cc: vertex %d has no label", v)
			} else if got != want[v] {
				err = fmt.Errorf("cc: vertex %d labelled %d, oracle says %d", v, got, want[v])
			}
		})
	case *StreamingSSSP:
		want := OracleDistances(g, p.Source)
		g.ForEachVertex(func(v graph.VertexID) {
			if err != nil {
				return
			}
			got, ok := StreamingSSSPDist(e.Value(v))
			if !ok {
				err = fmt.Errorf("sssp: vertex %d has no distance", v)
				return
			}
			d, reachable := want[v]
			switch {
			case reachable && got != float64(d):
				err = fmt.Errorf("sssp: vertex %d at distance %v, oracle says %d", v, got, d)
			case !reachable && !math.IsInf(got, 1):
				err = fmt.Errorf("sssp: vertex %d at distance %v, oracle says unreachable", v, got)
			}
		})
	case *StreamingPageRank:
		want := OraclePageRank(g, p.Damping, 1e-13)
		g.ForEachVertex(func(v graph.VertexID) {
			if err != nil {
				return
			}
			got, ok := StreamingRank(e.Value(v))
			if !ok {
				err = fmt.Errorf("pagerank: vertex %d has no rank", v)
			} else if math.Abs(got-want[v]) > prOracleTol {
				err = fmt.Errorf("pagerank: vertex %d ranked %.12g, oracle says %.12g (|Δ|=%.3g)",
					v, got, want[v], math.Abs(got-want[v]))
			}
		})
	default:
		return fmt.Errorf("apps: no oracle for program %T", prog)
	}
	return err
}
