package apps

import (
	"math"
	"testing"

	"xdgp/internal/bsp"
	"xdgp/internal/gen"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

func newEngine(t *testing.T, g *graph.Graph, k int, prog bsp.Program) *bsp.Engine {
	t.Helper()
	e, err := bsp.NewEngine(g, partition.Hash(g, k), prog, bsp.Config{Workers: k, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// bfsDistances is the ground truth for SSSP.
func bfsDistances(g *graph.Graph, src graph.VertexID) map[graph.VertexID]int {
	dist := map[graph.VertexID]int{src: 0}
	queue := []graph.VertexID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(v) {
			if _, seen := dist[w]; !seen {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

func TestSSSPMatchesBFS(t *testing.T) {
	g := gen.Cube3D(5) // 125 vertices
	e := newEngine(t, g, 4, NewSSSP(0))
	if _, done := e.RunUntilQuiescent(200); !done {
		t.Fatal("SSSP did not quiesce")
	}
	want := bfsDistances(g, 0)
	g.ForEachVertex(func(v graph.VertexID) {
		got := e.Value(v).(float64)
		if float64(want[v]) != got {
			t.Fatalf("dist(%d) = %v, want %d", v, got, want[v])
		}
	})
}

func TestSSSPUnreachableStaysInfinite(t *testing.T) {
	g := graph.NewUndirected(0)
	a, b := g.AddVertex(), g.AddVertex()
	c, d := g.AddVertex(), g.AddVertex()
	g.AddEdge(a, b)
	g.AddEdge(c, d) // disconnected pair
	e := newEngine(t, g, 2, NewSSSP(a))
	e.RunUntilQuiescent(50)
	if !math.IsInf(e.Value(c).(float64), 1) {
		t.Fatal("unreachable vertex must stay at +Inf")
	}
	if e.Value(b).(float64) != 1 {
		t.Fatal("neighbour of source must be at distance 1")
	}
}

func TestWCCFindsComponents(t *testing.T) {
	g := graph.NewUndirected(0)
	for i := 0; i < 6; i++ {
		g.AddVertex()
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4) // second component; 5 isolated
	e := newEngine(t, g, 3, NewWCC())
	if _, done := e.RunUntilQuiescent(100); !done {
		t.Fatal("WCC did not quiesce")
	}
	for _, v := range []graph.VertexID{0, 1, 2} {
		if e.Value(v).(int64) != 0 {
			t.Fatalf("vertex %d label = %v, want 0", v, e.Value(v))
		}
	}
	for _, v := range []graph.VertexID{3, 4} {
		if e.Value(v).(int64) != 3 {
			t.Fatalf("vertex %d label = %v, want 3", v, e.Value(v))
		}
	}
	if e.Value(5).(int64) != 5 {
		t.Fatal("isolated vertex must keep its own label")
	}
}

func TestPageRankConservesMass(t *testing.T) {
	g := gen.HolmeKim(300, 3, 0.1, 1)
	n := g.NumVertices()
	e := newEngine(t, g, 4, NewPageRank(n, 25))
	e.RunUntilQuiescent(60)
	sum := 0.0
	minRank := math.Inf(1)
	g.ForEachVertex(func(v graph.VertexID) {
		r := e.Value(v).(float64)
		sum += r
		if r < minRank {
			minRank = r
		}
	})
	// Undirected connected-ish graph with no dangling mass: sum ≈ 1.
	if math.Abs(sum-1) > 0.05 {
		t.Fatalf("rank mass = %.4f, want ≈1", sum)
	}
	if minRank < (1-0.85)/float64(n)*0.99 {
		t.Fatalf("minimum rank %.2g below teleport floor", minRank)
	}
}

func TestPageRankHubsRankHigher(t *testing.T) {
	// A star: the hub must out-rank every leaf.
	g := graph.NewUndirected(0)
	hub := g.AddVertex()
	for i := 0; i < 20; i++ {
		leaf := g.AddVertex()
		g.AddEdge(hub, leaf)
	}
	e := newEngine(t, g, 2, NewPageRank(g.NumVertices(), 30))
	e.RunUntilQuiescent(60)
	hubRank := e.Value(hub).(float64)
	g.ForEachVertex(func(v graph.VertexID) {
		if v != hub && e.Value(v).(float64) >= hubRank {
			t.Fatalf("leaf %d out-ranks the hub", v)
		}
	})
}

func TestTunkRankPopularUsersGainInfluence(t *testing.T) {
	// a and b both mention celebrity c; c mentions nobody.
	g := graph.NewDirected(0)
	a, b, c := g.AddVertex(), g.AddVertex(), g.AddVertex()
	g.AddEdge(a, c)
	g.AddEdge(b, c)
	e := newEngine(t, g, 2, NewTunkRank())
	e.RunSupersteps(5)
	if inf := e.Value(c).(float64); inf < 1.9 {
		t.Fatalf("celebrity influence = %v, want ≈2 (two mentioners)", inf)
	}
	if inf := e.Value(a).(float64); inf != 0 {
		t.Fatalf("unmentioned user influence = %v, want 0", inf)
	}
}

func TestTunkRankNeverHalts(t *testing.T) {
	g := graph.NewDirected(0)
	a, b := g.AddVertex(), g.AddVertex()
	g.AddEdge(a, b)
	e := newEngine(t, g, 2, NewTunkRank())
	e.RunSupersteps(10)
	if e.Quiescent() {
		t.Fatal("continuous TunkRank must not quiesce")
	}
}

func TestMaxCliqueOnKnownGraph(t *testing.T) {
	// A 4-clique {0,1,2,3} with a pendant path 3-4-5.
	g := graph.NewUndirected(0)
	for i := 0; i < 6; i++ {
		g.AddVertex()
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(graph.VertexID(i), graph.VertexID(j))
		}
	}
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	e := newEngine(t, g, 2, NewMaxClique())
	if _, done := e.RunUntilQuiescent(10); !done {
		t.Fatal("clique search did not quiesce")
	}
	if got := e.Aggregated("maxclique.size"); got != 4 {
		t.Fatalf("max clique size = %v, want 4", got)
	}
	// Vertex 0's clique must be exactly {0,1,2,3}.
	cl := Clique(e.Value(0))
	if len(cl) != 4 {
		t.Fatalf("vertex 0 clique = %v, want 4 members", cl)
	}
	for i, want := range []graph.VertexID{0, 1, 2, 3} {
		if cl[i] != want {
			t.Fatalf("clique = %v, want [0 1 2 3]", cl)
		}
	}
	// Every reported clique must actually be a clique.
	g.ForEachVertex(func(v graph.VertexID) {
		c := Clique(e.Value(v))
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				if !g.HasEdge(c[i], c[j]) {
					t.Fatalf("vertex %d reported non-clique %v", v, c)
				}
			}
		}
	})
}

func TestMaxCliqueIsolatedVertex(t *testing.T) {
	g := graph.NewUndirected(0)
	g.AddVertex()
	e := newEngine(t, g, 1, NewMaxClique())
	if _, done := e.RunUntilQuiescent(5); !done {
		t.Fatal("did not quiesce")
	}
	if got := e.Aggregated("maxclique.size"); got != 1 {
		t.Fatalf("isolated vertex clique size = %v, want 1", got)
	}
}

func TestMaxCliqueRestartable(t *testing.T) {
	g := graph.NewUndirected(0)
	for i := 0; i < 3; i++ {
		g.AddVertex()
	}
	g.AddEdge(0, 1)
	e := newEngine(t, g, 2, NewMaxClique())
	e.RunUntilQuiescent(10)
	if got := e.Aggregated("maxclique.size"); got != 2 {
		t.Fatalf("first run clique = %v, want 2", got)
	}
	// Grow a triangle, reset, rerun: the paper's freeze-compute-repeat loop.
	e.SetStream(graph.NewSliceStream([]graph.Batch{{
		{Kind: graph.MutAddEdge, U: 1, V: 2},
		{Kind: graph.MutAddEdge, U: 0, V: 2},
	}}))
	e.RunSuperstep() // consume the batch
	e.ResetComputation()
	if _, done := e.RunUntilQuiescent(10); !done {
		t.Fatal("second run did not quiesce")
	}
	if got := e.Aggregated("maxclique.size"); got != 3 {
		t.Fatalf("after growth clique = %v, want 3", got)
	}
}

func TestCardiacWavePropagates(t *testing.T) {
	g := gen.Mesh3D(6, 6, 1)
	c := NewCardiac()
	e := newEngine(t, g, 2, c)
	e.RunSupersteps(120)
	// The excitation starting at vertex 0 must have raised potentials
	// somewhere beyond the pacemaker.
	excited := 0
	g.ForEachVertex(func(v graph.VertexID) {
		if v != 0 && Potential(e.Value(v)) > 0.05 {
			excited++
		}
	})
	if excited == 0 {
		t.Fatal("excitation never propagated from the pacemaker")
	}
	if e.Aggregated("cardiac.maxV") <= 0 {
		t.Fatal("aggregator should report positive max potential")
	}
}

func TestCardiacStateStaysBounded(t *testing.T) {
	g := gen.Mesh3D(4, 4, 1)
	c := NewCardiac()
	e := newEngine(t, g, 2, c)
	e.RunSupersteps(300)
	g.ForEachVertex(func(v graph.VertexID) {
		st := e.Value(v).(cellState)
		for i, x := range st {
			if math.IsNaN(x) || math.Abs(x) > 10 {
				t.Fatalf("vertex %d var %d diverged: %v", v, i, x)
			}
		}
	})
}

func TestCardiacCloneValue(t *testing.T) {
	c := NewCardiac()
	st := cellState{1, 2, 3}
	cp := c.CloneValue(st).(cellState)
	cp[0] = 99
	if st[0] != 1 {
		t.Fatal("CloneValue must deep-copy")
	}
	// Non-cell values pass through.
	if c.CloneValue(42) != 42 {
		t.Fatal("foreign values must pass through unchanged")
	}
}

func TestCardiacCostDeclared(t *testing.T) {
	c := NewCardiac()
	if c.CostPerVertex() < 10 {
		t.Fatal("cardiac compute must be declared heavy (>32 equations)")
	}
}

func TestMaxCliqueCloneValue(t *testing.T) {
	mc := NewMaxClique()
	st := &cliqueState{phase: 2, clique: []graph.VertexID{1, 2}}
	cp := mc.CloneValue(st).(*cliqueState)
	cp.clique[0] = 9
	if st.clique[0] != 1 {
		t.Fatal("CloneValue must deep-copy the clique")
	}
}
