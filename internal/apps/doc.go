// Package apps contains the vertex programs run on the BSP engine.
//
// The paper's evaluation workloads: the cardiac finite-element simulation
// (CardiacFEM, biomedical use case), TunkRank (online-social-network use
// case) and maximal-clique detection (MaxClique, mobile-network use case).
//
// Frozen-topology classics used by examples and tests: PageRank, SSSP and
// WCC.
//
// The streaming analytics suite, which keeps answers live while the graph
// churns by repairing incrementally from the engine's mutation notices
// instead of recomputing: StreamingCC (self-healing min-label components),
// StreamingSSSP (shortest paths with distance invalidation and bounded
// re-flood) and StreamingPageRank (fixed-point re-seeding only at mutated
// vertices and their frontier). Each is differentially tested against the
// from-scratch oracles in this package (OracleComponents, OracleDistances,
// OraclePageRank; VerifyStreaming diffs a quiescent engine against them).
//
// All programs follow the engine's Pregel-style API.
package apps
