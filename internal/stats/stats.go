// Package stats provides the small statistical toolkit used throughout the
// repository: summary statistics with estimated error in the mean (the paper
// reports "mean of n = 10 repetitions, errors ... in the form of estimated
// error in the mean"), time-series recording for per-iteration metrics, and
// plain-text rendering helpers (tables, sparklines, CSV) used by the
// experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds aggregate statistics over a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n-1 denominator)
	SEM    float64 // standard error of the mean (the paper's error bars)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary over xs. An empty sample yields a zero
// Summary with N == 0.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
		s.SEM = s.StdDev / math.Sqrt(float64(s.N))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// String renders the summary as "mean ± sem" with three significant digits,
// the form used in the paper's result tables.
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g", s.Mean, s.SEM)
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
