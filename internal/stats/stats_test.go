package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.SEM != 0 {
		t.Fatalf("empty summary should be zero, got %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.N != 1 || s.Mean != 3.5 || s.Median != 3.5 {
		t.Fatalf("unexpected summary %+v", s)
	}
	if s.StdDev != 0 || s.SEM != 0 {
		t.Fatalf("single sample must have zero spread, got %+v", s)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	// 2,4,4,4,5,5,7,9 has mean 5, sample stddev ≈ 2.138.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s := Summarize(xs)
	if s.Mean != 5 {
		t.Errorf("mean = %v, want 5", s.Mean)
	}
	if math.Abs(s.StdDev-2.13809) > 1e-4 {
		t.Errorf("stddev = %v, want ≈2.138", s.StdDev)
	}
	if math.Abs(s.SEM-s.StdDev/math.Sqrt(8)) > 1e-12 {
		t.Errorf("sem = %v inconsistent with stddev", s.SEM)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %v/%v, want 2/9", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Errorf("median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Mean && s.Mean <= s.Max && s.Min <= s.Median && s.Median <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(nil) = %v, want 0", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	str := s.String()
	if !strings.Contains(str, "±") {
		t.Errorf("summary string %q missing ± separator", str)
	}
}

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("cuts")
	if s.Last() != 0 || s.MaxY() != 0 {
		t.Fatal("empty series should report zeros")
	}
	s.Add(0, 10)
	s.Add(1, 30)
	s.Add(2, 20)
	if s.Len() != 3 || s.Last() != 20 {
		t.Fatalf("len/last = %d/%v", s.Len(), s.Last())
	}
	if s.MaxY() != 30 || s.MinY() != 10 {
		t.Fatalf("max/min = %v/%v", s.MaxY(), s.MinY())
	}
}

func TestSeriesNormalize(t *testing.T) {
	s := NewSeries("t")
	s.Add(0, 4)
	s.Add(1, 2)
	n := s.Normalize(4)
	if n.Y[0] != 1 || n.Y[1] != 0.5 {
		t.Fatalf("normalized = %v", n.Y)
	}
	// Zero base must not divide.
	z := s.Normalize(0)
	if z.Y[0] != 4 {
		t.Fatalf("zero-base normalize changed values: %v", z.Y)
	}
	// Original untouched.
	if s.Y[0] != 4 {
		t.Fatal("Normalize mutated the receiver")
	}
}

func TestSeriesDownsample(t *testing.T) {
	s := NewSeries("x")
	for i := 0; i < 100; i++ {
		s.Add(float64(i), float64(i))
	}
	d := s.Downsample(10)
	if d.Len() != 10 {
		t.Fatalf("downsampled len = %d, want 10", d.Len())
	}
	if d.X[0] != 0 || d.X[9] != 99 {
		t.Fatalf("endpoints not preserved: %v ... %v", d.X[0], d.X[9])
	}
	small := NewSeries("y")
	small.Add(1, 1)
	if small.Downsample(10).Len() != 1 {
		t.Fatal("short series should be copied unchanged")
	}
}

func TestSeriesSparkline(t *testing.T) {
	s := NewSeries("x")
	for i := 0; i < 8; i++ {
		s.Add(float64(i), float64(i))
	}
	sp := s.Sparkline(8)
	if len([]rune(sp)) != 8 {
		t.Fatalf("sparkline width = %d, want 8", len([]rune(sp)))
	}
	if []rune(sp)[0] == []rune(sp)[7] {
		t.Fatal("increasing series should start and end with different blocks")
	}
}

func TestSeriesCSV(t *testing.T) {
	s := NewSeries("v")
	s.Add(1, 2)
	csv := s.CSV()
	if !strings.HasPrefix(csv, "x,v\n") || !strings.Contains(csv, "1,2\n") {
		t.Fatalf("bad csv: %q", csv)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	out := tb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2.5") {
		t.Fatalf("table output missing rows:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", tb.NumRows())
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, rule, two rows
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
}
