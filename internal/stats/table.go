package stats

import (
	"fmt"
	"strings"
)

// Table accumulates rows of strings and renders them as an aligned
// plain-text table. The experiment harness uses it to print the paper's
// tables and per-figure result rows.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells beyond the header width are kept and simply
// widen the table.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row formatting each value with %v, using %.4g for
// floats so result tables stay compact.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows reports the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with space-aligned columns and a separator rule
// under the header.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(cols-1)) + "\n")
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
