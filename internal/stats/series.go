package stats

import (
	"fmt"
	"strings"
)

// Series records a named sequence of (x, y) points, typically one point per
// iteration or superstep. It is the unit the experiment harness uses to
// regenerate the paper's figures as printed columns.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series {
	return &Series{Name: name}
}

// Add appends a point to the series.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len reports the number of points in the series.
func (s *Series) Len() int { return len(s.Y) }

// Last returns the final y value, or 0 if the series is empty.
func (s *Series) Last() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	return s.Y[len(s.Y)-1]
}

// MaxY returns the maximum y value, or 0 if the series is empty.
func (s *Series) MaxY() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	m := s.Y[0]
	for _, y := range s.Y[1:] {
		if y > m {
			m = y
		}
	}
	return m
}

// MinY returns the minimum y value, or 0 if the series is empty.
func (s *Series) MinY() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	m := s.Y[0]
	for _, y := range s.Y[1:] {
		if y < m {
			m = y
		}
	}
	return m
}

// Normalize returns a copy of the series with every y divided by base.
// A zero base yields an unmodified copy; this matches the paper's
// convention of normalising time-per-iteration to the static-hash value.
func (s *Series) Normalize(base float64) *Series {
	out := &Series{Name: s.Name, X: append([]float64(nil), s.X...)}
	out.Y = make([]float64, len(s.Y))
	copy(out.Y, s.Y)
	if base != 0 {
		for i := range out.Y {
			out.Y[i] /= base
		}
	}
	return out
}

// Downsample returns a copy keeping roughly n evenly spaced points
// (always including the first and last). If the series already has at most
// n points it is copied unchanged.
func (s *Series) Downsample(n int) *Series {
	out := &Series{Name: s.Name}
	if n <= 0 || s.Len() == 0 {
		return out
	}
	if s.Len() <= n {
		out.X = append([]float64(nil), s.X...)
		out.Y = append([]float64(nil), s.Y...)
		return out
	}
	step := float64(s.Len()-1) / float64(n-1)
	for i := 0; i < n; i++ {
		idx := int(float64(i)*step + 0.5)
		if idx >= s.Len() {
			idx = s.Len() - 1
		}
		out.Add(s.X[idx], s.Y[idx])
	}
	return out
}

// Sparkline renders the series' y values as a unicode sparkline of the
// given width, used for quick visual inspection of figure shapes in the
// experiment harness output.
func (s *Series) Sparkline(width int) string {
	ds := s.Downsample(width)
	if ds.Len() == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := ds.MinY(), ds.MaxY()
	var b strings.Builder
	for _, y := range ds.Y {
		idx := 0
		if hi > lo {
			idx = int((y - lo) / (hi - lo) * float64(len(blocks)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(blocks) {
			idx = len(blocks) - 1
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}

// CSV renders the series as two-column CSV with a header row.
func (s *Series) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "x,%s\n", s.Name)
	for i := range s.Y {
		fmt.Fprintf(&b, "%g,%g\n", s.X[i], s.Y[i])
	}
	return b.String()
}
