package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func quickOpt() Options {
	return Options{Quick: true, Reps: 2, Seed: 1}
}

func TestRegistryAndDispatch(t *testing.T) {
	ids := IDs()
	want := []string{"table1", "fig1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "apps"}
	if len(ids) != len(want) {
		t.Fatalf("registry has %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("registry order %v, want %v", ids, want)
		}
	}
	if _, err := Run("nope", quickOpt()); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestResultRender(t *testing.T) {
	res, err := Table1(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	for _, want := range []string{"table1", "64kcube", "note:"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	res, err := Table1(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if res.Tables[0].NumRows() != 12 {
		t.Fatalf("Table 1 must list 12 datasets, got %d rows", res.Tables[0].NumRows())
	}
	// The small full-scale rows must match published |V| exactly.
	if res.Values["built.V.1e4"] != 10000 {
		t.Errorf("1e4 |V| = %v", res.Values["built.V.1e4"])
	}
	if res.Values["built.E.1e4"] != 27900 {
		t.Errorf("1e4 |E| = %v", res.Values["built.E.1e4"])
	}
}

func TestFigure1Shape(t *testing.T) {
	res, err := Figure1(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: cut ratio statistically flat in s. Allow a loose band at
	// miniature scale: max/min mean ratio below 2 on the mesh.
	lo, hi := 1e9, 0.0
	for _, s := range []string{"0.1", "0.3", "0.5", "0.8", "1.0"} {
		v := res.Values["64kcube.cut.s="+s]
		if v <= 0 {
			t.Fatalf("missing cut value for s=%s", s)
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi/lo > 2 {
		t.Errorf("cut ratio not flat in s: min %.3f max %.3f", lo, hi)
	}
	// Convergence must take at least a few iterations everywhere.
	if res.Values["64kcube.conv.s=0.5"] <= 1 {
		t.Error("implausible instant convergence at s=0.5")
	}
}

func TestFigure4Shape(t *testing.T) {
	res, err := Figure4(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []string{"64kcube", "epinion"} {
		// Paper: "significantly improves the cut ratio (by 0.2 to 0.4) ...
		// for three out of four initial partition strategies". Assert a
		// ≥0.15 improvement for HSH and RND at miniature scale.
		for _, strat := range []string{"HSH", "RND"} {
			ini := res.Values[g+"."+strat+".initial"]
			fin := res.Values[g+"."+strat+".iterative"]
			if ini-fin < 0.15 {
				t.Errorf("%s/%s: improvement %.3f below the paper's 0.2–0.4 band", g, strat, ini-fin)
			}
		}
		// DGR barely improves (same greedy nature).
		dgrGap := res.Values[g+".DGR.initial"] - res.Values[g+".DGR.iterative"]
		if dgrGap > 0.35 {
			t.Errorf("%s: DGR improved by %.3f, paper says it barely improves", g, dgrGap)
		}
		if res.Values[g+".metis"] <= 0 {
			t.Errorf("%s: missing METIS reference", g)
		}
		// Ordering: DGR-started runs end closest to the METIS line.
		if res.Values[g+".DGR.iterative"] > res.Values[g+".HSH.iterative"]+0.05 {
			t.Errorf("%s: DGR iterative %.3f should not be above HSH iterative %.3f",
				g, res.Values[g+".DGR.iterative"], res.Values[g+".HSH.iterative"])
		}
		// METIS stays the lower bound of the field.
		if res.Values[g+".metis"] > res.Values[g+".DGR.iterative"]+0.1 {
			t.Errorf("%s: METIS %.3f above DGR iterative %.3f — reference line implausible",
				g, res.Values[g+".metis"], res.Values[g+".DGR.iterative"])
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	res, err := Figure5(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	// Meshes must partition better than the dense power-law graphs for
	// every strategy (paper: "FEMs generally get better results").
	for _, strat := range []string{"DGR", "HSH", "MNN", "RND"} {
		mesh := res.Values["1e4."+strat]
		plc := res.Values["plc1000."+strat]
		if mesh >= plc {
			t.Errorf("%s: mesh cut %.3f not below plc cut %.3f", strat, mesh, plc)
		}
	}
}

func TestFigure6Shape(t *testing.T) {
	res, err := Figure6(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	// Convergence time grows with size for meshes, sub-linearly: from
	// 1000 to 9900 vertices (≈10×), time grows but by far less than 10×.
	c1 := res.Values["mesh.conv.n=1000"]
	c3 := res.Values["mesh.conv.n=9900"]
	if c3 <= c1*0.8 {
		t.Errorf("mesh convergence did not grow with size: %v -> %v", c1, c3)
	}
	if c3 > c1*10 {
		t.Errorf("mesh convergence grew super-linearly: %v -> %v", c1, c3)
	}
	// Cut ratios stay in a sane band at every size.
	for _, n := range []string{"1000", "3000", "9900"} {
		for _, fam := range []string{"mesh", "plaw"} {
			v := res.Values[fam+".cut.n="+n]
			if v <= 0 || v >= 1 {
				t.Errorf("%s n=%s: cut ratio %v out of band", fam, n, v)
			}
		}
	}
}

func TestFigure7Shape(t *testing.T) {
	res, err := Figure7(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	// Cuts must drop well below the hash initial (paper: ≈50 % reduction
	// at 100 M scale; ≥25 % at the miniature scale of quick mode).
	if res.Values["phaseA.cut"] > res.Values["initial.cut"]*0.75 {
		t.Errorf("phase A cut %.3f vs initial %.3f: reduction below paper band",
			res.Values["phaseA.cut"], res.Values["initial.cut"])
	}
	// Steady-state normalised time must beat the hash baseline.
	if res.Values["phaseA.steady.time"] >= 1 {
		t.Errorf("steady normalised time %.3f not below 1", res.Values["phaseA.steady.time"])
	}
	// The burst must be absorbed: final cut within a factor of the
	// post-re-arrangement cut and steady time still below baseline.
	if res.Values["final.cut"] > res.Values["phaseA.cut"]*2+0.05 {
		t.Errorf("burst not absorbed: %.3f vs %.3f", res.Values["final.cut"], res.Values["phaseA.cut"])
	}
	if res.Values["phaseB.steady.time"] >= 1 {
		t.Errorf("post-burst steady time %.3f not below 1", res.Values["phaseB.steady.time"])
	}
	if res.Values["migrations.total"] == 0 {
		t.Error("no migrations recorded")
	}
}

func TestFigure8Shape(t *testing.T) {
	res, err := Figure8(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: adaptive mean superstep time well below static hash.
	if res.Values["speedup"] < 1.2 {
		t.Errorf("adaptive speedup %.2f below shape threshold", res.Values["speedup"])
	}
	// And with less variability.
	if res.Values["adaptive.std.time"] >= res.Values["hash.std.time"]*1.5 {
		t.Errorf("adaptive variability %.3f not improved vs hash %.3f",
			res.Values["adaptive.std.time"], res.Values["hash.std.time"])
	}
	if res.Values["ticks"] <= 0 {
		t.Error("no ticks recorded")
	}
	// The scheduled worker failure must have triggered exactly one
	// checkpoint recovery (the paper's mid-afternoon dip).
	if res.Values["recovery.dips"] != 1 {
		t.Errorf("recovery.dips = %v, want 1", res.Values["recovery.dips"])
	}
}

func TestFigure9Shape(t *testing.T) {
	res, err := Figure9(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	for wk := 1; wk <= 4; wk++ {
		d := res.Values[sprintWeek(wk, "dynamic.cuts")]
		s := res.Values[sprintWeek(wk, "static.cuts")]
		if d <= 0 || s <= 0 {
			t.Fatalf("week %d missing cut data (d=%v s=%v)", wk, d, s)
		}
		if d >= s {
			t.Errorf("week %d: dynamic cuts %.3f not below static %.3f", wk, d, s)
		}
	}
	// Time per iteration: dynamic below static in the final week (paper:
	// consistently less than 50 %; we assert a conservative 80 %).
	dt := res.Values[sprintWeek(4, "dynamic.time")]
	st := res.Values[sprintWeek(4, "static.time")]
	if dt >= st*0.8 {
		t.Errorf("week 4: dynamic time %.3f not well below static %.3f", dt, st)
	}
}

func TestAppsShape(t *testing.T) {
	res, err := Apps(Options{Quick: true, Seed: 1, App: "cc"})
	if err != nil {
		t.Fatal(err)
	}
	// The driver oracle-checks every cell internally, so reaching here
	// means answers were exact; pin that adaptation paid on both rates.
	for _, rate := range []string{"lo", "hi"} {
		s := res.Values["cc."+rate+".static.cutmsgs"]
		a := res.Values["cc."+rate+".adaptive.cutmsgs"]
		if s <= 0 || a <= 0 {
			t.Fatalf("rate %s: missing cut-message data (static=%v adaptive=%v)", rate, s, a)
		}
		if a >= s {
			t.Errorf("rate %s: adaptive cut msgs %.0f not below static %.0f", rate, a, s)
		}
		if red := res.Values["cc."+rate+".reduction"]; red < 0.05 {
			t.Errorf("rate %s: reduction %.3f below shape threshold", rate, red)
		}
		if res.Values["cc."+rate+".adaptive.migrations"] <= 0 {
			t.Errorf("rate %s: adaptive cell recorded no migrations", rate)
		}
	}
	// Unknown app filter must error.
	if _, err := Apps(Options{Quick: true, Seed: 1, App: "nope"}); err == nil {
		t.Fatal("unknown app filter must error")
	}
}

func sprintWeek(wk int, suffix string) string {
	return "week" + string(rune('0'+wk)) + "." + suffix
}

func TestIncrementalOptionRuns(t *testing.T) {
	// One quality experiment (sequential heuristic) and one system
	// experiment (BSP service) under the active-set scheduler.
	for _, id := range []string{"fig5", "fig8"} {
		if _, err := Run(id, Options{Quick: true, Reps: 1, Seed: 1, Incremental: true}); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
}
