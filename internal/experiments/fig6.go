package experiments

import (
	"fmt"

	"xdgp/internal/core"
	"xdgp/internal/gen"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
	"xdgp/internal/stats"
)

// Figure6 reproduces the scalability study (Section 4.2.3): families of
// meshes and power-law graphs from 1 000 to 300 000 vertices, k=9, s=0.5,
// tracking cut ratio and convergence time against size. Paper shape: mesh
// convergence time grows ~O(log N) and mesh cut ratio slightly improves
// with size; power-law convergence grows more slowly and its cut ratio is
// near-flat, slightly degrading.
func Figure6(opt Options) (*Result, error) {
	opt = opt.normalize(10)
	res := newResult("fig6", "Cut ratio and convergence time vs graph size (k=9, s=0.5)")
	sizes := []int{1000, 3000, 9900, 29700, 99000, 300000}
	if opt.Quick {
		sizes = []int{1000, 3000, 9900}
	}
	const k = 9
	tb := stats.NewTable("family", "|V|", "cut ratio", "convergence time")
	for _, family := range []string{"mesh", "plaw"} {
		cutS := stats.NewSeries("cuts-" + family)
		convS := stats.NewSeries("convergence-" + family)
		for _, n := range sizes {
			var ratios, convs []float64
			for rep := 0; rep < opt.Reps; rep++ {
				seed := opt.Seed + int64(rep)
				var g *graph.Graph
				if family == "mesh" {
					g = gen.MeshFamily(n)
				} else {
					g = gen.PowerLawForSize(n, seed)
				}
				cfg := core.DefaultConfig(k, seed)
				cfg.S = 0.5
				cfg.RecordEvery = 0
				cfg.Parallelism = opt.coreParallelism()
				cfg.Incremental = opt.Incremental
				cfg.WorkloadWeight = opt.WorkloadWeight
				p, err := core.New(g, partition.Hash(g, k), cfg)
				if err != nil {
					return nil, err
				}
				r := p.Run()
				ratios = append(ratios, r.FinalCutRatio)
				convs = append(convs, float64(r.ConvergedAt))
			}
			rs, cs := stats.Summarize(ratios), stats.Summarize(convs)
			cutS.Add(float64(n), rs.Mean)
			convS.Add(float64(n), cs.Mean)
			tb.AddRowf(family, n, rs.String(), cs.String())
			res.Values[fmt.Sprintf("%s.cut.n=%d", family, n)] = rs.Mean
			res.Values[fmt.Sprintf("%s.conv.n=%d", family, n)] = cs.Mean
		}
		res.Series = append(res.Series, cutS, convS)
	}
	res.Tables = append(res.Tables, tb)
	res.addNote("paper shape: mesh convergence grows ~O(log N); power-law convergence grows more slowly; cut ratios roughly size-stable")
	return res, nil
}
