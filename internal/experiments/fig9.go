package experiments

import (
	"fmt"

	"xdgp/internal/adaptive"
	"xdgp/internal/apps"
	"xdgp/internal/bsp"
	"xdgp/internal/gen"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
	"xdgp/internal/stats"
)

// Figure9 reproduces the mobile-network use case (Section 4.3): maximal
// cliques over one month of call-detail records, replayed with buffered
// windows — the clique algorithm "requires freezing the graph topology
// until a result is obtained, therefore requiring to buffer all the graph
// changes until the computation finishes". Each window: apply the buffered
// batch, reset the computation, run to quiescence, measure cuts and time
// per iteration. Two clusters run the identical stream: one with the
// adaptive algorithm, one static. Paper shape: the dynamic cluster keeps a
// stable, much lower cut ratio and less than half the time per iteration,
// while the static cluster degrades over the weeks.
func Figure9(opt Options) (*Result, error) {
	opt = opt.normalize(1)
	res := newResult("fig9", "CDR stream: weekly cuts and time per iteration, dynamic vs static (max clique)")

	cfg := gen.DefaultCDRConfig()
	cfg.Seed = opt.Seed
	if opt.Quick {
		cfg.BaseUsers = 2000
		cfg.CallsPerTick = 300
		cfg.TicksPerWeek = 8
		cfg.InactiveTTL = 8
	}
	const k = 5 // the paper's cluster: 5 workers
	windowTicks := cfg.TicksPerWeek / 4
	if windowTicks < 1 {
		windowTicks = 1
	}

	type weekly struct {
		cuts  [4][]float64
		times [4][]float64
	}

	run := func(adapt bool) (*weekly, error) {
		stream := gen.NewCDRStream(cfg)
		g := graph.NewUndirected(cfg.BaseUsers)
		asn := partition.NewAssignment(0, k)
		e, err := bsp.NewEngine(g, asn, apps.NewMaxClique(), bsp.Config{Workers: opt.bspWorkers(k), Seed: opt.Seed})
		if err != nil {
			return nil, err
		}
		if adapt {
			acfg := adaptive.DefaultConfig(opt.Seed)
			acfg.Incremental = opt.Incremental
			acfg.WorkloadWeight = opt.WorkloadWeight
			svc, err := adaptive.New(acfg)
			if err != nil {
				return nil, err
			}
			e.SetRepartitioner(svc)
		}
		w := &weekly{}
		tick := 0
		for !stream.Done() {
			// Buffer a window of graph changes while "frozen".
			var buffered graph.Batch
			week := 0
			for i := 0; i < windowTicks && !stream.Done(); i++ {
				week = stream.Week(tick)
				buffered = append(buffered, stream.Next()...)
				tick++
			}
			// Thaw: apply the whole window at one barrier, then rerun the
			// clique computation on the frozen topology.
			e.SetStream(graph.NewSliceStream([]graph.Batch{buffered}))
			e.RunSuperstep()
			e.ResetComputation()
			sts, _ := e.RunUntilQuiescent(12)
			var total float64
			steps := 0
			for _, st := range sts {
				if st.ActiveVertices > 0 {
					total += st.Time
					steps++
				}
			}
			if steps > 0 && week < 4 {
				w.times[week] = append(w.times[week], total/float64(steps))
				w.cuts[week] = append(w.cuts[week], partition.CutRatio(e.Graph(), e.Addr()))
			}
		}
		return w, nil
	}

	dyn, err := run(true)
	if err != nil {
		return nil, err
	}
	sta, err := run(false)
	if err != nil {
		return nil, err
	}

	cutTb := stats.NewTable("week", "dynamic cuts", "static cuts")
	timeTb := stats.NewTable("week", "dynamic time/iter", "static time/iter")
	cutsD := stats.NewSeries("cuts-dynamic")
	cutsS := stats.NewSeries("cuts-static")
	timeD := stats.NewSeries("time-dynamic")
	timeS := stats.NewSeries("time-static")
	for wk := 0; wk < 4; wk++ {
		dc, sc := stats.Summarize(dyn.cuts[wk]), stats.Summarize(sta.cuts[wk])
		dt, st := stats.Summarize(dyn.times[wk]), stats.Summarize(sta.times[wk])
		cutTb.AddRowf(fmt.Sprintf("week%d", wk+1), dc.String(), sc.String())
		timeTb.AddRowf(fmt.Sprintf("week%d", wk+1), dt.String(), st.String())
		cutsD.Add(float64(wk+1), dc.Mean)
		cutsS.Add(float64(wk+1), sc.Mean)
		timeD.Add(float64(wk+1), dt.Mean)
		timeS.Add(float64(wk+1), st.Mean)
		res.Values[fmt.Sprintf("week%d.dynamic.cuts", wk+1)] = dc.Mean
		res.Values[fmt.Sprintf("week%d.static.cuts", wk+1)] = sc.Mean
		res.Values[fmt.Sprintf("week%d.dynamic.time", wk+1)] = dt.Mean
		res.Values[fmt.Sprintf("week%d.static.time", wk+1)] = st.Mean
	}
	res.Tables = append(res.Tables, cutTb, timeTb)
	res.Series = append(res.Series, cutsD, cutsS, timeD, timeS)
	res.Values["weekly.add.rate"] = cfg.AddPerWeek
	res.Values["weekly.del.rate"] = cfg.DelPerWeek

	res.addNote("paper shape: dynamic keeps cuts stable and time/iteration under 50%% of static; static degrades over the weeks")
	return res, nil
}
