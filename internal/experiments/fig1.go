package experiments

import (
	"fmt"

	"xdgp/internal/core"
	"xdgp/internal/partition"
	"xdgp/internal/stats"
)

// Figure1 reproduces the willingness-to-move study (Section 2.3): sweeping
// s over (0,1] on the 64kcube mesh (panel A) and the epinions power-law
// graph (panel B), 9 partitions, reporting convergence time and final cut
// ratio. The paper's findings, which the shape checks assert: the cut
// ratio is statistically flat in s, while convergence time suffers at both
// extremes (too few migrations per iteration vs. neighbour chasing), with
// s = 0.5 a good default.
func Figure1(opt Options) (*Result, error) {
	opt = opt.normalize(10)
	res := newResult("fig1", "Effect of s on convergence time and number of cuts (k=9)")
	sweep := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	if opt.Quick {
		sweep = []float64{0.1, 0.3, 0.5, 0.8, 1.0}
	}
	const k = 9
	tb := stats.NewTable("graph", "s", "convergence time", "cut ratio")
	for _, name := range []string{"64kcube", "epinion"} {
		conv := stats.NewSeries("convergence-" + name)
		cuts := stats.NewSeries("cuts-" + name)
		for _, s := range sweep {
			var convs, ratios []float64
			for r := 0; r < opt.Reps; r++ {
				seed := opt.Seed + int64(r)
				g, err := buildWorkload(name, opt.Quick, seed)
				if err != nil {
					return nil, err
				}
				cfg := core.DefaultConfig(k, seed)
				cfg.S = s
				cfg.RecordEvery = 0
				cfg.Parallelism = opt.coreParallelism()
				cfg.Incremental = opt.Incremental
				cfg.WorkloadWeight = opt.WorkloadWeight
				p, err := core.New(g, partition.Hash(g, k), cfg)
				if err != nil {
					return nil, err
				}
				r := p.Run()
				convs = append(convs, float64(r.ConvergedAt))
				ratios = append(ratios, r.FinalCutRatio)
			}
			cs, rs := stats.Summarize(convs), stats.Summarize(ratios)
			conv.Add(s, cs.Mean)
			cuts.Add(s, rs.Mean)
			tb.AddRowf(name, s, cs.String(), rs.String())
			res.Values[fmt.Sprintf("%s.conv.s=%.1f", name, s)] = cs.Mean
			res.Values[fmt.Sprintf("%s.cut.s=%.1f", name, s)] = rs.Mean
		}
		res.Series = append(res.Series, conv, cuts)
	}
	res.Tables = append(res.Tables, tb)
	res.addNote("paper shape: cut ratio flat in s; convergence time worst at the extremes; s=0.5 recommended")
	return res, nil
}
