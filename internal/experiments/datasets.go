package experiments

import (
	"fmt"

	"xdgp/internal/gen"
	"xdgp/internal/graph"
)

// The quality experiments operate on named workloads; in quick mode each
// is replaced by a structurally identical miniature so the full suite runs
// in seconds.

// buildWorkload returns the named graph at experiment scale.
func buildWorkload(name string, quick bool, seed int64) (*graph.Graph, error) {
	if quick {
		switch name {
		case "64kcube", "1e4", "1e6":
			return gen.Cube3D(9), nil // 729 vertices
		case "3elt", "4elt":
			return gen.Mesh2D(15, 40), nil
		case "epinion", "wikivote", "plc10000", "plc50000":
			return gen.HolmeKim(1200, 5, 0.1, seed), nil
		case "plc1000":
			return gen.HolmeKim(600, 5, 0.1, seed), nil
		}
		return nil, fmt.Errorf("no quick variant for workload %q", name)
	}
	d, err := gen.ByName(name)
	if err != nil {
		return nil, err
	}
	return d.Build(seed), nil
}

// table1Build builds a registry dataset for the Table 1 report, skipping
// the heavyweight rows in quick mode.
func table1Build(d gen.Dataset, quick bool, seed int64) (*graph.Graph, bool) {
	if quick && d.PaperV > 20000 {
		return nil, false
	}
	return d.Build(seed), true
}
