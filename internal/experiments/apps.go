package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"

	"xdgp/internal/adaptive"
	"xdgp/internal/apps"
	"xdgp/internal/bsp"
	"xdgp/internal/gen"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
	"xdgp/internal/stats"
)

// Apps is the "adaptation pays" experiment for the streaming analytics
// suite: each streaming program (connected components, SSSP, PageRank)
// runs over an adapting vs a static-hash partitioning of a Barabási–Albert
// graph while an edge-churn stream replays, and the churn phase's
// cut-message count (remote messages) and simulated time are compared.
// This quantifies the partition-quality → communication-cost → wall-clock
// translation the paper's system experiments are about, on live analytics
// instead of frozen topology. Every cell is oracle-checked: after the
// measurement window the engine is drained and diffed against a
// from-scratch recompute, so a reported win can never come from a wrong
// answer.
//
// XDGP_ANALYTICS_SCALE overrides the vertex count (the nightly run uses
// 100000); Options.App filters the matrix to one program.
func Apps(opt Options) (*Result, error) {
	opt = opt.normalize(1)
	res := newResult("apps", "Analytics suite: streaming apps under churn, adaptive vs static")

	n, warm, batches, drain := 20000, 260, 40, 2500
	if opt.Quick {
		n, warm, batches, drain = 1500, 160, 15, 2500
	}
	if s := os.Getenv("XDGP_ANALYTICS_SCALE"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 100 {
			return nil, fmt.Errorf("bad XDGP_ANALYTICS_SCALE %q", s)
		}
		n = v
	}
	const k = 8

	type appCase struct {
		name string
		prog func() bsp.Program
	}
	matrix := []appCase{
		{"cc", func() bsp.Program { return apps.NewStreamingCC() }},
		{"sssp", func() bsp.Program { return apps.NewStreamingSSSP(0) }},
		{"pagerank", func() bsp.Program { return apps.NewStreamingPageRank() }},
	}
	if opt.App != "" {
		kept := matrix[:0]
		for _, c := range matrix {
			if c.name == opt.App {
				kept = append(kept, c)
			}
		}
		if len(kept) == 0 {
			return nil, fmt.Errorf("unknown app %q (known: cc, sssp, pagerank)", opt.App)
		}
		matrix = kept
	}
	rates := []struct {
		label string
		rate  float64
	}{{"lo", 0.002}, {"hi", 0.01}}

	// runCell replays the same churn against one engine and returns the
	// totals of the churn window (stream start → quiescence or cap).
	runCell := func(c appCase, churn []graph.Batch, adapt bool) (bsp.RunTotals, error) {
		g := gen.BarabasiAlbert(n, 3, opt.Seed)
		prog := c.prog()
		e, err := bsp.NewEngine(g, partition.Hash(g, k), prog, bsp.Config{
			Workers: opt.bspWorkers(k), Seed: opt.Seed,
		})
		if err != nil {
			return bsp.RunTotals{}, err
		}
		if adapt {
			acfg := adaptive.DefaultConfig(opt.Seed)
			acfg.Incremental = opt.Incremental
			acfg.WorkloadWeight = opt.WorkloadWeight
			svc, err := adaptive.New(acfg)
			if err != nil {
				return bsp.RunTotals{}, err
			}
			e.SetRepartitioner(svc)
		}
		// Warm phase: the analytics converge and (in the adaptive cell)
		// the partitioning re-arranges — not part of the measurement.
		e.RunUntilQuiescent(warm)
		mark := len(e.History())
		e.SetStream(graph.NewSliceStream(churn))
		if _, done := e.RunUntilQuiescent(drain); !done {
			return bsp.RunTotals{}, fmt.Errorf("%s adaptive=%v: no quiescence within %d supersteps", c.name, adapt, drain)
		}
		totals := bsp.Summarize(e.History()[mark:])
		// Settle any in-flight migrations, then oracle-check the answers.
		e.SetRepartitioner(nil)
		if _, done := e.RunUntilQuiescent(drain); !done {
			return bsp.RunTotals{}, fmt.Errorf("%s adaptive=%v: did not settle for verification", c.name, adapt)
		}
		if err := apps.VerifyStreaming(e, prog); err != nil {
			return bsp.RunTotals{}, fmt.Errorf("%s adaptive=%v: oracle divergence: %w", c.name, adapt, err)
		}
		return totals, nil
	}

	tb := stats.NewTable("app", "churn", "cut msgs static", "cut msgs adaptive", "reduction", "time static", "time adaptive")
	for _, c := range matrix {
		for _, r := range rates {
			// The churn stream is generated once against the warm
			// topology, so both cells replay identical mutations.
			churn := churnEdgeBatches(gen.BarabasiAlbert(n, 3, opt.Seed), r.rate, batches, opt.Seed+77)
			static, err := runCell(c, churn, false)
			if err != nil {
				return nil, err
			}
			adaptiveT, err := runCell(c, churn, true)
			if err != nil {
				return nil, err
			}
			reduction := 0.0
			if static.RemoteMsgs > 0 {
				reduction = 1 - float64(adaptiveT.RemoteMsgs)/float64(static.RemoteMsgs)
			}
			prefix := c.name + "." + r.label
			res.Values[prefix+".static.cutmsgs"] = float64(static.RemoteMsgs)
			res.Values[prefix+".adaptive.cutmsgs"] = float64(adaptiveT.RemoteMsgs)
			res.Values[prefix+".reduction"] = reduction
			res.Values[prefix+".static.time"] = static.Time
			res.Values[prefix+".adaptive.time"] = adaptiveT.Time
			res.Values[prefix+".adaptive.migrations"] = float64(adaptiveT.MigrationsCompleted)
			tb.AddRow(c.name, r.label,
				fmt.Sprintf("%d", static.RemoteMsgs),
				fmt.Sprintf("%d", adaptiveT.RemoteMsgs),
				fmt.Sprintf("%.1f%%", reduction*100),
				fmt.Sprintf("%.1f", static.Time),
				fmt.Sprintf("%.1f", adaptiveT.Time))
		}
	}
	res.Tables = append(res.Tables, tb)
	res.addNote("every cell oracle-checked against a from-scratch recompute after the measurement window — zero divergence")
	res.addNote("BA(%d, 3), k=%d, %d churn batches per rate (edge rewires at 0.2%% and 1%% of edges per batch)", n, k, batches)
	return res, nil
}

// churnEdgeBatches pre-generates nBatches of edge churn against an evolving
// shadow of g: every batch removes rate·|E| random live edges and adds the
// same number of random non-edges, so the graph's size stays stationary
// while its wiring drifts — the paper's stationary-churn regime.
func churnEdgeBatches(shadow *graph.Graph, rate float64, nBatches int, seed int64) []graph.Batch {
	rng := rand.New(rand.NewSource(seed))
	var verts []graph.VertexID
	shadow.ForEachVertex(func(v graph.VertexID) { verts = append(verts, v) })
	out := make([]graph.Batch, 0, nBatches)
	for i := 0; i < nBatches; i++ {
		ops := int(rate * float64(shadow.NumEdges()))
		if ops < 1 {
			ops = 1
		}
		var edges [][2]graph.VertexID
		shadow.ForEachEdge(func(u, v graph.VertexID) { edges = append(edges, [2]graph.VertexID{u, v}) })
		b := make(graph.Batch, 0, 2*ops)
		for j := 0; j < ops && len(edges) > 0; j++ {
			i := rng.Intn(len(edges))
			u, v := edges[i][0], edges[i][1]
			edges[i] = edges[len(edges)-1]
			edges = edges[:len(edges)-1]
			if shadow.RemoveEdge(u, v) {
				b = append(b, graph.Mutation{Kind: graph.MutRemoveEdge, U: u, V: v})
			}
		}
		for j := 0; j < ops; j++ {
			for tries := 0; tries < 32; tries++ {
				u := verts[rng.Intn(len(verts))]
				v := verts[rng.Intn(len(verts))]
				if u != v && !shadow.HasEdge(u, v) {
					shadow.AddEdge(u, v)
					b = append(b, graph.Mutation{Kind: graph.MutAddEdge, U: u, V: v})
					break
				}
			}
		}
		out = append(out, b)
	}
	return out
}
