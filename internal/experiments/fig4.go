package experiments

import (
	"fmt"

	"xdgp/internal/core"
	"xdgp/internal/metis"
	"xdgp/internal/partition"
	"xdgp/internal/stats"
)

// Figure4 reproduces the initial-partitioning sensitivity study (Section
// 4.2.1): for the 64kcube mesh (A) and the epinions power-law graph (B),
// 9 partitions with 110 % capacity, it compares the cut ratio of each
// initial strategy (DGR, HSH, MNN, RND) before and after running the
// iterative algorithm, against the centralised multilevel (METIS-family)
// reference line. Paper shape: the heuristic improves HSH/MNN/RND by
// 0.2–0.4 cut ratio, barely improves DGR (same greedy nature), and lands
// near the METIS line.
func Figure4(opt Options) (*Result, error) {
	opt = opt.normalize(10)
	res := newResult("fig4", "Cut ratio from four initial strategies, before/after iterative algorithm (k=9, cap 110%)")
	const k = 9
	tb := stats.NewTable("graph", "strategy", "initial", "iterative", "metis line")
	for _, name := range []string{"64kcube", "epinion"} {
		// The METIS reference is a single centralised run per graph.
		gm, err := buildWorkload(name, opt.Quick, opt.Seed)
		if err != nil {
			return nil, err
		}
		ma, err := metis.PartitionKWay(gm, k, metis.DefaultOptions(opt.Seed))
		if err != nil {
			return nil, err
		}
		metisRatio := partition.CutRatio(gm, ma)
		res.Values[name+".metis"] = metisRatio

		initSeries := stats.NewSeries("initial-" + name)
		iterSeries := stats.NewSeries("iterative-" + name)
		for si, strat := range partition.Strategies() {
			var inits, iters []float64
			for rep := 0; rep < opt.Reps; rep++ {
				seed := opt.Seed + int64(rep)
				g, err := buildWorkload(name, opt.Quick, seed)
				if err != nil {
					return nil, err
				}
				asn, err := partition.Initial(strat, g, k, 1.10, seed)
				if err != nil {
					return nil, err
				}
				inits = append(inits, partition.CutRatio(g, asn))
				cfg := core.DefaultConfig(k, seed)
				cfg.RecordEvery = 0
				cfg.Parallelism = opt.coreParallelism()
				cfg.Incremental = opt.Incremental
				cfg.WorkloadWeight = opt.WorkloadWeight
				p, err := core.New(g, asn, cfg)
				if err != nil {
					return nil, err
				}
				iters = append(iters, p.Run().FinalCutRatio)
			}
			is, fs := stats.Summarize(inits), stats.Summarize(iters)
			tb.AddRowf(name, string(strat), is.String(), fs.String(), metisRatio)
			initSeries.Add(float64(si), is.Mean)
			iterSeries.Add(float64(si), fs.Mean)
			res.Values[fmt.Sprintf("%s.%s.initial", name, strat)] = is.Mean
			res.Values[fmt.Sprintf("%s.%s.iterative", name, strat)] = fs.Mean
		}
		res.Series = append(res.Series, initSeries, iterSeries)
	}
	res.Tables = append(res.Tables, tb)
	res.addNote("strategies on the x-axis in paper order: DGR, HSH, MNN, RND")
	res.addNote("paper shape: iterative improves HSH/MNN/RND by 0.2–0.4, barely improves DGR, approaches the METIS line")
	return res, nil
}
