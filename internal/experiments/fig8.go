package experiments

import (
	"xdgp/internal/adaptive"
	"xdgp/internal/apps"
	"xdgp/internal/bsp"
	"xdgp/internal/gen"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
	"xdgp/internal/stats"
)

// Figure8 reproduces the online-social-network use case (Section 4.3):
// TunkRank running continuously over a day-long diurnal tweet stream, one
// cluster with the adaptive algorithm and one with static hash
// partitioning, both consuming the identical stream. Mid-afternoon a
// worker failure triggers checkpoint recovery — the throughput/time dip
// visible in the paper's plot. Paper shape: the adaptive cluster's mean
// superstep time is several times lower (0.5 s vs 2.5 s) with visibly less
// variance, because most neighbours become local.
func Figure8(opt Options) (*Result, error) {
	opt = opt.normalize(1)
	res := newResult("fig8", "Twitter stream: superstep time, adaptive vs static hash (TunkRank)")

	cfg := gen.DefaultTwitterConfig()
	cfg.Seed = opt.Seed
	if opt.Quick {
		cfg.Users = 4000
		cfg.Hours = 8
		cfg.PeakRate = 16
		cfg.TroughRate = 4
	}
	const k = 9

	run := func(adapt bool) (*stats.Series, *gen.TwitterStream, int, error) {
		stream := gen.NewTwitterStream(cfg)
		g := graph.NewDirected(cfg.Users)
		asn := partition.NewAssignment(0, k)
		e, err := bsp.NewEngine(g, asn, apps.NewTunkRank(), bsp.Config{
			Workers: opt.bspWorkers(k), Seed: opt.Seed, CheckpointEvery: 12,
		})
		if err != nil {
			return nil, nil, 0, err
		}
		if adapt {
			acfg := adaptive.DefaultConfig(opt.Seed)
			acfg.Incremental = opt.Incremental
			acfg.WorkloadWeight = opt.WorkloadWeight
			svc, err := adaptive.New(acfg)
			if err != nil {
				return nil, nil, 0, err
			}
			e.SetRepartitioner(svc)
		}
		e.SetStream(stream)
		// Worker failure two-thirds through the day (after a checkpoint).
		e.ScheduleFailure(stream.NumTicks() * 2 / 3)
		name := "superstep-time-hash"
		if adapt {
			name = "superstep-time-adaptive"
		}
		times := stats.NewSeries(name)
		recoveries := 0
		for i := 0; i < stream.NumTicks(); i++ {
			st := e.RunSuperstep()
			times.Add(float64(i), st.Time)
			if st.Recovered {
				recoveries++
			}
		}
		return times, stream, recoveries, nil
	}

	adaptiveTimes, stream, recoveries, err := run(true)
	if err != nil {
		return nil, err
	}
	hashTimes, _, _, err := run(false)
	if err != nil {
		return nil, err
	}

	rates := stats.NewSeries("tweets-per-second")
	for i, r := range stream.Rates() {
		rates.Add(float64(i), r)
	}
	res.Series = append(res.Series, rates, hashTimes, adaptiveTimes)

	// Steady-state statistics, skipping the warm-up third.
	warm := len(hashTimes.Y) / 3
	hs := stats.Summarize(hashTimes.Y[warm:])
	as := stats.Summarize(adaptiveTimes.Y[warm:])
	tb := stats.NewTable("cluster", "mean superstep time", "std dev", "p90")
	tb.AddRowf("static hash", hs.Mean, hs.StdDev, stats.Quantile(hashTimes.Y[warm:], 0.9))
	tb.AddRowf("adaptive", as.Mean, as.StdDev, stats.Quantile(adaptiveTimes.Y[warm:], 0.9))
	res.Tables = append(res.Tables, tb)

	res.Values["hash.mean.time"] = hs.Mean
	res.Values["adaptive.mean.time"] = as.Mean
	res.Values["hash.std.time"] = hs.StdDev
	res.Values["adaptive.std.time"] = as.StdDev
	if as.Mean > 0 {
		res.Values["speedup"] = hs.Mean / as.Mean
	}
	res.Values["ticks"] = float64(stream.NumTicks())
	res.Values["recovery.dips"] = float64(recoveries)

	res.addNote("paper shape: adaptive mean superstep time several times below static hash, with less variance; one recovery dip mid-afternoon")
	return res, nil
}
