package experiments

import (
	"xdgp/internal/gen"
	"xdgp/internal/stats"
)

// Table1 regenerates the paper's dataset summary: for every row it builds
// the (stand-in) graph and reports the published |V|, |E| next to the
// measured ones, plus the substitution note where one applies.
func Table1(opt Options) (*Result, error) {
	opt = opt.normalize(1)
	res := newResult("table1", "Summary of the datasets employed in this work")
	tb := stats.NewTable("name", "type", "source", "paper |V|", "paper |E|", "built |V|", "built |E|", "note")
	for _, d := range gen.Registry() {
		g, ok := table1Build(d, opt.Quick, opt.Seed)
		if !ok {
			tb.AddRowf(d.Name, d.Type, d.Source, d.PaperV, d.PaperE, "-", "-", "skipped (quick mode)")
			continue
		}
		note := d.Scale
		if note == "" {
			note = "full scale"
		}
		tb.AddRowf(d.Name, d.Type, d.Source, d.PaperV, d.PaperE, g.NumVertices(), g.NumEdges(), note)
		res.Values["built.V."+d.Name] = float64(g.NumVertices())
		res.Values["built.E."+d.Name] = float64(g.NumEdges())
		res.Values["avgdeg."+d.Name] = g.AvgDegree()
	}
	res.Tables = append(res.Tables, tb)
	res.addNote("FEM rows are exact lattice constructions; pwlaw rows are Holme–Kim " +
		"graphs matched to the published sizes; see DESIGN.md §5 for substitutions.")
	return res, nil
}
