package experiments

import (
	"fmt"

	"xdgp/internal/core"
	"xdgp/internal/partition"
	"xdgp/internal/stats"
)

// Figure5 reproduces the graph-type dependence study (Section 4.2.2): the
// final cut ratio after the iterative heuristic for eight graphs × four
// initial strategies (k=9). Paper shape: FEM meshes end with low cuts;
// dense synthetic power-law graphs (plc*) are hard for every method; the
// result depends only weakly on the initial strategy.
func Figure5(opt Options) (*Result, error) {
	opt = opt.normalize(10)
	res := newResult("fig5", "Average cuts per graph after the iterative heuristic over four initial strategies (k=9)")
	graphs := []string{"1e4", "3elt", "4elt", "64kcube", "plc1000", "plc10000", "epinion", "wikivote"}
	if opt.Quick {
		graphs = []string{"1e4", "3elt", "plc1000", "epinion"}
	}
	const k = 9
	tb := stats.NewTable("graph", "DGR", "HSH", "MNN", "RND")
	for gi, name := range graphs {
		row := []any{name}
		for _, strat := range partition.Strategies() {
			var finals []float64
			for rep := 0; rep < opt.Reps; rep++ {
				seed := opt.Seed + int64(rep)
				g, err := buildWorkload(name, opt.Quick, seed)
				if err != nil {
					return nil, err
				}
				asn, err := partition.Initial(strat, g, k, 1.10, seed)
				if err != nil {
					return nil, err
				}
				cfg := core.DefaultConfig(k, seed)
				cfg.RecordEvery = 0
				cfg.Parallelism = opt.coreParallelism()
				cfg.Incremental = opt.Incremental
				cfg.WorkloadWeight = opt.WorkloadWeight
				p, err := core.New(g, asn, cfg)
				if err != nil {
					return nil, err
				}
				finals = append(finals, p.Run().FinalCutRatio)
			}
			s := stats.Summarize(finals)
			row = append(row, s.String())
			res.Values[fmt.Sprintf("%s.%s", name, strat)] = s.Mean
		}
		tb.AddRowf(row...)
		_ = gi
	}
	res.Tables = append(res.Tables, tb)
	res.addNote("paper shape: FEMs partition well; high-degree synthetic power-law graphs are difficult for every method (incl. DGR and METIS)")
	return res, nil
}
