// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4). Each driver rebuilds the workload, runs the
// relevant systems (sequential heuristic for the quality studies, the BSP
// engine with the adaptive service for the system studies) and prints the
// same rows/series the paper reports, plus the shape checks recorded in
// EXPERIMENTS.md.
//
// Absolute values differ from the paper — its numbers came from physical
// clusters — but the comparisons (who wins, by what factor, where the
// curves bend) are reproduced, and the system experiments report times
// normalised to static hash partitioning exactly as the paper does.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"xdgp/internal/stats"
)

// Options configures an experiment run.
type Options struct {
	// Quick shrinks datasets and repetition counts so the whole suite runs
	// in seconds; used by tests and the default bench mode.
	Quick bool
	// Reps is the number of repetitions for mean ± SEM reporting; the
	// paper uses 10. Zero means the experiment's default.
	Reps int
	// Seed is the base seed; repetition r uses Seed+r.
	Seed int64
	// Out receives the printed report; nil discards it.
	Out io.Writer
	// Parallelism shards the sequential heuristic's vertex sweep (the
	// quality experiments) across this many goroutines. 0 keeps the
	// paper-exact sequential path so figures reproduce byte-identically
	// on any machine; set > 1 to trade that for wall-clock speed.
	Parallelism int
	// Workers is the number of compute goroutines per BSP engine (the
	// system experiments). 0 keeps the paper's one-worker-per-partition
	// setup; the simulated statistics are identical for any value.
	Workers int
	// Incremental switches both the sequential heuristic and the BSP
	// background service to the active-set (frontier) scheduler: sweeps
	// proportional to churn instead of |V|. Off keeps the paper-exact
	// full sweep; results under the incremental schedule are numerically
	// different (the RNG is consumed in a different order) but
	// statistically equivalent.
	Incremental bool
	// WorkloadWeight sets core.Config.WorkloadWeight (and the adaptive
	// service's mirror) on every partitioner the experiments build: the
	// strength of the workload term that weights migration votes by
	// read heat. The shipped experiments fold no heat, so 0 (the
	// paper-exact objective) and >0 print identical figures unless a
	// variant installs a heat trace; the knob exists so such variants
	// share the standard harness.
	WorkloadWeight float64
	// App filters the analytics-suite experiment ("apps") to one streaming
	// program: "cc", "sssp" or "pagerank". Empty runs the full matrix. The
	// other experiments ignore it.
	App string
}

// coreParallelism resolves the shard count for core.Config.Parallelism:
// the experiments default to the sequential path (see Options.Parallelism).
func (o Options) coreParallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return 1
}

// bspWorkers resolves the engine worker count, defaulting to one worker
// per partition (the paper's configuration).
func (o Options) bspWorkers(k int) int {
	if o.Workers > 0 {
		return o.Workers
	}
	return k
}

// normalize fills defaults.
func (o Options) normalize(defaultReps int) Options {
	if o.Reps <= 0 {
		o.Reps = defaultReps
		if o.Quick && o.Reps > 3 {
			o.Reps = 3
		}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

// Result is the structured outcome of one experiment, consumed by tests
// and rendered by cmd/experiments.
type Result struct {
	ID     string
	Title  string
	Tables []*stats.Table
	Series []*stats.Series
	Notes  []string
	// Values holds named scalar findings checked by tests (e.g.
	// "hash.final.cut", "adaptive.mean.time").
	Values map[string]float64
}

func newResult(id, title string) *Result {
	return &Result{ID: id, Title: title, Values: make(map[string]float64)}
}

func (r *Result) addNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render prints the full report to w.
func (r *Result) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n\n", r.ID, r.Title)
	for _, tb := range r.Tables {
		fmt.Fprintln(w, tb.String())
	}
	for _, s := range r.Series {
		fmt.Fprintf(w, "%-28s %s  (min %.3g, max %.3g, last %.3g)\n",
			s.Name, s.Sparkline(48), s.MinY(), s.MaxY(), s.Last())
	}
	if len(r.Series) > 0 {
		fmt.Fprintln(w)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	if len(r.Values) > 0 {
		keys := make([]string, 0, len(r.Values))
		for k := range r.Values {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "value: %-32s %.4g\n", k, r.Values[k])
		}
	}
	fmt.Fprintln(w)
}

// Runner is an experiment driver.
type Runner func(Options) (*Result, error)

// Registry maps experiment IDs to drivers, in the paper's order.
func Registry() []struct {
	ID    string
	Title string
	Run   Runner
} {
	return []struct {
		ID    string
		Title string
		Run   Runner
	}{
		{"table1", "Table 1: datasets", Table1},
		{"fig1", "Figure 1: effect of willingness-to-move s", Figure1},
		{"fig4", "Figure 4: sensitivity to initial partitioning", Figure4},
		{"fig5", "Figure 5: dependence on graph type", Figure5},
		{"fig6", "Figure 6: scalability", Figure6},
		{"fig7", "Figure 7: biomedical use case", Figure7},
		{"fig8", "Figure 8: online social network use case", Figure8},
		{"fig9", "Figure 9: mobile network use case", Figure9},
		{"apps", "Analytics suite: streaming apps under churn, adaptive vs static", Apps},
	}
}

// Run executes the experiment with the given ID.
func Run(id string, opt Options) (*Result, error) {
	for _, e := range Registry() {
		if e.ID == id {
			res, err := e.Run(opt)
			if err != nil {
				return nil, fmt.Errorf("experiment %s: %w", id, err)
			}
			if opt.Out != nil {
				res.Render(opt.Out)
			}
			return res, nil
		}
	}
	return nil, fmt.Errorf("unknown experiment %q (known: %v)", id, IDs())
}

// IDs lists the registered experiment IDs.
func IDs() []string {
	reg := Registry()
	ids := make([]string, len(reg))
	for i, e := range reg {
		ids[i] = e.ID
	}
	return ids
}
