package experiments

import (
	"xdgp/internal/adaptive"
	"xdgp/internal/apps"
	"xdgp/internal/bsp"
	"xdgp/internal/gen"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
	"xdgp/internal/stats"
)

// Figure7 reproduces the biomedical use case (Section 4.3): the cardiac
// FEM simulation on a cubic mesh, k=9 workers.
//
// Phase (a): the graph is loaded with plain hash partitioning and the
// adaptive algorithm re-arranges it — cuts drop sharply, a migration wave
// rises and decays exponentially, and time-per-iteration (normalised to
// the static-hash baseline, as in the paper) spikes during the wave and
// settles below 1 (the paper reports ≈0.5, i.e. twice as fast).
//
// Phase (b): a forest-fire burst adds 10 % new vertices and 30 % of that
// in edges; cuts, migrations and time peak and are re-absorbed.
//
// The paper ran 100 M vertices on 63 blades; this driver defaults to the
// 64kcube scale (DESIGN.md §5 records the substitution) — the normalised
// dynamics are size-stable per the paper's own Figure 6.
func Figure7(opt Options) (*Result, error) {
	opt = opt.normalize(1)
	res := newResult("fig7", "Biomedical use case: hash re-arrangement and burst absorption (cardiac FEM)")

	// Quick mode still needs n/k large enough that the worst-case quota
	// ⌊free/(k−1)⌋ is non-zero, or no migration can ever be granted.
	side, phaseA, phaseB, record := 40, 260, 200, 4
	if opt.Quick {
		side, phaseA, phaseB, record = 12, 90, 70, 2
	}
	const k = 9
	prog := apps.NewCardiac()
	// Vertex migration ships the full cell state (NumVars floats), so a
	// migration costs NumVars remote-message units.
	cost := bsp.DefaultCostModel()
	cost.PerMigration = float64(prog.NumVars) * cost.PerRemoteMsg

	// Static-hash baseline for time normalisation.
	gBase := gen.Cube3D(side)
	eBase, err := bsp.NewEngine(gBase, partition.Hash(gBase, k), prog, bsp.Config{Workers: opt.bspWorkers(k), Seed: opt.Seed, Cost: cost})
	if err != nil {
		return nil, err
	}
	var baseTime float64
	baseSteps := eBase.RunSupersteps(10)
	for _, st := range baseSteps[2:] { // skip cold start
		baseTime += st.Time
	}
	baseTime /= float64(len(baseSteps) - 2)

	// Adaptive run.
	g := gen.Cube3D(side)
	e, err := bsp.NewEngine(g, partition.Hash(g, k), prog, bsp.Config{
		Workers: opt.bspWorkers(k), Seed: opt.Seed, Cost: cost, RecordEvery: record,
	})
	if err != nil {
		return nil, err
	}
	acfg := adaptive.DefaultConfig(opt.Seed)
	acfg.Incremental = opt.Incremental
	acfg.WorkloadWeight = opt.WorkloadWeight
	svc, err := adaptive.New(acfg)
	if err != nil {
		return nil, err
	}
	e.SetRepartitioner(svc)

	cuts := stats.NewSeries("cuts")
	migs := stats.NewSeries("migrations")
	times := stats.NewSeries("time-per-iteration")
	collect := func(sts []bsp.SuperstepStats) {
		for _, st := range sts {
			x := float64(st.Superstep)
			if st.CutEdges >= 0 {
				cuts.Add(x, st.CutRatio)
			}
			migs.Add(x, float64(st.MigrationsCompleted))
			times.Add(x, st.Time/baseTime)
		}
	}

	// Phase (a): re-arrangement of the initial hash partitioning.
	initialCut := partition.CutRatio(g, e.Addr())
	collect(e.RunSupersteps(phaseA))
	phaseACut := partition.CutRatio(e.Graph(), e.Addr())
	peakTimeA := 0.0
	steadyA := 0.0
	for i, t := range times.Y {
		if t > peakTimeA {
			peakTimeA = t
		}
		if i >= len(times.Y)-10 {
			steadyA += t / 10
		}
	}

	// Phase (b): absorb a 10 % forest-fire burst.
	burst := gen.ForestFireExpansion(e.Graph(), e.Graph().NumVertices()/10, gen.DefaultForestFire(), opt.Seed+99)
	e.SetStream(graph.NewSliceStream([]graph.Batch{burst}))
	preBurstLen := times.Len()
	collect(e.RunSupersteps(phaseB))
	finalCut := partition.CutRatio(e.Graph(), e.Addr())
	peakTimeB, steadyB := 0.0, 0.0
	for i := preBurstLen; i < times.Len(); i++ {
		if times.Y[i] > peakTimeB {
			peakTimeB = times.Y[i]
		}
		if i >= times.Len()-10 {
			steadyB += times.Y[i] / 10
		}
	}

	res.Series = append(res.Series, cuts, migs, times)
	tb := stats.NewTable("metric", "value")
	tb.AddRowf("initial hash cut ratio", initialCut)
	tb.AddRowf("cut ratio after re-arrangement", phaseACut)
	tb.AddRowf("peak normalised time (phase a)", peakTimeA)
	tb.AddRowf("steady normalised time (phase a)", steadyA)
	tb.AddRowf("burst size (vertices)", burst.NumAdds())
	tb.AddRowf("burst size (edges)", burst.NumEdgeAdds())
	tb.AddRowf("peak normalised time (phase b)", peakTimeB)
	tb.AddRowf("steady normalised time (phase b)", steadyB)
	tb.AddRowf("final cut ratio", finalCut)
	res.Tables = append(res.Tables, tb)

	res.Values["initial.cut"] = initialCut
	res.Values["phaseA.cut"] = phaseACut
	res.Values["phaseA.peak.time"] = peakTimeA
	res.Values["phaseA.steady.time"] = steadyA
	res.Values["phaseB.peak.time"] = peakTimeB
	res.Values["phaseB.steady.time"] = steadyB
	res.Values["final.cut"] = finalCut
	res.Values["migrations.total"] = sum(migs.Y)

	res.addNote("paper shape: cuts halve vs hash; migration wave decays exponentially; time spikes then settles below the hash baseline; the +10%% burst is re-absorbed")
	return res, nil
}

func sum(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}
