package heat

import (
	"sync"
	"testing"

	"xdgp/internal/graph"
)

func TestDisabledRecordsNothing(t *testing.T) {
	tb := New(1)
	for v := 0; v < 1000; v++ {
		tb.Record(graph.VertexID(v))
	}
	if got := tb.TotalReads(); got != 0 {
		t.Fatalf("disabled table counted %d reads", got)
	}
	if s := tb.Drain(nil); len(s) != 0 {
		t.Fatalf("disabled table drained %d samples", len(s))
	}
}

func TestNilTableIsSafe(t *testing.T) {
	var tb *Table
	tb.Record(7) // must not panic
}

func TestSampleRounding(t *testing.T) {
	cases := map[int]int{-1: DefaultSample, 0: DefaultSample, 1: 1, 2: 2, 3: 2, 63: 32, 64: 64, 100: 64}
	for in, want := range cases {
		if got := New(in).Sample(); got != want {
			t.Fatalf("New(%d).Sample() = %d, want %d", in, got, want)
		}
	}
}

func TestEveryReadSampledAtSampleOne(t *testing.T) {
	tb := New(1)
	tb.SetRecording(true)
	// All reads land on distinct shards and distinct vertices.
	want := map[graph.VertexID]int{}
	for v := 0; v < 200; v++ {
		for r := 0; r <= v%3; r++ {
			tb.Record(graph.VertexID(v))
			want[graph.VertexID(v)]++
		}
	}
	got := map[graph.VertexID]int{}
	for _, v := range tb.Drain(nil) {
		got[v]++
	}
	if len(got) != len(want) {
		t.Fatalf("drained %d distinct vertices, want %d", len(got), len(want))
	}
	for v, n := range want {
		if got[v] != n {
			t.Fatalf("vertex %d sampled %d times, want %d", v, got[v], n)
		}
	}
	// A second drain with no new reads yields nothing.
	if s := tb.Drain(nil); len(s) != 0 {
		t.Fatalf("second drain returned %d samples", len(s))
	}
}

func TestSamplingIntervalHonored(t *testing.T) {
	tb := New(8)
	tb.SetRecording(true)
	const reads = 8 * 40
	for i := 0; i < reads; i++ {
		tb.Record(64) // single shard, single vertex
	}
	if got := tb.TotalReads(); got != reads {
		t.Fatalf("TotalReads = %d, want %d", got, reads)
	}
	s := tb.Drain(nil)
	if len(s) != reads/8 {
		t.Fatalf("drained %d samples, want %d", len(s), reads/8)
	}
	for _, v := range s {
		if v != 64 {
			t.Fatalf("sampled unexpected vertex %d", v)
		}
	}
}

func TestRingOverflowKeepsNewest(t *testing.T) {
	tb := New(1)
	tb.SetRecording(true)
	// Way more samples than ringSize on one shard: IDs are congruent to
	// the shard index mod numShards so they all collide.
	const n = 4 * ringSize
	for i := 0; i < n; i++ {
		tb.Record(graph.VertexID(i * numShards))
	}
	s := tb.Drain(nil)
	if len(s) != ringSize {
		t.Fatalf("drained %d samples after overflow, want %d", len(s), ringSize)
	}
	// Only the newest ringSize samples survive.
	seen := map[graph.VertexID]bool{}
	for _, v := range s {
		seen[v] = true
	}
	for i := n - ringSize; i < n; i++ {
		if !seen[graph.VertexID(i*numShards)] {
			t.Fatalf("newest sample %d missing after overflow", i*numShards)
		}
	}
}

func TestConcurrentRecord(t *testing.T) {
	tb := New(4)
	tb.SetRecording(true)
	const (
		workers = 8
		each    = 10_000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tb.Record(graph.VertexID((w*each + i) % 512))
			}
		}(w)
	}
	wg.Wait()
	if got := tb.TotalReads(); got != workers*each {
		t.Fatalf("TotalReads = %d, want %d", got, workers*each)
	}
	for _, v := range tb.Drain(nil) {
		if v < 0 || v >= 512 {
			t.Fatalf("drained out-of-range vertex %d", v)
		}
	}
}
