// Package heat collects a sampled, sharded trace of read traffic on the
// serving plane.
//
// The serving read path answers a placement lookup in ~9ns from an
// immutable routing snapshot, so the accounting added here must be close
// to free. The design:
//
//   - The table is split into a power-of-two number of shards; a read of
//     vertex v touches only shard v&mask, so concurrent readers of
//     different vertices do not contend.
//   - Record increments one per-shard atomic counter. That is the entire
//     cost for most reads.
//   - Every 2^sampleLog2-th read of a shard additionally stores the
//     vertex ID into a fixed-size ring of atomic slots (power-of-two
//     sampling). No locks, no allocation, no time source.
//   - A single consumer (the daemon's tick loop) calls Drain at tick
//     boundaries to collect the vertex IDs sampled since the previous
//     drain. Each drained ID represents ~2^sampleLog2 reads; the caller
//     folds them into its decayed per-vertex heat accumulator.
//
// If a shard takes more than ringSize samples between drains the oldest
// samples are overwritten and the drain reports only the newest ringSize
// (the counter still counts every read, so TotalReads stays exact).
// Sampling error therefore biases heat toward recent reads under extreme
// load, which is the desired behavior for a flash-crowd signal.
//
// The table is safe for concurrent Record from any number of goroutines.
// Drain must be called from one goroutine at a time.
package heat

import (
	"sync/atomic"

	"xdgp/internal/graph"
)

const (
	// numShards is the number of independent counter shards. Power of two.
	numShards = 64
	// ringSize is the per-shard capacity for samples between two drains.
	// Power of two.
	ringSize = 256
	// DefaultSample is the default sampling interval: one in every
	// DefaultSample reads of a shard is recorded with its vertex ID.
	DefaultSample = 64
)

// shard is one independent slice of the table. Padded to a cache line so
// hot shards do not false-share their counters.
type shard struct {
	reads atomic.Uint64 // total reads recorded on this shard
	_     [56]byte      // pad reads to its own cache line
	ring  [ringSize]atomic.Int64
}

// Table is a sharded, sampled read-traffic recorder. The zero value is
// not usable; call New.
type Table struct {
	on         atomic.Bool
	sampleLog2 uint
	shards     [numShards]shard

	// drain-side state, owned by the single Drain caller.
	lastSample [numShards]uint64
}

// New returns a table that records one in every `sample` reads, rounded
// down to a power of two. sample <= 0 selects DefaultSample; sample == 1
// records every read (useful in tests). The table starts disabled.
func New(sample int) *Table {
	if sample <= 0 {
		sample = DefaultSample
	}
	log2 := uint(0)
	for 1<<(log2+1) <= sample {
		log2++
	}
	t := &Table{sampleLog2: log2}
	for i := range t.shards {
		for j := range t.shards[i].ring {
			t.shards[i].ring[j].Store(-1)
		}
	}
	return t
}

// SetRecording enables or disables Record. While disabled, Record is a
// single atomic load and branch.
func (t *Table) SetRecording(on bool) { t.on.Store(on) }

// Recording reports whether Record is currently accumulating.
func (t *Table) Recording() bool { return t.on.Load() }

// Sample returns the effective sampling interval (a power of two).
func (t *Table) Sample() int { return 1 << t.sampleLog2 }

// Record notes one read of vertex v. It is wait-free: one atomic load,
// one atomic add, and — on one in every Sample() calls per shard — one
// atomic store.
func (t *Table) Record(v graph.VertexID) {
	if t == nil || !t.on.Load() {
		return
	}
	sh := &t.shards[uint64(v)&(numShards-1)]
	n := sh.reads.Add(1)
	if n&(1<<t.sampleLog2-1) != 0 {
		return
	}
	sh.ring[(n>>t.sampleLog2)&(ringSize-1)].Store(int64(v))
}

// TotalReads returns the exact number of reads recorded since creation.
func (t *Table) TotalReads() uint64 {
	var sum uint64
	for i := range t.shards {
		sum += t.shards[i].reads.Load()
	}
	return sum
}

// Drain appends the vertex IDs sampled since the previous Drain to buf
// and returns the extended slice. Each returned ID stands for ~Sample()
// reads. Only the single tick-loop goroutine may call Drain. Samples that
// were overwritten because a shard wrapped its ring between drains are
// dropped (newest win).
func (t *Table) Drain(buf []graph.VertexID) []graph.VertexID {
	for i := range t.shards {
		sh := &t.shards[i]
		cur := sh.reads.Load() >> t.sampleLog2
		last := t.lastSample[i]
		t.lastSample[i] = cur
		if cur == last {
			continue
		}
		lo := last
		if cur-lo > ringSize {
			lo = cur - ringSize
		}
		for m := lo + 1; m <= cur; m++ {
			id := sh.ring[m&(ringSize-1)].Load()
			if id >= 0 {
				buf = append(buf, graph.VertexID(id))
			}
		}
	}
	return buf
}
