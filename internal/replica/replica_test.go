package replica

// End-to-end tests of the replication protocol against a real primary
// (internal/server) over real HTTP. The testAfterPage hook makes the
// timing-dependent failure paths deterministic: epoch seams (the primary
// advances mid-bootstrap), ring evictions (the primary outruns the watch
// ring before the tail starts), and restarts (the upstream is swapped
// for a fresh incarnation behind a proxy).

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xdgp/internal/graph"
	"xdgp/internal/server"
)

// newPrimary builds a quiescent test primary (ticks driven manually).
func newPrimary(t *testing.T, mutate func(*server.Config)) *server.Server {
	t.Helper()
	cfg := server.DefaultConfig(4, 7)
	cfg.TickEvery = time.Hour // tests drive ticks explicitly
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// testReplica builds a replica with test-friendly timings, started
// against the given upstream URL, and registers its shutdown.
func testReplica(t *testing.T, upstream string, mutate func(*Config)) *Replica {
	t.Helper()
	cfg := DefaultConfig(upstream)
	cfg.PageSize = 16 // force multi-page bootstraps on small tables
	cfg.LagPollEvery = 10 * time.Millisecond
	cfg.ReconnectMin = 2 * time.Millisecond
	cfg.ReconnectMax = 20 * time.Millisecond
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Stop)
	return r
}

// ringBatch returns mutations building a ring over [0,n).
func ringBatch(n int) graph.Batch {
	b := make(graph.Batch, 0, n)
	for i := 0; i < n; i++ {
		b = append(b, graph.Mutation{Kind: graph.MutAddEdge,
			U: graph.VertexID(i), V: graph.VertexID((i + 1) % n)})
	}
	return b
}

// advance applies one batch and ticks the primary, asserting the batch
// was accepted.
func advance(t *testing.T, s *server.Server, b graph.Batch) {
	t.Helper()
	if _, ok := s.Enqueue(b); !ok {
		t.Fatal("primary rejected batch")
	}
	s.TickNow()
}

func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, msg)
}

// waitConverged waits until the replica's served epoch matches the (now
// quiescent) primary's, then verifies the tables are identical slot by
// slot.
func waitConverged(t *testing.T, r *Replica, s *server.Server) {
	t.Helper()
	// Re-read the primary's epoch every poll: test hooks advance the
	// primary from inside the replica's own bootstrap, after this call
	// started. The primary is quiescent once the hook has fired, so the
	// final equality check below races nothing.
	waitFor(t, 10*time.Second, func() bool {
		_, epoch, ok := r.Snapshot()
		return ok && epoch == s.Routing().Epoch
	}, fmt.Sprintf("replica to reach the primary's epoch (replica at %v)", r.State()))

	want := s.Routing()
	frozen, epoch, ok := r.Snapshot()
	if !ok || epoch != want.Epoch {
		t.Fatalf("snapshot: epoch %d ok=%v, want epoch %d", epoch, ok, want.Epoch)
	}
	if frozen.K() != want.Table.K() {
		t.Fatalf("replica k=%d, primary k=%d", frozen.K(), want.Table.K())
	}
	if frozen.Assigned() != want.Table.Assigned() {
		t.Fatalf("replica has %d assigned, primary %d", frozen.Assigned(), want.Table.Assigned())
	}
	slots := want.Table.Slots()
	if frozen.Slots() > slots {
		slots = frozen.Slots()
	}
	for v := 0; v < slots; v++ {
		id := graph.VertexID(v)
		if got, exp := frozen.Of(id), want.Table.Of(id); got != exp {
			t.Fatalf("vertex %d: replica says %d, primary says %d (epoch %d)", v, got, exp, epoch)
		}
	}
}

// --- the happy path --------------------------------------------------------

func TestReplicaConvergesUnderChurn(t *testing.T) {
	s := newPrimary(t, nil)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close) // after the replica's Stop: its watch stream holds a conn open

	// Table exists before the replica arrives: the bootstrap does real
	// paging (PageSize 16 against 130 vertices → ≥9 pages).
	advance(t, s, ringBatch(130))

	r := testReplica(t, ts.URL, nil)
	r.Start()
	waitConverged(t, r, s)
	if got := r.Stats().Bootstraps; got != 1 {
		t.Fatalf("bootstraps %d, want 1", got)
	}

	// Keep churning while the replica tails live: adds, removals, and
	// re-adds across 20 epochs.
	for round := 0; round < 20; round++ {
		b := graph.Batch{
			{Kind: graph.MutAddEdge, U: graph.VertexID(200 + round), V: graph.VertexID(201 + round)},
			{Kind: graph.MutRemoveVertex, U: graph.VertexID(round * 3)},
		}
		advance(t, s, b)
	}
	waitConverged(t, r, s)

	st := r.Stats()
	if st.Resyncs != 0 {
		t.Fatalf("resyncs %d during clean tailing, want 0", st.Resyncs)
	}
	if st.EventsApplied == 0 {
		t.Fatal("no watch events applied despite churn")
	}
	if st.State != "serving" {
		t.Fatalf("state %q, want serving", st.State)
	}
}

// --- bootstrap seam healing ------------------------------------------------

func TestReplicaHealsBootstrapSeam(t *testing.T) {
	s := newPrimary(t, nil)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close) // after the replica's Stop: its watch stream holds a conn open
	advance(t, s, ringBatch(100))

	// Advance the primary one epoch after the first bootstrap page: later
	// pages come from a newer epoch, so the assembled table is a mixture
	// the watch replay must heal — without a resync.
	r := testReplica(t, ts.URL, nil)
	var once sync.Once
	r.testAfterPage = func(cursor int64) {
		once.Do(func() {
			advance(t, s, graph.Batch{
				{Kind: graph.MutAddEdge, U: 300, V: 301},
				{Kind: graph.MutRemoveVertex, U: 5},
			})
		})
	}
	r.Start()
	waitConverged(t, r, s)

	st := r.Stats()
	if st.Resyncs != 0 {
		t.Fatalf("seam forced %d resyncs, want 0 (the watch replay should heal it)", st.Resyncs)
	}
	if st.Bootstraps != 1 {
		t.Fatalf("bootstraps %d, want 1", st.Bootstraps)
	}
}

// --- ring-eviction resync --------------------------------------------------

func TestReplicaResyncsAfterRingEviction(t *testing.T) {
	// A tiny watch ring: the primary advancing 8 epochs mid-bootstrap
	// guarantees the replica's resume point is evicted before its tail
	// starts, so the stream opens with {"resync":true}.
	s := newPrimary(t, func(c *server.Config) { c.WatchRing = 2 })
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close) // after the replica's Stop: its watch stream holds a conn open
	advance(t, s, ringBatch(100))

	r := testReplica(t, ts.URL, nil)
	var once sync.Once
	r.testAfterPage = func(cursor int64) {
		once.Do(func() {
			for i := 0; i < 8; i++ {
				advance(t, s, graph.Batch{
					{Kind: graph.MutAddEdge, U: graph.VertexID(400 + 2*i), V: graph.VertexID(401 + 2*i)},
				})
			}
		})
	}
	r.Start()
	waitConverged(t, r, s)

	st := r.Stats()
	if st.Resyncs < 1 {
		t.Fatalf("resyncs %d, want ≥1 (ring eviction must force a re-bootstrap)", st.Resyncs)
	}
	if st.Bootstraps != st.Resyncs+1 {
		t.Fatalf("bootstraps %d with %d resyncs, want resyncs+1", st.Bootstraps, st.Resyncs)
	}
}

// --- upstream restart ------------------------------------------------------

func TestReplicaResyncsAfterPrimaryRestart(t *testing.T) {
	primary1 := newPrimary(t, nil)
	var target atomic.Pointer[server.Server]
	target.Store(primary1)
	// The proxy stands in for the primary's stable address across a
	// restart: same URL, new process behind it.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		target.Load().ServeHTTP(w, req)
	}))
	t.Cleanup(ts.Close)
	advance(t, primary1, ringBatch(120))
	for i := 0; i < 5; i++ { // drive primary1's epoch well past a fresh process's
		advance(t, primary1, graph.Batch{{Kind: graph.MutAddEdge, U: graph.VertexID(500 + i), V: 599}})
	}

	r := testReplica(t, ts.URL, nil)
	r.Start()
	waitConverged(t, r, primary1)

	// "Restart" the daemon: a fresh incarnation (new instance token,
	// epochs back at 1) with a different, smaller graph — then cut every
	// live connection, as a real process death would.
	primary2 := newPrimary(t, nil)
	advance(t, primary2, ringBatch(60))
	target.Store(primary2)
	ts.CloseClientConnections()

	waitConverged(t, r, primary2)
	if st := r.Stats(); st.Resyncs < 1 {
		t.Fatalf("resyncs %d, want ≥1 (instance change must force a re-bootstrap)", st.Resyncs)
	}
	// The lag poller (10ms period) catches up to the new incarnation.
	waitFor(t, 5*time.Second, func() bool {
		return r.Stats().UpstreamInstance == primary2.Instance()
	}, "lag poller to observe primary2's instance token")

	// And the replica must now track the new incarnation's epochs.
	advance(t, primary2, graph.Batch{{Kind: graph.MutAddEdge, U: 700, V: 701}})
	waitConverged(t, r, primary2)
}

// A restarted primary whose epoch happens to exactly match the
// replica's is the nastiest case: the replica's watch resume opens a
// clean 200 stream that may never send a byte (quiet feed), so the
// instance-token check must abandon the stream immediately rather than
// waiting for data — a "drain the body for keep-alive" read on that
// path once hung the run loop forever.
func TestReplicaResyncsOnQuietStreamAfterEpochAlignedRestart(t *testing.T) {
	primary1 := newPrimary(t, nil)
	var target atomic.Pointer[server.Server]
	target.Store(primary1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		target.Load().ServeHTTP(w, req)
	}))
	t.Cleanup(ts.Close)
	advance(t, primary1, ringBatch(80))

	r := testReplica(t, ts.URL, nil)
	r.Start()
	waitConverged(t, r, primary1)

	// Build primary2 up to exactly primary1's epoch, so the replica's
	// watch?from=epoch+1 is a valid, silent resume point on the new
	// incarnation — only the instance token betrays the restart.
	primary2 := newPrimary(t, nil)
	wantEpoch := primary1.Routing().Epoch
	for i := 0; primary2.Routing().Epoch < wantEpoch; i++ {
		advance(t, primary2, graph.Batch{
			{Kind: graph.MutAddEdge, U: graph.VertexID(2 * i), V: graph.VertexID(2*i + 1)},
		})
	}
	if primary2.Routing().Epoch != wantEpoch {
		t.Fatalf("could not align epochs: primary2 at %d, want %d", primary2.Routing().Epoch, wantEpoch)
	}
	target.Store(primary2)
	ts.CloseClientConnections()

	// Epochs are aligned, so epoch equality cannot prove convergence to
	// the NEW incarnation — wait for the resync itself, then compare.
	waitFor(t, 10*time.Second, func() bool {
		return r.Stats().Resyncs >= 1
	}, "instance-token check to force a resync despite the quiet stream")
	waitConverged(t, r, primary2)
}

// --- HTTP read surface -----------------------------------------------------

func TestReplicaHTTPBeforeAndAfterServing(t *testing.T) {
	s := newPrimary(t, nil)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close) // after the replica's Stop: its watch stream holds a conn open
	advance(t, s, ringBatch(40))

	r := testReplica(t, ts.URL, nil)
	rts := httptest.NewServer(r)
	defer rts.Close()

	// Before Start: no table, so reads 503, health 503, stats/metrics 200.
	for path, want := range map[string]int{
		"/v1/placement/3": 503,
		"/healthz":        503,
		"/v1/stats":       200,
		"/metrics":        200,
	} {
		resp, err := http.Get(rts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s before start: status %d (body %s), want %d", path, resp.StatusCode, body, want)
		}
	}

	r.Start()
	waitConverged(t, r, s)
	waitFor(t, 5*time.Second, func() bool {
		ok, _ := r.Healthy()
		return ok && r.Stats().UpstreamInstance != ""
	}, "replica health and one successful upstream poll")

	// Single lookup agrees with the primary.
	resp, err := http.Get(rts.URL + "/v1/placement/7")
	if err != nil {
		t.Fatal(err)
	}
	var single map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&single); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("placement status %d", resp.StatusCode)
	}
	if p, ok := s.Placement(7); !ok || int64(p) != single["partition"] {
		t.Fatalf("replica places 7 in %d, primary in %d", single["partition"], p)
	}

	// Unknown vertex is a 404, exactly like the primary.
	if resp, err := http.Get(rts.URL + "/v1/placement/99999"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != 404 {
			t.Fatalf("unplaced vertex: status %d, want 404", resp.StatusCode)
		}
	}

	// Batch lookups work; the bootstrap-page form is refused.
	for body, want := range map[string]int{
		`{"vertices":[0,1,2,99999]}`: 200,
		`{"cursor":0,"limit":10}`:    400,
		`{"vertices":[1],"extra":1}`: 400,
	} {
		resp, err := http.Post(rts.URL+"/v1/placements", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("batch %s: status %d (body %s), want %d", body, resp.StatusCode, raw, want)
		}
	}

	// Health is now 200 and stats reflect the serving state.
	if resp, err := http.Get(rts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("healthz status %d, want 200", resp.StatusCode)
		}
	}
	var st Stats
	if resp, err := http.Get(rts.URL + "/v1/stats"); err != nil {
		t.Fatal(err)
	} else {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if st.State != "serving" || !st.Healthy || st.Epoch == 0 || st.UpstreamInstance == "" {
		t.Fatalf("stats %+v: want serving, healthy, nonzero epoch, known upstream instance", st)
	}
	if st.ReadsServed == 0 || st.ReadsNotReady == 0 {
		t.Fatalf("stats counted %d reads / %d not-ready, want both > 0", st.ReadsServed, st.ReadsNotReady)
	}

	// Metrics expose the replica vitals in Prometheus text format.
	var metrics string
	if resp, err := http.Get(rts.URL + "/metrics"); err != nil {
		t.Fatal(err)
	} else {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		metrics = string(raw)
	}
	for _, want := range []string{
		"apartr_state 2", "apartr_healthy 1", "apartr_epoch ",
		"apartr_resyncs_total 0", "apartr_bootstraps_total 1",
		"apartr_lag_epochs 0", "apartr_not_ready_total ",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// --- lag gate --------------------------------------------------------------

func TestReplicaLagGateFlipsHealth(t *testing.T) {
	s := newPrimary(t, nil)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close) // after the replica's Stop: its watch stream holds a conn open
	advance(t, s, ringBatch(30))

	// MaxLagEpochs 1 and a watch stream that can never deliver: the
	// replica bootstraps, then the primary advances while the replica's
	// tail is pinned down by a blackholed watch endpoint.
	blackhole := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if strings.HasPrefix(req.URL.Path, "/v1/watch") {
			// Accept the stream, send nothing, hold it open.
			w.Header().Set("X-Apartd-Instance", s.Instance())
			w.WriteHeader(200)
			w.(http.Flusher).Flush()
			<-req.Context().Done()
			return
		}
		s.ServeHTTP(w, req)
	}))
	t.Cleanup(blackhole.Close)

	r := testReplica(t, blackhole.URL, func(c *Config) { c.MaxLagEpochs = 1 })
	r.Start()
	waitFor(t, 5*time.Second, func() bool {
		ok, _ := r.Healthy()
		return ok
	}, "replica to become healthy after bootstrap")

	// Two epochs ahead → lag 2 > gate 1 → unhealthy, still Serving.
	advance(t, s, graph.Batch{{Kind: graph.MutAddEdge, U: 100, V: 101}})
	advance(t, s, graph.Batch{{Kind: graph.MutAddEdge, U: 102, V: 103}})
	waitFor(t, 5*time.Second, func() bool {
		ok, reason := r.Healthy()
		return !ok && strings.Contains(reason, "lagging")
	}, "lag gate to flip health")
	if r.State() != StateServing {
		t.Fatalf("state %v, want Serving (lag gates health, not serving)", r.State())
	}
}

// --- unit-level pieces -----------------------------------------------------

func TestBackoffBounds(t *testing.T) {
	r := testReplica(t, "http://unused.invalid", func(c *Config) {
		c.ReconnectMin = 100 * time.Millisecond
		c.ReconnectMax = 5 * time.Second
	})
	for attempt := 0; attempt < 40; attempt++ {
		for trial := 0; trial < 50; trial++ {
			d := r.backoff(attempt)
			if d < 50*time.Millisecond {
				t.Fatalf("attempt %d: backoff %v below half the floor", attempt, d)
			}
			if d > 7500*time.Millisecond {
				t.Fatalf("attempt %d: backoff %v above 1.5× the cap", attempt, d)
			}
		}
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{
		StateBootstrapping: "bootstrapping",
		StateSyncing:       "syncing",
		StateServing:       "serving",
		State(9):           "state(9)",
	} {
		if got := st.String(); got != want {
			t.Fatalf("State(%d).String() = %q, want %q", st, got, want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := New(Config{Upstream: "http://x", PageSize: MaxPageSize + 1}); err == nil {
		t.Fatal("oversized page accepted")
	}
	r, err := New(Config{Upstream: "http://x"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := r.Config()
	if cfg.PageSize != MaxPageSize || cfg.MaxLagEpochs != DefaultMaxLagEpochs ||
		cfg.LagPollEvery != DefaultLagPoll || cfg.ReconnectMin != DefaultReconnectMin ||
		cfg.ReconnectMax != DefaultReconnectMax {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	r.Stop() // Stop before Start must be a safe no-op
}
