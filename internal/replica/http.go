package replica

// This file is the replica's HTTP read surface: the same read endpoints
// as the primary (GET /v1/placement/{vertex}, POST /v1/placements batch
// lookups, /v1/stats, /healthz, /metrics) answered from the replica's
// own table, so a client or load balancer can point at either process
// without caring which. What a replica deliberately does NOT serve:
// mutations, checkpoints, the watch feed, and bootstrap pages — replicas
// replicate from the primary, never from each other (docs/REPLICATION.md
// explains why chained replication is out of scope).

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"xdgp/internal/graph"
)

// maxBatchVertices mirrors the primary's per-request batch-lookup cap so
// a client sharding strategy works unchanged against either tier.
const maxBatchVertices = 100_000

// maxBatchBody bounds the batch-lookup request body, same as the
// primary's (IDs are ≤20 bytes of JSON each).
const maxBatchBody = 4 << 20

// routes builds the replica's endpoint table.
func (r *Replica) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/placement/{vertex}", r.handlePlacement)
	mux.HandleFunc("POST /v1/placements", r.handleBatchPlacements)
	mux.HandleFunc("GET /v1/stats", r.handleStats)
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	return mux
}

// ServeHTTP serves the replica read API; Replica is a plain
// http.Handler, so it mounts under any router or test server.
func (r *Replica) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	r.mux.ServeHTTP(w, req)
}

// notServing answers a read that arrived before the replica has a
// servable table (bootstrapping, or a bootstrap seam not yet healed).
// 503 with Retry-After tells load balancers and clients this is a
// warming replica, not a missing vertex.
func (r *Replica) notServing(w http.ResponseWriter) {
	r.notReady.Add(1)
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable,
		fmt.Errorf("replica is not serving yet (%s); retry shortly or read the primary", r.State()))
}

func (r *Replica) handlePlacement(w http.ResponseWriter, req *http.Request) {
	raw := req.PathValue("vertex")
	id, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("vertex %q: %w", raw, err))
		return
	}
	if id < 0 || id > math.MaxInt32 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("vertex %d outside the valid ID range [0, %d]", id, math.MaxInt32))
		return
	}
	t := r.cur.Load()
	if !t.servable() {
		r.notServing(w)
		return
	}
	r.reads.Add(1)
	p := t.frozen.Of(graph.VertexID(id))
	if p < 0 {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("vertex %d is not placed at epoch %d (unknown, removed, or newer than this replica)", id, t.epoch))
		return
	}
	writeJSON(w, http.StatusOK, map[string]int64{
		"vertex":    id,
		"partition": int64(p),
	})
}

// batchRequest is the replica's view of the POST /v1/placements body.
// Cursor/limit (the primary's bootstrap-page form) is recognised only to
// be refused: replicas are leaves of the replication topology.
type batchRequest struct {
	Vertices []int64 `json:"vertices"`
	Cursor   *int64  `json:"cursor,omitempty"`
	Limit    int64   `json:"limit,omitempty"`
}

// batchPlacement is one entry of a batch-lookup response, wire-identical
// to the primary's.
type batchPlacement struct {
	Vertex    int64 `json:"vertex"`
	Partition int64 `json:"partition"`
}

func (r *Replica) handleBatchPlacements(w http.ResponseWriter, req *http.Request) {
	req.Body = http.MaxBytesReader(w, req.Body, maxBatchBody)
	var body batchRequest
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode body: %w", err))
		return
	}
	if body.Cursor != nil || body.Limit != 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf(
			"replicas do not serve bootstrap pages; page the primary instead (replicas replicate from the primary, not from each other)"))
		return
	}
	if len(body.Vertices) > maxBatchVertices {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("%d vertices exceeds the per-request maximum %d; shard the lookup", len(body.Vertices), maxBatchVertices))
		return
	}
	t := r.cur.Load()
	if !t.servable() {
		r.notServing(w)
		return
	}
	// Like the primary, the whole response is answered from the one table
	// pinned above: mutually consistent at a single epoch.
	placements := make([]batchPlacement, len(body.Vertices))
	for i, raw := range body.Vertices {
		p := int64(-1)
		if raw >= 0 && raw <= math.MaxInt32 {
			p = int64(t.frozen.Of(graph.VertexID(raw)))
		}
		placements[i] = batchPlacement{Vertex: raw, Partition: p}
	}
	r.reads.Add(uint64(len(placements)))
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":      t.epoch,
		"placements": placements,
	})
}

// Stats is the body of the replica's GET /v1/stats — the replica-side
// counterpart of the primary's stats, centred on replication health:
// where the table is (epoch), where the primary is (upstream_epoch), and
// how the gap between them is trending (lag, resyncs, reconnects).
type Stats struct {
	// State is the replication state: "bootstrapping", "syncing" or
	// "serving".
	State string `json:"state"`
	// Healthy mirrors /healthz; Reason says why when false.
	Healthy bool   `json:"healthy"`
	Reason  string `json:"reason"`
	// Epoch is the epoch the served table is exact at (0 before the
	// first bootstrap completes).
	Epoch uint64 `json:"epoch"`
	// Upstream identifies the primary: its base URL, its last polled
	// routing epoch, and its instance token (empty until a poll or
	// bootstrap succeeds).
	Upstream         string `json:"upstream"`
	UpstreamEpoch    uint64 `json:"upstream_epoch"`
	UpstreamInstance string `json:"upstream_instance"`
	// LagEpochs is Epoch's distance behind UpstreamEpoch; MaxLagEpochs
	// is the health gate it is compared against (-1 = gate disabled).
	LagEpochs    uint64 `json:"lag_epochs"`
	MaxLagEpochs int    `json:"max_lag_epochs"`
	// Vertices/Slots/K describe the served table (all 0 before the first
	// bootstrap).
	Vertices int64 `json:"vertices"`
	Slots    int64 `json:"slots"`
	K        int   `json:"k"`
	// Lifecycle counters, also exported as apartr_* /metrics.
	Bootstraps       uint64 `json:"bootstraps"`
	BootstrapPages   uint64 `json:"bootstrap_pages"`
	Resyncs          uint64 `json:"resyncs"`
	Reconnects       uint64 `json:"reconnects"`
	EventsApplied    uint64 `json:"events_applied"`
	ChangesApplied   uint64 `json:"changes_applied"`
	UpstreamPollFail uint64 `json:"upstream_poll_failures"`
	ReadsServed      uint64 `json:"reads_served"`
	ReadsNotReady    uint64 `json:"reads_not_ready"`
	// LastEventAgeSeconds is the age of the most recently applied watch
	// diff (-1 when none has been applied yet). High values are normal
	// on an idle primary; pair with lag_epochs before alerting.
	LastEventAgeSeconds float64 `json:"last_event_age_seconds"`
}

// Stats assembles the replica's current statistics snapshot.
func (r *Replica) Stats() Stats {
	healthy, reason := r.Healthy()
	st := Stats{
		State:            r.State().String(),
		Healthy:          healthy,
		Reason:           reason,
		Upstream:         r.cfg.Upstream,
		UpstreamEpoch:    r.upstreamEpoch.Load(),
		LagEpochs:        r.Lag(),
		MaxLagEpochs:     r.cfg.MaxLagEpochs,
		Bootstraps:       r.bootstraps.Load(),
		BootstrapPages:   r.pages.Load(),
		Resyncs:          r.resyncs.Load(),
		Reconnects:       r.reconnects.Load(),
		EventsApplied:    r.events.Load(),
		ChangesApplied:   r.changes.Load(),
		UpstreamPollFail: r.pollFailures.Load(),
		ReadsServed:      r.reads.Load(),
		ReadsNotReady:    r.notReady.Load(),
	}
	if inst := r.upstreamInstance.Load(); inst != nil {
		st.UpstreamInstance = *inst
	}
	if t := r.cur.Load(); t != nil {
		st.Epoch = t.epoch
		st.Vertices = int64(t.frozen.Assigned())
		st.Slots = int64(t.frozen.Slots())
		st.K = t.frozen.K()
	}
	st.LastEventAgeSeconds = -1
	if unx := r.lastEventUnixNano.Load(); unx != 0 {
		st.LastEventAgeSeconds = time.Since(time.Unix(0, unx)).Seconds()
	}
	return st
}

func (r *Replica) handleStats(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, r.Stats())
}

func (r *Replica) handleHealthz(w http.ResponseWriter, req *http.Request) {
	if healthy, reason := r.Healthy(); !healthy {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "unhealthy",
			"reason": reason,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics renders GET /metrics in the Prometheus text exposition
// format, hand-written like the primary's so the replica stays
// dependency-free. Everything here is O(1): atomics and table header
// fields off one pointer load.
func (r *Replica) handleMetrics(w http.ResponseWriter, req *http.Request) {
	var b strings.Builder

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	st := r.Stats()

	stateV := 0.0
	switch r.State() {
	case StateSyncing:
		stateV = 1
	case StateServing:
		stateV = 2
	}
	gauge("apartr_state", "Replication state: 0 bootstrapping, 1 syncing, 2 serving.", stateV)
	healthyV := 0.0
	if st.Healthy {
		healthyV = 1
	}
	gauge("apartr_healthy", "1 when /healthz reports healthy (serving and within the lag gate).", healthyV)
	gauge("apartr_epoch", "Epoch the served table is exact at.", float64(st.Epoch))
	gauge("apartr_upstream_epoch", "Primary routing epoch at the last successful poll.", float64(st.UpstreamEpoch))
	gauge("apartr_lag_epochs", "Epochs the served table trails the polled primary epoch (⚠ above the -max-lag-epochs gate).", float64(st.LagEpochs))
	gauge("apartr_vertices", "Vertices placed in the served table.", float64(st.Vertices))
	gauge("apartr_last_event_age_seconds", "Age of the most recently applied watch diff (-1 before any; high is normal on an idle primary).", st.LastEventAgeSeconds)

	counter("apartr_bootstraps_total", "Completed table bootstraps (first sync plus every resync).", st.Bootstraps)
	counter("apartr_bootstrap_pages_total", "Bootstrap pages fetched from the primary.", st.BootstrapPages)
	counter("apartr_resyncs_total", "Full re-bootstraps forced by ring eviction, primary restart, or epoch regression (⚠ if growing steadily).", st.Resyncs)
	counter("apartr_reconnects_total", "Watch stream reconnect attempts after a transport drop.", st.Reconnects)
	counter("apartr_watch_events_total", "Epoch diffs applied from the watch stream.", st.EventsApplied)
	counter("apartr_changes_applied_total", "Individual placement changes applied from diffs.", st.ChangesApplied)
	counter("apartr_upstream_poll_failures_total", "Failed polls of the primary's /v1/stats.", st.UpstreamPollFail)
	counter("apartr_reads_total", "Placement lookups served (single and batch entries).", st.ReadsServed)
	counter("apartr_not_ready_total", "Reads refused with 503 because no servable table was published yet.", st.ReadsNotReady)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, b.String())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best-effort: headers already sent
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
