// Package replica implements the read-replica serving plane behind
// cmd/apartr: a process that copies a primary apartd's routing table
// over its public HTTP API and then keeps the copy current, serving
// placement reads with the same lock-free path as the primary — one
// atomic pointer load plus one array read — while the primary remains
// the only writer. Replicas are how reads survive a daemon restart and
// how read throughput scales past one process (ROADMAP "Read-replica
// HA").
//
// The protocol is three phases, specified in docs/REPLICATION.md:
//
//   - Bootstrap: page the full table out of POST /v1/placements
//     (cursor+limit form, ≤100k-ID chunks), recording each page's epoch
//     and the primary's instance token.
//   - Tail: stream GET /v1/watch?from=N and apply each epoch diff to an
//     immutable partition.Frozen copy swapped in via atomic.Pointer.
//   - Resync: on a {"resync":true} event (diff ring eviction), an
//     instance-token change, or an epoch regression (primary restart),
//     throw the table away and re-bootstrap. Counted in
//     apartr_resyncs_total.
//
// Consistency contract, in one sentence: a replica serves some exact
// past epoch of its primary (never a torn mixture), with bounded
// staleness and no read-your-writes — see docs/REPLICATION.md for what
// that does and does not guarantee.
package replica

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// Config parameterises a replica. The zero value is invalid; set
// Upstream and take DefaultConfig for the rest.
type Config struct {
	// Upstream is the primary's base URL (e.g. "http://10.0.0.5:8080").
	// All bootstrap pages, watch streams and lag polls go there.
	Upstream string
	// PageSize is the ID-range width of one bootstrap page, at most
	// 100 000 (the primary's per-request ceiling). 0 means MaxPageSize.
	PageSize int
	// MaxLagEpochs flips /healthz unhealthy when the replica's applied
	// epoch trails the primary's routing epoch by more than this — the
	// signal a fronting load balancer uses to drop a stale replica.
	// 0 means DefaultMaxLagEpochs; negative disables the lag gate.
	MaxLagEpochs int
	// LagPollEvery is how often the replica polls the primary's
	// /v1/stats for its current epoch (the lag denominator). 0 means
	// DefaultLagPoll.
	LagPollEvery time.Duration
	// ReconnectMin/ReconnectMax bound the jittered exponential backoff
	// between upstream connection attempts. Zeroes mean
	// DefaultReconnectMin/DefaultReconnectMax.
	ReconnectMin time.Duration
	ReconnectMax time.Duration
	// Client overrides the HTTP client (tests inject one; nil means a
	// dedicated client with sane keep-alive limits). Watch streams are
	// long-lived, so the client must not set a global timeout.
	Client *http.Client
}

// MaxPageSize is the largest bootstrap page the primary accepts — its
// POST /v1/placements per-request ceiling.
const MaxPageSize = 100_000

// DefaultMaxLagEpochs is the health gate used when Config.MaxLagEpochs
// is zero: half the primary's default watch ring, so an unhealthy
// replica still has headroom to catch up incrementally before eviction
// forces a full resync.
const DefaultMaxLagEpochs = 128

// DefaultLagPoll is the default upstream epoch-poll period.
const DefaultLagPoll = time.Second

// DefaultReconnectMin is the default floor of the reconnect backoff.
const DefaultReconnectMin = 100 * time.Millisecond

// DefaultReconnectMax is the default ceiling of the reconnect backoff.
const DefaultReconnectMax = 5 * time.Second

// DefaultConfig returns the standard replica setting for an upstream.
func DefaultConfig(upstream string) Config {
	return Config{
		Upstream:     upstream,
		PageSize:     MaxPageSize,
		MaxLagEpochs: DefaultMaxLagEpochs,
		LagPollEvery: DefaultLagPoll,
		ReconnectMin: DefaultReconnectMin,
		ReconnectMax: DefaultReconnectMax,
	}
}

func (c Config) validate() error {
	if c.Upstream == "" {
		return fmt.Errorf("replica: Upstream is required")
	}
	if c.PageSize < 0 || c.PageSize > MaxPageSize {
		return fmt.Errorf("replica: PageSize must be in [0, %d], got %d", MaxPageSize, c.PageSize)
	}
	return nil
}

// State names the replica's position in the replication state machine
// (docs/REPLICATION.md has the full diagram).
type State int32

// The replication states. A replica starts Bootstrapping, passes through
// Syncing when its bootstrap pages straddled more than one epoch (the
// table is a provisional mixture until the watch replay heals the seam),
// and Serving thereafter — resyncs route back through Bootstrapping.
const (
	// StateBootstrapping: paging the table out of the primary; reads
	// are answered 503.
	StateBootstrapping State = iota
	// StateSyncing: bootstrap pages straddled epochs [lo,hi]; the watch
	// replay from lo+1 has not yet reached hi, so the table may be a
	// mixture and reads are still answered 503.
	StateSyncing
	// StateServing: the table is an exact copy of some primary epoch;
	// reads are served lock-free. Health additionally requires the lag
	// gate (Config.MaxLagEpochs) to pass.
	StateServing
)

// String returns the state's wire name (used by /v1/stats and tests).
func (s State) String() string {
	switch s {
	case StateBootstrapping:
		return "bootstrapping"
	case StateSyncing:
		return "syncing"
	case StateServing:
		return "serving"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// table is one immutable published generation of the replica's routing
// state. Handlers load it with one atomic pointer read; the run loop is
// the only writer. epoch < floor marks a bootstrap whose pages straddled
// epochs and whose seam the watch replay has not yet healed — not
// servable.
type table struct {
	frozen   *partition.Frozen
	epoch    uint64 // epoch this table is exact at (lowest bootstrap page epoch until healed)
	floor    uint64 // highest bootstrap page epoch; servable once epoch ≥ floor
	instance string // upstream incarnation that produced it
}

// servable reports whether the table is an exact copy of one primary
// epoch (the seam, if any, has been healed by the watch replay).
func (t *table) servable() bool { return t != nil && t.epoch >= t.floor }

// Replica is the replication engine plus its HTTP read surface.
// Construct with New, Start it, serve its handler, Stop on shutdown.
type Replica struct {
	cfg    Config
	client *http.Client

	// cur is the published table: nil until the first bootstrap
	// completes, then immutable generations swapped by the run loop.
	cur   atomic.Pointer[table]
	state atomic.Int32

	// Upstream view, maintained by the lag poller (epoch, instance) and
	// the tail loop (lastEventUnixNano).
	upstreamEpoch     atomic.Uint64
	upstreamInstance  atomic.Pointer[string]
	upstreamPolledUnx atomic.Int64 // UnixNano of the last successful poll
	lastEventUnixNano atomic.Int64

	// Monotonic counters, exported by /metrics (apartr_*).
	bootstraps   atomic.Uint64 // bootstrap attempts that completed
	pages        atomic.Uint64 // bootstrap pages fetched
	resyncs      atomic.Uint64 // re-bootstraps after the first (eviction, restart, regression)
	reconnects   atomic.Uint64 // watch reconnect attempts after a drop
	events       atomic.Uint64 // watch diff events applied
	changes      atomic.Uint64 // placement changes applied
	pollFailures atomic.Uint64 // upstream stat-poll failures
	reads        atomic.Uint64 // placement lookups served
	notReady     atomic.Uint64 // reads refused with 503 (no servable table)

	mux      *http.ServeMux
	started  atomic.Bool
	stopOnce sync.Once
	cancel   context.CancelFunc
	done     chan struct{}
	pollDone chan struct{}

	// testAfterPage, when set (package tests only), runs after every
	// bootstrap page fetch — the hook that makes epoch seams and ring
	// evictions deterministic instead of timing-dependent.
	testAfterPage func(cursor int64)
}

// New builds a replica for cfg. It performs no I/O; Start begins the
// bootstrap.
func New(cfg Config) (*Replica, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = MaxPageSize
	}
	if cfg.MaxLagEpochs == 0 {
		cfg.MaxLagEpochs = DefaultMaxLagEpochs
	}
	if cfg.LagPollEvery == 0 {
		cfg.LagPollEvery = DefaultLagPoll
	}
	if cfg.ReconnectMin <= 0 {
		cfg.ReconnectMin = DefaultReconnectMin
	}
	if cfg.ReconnectMax < cfg.ReconnectMin {
		cfg.ReconnectMax = DefaultReconnectMax
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        4,
			MaxIdleConnsPerHost: 4,
		}}
	}
	r := &Replica{
		cfg:      cfg,
		client:   client,
		done:     make(chan struct{}),
		pollDone: make(chan struct{}),
	}
	r.state.Store(int32(StateBootstrapping))
	r.mux = r.routes()
	return r, nil
}

// Config returns the resolved configuration.
func (r *Replica) Config() Config { return r.cfg }

// Start launches the replication run loop (bootstrap → tail → resync)
// and the upstream lag poller. Idempotent.
func (r *Replica) Start() {
	if !r.started.CompareAndSwap(false, true) {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	go func() { defer close(r.done); r.run(ctx) }()
	go func() { defer close(r.pollDone); r.pollLoop(ctx) }()
}

// Stop terminates the run loop and the poller and waits for both.
// In-flight upstream requests are cancelled; the read surface keeps
// answering from the last published table until the process exits.
func (r *Replica) Stop() {
	r.stopOnce.Do(func() {
		if r.started.Load() {
			r.cancel()
			<-r.done
			<-r.pollDone
		}
	})
}

// State returns the replica's current replication state.
func (r *Replica) State() State { return State(r.state.Load()) }

// Snapshot returns the currently served table and its epoch, with
// ok=false while no servable table is published (bootstrapping, or a
// bootstrap seam not yet healed). The Frozen is immutable; callers may
// read it indefinitely without synchronization.
func (r *Replica) Snapshot() (frozen *partition.Frozen, epoch uint64, ok bool) {
	t := r.cur.Load()
	if !t.servable() {
		return nil, 0, false
	}
	return t.frozen, t.epoch, true
}

// Placement returns the partition of v in the replica's current table —
// the same one-atomic-load-one-array-read path as the primary. ok=false
// means v is not placed there OR the replica has no servable table yet;
// HTTP callers can distinguish the two (404 vs 503), in-process callers
// should check Snapshot first when it matters.
func (r *Replica) Placement(v int64) (p int64, ok bool) {
	t := r.cur.Load()
	if !t.servable() {
		return int64(partition.None), false
	}
	id := t.frozen.Of(graph.VertexID(v))
	return int64(id), id != partition.None
}

// Lag returns the replica's staleness in epochs relative to the last
// polled upstream epoch (0 when the poll has never succeeded, when the
// upstream is a different incarnation than the table — a resync is
// already on its way — or when the replica is ahead of a stale poll).
func (r *Replica) Lag() uint64 {
	t := r.cur.Load()
	if t == nil {
		return 0
	}
	up := r.upstreamEpoch.Load()
	if inst := r.upstreamInstance.Load(); inst == nil || *inst != t.instance {
		return 0
	}
	if up <= t.epoch {
		return 0
	}
	return up - t.epoch
}

// Healthy reports whether a load balancer should route reads here, with
// a human-readable reason when not: the replica must be Serving and,
// when the lag gate is enabled, within MaxLagEpochs of the last polled
// upstream epoch. An unreachable upstream does NOT fail health — every
// replica serving last-known-good state is the point of the replica
// tier when the primary is down (docs/REPLICATION.md).
func (r *Replica) Healthy() (bool, string) {
	if st := r.State(); st != StateServing {
		return false, st.String()
	}
	if r.cfg.MaxLagEpochs >= 0 {
		if lag := r.Lag(); lag > uint64(r.cfg.MaxLagEpochs) {
			return false, fmt.Sprintf("lagging %d epochs (max %d)", lag, r.cfg.MaxLagEpochs)
		}
	}
	return true, "ok"
}

// --- the run loop: bootstrap → tail → resync -------------------------------

// run drives the replication state machine until ctx is cancelled.
// Transient upstream errors back off with jitter and retry; protocol
// signals (resync event, instance change, epoch regression) route back
// through bootstrap.
func (r *Replica) run(ctx context.Context) {
	attempt := 0
	first := true
	for ctx.Err() == nil {
		t, err := r.bootstrap(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			r.sleep(ctx, r.backoff(attempt))
			attempt++
			continue
		}
		attempt = 0
		r.bootstraps.Add(1)
		if !first {
			r.resyncs.Add(1)
		}
		first = false
		r.publish(t)

		// Tail until the protocol demands a re-bootstrap.
		for ctx.Err() == nil {
			outcome := r.tail(ctx)
			switch outcome {
			case tailResync:
				// Ring eviction, instance change or epoch regression:
				// the incremental feed cannot reconstruct our table.
			case tailDisconnect:
				// Transport failure: reconnect the stream and resume
				// from our current epoch — no data was lost.
				r.reconnects.Add(1)
				r.sleep(ctx, r.backoff(attempt))
				attempt++
				continue
			case tailOK:
				// Clean retry (e.g. transient 400 race); reconnect
				// without counting a drop.
				continue
			}
			break
		}
	}
}

// tailOutcome classifies why one tail attempt ended.
type tailOutcome int

const (
	tailOK         tailOutcome = iota // benign; reconnect and resume
	tailDisconnect                    // transport drop; backoff then resume
	tailResync                        // protocol signal; re-bootstrap
)

// pageResponse mirrors the primary's paged POST /v1/placements reply
// (server.PageResponse). The replica deliberately declares its own wire
// structs: the JSON documented in docs/API.md is the protocol contract,
// not shared Go types.
type pageResponse struct {
	Epoch      uint64 `json:"epoch"`
	Instance   string `json:"instance"`
	K          int    `json:"k"`
	Slots      int64  `json:"slots"`
	NextCursor int64  `json:"next_cursor"`
	Placements []struct {
		Vertex    int64 `json:"vertex"`
		Partition int64 `json:"partition"`
	} `json:"placements"`
}

// bootstrap pages the primary's full table. The pages need not all come
// from one epoch: the result records the lowest and highest page epochs
// as (epoch, floor), and the caller's watch replay from epoch+1 provably
// heals the seam by the time it has applied floor (REPLICATION.md walks
// the argument). An instance change mid-bootstrap restarts the paging —
// mixed-incarnation pages can never be reconciled.
func (r *Replica) bootstrap(ctx context.Context) (*table, error) {
	r.state.Store(int32(StateBootstrapping))
restart:
	var (
		entries  []partition.Change
		cursor   int64
		lo, hi   uint64
		instance string
		k        int
	)
	for {
		page, err := r.fetchPage(ctx, cursor)
		if err != nil {
			return nil, err
		}
		r.pages.Add(1)
		if instance == "" {
			instance, k, lo, hi = page.Instance, page.K, page.Epoch, page.Epoch
		} else if page.Instance != instance {
			// The primary restarted underneath the bootstrap; its new
			// incarnation's table shares nothing with the pages so far.
			goto restart
		}
		if page.Epoch < lo {
			lo = page.Epoch
		}
		if page.Epoch > hi {
			hi = page.Epoch
		}
		for _, p := range page.Placements {
			entries = append(entries, partition.Change{
				Vertex: graph.VertexID(p.Vertex),
				To:     partition.ID(p.Partition),
			})
		}
		if r.testAfterPage != nil {
			r.testAfterPage(cursor)
		}
		if page.NextCursor < 0 {
			break
		}
		cursor = page.NextCursor
	}
	return &table{
		frozen:   partition.NewFrozen(k).Apply(entries),
		epoch:    lo,
		floor:    hi,
		instance: instance,
	}, nil
}

// fetchPage posts one cursor+limit page request.
func (r *Replica) fetchPage(ctx context.Context, cursor int64) (*pageResponse, error) {
	body, err := json.Marshal(map[string]int64{
		"cursor": cursor,
		"limit":  int64(r.cfg.PageSize),
	})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		r.cfg.Upstream+"/v1/placements", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return nil, fmt.Errorf("page cursor=%d: status %d: %s", cursor, resp.StatusCode, raw)
	}
	var page pageResponse
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return nil, fmt.Errorf("page cursor=%d: %w", cursor, err)
	}
	if page.Instance == "" || page.K < 1 {
		return nil, fmt.Errorf("page cursor=%d: malformed header (instance=%q k=%d)", cursor, page.Instance, page.K)
	}
	return &page, nil
}

// watchEvent mirrors one NDJSON line of the primary's GET /v1/watch
// feed: an epoch diff, or a resync instruction.
type watchEvent struct {
	Resync  bool   `json:"resync"`
	Epoch   uint64 `json:"epoch"`
	Changes []struct {
		Vertex int64 `json:"vertex"`
		From   int64 `json:"from"`
		To     int64 `json:"to"`
	} `json:"changes"`
}

// tail opens the watch stream at the published table's epoch+1 and
// applies diffs until the stream ends or the protocol demands a resync.
func (r *Replica) tail(ctx context.Context) tailOutcome {
	t := r.cur.Load()
	from := t.epoch + 1
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/watch?from=%d", r.cfg.Upstream, from), nil)
	if err != nil {
		return tailDisconnect
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return tailDisconnect
	}
	defer resp.Body.Close()

	if inst := resp.Header.Get("X-Apartd-Instance"); inst != "" && inst != t.instance {
		// A different process answered: the primary restarted, and its
		// epochs share nothing with ours — even if the numbers happen
		// to line up. This check is what closes the "restarted primary
		// re-climbed past our epoch" hole an epoch comparison misses.
		// Do NOT drain the body here: on a 200 this is an open-ended
		// watch stream that may never send another byte, so a "drain
		// for keep-alive" read blocks the whole run loop forever (the
		// smoke test caught exactly that). Closing unread is the point.
		return tailResync
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusBadRequest:
		// from is ahead of the primary's next epoch. Same instance, so
		// this is the benign publish race (routing momentarily leads the
		// watch hub), not a restart: confirm against the polled epoch
		// and retry. If the poll agrees the primary is genuinely behind
		// our table — same instance, lower epoch — something is deeply
		// wrong; re-bootstrap to be safe.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10)) //nolint:errcheck
		if up, ok := r.pollUpstream(ctx); ok && up+1 < from {
			return tailResync
		}
		r.sleep(ctx, r.cfg.ReconnectMin)
		return tailOK
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10)) //nolint:errcheck
		return tailDisconnect
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev watchEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return tailDisconnect
		}
		if ev.Resync {
			return tailResync
		}
		r.apply(&ev)
	}
	return tailDisconnect
}

// apply folds one epoch diff into a fresh table generation and publishes
// it. Diffs at or below the current epoch are skipped (idempotence);
// within one watch connection epochs arrive consecutively, so anything
// newer advances the table exactly one epoch at a time.
func (r *Replica) apply(ev *watchEvent) {
	t := r.cur.Load()
	if ev.Epoch <= t.epoch {
		return
	}
	cs := make([]partition.Change, 0, len(ev.Changes))
	for _, c := range ev.Changes {
		cs = append(cs, partition.Change{
			Vertex: graph.VertexID(c.Vertex),
			To:     partition.ID(c.To),
		})
	}
	r.publish(&table{
		frozen:   t.frozen.Apply(cs),
		epoch:    ev.Epoch,
		floor:    t.floor,
		instance: t.instance,
	})
	r.events.Add(1)
	r.changes.Add(uint64(len(cs)))
	r.lastEventUnixNano.Store(time.Now().UnixNano())
}

// publish swaps the table in and keeps the state gauge consistent with
// its servability.
func (r *Replica) publish(t *table) {
	r.cur.Store(t)
	if t.servable() {
		r.state.Store(int32(StateServing))
	} else {
		r.state.Store(int32(StateSyncing))
	}
}

// --- upstream lag poll -----------------------------------------------------

// pollLoop samples the primary's /v1/stats on a timer so the lag gate
// has a denominator even when the watch stream is quiet or down.
func (r *Replica) pollLoop(ctx context.Context) {
	tick := time.NewTicker(r.cfg.LagPollEvery)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			r.pollUpstream(ctx) //nolint:errcheck // failures are counted, not fatal
		}
	}
}

// pollUpstream fetches the primary's current routing epoch and instance
// token, updating the replica's upstream view on success.
func (r *Replica) pollUpstream(ctx context.Context) (epoch uint64, ok bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.cfg.Upstream+"/v1/stats", nil)
	if err != nil {
		r.pollFailures.Add(1)
		return 0, false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		r.pollFailures.Add(1)
		return 0, false
	}
	defer resp.Body.Close()
	var st struct {
		Instance     string `json:"instance"`
		RoutingEpoch uint64 `json:"routing_epoch"`
	}
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&st) != nil {
		r.pollFailures.Add(1)
		return 0, false
	}
	r.upstreamEpoch.Store(st.RoutingEpoch)
	r.upstreamInstance.Store(&st.Instance)
	r.upstreamPolledUnx.Store(time.Now().UnixNano())
	return st.RoutingEpoch, true
}

// --- small helpers ---------------------------------------------------------

// backoff returns the jittered exponential delay for the given attempt:
// min·2^attempt scaled by a uniform [0.5, 1.5) factor, capped at max —
// so a fleet of replicas losing the same primary does not reconnect in
// lockstep.
func (r *Replica) backoff(attempt int) time.Duration {
	d := r.cfg.ReconnectMin << min(attempt, 20)
	if d > r.cfg.ReconnectMax || d <= 0 {
		d = r.cfg.ReconnectMax
	}
	return time.Duration((0.5 + rand.Float64()) * float64(d))
}

// sleep waits d or until ctx is cancelled.
func (r *Replica) sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
