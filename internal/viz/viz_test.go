package viz

import (
	"bytes"
	"strings"
	"testing"

	"xdgp/internal/core"
	"xdgp/internal/gen"
	"xdgp/internal/partition"
)

func TestSlicePPMHeaderAndSize(t *testing.T) {
	g := gen.Mesh3D(4, 3, 2)
	a := partition.Hash(g, 4)
	var buf bytes.Buffer
	if err := SlicePPM(&buf, a, 4, 3, 1, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P6\n8 6\n255\n")) {
		t.Fatalf("bad PPM header: %q", out[:12])
	}
	want := len("P6\n8 6\n255\n") + 3*8*6
	if len(out) != want {
		t.Fatalf("PPM size %d, want %d", len(out), want)
	}
}

func TestSlicePPMInvalidGeometry(t *testing.T) {
	a := partition.NewAssignment(0, 2)
	if err := SlicePPM(&bytes.Buffer{}, a, 0, 3, 0, 1); err == nil {
		t.Fatal("expected geometry error")
	}
}

func TestSliceASCII(t *testing.T) {
	a := partition.NewAssignment(4, 2)
	a.Assign(0, 0)
	a.Assign(1, 1)
	a.Assign(2, 0)
	// vertex 3 unassigned
	out := SliceASCII(a, 2, 2, 0)
	if out != "AB\nA.\n" {
		t.Fatalf("ascii = %q", out)
	}
}

func TestFragmentationDropsAsHeuristicRuns(t *testing.T) {
	// The video's visible effect: colours consolidate. Fragmentation of
	// the middle slice must drop substantially from hash to converged.
	const side = 12
	g := gen.Cube3D(side)
	asn := partition.Hash(g, 4)
	before := Fragmentation(asn, side, side, side/2)
	p, err := core.New(g, asn, core.DefaultConfig(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	p.Run()
	after := Fragmentation(p.Assignment(), side, side, side/2)
	if after >= before*0.7 {
		t.Fatalf("fragmentation %.3f -> %.3f: no visible consolidation", before, after)
	}
	// And the rendering of the converged slice shows contiguous runs:
	// strictly fewer colour changes per row than a hash slice.
	conv := SliceASCII(p.Assignment(), side, side, side/2)
	if strings.Count(conv, "\n") != side {
		t.Fatalf("ascii slice has wrong row count")
	}
}

func TestFragmentationEdgeCases(t *testing.T) {
	a := partition.NewAssignment(1, 2)
	if Fragmentation(a, 1, 1, 0) != 0 {
		t.Fatal("single vertex slice must have zero fragmentation")
	}
}
