// Package viz renders partition assignments of lattice meshes as images —
// the repository's analogue of the paper's Video 1, which "shows how
// partitioning evolves in real time in a 2d slice of a 3d cube of a
// 1000000 mesh graph, where every vertex is physically surrounded by its
// neighbours" and each partition is drawn in its own colour.
package viz

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// palette holds visually distinct RGB colours; partition i uses
// palette[i % len(palette)]. Unassigned vertices render black.
var palette = [][3]byte{
	{230, 25, 75}, {60, 180, 75}, {255, 225, 25}, {0, 130, 200},
	{245, 130, 48}, {145, 30, 180}, {70, 240, 240}, {240, 50, 230},
	{210, 245, 60}, {250, 190, 212}, {0, 128, 128}, {220, 190, 255},
	{170, 110, 40}, {255, 250, 200}, {128, 0, 0}, {170, 255, 195},
}

// SlicePPM writes one z-slice of an nx×ny×nz Mesh3D assignment as a binary
// PPM image with the given pixel scale. Vertex (x,y,z) must have the
// Mesh3D ID layout x + nx·(y + ny·z).
func SlicePPM(w io.Writer, a *partition.Assignment, nx, ny, z, scale int) error {
	if scale < 1 {
		scale = 1
	}
	if nx < 1 || ny < 1 || z < 0 {
		return fmt.Errorf("viz: invalid slice geometry %dx%d z=%d", nx, ny, z)
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", nx*scale, ny*scale); err != nil {
		return err
	}
	row := make([]byte, 3*nx*scale)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			id := graph.VertexID(x + nx*(y+ny*z))
			c := [3]byte{0, 0, 0}
			if p := a.Of(id); p != partition.None {
				c = palette[int(p)%len(palette)]
			}
			for sx := 0; sx < scale; sx++ {
				off := 3 * (x*scale + sx)
				row[off], row[off+1], row[off+2] = c[0], c[1], c[2]
			}
		}
		for sy := 0; sy < scale; sy++ {
			if _, err := bw.Write(row); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// SliceASCII renders one z-slice as text, one character per vertex
// (partition i prints as 'A'+i, unassigned as '.'), for terminal viewing
// and tests.
func SliceASCII(a *partition.Assignment, nx, ny, z int) string {
	var b strings.Builder
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			id := graph.VertexID(x + nx*(y+ny*z))
			p := a.Of(id)
			if p == partition.None {
				b.WriteByte('.')
			} else {
				b.WriteByte(byte('A' + int(p)%26))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fragmentation counts, within one z-slice, the fraction of horizontally
// or vertically adjacent vertex pairs whose partitions differ — a 2-d
// proxy for the cut that the video makes visible: colours consolidate as
// the heuristic runs.
func Fragmentation(a *partition.Assignment, nx, ny, z int) float64 {
	pairs, diff := 0, 0
	at := func(x, y int) partition.ID {
		return a.Of(graph.VertexID(x + nx*(y+ny*z)))
	}
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if x+1 < nx {
				pairs++
				if at(x, y) != at(x+1, y) {
					diff++
				}
			}
			if y+1 < ny {
				pairs++
				if at(x, y) != at(x, y+1) {
					diff++
				}
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(diff) / float64(pairs)
}
