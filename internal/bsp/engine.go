package bsp

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// Config parameterises the engine.
type Config struct {
	// Workers is the number of compute goroutines executing the vertex
	// sweep each superstep. It is independent of the number of partitions
	// k, which comes from the assignment: partitions are the simulated
	// machines of the cost model (message locality, migration, the
	// per-superstep clock), while workers are real CPU shards that each
	// own a contiguous range of vertex slots (as in Spinner, where the
	// label-propagation kernel scales with workers independent of k).
	// 0 picks runtime.GOMAXPROCS(0). The simulated statistics are
	// identical for every worker count; only wall-clock time changes.
	Workers int
	// Seed drives deterministic per-superstep worker randomness.
	Seed int64
	// Cost prices the simulated cluster; zero value means DefaultCostModel.
	Cost CostModel
	// RecordEvery controls how often the (O(E)) edge-cut statistic is
	// computed: every n supersteps, or never when 0.
	RecordEvery int
	// CheckpointEvery takes a full checkpoint every n supersteps (0 = off);
	// required for failure injection.
	CheckpointEvery int
	// Placer assigns partitions to vertices arriving from the stream; nil
	// means hash placement.
	Placer func(v graph.VertexID, k int) partition.ID
}

// MigrationRequest asks the engine to move vertex V to partition To using
// the deferred protocol.
type MigrationRequest struct {
	V  graph.VertexID
	To partition.ID
}

// Repartitioner is the hook the adaptive partitioning algorithm plugs into:
// it is invoked at every superstep barrier and returns the migrations to
// start. Implementations see a read-only view of the system.
type Repartitioner interface {
	Plan(view *View) []MigrationRequest
}

// View is the read-only system state handed to a Repartitioner.
type View struct{ e *Engine }

// K returns the number of partitions.
func (v *View) K() int { return v.e.k }

// Workers returns the number of compute goroutines. Repartitioning logic
// should almost always use K instead: partition membership, quotas and the
// cost model are all per-partition.
func (v *View) Workers() int { return len(v.e.workers) }

// Superstep returns the superstep whose barrier is executing.
func (v *View) Superstep() int { return v.e.superstep }

// Graph returns the topology. Callers must treat it as read-only.
func (v *View) Graph() *graph.Graph { return v.e.g }

// Addr returns the current addressing table (vertex → partition). Callers
// must treat it as read-only.
func (v *View) Addr() *partition.Assignment { return v.e.addr }

// Migrating reports whether the vertex is already in the deferred
// migration window (decided but not yet physically moved).
func (v *View) Migrating(id graph.VertexID) bool {
	_, ok := v.e.pendingHome[id]
	return ok
}

// WorkerCosts returns each partition's simulated cost from the superstep
// whose barrier is executing — the runtime hot-spot statistics the paper's
// second future-work extension feeds back into balancing. (The paper hosts
// one partition per physical worker, hence the name; compute goroutines do
// not appear in the cost model.) The slice is indexed by partition ID and
// is the caller's to keep: it is copied out of the engine.
func (v *View) WorkerCosts() []float64 {
	if v.e.lastCosts == nil {
		return nil
	}
	return append([]float64(nil), v.e.lastCosts...)
}

// MutatedVertices returns the vertices touched by the mutation batch
// applied at this barrier (added vertices, endpoints of added/removed
// edges, and the ex-neighbours of removed vertices) — the change notices
// an incremental repartitioner seeds its active set from. The slice may
// contain duplicates and IDs that are no longer live; it is the caller's
// to keep. Empty when the barrier applied no mutations.
func (v *View) MutatedVertices() []graph.VertexID {
	if len(v.e.lastMutated) == 0 {
		return nil
	}
	return append([]graph.VertexID(nil), v.e.lastMutated...)
}

type outMsg struct {
	dst graph.VertexID
	src partition.ID // sending vertex's partition: prices local vs remote
	msg any
}

// mergeKey identifies a combinable message group: one source partition,
// one destination vertex. Combining never crosses source partitions —
// separate simulated machines cannot fold their traffic.
type mergeKey struct {
	src partition.ID
	dst graph.VertexID
}

// worker is the per-goroutine compute state. Each superstep every worker
// owns a contiguous range of vertex slots [lo, hi); the engine guarantees
// exclusive access to those vertices during the parallel compute phase.
// Cost accounting stays per-partition — the simulated machines — so the
// numbers a run reports are identical for any worker count.
type worker struct {
	id            int
	lo, hi        int
	outbox        [][]outMsg // indexed by destination partition
	aggPartial    map[string]float64
	aggMaxPartial map[string]float64
	combiner      MessageCombiner
	combineIdx    map[mergeKey]combineRef
	srcPart       partition.ID // partition of the vertex being computed
	computedBy    []int        // computed vertices per partition
	localBy       []int        // local messages per sending partition
	remoteBy      []int        // remote messages per sending partition
	localMsgs     int
	remoteMsgs    int
	computed      int
}

func (w *worker) reset(k int) {
	if w.outbox == nil {
		w.outbox = make([][]outMsg, k)
		w.computedBy = make([]int, k)
		w.localBy = make([]int, k)
		w.remoteBy = make([]int, k)
	}
	for i := range w.outbox {
		w.outbox[i] = w.outbox[i][:0]
	}
	clear(w.computedBy)
	clear(w.localBy)
	clear(w.remoteBy)
	clear(w.aggPartial)
	clear(w.aggMaxPartial)
	if w.combiner != nil {
		clear(w.combineIdx)
	}
	w.localMsgs = 0
	w.remoteMsgs = 0
	w.computed = 0
}

// send buffers a message for the barrier, classifying it local or remote
// by comparing the destination's partition with the sending vertex's — the
// simulated network, independent of which goroutine computes either end.
// With a combiner, messages from the same source partition to the same
// destination fold into one message; the fold completes across workers at
// the barrier (a partition's vertices may be swept by several goroutines),
// where the merged messages are priced, so combiner statistics are also
// invariant under the worker count.
func (w *worker) send(e *Engine, dst graph.VertexID, msg any) {
	p := e.addr.Of(dst)
	if p == partition.None {
		return // destination unknown (removed or never existed): drop
	}
	if w.combiner != nil {
		if w.combine(dst, msg) {
			return
		}
		w.outbox[p] = append(w.outbox[p], outMsg{dst: dst, src: w.srcPart, msg: msg})
		w.combineIdx[mergeKey{src: w.srcPart, dst: dst}] = combineRef{part: int(p), pos: len(w.outbox[p]) - 1}
		return
	}
	if p == w.srcPart {
		w.localMsgs++
		w.localBy[w.srcPart]++
	} else {
		w.remoteMsgs++
		w.remoteBy[w.srcPart]++
	}
	w.outbox[p] = append(w.outbox[p], outMsg{dst: dst, src: w.srcPart, msg: msg})
}

// Engine executes a Program over a partitioned dynamic graph.
type Engine struct {
	cfg  Config
	g    *graph.Graph
	prog Program
	// k is the number of partitions (simulated machines), from the
	// assignment — independent of the number of compute workers.
	k int

	// addr is the addressing table: where messages for a vertex are sent.
	// It is updated at the barrier where a migration is decided.
	addr *partition.Assignment
	// home is the vertex's home partition — the simulated machine that
	// physically holds its state. It lags addr by one superstep for
	// migrating vertices (deferred protocol). -1 marks dead/unplaced
	// slots. Which goroutine computes a vertex is unrelated: workers own
	// slot shards.
	home []int32
	// pendingHome holds migrations awaiting their physical move.
	pendingHome map[graph.VertexID]partition.ID

	values []any
	halted []bool
	inbox  [][]any
	// mutNotice marks vertices whose immediate neighbourhood changed at the
	// most recent barrier. Programs read it during the following compute
	// phase via VertexContext.TopologyChanged; it is cleared at the next
	// barrier, so a notice is visible for exactly one superstep — the
	// program-facing twin of View.MutatedVertices.
	mutNotice []bool

	workers    []*worker
	combiner   MessageCombiner
	aggregated map[string]float64
	repart     Repartitioner
	stream     graph.Stream

	// Barrier-side scratch for completing the combiner fold across
	// workers and pricing the merged messages per source partition.
	mergeIdx      map[mergeKey]int
	mergedBuf     []outMsg
	deliverLocal  []int
	deliverRemote []int

	superstep     int
	costPerVertex float64
	msgsInFlight  int
	lastCosts     []float64 // per-worker cost of the last superstep
	lastMutated   []graph.VertexID
	history       []SuperstepStats

	cp     *checkpoint
	failAt map[int]bool
	wg     sync.WaitGroup
}

// NewEngine builds an engine over g with the given initial assignment
// (adopted, not copied) and vertex program.
func NewEngine(g *graph.Graph, asn *partition.Assignment, prog Program, cfg Config) (*Engine, error) {
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("bsp: Workers must be ≥ 0, got %d", cfg.Workers)
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if asn.K() < 1 {
		return nil, fmt.Errorf("bsp: assignment must have k ≥ 1, got %d", asn.K())
	}
	if err := asn.Validate(g); err != nil {
		return nil, fmt.Errorf("bsp: invalid assignment: %w", err)
	}
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = DefaultCostModel()
	}
	e := &Engine{
		cfg:           cfg,
		g:             g,
		prog:          prog,
		k:             asn.K(),
		addr:          asn,
		pendingHome:   make(map[graph.VertexID]partition.ID),
		aggregated:    make(map[string]float64),
		failAt:        make(map[int]bool),
		costPerVertex: 1,
	}
	if cd, ok := prog.(CostDeclarer); ok {
		e.costPerVertex = cd.CostPerVertex()
	}
	combiner, _ := prog.(MessageCombiner)
	e.combiner = combiner
	if combiner != nil {
		e.mergeIdx = make(map[mergeKey]int)
		e.deliverLocal = make([]int, e.k)
		e.deliverRemote = make([]int, e.k)
	}
	e.workers = make([]*worker, cfg.Workers)
	for i := range e.workers {
		e.workers[i] = &worker{
			id:            i,
			aggPartial:    make(map[string]float64),
			aggMaxPartial: make(map[string]float64),
			combiner:      combiner,
		}
		if combiner != nil {
			e.workers[i].combineIdx = make(map[mergeKey]combineRef)
		}
	}
	e.grow()
	ctx := &VertexContext{engine: e}
	g.ForEachVertex(func(v graph.VertexID) {
		e.home[v] = int32(asn.Of(v))
		ctx.id = v
		e.values[v] = prog.Init(ctx)
	})
	return e, nil
}

// grow sizes the per-vertex tables to the graph's slot count.
func (e *Engine) grow() {
	for len(e.home) < e.g.NumSlots() {
		e.home = append(e.home, -1)
		e.values = append(e.values, nil)
		e.halted = append(e.halted, false)
		e.inbox = append(e.inbox, nil)
		e.mutNotice = append(e.mutNotice, false)
	}
	e.addr.Grow(e.g.NumSlots())
}

// SetRepartitioner installs the background repartitioning service (nil
// disables adaptation — the static baseline).
func (e *Engine) SetRepartitioner(r Repartitioner) { e.repart = r }

// SetStream installs the dynamic mutation stream consumed one batch per
// superstep barrier.
func (e *Engine) SetStream(s graph.Stream) { e.stream = s }

// Graph returns the engine's topology.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Addr returns the live addressing table.
func (e *Engine) Addr() *partition.Assignment { return e.addr }

// Superstep returns the number of supersteps executed.
func (e *Engine) Superstep() int { return e.superstep }

// Value returns the current value of a vertex (nil for dead vertices).
func (e *Engine) Value(v graph.VertexID) any {
	if int(v) >= len(e.values) || v < 0 {
		return nil
	}
	return e.values[v]
}

// Aggregated returns the named aggregator's value from the most recent
// superstep that contributed to it (aggregators are sticky; see
// RunSuperstep).
func (e *Engine) Aggregated(name string) float64 { return e.aggregated[name] }

// History returns the stats of every executed superstep. The slice is the
// caller's to keep: it is copied out of the engine.
func (e *Engine) History() []SuperstepStats {
	return append([]SuperstepStats(nil), e.history...)
}

// ScheduleFailure makes the barrier of the given superstep simulate a
// worker crash: the engine rolls back to its last checkpoint (Pregel-style
// synchronous recovery). Requires CheckpointEvery > 0.
func (e *Engine) ScheduleFailure(superstep int) { e.failAt[superstep] = true }

// RunSuperstep executes one superstep (parallel compute, then barrier) and
// returns its stats.
func (e *Engine) RunSuperstep() SuperstepStats {
	t := e.superstep

	// ---- Parallel compute phase ----
	// Workers own contiguous slot shards, re-derived every superstep so
	// the shards track graph growth; partition membership plays no role in
	// ownership (worker/partition decoupling).
	slots := len(e.home)
	for _, w := range e.workers {
		w.reset(e.k)
		w.lo, w.hi = graph.ShardRange(w.id, len(e.workers), slots)
	}
	for _, w := range e.workers {
		e.wg.Add(1)
		go func(w *worker) {
			defer e.wg.Done()
			e.computeWorker(w, t)
		}(w)
	}
	e.wg.Wait()

	// ---- Barrier phase (single-threaded) ----
	st := SuperstepStats{Superstep: t, CutEdges: -1}

	// 1. Complete physical moves decided at the previous barrier.
	migCost := make([]float64, e.k)
	if len(e.pendingHome) > 0 {
		moves := make([]graph.VertexID, 0, len(e.pendingHome))
		for v := range e.pendingHome {
			moves = append(moves, v)
		}
		sort.Slice(moves, func(i, j int) bool { return moves[i] < moves[j] })
		for _, v := range moves {
			dst := e.pendingHome[v]
			src := e.home[v]
			if src >= 0 {
				migCost[src] += e.cfg.Cost.PerMigration / 2
			}
			migCost[dst] += e.cfg.Cost.PerMigration / 2
			e.home[v] = int32(dst)
			st.MigrationsCompleted++
		}
		clear(e.pendingHome)
	}

	// 2. Deliver messages sent during this superstep (visible at t+1).
	// With a combiner, first complete the per-source-partition fold
	// across workers — a partition's vertices may have been swept by
	// several goroutines — then price the merged messages, so message
	// statistics match the one-machine-per-partition cluster regardless
	// of the worker count.
	delivered := 0
	for _, w := range e.workers {
		st.ActiveVertices += w.computed
	}
	if e.combiner == nil {
		for _, w := range e.workers {
			st.LocalMsgs += w.localMsgs
			st.RemoteMsgs += w.remoteMsgs
			for _, box := range w.outbox {
				for _, m := range box {
					if !e.g.Has(m.dst) {
						continue // removed while in flight
					}
					e.inbox[m.dst] = append(e.inbox[m.dst], m.msg)
					delivered++
				}
			}
		}
	} else {
		clear(e.deliverLocal)
		clear(e.deliverRemote)
		for p := 0; p < e.k; p++ {
			merged := e.mergedBuf[:0]
			clear(e.mergeIdx)
			for _, w := range e.workers {
				for _, m := range w.outbox[p] {
					key := mergeKey{src: m.src, dst: m.dst}
					if j, ok := e.mergeIdx[key]; ok {
						merged[j].msg = e.combiner.CombineMessages(merged[j].msg, m.msg)
					} else {
						e.mergeIdx[key] = len(merged)
						merged = append(merged, m)
					}
				}
			}
			for _, m := range merged {
				if int(m.src) == p {
					st.LocalMsgs++
					e.deliverLocal[m.src]++
				} else {
					st.RemoteMsgs++
					e.deliverRemote[m.src]++
				}
				if !e.g.Has(m.dst) {
					continue // removed while in flight
				}
				e.inbox[m.dst] = append(e.inbox[m.dst], m.msg)
				delivered++
			}
			e.mergedBuf = merged[:0]
		}
	}

	// 3. Apply the stream's mutation batch, recording the touched
	// vertices for View.MutatedVertices. The notices delivered during this
	// superstep's compute phase (set at the previous barrier) expire first:
	// a notice is visible for exactly one superstep.
	for _, v := range e.lastMutated {
		if int(v) < len(e.mutNotice) {
			e.mutNotice[v] = false
		}
	}
	e.lastMutated = e.lastMutated[:0]
	if e.stream != nil && !e.stream.Done() {
		st.Mutations = e.applyBatch(e.stream.Next())
	}

	// 4. Record per-partition costs of this superstep (compute is done,
	// and migration shares are known from step 1), then run the
	// repartitioner — it sees the load statistics the hot-spot extension
	// consumes — and start migrations (deferred protocol: addressing
	// changes now, the physical move completes next barrier). Costs are
	// accumulated by partition, not by compute goroutine, so the simulated
	// clock is invariant under the worker count.
	if len(e.lastCosts) != e.k {
		e.lastCosts = make([]float64, e.k)
	}
	for j := 0; j < e.k; j++ {
		c := migCost[j]
		for _, w := range e.workers {
			c += float64(w.computedBy[j])*e.cfg.Cost.PerVertex*e.costPerVertex +
				float64(w.localBy[j])*e.cfg.Cost.PerLocalMsg +
				float64(w.remoteBy[j])*e.cfg.Cost.PerRemoteMsg
		}
		if e.combiner != nil {
			// Combined messages are priced after the cross-worker fold
			// (the per-worker counters stay zero).
			c += float64(e.deliverLocal[j])*e.cfg.Cost.PerLocalMsg +
				float64(e.deliverRemote[j])*e.cfg.Cost.PerRemoteMsg
		}
		e.lastCosts[j] = c
	}
	if e.repart != nil {
		reqs := e.repart.Plan(&View{e: e})
		for _, r := range reqs {
			if !e.g.Has(r.V) || r.To < 0 || int(r.To) >= e.k {
				continue
			}
			if e.addr.Of(r.V) == r.To {
				continue
			}
			if _, migrating := e.pendingHome[r.V]; migrating {
				continue // already in the migration window
			}
			e.addr.Assign(r.V, r.To)
			e.pendingHome[r.V] = r.To
			st.MigrationsStarted++
		}
	}

	// 5. Merge aggregators (sums, then maxes). Aggregators are sticky: a
	// name keeps its last written value until a superstep contributes to
	// it again, so results published by programs that then halt (e.g. the
	// clique sizes) survive trailing quiet supersteps.
	touched := make(map[string]bool)
	for _, w := range e.workers {
		for k, v := range w.aggPartial {
			if !touched[k] {
				touched[k] = true
				e.aggregated[k] = 0
			}
			e.aggregated[k] += v
		}
	}
	for _, w := range e.workers {
		for k, v := range w.aggMaxPartial {
			if !touched[k] {
				touched[k] = true
				e.aggregated[k] = v
			} else if v > e.aggregated[k] {
				e.aggregated[k] = v
			}
		}
	}

	// 6. Cost clock: slowest partition (including its share of migration
	// work) plus the barrier constant.
	maxCost := 0.0
	for _, c := range e.lastCosts {
		if c > maxCost {
			maxCost = c
		}
	}
	st.Time = maxCost + e.cfg.Cost.Barrier

	// 7. Checkpoint / failure injection.
	e.superstep++
	if e.failAt[t] && e.cp != nil {
		e.restore()
		st.Recovered = true
		st.Time += float64(e.cfg.Cost.Barrier) * 20 // recovery pause
		delete(e.failAt, t)
	} else if e.cfg.CheckpointEvery > 0 && e.superstep%e.cfg.CheckpointEvery == 0 {
		e.snapshot()
	}

	if e.cfg.RecordEvery > 0 && t%e.cfg.RecordEvery == 0 {
		st.CutEdges = partition.CutEdges(e.g, e.addr)
		if m := e.g.NumEdges(); m > 0 {
			st.CutRatio = float64(st.CutEdges) / float64(m)
		}
	}
	e.msgsInFlight = delivered
	e.history = append(e.history, st)
	return st
}

func (e *Engine) computeWorker(w *worker, t int) {
	ctx := VertexContext{engine: e, worker: w, superstep: t}
	for id := w.lo; id < w.hi; id++ {
		hp := e.home[id]
		if hp < 0 {
			continue // dead or not yet placed
		}
		msgs := e.inbox[id]
		if len(msgs) == 0 && e.halted[id] {
			continue
		}
		e.halted[id] = false
		w.srcPart = partition.ID(hp)
		ctx.id = graph.VertexID(id)
		e.prog.Compute(&ctx, msgs)
		e.inbox[id] = nil
		w.computed++
		w.computedBy[hp]++
	}
}

// applyBatch applies a stream batch at the barrier: vertices/edges change,
// new vertices are placed and initialised, removed vertices are retired,
// and every mutation-touched vertex — including the ex-neighbours of a
// removed vertex, which have no surviving edge back to the cause — is
// reactivated and flagged with a topology-change notice for the next
// compute phase.
func (e *Engine) applyBatch(b graph.Batch) int {
	if len(b) == 0 {
		return 0
	}
	applied := e.g.ApplyTouched(b, func(v graph.VertexID) {
		e.lastMutated = append(e.lastMutated, v)
	})
	if applied == 0 {
		return 0
	}
	e.grow()
	ctx := &VertexContext{engine: e, superstep: e.superstep}
	for _, mu := range b {
		switch mu.Kind {
		case graph.MutAddVertex:
			e.place(ctx, mu.U)
		case graph.MutAddEdge:
			e.place(ctx, mu.U)
			e.place(ctx, mu.V)
		case graph.MutRemoveVertex:
			if !e.g.Has(mu.U) && e.addr.Of(mu.U) != partition.None {
				e.addr.Unassign(mu.U)
				e.home[mu.U] = -1
				e.values[mu.U] = nil
				e.inbox[mu.U] = nil
				e.halted[mu.U] = false
				e.mutNotice[mu.U] = false
				delete(e.pendingHome, mu.U)
			}
		}
	}
	for _, v := range e.lastMutated {
		if e.g.Has(v) {
			e.halted[v] = false
			e.mutNotice[v] = true
		}
	}
	return applied
}

// place assigns a partition to a vertex arriving from the stream and runs
// the program's Init for it; existing vertices are left untouched.
func (e *Engine) place(ctx *VertexContext, v graph.VertexID) {
	if !e.g.Has(v) || e.addr.Of(v) != partition.None {
		return
	}
	var p partition.ID
	if e.cfg.Placer != nil {
		p = e.cfg.Placer(v, e.k)
	} else {
		p = partition.HashVertex(v, e.k)
	}
	e.addr.Assign(v, p)
	e.home[v] = int32(p)
	ctx.id = v
	e.values[v] = e.prog.Init(ctx)
	e.halted[v] = false
}

// Quiescent reports whether the computation has nothing left to do: no
// active vertices, no undelivered messages, no pending migrations and an
// exhausted (or absent) stream.
func (e *Engine) Quiescent() bool {
	if e.msgsInFlight > 0 || len(e.pendingHome) > 0 {
		return false
	}
	if e.stream != nil && !e.stream.Done() {
		return false
	}
	quiet := true
	e.g.ForEachVertex(func(v graph.VertexID) {
		if !e.halted[v] || len(e.inbox[v]) > 0 {
			quiet = false
		}
	})
	return quiet
}

// ResetComputation reinitialises every vertex value via Program.Init and
// reactivates all vertices, keeping the graph, the partitioning and the
// superstep clock intact. The mobile-network use case uses this to rerun
// the clique computation over each buffered window of graph changes while
// the adaptive partitioning persists across runs (paper Section 4.3).
func (e *Engine) ResetComputation() {
	ctx := &VertexContext{engine: e, superstep: e.superstep}
	e.g.ForEachVertex(func(v graph.VertexID) {
		ctx.id = v
		e.values[v] = e.prog.Init(ctx)
		e.halted[v] = false
		e.inbox[v] = nil
	})
}

// RunSupersteps executes exactly n supersteps and returns their stats.
func (e *Engine) RunSupersteps(n int) []SuperstepStats {
	out := make([]SuperstepStats, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, e.RunSuperstep())
	}
	return out
}

// RunUntilQuiescent executes supersteps until the computation halts (all
// vertices voted, no messages, stream done) or max supersteps elapse. It
// returns the executed stats and whether quiescence was reached.
func (e *Engine) RunUntilQuiescent(max int) ([]SuperstepStats, bool) {
	out := make([]SuperstepStats, 0, 64)
	for i := 0; i < max; i++ {
		out = append(out, e.RunSuperstep())
		if e.Quiescent() {
			return out, true
		}
	}
	return out, false
}
