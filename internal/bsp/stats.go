package bsp

// CostModel prices the simulated cluster's operations. The engine's clock
// charges each worker for its compute, messaging and migration work every
// superstep and takes the slowest worker (BSP barrier) as the superstep
// time — mirroring how the paper's iteration times are dominated by
// network messaging (">80% of the time" in the biomedical and Twitter use
// cases) and why cutting remote edges cuts iteration time.
type CostModel struct {
	// PerVertex is the charge for computing one active vertex (scaled by
	// the program's CostPerVertex factor, if declared).
	PerVertex float64
	// PerLocalMsg is the charge for a message whose destination lives on
	// the sending worker.
	PerLocalMsg float64
	// PerRemoteMsg is the charge for a cross-worker message; the paper's
	// setting implies remote ≫ local.
	PerRemoteMsg float64
	// PerMigration is the charge for physically moving one vertex (state
	// transfer plus bookkeeping).
	PerMigration float64
	// Barrier is the fixed synchronisation cost per superstep.
	Barrier float64
}

// DefaultCostModel reflects a 10 GbE cluster where remote messages cost an
// order of magnitude more than local handoffs and migrations move whole
// vertex states.
func DefaultCostModel() CostModel {
	return CostModel{
		PerVertex:    0.01,
		PerLocalMsg:  0.01,
		PerRemoteMsg: 0.12,
		PerMigration: 0.6,
		Barrier:      1,
	}
}

// SuperstepStats records one superstep of engine execution; the system
// experiments (Figures 7, 8, 9) are plotted from these.
type SuperstepStats struct {
	Superstep int
	// Time is the simulated superstep duration in cost units: the maximum
	// per-worker cost plus the barrier constant.
	Time float64
	// ActiveVertices counts vertices that computed this superstep.
	ActiveVertices int
	LocalMsgs      int
	RemoteMsgs     int
	// MigrationsStarted counts migrations entering the deferred protocol
	// at this superstep's barrier; MigrationsCompleted counts physical
	// moves finishing.
	MigrationsStarted   int
	MigrationsCompleted int
	// CutEdges is the edge cut of the current addressing table, or -1 when
	// not recorded this superstep (Config.RecordEvery).
	CutEdges int
	CutRatio float64
	// Mutations counts effective graph changes applied at the barrier.
	Mutations int
	// Recovered marks a superstep at which worker failure triggered a
	// checkpoint rollback; Time then includes the recovery pause.
	Recovered bool
}

// RunTotals aggregates a run's (or a phase's) supersteps into the totals
// the analytics experiments report: simulated time, message volume split
// by locality, and migration/mutation counts. RemoteMsgs is the
// communication-cost headline — the cut-message count the paper's
// "adaptation pays" argument is about.
type RunTotals struct {
	Supersteps          int
	Time                float64
	ActiveVertices      int
	LocalMsgs           int
	RemoteMsgs          int
	MigrationsStarted   int
	MigrationsCompleted int
	Mutations           int
}

// Summarize folds a slice of per-superstep stats (e.g. a churn phase cut
// out of Engine.History) into run totals.
func Summarize(history []SuperstepStats) RunTotals {
	var t RunTotals
	for _, st := range history {
		t.Supersteps++
		t.Time += st.Time
		t.ActiveVertices += st.ActiveVertices
		t.LocalMsgs += st.LocalMsgs
		t.RemoteMsgs += st.RemoteMsgs
		t.MigrationsStarted += st.MigrationsStarted
		t.MigrationsCompleted += st.MigrationsCompleted
		t.Mutations += st.Mutations
	}
	return t
}
