package bsp

import (
	"sync"
	"testing"

	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// viewProbe is a Repartitioner that records what the View accessors report
// at each barrier without ever requesting a migration.
type viewProbe struct {
	mu        sync.Mutex
	k         int
	workers   int
	vertices  int
	costLens  []int
	migrating bool
}

func (p *viewProbe) Plan(v *View) []MigrationRequest {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.k = v.K()
	p.workers = v.Workers()
	p.vertices = v.Graph().NumVertices()
	p.costLens = append(p.costLens, len(v.WorkerCosts()))
	p.migrating = p.migrating || v.Migrating(0)
	if v.Addr().Of(0) >= partition.ID(v.K()) {
		panic("assignment outside partition range")
	}
	return nil
}

// TestViewAccessors pins the read-only system state a Repartitioner sees:
// partition count, worker count, topology, addressing, per-partition costs
// (absent before the first superstep completes) and the migration window.
func TestViewAccessors(t *testing.T) {
	g := graph.NewUndirected(4)
	a, b := g.AddVertex(), g.AddVertex()
	g.AddVertex()
	g.AddVertex()
	g.AddEdge(a, b)
	probe := &viewProbe{}
	e, err := NewEngine(g, partition.Hash(g, 2), progFuncs{
		init:    func(ctx *VertexContext) any { return nil },
		compute: func(ctx *VertexContext, msgs []any) { ctx.VoteToHalt() },
	}, Config{Workers: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.SetRepartitioner(probe)
	e.RunSupersteps(2)
	if probe.k != 2 || probe.workers != 3 || probe.vertices != 4 {
		t.Errorf("view reported k=%d workers=%d vertices=%d", probe.k, probe.workers, probe.vertices)
	}
	if probe.migrating {
		t.Error("no migration was requested, yet a vertex is in the window")
	}
	// WorkerCosts is per partition once the first superstep has run.
	if len(probe.costLens) != 2 || probe.costLens[len(probe.costLens)-1] != 2 {
		t.Errorf("cost vector lengths = %v", probe.costLens)
	}
}

// TestContextTopologyAccessorsAndAggregates covers the vertex-context
// topology views (Degree, Neighbors, NeighborCursor, InNeighbors) and the
// aggregator read-back path in one small run.
func TestContextTopologyAccessorsAndAggregates(t *testing.T) {
	g := graph.NewUndirected(3)
	a, b, c := g.AddVertex(), g.AddVertex(), g.AddVertex()
	g.AddEdge(a, b)
	g.AddEdge(a, c)
	var (
		mu       sync.Mutex
		deg      int
		nbrs     int
		inNbrs   int
		cursored int
		aggSeen  float64
		maxSeen  float64
	)
	prog := progFuncs{
		init: func(ctx *VertexContext) any { return nil },
		compute: func(ctx *VertexContext, msgs []any) {
			ctx.Aggregate("mass", 1)
			ctx.AggregateMax("peak", float64(ctx.ID()))
			if ctx.ID() == a {
				mu.Lock()
				deg = ctx.Degree()
				nbrs = len(ctx.Neighbors())
				inNbrs = len(ctx.InNeighbors())
				cursored = 0
				for cur := ctx.NeighborCursor(); ; {
					chunk := cur.NextChunk()
					if chunk == nil {
						break
					}
					cursored += len(chunk)
				}
				if ctx.Superstep() == 1 {
					aggSeen = ctx.Aggregated("mass")
					maxSeen = ctx.Aggregated("peak")
				}
				mu.Unlock()
			}
			if ctx.Superstep() == 0 {
				ctx.SendToNeighbors(struct{}{}) // keep everyone alive one more step
			} else {
				ctx.VoteToHalt()
			}
		},
	}
	e, err := NewEngine(g, partition.Hash(g, 2), prog, Config{Workers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.RunSupersteps(2)
	if deg != 2 || nbrs != 2 || inNbrs != 2 || cursored != 2 {
		t.Errorf("topology views: deg=%d neighbors=%d in=%d cursor=%d, want all 2", deg, nbrs, inNbrs, cursored)
	}
	if aggSeen != 3 {
		t.Errorf("sum aggregator read %v, want 3 (one per vertex)", aggSeen)
	}
	if maxSeen != float64(c) {
		t.Errorf("max aggregator read %v, want %v", maxSeen, float64(c))
	}
}

// TestSummarize pins the history fold the analytics experiments report.
func TestSummarize(t *testing.T) {
	h := []SuperstepStats{
		{Time: 2, ActiveVertices: 5, LocalMsgs: 3, RemoteMsgs: 4, MigrationsStarted: 1, MigrationsCompleted: 0, Mutations: 2},
		{Time: 3, ActiveVertices: 1, LocalMsgs: 0, RemoteMsgs: 6, MigrationsStarted: 0, MigrationsCompleted: 1, Mutations: 0},
	}
	got := Summarize(h)
	want := RunTotals{Supersteps: 2, Time: 5, ActiveVertices: 6, LocalMsgs: 3,
		RemoteMsgs: 10, MigrationsStarted: 1, MigrationsCompleted: 1, Mutations: 2}
	if got != want {
		t.Errorf("Summarize = %+v, want %+v", got, want)
	}
	if got := Summarize(nil); got != (RunTotals{}) {
		t.Errorf("Summarize(nil) = %+v", got)
	}
}
