package bsp

import (
	"testing"

	"xdgp/internal/gen"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// echoProgram counts every message each vertex ever receives and sends one
// message per neighbour for a fixed number of rounds. It lets tests assert
// exact message-delivery counts.
type echoProgram struct {
	rounds int
}

func (p *echoProgram) Init(ctx *VertexContext) any { return 0 }

func (p *echoProgram) Compute(ctx *VertexContext, msgs []any) {
	ctx.SetValue(ctx.Value().(int) + len(msgs))
	if ctx.Superstep() < p.rounds {
		ctx.SendToNeighbors(1)
	} else {
		ctx.VoteToHalt()
	}
}

func pairGraph() *graph.Graph {
	g := graph.NewUndirected(2)
	a, b := g.AddVertex(), g.AddVertex()
	g.AddEdge(a, b)
	return g
}

func newTestEngine(t *testing.T, g *graph.Graph, k int, prog Program, cfg Config) *Engine {
	t.Helper()
	cfg.Workers = k
	asn := partition.Hash(g, k)
	e, err := NewEngine(g, asn, prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineValidation(t *testing.T) {
	g := pairGraph()
	asn := partition.Hash(g, 2)
	if _, err := NewEngine(g, asn, &echoProgram{}, Config{Workers: -1}); err == nil {
		t.Fatal("negative Workers must error")
	}
	// Workers is decoupled from k: 0 means GOMAXPROCS, any positive count
	// is legal regardless of the assignment's partition count.
	if _, err := NewEngine(g, asn.Clone(), &echoProgram{}, Config{Workers: 0}); err != nil {
		t.Fatalf("Workers=0 (auto) must be accepted: %v", err)
	}
	if _, err := NewEngine(g, asn.Clone(), &echoProgram{}, Config{Workers: 3}); err != nil {
		t.Fatalf("Workers != k must be accepted: %v", err)
	}
	empty := partition.NewAssignment(g.NumSlots(), 2)
	if _, err := NewEngine(g, empty, &echoProgram{}, Config{Workers: 2}); err == nil {
		t.Fatal("invalid assignment must error")
	}
}

// sumCombineProgram floods float messages with a summing combiner — the
// PageRank-shaped workload that exercises cross-worker message folding.
type sumCombineProgram struct{ rounds int }

func (p *sumCombineProgram) Init(ctx *VertexContext) any { return 0.0 }

func (p *sumCombineProgram) Compute(ctx *VertexContext, msgs []any) {
	total := ctx.Value().(float64)
	for _, m := range msgs {
		total += m.(float64)
	}
	ctx.SetValue(total)
	if ctx.Superstep() < p.rounds {
		ctx.SendToNeighbors(1.0)
	} else {
		ctx.VoteToHalt()
	}
}

func (p *sumCombineProgram) CombineMessages(a, b any) any { return a.(float64) + b.(float64) }

// TestWorkerCountInvariance pins the worker/partition decoupling: the
// simulated statistics (message locality, per-partition costs, superstep
// time, vertex values) are identical whichever number of compute
// goroutines sweeps the vertices.
func TestWorkerCountInvariance(t *testing.T) {
	run := func(workers int) (*Engine, []SuperstepStats) {
		g := gen.Cube3D(6) // 216 vertices, k=4 partitions
		asn := partition.Hash(g, 4)
		e, err := NewEngine(g, asn, &echoProgram{rounds: 3}, Config{Workers: workers, Seed: 1, RecordEvery: 1})
		if err != nil {
			t.Fatal(err)
		}
		stats, _ := e.RunUntilQuiescent(10)
		return e, stats
	}
	ref, refStats := run(4) // the old coupled configuration: one worker per partition
	for _, workers := range []int{1, 3, 7} {
		e, stats := run(workers)
		if len(stats) != len(refStats) {
			t.Fatalf("workers=%d: %d supersteps, want %d", workers, len(stats), len(refStats))
		}
		for i := range stats {
			got, want := stats[i], refStats[i]
			// Per-partition costs are summed over workers, so the float
			// addition order — and nothing else — may differ.
			if d := got.Time - want.Time; d > 1e-9 || d < -1e-9 {
				t.Fatalf("workers=%d superstep %d: time %v != reference %v",
					workers, i, got.Time, want.Time)
			}
			got.Time = want.Time
			if got != want {
				t.Fatalf("workers=%d superstep %d: stats %+v != reference %+v",
					workers, i, got, want)
			}
		}
		e.Graph().ForEachVertex(func(v graph.VertexID) {
			if e.Value(v) != ref.Value(v) {
				t.Fatalf("workers=%d: vertex %d value %v != reference %v",
					workers, v, e.Value(v), ref.Value(v))
			}
		})
	}
}

// TestWorkerCountInvarianceWithCombiner repeats the invariance pin for a
// combiner program: combining happens per source partition (the simulated
// machine where the fold physically occurs), so message counts and costs
// must not depend on how vertices are spread over compute goroutines.
func TestWorkerCountInvarianceWithCombiner(t *testing.T) {
	run := func(workers int) (*Engine, []SuperstepStats) {
		g := gen.Cube3D(6)
		asn := partition.Hash(g, 4)
		e, err := NewEngine(g, asn, &sumCombineProgram{rounds: 3}, Config{Workers: workers, Seed: 1, RecordEvery: 1})
		if err != nil {
			t.Fatal(err)
		}
		stats, _ := e.RunUntilQuiescent(10)
		return e, stats
	}
	ref, refStats := run(4)
	for _, workers := range []int{1, 3, 8} {
		e, stats := run(workers)
		if len(stats) != len(refStats) {
			t.Fatalf("workers=%d: %d supersteps, want %d", workers, len(stats), len(refStats))
		}
		for i := range stats {
			got, want := stats[i], refStats[i]
			if d := got.Time - want.Time; d > 1e-9 || d < -1e-9 {
				t.Fatalf("workers=%d superstep %d: time %v != reference %v",
					workers, i, got.Time, want.Time)
			}
			got.Time = want.Time
			if got != want {
				t.Fatalf("workers=%d superstep %d: stats %+v != reference %+v",
					workers, i, got, want)
			}
		}
		e.Graph().ForEachVertex(func(v graph.VertexID) {
			if e.Value(v) != ref.Value(v) {
				t.Fatalf("workers=%d: vertex %d value %v != reference %v",
					workers, v, e.Value(v), ref.Value(v))
			}
		})
	}
}

func TestMessageDeliveryNextSuperstep(t *testing.T) {
	g := pairGraph()
	e := newTestEngine(t, g, 2, &echoProgram{rounds: 3}, Config{Seed: 1})
	// Superstep 0: both send, nobody has received yet.
	e.RunSuperstep()
	if e.Value(0).(int) != 0 || e.Value(1).(int) != 0 {
		t.Fatal("messages must not arrive in the superstep they are sent")
	}
	// Superstep 1: each received exactly one message from the other.
	e.RunSuperstep()
	if e.Value(0).(int) != 1 || e.Value(1).(int) != 1 {
		t.Fatalf("after superstep 1: values %v %v, want 1 1", e.Value(0), e.Value(1))
	}
}

func TestQuiescenceAfterHalt(t *testing.T) {
	g := pairGraph()
	e := newTestEngine(t, g, 2, &echoProgram{rounds: 2}, Config{Seed: 1})
	stats, done := e.RunUntilQuiescent(10)
	if !done {
		t.Fatal("engine never became quiescent")
	}
	// rounds=2: sends at supersteps 0..1, last delivery consumed at 2,
	// halt votes at 3 with no messages in flight → 4 supersteps.
	if len(stats) > 5 {
		t.Fatalf("took %d supersteps to quiesce", len(stats))
	}
	// Each vertex received one message per superstep 1..2.
	if e.Value(0).(int) != 2 {
		t.Fatalf("value = %v, want 2", e.Value(0))
	}
}

func TestLocalVsRemoteMessageAccounting(t *testing.T) {
	// Two vertices on the same worker exchange local messages; two on
	// different workers exchange remote ones.
	g := graph.NewUndirected(4)
	for i := 0; i < 4; i++ {
		g.AddVertex()
	}
	g.AddEdge(0, 1) // same partition below
	g.AddEdge(2, 3) // split below
	asn := partition.NewAssignment(g.NumSlots(), 2)
	asn.Assign(0, 0)
	asn.Assign(1, 0)
	asn.Assign(2, 0)
	asn.Assign(3, 1)
	e, err := NewEngine(g, asn, &echoProgram{rounds: 1}, Config{Workers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := e.RunSuperstep()
	// Sends at superstep 0: 0↔1 (2 local), 2↔3 (2 remote).
	if st.LocalMsgs != 2 {
		t.Errorf("LocalMsgs = %d, want 2", st.LocalMsgs)
	}
	if st.RemoteMsgs != 2 {
		t.Errorf("RemoteMsgs = %d, want 2", st.RemoteMsgs)
	}
	if st.Time <= 0 {
		t.Error("superstep time must be positive")
	}
}

// TestDeferredMigrationDeliversAllMessages reproduces the paper's Figure 3
// scenario: V2 migrates while V1 keeps sending to it every superstep; with
// the deferred protocol no message may be lost.
func TestDeferredMigrationDeliversAllMessages(t *testing.T) {
	g := pairGraph()
	prog := &echoProgram{rounds: 8}
	asn := partition.NewAssignment(g.NumSlots(), 2)
	asn.Assign(0, 0)
	asn.Assign(1, 1)
	e, err := NewEngine(g, asn, prog, Config{Workers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Migrate vertex 1 to partition 0 at superstep 2's barrier, then back
	// at superstep 5's barrier.
	e.SetRepartitioner(repartFunc(func(v *View) []MigrationRequest {
		switch v.Superstep() {
		case 2:
			return []MigrationRequest{{V: 1, To: 0}}
		case 5:
			return []MigrationRequest{{V: 1, To: 1}}
		}
		return nil
	}))
	e.RunUntilQuiescent(20)
	// Vertex 0 sends to 1 in supersteps 0..8 minus none: rounds=8 means
	// sends at 0..7 (8 messages), likewise 1→0. Every one must arrive.
	if got := e.Value(1).(int); got != 8 {
		t.Fatalf("vertex 1 received %d messages, want 8 (deferred migration lost some)", got)
	}
	if got := e.Value(0).(int); got != 8 {
		t.Fatalf("vertex 0 received %d messages, want 8", got)
	}
	// The migrations really happened.
	completed := 0
	for _, st := range e.History() {
		completed += st.MigrationsCompleted
	}
	if completed != 2 {
		t.Fatalf("completed %d migrations, want 2", completed)
	}
}

type repartFunc func(v *View) []MigrationRequest

func (f repartFunc) Plan(v *View) []MigrationRequest { return f(v) }

func TestMigrationUpdatesAddressingThenHome(t *testing.T) {
	g := pairGraph()
	e := newTestEngine(t, g, 2, &echoProgram{rounds: 10}, Config{Seed: 1})
	target := partition.ID(1 - int(e.Addr().Of(0)))
	e.SetRepartitioner(repartFunc(func(v *View) []MigrationRequest {
		if v.Superstep() == 0 {
			return []MigrationRequest{{V: 0, To: target}}
		}
		return nil
	}))
	st0 := e.RunSuperstep()
	if st0.MigrationsStarted != 1 {
		t.Fatalf("MigrationsStarted = %d, want 1", st0.MigrationsStarted)
	}
	// Addressing updated immediately (notification), home still old.
	if e.Addr().Of(0) != target {
		t.Fatal("addressing must update at the decision barrier")
	}
	if e.home[0] == int32(target) {
		t.Fatal("home must lag one superstep (migrating state)")
	}
	st1 := e.RunSuperstep()
	if st1.MigrationsCompleted != 1 {
		t.Fatalf("MigrationsCompleted = %d, want 1", st1.MigrationsCompleted)
	}
	if e.home[0] != int32(target) {
		t.Fatal("home must update at the following barrier")
	}
}

func TestStreamMutationCreatesAndActivates(t *testing.T) {
	g := pairGraph()
	next := graph.VertexID(g.NumSlots())
	stream := graph.NewSliceStream([]graph.Batch{
		{{Kind: graph.MutAddVertex, U: next}, {Kind: graph.MutAddEdge, U: next, V: 0}},
	})
	e := newTestEngine(t, g, 2, &echoProgram{rounds: 4}, Config{Seed: 1})
	e.SetStream(stream)
	e.RunSuperstep() // applies the batch at the barrier
	if !e.Graph().Has(next) {
		t.Fatal("stream vertex not created")
	}
	if e.Addr().Of(next) == partition.None {
		t.Fatal("stream vertex not placed")
	}
	if e.Value(next) == nil {
		t.Fatal("stream vertex not initialised")
	}
	// It must compute in the next superstep and message its neighbour.
	before := e.Value(0).(int)
	e.RunSuperstep()
	e.RunSuperstep()
	if e.Value(0).(int) <= before {
		t.Fatal("new vertex's messages never reached vertex 0")
	}
}

func TestStreamRemovalRetiresVertex(t *testing.T) {
	g := pairGraph()
	stream := graph.NewSliceStream([]graph.Batch{
		{{Kind: graph.MutRemoveVertex, U: 1}},
	})
	e := newTestEngine(t, g, 2, &echoProgram{rounds: 6}, Config{Seed: 1})
	e.SetStream(stream)
	e.RunSuperstep()
	if e.Graph().Has(1) {
		t.Fatal("vertex 1 should be removed")
	}
	if e.Addr().Of(1) != partition.None {
		t.Fatal("removed vertex still addressed")
	}
	if e.Value(1) != nil {
		t.Fatal("removed vertex still has a value")
	}
	// Messages to the removed vertex are dropped, not delivered; the rest
	// of the computation proceeds without error.
	e.RunSupersteps(3)
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []SuperstepStats {
		g := gen.Cube3D(5)
		asn := partition.Hash(g, 4)
		e, err := NewEngine(g, asn, &echoProgram{rounds: 5}, Config{Workers: 4, Seed: 9, RecordEvery: 1})
		if err != nil {
			t.Fatal(err)
		}
		return e.RunSupersteps(6)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("superstep %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestCheckpointRecoveryRestoresState(t *testing.T) {
	g := pairGraph()
	e := newTestEngine(t, g, 2, &echoProgram{rounds: 20}, Config{Seed: 1, CheckpointEvery: 4})
	e.RunSupersteps(4) // checkpoint taken at superstep counter 4
	valAtCP := e.Value(0).(int)
	superAtCP := e.Superstep()
	e.RunSupersteps(2)
	if e.Value(0).(int) <= valAtCP {
		t.Fatal("test precondition: value should grow between checkpoints")
	}
	e.ScheduleFailure(e.Superstep()) // fail at the next barrier
	st := e.RunSuperstep()
	if !st.Recovered {
		t.Fatal("failure did not trigger recovery")
	}
	if e.Superstep() != superAtCP {
		t.Fatalf("rolled back to superstep %d, want %d", e.Superstep(), superAtCP)
	}
	if got := e.Value(0).(int); got != valAtCP {
		t.Fatalf("value after recovery = %d, want checkpoint value %d", got, valAtCP)
	}
	// Replay must reach quiescence normally.
	if _, done := e.RunUntilQuiescent(40); !done {
		t.Fatal("engine never quiesced after recovery")
	}
}

func TestResetComputationReactivates(t *testing.T) {
	g := pairGraph()
	e := newTestEngine(t, g, 2, &echoProgram{rounds: 1}, Config{Seed: 1})
	if _, done := e.RunUntilQuiescent(10); !done {
		t.Fatal("no quiescence")
	}
	e.ResetComputation()
	if e.Quiescent() {
		t.Fatal("reset must reactivate vertices")
	}
	if e.Value(0).(int) != 0 {
		t.Fatal("reset must reinitialise values")
	}
	if _, done := e.RunUntilQuiescent(10); !done {
		t.Fatal("no quiescence after reset")
	}
}

func TestAggregators(t *testing.T) {
	g := pairGraph()
	prog := &aggProgram{}
	e := newTestEngine(t, g, 2, prog, Config{Seed: 1})
	e.RunSuperstep()
	if got := e.Aggregated("count"); got != 2 {
		t.Fatalf("sum aggregator = %v, want 2", got)
	}
	if got := e.Aggregated("maxid"); got != 1 {
		t.Fatalf("max aggregator = %v, want 1", got)
	}
}

type aggProgram struct{}

func (p *aggProgram) Init(ctx *VertexContext) any { return nil }
func (p *aggProgram) Compute(ctx *VertexContext, msgs []any) {
	ctx.Aggregate("count", 1)
	ctx.AggregateMax("maxid", float64(ctx.ID()))
	ctx.VoteToHalt()
}

func TestCostClockChargesRemoteMore(t *testing.T) {
	// Same topology and program; all-local vs all-remote placement. The
	// remote run must be slower on the cost clock — the effect that makes
	// partitioning matter at all.
	build := func(split bool) float64 {
		g := pairGraph()
		asn := partition.NewAssignment(g.NumSlots(), 2)
		asn.Assign(0, 0)
		if split {
			asn.Assign(1, 1)
		} else {
			asn.Assign(1, 0)
		}
		e, err := NewEngine(g, asn, &echoProgram{rounds: 4}, Config{Workers: 2, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, st := range e.RunSupersteps(5) {
			total += st.Time
		}
		return total
	}
	local, remote := build(false), build(true)
	if remote <= local {
		t.Fatalf("remote placement (%.2f) must cost more than local (%.2f)", remote, local)
	}
}

func TestViewExposesWorkerCosts(t *testing.T) {
	g := pairGraph()
	e := newTestEngine(t, g, 2, &echoProgram{rounds: 3}, Config{Seed: 1})
	var seen []float64
	e.SetRepartitioner(repartFunc(func(v *View) []MigrationRequest {
		seen = append([]float64(nil), v.WorkerCosts()...)
		return nil
	}))
	e.RunSuperstep()
	if len(seen) != 2 {
		t.Fatalf("WorkerCosts length %d, want 2", len(seen))
	}
	positive := false
	for _, c := range seen {
		if c > 0 {
			positive = true
		}
	}
	if !positive {
		t.Fatal("worker costs should be positive after a computing superstep")
	}
}

func TestStreamVertexWithCustomPlacer(t *testing.T) {
	g := pairGraph()
	next := graph.VertexID(g.NumSlots())
	e, err := NewEngine(g, partition.Hash(g, 2), &echoProgram{rounds: 2}, Config{
		Workers: 2,
		Seed:    1,
		Placer:  func(v graph.VertexID, k int) partition.ID { return 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	e.SetStream(graph.NewSliceStream([]graph.Batch{{{Kind: graph.MutAddVertex, U: next}}}))
	e.RunSuperstep()
	if e.Addr().Of(next) != 1 {
		t.Fatalf("custom placer ignored: vertex placed at %d", e.Addr().Of(next))
	}
}

func TestRemovalOfVertexWithPendingMigration(t *testing.T) {
	// Decide a migration for vertex 0, then remove it from the stream at
	// the very barrier where the physical move would complete: the engine
	// must retire the vertex, drop the pending move, and stay consistent.
	g := pairGraph()
	e := newTestEngine(t, g, 2, &echoProgram{rounds: 10}, Config{Seed: 1})
	target := partition.ID(1 - int(e.Addr().Of(0)))
	e.SetRepartitioner(repartFunc(func(v *View) []MigrationRequest {
		if v.Superstep() == 0 {
			return []MigrationRequest{{V: 0, To: target}}
		}
		return nil
	}))
	e.SetStream(graph.NewSliceStream([]graph.Batch{
		nil,                                   // superstep 0: migration decided at this barrier
		{{Kind: graph.MutRemoveVertex, U: 0}}, // superstep 1: removal races the move
	}))
	st0 := e.RunSuperstep()
	if st0.MigrationsStarted != 1 {
		t.Fatalf("MigrationsStarted = %d, want 1", st0.MigrationsStarted)
	}
	e.RunSuperstep() // completes the physical move, then applies the removal
	if e.Graph().Has(0) {
		t.Fatal("vertex 0 must be removed")
	}
	if e.Addr().Of(0) != partition.None {
		t.Fatal("removed vertex still addressed")
	}
	if len(e.pendingHome) != 0 {
		t.Fatalf("pending migrations leaked: %v", e.pendingHome)
	}
	if err := e.Addr().Validate(e.Graph()); err != nil {
		t.Fatal(err)
	}
	// The engine must keep running cleanly afterwards.
	for i := 0; i < 5; i++ {
		e.RunSuperstep()
	}
	if err := e.Addr().Validate(e.Graph()); err != nil {
		t.Fatal(err)
	}
}

func TestViewMutatedVertices(t *testing.T) {
	g := pairGraph()
	next := graph.VertexID(g.NumSlots())
	e := newTestEngine(t, g, 2, &echoProgram{rounds: 4}, Config{Seed: 1})
	e.SetStream(graph.NewSliceStream([]graph.Batch{
		{{Kind: graph.MutAddVertex, U: next}, {Kind: graph.MutAddEdge, U: next, V: 0}},
		nil,
	}))
	var got [][]graph.VertexID
	e.SetRepartitioner(repartFunc(func(v *View) []MigrationRequest {
		got = append(got, v.MutatedVertices())
		return nil
	}))
	e.RunSuperstep()
	e.RunSuperstep()
	if len(got) != 2 {
		t.Fatalf("planned %d times, want 2", len(got))
	}
	seen := map[graph.VertexID]bool{}
	for _, v := range got[0] {
		seen[v] = true
	}
	if !seen[next] || !seen[0] {
		t.Fatalf("batch touched %v, want both %d and 0", got[0], next)
	}
	if got[1] != nil {
		t.Fatalf("empty barrier reported mutations: %v", got[1])
	}
}

func TestAccessorsReturnDefensiveCopies(t *testing.T) {
	g := gen.Cube3D(4)
	e := newTestEngine(t, g, 4, &echoProgram{rounds: 6}, Config{Seed: 1})
	var costsInPlan []float64
	e.SetRepartitioner(repartFunc(func(v *View) []MigrationRequest {
		costsInPlan = v.WorkerCosts()
		return nil
	}))
	e.RunSuperstep()
	e.RunSuperstep()
	if len(costsInPlan) != 4 {
		t.Fatalf("WorkerCosts len = %d, want 4", len(costsInPlan))
	}
	costsInPlan[0] = -12345
	if e.lastCosts[0] == -12345 {
		t.Fatal("WorkerCosts leaked the engine's internal slice")
	}

	hist := e.History()
	if len(hist) != 2 {
		t.Fatalf("History len = %d, want 2", len(hist))
	}
	hist[0].Superstep = -1
	if e.history[0].Superstep == -1 {
		t.Fatal("History leaked the engine's internal slice")
	}
}

func TestStreamSelfLoopStillPlacesVertex(t *testing.T) {
	// Regression: a rejected self-loop edge on a fresh ID materialises a
	// live vertex at the barrier; the engine must still place and
	// initialise it.
	g := pairGraph()
	loop := graph.VertexID(g.NumSlots())
	e := newTestEngine(t, g, 2, &echoProgram{rounds: 2}, Config{Seed: 1})
	e.SetStream(graph.NewSliceStream([]graph.Batch{
		{{Kind: graph.MutAddEdge, U: loop, V: loop}},
	}))
	e.RunSuperstep()
	if !e.Graph().Has(loop) {
		t.Fatal("self-loop endpoint not created")
	}
	if e.Addr().Of(loop) == partition.None {
		t.Fatal("self-loop vertex not placed")
	}
	if e.Value(loop) == nil {
		t.Fatal("self-loop vertex not initialised")
	}
	if err := e.Addr().Validate(e.Graph()); err != nil {
		t.Fatal(err)
	}
}
