package bsp

import (
	"reflect"
	"sort"
	"sync"
	"testing"

	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// noticeProbe records, per superstep, which vertices computed and which of
// them saw a topology-change notice.
type noticeProbe struct {
	mu       sync.Mutex
	computed map[int][]graph.VertexID
	noticed  map[int][]graph.VertexID
}

func newNoticeProbe() *noticeProbe {
	return &noticeProbe{
		computed: make(map[int][]graph.VertexID),
		noticed:  make(map[int][]graph.VertexID),
	}
}

func (p *noticeProbe) Init(ctx *VertexContext) any { return nil }

func (p *noticeProbe) Compute(ctx *VertexContext, msgs []any) {
	p.mu.Lock()
	p.computed[ctx.Superstep()] = append(p.computed[ctx.Superstep()], ctx.ID())
	if ctx.TopologyChanged() {
		p.noticed[ctx.Superstep()] = append(p.noticed[ctx.Superstep()], ctx.ID())
	}
	p.mu.Unlock()
	ctx.VoteToHalt()
}

func (p *noticeProbe) at(m map[int][]graph.VertexID, step int) []graph.VertexID {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := append([]graph.VertexID(nil), m[step]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func ids(vs ...graph.VertexID) []graph.VertexID { return vs }

// TestTopologyChangeNotices pins the notice contract: a vertex touched by
// the batch applied at barrier t computes superstep t+1 with
// TopologyChanged true — including the ex-neighbours of a removed vertex,
// which have no surviving edge back to the cause — and the notice expires
// after exactly one superstep.
func TestTopologyChangeNotices(t *testing.T) {
	g := graph.NewUndirected(4)
	a, b, c, d := g.AddVertex(), g.AddVertex(), g.AddVertex(), g.AddVertex()
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	g.AddEdge(c, d) // path a-b-c-d
	prog := newNoticeProbe()
	e, err := NewEngine(g, partition.Hash(g, 2), prog, Config{Workers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.SetStream(graph.NewSliceStream([]graph.Batch{
		{{Kind: graph.MutRemoveVertex, U: c}},
		{{Kind: graph.MutAddEdge, U: a, V: d}},
	}))

	// Superstep 0: everyone boots, no notices; barrier removes c.
	e.RunSuperstep()
	if got := prog.at(prog.noticed, 0); len(got) != 0 {
		t.Fatalf("superstep 0 saw notices %v, want none", got)
	}

	// Superstep 1: b and d — c's ex-neighbours, with no messages and no
	// surviving edge to the removed vertex — must be woken with a notice.
	e.RunSuperstep()
	if got, want := prog.at(prog.noticed, 1), ids(b, d); !reflect.DeepEqual(got, want) {
		t.Fatalf("superstep 1 notices = %v, want %v", got, want)
	}
	if got, want := prog.at(prog.computed, 1), ids(b, d); !reflect.DeepEqual(got, want) {
		t.Fatalf("superstep 1 computed = %v, want %v", got, want)
	}

	// Superstep 2: the a-d edge add from barrier 1 notifies its endpoints;
	// b's notice from barrier 0 has expired.
	e.RunSuperstep()
	if got, want := prog.at(prog.noticed, 2), ids(a, d); !reflect.DeepEqual(got, want) {
		t.Fatalf("superstep 2 notices = %v, want %v", got, want)
	}

	// Superstep 3: all notices expired, nothing left to do.
	e.RunSuperstep()
	if got := prog.at(prog.noticed, 3); len(got) != 0 {
		t.Fatalf("superstep 3 saw notices %v, want none", got)
	}
	if !e.Quiescent() {
		t.Fatal("engine should be quiescent")
	}
}

// TestVertexContextTopology pins the HasNeighbor and NumVertices context
// accessors against a live mutation.
func TestVertexContextTopology(t *testing.T) {
	g := graph.NewUndirected(3)
	a, b, c := g.AddVertex(), g.AddVertex(), g.AddVertex()
	g.AddEdge(a, b)
	type obs struct {
		hasB, hasC bool
		n          int
	}
	var (
		mu   sync.Mutex
		last obs
	)
	prog := progFuncs{
		init: func(ctx *VertexContext) any { return nil },
		compute: func(ctx *VertexContext, msgs []any) {
			if ctx.ID() == a {
				mu.Lock()
				last = obs{hasB: ctx.HasNeighbor(b), hasC: ctx.HasNeighbor(c), n: ctx.NumVertices()}
				mu.Unlock()
			}
			ctx.VoteToHalt()
		},
	}
	e, err := NewEngine(g, partition.Hash(g, 2), prog, Config{Workers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.SetStream(graph.NewSliceStream([]graph.Batch{
		{{Kind: graph.MutRemoveEdge, U: a, V: b}, {Kind: graph.MutAddEdge, U: a, V: c}},
	}))
	e.RunSuperstep()
	if want := (obs{hasB: true, hasC: false, n: 3}); last != want {
		t.Fatalf("superstep 0 observed %+v, want %+v", last, want)
	}
	e.RunSuperstep()
	if want := (obs{hasB: false, hasC: true, n: 3}); last != want {
		t.Fatalf("superstep 1 observed %+v, want %+v", last, want)
	}
}

// progFuncs adapts two closures into a Program.
type progFuncs struct {
	init    func(ctx *VertexContext) any
	compute func(ctx *VertexContext, msgs []any)
}

func (p progFuncs) Init(ctx *VertexContext) any            { return p.init(ctx) }
func (p progFuncs) Compute(ctx *VertexContext, msgs []any) { p.compute(ctx, msgs) }
