package bsp

import (
	"testing"

	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// fanInProgram has every vertex send 1.0 to vertex 0 each superstep;
// vertex 0 accumulates what it receives. With a sum combiner, each worker
// should emit at most ONE message to vertex 0 per superstep.
type fanInProgram struct {
	combine bool
}

func (p *fanInProgram) Init(ctx *VertexContext) any { return 0.0 }

func (p *fanInProgram) Compute(ctx *VertexContext, msgs []any) {
	if ctx.ID() == 0 {
		total := ctx.Value().(float64)
		for _, m := range msgs {
			total += m.(float64)
		}
		ctx.SetValue(total)
	}
	if ctx.Superstep() == 0 {
		ctx.SendTo(0, 1.0)
	} else {
		ctx.VoteToHalt()
	}
}

// combiningFanIn adds the combiner to fanInProgram.
type combiningFanIn struct{ fanInProgram }

func (p *combiningFanIn) CombineMessages(a, b any) any {
	return a.(float64) + b.(float64)
}

func fanGraph(n int) *graph.Graph {
	g := graph.NewUndirected(n)
	for i := 0; i < n; i++ {
		g.AddVertex()
	}
	return g
}

func TestCombinerReducesMessageCount(t *testing.T) {
	const n, k = 40, 4
	run := func(prog Program) (msgs int, sum float64) {
		g := fanGraph(n)
		e, err := NewEngine(g, partition.Random(g, k, 1), prog, Config{Workers: k, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		sts, _ := e.RunUntilQuiescent(10)
		for _, st := range sts {
			msgs += st.LocalMsgs + st.RemoteMsgs
		}
		return msgs, e.Value(0).(float64)
	}

	plainMsgs, plainSum := run(&fanInProgram{})
	combMsgs, combSum := run(&combiningFanIn{})

	// Same answer: all n contributions of 1.0 arrive either way.
	if plainSum != float64(n) || combSum != float64(n) {
		t.Fatalf("sums: plain %v, combined %v, want %d", plainSum, combSum, n)
	}
	// Without a combiner: one message per vertex (n). With: one per
	// worker (k).
	if plainMsgs != n {
		t.Fatalf("plain messages = %d, want %d", plainMsgs, n)
	}
	if combMsgs != k {
		t.Fatalf("combined messages = %d, want %d (one per worker)", combMsgs, k)
	}
}

func TestCombinerCostReflectsSavings(t *testing.T) {
	const n, k = 40, 4
	run := func(prog Program) float64 {
		g := fanGraph(n)
		e, err := NewEngine(g, partition.Random(g, k, 1), prog, Config{Workers: k, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		sts, _ := e.RunUntilQuiescent(10)
		for _, st := range sts {
			total += st.Time
		}
		return total
	}
	if plain, combined := run(&fanInProgram{}), run(&combiningFanIn{}); combined >= plain {
		t.Fatalf("combiner did not reduce simulated time: %v vs %v", combined, plain)
	}
}
