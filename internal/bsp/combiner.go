package bsp

import "xdgp/internal/graph"

// MessageCombiner is optionally implemented by programs whose messages can
// be merged commutatively and associatively (Pregel's combiners): sums for
// PageRank contributions, minima for shortest paths. When a program
// declares a combiner, the engine folds messages to the same destination
// together at the *sender*, before they are priced by the cost clock — the
// same network saving a real Pregel combiner buys.
type MessageCombiner interface {
	CombineMessages(a, b any) any
}

// combine folds msg into the worker's outbox entry for dst if one already
// exists in the destination worker's buffer, and reports whether it did.
// The per-superstep index map makes the lookup O(1).
func (w *worker) combine(dst graph.VertexID, msg any) bool {
	idx, ok := w.combineIdx[dst]
	if !ok {
		return false
	}
	slot := &w.outbox[idx.worker][idx.pos]
	slot.msg = w.combiner.CombineMessages(slot.msg, msg)
	return true
}

// combineRef locates an outbox entry for in-place combining.
type combineRef struct {
	worker int
	pos    int
}
