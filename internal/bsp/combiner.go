package bsp

import "xdgp/internal/graph"

// MessageCombiner is optionally implemented by programs whose messages can
// be merged commutatively and associatively (Pregel's combiners): sums for
// PageRank contributions, minima for shortest paths. When a program
// declares a combiner, the engine folds messages to the same destination
// together at the *sender*, before they are priced by the cost clock — the
// same network saving a real Pregel combiner buys.
type MessageCombiner interface {
	CombineMessages(a, b any) any
}

// combine folds msg into the worker's outbox entry for the current source
// partition and dst if one already exists, and reports whether it did.
// Messages from different source partitions never fold here — they are
// distinct simulated machines; the engine completes each partition's fold
// across workers at the barrier. The per-superstep index map makes the
// lookup O(1).
func (w *worker) combine(dst graph.VertexID, msg any) bool {
	idx, ok := w.combineIdx[mergeKey{src: w.srcPart, dst: dst}]
	if !ok {
		return false
	}
	slot := &w.outbox[idx.part][idx.pos]
	slot.msg = w.combiner.CombineMessages(slot.msg, msg)
	return true
}

// combineRef locates an outbox entry (destination partition, position) for
// in-place combining.
type combineRef struct {
	part int
	pos  int
}
