package bsp

import (
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// checkpoint is a full synchronous snapshot of engine state, in the Pregel
// style: on worker failure the whole computation rolls back to the last
// checkpoint and replays. (The paper's Twitter experiment shows exactly
// this: "The sudden drop in throughput and superstep time is due to a
// failure in one of the workers that led to the triggering of recovery
// mechanism.")
//
// Limitation, documented: the mutation stream is not rewound on recovery,
// so batches consumed between the checkpoint and the failure are dropped —
// the graph state is internally consistent but momentarily behind the
// stream, which is exactly the throughput dip the paper's Figure 8 shows.
type checkpoint struct {
	superstep   int
	g           *graph.Graph
	addr        *partition.Assignment
	home        []int32
	values      []any
	halted      []bool
	inbox       [][]any
	mutNotice   []bool
	lastMutated []graph.VertexID
	pendingHome map[graph.VertexID]partition.ID
	aggregated  map[string]float64
}

// snapshot captures the engine's complete state.
func (e *Engine) snapshot() {
	cp := &checkpoint{
		superstep:   e.superstep,
		g:           e.g.Clone(),
		addr:        e.addr.Clone(),
		home:        append([]int32(nil), e.home...),
		halted:      append([]bool(nil), e.halted...),
		mutNotice:   append([]bool(nil), e.mutNotice...),
		lastMutated: append([]graph.VertexID(nil), e.lastMutated...),
		values:      make([]any, len(e.values)),
		inbox:       make([][]any, len(e.inbox)),
		pendingHome: make(map[graph.VertexID]partition.ID, len(e.pendingHome)),
		aggregated:  make(map[string]float64, len(e.aggregated)),
	}
	cloner, hasCloner := e.prog.(ValueCloner)
	for i, v := range e.values {
		if hasCloner && v != nil {
			cp.values[i] = cloner.CloneValue(v)
		} else {
			cp.values[i] = v
		}
	}
	for i, box := range e.inbox {
		if len(box) > 0 {
			cp.inbox[i] = append([]any(nil), box...)
		}
	}
	for k, v := range e.pendingHome {
		cp.pendingHome[k] = v
	}
	for k, v := range e.aggregated {
		cp.aggregated[k] = v
	}
	e.cp = cp
}

// restore rolls the engine back to the last checkpoint. The caller must
// have verified a checkpoint exists.
func (e *Engine) restore() {
	cp := e.cp
	e.superstep = cp.superstep
	e.g = cp.g.Clone()
	e.addr = cp.addr.Clone()
	e.home = append([]int32(nil), cp.home...)
	e.halted = append([]bool(nil), cp.halted...)
	e.mutNotice = append([]bool(nil), cp.mutNotice...)
	e.lastMutated = append([]graph.VertexID(nil), cp.lastMutated...)
	e.values = make([]any, len(cp.values))
	cloner, hasCloner := e.prog.(ValueCloner)
	for i, v := range cp.values {
		if hasCloner && v != nil {
			e.values[i] = cloner.CloneValue(v)
		} else {
			e.values[i] = v
		}
	}
	e.inbox = make([][]any, len(cp.inbox))
	for i, box := range cp.inbox {
		if len(box) > 0 {
			e.inbox[i] = append([]any(nil), box...)
		}
	}
	e.pendingHome = make(map[graph.VertexID]partition.ID, len(cp.pendingHome))
	for k, v := range cp.pendingHome {
		e.pendingHome[k] = v
	}
	e.aggregated = make(map[string]float64, len(cp.aggregated))
	for k, v := range cp.aggregated {
		e.aggregated[k] = v
	}
	e.msgsInFlight = 1 // conservatively not quiescent right after recovery
}
