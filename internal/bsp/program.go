// Package bsp implements the Pregel-inspired distributed graph processing
// engine the paper integrates its adaptive partitioner into (Section 3):
// workers execute vertex programs in synchronous supersteps, messages sent
// in superstep t are delivered in t+1, vertices vote to halt, and — unlike
// classic Pregel — the computation runs continuously while vertices and
// edges are injected or removed from a stream.
//
// The engine simulates a cluster in-process. The k partitions are the
// simulated machines: a deterministic cost clock charges each partition
// for its compute, local messages, remote messages and vertex migrations
// so that "time per superstep" can be reported and normalised exactly the
// way the paper does. Compute parallelism is decoupled from k: any number
// of worker goroutines (Config.Workers) sweep the vertex set in contiguous
// slot shards, and the simulated statistics are identical for every worker
// count. Vertex migration follows the paper's deferred protocol: a
// migration decided at the barrier of superstep t redirects new messages
// from t+1 onwards, while the vertex computes one final superstep on its
// old worker and physically moves at the next barrier, so no message is
// ever lost (paper Figure 3).
package bsp

import "xdgp/internal/graph"

// Program is a vertex program in the Pregel model. Implementations must be
// safe for concurrent Compute calls on different vertices (workers run in
// parallel); per-vertex state belongs in the vertex value.
type Program interface {
	// Init returns the initial value for a vertex joining the computation
	// (at load time or on stream injection).
	Init(ctx *VertexContext) any
	// Compute processes the messages delivered to the vertex this
	// superstep. It may read and set the vertex value, send messages and
	// vote to halt.
	Compute(ctx *VertexContext, msgs []any)
}

// CostDeclarer is optionally implemented by programs whose per-vertex
// compute is expensive relative to messaging (e.g. the cardiac FEM
// workload evaluates tens of differential equations per vertex). The
// returned factor scales the cost clock's per-vertex charge.
type CostDeclarer interface {
	CostPerVertex() float64
}

// ValueCloner is optionally implemented by programs whose vertex values
// are mutable reference types; Clone is used when checkpointing so that
// recovery restores unaliased state. Programs with immutable or value-type
// vertex values do not need it.
type ValueCloner interface {
	CloneValue(v any) any
}

// VertexContext is the per-vertex API handed to Program methods. A context
// is only valid for the duration of the call that received it.
type VertexContext struct {
	engine    *Engine
	worker    *worker
	id        graph.VertexID
	superstep int
}

// ID returns the vertex this context addresses.
func (c *VertexContext) ID() graph.VertexID { return c.id }

// Superstep returns the current superstep index (0-based).
func (c *VertexContext) Superstep() int { return c.superstep }

// Value returns the vertex's current value.
func (c *VertexContext) Value() any { return c.engine.values[c.id] }

// SetValue replaces the vertex's value.
func (c *VertexContext) SetValue(v any) { c.engine.values[c.id] = v }

// Degree returns the vertex's out-degree.
func (c *VertexContext) Degree() int { return c.engine.g.Degree(c.id) }

// Neighbors returns the vertex's out-neighbours. For vertices untouched
// since the last arena compaction this is a zero-copy view of the graph's
// CSR arena (the common case — mutations fold in at the superstep
// barrier); recently-mutated vertices materialise a fresh slice. Either
// way the slice must not be mutated or retained; allocation-averse
// programs iterate with NeighborCursor instead.
func (c *VertexContext) Neighbors() []graph.VertexID { return c.engine.g.Neighbors(c.id) }

// NeighborCursor returns an allocation-free iterator over the vertex's
// out-neighbours, the form SendToNeighbors itself uses.
func (c *VertexContext) NeighborCursor() graph.Cursor { return c.engine.g.NeighborCursor(c.id) }

// InNeighbors returns the vertex's in-neighbours (same as Neighbors on
// undirected graphs). Same ownership contract as Neighbors.
func (c *VertexContext) InNeighbors() []graph.VertexID { return c.engine.g.InNeighbors(c.id) }

// SendTo sends a message to the given vertex, for delivery next superstep.
// Messages to vertices that no longer exist at delivery time are dropped,
// matching Pregel semantics for concurrent removals.
func (c *VertexContext) SendTo(dst graph.VertexID, msg any) {
	c.worker.send(c.engine, dst, msg)
}

// SendToNeighbors sends the message to every out-neighbour.
func (c *VertexContext) SendToNeighbors(msg any) {
	for cur := c.engine.g.NeighborCursor(c.id); ; {
		chunk := cur.NextChunk()
		if chunk == nil {
			return
		}
		for _, w := range chunk {
			c.worker.send(c.engine, w, msg)
		}
	}
}

// TopologyChanged reports whether the graph changed in the vertex's
// immediate neighbourhood at the previous barrier: an incident edge was
// added or removed, the vertex itself just arrived from the stream, or a
// neighbour was removed (taking its edges with it). It is the
// program-facing twin of View.MutatedVertices — streaming programs use it
// to trigger targeted repair (re-flood, invalidation) instead of
// recomputing from scratch. The notice is visible for exactly one
// superstep; vertices holding one are always activated for it.
func (c *VertexContext) TopologyChanged() bool { return c.engine.mutNotice[c.id] }

// HasNeighbor reports whether w is currently an out-neighbour of the
// vertex. Streaming programs use it to validate derivations (e.g. a
// shortest-path parent) against the post-mutation topology.
func (c *VertexContext) HasNeighbor(w graph.VertexID) bool {
	return c.engine.g.HasEdge(c.id, w)
}

// NumVertices returns the number of live vertices in the graph — the
// bound incremental SSSP uses to cut count-to-infinity walks short.
func (c *VertexContext) NumVertices() int { return c.engine.g.NumVertices() }

// VoteToHalt deactivates the vertex; it reactivates when a message arrives
// or an incident mutation occurs.
func (c *VertexContext) VoteToHalt() { c.engine.halted[c.id] = true }

// Aggregate adds v into the named float sum aggregator; the merged value
// of superstep t is readable in t+1 via Aggregated.
func (c *VertexContext) Aggregate(name string, v float64) {
	c.worker.aggPartial[name] += v
}

// AggregateMax folds v into the named max aggregator; the merged value of
// superstep t is readable in t+1 via Aggregated.
func (c *VertexContext) AggregateMax(name string, v float64) {
	if cur, ok := c.worker.aggMaxPartial[name]; !ok || v > cur {
		c.worker.aggMaxPartial[name] = v
	}
}

// Aggregated returns the named aggregator's merged value from the previous
// superstep (0 if never aggregated).
func (c *VertexContext) Aggregated(name string) float64 {
	return c.engine.aggregated[name]
}
