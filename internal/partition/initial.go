package partition

import (
	"fmt"
	"math"
	"math/rand"

	"xdgp/internal/graph"
)

// Strategy names an initial partitioning strategy from Section 4.2.1.
type Strategy string

// The four initial strategies the paper compares, plus two further
// streaming heuristics from the paper's reference [35] (Stanton & Kliot,
// KDD'12) available to experiments beyond the paper's set.
const (
	HSH Strategy = "HSH" // hash partitioning, H(v) mod k
	RND Strategy = "RND" // balanced pseudorandom
	DGR Strategy = "DGR" // linear deterministic greedy (Stanton–Kliot)
	MNN Strategy = "MNN" // minimum number of neighbours (Prabhakaran et al.)
	UDG Strategy = "UDG" // unweighted deterministic greedy (Stanton–Kliot)
	EDG Strategy = "EDG" // exponentially-weighted deterministic greedy (Stanton–Kliot)
)

// Strategies returns the paper's four strategies in its plotting order.
func Strategies() []Strategy { return []Strategy{DGR, HSH, MNN, RND} }

// AllStrategies additionally includes the extra Stanton–Kliot heuristics.
func AllStrategies() []Strategy { return []Strategy{DGR, HSH, MNN, RND, UDG, EDG} }

// Initial computes an initial assignment of g over k partitions using the
// named strategy. capFactor bounds partition sizes to capFactor × balanced
// load for the capacity-aware streaming strategies (DGR, MNN); HSH ignores
// capacities, exactly as in practice ("it does not guarantee adaptation"),
// and RND is balanced by construction. seed drives the pseudorandom
// choices (RND shuffling, streaming tie-breaks).
func Initial(strategy Strategy, g *graph.Graph, k int, capFactor float64, seed int64) (*Assignment, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k must be ≥ 1, got %d", k)
	}
	switch strategy {
	case HSH:
		return Hash(g, k), nil
	case RND:
		return Random(g, k, seed), nil
	case DGR:
		return LinearGreedy(g, k, capFactor, seed), nil
	case MNN:
		return MinNeighbors(g, k, capFactor, seed), nil
	case UDG:
		return deterministicGreedy(g, k, capFactor, seed, func(count int, fill float64) float64 {
			return float64(count) // unweighted: capacity only gates, never scores
		}), nil
	case EDG:
		return deterministicGreedy(g, k, capFactor, seed, func(count int, fill float64) float64 {
			return float64(count) * (1 - math.Exp(fill-1)) // exponential penalty
		}), nil
	default:
		return nil, fmt.Errorf("partition: unknown strategy %q", strategy)
	}
}

// Hash assigns every vertex v to partition H(v) mod k. With dense integer
// IDs the multiplicative hash below scatters consecutive IDs uniformly,
// matching the lightweight lookup-free strategy "most commonly used in
// large scale graph processing systems".
func Hash(g *graph.Graph, k int) *Assignment {
	a := NewAssignment(g.NumSlots(), k)
	g.ForEachVertex(func(v graph.VertexID) {
		a.Assign(v, HashVertex(v, k))
	})
	return a
}

// HashVertex is the hash placement rule for a single vertex, shared with
// the dynamic-placement path of the heuristic (new vertices arriving from
// the stream are hash-placed before the algorithm adapts them).
func HashVertex(v graph.VertexID, k int) ID {
	x := uint64(uint32(v))
	// SplitMix64 finaliser — avalanche so consecutive IDs spread evenly.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return ID(x % uint64(k))
}

// Random shuffles the vertices and deals them round-robin, producing the
// balanced pseudorandom partitioning (RND) of the paper.
func Random(g *graph.Graph, k int, seed int64) *Assignment {
	rng := rand.New(rand.NewSource(seed))
	ids := g.Vertices()
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	a := NewAssignment(g.NumSlots(), k)
	for i, v := range ids {
		a.Assign(v, ID(i%k))
	}
	return a
}

// LinearGreedy implements the stream-based "linear deterministic greedy"
// heuristic of Stanton & Kliot (KDD'12): each arriving vertex goes to the
// partition maximising |N(v) ∩ P(i)| · (1 − |P(i)|/C(i)). Ties break on
// the smaller partition, then uniformly at random (seeded).
func LinearGreedy(g *graph.Graph, k int, capFactor float64, seed int64) *Assignment {
	return deterministicGreedy(g, k, capFactor, seed, func(count int, fill float64) float64 {
		return float64(count) * (1 - fill)
	})
}

// deterministicGreedy is the shared streaming skeleton of the Stanton–
// Kliot deterministic-greedy family: vertices arrive in order and each is
// scored against every non-full partition by score(placed-neighbour count,
// fill fraction). Ties break on the smaller partition, then uniformly at
// random (seeded).
func deterministicGreedy(g *graph.Graph, k int, capFactor float64, seed int64, score func(count int, fill float64) float64) *Assignment {
	rng := rand.New(rand.NewSource(seed))
	caps := UniformCapacities(g.NumVertices(), k, capFactor)
	a := NewAssignment(g.NumSlots(), k)
	counts := make([]int, k)
	best := make([]ID, 0, k)
	g.ForEachVertex(func(v graph.VertexID) {
		for i := range counts {
			counts[i] = 0
		}
		for _, w := range g.Neighbors(v) {
			if p := a.Of(w); p != None {
				counts[p]++
			}
		}
		bestScore := -1.0
		best = best[:0]
		for p := 0; p < k; p++ {
			if a.Size(ID(p)) >= caps[p] {
				continue
			}
			s := score(counts[p], float64(a.Size(ID(p)))/float64(caps[p]))
			switch {
			case s > bestScore:
				bestScore = s
				best = append(best[:0], ID(p))
			case s == bestScore:
				best = append(best, ID(p))
			}
		}
		if len(best) == 0 {
			// All partitions full (possible only with capFactor < 1+ε
			// rounding); fall back to least loaded.
			a.Assign(v, leastLoaded(a))
			return
		}
		// Prefer the emptier partition among ties, then random.
		choice := best[0]
		minSize := a.Size(choice)
		tied := []ID{choice}
		for _, p := range best[1:] {
			switch s := a.Size(p); {
			case s < minSize:
				minSize = s
				tied = append(tied[:0], p)
			case s == minSize:
				tied = append(tied, p)
			}
		}
		a.Assign(v, tied[rng.Intn(len(tied))])
	})
	return a
}

// MinNeighbors implements the stream-based "minimum number of neighbours"
// heuristic the paper attributes to Prabhakaran et al. (ATC'12): each
// arriving vertex goes to the candidate partition holding the minimum
// non-zero number of its already-placed neighbours; vertices with no
// placed neighbours go to the least-loaded partition. Capacities cap
// every choice. (See DESIGN.md §7 for this interpretation.)
func MinNeighbors(g *graph.Graph, k int, capFactor float64, seed int64) *Assignment {
	rng := rand.New(rand.NewSource(seed))
	caps := UniformCapacities(g.NumVertices(), k, capFactor)
	a := NewAssignment(g.NumSlots(), k)
	counts := make([]int, k)
	g.ForEachVertex(func(v graph.VertexID) {
		for i := range counts {
			counts[i] = 0
		}
		placed := false
		for _, w := range g.Neighbors(v) {
			if p := a.Of(w); p != None {
				counts[p]++
				placed = true
			}
		}
		var tied []ID
		if placed {
			bestCount := -1
			for p := 0; p < k; p++ {
				if counts[p] == 0 || a.Size(ID(p)) >= caps[p] {
					continue
				}
				switch {
				case bestCount == -1 || counts[p] < bestCount:
					bestCount = counts[p]
					tied = append(tied[:0], ID(p))
				case counts[p] == bestCount:
					tied = append(tied, ID(p))
				}
			}
		}
		if len(tied) == 0 {
			// No placed neighbours (or all candidates full): least loaded
			// below capacity.
			minSize := -1
			for p := 0; p < k; p++ {
				if a.Size(ID(p)) >= caps[p] {
					continue
				}
				switch s := a.Size(ID(p)); {
				case minSize == -1 || s < minSize:
					minSize = s
					tied = append(tied[:0], ID(p))
				case s == minSize:
					tied = append(tied, ID(p))
				}
			}
		}
		if len(tied) == 0 {
			a.Assign(v, leastLoaded(a))
			return
		}
		a.Assign(v, tied[rng.Intn(len(tied))])
	})
	return a
}

func leastLoaded(a *Assignment) ID {
	best := ID(0)
	for p := 1; p < a.K(); p++ {
		if a.Size(ID(p)) < a.Size(best) {
			best = ID(p)
		}
	}
	return best
}
