// Package partition defines the partition-assignment table, capacity
// bookkeeping and quality metrics shared by the sequential heuristic, the
// BSP engine and the experiment harness, together with the four initial
// partitioning strategies the paper evaluates (Section 4.2.1): hash (HSH),
// balanced pseudorandom (RND), linear deterministic greedy (DGR, Stanton &
// Kliot KDD'12) and minimum number of neighbours (MNN, Prabhakaran et al.
// ATC'12).
package partition

import (
	"fmt"
	"math"

	"xdgp/internal/graph"
)

// ID identifies a partition, 0 ≤ ID < K. None marks unassigned vertices.
type ID int32

// None is the assignment of a vertex that has not been placed yet.
const None ID = -1

// Assignment maps every live vertex to a partition and tracks partition
// sizes. It is indexed by dense VertexID, so lookups are array accesses.
// An Assignment is NOT safe for concurrent use: readers and writers must
// share a lock (the daemon's adaptation path does), or readers should
// take an immutable Freeze copy and drop the lock entirely — that is the
// serving plane's approach.
type Assignment struct {
	of    []ID
	sizes []int
	k     int
}

// NewAssignment creates an assignment table for the given number of vertex
// slots and k partitions, with every vertex unassigned.
func NewAssignment(slots, k int) *Assignment {
	a := &Assignment{
		of:    make([]ID, slots),
		sizes: make([]int, k),
		k:     k,
	}
	for i := range a.of {
		a.of[i] = None
	}
	return a
}

// K returns the number of partitions.
func (a *Assignment) K() int { return a.k }

// Slots returns the size of the vertex table the assignment covers.
func (a *Assignment) Slots() int { return len(a.of) }

// Grow extends the table to cover at least slots vertex IDs.
func (a *Assignment) Grow(slots int) {
	for len(a.of) < slots {
		a.of = append(a.of, None)
	}
}

// Of returns the partition of v, or None if v is unassigned or out of
// range.
func (a *Assignment) Of(v graph.VertexID) ID {
	if int(v) >= len(a.of) || v < 0 {
		return None
	}
	return a.of[v]
}

// Assign places v in partition p, updating size counters. Assigning to the
// current partition is a no-op; assigning None removes the vertex.
func (a *Assignment) Assign(v graph.VertexID, p ID) {
	a.Grow(int(v) + 1)
	old := a.of[v]
	if old == p {
		return
	}
	if old != None {
		a.sizes[old]--
	}
	if p != None {
		a.sizes[p]++
	}
	a.of[v] = p
}

// Unassign removes v from its partition.
func (a *Assignment) Unassign(v graph.VertexID) { a.Assign(v, None) }

// Size returns the number of vertices currently in partition p.
func (a *Assignment) Size(p ID) int { return a.sizes[p] }

// Sizes returns a copy of the per-partition sizes.
func (a *Assignment) Sizes() []int { return append([]int(nil), a.sizes...) }

// Assigned returns the total number of assigned vertices.
func (a *Assignment) Assigned() int {
	total := 0
	for _, s := range a.sizes {
		total += s
	}
	return total
}

// Clone returns a deep copy of the assignment.
func (a *Assignment) Clone() *Assignment {
	return &Assignment{
		of:    append([]ID(nil), a.of...),
		sizes: append([]int(nil), a.sizes...),
		k:     a.k,
	}
}

// Table returns a copy of the full slot-indexed assignment table
// (None for unassigned slots). It is the serialization form used by the
// snapshot path; the copy keeps internal state unaliased.
func (a *Assignment) Table() []ID {
	return append([]ID(nil), a.of...)
}

// FromTable reconstructs an assignment from a slot-indexed table as
// produced by Table, re-deriving the per-partition size counters. Entries
// outside [0,k) other than None are rejected.
func FromTable(table []ID, k int) (*Assignment, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k must be ≥ 1, got %d", k)
	}
	a := &Assignment{
		of:    append([]ID(nil), table...),
		sizes: make([]int, k),
		k:     k,
	}
	for slot, p := range a.of {
		if p == None {
			continue
		}
		if p < 0 || int(p) >= k {
			return nil, fmt.Errorf("partition: slot %d has invalid partition %d (k=%d)", slot, p, k)
		}
		a.sizes[p]++
	}
	return a, nil
}

// Validate checks that the assignment is a proper partition of g's live
// vertices: every live vertex assigned to a valid partition, no dead
// vertex assigned, and size counters consistent.
func (a *Assignment) Validate(g *graph.Graph) error {
	counts := make([]int, a.k)
	var err error
	g.ForEachVertex(func(v graph.VertexID) {
		if err != nil {
			return
		}
		p := a.Of(v)
		if p == None || int(p) >= a.k {
			err = fmt.Errorf("vertex %d has invalid partition %d", v, p)
			return
		}
		counts[p]++
	})
	if err != nil {
		return err
	}
	for i := range a.of {
		if a.of[i] != None && !g.Has(graph.VertexID(i)) {
			return fmt.Errorf("dead vertex %d still assigned to %d", i, a.of[i])
		}
	}
	for p, c := range counts {
		if c != a.sizes[p] {
			return fmt.Errorf("partition %d size counter %d != actual %d", p, a.sizes[p], c)
		}
	}
	return nil
}

// CutEdges counts edges whose endpoints are in different partitions (the
// edge-cut set E_c of the paper's Definition 1). Unassigned endpoints
// count as cut, since their messages cannot be local.
func CutEdges(g *graph.Graph, a *Assignment) int {
	cut := 0
	g.ForEachEdge(func(u, v graph.VertexID) {
		if a.Of(u) != a.Of(v) || a.Of(u) == None {
			cut++
		}
	})
	return cut
}

// CutRatio is the paper's quality gold standard: |E_c| normalised to the
// total number of edges. It returns 0 for an empty graph.
func CutRatio(g *graph.Graph, a *Assignment) float64 {
	m := g.NumEdges()
	if m == 0 {
		return 0
	}
	return float64(CutEdges(g, a)) / float64(m)
}

// Imbalance returns max partition size divided by the balanced share
// (assigned/k); 1.0 is perfect balance. It returns 0 when nothing is
// assigned.
func Imbalance(a *Assignment) float64 {
	total := a.Assigned()
	if total == 0 {
		return 0
	}
	maxSize := 0
	for _, s := range a.sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	return float64(maxSize) / (float64(total) / float64(a.k))
}

// UniformCapacities returns the per-partition capacity vector the paper's
// experiments use: factor × the balanced load, rounded up (Figure 4 uses
// "maximum capacity equal to 110% of the balanced load", factor = 1.10).
func UniformCapacities(n, k int, factor float64) []int {
	caps := make([]int, k)
	per := int(math.Ceil(float64(n) / float64(k) * factor))
	for i := range caps {
		caps[i] = per
	}
	return caps
}

// WithinCapacities reports whether every partition size respects caps.
func WithinCapacities(a *Assignment, caps []int) bool {
	for p, s := range a.sizes {
		if p < len(caps) && s > caps[p] {
			return false
		}
	}
	return true
}
