package partition

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"xdgp/internal/graph"
)

// Save persists the assignment in the METIS .part convention extended
// with a header: line 1 is "k slots", then one partition id per vertex
// slot in ID order (-1 for unassigned/dead slots). Systems use it to save
// a converged partitioning and reload it instead of re-adapting from hash
// on restart.
func (a *Assignment) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", a.k, len(a.of)); err != nil {
		return err
	}
	for _, p := range a.of {
		if _, err := fmt.Fprintln(bw, int(p)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load parses an assignment written by Save.
func Load(r io.Reader) (*Assignment, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("partition: read header: %w", err)
		}
		return nil, fmt.Errorf("partition: missing header")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 2 {
		return nil, fmt.Errorf("partition: header %q needs 'k slots'", sc.Text())
	}
	k, err := strconv.Atoi(header[0])
	if err != nil || k < 1 {
		return nil, fmt.Errorf("partition: bad k %q", header[0])
	}
	slots, err := strconv.Atoi(header[1])
	if err != nil || slots < 0 {
		return nil, fmt.Errorf("partition: bad slot count %q", header[1])
	}
	a := NewAssignment(slots, k)
	for i := 0; i < slots; i++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("partition: truncated at slot %d", i)
		}
		p, err := strconv.Atoi(strings.TrimSpace(sc.Text()))
		if err != nil || p < -1 || p >= k {
			return nil, fmt.Errorf("partition: slot %d: bad partition %q", i, sc.Text())
		}
		if p >= 0 {
			a.Assign(graph.VertexID(i), ID(p))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("partition: scan: %w", err)
	}
	return a, nil
}
