package partition

import (
	"testing"
	"testing/quick"

	"xdgp/internal/graph"
)

func pathGraph(n int) *graph.Graph {
	g := graph.NewUndirected(n)
	for i := 0; i < n; i++ {
		g.AddVertex()
	}
	for i := 0; i < n-1; i++ {
		g.AddEdge(graph.VertexID(i), graph.VertexID(i+1))
	}
	return g
}

func TestAssignmentBasics(t *testing.T) {
	a := NewAssignment(4, 2)
	if a.K() != 2 || a.Slots() != 4 {
		t.Fatalf("k=%d slots=%d", a.K(), a.Slots())
	}
	a.Assign(0, 1)
	a.Assign(1, 1)
	a.Assign(2, 0)
	if a.Of(0) != 1 || a.Of(3) != None {
		t.Fatal("lookup mismatch")
	}
	if a.Size(1) != 2 || a.Size(0) != 1 {
		t.Fatalf("sizes = %v", a.Sizes())
	}
	a.Assign(0, 0) // move
	if a.Size(1) != 1 || a.Size(0) != 2 {
		t.Fatalf("after move sizes = %v", a.Sizes())
	}
	a.Unassign(0)
	if a.Of(0) != None || a.Size(0) != 1 {
		t.Fatal("unassign failed")
	}
	if a.Assigned() != 2 {
		t.Fatalf("Assigned = %d, want 2", a.Assigned())
	}
}

func TestAssignmentGrowAndOutOfRange(t *testing.T) {
	a := NewAssignment(1, 2)
	if a.Of(100) != None || a.Of(-1) != None {
		t.Fatal("out-of-range lookups must return None")
	}
	a.Assign(10, 1) // implicit grow
	if a.Of(10) != 1 || a.Slots() < 11 {
		t.Fatal("implicit grow failed")
	}
}

func TestAssignmentCloneIndependence(t *testing.T) {
	a := NewAssignment(3, 2)
	a.Assign(0, 0)
	b := a.Clone()
	b.Assign(0, 1)
	if a.Of(0) != 0 {
		t.Fatal("clone mutation leaked")
	}
}

func TestValidate(t *testing.T) {
	g := pathGraph(3)
	a := NewAssignment(g.NumSlots(), 2)
	if err := a.Validate(g); err == nil {
		t.Fatal("unassigned vertices must fail validation")
	}
	for _, v := range g.Vertices() {
		a.Assign(v, 0)
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
	// A dead-but-assigned vertex must fail.
	g.RemoveVertex(1)
	if err := a.Validate(g); err == nil {
		t.Fatal("dead assigned vertex must fail validation")
	}
}

func TestCutMetrics(t *testing.T) {
	g := pathGraph(4) // edges 0-1, 1-2, 2-3
	a := NewAssignment(g.NumSlots(), 2)
	a.Assign(0, 0)
	a.Assign(1, 0)
	a.Assign(2, 1)
	a.Assign(3, 1)
	if cut := CutEdges(g, a); cut != 1 {
		t.Fatalf("cut = %d, want 1", cut)
	}
	if r := CutRatio(g, a); r != 1.0/3.0 {
		t.Fatalf("ratio = %v, want 1/3", r)
	}
	// All in one partition: zero cut.
	for _, v := range g.Vertices() {
		a.Assign(v, 0)
	}
	if cut := CutEdges(g, a); cut != 0 {
		t.Fatalf("cut = %d, want 0", cut)
	}
	// Unassigned endpoint counts as cut.
	a.Unassign(1)
	if cut := CutEdges(g, a); cut != 2 {
		t.Fatalf("cut = %d, want 2 (edges at unassigned vertex)", cut)
	}
}

func TestCutRatioEmptyGraph(t *testing.T) {
	g := graph.NewUndirected(0)
	a := NewAssignment(0, 2)
	if r := CutRatio(g, a); r != 0 {
		t.Fatalf("ratio of empty graph = %v", r)
	}
}

func TestImbalance(t *testing.T) {
	a := NewAssignment(4, 2)
	if Imbalance(a) != 0 {
		t.Fatal("empty assignment should report zero imbalance")
	}
	a.Assign(0, 0)
	a.Assign(1, 0)
	a.Assign(2, 1)
	a.Assign(3, 1)
	if got := Imbalance(a); got != 1.0 {
		t.Fatalf("balanced imbalance = %v, want 1", got)
	}
	a.Assign(3, 0)
	if got := Imbalance(a); got != 1.5 {
		t.Fatalf("imbalance = %v, want 1.5", got)
	}
}

func TestUniformCapacities(t *testing.T) {
	caps := UniformCapacities(100, 9, 1.10)
	for _, c := range caps {
		if c != 13 { // ceil(100/9 × 1.1) = ceil(12.22) = 13
			t.Fatalf("capacity = %d, want 13", c)
		}
	}
	if len(caps) != 9 {
		t.Fatalf("len = %d", len(caps))
	}
}

func TestUniformCapacitiesAlwaysFitProperty(t *testing.T) {
	// Total capacity must always be able to hold all n vertices.
	f := func(n uint16, k uint8, extra uint8) bool {
		nn := int(n%5000) + 1
		kk := int(k%32) + 1
		factor := 1.0 + float64(extra%50)/100
		caps := UniformCapacities(nn, kk, factor)
		total := 0
		for _, c := range caps {
			total += c
		}
		return total >= nn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWithinCapacities(t *testing.T) {
	a := NewAssignment(3, 2)
	a.Assign(0, 0)
	a.Assign(1, 0)
	a.Assign(2, 1)
	if !WithinCapacities(a, []int{2, 2}) {
		t.Fatal("should be within capacities")
	}
	if WithinCapacities(a, []int{1, 2}) {
		t.Fatal("partition 0 exceeds capacity 1")
	}
}

// TestTableIsACopy guards the snapshot path: mutating the table returned
// by Table must not corrupt the live assignment, and FromTable must not
// retain the caller's slice.
func TestTableIsACopy(t *testing.T) {
	a := NewAssignment(4, 2)
	a.Assign(0, 1)
	a.Assign(1, 0)

	table := a.Table()
	table[0] = 0
	if a.Of(0) != 1 {
		t.Fatal("mutating Table() output changed the assignment")
	}

	b, err := FromTable(table, 2)
	if err != nil {
		t.Fatal(err)
	}
	table[1] = None
	if b.Of(1) != 0 {
		t.Fatal("FromTable retained the caller's slice")
	}
	if b.Size(0) != 2 || b.Size(1) != 0 {
		t.Fatalf("FromTable sizes = %v, want [2 0]", b.Sizes())
	}
}

// TestFromTableValidation rejects malformed tables.
func TestFromTableValidation(t *testing.T) {
	if _, err := FromTable([]ID{0}, 0); err == nil {
		t.Fatal("accepted k=0")
	}
	if _, err := FromTable([]ID{3}, 2); err == nil {
		t.Fatal("accepted out-of-range partition")
	}
	if _, err := FromTable([]ID{-2}, 2); err == nil {
		t.Fatal("accepted negative non-None partition")
	}
	// A round trip preserves everything, including unassigned slots.
	a := NewAssignment(3, 2)
	a.Assign(2, 1)
	b, err := FromTable(a.Table(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 3; v++ {
		if a.Of(graph.VertexID(v)) != b.Of(graph.VertexID(v)) {
			t.Fatalf("slot %d diverged", v)
		}
	}
}
