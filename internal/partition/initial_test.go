package partition

import (
	"testing"
	"testing/quick"

	"xdgp/internal/gen"
	"xdgp/internal/graph"
)

func TestHashVertexRangeProperty(t *testing.T) {
	f := func(v int32, k uint8) bool {
		kk := int(k%64) + 1
		p := HashVertex(graph.VertexID(v), kk)
		return p >= 0 && int(p) < kk
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashVertexDeterministic(t *testing.T) {
	for v := graph.VertexID(0); v < 100; v++ {
		if HashVertex(v, 9) != HashVertex(v, 9) {
			t.Fatal("hash must be deterministic")
		}
	}
}

func TestHashSpreadsUniformly(t *testing.T) {
	g := gen.Cube3D(10) // 1000 vertices
	a := Hash(g, 9)
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
	// With a good hash every partition holds 1000/9 ± 50 %.
	for p, s := range a.Sizes() {
		if s < 55 || s > 170 {
			t.Errorf("partition %d has %d vertices (expected ≈111)", p, s)
		}
	}
}

func TestRandomIsBalanced(t *testing.T) {
	g := gen.Cube3D(10)
	a := Random(g, 9, 1)
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Round-robin deal: sizes differ by at most one.
	min, max := 1<<30, 0
	for _, s := range a.Sizes() {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max-min > 1 {
		t.Fatalf("RND sizes spread %d..%d, want within 1", min, max)
	}
}

func TestLinearGreedyRespectsCapacity(t *testing.T) {
	g := gen.Cube3D(10)
	a := LinearGreedy(g, 9, 1.10, 1)
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
	caps := UniformCapacities(g.NumVertices(), 9, 1.10)
	if !WithinCapacities(a, caps) {
		t.Fatalf("DGR exceeded capacities: sizes=%v caps=%v", a.Sizes(), caps)
	}
}

func TestLinearGreedyBeatsHashOnMesh(t *testing.T) {
	g := gen.Cube3D(12)
	hash := CutRatio(g, Hash(g, 9))
	dgr := CutRatio(g, LinearGreedy(g, 9, 1.10, 1))
	if dgr >= hash {
		t.Fatalf("DGR cut %.3f not better than hash %.3f on a mesh", dgr, hash)
	}
}

func TestMinNeighborsRespectsCapacity(t *testing.T) {
	g := gen.HolmeKim(2000, 5, 0.1, 2)
	a := MinNeighbors(g, 9, 1.10, 1)
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
	caps := UniformCapacities(g.NumVertices(), 9, 1.10)
	if !WithinCapacities(a, caps) {
		t.Fatalf("MNN exceeded capacities: sizes=%v caps=%v", a.Sizes(), caps)
	}
}

func TestInitialDispatch(t *testing.T) {
	g := gen.Cube3D(6)
	for _, s := range Strategies() {
		a, err := Initial(s, g, 9, 1.10, 1)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if err := a.Validate(g); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	if _, err := Initial("XXX", g, 9, 1.10, 1); err == nil {
		t.Fatal("unknown strategy must error")
	}
	if _, err := Initial(HSH, g, 0, 1.10, 1); err == nil {
		t.Fatal("k=0 must error")
	}
}

func TestStrategiesOrder(t *testing.T) {
	want := []Strategy{DGR, HSH, MNN, RND}
	got := Strategies()
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v (paper's plotting order)", got, want)
		}
	}
}

func TestExtraGreedyStrategies(t *testing.T) {
	g := gen.Cube3D(10)
	caps := UniformCapacities(g.NumVertices(), 9, 1.10)
	hash := CutRatio(g, Hash(g, 9))
	for _, s := range []Strategy{UDG, EDG} {
		a, err := Initial(s, g, 9, 1.10, 1)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if err := a.Validate(g); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if !WithinCapacities(a, caps) {
			t.Fatalf("%s exceeded capacities: %v", s, a.Sizes())
		}
		if cut := CutRatio(g, a); cut >= hash {
			t.Errorf("%s cut %.3f not below hash %.3f on a mesh", s, cut, hash)
		}
	}
	if len(AllStrategies()) != 6 {
		t.Fatalf("AllStrategies = %v", AllStrategies())
	}
}

func TestInitialSingletonPartition(t *testing.T) {
	g := gen.Cube3D(4)
	for _, s := range Strategies() {
		a, err := Initial(s, g, 1, 1.10, 1)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if CutEdges(g, a) != 0 {
			t.Fatalf("%s: k=1 must have zero cut", s)
		}
	}
}

func TestInitialOnIsolatedVertices(t *testing.T) {
	g := graph.NewUndirected(0)
	for i := 0; i < 10; i++ {
		g.AddVertex()
	}
	for _, s := range Strategies() {
		a, err := Initial(s, g, 3, 1.10, 1)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if err := a.Validate(g); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
}
