package partition

import (
	"sync"
	"testing"

	"xdgp/internal/graph"
)

func TestFreezeSnapshotsAndDetaches(t *testing.T) {
	a := NewAssignment(6, 3)
	a.Assign(0, 2)
	a.Assign(1, 1)
	a.Assign(4, 0)

	f := a.Freeze()
	if f.K() != 3 || f.Slots() != 6 || f.Assigned() != 3 {
		t.Fatalf("frozen header k=%d slots=%d assigned=%d", f.K(), f.Slots(), f.Assigned())
	}
	for _, tc := range []struct {
		v    graph.VertexID
		want ID
	}{{0, 2}, {1, 1}, {2, None}, {4, 0}, {5, None}} {
		if got := f.Of(tc.v); got != tc.want {
			t.Fatalf("Of(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
	// Out-of-range lookups are None, not a panic.
	if f.Of(-1) != None || f.Of(99) != None {
		t.Fatal("out-of-range lookup not None")
	}

	// Mutating the live assignment afterwards must not reach the frozen
	// copy — that detachment is the whole point of Freeze.
	a.Assign(0, 1)
	a.Assign(2, 0)
	a.Grow(100)
	if f.Of(0) != 2 || f.Of(2) != None || f.Slots() != 6 {
		t.Fatal("frozen table changed after Assign/Grow on the source")
	}
}

// TestFrozenConcurrentReaders drives many readers over one Frozen while
// the source assignment churns; run under -race this pins the
// no-synchronization-needed contract.
func TestFrozenConcurrentReaders(t *testing.T) {
	a := NewAssignment(128, 4)
	for v := graph.VertexID(0); v < 128; v++ {
		a.Assign(v, ID(int(v)%4))
	}
	f := a.Freeze()

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				v := graph.VertexID(i % 130) // includes out-of-range
				got := f.Of(v)
				if int(v) < 128 && got != ID(int(v)%4) {
					t.Errorf("Of(%d) = %d", v, got)
					return
				}
			}
		}()
	}
	// Concurrent writes to the *source* are legal and invisible.
	for i := 0; i < 1000; i++ {
		a.Assign(graph.VertexID(i%128), ID((i+1)%4))
	}
	wg.Wait()
}
