package partition

import (
	"sync"
	"testing"

	"xdgp/internal/graph"
)

func TestFreezeSnapshotsAndDetaches(t *testing.T) {
	a := NewAssignment(6, 3)
	a.Assign(0, 2)
	a.Assign(1, 1)
	a.Assign(4, 0)

	f := a.Freeze()
	if f.K() != 3 || f.Slots() != 6 || f.Assigned() != 3 {
		t.Fatalf("frozen header k=%d slots=%d assigned=%d", f.K(), f.Slots(), f.Assigned())
	}
	for _, tc := range []struct {
		v    graph.VertexID
		want ID
	}{{0, 2}, {1, 1}, {2, None}, {4, 0}, {5, None}} {
		if got := f.Of(tc.v); got != tc.want {
			t.Fatalf("Of(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
	// Out-of-range lookups are None, not a panic.
	if f.Of(-1) != None || f.Of(99) != None {
		t.Fatal("out-of-range lookup not None")
	}

	// Mutating the live assignment afterwards must not reach the frozen
	// copy — that detachment is the whole point of Freeze.
	a.Assign(0, 1)
	a.Assign(2, 0)
	a.Grow(100)
	if f.Of(0) != 2 || f.Of(2) != None || f.Slots() != 6 {
		t.Fatal("frozen table changed after Assign/Grow on the source")
	}
}

// TestFrozenConcurrentReaders drives many readers over one Frozen while
// the source assignment churns; run under -race this pins the
// no-synchronization-needed contract.
func TestFrozenConcurrentReaders(t *testing.T) {
	a := NewAssignment(128, 4)
	for v := graph.VertexID(0); v < 128; v++ {
		a.Assign(v, ID(int(v)%4))
	}
	f := a.Freeze()

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				v := graph.VertexID(i % 130) // includes out-of-range
				got := f.Of(v)
				if int(v) < 128 && got != ID(int(v)%4) {
					t.Errorf("Of(%d) = %d", v, got)
					return
				}
			}
		}()
	}
	// Concurrent writes to the *source* are legal and invisible.
	for i := 0; i < 1000; i++ {
		a.Assign(graph.VertexID(i%128), ID((i+1)%4))
	}
	wg.Wait()
}

func TestFrozenApplyBuildsAndAdvances(t *testing.T) {
	// A replica's life: empty table, bootstrap page, then epoch diffs.
	f0 := NewFrozen(3)
	if f0.K() != 3 || f0.Slots() != 0 || f0.Assigned() != 0 {
		t.Fatalf("empty frozen k=%d slots=%d assigned=%d", f0.K(), f0.Slots(), f0.Assigned())
	}

	f1 := f0.Apply([]Change{{Vertex: 0, To: 2}, {Vertex: 4, To: 0}, {Vertex: 1, To: 1}})
	if f1.Slots() != 5 || f1.Assigned() != 3 {
		t.Fatalf("after bootstrap: slots=%d assigned=%d", f1.Slots(), f1.Assigned())
	}
	for _, tc := range []struct {
		v    graph.VertexID
		want ID
	}{{0, 2}, {1, 1}, {2, None}, {3, None}, {4, 0}} {
		if got := f1.Of(tc.v); got != tc.want {
			t.Fatalf("Of(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}

	// An epoch diff: migrate 0, remove 4, add 7 (growing the table).
	f2 := f1.Apply([]Change{{Vertex: 0, To: 1}, {Vertex: 4, To: None}, {Vertex: 7, To: 2}})
	if f2.Slots() != 8 || f2.Assigned() != 3 {
		t.Fatalf("after diff: slots=%d assigned=%d", f2.Slots(), f2.Assigned())
	}
	if f2.Of(0) != 1 || f2.Of(4) != None || f2.Of(7) != 2 || f2.Of(1) != 1 {
		t.Fatalf("diff application wrong: %d %d %d %d", f2.Of(0), f2.Of(4), f2.Of(7), f2.Of(1))
	}
	// The receiver stayed immutable.
	if f1.Of(0) != 2 || f1.Of(4) != 0 || f1.Slots() != 5 || f1.Assigned() != 3 {
		t.Fatal("Apply mutated its receiver")
	}
	// Later changes to the same vertex win, and a same-vertex
	// remove+re-add keeps the assigned counter right.
	f3 := f2.Apply([]Change{{Vertex: 7, To: None}, {Vertex: 7, To: 0}, {Vertex: 7, To: 1}})
	if f3.Of(7) != 1 || f3.Assigned() != 3 {
		t.Fatalf("in-order apply: Of(7)=%d assigned=%d", f3.Of(7), f3.Assigned())
	}
}

func TestFrozenApplyMatchesFreeze(t *testing.T) {
	// Replaying every change made to an Assignment through Apply must
	// land on the same table Freeze produces — the replication
	// correctness kernel in miniature.
	a := NewAssignment(0, 4)
	var changes []Change
	assign := func(v graph.VertexID, p ID) {
		a.Assign(v, p)
		changes = append(changes, Change{Vertex: v, To: p})
	}
	assign(3, 1)
	assign(0, 0)
	assign(3, 2)    // migration
	assign(9, 3)    // growth
	assign(0, None) // removal
	assign(5, 1)

	got := NewFrozen(4).Apply(changes)
	want := a.Freeze()
	if got.Assigned() != want.Assigned() || got.K() != want.K() {
		t.Fatalf("headers differ: got (k=%d n=%d) want (k=%d n=%d)",
			got.K(), got.Assigned(), want.K(), want.Assigned())
	}
	slots := max(got.Slots(), want.Slots())
	for v := 0; v < slots; v++ {
		if got.Of(graph.VertexID(v)) != want.Of(graph.VertexID(v)) {
			t.Fatalf("vertex %d: replay %d, freeze %d", v, got.Of(graph.VertexID(v)), want.Of(graph.VertexID(v)))
		}
	}
}

func TestFrozenScanPages(t *testing.T) {
	a := NewAssignment(10, 2)
	a.Assign(1, 0)
	a.Assign(4, 1)
	a.Assign(9, 0)
	f := a.Freeze()

	collect := func(from, to int) []Change {
		var got []Change
		f.Scan(from, to, func(v graph.VertexID, p ID) {
			got = append(got, Change{Vertex: v, To: p})
		})
		return got
	}
	// Paging in chunks covers exactly the assigned set, in order.
	var paged []Change
	for c := 0; c < 10; c += 4 {
		paged = append(paged, collect(c, c+4)...)
	}
	want := []Change{{1, 0}, {4, 1}, {9, 0}}
	if len(paged) != len(want) {
		t.Fatalf("paged scan found %d entries, want %d", len(paged), len(want))
	}
	for i := range want {
		if paged[i] != want[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, paged[i], want[i])
		}
	}
	// Out-of-range bounds clamp instead of panicking.
	if got := collect(-5, 99); len(got) != 3 {
		t.Fatalf("clamped scan found %d entries, want 3", len(got))
	}
	if got := collect(8, 3); got != nil {
		t.Fatalf("inverted range scanned %v", got)
	}
}
