package partition

import (
	"bytes"
	"strings"
	"testing"

	"xdgp/internal/gen"
	"xdgp/internal/graph"
)

func TestAssignmentRoundTrip(t *testing.T) {
	g := gen.Cube3D(5)
	a := Hash(g, 4)
	a.Unassign(3) // a hole must survive the round trip
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.K() != a.K() || back.Slots() != a.Slots() {
		t.Fatalf("shape mismatch: k=%d slots=%d", back.K(), back.Slots())
	}
	for i := 0; i < a.Slots(); i++ {
		if back.Of(graph.VertexID(i)) != a.Of(graph.VertexID(i)) {
			t.Fatalf("slot %d: %d != %d", i, back.Of(graph.VertexID(i)), a.Of(graph.VertexID(i)))
		}
	}
	if back.Size(0) != a.Size(0) {
		t.Fatal("size counters not rebuilt")
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		"",            // no header
		"4\n",         // short header
		"0 2\n0\n0\n", // k < 1
		"2 x\n",       // bad slots
		"2 2\n0\n",    // truncated
		"2 2\n0\n9\n", // partition out of range
	}
	for _, in := range cases {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}
