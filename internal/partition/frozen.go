package partition

import "xdgp/internal/graph"

// Frozen is an immutable point-in-time copy of an Assignment: a compact
// slot-indexed vertex→partition table (4 bytes per slot) with no size
// counters and no mutators. Once built it is never written again, so any
// number of goroutines may read it concurrently without synchronization —
// this is the routing-table representation the daemon's serving plane
// publishes through an atomic pointer, one epoch per adaptation step
// (see internal/server).
type Frozen struct {
	of       []ID
	k        int
	assigned int
}

// Freeze copies the current table into a new Frozen. The copy is what
// makes the immutability contract hold: later Assign calls on the
// Assignment cannot reach a published Frozen. Cost is O(slots); callers
// on a hot write path should freeze once per batch of changes, not once
// per change. (The other builders — NewFrozen and Apply — exist for
// replicas reconstructing a table from the wire instead of from a live
// Assignment.)
func (a *Assignment) Freeze() *Frozen {
	f := &Frozen{
		of: append([]ID(nil), a.of...),
		k:  a.k,
	}
	for _, p := range f.of {
		if p != None {
			f.assigned++
		}
	}
	return f
}

// Of returns the partition of v, or None when v is unassigned or outside
// the table. Safe for unsynchronized concurrent use: it is one bounds
// check and one array load on immutable data.
func (f *Frozen) Of(v graph.VertexID) ID {
	if v < 0 || int(v) >= len(f.of) {
		return None
	}
	return f.of[v]
}

// K returns the number of partitions the table was frozen with.
func (f *Frozen) K() int { return f.k }

// Slots returns the size of the frozen vertex table (the exclusive upper
// bound on vertex IDs it can answer for).
func (f *Frozen) Slots() int { return len(f.of) }

// Assigned returns the number of vertices that held a partition at
// freeze time.
func (f *Frozen) Assigned() int { return f.assigned }

// Scan calls fn for every assigned vertex whose ID lies in [from, to),
// in ascending ID order; unassigned slots are skipped. The bounds are
// clamped to the table, so callers may page through a Frozen in
// fixed-width ID chunks without sizing arithmetic — this is how the
// daemon serves replica bootstrap pages (docs/REPLICATION.md).
func (f *Frozen) Scan(from, to int, fn func(v graph.VertexID, p ID)) {
	if from < 0 {
		from = 0
	}
	if to > len(f.of) {
		to = len(f.of)
	}
	for i := from; i < to; i++ {
		if p := f.of[i]; p != None {
			fn(graph.VertexID(i), p)
		}
	}
}

// Change is one vertex's new placement — the unit in which a frozen
// table is built or advanced outside the partitioner: bootstrap pages
// and watch-feed epoch diffs both reduce to []Change. To == None clears
// the vertex (it was removed upstream).
type Change struct {
	// Vertex is the vertex whose placement changes.
	Vertex graph.VertexID
	// To is the vertex's new partition, None for "no longer placed".
	To ID
}

// NewFrozen returns an empty frozen table for k partitions: no slots, no
// assignments. It is the seed state a replica applies bootstrap pages
// onto; the primary's serving plane never needs it (tables there come
// from Assignment.Freeze).
func NewFrozen(k int) *Frozen { return &Frozen{k: k} }

// Apply returns a new Frozen with the changes applied on top of f, in
// order (later changes to the same vertex win). The receiver is not
// modified — published tables stay immutable — and the result's slot
// table grows to cover the highest changed vertex ID. Cost is
// O(slots + changes): replicas pay one table copy per epoch diff, which
// keeps their read path identical to the primary's (one atomic load, one
// array read, no locks).
func (f *Frozen) Apply(changes []Change) *Frozen {
	slots := len(f.of)
	for _, c := range changes {
		if int(c.Vertex) >= slots {
			slots = int(c.Vertex) + 1
		}
	}
	nf := &Frozen{
		of:       make([]ID, slots),
		k:        f.k,
		assigned: f.assigned,
	}
	copy(nf.of, f.of)
	for i := len(f.of); i < slots; i++ {
		nf.of[i] = None
	}
	for _, c := range changes {
		if c.Vertex < 0 {
			continue // defensive: wire-validated inputs never carry these
		}
		old := nf.of[c.Vertex]
		if old != None {
			nf.assigned--
		}
		if c.To != None {
			nf.assigned++
		}
		nf.of[c.Vertex] = c.To
	}
	return nf
}
