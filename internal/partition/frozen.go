package partition

import "xdgp/internal/graph"

// Frozen is an immutable point-in-time copy of an Assignment: a compact
// slot-indexed vertex→partition table (4 bytes per slot) with no size
// counters and no mutators. Once built it is never written again, so any
// number of goroutines may read it concurrently without synchronization —
// this is the routing-table representation the daemon's serving plane
// publishes through an atomic pointer, one epoch per adaptation step
// (see internal/server).
type Frozen struct {
	of       []ID
	k        int
	assigned int
}

// Freeze copies the current table into a new Frozen. It is the only way
// to build one, and the copy is what makes the immutability contract
// hold: later Assign calls on the Assignment cannot reach a published
// Frozen. Cost is O(slots); callers on a hot write path should freeze
// once per batch of changes, not once per change.
func (a *Assignment) Freeze() *Frozen {
	f := &Frozen{
		of: append([]ID(nil), a.of...),
		k:  a.k,
	}
	for _, p := range f.of {
		if p != None {
			f.assigned++
		}
	}
	return f
}

// Of returns the partition of v, or None when v is unassigned or outside
// the table. Safe for unsynchronized concurrent use: it is one bounds
// check and one array load on immutable data.
func (f *Frozen) Of(v graph.VertexID) ID {
	if v < 0 || int(v) >= len(f.of) {
		return None
	}
	return f.of[v]
}

// K returns the number of partitions the table was frozen with.
func (f *Frozen) K() int { return f.k }

// Slots returns the size of the frozen vertex table (the exclusive upper
// bound on vertex IDs it can answer for).
func (f *Frozen) Slots() int { return len(f.of) }

// Assigned returns the number of vertices that held a partition at
// freeze time.
func (f *Frozen) Assigned() int { return f.assigned }
