package partition

import (
	"testing"

	"xdgp/internal/gen"
)

func BenchmarkHashAssign(b *testing.B) {
	g := gen.Cube3D(20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Hash(g, 9)
	}
}

func BenchmarkCutEdges(b *testing.B) {
	g := gen.Cube3D(20)
	a := Hash(g, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CutEdges(g, a)
	}
}

func BenchmarkLinearGreedyStream(b *testing.B) {
	g := gen.HolmeKim(5000, 6, 0.1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LinearGreedy(g, 9, 1.10, 1)
	}
}
