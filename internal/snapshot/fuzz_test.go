package snapshot

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"xdgp/internal/core"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// downgradeToV2 rewrites a v3 snapshot byte stream that carries no heat
// accumulator into the exact v2 layout: version field 2, the
// WorkloadWeight f64 removed from the params block, the heat-presence
// byte removed from the core section, checksum recomputed. The byte
// offsets are part of the pinned on-disk format.
func downgradeToV2(tb testing.TB, v3 []byte) []byte {
	tb.Helper()
	// params block: 7×i64/f64 (56B) + bool + i64 + bool + bool, then the
	// v3 WorkloadWeight f64 — offset 12+56+1+8+1+1 = 79.
	const wwOff = 79
	body := v3[:len(v3)-4]
	// The current writer ends the body with the heat-presence bool (v3+)
	// followed by the cluster-presence bool (v4+); a v2 stream has
	// neither.
	if body[len(body)-1] != 0 || body[len(body)-2] != 0 {
		tb.Fatal("fixture snapshot unexpectedly carries a heat accumulator or cluster identity")
	}
	out := append([]byte(nil), body[:len(body)-2]...)
	binary.LittleEndian.PutUint32(out[8:12], 2)
	out = append(out[:wwOff], out[wwOff+8:]...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(out))
	return append(out, crc[:]...)
}

// FuzzReadSnapshot hammers the snapshot reader with mutated byte
// streams: whatever the input, Read must fail cleanly or return a
// snapshot whose state is internally consistent — consistent enough to
// re-encode. Seeds cover both supported format versions and the v3 heat
// section.
func FuzzReadSnapshot(f *testing.F) {
	seed := func(withHeat bool) []byte {
		cfg := core.DefaultConfig(3, 9)
		cfg.RecordEvery = 0
		if withHeat {
			cfg.WorkloadWeight = 4
			cfg.Incremental = true
		}
		g := graph.NewUndirected(16)
		var b graph.Batch
		for i := 0; i < 40; i++ {
			b = append(b, graph.Mutation{Kind: graph.MutAddEdge,
				U: graph.VertexID(i % 13), V: graph.VertexID((i*7 + 1) % 13)})
		}
		g.Apply(b)
		p, err := core.New(g, partition.Hash(g, cfg.K), cfg)
		if err != nil {
			f.Fatal(err)
		}
		if withHeat {
			p.FoldHeat(0.9, []graph.VertexID{1, 2, 3, 5, 8, 1, 1}, 16)
		}
		for i := 0; i < 4; i++ {
			p.Step()
		}
		snap, err := Capture(p, cfg, Meta{Ticks: 4})
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, snap); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	plain := seed(false)
	f.Add(plain)
	f.Add(seed(true))
	f.Add(downgradeToV2(f, plain))
	f.Add([]byte(Magic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully parsed snapshot must re-encode cleanly; restore
		// may legitimately reject semantic mismatches the codec cannot
		// see (e.g. RNG state length), but must not panic.
		var buf bytes.Buffer
		if err := Write(&buf, s); err != nil {
			t.Fatalf("re-encoding accepted snapshot: %v", err)
		}
		if _, err := s.NewPartitioner(); err != nil {
			t.Logf("restore rejected: %v", err)
		}
	})
}
