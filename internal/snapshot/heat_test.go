package snapshot

import (
	"bytes"
	"math"
	"testing"

	"xdgp/internal/core"
	"xdgp/internal/graph"
)

// heatTrace is a deterministic synthetic read trace: tick t samples a
// small rotating window of vertices, like a crawling hotset.
func heatTrace(tick, slots int) []graph.VertexID {
	base := (tick * 17) % slots
	samples := make([]graph.VertexID, 0, 12)
	for i := 0; i < 12; i++ {
		samples = append(samples, graph.VertexID((base+i*3)%slots))
	}
	return samples
}

// TestSnapshotHeatRoundTrip is the heat-table acceptance test: a
// workload-weighted run checkpointed mid-decay and restored from the
// file must produce byte-identical subsequent assignments — the decayed
// float32 accumulator round-trips bit-exactly through format v3.
func TestSnapshotHeatRoundTrip(t *testing.T) {
	for _, mode := range []struct {
		name        string
		parallelism int
		incremental bool
	}{
		{"sequential-full", 1, false},
		{"parallel2-incremental", 2, true},
	} {
		t.Run(mode.name, func(t *testing.T) {
			const ticks, checkpointAt, steps = 12, 5, 3
			run := func(restart bool) *core.Partitioner {
				cfg := testConfig(mode.parallelism, mode.incremental)
				cfg.WorkloadWeight = 6
				p := newRunningPartitioner(t, cfg)
				var file bytes.Buffer
				for tick := 0; tick < ticks; tick++ {
					p.FoldHeat(0.8, heatTrace(tick, p.Graph().NumSlots()), 64)
					for s := 0; s < steps; s++ {
						p.Step()
					}
					if restart && tick == checkpointAt {
						snap, err := Capture(p, cfg, Meta{Ticks: uint64(tick + 1)})
						if err != nil {
							t.Fatal(err)
						}
						if err := Write(&file, snap); err != nil {
							t.Fatal(err)
						}
						loaded, err := Read(bytes.NewReader(file.Bytes()))
						if err != nil {
							t.Fatal(err)
						}
						if loaded.Params.WorkloadWeight != 6 {
							t.Fatalf("restored WorkloadWeight = %g, want 6", loaded.Params.WorkloadWeight)
						}
						if len(loaded.Core.Heat) == 0 {
							t.Fatal("restored snapshot carries no heat accumulator")
						}
						p, err = loaded.NewPartitioner()
						if err != nil {
							t.Fatal(err)
						}
					}
				}
				return p
			}
			straight, restarted := run(false), run(true)
			sa, ra := straight.Assignment().Table(), restarted.Assignment().Table()
			if len(sa) != len(ra) {
				t.Fatalf("table sizes diverged: %d vs %d", len(sa), len(ra))
			}
			for i := range sa {
				if sa[i] != ra[i] {
					t.Fatalf("assignment diverged at slot %d after heat restore: %d vs %d", i, sa[i], ra[i])
				}
			}
			sh, rh := straight.HeatSnapshot(), restarted.HeatSnapshot()
			if len(sh) != len(rh) {
				t.Fatalf("heat lengths diverged: %d vs %d", len(sh), len(rh))
			}
			for i := range sh {
				if math.Float32bits(sh[i]) != math.Float32bits(rh[i]) {
					t.Fatalf("heat diverged at slot %d: %x vs %x", i, sh[i], rh[i])
				}
			}
		})
	}
}

// TestSnapshotReadsVersion2 pins backward compatibility: a hand-built v2
// byte stream (no WorkloadWeight, no heat section) must load with the
// workload term zeroed.
func TestSnapshotReadsVersion2(t *testing.T) {
	cfg := testConfig(1, false)
	p := newRunningPartitioner(t, cfg)
	for i := 0; i < 5; i++ {
		p.Step()
	}
	snap, err := Capture(p, cfg, Meta{Ticks: 5})
	if err != nil {
		t.Fatal(err)
	}
	var v3 bytes.Buffer
	if err := Write(&v3, snap); err != nil {
		t.Fatal(err)
	}
	v2 := downgradeToV2(t, v3.Bytes())
	loaded, err := Read(bytes.NewReader(v2))
	if err != nil {
		t.Fatalf("reading v2 snapshot: %v", err)
	}
	if loaded.Params.WorkloadWeight != 0 {
		t.Fatalf("v2 snapshot restored WorkloadWeight %g, want 0", loaded.Params.WorkloadWeight)
	}
	if loaded.Core.Heat != nil {
		t.Fatalf("v2 snapshot restored a heat accumulator (%d entries)", len(loaded.Core.Heat))
	}
	if _, err := loaded.NewPartitioner(); err != nil {
		t.Fatalf("restoring v2 snapshot: %v", err)
	}
}
