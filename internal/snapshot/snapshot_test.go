package snapshot

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"path/filepath"
	"testing"

	"xdgp/internal/core"
	"xdgp/internal/gen"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

func testConfig(parallelism int, incremental bool) core.Config {
	cfg := core.DefaultConfig(4, 11)
	cfg.Parallelism = parallelism
	cfg.Incremental = incremental
	cfg.RecordEvery = 0
	return cfg
}

func newRunningPartitioner(t *testing.T, cfg core.Config) *core.Partitioner {
	t.Helper()
	g := gen.HolmeKim(250, 3, 0.1, 5)
	p, err := core.New(g, partition.Hash(g, cfg.K), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func tickBatch(g *graph.Graph, rng *rand.Rand, size int) graph.Batch {
	var b graph.Batch
	slots := g.NumSlots()
	for i := 0; i < size; i++ {
		switch rng.Intn(4) {
		case 0, 1:
			b = append(b, graph.Mutation{Kind: graph.MutAddEdge,
				U: graph.VertexID(rng.Intn(slots)), V: graph.VertexID(rng.Intn(slots + 3))})
		case 2:
			u := graph.VertexID(rng.Intn(slots))
			if nb := g.Neighbors(u); len(nb) > 0 {
				b = append(b, graph.Mutation{Kind: graph.MutRemoveEdge, U: u, V: nb[rng.Intn(len(nb))]})
			}
		case 3:
			b = append(b, graph.Mutation{Kind: graph.MutRemoveVertex, U: graph.VertexID(rng.Intn(slots))})
		}
	}
	return b
}

// TestSnapshotFileRoundTripDeterminism is the acceptance-criterion test
// at the file level: a run checkpointed to disk mid-stream and restored
// from the file finishes with byte-identical assignments to the
// uninterrupted run — sequential and parallel, full-sweep and
// incremental.
func TestSnapshotFileRoundTripDeterminism(t *testing.T) {
	modes := []struct {
		name        string
		parallelism int
		incremental bool
	}{
		{"sequential-full", 1, false},
		{"sequential-incremental", 1, true},
		{"parallel2-incremental", 2, true},
	}
	const ticks, checkpointAt, steps = 10, 4, 3
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "apartd.snap")
			run := func(restart bool) *core.Partitioner {
				cfg := testConfig(mode.parallelism, mode.incremental)
				p := newRunningPartitioner(t, cfg)
				rng := rand.New(rand.NewSource(31))
				for tick := 0; tick < ticks; tick++ {
					p.ApplyBatch(tickBatch(p.Graph(), rng, 18))
					for s := 0; s < steps; s++ {
						p.Step()
					}
					if restart && tick == checkpointAt {
						snap, err := Capture(p, cfg, Meta{Ticks: uint64(tick + 1)})
						if err != nil {
							t.Fatal(err)
						}
						if err := Save(path, snap); err != nil {
							t.Fatal(err)
						}
						loaded, err := Load(path)
						if err != nil {
							t.Fatal(err)
						}
						if loaded.Meta.Ticks != uint64(tick+1) {
							t.Fatalf("meta ticks %d, want %d", loaded.Meta.Ticks, tick+1)
						}
						p, err = loaded.NewPartitioner()
						if err != nil {
							t.Fatal(err)
						}
					}
				}
				return p
			}
			straight := run(false)
			restarted := run(true)
			sa, ra := straight.Assignment().Table(), restarted.Assignment().Table()
			if len(sa) != len(ra) {
				t.Fatalf("table sizes diverged: %d vs %d", len(sa), len(ra))
			}
			for i := range sa {
				if sa[i] != ra[i] {
					t.Fatalf("assignment diverged at slot %d: %d vs %d", i, sa[i], ra[i])
				}
			}
			if straight.Iteration() != restarted.Iteration() {
				t.Fatalf("iterations diverged: %d vs %d", straight.Iteration(), restarted.Iteration())
			}
		})
	}
}

// TestSnapshotMidOverlayCheckpoint pins the storage-layer acceptance
// criterion explicitly: a checkpoint taken while the graph carries a
// non-empty mutation overlay (and arena garbage) must round-trip the
// overlay exactly — the snapshot bytes are reproducible, and the restored
// run replays the remaining stream to byte-identical assignments.
func TestSnapshotMidOverlayCheckpoint(t *testing.T) {
	cfg := testConfig(1, true)
	p := newRunningPartitioner(t, cfg)
	rng := rand.New(rand.NewSource(77))
	p.ApplyBatch(tickBatch(p.Graph(), rng, 40))
	for s := 0; s < 2; s++ {
		p.Step()
	}
	if p.Graph().OverlayMass() == 0 {
		t.Fatal("fixture graph has an empty overlay — the test would be vacuous")
	}
	snap, err := Capture(p, cfg, Meta{Ticks: 1})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := Write(&a, snap); err != nil {
		t.Fatal(err)
	}
	reread, err := Read(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatalf("mid-overlay snapshot failed to read back: %v", err)
	}
	if reread.Graph.OverlayMass() != snap.Graph.OverlayMass() {
		t.Fatalf("overlay mass diverged across the file: %d vs %d",
			snap.Graph.OverlayMass(), reread.Graph.OverlayMass())
	}
	if err := Write(&b, reread); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("mid-overlay snapshot re-encode not byte-identical (%d vs %d bytes)", a.Len(), b.Len())
	}
	// The restored partitioner must track the original step for step.
	q, err := reread.NewPartitioner()
	if err != nil {
		t.Fatal(err)
	}
	rng2 := rand.New(rand.NewSource(99))
	batch := tickBatch(p.Graph(), rng2, 25)
	p.ApplyBatch(batch)
	q.ApplyBatch(batch)
	for s := 0; s < 5; s++ {
		p.Step()
		q.Step()
	}
	pa, qa := p.Assignment().Table(), q.Assignment().Table()
	for i := range pa {
		if pa[i] != qa[i] {
			t.Fatalf("post-restore assignment diverged at slot %d: %d vs %d", i, pa[i], qa[i])
		}
	}
}

// TestSnapshotPreservesParams checks that the restored configuration —
// including the resolved shard count — matches what the snapshot was
// taken under.
func TestSnapshotPreservesParams(t *testing.T) {
	cfg := testConfig(2, true)
	cfg.BalanceEdges = false
	p := newRunningPartitioner(t, cfg)
	p.Step()
	snap, err := Capture(p, cfg, Meta{MutationsIngested: 42, MutationsApplied: 40, CreatedUnix: 1700000000})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Params != snap.Params {
		t.Fatalf("params diverged:\n got %+v\nwant %+v", got.Params, snap.Params)
	}
	if got.Meta != snap.Meta {
		t.Fatalf("meta diverged:\n got %+v\nwant %+v", got.Meta, snap.Meta)
	}
	if got.Params.Parallelism != 2 {
		t.Fatalf("resolved parallelism %d, want 2", got.Params.Parallelism)
	}
	restored, err := got.NewPartitioner()
	if err != nil {
		t.Fatal(err)
	}
	if restored.Parallelism() != 2 {
		t.Fatalf("restored partitioner runs %d shards, want 2", restored.Parallelism())
	}
}

// TestSnapshotDetectsCorruption flips each byte of a serialized snapshot
// in turn and requires Read to fail on every mutant (the CRC trailer
// catches whatever the structural validation does not).
func TestSnapshotDetectsCorruption(t *testing.T) {
	cfg := testConfig(1, true)
	p := newRunningPartitioner(t, cfg)
	p.Step()
	snap, err := Capture(p, cfg, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	stride := len(full)/97 + 1
	for i := 0; i < len(full); i += stride {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x5a
		if _, err := Read(bytes.NewReader(mut)); err == nil {
			t.Fatalf("flipped byte %d of %d read back successfully", i, len(full))
		}
	}
	// Truncations must fail too.
	for _, cut := range []int{0, 7, len(full) / 2, len(full) - 1} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation to %d bytes read back successfully", cut)
		}
	}
}

// TestSnapshotRejectsFutureVersion ensures a version bump fails loudly
// rather than misparsing.
func TestSnapshotRejectsFutureVersion(t *testing.T) {
	cfg := testConfig(1, false)
	p := newRunningPartitioner(t, cfg)
	snap, err := Capture(p, cfg, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	binary.LittleEndian.PutUint32(raw[len(Magic):], Version+1)
	// Re-stamp the checksum so only the version differs.
	body := raw[:len(raw)-4]
	binary.LittleEndian.PutUint32(raw[len(raw)-4:], crc32.ChecksumIEEE(body))
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Fatal("future version read back successfully")
	}
}

// TestSaveIsAtomic verifies that a Save over an existing snapshot either
// keeps the old file or installs the new one — and that the temp file is
// cleaned up.
func TestSaveIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "apartd.snap")
	cfg := testConfig(1, false)
	p := newRunningPartitioner(t, cfg)
	snap, err := Capture(p, cfg, Meta{Ticks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(path, snap); err != nil {
		t.Fatal(err)
	}
	snap.Meta.Ticks = 2
	if err := Save(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.Ticks != 2 {
		t.Fatalf("loaded ticks %d, want 2", got.Meta.Ticks)
	}
	leftovers, err := filepath.Glob(filepath.Join(dir, "*.tmp*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Fatalf("temp files left behind: %v", leftovers)
	}
}

// TestSnapshotClusterIdentityRoundtrip pins the v4 cluster section:
// present identities survive a write/read cycle byte-exactly, absent
// ones stay absent, and implausible geometry is rejected at decode.
func TestSnapshotClusterIdentityRoundtrip(t *testing.T) {
	cfg := testConfig(3, true)
	p := newRunningPartitioner(t, cfg)
	for i := 0; i < 3; i++ {
		p.Step()
	}
	snap, err := Capture(p, cfg, Meta{Ticks: 3})
	if err != nil {
		t.Fatal(err)
	}

	var plain bytes.Buffer
	if err := Write(&plain, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(plain.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Cluster != nil {
		t.Fatalf("single-process snapshot restored cluster identity %+v", got.Cluster)
	}

	snap.Cluster = &ClusterIdentity{ShardID: 1, NumShards: 3, RoundsCompleted: 4242}
	var clustered bytes.Buffer
	if err := Write(&clustered, snap); err != nil {
		t.Fatal(err)
	}
	got, err = Read(bytes.NewReader(clustered.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Cluster == nil || *got.Cluster != *snap.Cluster {
		t.Fatalf("cluster identity roundtrip: %+v, want %+v", got.Cluster, snap.Cluster)
	}

	snap.Cluster = &ClusterIdentity{ShardID: 5, NumShards: 2}
	var bad bytes.Buffer
	if err := Write(&bad, snap); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(bad.Bytes())); err == nil {
		t.Fatal("implausible cluster identity accepted")
	}
}
