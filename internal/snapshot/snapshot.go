// Package snapshot implements the versioned binary checkpoint format of
// the streaming partition daemon (cmd/apartd): a single file capturing
// the complete partitioner state — graph topology (including slot layout
// and free-list order), partition assignment, algorithm parameters,
// convergence bookkeeping, active-set scheduler state and RNG positions —
// so that a restarted daemon resumes deterministically mid-stream.
//
// Format (little-endian throughout):
//
//	[8]byte  magic "XDGPSNAP"
//	u32      version (currently 3)
//	params   fixed-width algorithm parameters (see Params)
//	meta     daemon counters (see Meta)
//	u64 len + graph payload      (graph.EncodeBinary)
//	i32 k, u32 slots, slots×i32  assignment table (partition.None = -1)
//	core     counters, serialized PCG states, optional active-set state,
//	         optional heat accumulator (v3+)
//	u32      CRC-32 (IEEE) of every preceding byte
//
// The trailing checksum makes torn or bit-rotted files fail loudly on
// Load; Save writes to a temporary file in the target directory and
// renames it into place, so a crash mid-checkpoint never clobbers the
// previous good snapshot.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"xdgp/internal/activeset"
	"xdgp/internal/core"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// Magic identifies a snapshot file; Version is the current format
// revision. Readers accept the current version and v2 (a v2 file simply
// has no workload term: WorkloadWeight 0, no heat accumulator), but
// reject v1: those checkpoints (pre-CSR-arena graph payload) are NOT
// restorable — drain v1 daemons and replay their streams when upgrading
// across the storage change.
const (
	Magic   = "XDGPSNAP"
	Version = 4 // v4: adds the optional cluster-identity section
	// minReadVersion is the oldest version Read still understands.
	minReadVersion = 2
)

// maxSectionBytes bounds any length-prefixed section a reader will
// allocate for, so a corrupt header cannot request gigabytes.
const maxSectionBytes = 1 << 31

// Params are the algorithm parameters a snapshot was taken under. They
// mirror core.Config minus the non-serializable Placer hook;
// Parallelism is the *resolved* shard count (never 0), so a snapshot
// taken on an 8-core host restores with 8 shards — and therefore
// byte-identical random streams — regardless of the restoring host.
type Params struct {
	K                 int
	CapacityFactor    float64
	S                 float64
	ConvergenceWindow int
	MaxIterations     int
	Seed              int64
	Parallelism       int
	Incremental       bool
	RecordEvery       int
	BalanceEdges      bool
	DisableQuotas     bool
	// WorkloadWeight is the workload term's strength (core.Config); 0 in
	// every snapshot written before format v3.
	WorkloadWeight float64
}

// ParamsOf derives the serializable parameters from a live partitioner's
// configuration, resolving Parallelism to the running shard count.
func ParamsOf(cfg core.Config, resolvedParallelism int) Params {
	return Params{
		K:                 cfg.K,
		CapacityFactor:    cfg.CapacityFactor,
		S:                 cfg.S,
		ConvergenceWindow: cfg.ConvergenceWindow,
		MaxIterations:     cfg.MaxIterations,
		Seed:              cfg.Seed,
		Parallelism:       resolvedParallelism,
		Incremental:       cfg.Incremental,
		RecordEvery:       cfg.RecordEvery,
		BalanceEdges:      cfg.BalanceEdges,
		DisableQuotas:     cfg.DisableQuotas,
		WorkloadWeight:    cfg.WorkloadWeight,
	}
}

// Config reconstructs the core configuration the snapshot was taken
// under. Placer is nil: the daemon's hash-with-fallback default, which is
// the only placement a snapshot can faithfully resume.
func (p Params) Config() core.Config {
	return core.Config{
		K:                 p.K,
		CapacityFactor:    p.CapacityFactor,
		S:                 p.S,
		ConvergenceWindow: p.ConvergenceWindow,
		MaxIterations:     p.MaxIterations,
		Seed:              p.Seed,
		Parallelism:       p.Parallelism,
		Incremental:       p.Incremental,
		RecordEvery:       p.RecordEvery,
		BalanceEdges:      p.BalanceEdges,
		DisableQuotas:     p.DisableQuotas,
		WorkloadWeight:    p.WorkloadWeight,
	}
}

// Meta carries the daemon's stream-position counters, so a restarted
// daemon reports cumulative totals and operators can correlate a
// snapshot with the stream offset it covers.
type Meta struct {
	// Ticks is the number of coalescing ticks processed.
	Ticks uint64
	// MutationsIngested counts mutations accepted over HTTP.
	MutationsIngested uint64
	// MutationsApplied counts mutations that changed the graph.
	MutationsApplied uint64
	// CreatedUnix is the checkpoint wall-clock time (seconds); zero when
	// unknown. Informational only — restore logic never reads it.
	CreatedUnix int64
}

// Snapshot is the in-memory form of a checkpoint. Its fields are deep
// copies owned exclusively by the snapshot (nothing aliases live
// partitioner state), so a captured snapshot may be written to disk from
// another goroutine while adaptation resumes — but a Snapshot itself is
// not synchronized: hand it off, don't share it.
type Snapshot struct {
	Params     Params
	Meta       Meta
	Graph      *graph.Graph
	Assignment *partition.Assignment
	Core       core.State
	// Cluster records which cluster shard took the checkpoint and how
	// many exchange rounds it had applied; nil for single-process
	// daemons (and for every pre-v4 snapshot).
	Cluster *ClusterIdentity
}

// ClusterIdentity pins a checkpoint to one shard of a cluster: a
// restore must resume as the same shard of the same geometry, and the
// round count is the exchange watermark the restored replica replays
// from. Restoring a shard's checkpoint into a different shard slot
// would replay another shard's RNG responsibilities — refused at the
// server layer.
type ClusterIdentity struct {
	// ShardID is the checkpointing process's shard index.
	ShardID uint32
	// NumShards is the cluster size the checkpoint was taken under.
	NumShards uint32
	// RoundsCompleted is the number of exchange rounds applied before
	// the capture; rejoin replays journal rounds above it.
	RoundsCompleted uint64
}

// Capture assembles a snapshot from a live partitioner. The graph and
// assignment are deep-copied (Clone/Table), so the returned snapshot is
// immutable with respect to further partitioner progress; serialization
// happens only in Write, keeping Capture cheap — callers typically hold
// a lock that pauses adaptation while it runs. The caller must not run
// Step/ApplyBatch concurrently.
func Capture(p *core.Partitioner, cfg core.Config, meta Meta) (*Snapshot, error) {
	asn, err := partition.FromTable(p.Assignment().Table(), cfg.K)
	if err != nil {
		return nil, fmt.Errorf("snapshot: copy assignment: %w", err)
	}
	return &Snapshot{
		Params:     ParamsOf(cfg, p.Parallelism()),
		Meta:       meta,
		Graph:      p.Graph().Clone(),
		Assignment: asn,
		Core:       p.ExportState(),
	}, nil
}

// NewPartitioner restores a live partitioner from the snapshot. The
// snapshot's graph and assignment are adopted by the partitioner (call
// Read again for an independent copy).
func (s *Snapshot) NewPartitioner() (*core.Partitioner, error) {
	return core.Restore(s.Graph, s.Assignment, s.Params.Config(), s.Core)
}

// Write serializes the snapshot to w in the versioned binary format.
func Write(w io.Writer, s *Snapshot) error {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	putU32(&buf, Version)

	// Params.
	putI64(&buf, int64(s.Params.K))
	putF64(&buf, s.Params.CapacityFactor)
	putF64(&buf, s.Params.S)
	putI64(&buf, int64(s.Params.ConvergenceWindow))
	putI64(&buf, int64(s.Params.MaxIterations))
	putI64(&buf, s.Params.Seed)
	putI64(&buf, int64(s.Params.Parallelism))
	putBool(&buf, s.Params.Incremental)
	putI64(&buf, int64(s.Params.RecordEvery))
	putBool(&buf, s.Params.BalanceEdges)
	putBool(&buf, s.Params.DisableQuotas)
	putF64(&buf, s.Params.WorkloadWeight)

	// Meta.
	putU64(&buf, s.Meta.Ticks)
	putU64(&buf, s.Meta.MutationsIngested)
	putU64(&buf, s.Meta.MutationsApplied)
	putI64(&buf, s.Meta.CreatedUnix)

	// Graph, length-prefixed.
	var gbuf bytes.Buffer
	if err := s.Graph.EncodeBinary(&gbuf); err != nil {
		return fmt.Errorf("snapshot: encode graph: %w", err)
	}
	putU64(&buf, uint64(gbuf.Len()))
	buf.Write(gbuf.Bytes())

	// Assignment.
	table := s.Assignment.Table()
	putI64(&buf, int64(s.Assignment.K()))
	putU32(&buf, uint32(len(table)))
	for _, p := range table {
		putU32(&buf, uint32(int32(p)))
	}

	// Core state.
	putI64(&buf, int64(s.Core.Iteration))
	putI64(&buf, int64(s.Core.Quiet))
	putI64(&buf, int64(s.Core.LastMigration))
	putBytes(&buf, s.Core.RNG)
	putU32(&buf, uint32(len(s.Core.ShardRNGs)))
	for _, b := range s.Core.ShardRNGs {
		putBytes(&buf, b)
	}
	putBool(&buf, s.Core.Active != nil)
	if s.Core.Active != nil {
		putVertexList(&buf, s.Core.Active.Frontier)
		putU32(&buf, uint32(len(s.Core.Active.Parked)))
		for _, list := range s.Core.Active.Parked {
			putVertexList(&buf, list)
		}
	}
	// Heat accumulator (v3): mid-decay per-slot read heat, so a restored
	// workload-weighted run continues byte-identically.
	putBool(&buf, s.Core.Heat != nil)
	if s.Core.Heat != nil {
		putU32(&buf, uint32(len(s.Core.Heat)))
		for _, h := range s.Core.Heat {
			putU32(&buf, math.Float32bits(h))
		}
	}

	// Cluster identity (v4+).
	putBool(&buf, s.Cluster != nil)
	if s.Cluster != nil {
		putU32(&buf, s.Cluster.ShardID)
		putU32(&buf, s.Cluster.NumShards)
		putU64(&buf, s.Cluster.RoundsCompleted)
	}

	putU32(&buf, crc32.ChecksumIEEE(buf.Bytes()))
	_, err := w.Write(buf.Bytes())
	return err
}

// Read parses a snapshot previously produced by Write, verifying the
// magic, version and checksum before interpreting any content.
func Read(r io.Reader) (*Snapshot, error) {
	raw, err := io.ReadAll(io.LimitReader(r, maxSectionBytes))
	if err != nil {
		return nil, fmt.Errorf("snapshot: read: %w", err)
	}
	if len(raw) < len(Magic)+8 {
		return nil, fmt.Errorf("snapshot: file too short (%d bytes)", len(raw))
	}
	if string(raw[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("snapshot: bad magic %q", raw[:len(Magic)])
	}
	body, sum := raw[:len(raw)-4], binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("snapshot: checksum mismatch (file %08x, computed %08x) — truncated or corrupt", sum, got)
	}
	d := &decoder{buf: body[len(Magic):]}
	version := d.u32()
	if version < minReadVersion || version > Version {
		return nil, fmt.Errorf("snapshot: unsupported version %d (supported: %d–%d)", version, minReadVersion, Version)
	}

	var s Snapshot
	s.Params.K = int(d.i64())
	s.Params.CapacityFactor = d.f64()
	s.Params.S = d.f64()
	s.Params.ConvergenceWindow = int(d.i64())
	s.Params.MaxIterations = int(d.i64())
	s.Params.Seed = d.i64()
	s.Params.Parallelism = int(d.i64())
	s.Params.Incremental = d.bool()
	s.Params.RecordEvery = int(d.i64())
	s.Params.BalanceEdges = d.bool()
	s.Params.DisableQuotas = d.bool()
	if version >= 3 {
		s.Params.WorkloadWeight = d.f64()
	}

	s.Meta.Ticks = d.u64()
	s.Meta.MutationsIngested = d.u64()
	s.Meta.MutationsApplied = d.u64()
	s.Meta.CreatedUnix = d.i64()

	glen := d.u64()
	if d.err == nil && glen > uint64(len(d.buf)) {
		d.err = fmt.Errorf("graph section claims %d bytes, %d remain", glen, len(d.buf))
	}
	if d.err != nil {
		return nil, fmt.Errorf("snapshot: %w", d.err)
	}
	g, err := graph.DecodeGraph(bytes.NewReader(d.buf[:glen]))
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	d.buf = d.buf[glen:]
	s.Graph = g

	k := int(d.i64())
	slots := d.u32()
	if d.err == nil && int(slots) != g.NumSlots() {
		d.err = fmt.Errorf("assignment covers %d slots, graph has %d", slots, g.NumSlots())
	}
	table := make([]partition.ID, 0, slots)
	for i := uint32(0); i < slots && d.err == nil; i++ {
		table = append(table, partition.ID(int32(d.u32())))
	}
	if d.err != nil {
		return nil, fmt.Errorf("snapshot: %w", d.err)
	}
	asn, err := partition.FromTable(table, k)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	s.Assignment = asn

	s.Core.Iteration = int(d.i64())
	s.Core.Quiet = int(d.i64())
	s.Core.LastMigration = int(d.i64())
	s.Core.RNG = d.bytes()
	nShards := d.u32()
	if d.err == nil && nShards > 1<<16 {
		d.err = fmt.Errorf("implausible shard count %d", nShards)
	}
	for i := uint32(0); i < nShards && d.err == nil; i++ {
		s.Core.ShardRNGs = append(s.Core.ShardRNGs, d.bytes())
	}
	if d.bool() {
		var st activeset.State
		st.Frontier = d.vertexList()
		nPark := d.u32()
		if d.err == nil && int(nPark) != k {
			d.err = fmt.Errorf("active-set state has %d park lists, k=%d", nPark, k)
		}
		for j := uint32(0); j < nPark && d.err == nil; j++ {
			st.Parked = append(st.Parked, d.vertexList())
		}
		s.Core.Active = &st
	}
	if version >= 3 && d.bool() {
		nHeat := d.u32()
		if d.err == nil && uint64(nHeat)*4 > uint64(len(d.buf)) {
			d.err = fmt.Errorf("heat section claims %d entries, %d bytes remain", nHeat, len(d.buf))
		}
		if d.err == nil {
			s.Core.Heat = make([]float32, nHeat)
			for i := range s.Core.Heat {
				s.Core.Heat[i] = math.Float32frombits(d.u32())
			}
		}
	}
	if version >= 4 && d.bool() {
		ci := ClusterIdentity{ShardID: d.u32(), NumShards: d.u32(), RoundsCompleted: d.u64()}
		if d.err == nil && (ci.NumShards < 2 || ci.ShardID >= ci.NumShards) {
			d.err = fmt.Errorf("implausible cluster identity: shard %d of %d", ci.ShardID, ci.NumShards)
		}
		s.Cluster = &ci
	}
	if d.err != nil {
		return nil, fmt.Errorf("snapshot: %w", d.err)
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("snapshot: %d trailing bytes after core state", len(d.buf))
	}
	return &s, nil
}

// Save atomically writes the snapshot to path: the bytes land in a
// temporary file in the same directory, are fsynced, and replace path in
// one rename. A concurrent crash leaves either the old snapshot or the
// new one, never a torn file.
func Save(path string, s *Snapshot) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if err := Write(tmp, s); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: write %s: %w", tmp.Name(), err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapshot: close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// Load reads and validates the snapshot at path.
func Load(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	s, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("snapshot: load %s: %w", path, err)
	}
	return s, nil
}

// decoder walks a byte slice with sticky-error semantics: after the
// first failure every accessor returns zero values.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf) < n {
		d.err = io.ErrUnexpectedEOF
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) i64() int64 { return int64(d.u64()) }

func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) bool() bool {
	b := d.take(1)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		d.err = fmt.Errorf("invalid boolean byte %d", b[0])
		return false
	}
}

func (d *decoder) bytes() []byte {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if uint64(n) > uint64(len(d.buf)) {
		d.err = fmt.Errorf("byte string claims %d bytes, %d remain", n, len(d.buf))
		return nil
	}
	return append([]byte(nil), d.take(int(n))...)
}

func (d *decoder) vertexList() []graph.VertexID {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if uint64(n)*4 > uint64(len(d.buf)) {
		d.err = fmt.Errorf("vertex list claims %d entries, %d bytes remain", n, len(d.buf))
		return nil
	}
	list := make([]graph.VertexID, n)
	for i := range list {
		list[i] = graph.VertexID(int32(d.u32()))
	}
	return list
}

func putU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

func putU64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}

func putI64(buf *bytes.Buffer, v int64) { putU64(buf, uint64(v)) }

func putF64(buf *bytes.Buffer, v float64) { putU64(buf, math.Float64bits(v)) }

func putBool(buf *bytes.Buffer, v bool) {
	if v {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
}

func putBytes(buf *bytes.Buffer, b []byte) {
	putU32(buf, uint32(len(b)))
	buf.Write(b)
}

func putVertexList(buf *bytes.Buffer, list []graph.VertexID) {
	putU32(buf, uint32(len(list)))
	for _, v := range list {
		putU32(buf, uint32(int32(v)))
	}
}
