package server

import (
	"bufio"
	"bytes"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"xdgp/internal/graph"
	"xdgp/internal/snapshot"
)

// startBinary serves the binary ingest plane on an ephemeral port and
// returns its address.
func startBinary(t *testing.T, s *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.ServeBinary(ln) //nolint:errcheck // exits on listener close
	t.Cleanup(func() {
		ln.Close()
		s.CloseBinary()
	})
	return ln.Addr().String()
}

// binaryClient is a minimal synchronous producer: write one batch frame,
// read the reply frame.
type binaryClient struct {
	conn net.Conn
	br   *bufio.Reader
}

func dialBinary(t *testing.T, addr string) *binaryClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &binaryClient{conn: conn, br: bufio.NewReader(conn)}
}

func (c *binaryClient) send(t *testing.T, b graph.Batch) graph.Frame {
	t.Helper()
	if err := graph.WriteBatchFrame(c.conn, b); err != nil {
		t.Fatal(err)
	}
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	f, err := graph.ReadFrame(c.br)
	if err != nil {
		t.Fatalf("read reply: %v", err)
	}
	return f
}

func TestBinaryIngestEndToEnd(t *testing.T) {
	s := testServer(t, nil)
	addr := startBinary(t, s)
	c := dialBinary(t, addr)

	// Two frames on one persistent connection; per-frame ACKs carry the
	// cumulative queue depth.
	f := c.send(t, ringBatch(40))
	if f.Type != graph.FrameAck || f.Ack.Accepted != 40 || f.Ack.Queued != 40 {
		t.Fatalf("first ack %+v", f)
	}
	f = c.send(t, graph.Batch{{Kind: graph.MutAddEdge, U: 0, V: 20}})
	if f.Type != graph.FrameAck || f.Ack.Accepted != 1 || f.Ack.Queued != 41 {
		t.Fatalf("second ack %+v", f)
	}

	res := s.TickNow()
	if res.BatchSize != 41 || res.Applied == 0 {
		t.Fatalf("tick %+v, want 41 coalesced", res)
	}
	if _, ok := s.Placement(0); !ok {
		t.Fatal("vertex 0 not placed after binary ingest + tick")
	}
	st := s.Stats()
	if st.Ingested != 41 || st.Vertices != 40 {
		t.Fatalf("stats %+v", st)
	}
	if got := s.binaryFrames.Load(); got != 2 {
		t.Fatalf("binaryFrames = %d, want 2", got)
	}
}

func TestBinaryMalformedFrameNaksAndCloses(t *testing.T) {
	s := testServer(t, nil)
	addr := startBinary(t, s)
	c := dialBinary(t, addr)

	if _, err := c.conn.Write([]byte{0x77, 0x01, 0, 0, 0, 0}); err != nil { // bad version
		t.Fatal(err)
	}
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	f, err := graph.ReadFrame(c.br)
	if err != nil {
		t.Fatalf("expected a malformed NAK, got read error %v", err)
	}
	if f.Type != graph.FrameNak || f.Nak.Code != graph.NakMalformed {
		t.Fatalf("reply %+v, want malformed NAK", f)
	}
	// The server closes the connection after a protocol error.
	if _, err := graph.ReadFrame(c.br); err == nil {
		t.Fatal("connection still open after malformed frame")
	}
	if n, _ := s.PendingMutations(); n != 0 {
		t.Fatalf("%d mutations leaked from a malformed frame", n)
	}
}

// TestBinaryBackpressureNak pins the bounded-queue contract on the
// binary plane: a producer outrunning the tick drain gets a retryable
// NAK with a retry hint, nothing is enqueued past the cap, and the
// same batch succeeds once the queue drains.
func TestBinaryBackpressureNak(t *testing.T) {
	s := testServer(t, func(c *Config) { c.MaxPending = 100 })
	addr := startBinary(t, s)
	c := dialBinary(t, addr)

	if f := c.send(t, ringBatch(80)); f.Type != graph.FrameAck {
		t.Fatalf("first frame %+v, want ack", f)
	}
	f := c.send(t, ringBatch(40)) // 80+40 > 100
	if f.Type != graph.FrameNak || f.Nak.Code != graph.NakBackpressure {
		t.Fatalf("overload reply %+v, want backpressure NAK", f)
	}
	if f.Nak.RetryAfterMillis == 0 {
		t.Fatal("backpressure NAK carries no retry hint")
	}
	if n, _ := s.PendingMutations(); n != 80 {
		t.Fatalf("queue holds %d mutations, want 80 (NAKed batch must not enqueue)", n)
	}
	if got := s.rejected.Load(); got != 40 {
		t.Fatalf("rejected counter %d, want 40", got)
	}

	s.TickNow() // drain
	if f := c.send(t, ringBatch(40)); f.Type != graph.FrameAck || f.Ack.Queued != 40 {
		t.Fatalf("post-drain retry %+v, want ack with 40 queued", f)
	}
}

// TestJSONBinaryEquivalence feeds the identical mutation stream once
// through the JSON plane and once through the binary plane, with the
// same tick boundaries, and requires byte-identical checkpoints — the
// two wire formats must be pure encodings of the same stream, with no
// semantic drift between them.
func TestJSONBinaryEquivalence(t *testing.T) {
	stream := []graph.Batch{
		ringBatch(60),
		{
			{Kind: graph.MutAddVertex, U: 100},
			{Kind: graph.MutAddEdge, U: 100, V: 3},
			{Kind: graph.MutRemoveEdge, U: 0, V: 1},
		},
		{
			{Kind: graph.MutRemoveVertex, U: 7},
			{Kind: graph.MutAddEdge, U: 8, V: 101},
		},
	}

	capture := func(s *Server) []byte {
		s.mu.RLock()
		defer s.mu.RUnlock()
		snap, err := snapshot.Capture(s.part, s.coreCfg, snapshot.Meta{
			Ticks:             s.ticks.Load(),
			MutationsIngested: s.ingested.Load(),
			MutationsApplied:  s.applied.Load(),
			CreatedUnix:       42, // fixed: wall-clock must not break byte equality
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := snapshot.Write(&buf, snap); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	// JSON plane.
	js := testServer(t, nil)
	ts := httptest.NewServer(js)
	defer ts.Close()
	for _, b := range stream {
		req := IngestRequest{}
		for _, mu := range b {
			mj := MutationJSON{Op: mu.Kind.String(), U: int64(mu.U), V: int64(mu.V)}
			req.Mutations = append(req.Mutations, mj)
		}
		resp, raw := postJSON(t, ts, "/v1/mutations", req)
		if resp.StatusCode != 202 {
			t.Fatalf("json ingest status %d: %s", resp.StatusCode, raw)
		}
		js.TickNow()
	}

	// Binary plane.
	bs := testServer(t, nil)
	c := dialBinary(t, startBinary(t, bs))
	for _, b := range stream {
		if f := c.send(t, b); f.Type != graph.FrameAck || int(f.Ack.Accepted) != len(b) {
			t.Fatalf("binary ingest reply %+v", f)
		}
		bs.TickNow()
	}

	a, b := capture(js), capture(bs)
	if !bytes.Equal(a, b) {
		t.Fatalf("checkpoints diverge between JSON and binary ingest (%d vs %d bytes)", len(a), len(b))
	}
}
