package server

import (
	"bufio"
	"bytes"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"xdgp/internal/graph"
	"xdgp/internal/snapshot"
)

// startBinary serves the binary ingest plane on an ephemeral port and
// returns its address.
func startBinary(t *testing.T, s *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.ServeBinary(ln) //nolint:errcheck // exits on listener close
	t.Cleanup(func() {
		ln.Close()
		s.CloseBinary()
	})
	return ln.Addr().String()
}

// binaryClient is a minimal synchronous producer: write one batch frame,
// read the reply frame.
type binaryClient struct {
	conn net.Conn
	br   *bufio.Reader
}

func dialBinary(t *testing.T, addr string) *binaryClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &binaryClient{conn: conn, br: bufio.NewReader(conn)}
}

func (c *binaryClient) send(t *testing.T, b graph.Batch) graph.Frame {
	t.Helper()
	if err := graph.WriteBatchFrame(c.conn, b); err != nil {
		t.Fatal(err)
	}
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	f, err := graph.ReadFrame(c.br)
	if err != nil {
		t.Fatalf("read reply: %v", err)
	}
	return f
}

func TestBinaryIngestEndToEnd(t *testing.T) {
	s := testServer(t, nil)
	addr := startBinary(t, s)
	c := dialBinary(t, addr)

	// Two frames on one persistent connection; per-frame ACKs carry the
	// cumulative queue depth.
	f := c.send(t, ringBatch(40))
	if f.Type != graph.FrameAck || f.Ack.Accepted != 40 || f.Ack.Queued != 40 {
		t.Fatalf("first ack %+v", f)
	}
	f = c.send(t, graph.Batch{{Kind: graph.MutAddEdge, U: 0, V: 20}})
	if f.Type != graph.FrameAck || f.Ack.Accepted != 1 || f.Ack.Queued != 41 {
		t.Fatalf("second ack %+v", f)
	}

	res := s.TickNow()
	if res.BatchSize != 41 || res.Applied == 0 {
		t.Fatalf("tick %+v, want 41 coalesced", res)
	}
	if _, ok := s.Placement(0); !ok {
		t.Fatal("vertex 0 not placed after binary ingest + tick")
	}
	st := s.Stats()
	if st.Ingested != 41 || st.Vertices != 40 {
		t.Fatalf("stats %+v", st)
	}
	if got := s.binaryFrames.Load(); got != 2 {
		t.Fatalf("binaryFrames = %d, want 2", got)
	}
}

func TestBinaryMalformedFrameNaksAndCloses(t *testing.T) {
	s := testServer(t, nil)
	addr := startBinary(t, s)
	c := dialBinary(t, addr)

	if _, err := c.conn.Write([]byte{0x77, 0x01, 0, 0, 0, 0}); err != nil { // bad version
		t.Fatal(err)
	}
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	f, err := graph.ReadFrame(c.br)
	if err != nil {
		t.Fatalf("expected a malformed NAK, got read error %v", err)
	}
	if f.Type != graph.FrameNak || f.Nak.Code != graph.NakMalformed {
		t.Fatalf("reply %+v, want malformed NAK", f)
	}
	// The server closes the connection after a protocol error.
	if _, err := graph.ReadFrame(c.br); err == nil {
		t.Fatal("connection still open after malformed frame")
	}
	if n, _ := s.PendingMutations(); n != 0 {
		t.Fatalf("%d mutations leaked from a malformed frame", n)
	}
}

// TestBinaryBackpressureNak pins the bounded-queue contract on the
// binary plane: a producer outrunning the tick drain gets a retryable
// NAK with a retry hint, nothing is enqueued past the cap, and the
// same batch succeeds once the queue drains.
func TestBinaryBackpressureNak(t *testing.T) {
	s := testServer(t, func(c *Config) { c.MaxPending = 100 })
	addr := startBinary(t, s)
	c := dialBinary(t, addr)

	if f := c.send(t, ringBatch(80)); f.Type != graph.FrameAck {
		t.Fatalf("first frame %+v, want ack", f)
	}
	f := c.send(t, ringBatch(40)) // 80+40 > 100
	if f.Type != graph.FrameNak || f.Nak.Code != graph.NakBackpressure {
		t.Fatalf("overload reply %+v, want backpressure NAK", f)
	}
	if f.Nak.RetryAfterMillis == 0 {
		t.Fatal("backpressure NAK carries no retry hint")
	}
	if n, _ := s.PendingMutations(); n != 80 {
		t.Fatalf("queue holds %d mutations, want 80 (NAKed batch must not enqueue)", n)
	}
	if got := s.rejected.Load(); got != 40 {
		t.Fatalf("rejected counter %d, want 40", got)
	}

	s.TickNow() // drain
	if f := c.send(t, ringBatch(40)); f.Type != graph.FrameAck || f.Ack.Queued != 40 {
		t.Fatalf("post-drain retry %+v, want ack with 40 queued", f)
	}
}

// TestJSONBinaryEquivalence feeds the identical mutation stream once
// through the JSON plane and once through the binary plane, with the
// same tick boundaries, and requires byte-identical checkpoints — the
// two wire formats must be pure encodings of the same stream, with no
// semantic drift between them.
func TestJSONBinaryEquivalence(t *testing.T) {
	stream := []graph.Batch{
		ringBatch(60),
		{
			{Kind: graph.MutAddVertex, U: 100},
			{Kind: graph.MutAddEdge, U: 100, V: 3},
			{Kind: graph.MutRemoveEdge, U: 0, V: 1},
		},
		{
			{Kind: graph.MutRemoveVertex, U: 7},
			{Kind: graph.MutAddEdge, U: 8, V: 101},
		},
	}

	capture := func(s *Server) []byte {
		s.mu.RLock()
		defer s.mu.RUnlock()
		snap, err := snapshot.Capture(s.part, s.coreCfg, snapshot.Meta{
			Ticks:             s.ticks.Load(),
			MutationsIngested: s.ingested.Load(),
			MutationsApplied:  s.applied.Load(),
			CreatedUnix:       42, // fixed: wall-clock must not break byte equality
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := snapshot.Write(&buf, snap); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	// JSON plane.
	js := testServer(t, nil)
	ts := httptest.NewServer(js)
	defer ts.Close()
	for _, b := range stream {
		req := IngestRequest{}
		for _, mu := range b {
			mj := MutationJSON{Op: mu.Kind.String(), U: int64(mu.U), V: int64(mu.V)}
			req.Mutations = append(req.Mutations, mj)
		}
		resp, raw := postJSON(t, ts, "/v1/mutations", req)
		if resp.StatusCode != 202 {
			t.Fatalf("json ingest status %d: %s", resp.StatusCode, raw)
		}
		js.TickNow()
	}

	// Binary plane.
	bs := testServer(t, nil)
	c := dialBinary(t, startBinary(t, bs))
	for _, b := range stream {
		if f := c.send(t, b); f.Type != graph.FrameAck || int(f.Ack.Accepted) != len(b) {
			t.Fatalf("binary ingest reply %+v", f)
		}
		bs.TickNow()
	}

	a, b := capture(js), capture(bs)
	if !bytes.Equal(a, b) {
		t.Fatalf("checkpoints diverge between JSON and binary ingest (%d vs %d bytes)", len(a), len(b))
	}
}

// TestBinaryDrainAnswersInFlightFrames pins the graceful-shutdown
// contract of the binary plane: a pipelining producer that has written
// frames without reaping replies gets an answer for EVERY frame — ACK
// for frames processed before the drain began, shutdown NAK after — and
// then a clean EOF. The old path (CloseBinary force-closing live
// connections) failed this test: queued-but-unACKed frames died with a
// connection reset and the producer could not tell accepted batches
// from lost ones.
func TestBinaryDrainAnswersInFlightFrames(t *testing.T) {
	s := testServer(t, nil)
	addr := startBinary(t, s)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Pipeline several frames without reading a single reply, the way
	// loadgen's windowed producer does mid-SIGTERM.
	const frames = 6
	var wire []byte
	for i := 0; i < frames; i++ {
		wire, err = graph.AppendBatchFrame(wire, ringBatch(10))
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}

	// Drain while those frames are in flight. DrainBinary returns once
	// every handler exited (or after the grace window).
	done := make(chan struct{})
	go func() { s.DrainBinary(3 * time.Second); close(done) }()

	// Every frame must be answered: ACK (enqueued before the drain flag
	// flipped) or shutdown NAK (refused during the drain) — never a
	// dropped reply or a reset.
	br := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck
	acked := 0
	for i := 0; i < frames; i++ {
		f, err := graph.ReadFrame(br)
		if err != nil {
			t.Fatalf("frame %d: reply lost during drain: %v", i, err)
		}
		switch {
		case f.Type == graph.FrameAck:
			acked++
		case f.Type == graph.FrameNak && f.Nak.Code == graph.NakShutdown:
			// refused, explicitly — the producer knows to fail over
		default:
			t.Fatalf("frame %d: unexpected reply %+v", i, f)
		}
	}
	// The producer is done; close our side so the handler sees EOF.
	conn.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("DrainBinary did not return after the producer closed")
	}

	// ACKed mutations must actually be queued (nothing silently dropped).
	if pending, _ := s.PendingMutations(); pending != acked*10 {
		t.Fatalf("pending = %d, want %d (10 per ACKed frame)", pending, acked*10)
	}
}

// TestBinaryDrainRefusesNewFrames: frames arriving after the drain began
// are NAKed with the shutdown code and not enqueued.
func TestBinaryDrainRefusesNewFrames(t *testing.T) {
	s := testServer(t, nil)
	addr := startBinary(t, s)
	c := dialBinary(t, addr)

	if f := c.send(t, ringBatch(10)); f.Type != graph.FrameAck {
		t.Fatalf("pre-drain frame %+v, want ack", f)
	}
	go s.DrainBinary(3 * time.Second)
	// Wait for the drain flag to flip before sending the late frame.
	for !s.binDraining.Load() {
		time.Sleep(time.Millisecond)
	}
	f := c.send(t, ringBatch(10))
	if f.Type != graph.FrameNak || f.Nak.Code != graph.NakShutdown {
		t.Fatalf("post-drain frame %+v, want shutdown NAK", f)
	}
	if pending, _ := s.PendingMutations(); pending != 10 {
		t.Fatalf("pending = %d, want 10 (late batch must not be enqueued)", pending)
	}
}
