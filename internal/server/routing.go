package server

import (
	"sort"
	"time"

	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// This file is the serving plane's write side: deriving epoch-numbered
// routing snapshots from the partitioner and swapping them in through an
// atomic pointer. Read endpoints (single, batch, watch) consume only the
// published snapshot and never touch the adaptation state lock — see
// docs/API.md for the consistency contract this buys.

// RoutingSnapshot is one immutable, epoch-numbered routing table: the
// compact vertex→partition map the read endpoints serve from. Snapshots
// are published by the tick loop (after each applied mutation batch and
// after each tick's adaptation steps) and retired by pointer swap; a
// goroutine that loaded one may keep reading it for as long as it likes —
// nothing is ever written to a published snapshot. All fields are
// read-only after publication.
type RoutingSnapshot struct {
	// Epoch numbers snapshots 1,2,3,… within one daemon process. Epochs
	// are serving-plane state, not partitioner state: they are NOT
	// persisted in checkpoints, so a restarted daemon starts again at 1
	// and watch consumers must resync (docs/OPERATIONS.md).
	Epoch uint64
	// Table answers vertex→partition lookups without synchronization.
	Table *partition.Frozen
	// CreatedUnixNano timestamps publication (the /metrics snapshot-age
	// gauge is now − this).
	CreatedUnixNano int64
}

// PlacementChange is one vertex's placement transition within an epoch
// diff. From/To use -1 (partition.None) for "not placed": From=-1 means
// the vertex was added, To=-1 means it was removed, anything else is a
// migration.
type PlacementChange struct {
	Vertex int64 `json:"vertex"`
	From   int64 `json:"from"`
	To     int64 `json:"to"`
}

// EpochDiff is the set of placement changes that produced one epoch from
// its predecessor — the unit of the GET /v1/watch feed. Changes are
// sorted by vertex ID and deduplicated; applying them (in epoch order)
// to a table at epoch N−1 yields exactly the table at epoch N. Immutable
// after publication.
type EpochDiff struct {
	Epoch   uint64            `json:"epoch"`
	Changes []PlacementChange `json:"changes"`
}

// Routing returns the currently published snapshot. Never nil: the
// constructor publishes epoch 1 before the server is reachable.
func (s *Server) Routing() *RoutingSnapshot {
	return s.routing.Load()
}

// publishRouting freezes the current assignment into the next epoch's
// snapshot, derives its diff from the partitioner's drained change set,
// swaps the snapshot in, and hands the diff to the watch hub. Callers
// must hold s.mu (write): it reads the live assignment and mutates the
// partitioner's change buffer. No-ops when nothing changed, so idle
// ticks do not inflate epochs.
func (s *Server) publishRouting() {
	candidates := s.part.DrainChanges()
	if len(candidates) == 0 {
		return
	}
	prev := s.routing.Load()
	cur := s.part.Assignment().Freeze()
	changes := diffChanges(prev.Table, cur, candidates)
	if len(changes) == 0 {
		// Every candidate settled back where it started (e.g. a vertex
		// removed and re-added to the same partition in one batch).
		return
	}
	next := &RoutingSnapshot{
		Epoch:           prev.Epoch + 1,
		Table:           cur,
		CreatedUnixNano: time.Now().UnixNano(),
	}
	s.routing.Store(next)
	s.publishes.Add(1)
	s.hub.publish(&EpochDiff{Epoch: next.Epoch, Changes: changes})
}

// publishInitialRouting installs epoch 1 from the constructor-time
// assignment (empty for New, the restored table for Restore). It runs
// before the server is shared, so no locking. Epoch 1 deliberately has
// no diff in the watch ring: a watcher bootstraps with a full read at
// epoch E and follows from E+1 (docs/API.md).
func (s *Server) publishInitialRouting() {
	s.part.SetChangeTracking(true)
	s.routing.Store(&RoutingSnapshot{
		Epoch:           1,
		Table:           s.part.Assignment().Freeze(),
		CreatedUnixNano: time.Now().UnixNano(),
	})
}

// diffChanges reduces the raw change candidates (duplicates and
// round-trips included) to the sorted, deduplicated transition list
// between two frozen tables.
func diffChanges(prev, cur *partition.Frozen, candidates []graph.VertexID) []PlacementChange {
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	changes := make([]PlacementChange, 0, len(candidates))
	last := graph.NoVertex
	for _, v := range candidates {
		if v == last {
			continue
		}
		last = v
		from, to := prev.Of(v), cur.Of(v)
		if from == to {
			continue
		}
		changes = append(changes, PlacementChange{
			Vertex: int64(v), From: int64(from), To: int64(to),
		})
	}
	return changes
}
