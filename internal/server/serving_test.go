package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// --- batch lookups ---------------------------------------------------------

func TestBatchPlacements(t *testing.T) {
	s := testServer(t, nil)
	s.Enqueue(ringBatch(40))
	s.TickNow()
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, raw := postJSON(t, ts, "/v1/placements", BatchRequest{
		Vertices: []int64{0, 7, 39, 1000}, // 1000 was never streamed
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, raw)
	}
	var br BatchResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatal(err)
	}
	if br.Epoch == 0 {
		t.Fatal("batch response not epoch-stamped")
	}
	if len(br.Placements) != 4 {
		t.Fatalf("got %d placements, want 4", len(br.Placements))
	}
	// Batch answers agree with the single-lookup endpoint.
	for _, pl := range br.Placements[:3] {
		var single map[string]int64
		if resp := getJSON(t, ts, fmt.Sprintf("/v1/placement/%d", pl.Vertex), &single); resp.StatusCode != http.StatusOK {
			t.Fatalf("single lookup of %d failed", pl.Vertex)
		}
		if single["partition"] != pl.Partition {
			t.Fatalf("vertex %d: batch says %d, single says %d", pl.Vertex, pl.Partition, single["partition"])
		}
		if pl.Partition < 0 || pl.Partition >= 4 {
			t.Fatalf("vertex %d in partition %d, want [0,4)", pl.Vertex, pl.Partition)
		}
	}
	// Unknown vertices come back as -1 inline, not as a request failure.
	if br.Placements[3].Partition != -1 {
		t.Fatalf("unknown vertex placed in %d, want -1", br.Placements[3].Partition)
	}
}

func TestBatchPlacementsValidation(t *testing.T) {
	s := testServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	for name, body := range map[string]string{
		"malformed":     `{`,
		"unknown field": `{"vertices":[1],"extra":true}`,
		"negative id":   `{"vertices":[-4]}`,
		"huge id":       fmt.Sprintf(`{"vertices":[%d]}`, int64(graph.MaxReadVertexID)+1),
	} {
		resp, err := http.Post(ts.URL+"/v1/placements", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	// Oversized vertex lists are rejected before any lookup work.
	ids := make([]int64, maxBatchVertices+1)
	resp, raw := postJSON(t, ts, "/v1/placements", BatchRequest{Vertices: ids})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d: %.120s", resp.StatusCode, raw)
	}
}

// --- epoch consistency -----------------------------------------------------

// TestEpochDiffsReconstructEveryTable is the serving plane's core
// correctness property: starting from the empty epoch-1 table and
// applying the watch feed's diffs in order reconstructs, at every epoch,
// exactly the table that batch lookups stamped with that epoch. Verified
// over a churning stream (adds, removals, migrations) in both
// scheduling modes.
func TestEpochDiffsReconstructEveryTable(t *testing.T) {
	for _, incremental := range []bool{true, false} {
		t.Run(fmt.Sprintf("incremental=%v", incremental), func(t *testing.T) {
			s := testServer(t, func(c *Config) {
				c.Incremental = incremental
				c.WatchRing = 1 << 14 // retain everything; eviction is tested elsewhere
			})
			ts := httptest.NewServer(s)
			defer ts.Close()

			// Model: vertex → partition, evolved by applying diffs.
			model := map[int64]int64{}
			modelEpoch := uint64(1)
			catchUp := func() {
				diffs, resync := s.hub.since(modelEpoch + 1)
				if resync {
					t.Fatal("ring evicted despite oversized WatchRing")
				}
				for _, d := range diffs {
					if d.Epoch != modelEpoch+1 {
						t.Fatalf("epoch gap: model at %d, next diff %d", modelEpoch, d.Epoch)
					}
					for _, ch := range d.Changes {
						if ch.From != -1 && model[ch.Vertex] != ch.From {
							t.Fatalf("epoch %d: vertex %d diff says from=%d, model has %d",
								d.Epoch, ch.Vertex, ch.From, model[ch.Vertex])
						}
						if ch.To == -1 {
							delete(model, ch.Vertex)
						} else {
							model[ch.Vertex] = ch.To
						}
					}
					modelEpoch = d.Epoch
				}
			}

			rng := rand.New(rand.NewSource(99))
			s.Enqueue(ringBatch(120))
			for tick := 0; tick < 25; tick++ {
				s.TickNow()
				catchUp()

				// Batch-read everything; response must match the model
				// at its stamped epoch (ticks are synchronous here, so
				// the stamped epoch is the model's epoch).
				ids := make([]int64, 130)
				for i := range ids {
					ids[i] = int64(i)
				}
				var br BatchResponse
				resp, raw := postJSON(t, ts, "/v1/placements", BatchRequest{Vertices: ids})
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("batch: %d %s", resp.StatusCode, raw)
				}
				if err := json.Unmarshal(raw, &br); err != nil {
					t.Fatal(err)
				}
				if br.Epoch != modelEpoch {
					t.Fatalf("tick %d: batch stamped epoch %d, model at %d", tick, br.Epoch, modelEpoch)
				}
				for _, pl := range br.Placements {
					want, ok := model[pl.Vertex]
					if !ok {
						want = -1
					}
					if pl.Partition != want {
						t.Fatalf("tick %d epoch %d: vertex %d served %d, diff-reconstructed table has %d",
							tick, br.Epoch, pl.Vertex, pl.Partition, want)
					}
				}

				// Churn for the next tick: adds and removals.
				var b graph.Batch
				for j := 0; j < 15; j++ {
					if rng.Intn(4) == 0 {
						b = append(b, graph.Mutation{Kind: graph.MutRemoveVertex,
							U: graph.VertexID(rng.Intn(130))})
					} else {
						b = append(b, graph.Mutation{Kind: graph.MutAddEdge,
							U: graph.VertexID(rng.Intn(130)), V: graph.VertexID(rng.Intn(130))})
					}
				}
				s.Enqueue(b)
			}
			if modelEpoch < 10 {
				t.Fatalf("only %d epochs published; churn exercised nothing", modelEpoch)
			}
		})
	}
}

// --- watch feed over HTTP --------------------------------------------------

// watchLines connects to /v1/watch and returns a line scanner plus a
// closer.
func watchLines(t *testing.T, ts *httptest.Server, query string) (*bufio.Scanner, func()) {
	t.Helper()
	req, err := http.NewRequest("GET", ts.URL+"/v1/watch"+query, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("watch status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		resp.Body.Close()
		t.Fatalf("watch content-type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	return sc, func() { resp.Body.Close() }
}

func TestWatchStreamsDiffs(t *testing.T) {
	s := testServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Publish epoch 2 (the batch placements), then connect from=2.
	s.Enqueue(ringBatch(60))
	s.TickNow()

	sc, closeStream := watchLines(t, ts, "?from=2")
	defer closeStream()

	lines := make(chan watchEvent)
	go func() {
		defer close(lines)
		for sc.Scan() {
			var ev watchEvent
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Errorf("bad watch line %q: %v", sc.Text(), err)
				return
			}
			lines <- ev
		}
	}()

	read := func() watchEvent {
		t.Helper()
		select {
		case ev, ok := <-lines:
			if !ok {
				t.Fatal("watch stream ended early")
			}
			return ev
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for watch event")
		}
		panic("unreachable")
	}

	first := read()
	if first.Resync || first.Epoch != 2 || len(first.Changes) == 0 {
		t.Fatalf("first event %+v, want epoch-2 diff with changes", first)
	}
	for _, ch := range first.Changes {
		if ch.From != -1 {
			t.Fatalf("initial placement of %d has from=%d, want -1 (added)", ch.Vertex, ch.From)
		}
	}

	// A later tick's migrations arrive live on the open stream.
	prevEpoch := first.Epoch
	s.Enqueue(ringBatch(90)) // extend the ring: wakes adaptation
	s.TickNow()
	for want := prevEpoch + 1; want <= s.Routing().Epoch; want++ {
		ev := read()
		if ev.Resync || ev.Epoch != want {
			t.Fatalf("live event %+v, want consecutive epoch %d", ev, want)
		}
	}
}

func TestWatchRejectsBadFrom(t *testing.T) {
	s := testServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/watch?from=banana")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

// TestWatchResyncAfterEviction: a consumer asking for epochs the
// bounded ring no longer retains gets an explicit resync event (then
// live diffs), never silently-missing epochs.
func TestWatchResyncAfterEviction(t *testing.T) {
	s := testServer(t, func(c *Config) { c.WatchRing = 4 })
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Publish well past the ring bound.
	s.Enqueue(ringBatch(80))
	s.TickNow()
	for i := 0; i < 12; i++ {
		s.Enqueue(graph.Batch{
			{Kind: graph.MutAddEdge, U: graph.VertexID(200 + i), V: graph.VertexID(201 + i)},
		})
		s.TickNow()
	}
	cur := s.Routing().Epoch
	if n, _ := s.hub.retained(); n > 4 {
		t.Fatalf("ring retains %d diffs, bound is 4", n)
	}

	sc, closeStream := watchLines(t, ts, "?from=2") // long evicted
	defer closeStream()
	if !sc.Scan() {
		t.Fatal("no first event")
	}
	var ev watchEvent
	if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
		t.Fatal(err)
	}
	if !ev.Resync || ev.Epoch != cur {
		t.Fatalf("first event %+v, want resync at current epoch %d", ev, cur)
	}
	// After the resync instruction the stream continues with live diffs.
	s.Enqueue(graph.Batch{{Kind: graph.MutAddEdge, U: 500, V: 501}})
	s.TickNow()
	if !sc.Scan() {
		t.Fatal("no post-resync event")
	}
	var live watchEvent
	if err := json.Unmarshal(sc.Bytes(), &live); err != nil {
		t.Fatal(err)
	}
	if live.Resync || live.Epoch <= cur {
		t.Fatalf("post-resync event %+v, want a live diff after epoch %d", live, cur)
	}
}

// TestWatchRejectsFutureFrom pins the daemon-restart scenario: epochs
// reset to 1 on restart, so a consumer reconnecting with its old (now
// far-future) from must get an explicit 400 telling it to re-bootstrap —
// not a silent hang until the new process's epoch counter catches up,
// and not a resync event that would mask the restart. (Before this was
// specified, the behavior was an immediate resync — ambiguous with
// ordinary ring eviction, so a replica could not distinguish "I fell
// behind" from "my upstream is a different incarnation".)
func TestWatchRejectsFutureFrom(t *testing.T) {
	s := testServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()
	s.Enqueue(ringBatch(40))
	s.TickNow() // this process is at epoch 2-ish; the consumer asks for 90000

	resp, err := http.Get(ts.URL + "/v1/watch?from=90000")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400; body %s", resp.StatusCode, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("400 body %q is not the documented {\"error\": ...} shape", body)
	}
	for _, want := range []string{"from=90000", "next epoch", "re-bootstrap"} {
		if !strings.Contains(e.Error, want) {
			t.Fatalf("error %q does not mention %q", e.Error, want)
		}
	}

	// The boundary: from = next epoch is the ordinary caught-up case and
	// must still be accepted (the stream waits rather than erroring).
	sc, closeStream := watchLines(t, ts, fmt.Sprintf("?from=%d", s.Routing().Epoch+1))
	defer closeStream()
	s.Enqueue(graph.Batch{{Kind: graph.MutAddEdge, U: 700, V: 701}})
	s.TickNow()
	if !sc.Scan() {
		t.Fatal("caught-up consumer got no event")
	}
	var ev watchEvent
	if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Resync || len(ev.Changes) == 0 {
		t.Fatalf("caught-up consumer got %+v, want a live diff", ev)
	}
}

// TestSlowWatcherBoundedMemory is the OOM regression test: a connected
// consumer that stops reading must not make the daemon queue diffs for
// it. Retention is the ring and nothing but the ring, whatever the
// consumer does; once the stalled consumer resumes it is served a
// resync, not a replay.
func TestSlowWatcherBoundedMemory(t *testing.T) {
	const ring = 8
	s := testServer(t, func(c *Config) { c.WatchRing = ring })
	ts := httptest.NewServer(s)
	defer ts.Close()

	// A consumer that connects and then never reads: its handler will
	// block on TCP backpressure once kernel buffers fill.
	req, err := http.NewRequest("GET", ts.URL+"/v1/watch?from=2", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Publish far more epochs than the ring holds, with fat diffs so any
	// per-subscriber queueing would be visible as memory growth.
	for i := 0; i < 200; i++ {
		var b graph.Batch
		base := graph.VertexID(i * 40)
		for j := graph.VertexID(0); j < 40; j++ {
			b = append(b, graph.Mutation{Kind: graph.MutAddEdge, U: base + j, V: base + (j+1)%40})
		}
		s.Enqueue(b)
		s.TickNow()
	}

	if n, _ := s.hub.retained(); n > ring {
		t.Fatalf("hub retains %d diffs for a stalled consumer, bound is %d", n, ring)
	}
	if _, evicted := s.hub.retained(); evicted == 0 {
		t.Fatal("nothing evicted; the test published too little")
	}
	if got := s.watchers.Load(); got != 1 {
		t.Fatalf("subscriber gauge %d, want 1", got)
	}

	// The stalled consumer resumes. Depending on how much the kernel
	// socket buffered before the handler blocked, it either kept every
	// epoch (consecutive diffs) or fell behind the ring — in which case
	// it MUST see an explicit resync event before the stream jumps
	// forward. Either way: no silent gaps, ever.
	target := s.Routing().Epoch
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	done := make(chan error, 1)
	go func() {
		last := uint64(1) // consumer's table starts at the bootstrap epoch
		for sc.Scan() {
			var ev watchEvent
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				done <- err
				return
			}
			if ev.Resync {
				// The documented recovery: refetch full state at ≥
				// ev.Epoch, making the consumer's table current as of it.
				last = ev.Epoch
			} else if ev.Epoch != last+1 {
				done <- fmt.Errorf("silent gap: epoch %d after %d with no resync", ev.Epoch, last)
				return
			} else {
				last = ev.Epoch
			}
			if last >= target {
				done <- nil
				return
			}
		}
		done <- fmt.Errorf("stream ended before reaching epoch %d", target)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("resumed consumer never caught up")
	}
}

// --- lock independence -----------------------------------------------------

// TestReadsDoNotBlockOnStateLock pins the acceptance criterion
// literally: with the adaptation state lock held exclusively (as during
// an ApplyBatch or Step), single lookups, batch lookups and the watch
// feed all complete. Before the serving plane, every one of these would
// deadlock here.
func TestReadsDoNotBlockOnStateLock(t *testing.T) {
	s := testServer(t, nil)
	s.Enqueue(ringBatch(50))
	s.TickNow()
	ts := httptest.NewServer(s)
	defer ts.Close()

	s.mu.Lock()
	defer s.mu.Unlock()

	done := make(chan error, 1)
	go func() {
		// Single lookup.
		resp, err := http.Get(ts.URL + "/v1/placement/3")
		if err != nil {
			done <- err
			return
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			done <- fmt.Errorf("single lookup status %d", resp.StatusCode)
			return
		}
		// Batch lookup.
		var buf bytes.Buffer
		json.NewEncoder(&buf).Encode(BatchRequest{Vertices: []int64{0, 1, 2}}) //nolint:errcheck
		resp, err = http.Post(ts.URL+"/v1/placements", "application/json", &buf)
		if err != nil {
			done <- err
			return
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			done <- fmt.Errorf("batch lookup status %d", resp.StatusCode)
			return
		}
		// Watch: the epoch-2 diff is retained and served immediately.
		req, _ := http.NewRequest("GET", ts.URL+"/v1/watch?from=2", nil)
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			done <- err
			return
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		if !sc.Scan() {
			resp.Body.Close()
			done <- fmt.Errorf("watch yielded no event")
			return
		}
		resp.Body.Close()
		done <- nil
	}()

	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("reads blocked while the adaptation state lock was held")
	}
}

// --- the full race test ----------------------------------------------------

// TestServingPlaneConcurrency is the race test the ISSUE names:
// concurrent batch reads, watch consumers, mutation ingest, checkpoints
// and the background tick loop against one live server (CI runs this
// package under -race). Batch responses are additionally checked for
// internal sanity: epoch-stamped and every placement in range.
func TestServingPlaneConcurrency(t *testing.T) {
	s := testServer(t, func(c *Config) {
		c.TickEvery = time.Millisecond
		c.WatchRing = 16
		c.CheckpointPath = filepath.Join(t.TempDir(), "c.snap")
	})
	s.Enqueue(ringBatch(300))
	s.TickNow()
	s.Start()
	defer s.Stop()
	ts := httptest.NewServer(s)
	defer ts.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	worker := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					fn(i)
				}
			}
		}()
	}

	// Ingest: steady churn keeps adaptation (and epoch publishing) busy.
	for w := 0; w < 2; w++ {
		seed := int64(w)
		worker(func(i int) {
			rng := rand.New(rand.NewSource(seed*10000 + int64(i)))
			req := IngestRequest{}
			for j := 0; j < 8; j++ {
				if rng.Intn(5) == 0 {
					req.Mutations = append(req.Mutations, MutationJSON{
						Op: "remove-vertex", U: int64(rng.Intn(320))})
				} else {
					req.Mutations = append(req.Mutations, MutationJSON{
						Op: "add-edge", U: int64(rng.Intn(320)), V: int64(rng.Intn(320))})
				}
			}
			var buf bytes.Buffer
			json.NewEncoder(&buf).Encode(req) //nolint:errcheck
			resp, err := http.Post(ts.URL+"/v1/mutations", "application/json", &buf)
			if err == nil {
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
			}
		})
	}
	// Batch readers: thousands of IDs per request, sanity-checked.
	var batchOK atomic.Int64
	for w := 0; w < 2; w++ {
		worker(func(i int) {
			ids := make([]int64, 2000)
			for j := range ids {
				ids[j] = int64((i*2000 + j) % 400)
			}
			var buf bytes.Buffer
			json.NewEncoder(&buf).Encode(BatchRequest{Vertices: ids}) //nolint:errcheck
			resp, err := http.Post(ts.URL+"/v1/placements", "application/json", &buf)
			if err != nil {
				return
			}
			var br BatchResponse
			err = json.NewDecoder(resp.Body).Decode(&br)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				return
			}
			if br.Epoch == 0 {
				t.Error("batch response without epoch stamp")
				return
			}
			for _, pl := range br.Placements {
				if pl.Partition < -1 || pl.Partition >= 4 {
					t.Errorf("batch served partition %d for vertex %d", pl.Partition, pl.Vertex)
					return
				}
			}
			batchOK.Add(1)
		})
	}
	// Watch consumers: follow the feed, tolerate resyncs, require
	// monotonically increasing epochs per stream.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, _ := http.NewRequest("GET", ts.URL+"/v1/watch", nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			go func() { <-stop; resp.Body.Close() }()
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			last := uint64(0)
			for sc.Scan() {
				var ev watchEvent
				if json.Unmarshal(sc.Bytes(), &ev) != nil {
					return
				}
				if !ev.Resync && ev.Epoch <= last {
					t.Errorf("watch epoch went backwards: %d after %d", ev.Epoch, last)
					return
				}
				last = ev.Epoch
			}
		}()
	}
	// Single readers and checkpoints.
	worker(func(i int) {
		resp, err := http.Get(fmt.Sprintf("%s/v1/placement/%d", ts.URL, i%320))
		if err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
		}
	})
	worker(func(i int) {
		s.Checkpoint("") //nolint:errcheck
		time.Sleep(time.Millisecond)
	})

	time.Sleep(250 * time.Millisecond)
	close(stop)
	wg.Wait()
	s.Stop()

	if batchOK.Load() == 0 {
		t.Fatal("no batch read completed; the test exercised nothing")
	}
	if s.Routing().Epoch < 2 {
		t.Fatalf("no epochs published under load (epoch %d)", s.Routing().Epoch)
	}
	if !partition.WithinCapacities(asnOf(s), capsOf(s)) {
		t.Fatal("capacity invariant violated under concurrency")
	}
}
