package server

import (
	"bufio"
	"errors"
	"io"
	"math"
	"net"
	"time"

	"xdgp/internal/graph"
)

// This file is the binary ingest plane: a persistent-connection listener
// speaking the length-prefixed mutation frame protocol of
// internal/graph's wire codec (docs/API.md, "Binary ingest plane"). One
// connection = one producer stream: every batch frame is answered in
// order with an ACK (accepted count + total queued) or a backpressure
// NAK carrying a retry hint, and the connection sticks to one ingest
// shard so the producer's own mutation order survives the sharded tick
// drain. Protocol errors get a best-effort malformed NAK and the
// connection is closed — a desynced framing stream cannot be trusted to
// re-align. The JSON plane stays the simple/debuggable surface; this one
// exists to move millions of mutations per second without JSON decode
// dominating the daemon's CPU.

// DefaultBinaryIdleTimeout is the per-connection read deadline of the
// binary plane when Config.BinaryIdleTimeout is zero: a producer silent
// for this long is disconnected (it can simply redial), so dead peers
// cannot pin connection goroutines forever.
const DefaultBinaryIdleTimeout = 5 * time.Minute

// binaryWriteTimeout bounds each ACK/NAK write. Replies are ≤10 bytes;
// a producer that cannot take one within this window is gone.
const binaryWriteTimeout = 10 * time.Second

// ServeBinary accepts binary-plane connections on l until the listener
// is closed (returning nil) or fails (returning the error). Each
// connection gets its own goroutine and ingest shard. Call CloseBinary
// — or Stop, which includes it — to disconnect the accepted
// connections; closing the listener only stops new ones.
func (s *Server) ServeBinary(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.serveBinaryConn(conn)
	}
}

// CloseBinary force-closes every live binary-plane connection. New
// connections are governed by the listener, which the caller owns.
// Frames in flight on a force-closed connection get no reply; the
// graceful-shutdown path (Drain) calls DrainBinary first so pipelined
// producers are answered before anything is torn down.
func (s *Server) CloseBinary() {
	s.binMu.Lock()
	conns := make([]net.Conn, 0, len(s.binConns))
	for c := range s.binConns {
		conns = append(conns, c)
	}
	s.binMu.Unlock()
	for _, c := range conns {
		c.Close() //nolint:errcheck // teardown
	}
}

// DefaultBinaryDrainGrace is the window DrainBinary gives connection
// handlers to answer their in-flight frames before force-closing.
const DefaultBinaryDrainGrace = 2 * time.Second

// DrainBinary gracefully shuts the binary ingest plane down: every
// frame already in flight (written by a pipelining producer, not yet
// replied to) is answered — enqueued-and-ACKed frames drain with the
// tick loop as usual; frames read after the drain begins get a
// NakShutdown so the producer knows the batch was NOT accepted — and
// connections close once their socket is quiet. Force-closing instead
// (the old CloseBinary-only path) silently dropped queued-but-unACKed
// batches: the producer saw a reset with no way to tell accepted frames
// from lost ones. Blocks until every handler exits or grace elapses
// (stragglers are then force-closed); grace ≤ 0 means
// DefaultBinaryDrainGrace. Idempotent; new connections are governed by
// the listener, which the caller owns and should close first.
func (s *Server) DrainBinary(grace time.Duration) {
	if grace <= 0 {
		grace = DefaultBinaryDrainGrace
	}
	deadline := time.Now().Add(grace)
	s.binDrainUntil.Store(deadline.UnixNano())
	s.binDraining.Store(true)
	// Nudge every handler: each gets a read deadline inside the drain
	// window, so a handler parked in ReadFrame on an idle socket wakes
	// within the grace period instead of its (minutes-long) idle timeout.
	// Buffered frames still read fine — deadlines only bound new socket
	// reads — so pipelined frames are answered, not dropped.
	s.binMu.Lock()
	for c := range s.binConns {
		c.SetReadDeadline(deadline) //nolint:errcheck // net.Conn deadlines
	}
	s.binMu.Unlock()
	for time.Now().Before(deadline) {
		s.binMu.Lock()
		n := len(s.binConns)
		s.binMu.Unlock()
		if n == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.CloseBinary()
}

func (s *Server) trackBinaryConn(c net.Conn, add bool) {
	s.binMu.Lock()
	defer s.binMu.Unlock()
	if add {
		if s.binConns == nil {
			s.binConns = make(map[net.Conn]struct{})
		}
		s.binConns[c] = struct{}{}
		s.binaryConns.Add(1)
	} else {
		delete(s.binConns, c)
		s.binaryConns.Add(-1)
	}
}

func (s *Server) serveBinaryConn(conn net.Conn) {
	defer conn.Close()
	s.trackBinaryConn(conn, true)
	defer s.trackBinaryConn(conn, false)

	idle := s.cfg.BinaryIdleTimeout
	if idle == 0 {
		idle = DefaultBinaryIdleTimeout
	}
	// The connection's lifetime shard: frames from this producer drain in
	// the order they were acknowledged.
	shard := s.enqueueRR.Add(1) - 1
	br := bufio.NewReaderSize(conn, 1<<16)
	reply := make([]byte, 0, 16)
	for {
		if s.binDraining.Load() {
			// The drain window bounds how long this handler may block on
			// the socket; frames already buffered are still read and
			// answered below.
			conn.SetReadDeadline(time.Unix(0, s.binDrainUntil.Load())) //nolint:errcheck // net.Conn deadlines
		} else if idle > 0 {
			conn.SetReadDeadline(time.Now().Add(idle)) //nolint:errcheck // net.Conn deadlines
		}
		f, err := graph.ReadFrame(br)
		if err != nil {
			// Clean close between frames needs no reply, and neither does a
			// drain-deadline expiry (every received frame was already
			// answered); a protocol error gets a best-effort malformed NAK
			// so the producer can tell "server rejected my framing" from a
			// network failure.
			if err != io.EOF && !errors.Is(err, net.ErrClosed) && !isTimeout(err) {
				s.writeBinaryReply(conn, graph.AppendNakFrame(reply[:0], graph.Nak{Code: graph.NakMalformed}))
			}
			return
		}
		if f.Type != graph.FrameBatch {
			s.writeBinaryReply(conn, graph.AppendNakFrame(reply[:0], graph.Nak{Code: graph.NakMalformed}))
			return
		}
		if s.binDraining.Load() {
			// Shutdown in progress: refuse the batch explicitly. The
			// producer learns this exact frame was NOT accepted — the
			// silent-loss window the force-close path had.
			if !s.writeBinaryReply(conn, graph.AppendNakFrame(reply[:0], graph.Nak{Code: graph.NakShutdown})) {
				return
			}
			continue
		}
		queued, ok := s.EnqueueShard(f.Batch, shard)
		if !ok {
			hint := s.RetryAfterHint()
			reply = graph.AppendNakFrame(reply[:0], graph.Nak{
				Code:             graph.NakBackpressure,
				RetryAfterMillis: uint32(min(hint.Milliseconds(), math.MaxUint32)),
			})
		} else {
			s.binaryFrames.Add(1)
			reply = graph.AppendAckFrame(reply[:0], graph.Ack{
				Accepted: uint32(len(f.Batch)),
				Queued:   uint32(min(int64(queued), math.MaxUint32)),
			})
		}
		if !s.writeBinaryReply(conn, reply) {
			return
		}
	}
}

// writeBinaryReply writes one ACK/NAK under a write deadline; false
// means the connection is unusable and the handler should exit.
func (s *Server) writeBinaryReply(conn net.Conn, frame []byte) bool {
	conn.SetWriteDeadline(time.Now().Add(binaryWriteTimeout)) //nolint:errcheck // net.Conn deadlines
	_, err := conn.Write(frame)
	return err == nil
}

// isTimeout reports whether err is a deadline expiry (the expected way a
// drained connection's read loop ends).
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
