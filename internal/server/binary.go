package server

import (
	"bufio"
	"errors"
	"io"
	"math"
	"net"
	"time"

	"xdgp/internal/graph"
)

// This file is the binary ingest plane: a persistent-connection listener
// speaking the length-prefixed mutation frame protocol of
// internal/graph's wire codec (docs/API.md, "Binary ingest plane"). One
// connection = one producer stream: every batch frame is answered in
// order with an ACK (accepted count + total queued) or a backpressure
// NAK carrying a retry hint, and the connection sticks to one ingest
// shard so the producer's own mutation order survives the sharded tick
// drain. Protocol errors get a best-effort malformed NAK and the
// connection is closed — a desynced framing stream cannot be trusted to
// re-align. The JSON plane stays the simple/debuggable surface; this one
// exists to move millions of mutations per second without JSON decode
// dominating the daemon's CPU.

// DefaultBinaryIdleTimeout is the per-connection read deadline of the
// binary plane when Config.BinaryIdleTimeout is zero: a producer silent
// for this long is disconnected (it can simply redial), so dead peers
// cannot pin connection goroutines forever.
const DefaultBinaryIdleTimeout = 5 * time.Minute

// binaryWriteTimeout bounds each ACK/NAK write. Replies are ≤10 bytes;
// a producer that cannot take one within this window is gone.
const binaryWriteTimeout = 10 * time.Second

// ServeBinary accepts binary-plane connections on l until the listener
// is closed (returning nil) or fails (returning the error). Each
// connection gets its own goroutine and ingest shard. Call CloseBinary
// — or Stop, which includes it — to disconnect the accepted
// connections; closing the listener only stops new ones.
func (s *Server) ServeBinary(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.serveBinaryConn(conn)
	}
}

// CloseBinary force-closes every live binary-plane connection. New
// connections are governed by the listener, which the caller owns.
func (s *Server) CloseBinary() {
	s.binMu.Lock()
	conns := make([]net.Conn, 0, len(s.binConns))
	for c := range s.binConns {
		conns = append(conns, c)
	}
	s.binMu.Unlock()
	for _, c := range conns {
		c.Close() //nolint:errcheck // teardown
	}
}

func (s *Server) trackBinaryConn(c net.Conn, add bool) {
	s.binMu.Lock()
	defer s.binMu.Unlock()
	if add {
		if s.binConns == nil {
			s.binConns = make(map[net.Conn]struct{})
		}
		s.binConns[c] = struct{}{}
		s.binaryConns.Add(1)
	} else {
		delete(s.binConns, c)
		s.binaryConns.Add(-1)
	}
}

func (s *Server) serveBinaryConn(conn net.Conn) {
	defer conn.Close()
	s.trackBinaryConn(conn, true)
	defer s.trackBinaryConn(conn, false)

	idle := s.cfg.BinaryIdleTimeout
	if idle == 0 {
		idle = DefaultBinaryIdleTimeout
	}
	// The connection's lifetime shard: frames from this producer drain in
	// the order they were acknowledged.
	shard := s.enqueueRR.Add(1) - 1
	br := bufio.NewReaderSize(conn, 1<<16)
	reply := make([]byte, 0, 16)
	for {
		if idle > 0 {
			conn.SetReadDeadline(time.Now().Add(idle)) //nolint:errcheck // net.Conn deadlines
		}
		f, err := graph.ReadFrame(br)
		if err != nil {
			// Clean close between frames needs no reply; a protocol error
			// gets a best-effort malformed NAK so the producer can tell
			// "server rejected my framing" from a network failure.
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.writeBinaryReply(conn, graph.AppendNakFrame(reply[:0], graph.Nak{Code: graph.NakMalformed}))
			}
			return
		}
		if f.Type != graph.FrameBatch {
			s.writeBinaryReply(conn, graph.AppendNakFrame(reply[:0], graph.Nak{Code: graph.NakMalformed}))
			return
		}
		queued, ok := s.EnqueueShard(f.Batch, shard)
		if !ok {
			hint := s.RetryAfterHint()
			reply = graph.AppendNakFrame(reply[:0], graph.Nak{
				Code:             graph.NakBackpressure,
				RetryAfterMillis: uint32(min(hint.Milliseconds(), math.MaxUint32)),
			})
		} else {
			s.binaryFrames.Add(1)
			reply = graph.AppendAckFrame(reply[:0], graph.Ack{
				Accepted: uint32(len(f.Batch)),
				Queued:   uint32(min(int64(queued), math.MaxUint32)),
			})
		}
		if !s.writeBinaryReply(conn, reply) {
			return
		}
	}
}

// writeBinaryReply writes one ACK/NAK under a write deadline; false
// means the connection is unusable and the handler should exit.
func (s *Server) writeBinaryReply(conn net.Conn, frame []byte) bool {
	conn.SetWriteDeadline(time.Now().Add(binaryWriteTimeout)) //nolint:errcheck // net.Conn deadlines
	_, err := conn.Write(frame)
	return err == nil
}
