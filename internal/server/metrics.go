package server

import (
	"fmt"
	"math"
	"net/http"
	"strings"
	"time"
)

// This file renders GET /metrics in the Prometheus text exposition
// format, hand-written so the daemon stays dependency-free. Everything
// exported here is O(1) to read — counters are atomics, gauges come from
// size fields — keeping the scrape path cheap; cut statistics (O(|E|))
// are deliberately /v1/stats-only.

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	counter("apartd_mutations_ingested_total", "Mutations accepted over HTTP or the binary plane.", s.ingested.Load())
	counter("apartd_ingest_rejected_total", "Mutations refused by the MaxPending backpressure cap (HTTP 429 / binary NAK).", s.rejected.Load())
	counter("apartd_mutations_applied_total", "Mutations that changed the graph.", s.applied.Load())
	counter("apartd_ticks_total", "Coalescing ticks processed.", s.ticks.Load())
	counter("apartd_iterations_total", "Heuristic iterations executed.", s.iterations.Load())
	counter("apartd_examined_total", "Per-vertex migration decisions evaluated (the active-set scheduler's denominator).", s.examined.Load())
	counter("apartd_migrations_total", "Granted vertex migrations.", s.migrations.Load())
	counter("apartd_checkpoints_total", "Snapshots written.", s.checkpoints.Load())
	counter("apartd_checkpoint_failures_total", "Periodic/drain checkpoint attempts that failed.", s.ckptFailures.Load())

	// Serving plane: epoch/age come from one atomic snapshot load, ring
	// occupancy from the hub's own mutex — nothing here touches the
	// adaptation state lock.
	snap := s.routing.Load()
	counter("apartd_routing_publishes_total", "Routing snapshots published (epochs minus the bootstrap).", s.publishes.Load())
	gauge("apartd_routing_epoch", "Epoch of the currently served routing snapshot.", float64(snap.Epoch))
	gauge("apartd_routing_snapshot_age_seconds", "Age of the current routing snapshot (high while adaptation is idle — pair with apartd_ingest_pending).",
		time.Since(time.Unix(0, snap.CreatedUnixNano)).Seconds())
	gauge("apartd_routing_vertices", "Vertices placed in the current routing snapshot.", float64(snap.Table.Assigned()))
	retained, evicted := s.hub.retained()
	gauge("apartd_watch_subscribers", "Currently connected /v1/watch streams.", float64(s.watchers.Load()))
	gauge("apartd_watch_ring_retained", "Epoch diffs currently retained for watch resume.", float64(retained))
	counter("apartd_watch_events_total", "Diff lines written across all watch streams.", s.watchEvents.Load())
	counter("apartd_watch_resyncs_total", "Resync events sent to watchers that fell behind the diff ring.", s.watchResyncs.Load())
	counter("apartd_watch_dropped_total", "Watch subscribers dropped on a write-deadline miss (dead or stalled consumer connection).", s.watchDropped.Load())
	counter("apartd_watch_evicted_total", "Epoch diffs dropped off the retention ring (watch lag ceiling).", evicted)
	counter("apartd_batch_requests_total", "POST /v1/placements requests served.", s.batchRequests.Load())
	counter("apartd_batch_lookups_total", "Vertex lookups served by batch requests.", s.batchLookups.Load())

	// Workload-heat plane: all O(1) mirrors of the last tick fold.
	heatRec := 0.0
	if s.heatTable.Recording() {
		heatRec = 1
	}
	gauge("apartd_heat_recording", "1 when serving-plane reads are being sampled into the heat table.", heatRec)
	gauge("apartd_heat_workload_weight", "Strength of the workload term in the migration objective (0 = topology-only).", s.cfg.WorkloadWeight)
	counter("apartd_heat_reads_total", "Serving-plane reads counted by the heat table (exact, pre-sampling).", s.heatTable.TotalReads())
	counter("apartd_heat_samples_total", "Sampled reads folded into the partitioner at tick boundaries.", s.heatSamples.Load())
	counter("apartd_heat_folds_total", "Heat folds executed (tick boundaries, plus checkpoint pre-captures).", s.heatFolds.Load())
	gauge("apartd_heat_hot_vertices", "Vertices with non-zero decayed heat after the last fold.", float64(s.heatHot.Load()))
	gauge("apartd_heat_max", "Maximum decayed per-vertex heat after the last fold.", math.Float64frombits(s.heatMaxBits.Load()))

	// Cluster plane: emitted only in cluster mode. All O(1) atomics; the
	// state-hash gauge is the low 32 bits of the assignment fingerprint
	// (float64 gauges cannot carry 64 bits exactly) — enough for an
	// operator to diff across shards, with the full hash on /v1/stats.
	if s.cfg.Exchange != nil {
		gauge("apartd_cluster_shard", "This replica's shard index.", float64(s.cfg.ClusterShard))
		gauge("apartd_cluster_shards", "Fixed cluster size.", float64(s.cfg.ClusterShards))
		gauge("apartd_cluster_healthy", "1 while cluster mode is healthy, 0 once poisoned by divergence or a transport failure.", s.clusterHealthGauge())
		counter("apartd_cluster_rounds_total", "Exchange rounds completed (batch and step rounds).", s.clusterRounds.Load())
		counter("apartd_cluster_replayed_rounds_total", "Rounds re-executed from peer journals after a restart.", s.clusterReplayed.Load())
		gauge("apartd_cluster_round_wait_seconds_total", "Cumulative time spent blocked on round barriers (counter semantics; ratio to wall time ≈ barrier overhead).",
			time.Duration(s.clusterWaitNs.Load()).Seconds())
		gauge("apartd_cluster_state_hash_low32", "Low 32 bits of the last batch round's assignment fingerprint; must match across shards.",
			float64(s.clusterHash.Load()&0xffffffff))
	}

	pending, age := s.PendingMutations()
	gauge("apartd_ingest_pending", "Mutations waiting for the next tick.", float64(pending))
	gauge("apartd_ingest_lag_seconds", "Age of the oldest pending mutation.", age.Seconds())
	gauge("apartd_ingest_capacity", "MaxPending queue cap the backpressure NAK/429 path enforces.", float64(s.maxPending))
	gauge("apartd_ingest_shards", "Independent ingest queues.", float64(len(s.shards)))
	gauge("apartd_binary_conns", "Currently connected binary-plane ingest connections.", float64(s.binaryConns.Load()))
	counter("apartd_binary_frames_total", "Batch frames accepted on the binary plane.", s.binaryFrames.Load())
	gauge("apartd_last_batch_size", "Mutations coalesced into the most recent tick.", float64(s.lastBatch.Load()))
	gauge("apartd_last_checkpoint_timestamp_seconds", "Unix time of the most recent checkpoint (0 when none).", float64(s.lastCkptUnx.Load()))

	s.mu.RLock()
	g := s.part.Graph()
	vertices, edges := g.NumVertices(), g.NumEdges()
	mem := g.MemoryStats()
	overlayMass := g.OverlayMass()
	dirty := s.part.DirtyCount()
	iteration := s.part.Iteration()
	converged := s.part.Converged()
	sizes := s.part.Assignment().Sizes()
	s.mu.RUnlock()

	gauge("apartd_vertices", "Live vertices.", float64(vertices))
	gauge("apartd_edges", "Live edges.", float64(edges))
	gauge("apartd_dirty_vertices", "Active-set frontier size (0 when full-sweep or idle).", float64(dirty))
	gauge("apartd_iteration", "Heuristic iteration counter.", float64(iteration))
	gauge("apartd_graph_bytes", "Estimated resident bytes of the adjacency storage (arena + spans + overlay).", float64(mem.Bytes))
	gauge("apartd_graph_overlay_entries", "Adjacency entries pending compaction (overlay adds + arena garbage).", float64(overlayMass))
	counter("apartd_graph_compactions_total", "Adjacency arena rebuilds (automatic and between-tick).", mem.Compactions)
	boolV := 0.0
	if converged {
		boolV = 1
	}
	gauge("apartd_converged", "1 when the convergence window is satisfied.", boolV)

	fmt.Fprintf(&b, "# HELP apartd_partition_size Vertices per partition.\n# TYPE apartd_partition_size gauge\n")
	for p, n := range sizes {
		fmt.Fprintf(&b, "apartd_partition_size{partition=%q} %d\n", fmt.Sprint(p), n)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, b.String())
}
