package server

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"xdgp/internal/graph"
)

// TestIngestFloodStaysBounded is the overload regression test: producers
// pushing 2× the queue capacity between drains must see HTTP 429 with a
// Retry-After hint, the queue must never exceed MaxPending (bounded
// memory), and admission must recover after a drain.
func TestIngestFloodStaysBounded(t *testing.T) {
	const cap = 500
	s := testServer(t, func(c *Config) { c.MaxPending = cap })
	ts := httptest.NewServer(s)
	defer ts.Close()

	// 2× overload: 20 requests × 50 mutations = 1000 offered against a
	// 500-mutation cap, no drains in between.
	var accepted, rejected int
	for i := 0; i < 20; i++ {
		req := IngestRequest{}
		base := i * 50
		for j := 0; j < 50; j++ {
			req.Mutations = append(req.Mutations, MutationJSON{
				Op: "add-edge", U: int64(base + j), V: int64(base + j + 1),
			})
		}
		resp, raw := postJSON(t, ts, "/v1/mutations", req)
		switch resp.StatusCode {
		case http.StatusAccepted:
			accepted += 50
		case http.StatusTooManyRequests:
			rejected += 50
			ra := resp.Header.Get("Retry-After")
			if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
				t.Fatalf("429 Retry-After %q, want integer seconds ≥ 1", ra)
			}
		default:
			t.Fatalf("flood request %d: status %d: %s", i, resp.StatusCode, raw)
		}
		if n, _ := s.PendingMutations(); n > cap {
			t.Fatalf("queue grew to %d mutations, cap is %d", n, cap)
		}
	}
	if accepted != cap {
		t.Fatalf("accepted %d mutations, want exactly the cap %d", accepted, cap)
	}
	if rejected != cap {
		t.Fatalf("rejected %d mutations, want %d (the 2× excess)", rejected, cap)
	}
	if got := s.rejected.Load(); got != uint64(rejected) {
		t.Fatalf("rejected counter %d, want %d", got, rejected)
	}
	if st := s.Stats(); st.Rejected != uint64(rejected) {
		t.Fatalf("stats.Rejected = %d, want %d", st.Rejected, rejected)
	}

	// Drain; admission must recover.
	if res := s.TickNow(); res.BatchSize != cap {
		t.Fatalf("drain tick absorbed %d, want %d", res.BatchSize, cap)
	}
	resp, raw := postJSON(t, ts, "/v1/mutations", IngestRequest{
		Mutations: []MutationJSON{{Op: "add-edge", U: 1, V: 2}},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-drain ingest status %d: %s", resp.StatusCode, raw)
	}
}

// TestWatchStalledConsumerDropped pins the slow-consumer guarantee: a
// watch subscriber that stops reading (dead peer, wedged pipe) is
// dropped once an event write misses the per-event deadline, instead of
// pinning its handler goroutine and diff backlog forever.
func TestWatchStalledConsumerDropped(t *testing.T) {
	s := testServer(t, func(c *Config) {
		c.WatchWriteTimeout = 200 * time.Millisecond
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// A raw TCP client that sends the request and then never reads a
	// byte: the response backs up through the server's write buffers into
	// a full socket, and only the write deadline can unwedge the handler.
	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "GET /v1/watch HTTP/1.1\r\nHost: apartd\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, "watcher to register", func() bool {
		return s.watchers.Load() == 1
	})

	// Publish large diffs until the stalled connection's buffers fill and
	// the deadline trips. Each tick adds 2000 fresh vertices ⇒ ≥2000
	// placement changes ≈ 60 KiB of NDJSON per event.
	for i := 0; i < 400 && s.watchDropped.Load() == 0; i++ {
		base := graph.VertexID(i * 2000)
		b := make(graph.Batch, 0, 2000)
		for j := graph.VertexID(0); j < 2000; j++ {
			b = append(b, graph.Mutation{Kind: graph.MutAddVertex, U: base + j})
		}
		if _, ok := s.Enqueue(b); !ok {
			t.Fatal("enqueue refused during stall test")
		}
		s.TickNow()
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.watchDropped.Load(); got == 0 {
		t.Fatal("stalled watch consumer was never dropped")
	}
	// The handler goroutine must actually exit — watchers returning to 0
	// is the no-leak proof.
	waitFor(t, 5*time.Second, "stalled watcher goroutine to exit", func() bool {
		return s.watchers.Load() == 0
	})
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
