package server

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"xdgp/internal/graph"
)

// Serving-plane benchmarks: placement read throughput WHILE the
// adaptation loop is actively absorbing churn — the workload the routing
// snapshot exists for. The locked sub-benchmark is the pre-serving-plane
// read path (live assignment under the state lock, kept as
// placementLocked); the snapshot sub-benchmark is what the endpoints
// serve today. The ISSUE's acceptance bar is snapshot ≥5× locked here.
//
//	go test -run=NONE -bench PlacementUnderAdaptation ./internal/server

// startChurn keeps the adaptation loop busy: every iteration enqueues a
// rewire batch and runs a synchronous tick (ApplyBatch + heuristic
// steps, all under the state write lock). Returns a stop func.
func startChurn(s *Server, n int) func() {
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for {
			select {
			case <-stop:
				return
			default:
			}
			b := make(graph.Batch, 0, 200)
			for j := 0; j < 100; j++ {
				u, v := rng.Intn(n), rng.Intn(n)
				b = append(b,
					graph.Mutation{Kind: graph.MutRemoveEdge, U: graph.VertexID(u), V: graph.VertexID((u + 1) % n)},
					graph.Mutation{Kind: graph.MutAddEdge, U: graph.VertexID(u), V: graph.VertexID(v)},
				)
			}
			s.Enqueue(b)
			s.TickNow()
		}
	}()
	return func() { close(stop); wg.Wait() }
}

func newBenchServer(b *testing.B, n int) *Server {
	b.Helper()
	cfg := DefaultConfig(8, 1)
	cfg.TickEvery = time.Hour // churn goroutine ticks explicitly
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	batch := make(graph.Batch, 0, 2*n)
	for i := 0; i < n; i++ {
		batch = append(batch,
			graph.Mutation{Kind: graph.MutAddEdge, U: graph.VertexID(i), V: graph.VertexID((i + 1) % n)},
			graph.Mutation{Kind: graph.MutAddEdge, U: graph.VertexID(i), V: graph.VertexID((i + 17) % n)},
		)
	}
	s.Enqueue(batch)
	for !s.Stats().Converged {
		s.TickNow()
	}
	return s
}

// BenchmarkPlacementUnderAdaptation measures single-vertex reads against
// a daemon whose tick loop is continuously migrating.
func BenchmarkPlacementUnderAdaptation(b *testing.B) {
	const n = 10000
	b.Run("locked", func(b *testing.B) {
		s := newBenchServer(b, n)
		defer startChurn(s, n)()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			v := graph.VertexID(0)
			for pb.Next() {
				s.placementLocked(v)
				v = (v + 37) % n
			}
		})
	})
	b.Run("snapshot", func(b *testing.B) {
		s := newBenchServer(b, n)
		defer startChurn(s, n)()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			v := graph.VertexID(0)
			for pb.Next() {
				s.Placement(v)
				v = (v + 37) % n
			}
		})
	})
}

// BenchmarkPlacementHeat isolates what read-heat sampling adds to one
// placement lookup: the same converged daemon, no churn, heat recording
// off (one atomic load to see it's off) vs on (one counter add, and
// every sampleth read stores into the shard ring). Uncontended and
// steady, so unlike the adaptation benchmarks above this pair IS gated
// by cmd/benchgate — the heat table must not slow the serving plane.
//
//	go test -run=NONE -bench PlacementHeat ./internal/server
func BenchmarkPlacementHeat(b *testing.B) {
	const n = 10000
	run := func(b *testing.B, record bool) {
		s := newBenchServer(b, n)
		s.heatTable.SetRecording(record)
		b.ResetTimer()
		v := graph.VertexID(0)
		for i := 0; i < b.N; i++ {
			s.Placement(v)
			v = (v + 37) % n
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

// BenchmarkBatchLookupUnderAdaptation measures the batch read path
// (1000 IDs per call, one snapshot per call) under the same active
// churn; ns/op is per batch, not per vertex.
func BenchmarkBatchLookupUnderAdaptation(b *testing.B) {
	const n = 10000
	s := newBenchServer(b, n)
	defer startChurn(s, n)()
	ids := make([]graph.VertexID, 1000)
	for i := range ids {
		ids[i] = graph.VertexID((i * 97) % n)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s.BatchLookup(ids)
		}
	})
}
