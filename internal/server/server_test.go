package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"xdgp/internal/graph"
	"xdgp/internal/partition"
	"xdgp/internal/snapshot"
)

func testServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	cfg := DefaultConfig(4, 7)
	cfg.TickEvery = time.Hour // tests drive ticks explicitly
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// ringBatch returns mutations building a ring over [0,n).
func ringBatch(n int) graph.Batch {
	b := make(graph.Batch, 0, n)
	for i := 0; i < n; i++ {
		b = append(b, graph.Mutation{Kind: graph.MutAddEdge,
			U: graph.VertexID(i), V: graph.VertexID((i + 1) % n)})
	}
	return b
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(ts.URL+path, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
	}
	return resp
}

func TestIngestTickAndPlacement(t *testing.T) {
	s := testServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	req := IngestRequest{}
	for i := 0; i < 40; i++ {
		req.Mutations = append(req.Mutations, MutationJSON{Op: "add-edge", U: int64(i), V: int64((i + 1) % 40)})
	}
	resp, raw := postJSON(t, ts, "/v1/mutations", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status %d: %s", resp.StatusCode, raw)
	}
	var ack map[string]int
	if err := json.Unmarshal(raw, &ack); err != nil {
		t.Fatal(err)
	}
	if ack["accepted"] != 40 || ack["queued"] != 40 {
		t.Fatalf("ack %v, want accepted=40 queued=40", ack)
	}

	// Before the tick, the vertex is queued but not placed.
	if resp := getJSON(t, ts, "/v1/placement/0", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pre-tick placement status %d, want 404", resp.StatusCode)
	}

	res := s.TickNow()
	if res.BatchSize != 40 || res.Applied == 0 {
		t.Fatalf("tick = %+v, want 40 coalesced and some applied", res)
	}

	var placement map[string]int64
	if resp := getJSON(t, ts, "/v1/placement/0", &placement); resp.StatusCode != http.StatusOK {
		t.Fatalf("placement status %d", resp.StatusCode)
	}
	if placement["vertex"] != 0 || placement["partition"] < 0 || placement["partition"] >= 4 {
		t.Fatalf("placement %v out of range", placement)
	}

	var st Stats
	getJSON(t, ts, "/v1/stats", &st)
	if st.Vertices != 40 || st.Edges != 40 || st.K != 4 {
		t.Fatalf("stats %+v, want 40 vertices/edges over k=4", st)
	}
	if st.Ingested != 40 || st.Ticks != 1 {
		t.Fatalf("stats counters %+v", st)
	}
	if !partition.WithinCapacities(asnOf(s), capsOf(s)) {
		t.Fatal("capacity invariant violated after tick")
	}
}

func asnOf(s *Server) *partition.Assignment { return s.part.Assignment() }
func capsOf(s *Server) []int                { return s.part.Capacities() }

func TestIngestValidation(t *testing.T) {
	s := testServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	cases := []struct {
		name string
		body string
	}{
		{"unknown op", `{"mutations":[{"op":"frobnicate","u":1}]}`},
		{"negative id", `{"mutations":[{"op":"add-vertex","u":-3}]}`},
		{"huge id", fmt.Sprintf(`{"mutations":[{"op":"add-vertex","u":%d}]}`, int64(graph.MaxReadVertexID)+1)},
		{"unknown field", `{"mutations":[],"extra":1}`},
		{"malformed", `{`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/mutations", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
	// A rejected batch must not enqueue anything.
	if n, _ := s.PendingMutations(); n != 0 {
		t.Fatalf("%d mutations leaked into the queue from rejected requests", n)
	}
	if resp := getJSON(t, ts, "/v1/placement/not-a-number", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-numeric placement status %d, want 400", resp.StatusCode)
	}
}

// TestConcurrentIngestAndQueries is the race test the ISSUE's acceptance
// criterion names: mutation ingest, placement/stats/metrics queries and
// the tick loop all run concurrently (go test -race covers this
// package in CI).
func TestConcurrentIngestAndQueries(t *testing.T) {
	s := testServer(t, func(c *Config) {
		c.TickEvery = time.Millisecond
		c.CheckpointPath = filepath.Join(t.TempDir(), "c.snap")
	})
	s.Enqueue(ringBatch(200))
	s.TickNow()
	s.Start()
	defer s.Stop()
	ts := httptest.NewServer(s)
	defer ts.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	worker := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					fn(i)
				}
			}
		}()
	}
	// Ingest workers.
	for w := 0; w < 2; w++ {
		seed := int64(w)
		worker(func(i int) {
			rng := rand.New(rand.NewSource(seed*1000 + int64(i)))
			req := IngestRequest{}
			for j := 0; j < 5; j++ {
				req.Mutations = append(req.Mutations, MutationJSON{
					Op: "add-edge", U: int64(rng.Intn(220)), V: int64(rng.Intn(220)),
				})
			}
			var buf bytes.Buffer
			json.NewEncoder(&buf).Encode(req) //nolint:errcheck
			resp, err := http.Post(ts.URL+"/v1/mutations", "application/json", &buf)
			if err == nil {
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
			}
		})
	}
	// Query workers.
	worker(func(i int) {
		resp, err := http.Get(fmt.Sprintf("%s/v1/placement/%d", ts.URL, i%220))
		if err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
		}
	})
	worker(func(i int) {
		path := "/v1/stats"
		if i%2 == 0 {
			path = "/metrics"
		}
		resp, err := http.Get(ts.URL + path)
		if err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
		}
	})
	// Checkpoint worker.
	worker(func(i int) {
		s.Checkpoint("") //nolint:errcheck
		time.Sleep(time.Millisecond)
	})

	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
	s.Stop()

	st := s.Stats()
	if st.Vertices == 0 || st.Ticks == 0 {
		t.Fatalf("no progress under concurrency: %+v", st)
	}
	if !partition.WithinCapacities(asnOf(s), capsOf(s)) {
		t.Fatal("capacity invariant violated under concurrency")
	}
}

// TestCheckpointRestartDeterminism drives two daemons through the same
// enqueue/tick schedule; one is checkpointed to disk and replaced by a
// Restore mid-stream. Placements must be byte-identical afterwards.
func TestCheckpointRestartDeterminism(t *testing.T) {
	path := filepath.Join(t.TempDir(), "apartd.snap")
	schedule := func() []graph.Batch {
		rng := rand.New(rand.NewSource(13))
		var ticks []graph.Batch
		ticks = append(ticks, ringBatch(60))
		for i := 0; i < 6; i++ {
			var b graph.Batch
			for j := 0; j < 25; j++ {
				switch rng.Intn(4) {
				case 0, 1, 2:
					b = append(b, graph.Mutation{Kind: graph.MutAddEdge,
						U: graph.VertexID(rng.Intn(80)), V: graph.VertexID(rng.Intn(80))})
				case 3:
					b = append(b, graph.Mutation{Kind: graph.MutRemoveVertex,
						U: graph.VertexID(rng.Intn(80))})
				}
			}
			ticks = append(ticks, b)
		}
		return ticks
	}

	run := func(restart bool) *Server {
		s := testServer(t, func(c *Config) { c.CheckpointPath = path })
		for i, b := range schedule() {
			s.Enqueue(b)
			s.TickNow()
			if restart && i == 3 {
				if _, err := s.Checkpoint(path); err != nil {
					t.Fatal(err)
				}
				snap, err := snapshot.Load(path)
				if err != nil {
					t.Fatal(err)
				}
				s2, err := Restore(s.cfg, snap)
				if err != nil {
					t.Fatal(err)
				}
				s = s2
			}
		}
		return s
	}

	a, b := run(false), run(true)
	ta, tb := asnOf(a).Table(), asnOf(b).Table()
	if len(ta) != len(tb) {
		t.Fatalf("table sizes diverged: %d vs %d", len(ta), len(tb))
	}
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("placement diverged at slot %d: %d vs %d", i, ta[i], tb[i])
		}
	}
	if a.Stats().Iteration != b.Stats().Iteration {
		t.Fatalf("iterations diverged: %d vs %d", a.Stats().Iteration, b.Stats().Iteration)
	}
	// Restored counters continue from the snapshot.
	if b.Stats().Ticks != a.Stats().Ticks {
		t.Fatalf("tick counters diverged: %d vs %d", b.Stats().Ticks, a.Stats().Ticks)
	}
}

func TestPeriodicCheckpointAndDrain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "periodic.snap")
	s := testServer(t, func(c *Config) {
		c.CheckpointPath = path
		c.CheckpointEvery = 2
	})
	s.Enqueue(ringBatch(30))
	r1 := s.TickNow()
	r2 := s.TickNow()
	if r1.Checkpoint || !r2.Checkpoint {
		t.Fatalf("periodic checkpoint: tick1=%v tick2=%v, want only tick2", r1.Checkpoint, r2.Checkpoint)
	}
	if _, err := snapshot.Load(path); err != nil {
		t.Fatalf("periodic checkpoint unreadable: %v", err)
	}

	// Drain: pending mutations are absorbed, a final snapshot lands.
	before := s.checkpoints.Load()
	s.Enqueue(ringBatch(35))
	if _, err := s.Drain(50); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n, _ := s.PendingMutations(); n != 0 {
		t.Fatalf("%d mutations still pending after drain", n)
	}
	if !s.Stats().Converged {
		t.Fatal("not converged after drain")
	}
	if s.checkpoints.Load() <= before {
		t.Fatal("drain wrote no final checkpoint")
	}
	snap, err := snapshot.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Graph.NumVertices() != 35 {
		t.Fatalf("final snapshot has %d vertices, want 35", snap.Graph.NumVertices())
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := testServer(t, nil)
	s.Enqueue(ringBatch(20))
	s.TickNow()
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	body := string(raw)
	for _, want := range []string{
		"apartd_mutations_ingested_total 20",
		"apartd_ticks_total 1",
		"apartd_vertices 20",
		"apartd_examined_total",
		"apartd_migrations_total",
		"apartd_dirty_vertices",
		"apartd_ingest_lag_seconds",
		"apartd_partition_size{partition=\"0\"}",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, body)
		}
	}
}

// TestCheckpointEndpointConfinesPaths pins the security contract of
// POST /v1/checkpoint: a client may pick an alternate snapshot *name*
// inside the configured checkpoint directory, never an arbitrary
// filesystem location, and without a configured path the endpoint is
// disabled entirely.
func TestCheckpointEndpointConfinesPaths(t *testing.T) {
	dir := t.TempDir()
	s := testServer(t, func(c *Config) {
		c.CheckpointPath = filepath.Join(dir, "state.snap")
	})
	s.Enqueue(ringBatch(10))
	s.TickNow()
	ts := httptest.NewServer(s)
	defer ts.Close()

	// No body: configured path.
	if resp, raw := postJSON(t, ts, "/v1/checkpoint", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("default checkpoint status %d: %s", resp.StatusCode, raw)
	}
	// Bare file name: confined to the checkpoint directory.
	resp, raw := postJSON(t, ts, "/v1/checkpoint", map[string]string{"path": "alt.snap"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bare-name checkpoint status %d: %s", resp.StatusCode, raw)
	}
	if _, err := snapshot.Load(filepath.Join(dir, "alt.snap")); err != nil {
		t.Fatalf("alt snapshot unreadable: %v", err)
	}
	// Escapes must be rejected and must not write anything.
	for _, escape := range []string{"/etc/apartd-pwned", "../outside.snap", "sub/dir.snap"} {
		resp, raw := postJSON(t, ts, "/v1/checkpoint", map[string]string{"path": escape})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("escape %q: status %d, want 400: %s", escape, resp.StatusCode, raw)
		}
	}
	if _, err := os.Stat(filepath.Join(filepath.Dir(dir), "outside.snap")); err == nil {
		t.Fatal("traversal escape wrote a file outside the checkpoint directory")
	}

	// Without a configured path the endpoint refuses client paths too.
	s2 := testServer(t, nil)
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	if resp, _ := postJSON(t, ts2, "/v1/checkpoint", map[string]string{"path": "x.snap"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unconfigured daemon accepted a checkpoint path (status %d)", resp.StatusCode)
	}
}

func TestRestoreRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{K: 0, MaxStepsPerTick: 1}); err == nil {
		t.Fatal("accepted k=0")
	}
	if _, err := New(Config{K: 2, MaxStepsPerTick: 0}); err == nil {
		t.Fatal("accepted zero step budget")
	}
	if _, err := New(Config{K: 2, MaxStepsPerTick: 1, CheckpointEvery: 3}); err == nil {
		t.Fatal("accepted periodic checkpoints without a path")
	}
}

// TestCheckpointFoldsPendingHeat pins the checkpoint path's heat
// durability: reads sampled BETWEEN ticks (still sitting in the heat
// table's rings, not yet folded into the partitioner) must survive into
// the snapshot. The old path captured the partitioner as-is, so a
// checkpoint taken mid-interval silently discarded every read since the
// last tick — a restore then resumed with a colder heat view than the
// daemon it replaced.
func TestCheckpointFoldsPendingHeat(t *testing.T) {
	dir := t.TempDir()
	s := testServer(t, func(c *Config) {
		c.HeatRecord = true
		c.HeatSample = 1 // sample every read: the test traffic is tiny
		c.CheckpointPath = filepath.Join(dir, "heat.snap")
	})
	if _, ok := s.Enqueue(ringBatch(16)); !ok {
		t.Fatal("enqueue refused")
	}
	s.TickNow()

	// Reads land in the sampling rings; no tick runs before the
	// checkpoint, so only the checkpoint-time fold can preserve them.
	hot := graph.VertexID(3)
	for i := 0; i < 32; i++ {
		s.Placement(hot)
	}
	snap, err := s.Checkpoint("")
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Core.Heat) <= int(hot) {
		t.Fatalf("snapshot heat has %d slots, want > %d", len(snap.Core.Heat), hot)
	}
	if got := snap.Core.Heat[hot]; got <= 0 {
		t.Fatalf("snapshot heat[%d] = %g, want > 0: between-tick reads were dropped", hot, got)
	}
	if got := snap.Core.Heat[9]; got != 0 {
		t.Fatalf("snapshot heat[9] = %g, want 0 (never read)", got)
	}

	// A restored daemon resumes with the folded heat, not a cold table.
	s2, err := Restore(s.cfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Stop()
	if snap2, err := s2.Checkpoint(""); err != nil {
		t.Fatal(err)
	} else if got := snap2.Core.Heat[hot]; got <= 0 {
		t.Fatalf("restored heat[%d] = %g, want > 0", hot, got)
	}
}
