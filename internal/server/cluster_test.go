package server

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"xdgp/internal/cluster"
	"xdgp/internal/graph"
	"xdgp/internal/snapshot"
)

// synthBatch derives a deterministic mutation batch from a tick index:
// mostly edge adds over a 400-slot ID space, with occasional removes so
// the cluster path sees the full mutation vocabulary.
func synthBatch(step, n int) graph.Batch {
	r := uint64(step)*2654435761 + 12345
	next := func(m uint64) uint64 {
		r = r*6364136223846793005 + 1442695040888963407
		return (r >> 33) % m
	}
	b := make(graph.Batch, 0, n)
	for i := 0; i < n; i++ {
		u := graph.VertexID(next(400))
		v := graph.VertexID(next(400))
		if u == v {
			continue
		}
		kind := graph.MutAddEdge
		if next(10) == 0 {
			kind = graph.MutRemoveEdge
		}
		b = append(b, graph.Mutation{Kind: kind, U: u, V: v})
	}
	return b
}

// newClusterServers builds n manual-tick daemons sharing one in-process
// exchange, plus the mem cluster itself (caller closes it).
func newClusterServers(t *testing.T, n int, mutate func(i int, c *Config)) ([]*Server, *cluster.MemCluster) {
	t.Helper()
	mem, err := cluster.NewMemCluster(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mem.Close() }) //nolint:errcheck // teardown
	srvs := make([]*Server, n)
	for i := range srvs {
		ex, err := mem.Shard(i)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(5, 21)
		cfg.TickEvery = 0 // manual tick mode
		cfg.Exchange = ex
		cfg.ClusterShard = i
		cfg.ClusterShards = n
		if mutate != nil {
			mutate(i, &cfg)
		}
		if srvs[i], err = New(cfg); err != nil {
			t.Fatal(err)
		}
	}
	return srvs, mem
}

// tickAll runs one tick on every server concurrently (cluster rounds are
// barriers — ticking them sequentially would deadlock) and returns the
// per-shard results.
func tickAll(t *testing.T, srvs []*Server) []TickResult {
	t.Helper()
	results := make([]TickResult, len(srvs))
	var wg sync.WaitGroup
	for i, s := range srvs {
		wg.Add(1)
		go func(i int, s *Server) {
			defer wg.Done()
			results[i] = s.TickNow()
		}(i, s)
	}
	wg.Wait()
	for i, s := range srvs {
		if err := s.ClusterError(); err != nil {
			t.Fatalf("shard %d cluster error: %v", i, err)
		}
		_ = i
	}
	return results
}

// routingTable snapshots a server's published placements for the whole
// slot space.
func routingTable(s *Server, slots int) []int {
	snap := s.routing.Load()
	out := make([]int, slots)
	for v := 0; v < slots; v++ {
		out[v] = int(snap.Table.Of(graph.VertexID(v)))
	}
	return out
}

func tablesEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestClusterServerMatchesSingleProcess is the tentpole's contract at
// the daemon layer: N cooperating apartd processes (in-process exchange,
// manual ticks) produce byte-identical placements — tick for tick — to
// one daemon running Parallelism = N on the same seed and stream.
func TestClusterServerMatchesSingleProcess(t *testing.T) {
	const n = 3
	srvs, _ := newClusterServers(t, n, nil)

	refCfg := DefaultConfig(5, 21)
	refCfg.TickEvery = 0
	refCfg.Parallelism = n
	ref, err := New(refCfg)
	if err != nil {
		t.Fatal(err)
	}

	for tick := 0; tick < 25; tick++ {
		b := synthBatch(tick, 60)
		// The batch lands on a rotating shard: the exchange, not the
		// local queue, is what makes it reach every replica.
		if _, ok := srvs[tick%n].EnqueueShard(b, 0); !ok {
			t.Fatalf("tick %d: enqueue rejected", tick)
		}
		if _, ok := ref.EnqueueShard(b, 0); !ok {
			t.Fatalf("tick %d: ref enqueue rejected", tick)
		}

		want := ref.TickNow()
		results := tickAll(t, srvs)

		refTable := routingTable(ref, 400)
		for i, got := range results {
			if got != want {
				t.Fatalf("tick %d shard %d: result %+v, single-process %+v", tick, i, got, want)
			}
			if !tablesEqual(routingTable(srvs[i], 400), refTable) {
				t.Fatalf("tick %d shard %d: placements diverge from single-process", tick, i)
			}
		}
		for i := 1; i < n; i++ {
			if srvs[i].clusterHash.Load() != srvs[0].clusterHash.Load() {
				t.Fatalf("tick %d: shard %d hash differs from shard 0", tick, i)
			}
		}
	}
	if st := srvs[1].Stats(); st.Cluster == nil || st.Cluster.Shard != 1 || st.Cluster.Shards != n ||
		st.Cluster.Rounds == 0 || st.Cluster.Error != "" {
		t.Fatalf("cluster stats block: %+v", srvs[1].Stats().Cluster)
	}
}

// TestClusterServerShardLossAndRejoin kills one shard after a
// checkpoint, lets the survivors keep ingesting and ticking (they block
// on the barrier but keep serving reads), then restores the dead shard
// from its stale checkpoint: journal replay must walk it through every
// missed round back to byte-identical state, after which live rounds
// resume for everyone.
func TestClusterServerShardLossAndRejoin(t *testing.T) {
	const (
		n         = 3
		ckptTick  = 4  // shard 2 checkpoints after this tick...
		crashTick = 9  // ...and dies after this one
		lastTick  = 14 // survivors push on through this tick
	)
	ckptPath := filepath.Join(t.TempDir(), "shard2.snap")
	srvs, mem := newClusterServers(t, n, func(i int, c *Config) {
		if i == 2 {
			c.CheckpointPath = ckptPath
		}
	})

	for tick := 0; tick <= crashTick; tick++ {
		if _, ok := srvs[0].EnqueueShard(synthBatch(tick, 60), 0); !ok {
			t.Fatalf("tick %d: enqueue rejected", tick)
		}
		tickAll(t, srvs)
		if tick == ckptTick {
			if _, err := srvs[2].Checkpoint(""); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Shard 2 crashes (we simply stop ticking it). Survivors continue:
	// their ticks block on the barrier until the replacement catches up,
	// so they run in the background.
	surv := make(chan error, 2)
	for s := 0; s < 2; s++ {
		go func(s int) {
			for tick := crashTick + 1; tick <= lastTick; tick++ {
				if s == 0 {
					if _, ok := srvs[0].EnqueueShard(synthBatch(tick, 60), 0); !ok {
						surv <- fmt.Errorf("tick %d: enqueue rejected", tick)
						return
					}
				}
				srvs[s].TickNow()
				if err := srvs[s].ClusterError(); err != nil {
					surv <- fmt.Errorf("shard %d: %w", s, err)
					return
				}
			}
			surv <- nil
		}(s)
	}

	// A survivor keeps answering reads from its published snapshot while
	// blocked on the barrier.
	if _, ok := srvs[0].Placement(graph.VertexID(1)); !ok {
		t.Fatal("survivor stopped serving reads")
	}

	// Restore the replacement from the stale checkpoint with a fresh
	// handle on the same exchange. It must re-run ticks ckptTick+1..last:
	// the first batch of those replay from the journal (skipping its own
	// empty queue), the rest complete the survivors' live barriers.
	snap, err := snapshot.Load(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := mem.Shard(2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(5, 21)
	cfg.TickEvery = 0
	cfg.Exchange = ex
	cfg.ClusterShard = 2
	cfg.ClusterShards = n
	reborn, err := Restore(cfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	for tick := ckptTick + 1; tick <= lastTick; tick++ {
		reborn.TickNow()
		if err := reborn.ClusterError(); err != nil {
			t.Fatalf("reborn tick %d: %v", tick, err)
		}
	}
	for s := 0; s < 2; s++ {
		if err := <-surv; err != nil {
			t.Fatal(err)
		}
	}

	if got := reborn.Stats().Cluster.Replayed; got == 0 {
		t.Fatal("restored shard replayed no rounds — the journal path never ran")
	}
	want := routingTable(srvs[0], 400)
	if !tablesEqual(routingTable(reborn, 400), want) {
		t.Fatal("restored shard's placements diverge from the survivors")
	}
	if reborn.clusterHash.Load() != srvs[0].clusterHash.Load() {
		t.Fatalf("restored shard hash %016x != survivor %016x",
			reborn.clusterHash.Load(), srvs[0].clusterHash.Load())
	}
}

// TestClusterConfigValidation pins the misconfiguration guardrails.
func TestClusterConfigValidation(t *testing.T) {
	mem, err := cluster.NewMemCluster(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close() //nolint:errcheck // teardown
	ex, _ := mem.Shard(0)

	bad := []func(c *Config){
		func(c *Config) { c.Exchange = nil; c.ClusterShards = 2 },            // cluster fields without exchange
		func(c *Config) { c.ClusterShards = 1; c.ClusterShard = 0 },          // too few shards
		func(c *Config) { c.ClusterShard = 5 },                               // shard out of range
		func(c *Config) { c.WorkloadWeight = 0.5 },                           // workload objective forbidden
		func(c *Config) { c.Parallelism = 7 },                                // parallelism not pinned to shards
		func(c *Config) { c.MaxPending = graph.MaxWireBatch + 1 },            // batch cannot fit a round
		func(c *Config) { c.K = 1; c.ClusterShard = 0; c.ClusterShards = 2 }, // k too small
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(5, 3)
		cfg.Exchange = ex
		cfg.ClusterShard = 0
		cfg.ClusterShards = 2
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Fatalf("case %d: invalid cluster config accepted", i)
		}
	}

	// A cluster checkpoint refuses to restore single-process or under a
	// different identity.
	snap := &snapshot.Snapshot{Cluster: &snapshot.ClusterIdentity{ShardID: 1, NumShards: 2}}
	if err := restoreClusterIdentity(&Config{}, snap); err == nil {
		t.Fatal("clustered snapshot accepted for single-process restore")
	}
	cfg := Config{Exchange: ex, ClusterShard: 0, ClusterShards: 2}
	if err := restoreClusterIdentity(&cfg, snap); err == nil {
		t.Fatal("snapshot restored under the wrong shard identity")
	}
	if err := restoreClusterIdentity(&cfg, &snapshot.Snapshot{}); err == nil {
		t.Fatal("single-process snapshot accepted as a cluster shard seed")
	}
}
