// Package server implements the streaming partition daemon behind
// cmd/apartd: a long-lived service that ingests graph mutations over
// HTTP/JSON, coalesces them into graph.Batches on a configurable tick,
// drives the incremental core.Partitioner re-adaptation loop between
// ticks, and answers placement and statistics queries while the stream
// keeps flowing — the serving form the paper's systems (xDGP-style
// partitioners embedded in near-real-time graph processing) assume.
//
// Concurrency model: ingestion and adaptation never share a lock.
// Ingest (JSON POST /v1/mutations or the binary frame plane) appends to
// one of several sharded pending queues — each producer sticks to a
// shard, so per-producer order is preserved while concurrent producers
// never contend on one mutex — bounded by MaxPending (excess batches are
// rejected with backpressure, not buffered). The tick loop swaps the
// shard queues out, applies them and runs heuristic iterations under the
// state lock, held per-iteration so placement queries (read lock)
// interleave between iterations rather than waiting out a whole tick.
// Checkpoints capture under the state lock (pending heat samples fold
// into the partitioner first, so no sampled read is lost between ticks)
// and write to disk outside any lock.
package server

import (
	crand "crypto/rand"
	"encoding/hex"
	"fmt"
	"math"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"xdgp/internal/cluster"
	"xdgp/internal/core"
	"xdgp/internal/graph"
	"xdgp/internal/heat"
	"xdgp/internal/partition"
	"xdgp/internal/snapshot"
)

// Config parameterises the daemon. The zero value is invalid; use
// DefaultConfig and adjust.
type Config struct {
	// K is the number of partitions (fixed for the daemon's lifetime).
	K int
	// Seed drives every random choice; together with the stream it
	// determines the assignment byte-for-byte.
	Seed int64
	// S, CapacityFactor, Parallelism and Incremental are the heuristic
	// knobs, with core.Config semantics. Incremental defaults on in
	// DefaultConfig: a long-lived daemon lives in the steady state the
	// active-set scheduler is built for.
	S              float64
	CapacityFactor float64
	Parallelism    int
	Incremental    bool
	// TickEvery is the mutation-coalescing period of the background
	// loop started by Start. Tests drive ticks directly via TickNow.
	TickEvery time.Duration
	// MaxStepsPerTick bounds the heuristic iterations run to absorb one
	// tick's batch; convergence usually stops a tick much earlier.
	MaxStepsPerTick int
	// ConvergenceWindow is the quiet-iteration window after which the
	// partitioner counts as converged (the paper uses 30).
	ConvergenceWindow int
	// CheckpointPath, when set, is where POST /v1/checkpoint (with no
	// explicit path), the periodic checkpointer and the shutdown drain
	// write snapshots.
	CheckpointPath string
	// CheckpointEvery auto-checkpoints every n ticks (0 disables).
	// Requires CheckpointPath.
	CheckpointEvery int
	// WatchRing is how many recent epoch diffs the GET /v1/watch feed
	// retains for late or reconnecting consumers; a consumer asking for
	// older epochs gets a resync event instead. Bounds the feed's memory
	// regardless of consumer speed. 0 means DefaultWatchRing.
	WatchRing int
	// MaxPending caps the total ingest queue (mutations awaiting a tick,
	// summed across shards). A batch that would exceed the cap is
	// rejected whole — HTTP 429 with a Retry-After hint, a backpressure
	// NAK on the binary plane — so a producer outrunning the tick drain
	// bounds the daemon's memory instead of growing it to OOM.
	// 0 means DefaultMaxPending; negative disables the cap.
	MaxPending int
	// IngestShards is the number of independent ingest queues. Each
	// connection (binary) or client (JSON, by remote address) sticks to
	// one shard, so per-producer mutation order is preserved while
	// concurrent producers stop contending on one mutex. 0 means one
	// shard per CPU (capped at MaxIngestShards).
	IngestShards int
	// WatchWriteTimeout bounds each event write on a GET /v1/watch
	// stream. A consumer that cannot take an event within the deadline
	// is dropped (counted in apartd_watch_dropped_total) instead of
	// wedging its handler goroutine on a dead TCP peer forever.
	// 0 means DefaultWatchWriteTimeout; negative disables the deadline.
	WatchWriteTimeout time.Duration
	// BinaryIdleTimeout disconnects a binary-plane connection silent for
	// this long (the producer redials). 0 means
	// DefaultBinaryIdleTimeout; negative disables the deadline.
	BinaryIdleTimeout time.Duration
	// WorkloadWeight enables the workload-aware migration objective
	// (core.Config.WorkloadWeight): read traffic observed by the serving
	// plane is folded into the partitioner every tick and weights each
	// neighbour's vote by its decayed heat. 0 (the default) keeps the
	// paper-exact topology-only objective, byte-identical to previous
	// releases. Setting it > 0 also turns heat recording on.
	WorkloadWeight float64
	// HeatHalfLife is the half-life of the read-heat accumulator: after
	// this much idle time a vertex's heat halves. The decay is applied
	// per tick (factor 0.5^(TickEvery/HeatHalfLife)), so the accumulator
	// is deterministic in ticks, not wall-clock. 0 means
	// DefaultHeatHalfLife.
	HeatHalfLife time.Duration
	// HeatSample is the read-sampling interval: one in this many reads
	// per heat shard records its vertex ID (rounded down to a power of
	// two). 0 means heat.DefaultSample; 1 records every read (tests).
	HeatSample int
	// HeatRecord forces heat recording on even with WorkloadWeight == 0,
	// so operators can watch apartd_heat_* metrics before enabling the
	// objective. Recording is passive: WorkloadWeight == 0 assignments
	// stay byte-identical with it on or off.
	HeatRecord bool
	// Exchange, when non-nil, puts the daemon in cluster mode: it is
	// shard ClusterShard of ClusterShards replicas of one deterministic
	// state machine, and every tick runs through barrier rounds on this
	// exchange (see internal/cluster and cluster.go). The daemon never
	// closes the Exchange — the caller that built it owns its lifetime,
	// and must keep it open across Drain so the final rounds complete.
	// Cluster mode pins Parallelism to ClusterShards and rejects
	// WorkloadWeight > 0 (read heat is shard-local, so a workload term
	// would diverge the replicas).
	Exchange cluster.Exchange
	// ClusterShard is this replica's shard index in [0, ClusterShards).
	ClusterShard int
	// ClusterShards is the fixed cluster size (≥ 2). Changing it — or
	// the seed, or K — requires a fresh cluster: the geometry is part of
	// the deterministic contract.
	ClusterShards int
}

// DefaultMaxPending is the ingest-queue cap used when Config.MaxPending
// is zero: one million mutations ≈ a few hundred seconds of headroom at
// typical tick drain rates, ~16 MiB resident worst case.
const DefaultMaxPending = 1 << 20

// MaxIngestShards caps the shard count resolved from IngestShards=0 —
// beyond this, per-shard batches get too small for the tick drain to
// amortise.
const MaxIngestShards = 32

// DefaultWatchWriteTimeout is the per-event write deadline used when
// Config.WatchWriteTimeout is zero. 30 s tolerates long consumer GC
// pauses while still reclaiming handlers from dead peers.
const DefaultWatchWriteTimeout = 30 * time.Second

// DefaultHeatHalfLife is the read-heat half-life used when
// Config.HeatHalfLife is zero: 30 s forgets a flash crowd within a few
// minutes of it moving on while smoothing over single-tick read bursts.
const DefaultHeatHalfLife = 30 * time.Second

// DefaultConfig returns the daemon's standard setting: the paper's
// heuristic parameters, incremental scheduling, a 250 ms coalescing tick
// and a per-tick iteration budget of ConvergenceWindow+10 (enough to
// absorb a batch and prove quiescence).
func DefaultConfig(k int, seed int64) Config {
	return Config{
		K:                 k,
		Seed:              seed,
		S:                 0.5,
		CapacityFactor:    1.10,
		Parallelism:       1,
		Incremental:       true,
		TickEvery:         250 * time.Millisecond,
		MaxStepsPerTick:   40,
		ConvergenceWindow: 30,
	}
}

func (c Config) validate() error {
	if c.K < 1 {
		return fmt.Errorf("server: K must be ≥ 1, got %d", c.K)
	}
	if c.MaxStepsPerTick < 1 {
		return fmt.Errorf("server: MaxStepsPerTick must be ≥ 1, got %d", c.MaxStepsPerTick)
	}
	if c.CheckpointEvery > 0 && c.CheckpointPath == "" {
		return fmt.Errorf("server: CheckpointEvery=%d requires CheckpointPath", c.CheckpointEvery)
	}
	if c.WatchRing < 0 {
		return fmt.Errorf("server: WatchRing must be ≥ 0, got %d", c.WatchRing)
	}
	if c.IngestShards < 0 {
		return fmt.Errorf("server: IngestShards must be ≥ 0, got %d", c.IngestShards)
	}
	if c.WorkloadWeight < 0 {
		return fmt.Errorf("server: WorkloadWeight must be ≥ 0, got %g", c.WorkloadWeight)
	}
	if c.HeatHalfLife < 0 {
		return fmt.Errorf("server: HeatHalfLife must be ≥ 0, got %v", c.HeatHalfLife)
	}
	if c.HeatSample < 0 {
		return fmt.Errorf("server: HeatSample must be ≥ 0, got %d", c.HeatSample)
	}
	if c.Exchange == nil {
		if c.ClusterShards != 0 || c.ClusterShard != 0 {
			return fmt.Errorf("server: ClusterShard/ClusterShards require an Exchange")
		}
		return nil
	}
	if c.ClusterShards < 2 {
		return fmt.Errorf("server: cluster mode needs ClusterShards ≥ 2, got %d", c.ClusterShards)
	}
	if c.ClusterShard < 0 || c.ClusterShard >= c.ClusterShards {
		return fmt.Errorf("server: ClusterShard %d outside [0, %d)", c.ClusterShard, c.ClusterShards)
	}
	if c.K < 2 {
		return fmt.Errorf("server: cluster mode needs K ≥ 2, got %d", c.K)
	}
	if c.WorkloadWeight != 0 {
		return fmt.Errorf("server: the workload objective is unavailable in cluster mode (heat is shard-local; replicas would diverge)")
	}
	if c.Parallelism != 0 && c.Parallelism != 1 && c.Parallelism != c.ClusterShards {
		return fmt.Errorf("server: cluster mode pins Parallelism to ClusterShards (%d), got %d", c.ClusterShards, c.Parallelism)
	}
	if c.MaxPending < 0 || c.MaxPending > graph.MaxWireBatch {
		return fmt.Errorf("server: cluster mode needs 0 ≤ MaxPending ≤ %d (a tick's batch must fit one round payload), got %d",
			graph.MaxWireBatch, c.MaxPending)
	}
	return nil
}

func (c Config) coreConfig() core.Config {
	cc := core.DefaultConfig(c.K, c.Seed)
	cc.S = c.S
	cc.CapacityFactor = c.CapacityFactor
	cc.Parallelism = c.Parallelism
	if c.Exchange != nil {
		// One RNG stream per cluster shard: replica i advances only
		// stream i, and the merged outcome equals one process running
		// Parallelism = ClusterShards (see cluster.go).
		cc.Parallelism = c.ClusterShards
	}
	cc.Incremental = c.Incremental
	cc.ConvergenceWindow = c.ConvergenceWindow
	cc.WorkloadWeight = c.WorkloadWeight
	cc.RecordEvery = 0
	cc.MaxIterations = math.MaxInt32 // Step-driven; Run's bound is unused
	return cc
}

// Server is the daemon state. Construct with New or Restore, serve its
// Handler, and either Start the background tick loop or drive TickNow
// directly.
type Server struct {
	cfg     Config
	coreCfg core.Config

	// mu guards the partitioner (graph + assignment + scheduler state).
	mu   sync.RWMutex
	part *core.Partitioner

	// The ingest plane: per-shard queues (each with its own mutex, never
	// held together with mu), a shared atomic occupancy counter that
	// enforces maxPending without taking any shard lock, and a
	// round-robin cursor for producers without a natural shard key.
	shards     []ingestShard
	maxPending int           // resolved cap (math.MaxInt when disabled)
	pendingN   atomic.Int64  // mutations queued across all shards
	enqueueRR  atomic.Uint32 // round-robin cursor for Enqueue

	// Monotonic counters, atomically updated, exported by /metrics.
	ingested     atomic.Uint64 // mutations accepted over HTTP
	rejected     atomic.Uint64 // mutations refused by the MaxPending cap
	applied      atomic.Uint64 // mutations that changed the graph
	ticks        atomic.Uint64 // coalescing ticks processed
	iterations   atomic.Uint64 // heuristic iterations executed
	examined     atomic.Uint64 // per-vertex decisions evaluated
	migrations   atomic.Uint64 // granted moves
	checkpoints  atomic.Uint64 // snapshots written
	ckptFailures atomic.Uint64 // periodic/drain checkpoint attempts that failed
	lastBatch    atomic.Int64  // size of the last coalesced batch
	lastCkptUnx  atomic.Int64  // unix seconds of the last checkpoint

	// The workload-heat plane: heatTable samples read traffic off the
	// lock-free lookup paths (heat.Record is wait-free; nil-safe when
	// recording never got enabled), heatBuf is the tick loop's reusable
	// drain buffer, heatDecay the per-tick decay factor derived from
	// HeatHalfLife/TickEvery. heatMaxBits/heatHot mirror the
	// accumulator's state for /metrics and /v1/stats.
	heatTable   *heat.Table
	heatBuf     []graph.VertexID
	heatDecay   float64
	heatFolds   atomic.Uint64 // tick-boundary folds executed
	heatSamples atomic.Uint64 // sampled reads folded into the partitioner
	heatMaxBits atomic.Uint64 // float64 bits of the accumulator maximum
	heatHot     atomic.Int64  // vertices with non-zero heat after the last fold

	// The serving plane: routing holds the current epoch snapshot (all
	// read endpoints load it with one atomic pointer read and never take
	// mu), hub fans epoch diffs out to /v1/watch consumers. Both are
	// written only by publishRouting, under mu.
	routing atomic.Pointer[RoutingSnapshot]
	hub     *watchHub

	// Serving-plane counters, atomically updated, exported by /metrics.
	publishes     atomic.Uint64 // routing snapshots published
	watchers      atomic.Int64  // currently connected watch streams
	watchEvents   atomic.Uint64 // diff lines written across all watchers
	watchResyncs  atomic.Uint64 // resync events sent to lagging watchers
	watchDropped  atomic.Uint64 // watch subscribers dropped on a write-deadline miss
	batchRequests atomic.Uint64 // POST /v1/placements requests served
	batchLookups  atomic.Uint64 // vertex lookups served by those requests

	// The binary ingest plane (binary.go): live connections tracked for
	// teardown, plus its own counters. binDraining flips once DrainBinary
	// begins — handlers then answer every further batch frame with a
	// shutdown NAK instead of enqueueing — and binDrainUntil is the drain
	// window's deadline (unix nanos).
	binMu         sync.Mutex
	binConns      map[net.Conn]struct{}
	binDraining   atomic.Bool
	binDrainUntil atomic.Int64
	binaryConns   atomic.Int64  // currently connected binary producers
	binaryFrames  atomic.Uint64 // batch frames accepted

	// instance identifies this process incarnation. Epochs are
	// per-process, so a consumer that resumes across a daemon restart
	// must not mistake the new process's epoch N for its own epoch N —
	// the instance token is what lets it tell (docs/REPLICATION.md).
	// Random, not persisted: a restart IS a new incarnation, even from
	// a checkpoint.
	instance string

	// Cluster mode (cluster.go). tickMu serializes whole ticks — cluster
	// rounds must never interleave, and a checkpoint taken between a
	// decide and its apply would capture advanced RNG streams without
	// the moves they produced — so TickNow and the public Checkpoint
	// both hold it for their full duration. clusterRounds is the highest
	// completed exchange round (persisted in checkpoints as the replay
	// watermark); clusterErr latches the first failure that poisoned
	// cluster mode.
	tickMu          sync.Mutex
	clusterRounds   atomic.Uint64
	clusterReplayed atomic.Uint64
	clusterWaitNs   atomic.Int64
	clusterHash     atomic.Uint64
	clusterErr      atomic.Pointer[clusterFault]

	mux      *http.ServeMux
	started  atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	loopDone chan struct{}
}

// New creates a daemon over an empty graph: every vertex it will ever
// serve arrives through the mutation stream.
func New(cfg Config) (*Server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	coreCfg := cfg.coreConfig()
	g := graph.NewUndirected(0)
	p, err := core.New(g, partition.NewAssignment(0, cfg.K), coreCfg)
	if err != nil {
		return nil, err
	}
	return newServer(cfg, coreCfg, p), nil
}

// Restore creates a daemon resuming from a snapshot: graph, assignment,
// convergence bookkeeping, scheduler frontier and RNG positions all
// continue exactly where the checkpointed daemon stopped. The snapshot's
// algorithm parameters override cfg's (K, Seed, S, CapacityFactor,
// Parallelism, Incremental, ConvergenceWindow) — a daemon cannot change
// the algorithm mid-stream without forfeiting determinism — while cfg's
// serving knobs (tick period, step budget, checkpoint policy) apply.
func Restore(cfg Config, snap *snapshot.Snapshot) (*Server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	coreCfg := snap.Params.Config()
	coreCfg.RecordEvery = 0
	p, err := snap.NewPartitioner()
	if err != nil {
		return nil, err
	}
	cfg.K = snap.Params.K
	cfg.Seed = snap.Params.Seed
	cfg.S = snap.Params.S
	cfg.CapacityFactor = snap.Params.CapacityFactor
	cfg.Parallelism = snap.Params.Parallelism
	cfg.Incremental = snap.Params.Incremental
	cfg.ConvergenceWindow = snap.Params.ConvergenceWindow
	cfg.WorkloadWeight = snap.Params.WorkloadWeight
	if err := restoreClusterIdentity(&cfg, snap); err != nil {
		return nil, err
	}
	s := newServer(cfg, coreCfg, p)
	if snap.Cluster != nil {
		s.clusterRounds.Store(snap.Cluster.RoundsCompleted)
	}
	s.ticks.Store(snap.Meta.Ticks)
	s.ingested.Store(snap.Meta.MutationsIngested)
	s.applied.Store(snap.Meta.MutationsApplied)
	return s, nil
}

func newServer(cfg Config, coreCfg core.Config, p *core.Partitioner) *Server {
	ring := cfg.WatchRing
	if ring == 0 {
		ring = DefaultWatchRing
	}
	maxPending := cfg.MaxPending
	switch {
	case maxPending == 0:
		maxPending = DefaultMaxPending
	case maxPending < 0:
		maxPending = math.MaxInt
	}
	nShards := cfg.IngestShards
	if nShards == 0 {
		nShards = runtime.GOMAXPROCS(0)
		if nShards > MaxIngestShards {
			nShards = MaxIngestShards
		}
	}
	s := &Server{
		cfg:        cfg,
		coreCfg:    coreCfg,
		part:       p,
		shards:     make([]ingestShard, nShards),
		maxPending: maxPending,
		heatTable:  heat.New(cfg.HeatSample),
		heatDecay:  heatDecayPerTick(cfg),
		hub:        newWatchHub(uint64(ring)),
		instance:   newInstanceToken(),
		stop:       make(chan struct{}),
		loopDone:   make(chan struct{}),
	}
	s.heatTable.SetRecording(cfg.WorkloadWeight > 0 || cfg.HeatRecord)
	s.publishInitialRouting()
	s.mux = s.routes()
	return s
}

// heatDecayPerTick derives the per-tick heat decay factor
// 0.5^(TickEvery/HeatHalfLife). The accumulator decays in tick units —
// deterministic for a fixed tick count — so the half-life is honoured at
// the configured tick rate, not against a wall clock.
func heatDecayPerTick(cfg Config) float64 {
	half := cfg.HeatHalfLife
	if half == 0 {
		half = DefaultHeatHalfLife
	}
	tick := cfg.TickEvery
	if tick <= 0 {
		tick = 250 * time.Millisecond // DefaultConfig's tick, for tests that never Start
	}
	return math.Exp2(-tick.Seconds() / half.Seconds())
}

// newInstanceToken draws a fresh process-incarnation identity. It is
// serving-plane metadata only — never part of the deterministic
// partitioner state — so real randomness here does not threaten the
// fixed-seed reproducibility contract.
func newInstanceToken() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; a
		// time-derived token still changes across restarts, which is the
		// only property consumers rely on.
		return fmt.Sprintf("t-%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// Instance returns this process incarnation's identity token. It is
// exposed to clients as the X-Apartd-Instance response header and the
// /v1/stats instance field; replicas compare it across requests to
// detect upstream restarts that an epoch check alone could miss.
func (s *Server) Instance() string { return s.instance }

// Config returns the serving configuration (after any snapshot
// overrides).
func (s *Server) Config() Config { return s.cfg }

// ingestShard is one independent ingest queue. Its mutex is never held
// together with the server's state lock, and shards never share cache
// lines under write contention in practice (each is touched by a stable
// subset of producers).
type ingestShard struct {
	mu          sync.Mutex
	pending     graph.Batch
	oldestUnixN int64 // UnixNano of the oldest pending mutation, 0 when empty
}

// Enqueue appends mutations to the pending queue consumed by the next
// tick, picking a shard round-robin. It never blocks on adaptation.
// Returns the total queue length after the append and whether the batch
// was accepted: ok=false means the MaxPending cap would be exceeded and
// NOTHING was enqueued — the producer should back off one tick and
// retry the same batch.
func (s *Server) Enqueue(b graph.Batch) (queued int, ok bool) {
	return s.EnqueueShard(b, s.enqueueRR.Add(1)-1)
}

// EnqueueShard is Enqueue onto an explicit shard (taken modulo the shard
// count). Producers with a natural stream identity — a binary-plane
// connection, a JSON client address — use a sticky shard so their own
// mutation order survives the sharded drain; ordering across different
// producers is unspecified, exactly as it already was under concurrent
// HTTP ingest.
func (s *Server) EnqueueShard(b graph.Batch, shard uint32) (queued int, ok bool) {
	if len(b) == 0 {
		return int(s.pendingN.Load()), true
	}
	// Reserve capacity first, against the atomic total: the cap check
	// never takes a shard lock, and concurrent reservations can only
	// under-fill, never overshoot.
	n := s.pendingN.Add(int64(len(b)))
	if n > int64(s.maxPending) {
		s.pendingN.Add(-int64(len(b)))
		s.rejected.Add(uint64(len(b)))
		return int(n - int64(len(b))), false
	}
	sh := &s.shards[int(shard)%len(s.shards)]
	sh.mu.Lock()
	if len(sh.pending) == 0 {
		sh.oldestUnixN = time.Now().UnixNano()
	}
	sh.pending = append(sh.pending, b...)
	sh.mu.Unlock()
	s.ingested.Add(uint64(len(b)))
	return int(n), true
}

// RetryAfterHint is the backoff the daemon suggests to a producer that
// hit the MaxPending cap: one tick period (the queue drains on ticks),
// never less than a millisecond.
func (s *Server) RetryAfterHint() time.Duration {
	if s.cfg.TickEvery > time.Millisecond {
		return s.cfg.TickEvery
	}
	return time.Millisecond
}

// PendingMutations returns the current ingest-queue length (across all
// shards) and the age of its oldest entry (zero when empty) — the
// daemon's ingest lag.
func (s *Server) PendingMutations() (n int, age time.Duration) {
	oldest := int64(0)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.pending)
		if len(sh.pending) > 0 && (oldest == 0 || sh.oldestUnixN < oldest) {
			oldest = sh.oldestUnixN
		}
		sh.mu.Unlock()
	}
	if oldest != 0 {
		age = time.Duration(time.Now().UnixNano() - oldest)
	}
	return n, age
}

// drainPending swaps out every shard's queue and concatenates them in
// shard order. Mutations from one producer stay in their enqueue order
// (a producer sticks to one shard); interleaving across producers is
// arbitrary, as it is for any concurrent ingest.
func (s *Server) drainPending() graph.Batch {
	var batch graph.Batch
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		p := sh.pending
		sh.pending = nil
		sh.oldestUnixN = 0
		sh.mu.Unlock()
		if len(p) == 0 {
			continue
		}
		if batch == nil {
			batch = p // single-busy-shard fast path: no copy
		} else {
			batch = append(batch, p...)
		}
	}
	s.pendingN.Add(-int64(len(batch)))
	return batch
}

// TickResult reports one coalescing tick. It is also the response body
// of POST /v1/tick in manual tick mode. In cluster mode BatchSize and
// Applied count the global merged batch (every shard's mutations), and
// MorePending reports queued mutations anywhere in the cluster.
type TickResult struct {
	BatchSize   int  `json:"batch_size"`   // mutations coalesced into this tick
	Applied     int  `json:"applied"`      // mutations that changed the graph
	Steps       int  `json:"steps"`        // heuristic iterations run
	Migrations  int  `json:"migrations"`   // moves granted across those iterations
	Examined    int  `json:"examined"`     // vertex decisions evaluated across those iterations
	Converged   bool `json:"converged"`    // partitioner quiescent after the tick
	Compacted   bool `json:"compacted"`    // adjacency arena folded between ticks
	Checkpoint  bool `json:"checkpoint"`   // periodic checkpoint written after the tick
	MorePending bool `json:"more_pending"` // cluster mode: mutations still queued on some shard
}

// TickNow runs one coalescing tick synchronously: swap out the pending
// batch, apply it, and run heuristic iterations until convergence or the
// per-tick budget. The background loop calls it on every TickEvery; tests,
// the drain path and POST /v1/tick (manual mode) call it directly. Ticks
// are serialized by tickMu: in cluster mode a tick is a sequence of
// barrier rounds that must not interleave with another tick's.
func (s *Server) TickNow() TickResult {
	s.tickMu.Lock()
	defer s.tickMu.Unlock()
	if s.cfg.Exchange != nil {
		return s.tickCluster()
	}
	batch := s.drainPending()

	var res TickResult
	res.BatchSize = len(batch)
	s.lastBatch.Store(int64(len(batch)))

	// Counter updates happen inside the same critical section as the
	// state change they describe, so a concurrent Checkpoint (read
	// lock) always captures Meta counters consistent with the graph.
	s.mu.Lock()
	if len(batch) > 0 {
		res.Applied = s.part.ApplyBatch(batch)
		s.applied.Add(uint64(res.Applied))
		// Freshly streamed vertices become routable before the first
		// adaptation step: the batch's placements are an epoch of their
		// own.
		s.publishRouting()
	}
	// Fold the tick's sampled read traffic into the partitioner's heat
	// accumulator (after the batch, so heat covers any slots it added).
	// With WorkloadWeight > 0 fresh samples re-open convergence — hot
	// neighbourhoods re-decide against the new heat; with the objective
	// off the fold only maintains the observability accumulator.
	s.foldHeatLocked()
	converged := s.part.Converged()
	s.mu.Unlock()

	// A converged partitioner with nothing new to absorb: an idle tick
	// costs two mutex operations and no iterations.
	for !converged && res.Steps < s.cfg.MaxStepsPerTick {
		s.mu.Lock()
		st := s.part.Step()
		converged = s.part.Converged()
		s.iterations.Add(1)
		s.migrations.Add(uint64(st.Migrations))
		s.examined.Add(uint64(st.Examined))
		s.mu.Unlock()
		res.Steps++
		res.Migrations += st.Migrations
		res.Examined += st.Examined
	}
	res.Converged = converged

	// Between-tick housekeeping: fold the adjacency overlay back into the
	// CSR arena once it outgrows the policy threshold, off the ingest and
	// query paths. Mutations also self-compact at the same deterministic
	// threshold, so this call only moves work to a quiet point; it never
	// changes what the heuristic computes (neighbourhood counts are
	// order-independent), and checkpoints taken mid-overlay serialize the
	// overlay exactly either way.
	s.mu.Lock()
	// Publish the tick's adaptation outcome as one epoch: every migration
	// granted across the step loop above, folded into a single snapshot
	// swap and one watch diff.
	s.publishRouting()
	if s.part.Graph().MaybeCompact() {
		res.Compacted = true
	}
	s.mu.Unlock()

	tick := s.ticks.Add(1)

	if s.cfg.CheckpointEvery > 0 && tick%uint64(s.cfg.CheckpointEvery) == 0 {
		// checkpoint, not Checkpoint: the tick already holds tickMu.
		if _, err := s.checkpoint(s.cfg.CheckpointPath); err == nil {
			res.Checkpoint = true
		} else {
			s.ckptFailures.Add(1)
		}
	}
	return res
}

// foldHeatLocked drains the heat table and folds the samples into the
// partitioner. Caller holds mu. A no-op until recording is enabled; once
// it is, every tick folds (decay advances even through read-silent
// ticks, so heat cools when traffic stops).
func (s *Server) foldHeatLocked() {
	if !s.heatTable.Recording() {
		return
	}
	s.heatBuf = s.heatTable.Drain(s.heatBuf[:0])
	max, hot := s.part.FoldHeat(s.heatDecay, s.heatBuf, float64(s.heatTable.Sample()))
	s.heatFolds.Add(1)
	s.heatSamples.Add(uint64(len(s.heatBuf)))
	s.heatMaxBits.Store(math.Float64bits(max))
	s.heatHot.Store(int64(hot))
}

// foldHeatPendingLocked folds samples still sitting in the heat rings
// into the partitioner's accumulator at full weight WITHOUT advancing
// the decay clock (decay factor 1.0) — heat decays once per tick, and a
// checkpoint between ticks must not insert an extra decay step. Without
// this fold a checkpoint would silently discard every read sampled since
// the last tick boundary: Drain on the heat table is destructive, so the
// rings' contents exist nowhere else, yet the snapshot format persists
// heat. Caller holds mu (write).
func (s *Server) foldHeatPendingLocked() {
	if !s.heatTable.Recording() {
		return
	}
	s.heatBuf = s.heatTable.Drain(s.heatBuf[:0])
	if len(s.heatBuf) == 0 {
		return
	}
	max, hot := s.part.FoldHeat(1.0, s.heatBuf, float64(s.heatTable.Sample()))
	s.heatFolds.Add(1)
	s.heatSamples.Add(uint64(len(s.heatBuf)))
	s.heatMaxBits.Store(math.Float64bits(max))
	s.heatHot.Store(int64(hot))
}

// RecordRead notes one serving-plane read of v in the heat table. It is
// called on every placement answered — single, batch and replica page
// lookups — and is wait-free (one atomic add when recording, one atomic
// load when not), preserving the lock-free read path's latency.
func (s *Server) RecordRead(v graph.VertexID) { s.heatTable.Record(v) }

// Checkpoint captures the full daemon state and atomically writes it to
// path (cfg.CheckpointPath when path is empty). Safe to call while
// serving: capture holds the state lock (write — pending heat samples
// are folded into the partitioner first, so a between-tick checkpoint
// loses no sampled reads), the file write happens outside all locks.
// It serializes against whole ticks (tickMu): in cluster mode a capture
// between a round's decide and apply would snapshot advanced RNG
// streams without the moves they produced, which could never replay.
func (s *Server) Checkpoint(path string) (*snapshot.Snapshot, error) {
	s.tickMu.Lock()
	defer s.tickMu.Unlock()
	return s.checkpoint(path)
}

// checkpoint is Checkpoint's body; callers already holding tickMu (the
// tick loop's periodic checkpoint) use it directly.
func (s *Server) checkpoint(path string) (*snapshot.Snapshot, error) {
	if path == "" {
		path = s.cfg.CheckpointPath
	}
	if path == "" {
		return nil, fmt.Errorf("server: no checkpoint path configured")
	}
	s.mu.Lock()
	s.foldHeatPendingLocked()
	// Counters are read under the same lock that freezes the partitioner,
	// so the snapshot's Meta always agrees with its captured graph (tick
	// mutations update both inside the write-lock window).
	meta := snapshot.Meta{
		Ticks:             s.ticks.Load(),
		MutationsIngested: s.ingested.Load(),
		MutationsApplied:  s.applied.Load(),
		CreatedUnix:       time.Now().Unix(),
	}
	snap, err := snapshot.Capture(s.part, s.coreCfg, meta)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if s.cfg.Exchange != nil {
		// The replay watermark is consistent with the captured state:
		// tickMu guarantees no round completed since the capture above.
		snap.Cluster = &snapshot.ClusterIdentity{
			ShardID:         uint32(s.cfg.ClusterShard),
			NumShards:       uint32(s.cfg.ClusterShards),
			RoundsCompleted: s.clusterRounds.Load(),
		}
	}
	if err := snapshot.Save(path, snap); err != nil {
		return nil, err
	}
	s.checkpoints.Add(1)
	s.lastCkptUnx.Store(meta.CreatedUnix)
	return snap, nil
}

// Start launches the background tick loop. Stop (or Drain) terminates
// it. Calling Start twice is a no-op. With TickEvery ≤ 0 the daemon runs
// in manual tick mode: no loop starts and POST /v1/tick (or TickNow)
// drives every tick — the mode cluster tests and the smoke harness use
// to run all shards' barrier rounds in lockstep.
func (s *Server) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	if s.cfg.TickEvery <= 0 {
		close(s.loopDone)
		return
	}
	go func() {
		defer close(s.loopDone)
		ticker := time.NewTicker(s.cfg.TickEvery)
		defer ticker.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-ticker.C:
				s.TickNow()
			}
		}
	}()
}

// Stop terminates the background tick loop and waits for it to exit,
// then disconnects any binary-plane producers (their listener, owned by
// the caller, must be closed separately). Idempotent; a server that
// never Started returns after the teardown.
func (s *Server) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	if s.started.Load() {
		<-s.loopDone
	}
	s.CloseBinary()
}

// Drain performs the graceful-shutdown sequence: stop the tick loop,
// absorb every pending mutation (ticking until the queue is empty and
// the partitioner converges or maxTicks elapse), and write a final
// checkpoint when one is configured. It returns the number of drain
// ticks executed and the final checkpoint's error — a failed final
// snapshot must surface to the operator (data since the last good
// checkpoint would otherwise be silently unrecoverable).
func (s *Server) Drain(maxTicks int) (int, error) {
	// Answer the binary plane's in-flight frames before anything closes:
	// already-ACKed batches sit in the ingest queue (absorbed by the drain
	// ticks below), later frames get an explicit shutdown NAK. Stop's
	// force-close then finds no connections left.
	s.DrainBinary(0)
	s.Stop()
	n := 0
	for ; n < maxTicks; n++ {
		res := s.TickNow()
		pending, _ := s.PendingMutations()
		if s.cfg.Exchange != nil {
			// Draining is cluster-wide: keep ticking while any shard
			// reports queued mutations. A poisoned cluster cannot make
			// progress — stop burning no-op ticks and checkpoint as-is.
			if s.ClusterError() != nil {
				break
			}
			if !res.MorePending && pending == 0 && res.Converged {
				n++
				break
			}
			continue
		}
		if pending == 0 && res.Converged {
			n++
			break
		}
	}
	if s.cfg.CheckpointPath != "" {
		if _, err := s.Checkpoint(s.cfg.CheckpointPath); err != nil {
			s.ckptFailures.Add(1)
			return n, fmt.Errorf("final checkpoint: %w", err)
		}
	}
	return n, nil
}

// Stats is the point-in-time summary served by GET /v1/stats.
type Stats struct {
	// Instance is the process-incarnation token (see Server.Instance);
	// RoutingEpoch is the epoch of the currently published routing
	// snapshot. Together they let a replica decide cheaply whether its
	// upstream is still the process it bootstrapped from and how far
	// behind it is running.
	Instance       string  `json:"instance"`
	RoutingEpoch   uint64  `json:"routing_epoch"`
	Vertices       int     `json:"vertices"`
	Edges          int     `json:"edges"`
	K              int     `json:"k"`
	PartitionSizes []int   `json:"partition_sizes"`
	CutEdges       int     `json:"cut_edges"`
	CutRatio       float64 `json:"cut_ratio"`
	Imbalance      float64 `json:"imbalance"`
	Iteration      int     `json:"iteration"`
	Converged      bool    `json:"converged"`
	DirtyCount     int     `json:"dirty_count"`
	Ticks          uint64  `json:"ticks"`
	Ingested       uint64  `json:"mutations_ingested"`
	Applied        uint64  `json:"mutations_applied"`
	Rejected       uint64  `json:"mutations_rejected"`
	Pending        int     `json:"mutations_pending"`
	Checkpoints    uint64  `json:"checkpoints"`
	Incremental    bool    `json:"incremental"`
	Parallelism    int     `json:"parallelism"`
	// Workload-heat plane: the objective's strength, whether reads are
	// being sampled, cumulative samples folded, folds executed, and the
	// accumulator's current shape (vertices with non-zero heat and the
	// maximum decayed heat value).
	WorkloadWeight float64 `json:"workload_weight"`
	HeatRecording  bool    `json:"heat_recording"`
	HeatSamples    uint64  `json:"heat_samples"`
	HeatFolds      uint64  `json:"heat_folds"`
	HeatHotVerts   int     `json:"heat_hot_vertices"`
	HeatMax        float64 `json:"heat_max"`
	// Cluster is present only in cluster mode: this replica's shard
	// identity, decide range, round progress and assignment fingerprint.
	Cluster *ClusterStats `json:"cluster,omitempty"`
}

// Stats assembles the current summary. Cut statistics scan every edge
// (O(|E|)), which is why they live here and on /v1/stats rather than on
// the high-frequency /metrics scrape path.
func (s *Server) Stats() Stats {
	s.mu.RLock()
	g := s.part.Graph()
	asn := s.part.Assignment()
	st := Stats{
		Vertices:       g.NumVertices(),
		Edges:          g.NumEdges(),
		K:              s.cfg.K,
		PartitionSizes: asn.Sizes(),
		CutEdges:       partition.CutEdges(g, asn),
		Imbalance:      partition.Imbalance(asn),
		Iteration:      s.part.Iteration(),
		Converged:      s.part.Converged(),
		DirtyCount:     s.part.DirtyCount(),
		Incremental:    s.cfg.Incremental,
		Parallelism:    s.part.Parallelism(),
	}
	s.mu.RUnlock()
	if st.Edges > 0 {
		st.CutRatio = float64(st.CutEdges) / float64(st.Edges)
	}
	st.Instance = s.instance
	st.RoutingEpoch = s.routing.Load().Epoch
	st.Ticks = s.ticks.Load()
	st.Ingested = s.ingested.Load()
	st.Applied = s.applied.Load()
	st.Rejected = s.rejected.Load()
	st.Checkpoints = s.checkpoints.Load()
	st.Pending, _ = s.PendingMutations()
	st.WorkloadWeight = s.cfg.WorkloadWeight
	st.HeatRecording = s.heatTable.Recording()
	st.HeatSamples = s.heatSamples.Load()
	st.HeatFolds = s.heatFolds.Load()
	st.HeatHotVerts = int(s.heatHot.Load())
	st.HeatMax = math.Float64frombits(s.heatMaxBits.Load())
	st.Cluster = s.clusterStats()
	return st
}

// Placement returns the partition of v as of the current routing
// snapshot, with ok=false when v is not placed there (unknown, removed,
// or still in the ingest queue). It is one atomic pointer load and one
// array read — it never touches the adaptation state lock, so reads
// stay fast while a tick is absorbing a batch. Staleness is bounded by
// the publish points: at most one in-flight tick behind the live
// assignment.
func (s *Server) Placement(v graph.VertexID) (partition.ID, bool) {
	p := s.routing.Load().Table.Of(v)
	s.heatTable.Record(v)
	return p, p != partition.None
}

// placementLocked is the pre-serving-plane read path — the live
// assignment under the state lock. Kept (unexported) as the benchmark
// baseline the routing snapshot is measured against; not used by any
// endpoint.
func (s *Server) placementLocked(v graph.VertexID) (partition.ID, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.part.Graph().Has(v) {
		return partition.None, false
	}
	p := s.part.Assignment().Of(v)
	return p, p != partition.None
}

var _ http.Handler = (*Server)(nil)
