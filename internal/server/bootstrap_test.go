package server

// Tests for the replica-bootstrap affordances on the serving plane: the
// paged form of POST /v1/placements and the process-incarnation token.
// The consuming side (the replica's bootstrap/tail/resync state machine)
// lives in internal/replica; these tests pin the server half of the
// protocol documented in docs/REPLICATION.md.

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// pagePlacements posts one paged placement request and decodes the page.
func pagePlacements(t *testing.T, ts *httptest.Server, cursor, limit int64) PageResponse {
	t.Helper()
	resp, body := postJSON(t, ts, "/v1/placements", map[string]int64{
		"cursor": cursor,
		"limit":  limit,
	})
	if resp.StatusCode != 200 {
		t.Fatalf("page cursor=%d limit=%d: status %d body %s", cursor, limit, resp.StatusCode, body)
	}
	var page PageResponse
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatalf("page body %s: %v", body, err)
	}
	return page
}

func TestBatchPlacementsPagingCoversTable(t *testing.T) {
	s := testServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	s.Enqueue(ringBatch(130))
	s.TickNow()
	// Punch holes in the ID space so pages must skip unplaced slots.
	s.Enqueue(graph.Batch{
		{Kind: graph.MutRemoveVertex, U: 10},
		{Kind: graph.MutRemoveVertex, U: 64},
		{Kind: graph.MutRemoveVertex, U: 129},
	})
	s.TickNow()
	want := s.Routing()

	// Page through with a limit far below the table size; the union of
	// pages must equal the full table, every page stamped with the (now
	// quiescent) epoch and this process's instance token.
	got := partition.NewFrozen(want.Table.K())
	var cursor int64
	pages := 0
	for {
		page := pagePlacements(t, ts, cursor, 48)
		if page.Epoch != want.Epoch {
			t.Fatalf("page at cursor %d stamped epoch %d, want %d", cursor, page.Epoch, want.Epoch)
		}
		if page.Instance != s.Instance() {
			t.Fatalf("page instance %q, want %q", page.Instance, s.Instance())
		}
		if page.K != want.Table.K() || page.Slots != int64(want.Table.Slots()) {
			t.Fatalf("page header k=%d slots=%d, want k=%d slots=%d",
				page.K, page.Slots, want.Table.K(), want.Table.Slots())
		}
		changes := make([]partition.Change, 0, len(page.Placements))
		for _, p := range page.Placements {
			if p.Partition == int64(partition.None) {
				t.Fatalf("page contains unplaced vertex %d", p.Vertex)
			}
			if p.Vertex < cursor || p.Vertex >= cursor+48 {
				t.Fatalf("vertex %d outside page range [%d,%d)", p.Vertex, cursor, cursor+48)
			}
			changes = append(changes, partition.Change{
				Vertex: graph.VertexID(p.Vertex), To: partition.ID(p.Partition),
			})
		}
		got = got.Apply(changes)
		pages++
		if page.NextCursor < 0 {
			break
		}
		if page.NextCursor != cursor+48 {
			t.Fatalf("next_cursor %d, want %d", page.NextCursor, cursor+48)
		}
		cursor = page.NextCursor
	}
	if pages < 3 {
		t.Fatalf("paging exercised only %d pages", pages)
	}
	if got.Assigned() != want.Table.Assigned() {
		t.Fatalf("paged copy has %d assigned, want %d", got.Assigned(), want.Table.Assigned())
	}
	for v := 0; v < want.Table.Slots(); v++ {
		if got.Of(graph.VertexID(v)) != want.Table.Of(graph.VertexID(v)) {
			t.Fatalf("vertex %d: paged copy %d, table %d",
				v, got.Of(graph.VertexID(v)), want.Table.Of(graph.VertexID(v)))
		}
	}

	// A cursor at or past the end is a valid empty final page, not an
	// error — bootstrap loops terminate on next_cursor, but an exact-fit
	// table makes the last non-empty page point one past the end.
	tail := pagePlacements(t, ts, tableSlots(t, ts), 48)
	if len(tail.Placements) != 0 || tail.NextCursor != -1 {
		t.Fatalf("past-the-end page %+v, want empty and final", tail)
	}
}

// tableSlots reads the table size via a minimal page request.
func tableSlots(t *testing.T, ts *httptest.Server) int64 {
	t.Helper()
	return pagePlacements(t, ts, 0, 1).Slots
}

func TestBatchPlacementsPagingValidation(t *testing.T) {
	s := testServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()
	s.Enqueue(ringBatch(10))
	s.TickNow()

	for name, body := range map[string]any{
		"mixed forms":     map[string]any{"vertices": []int64{1}, "cursor": 0, "limit": 5},
		"limit only":      map[string]any{"limit": 5},
		"cursor only":     map[string]any{"cursor": 0},
		"zero limit":      map[string]any{"cursor": 0, "limit": 0},
		"negative limit":  map[string]any{"cursor": 0, "limit": -3},
		"negative cursor": map[string]any{"cursor": -1, "limit": 5},
		"oversized limit": map[string]any{"cursor": 0, "limit": maxBatchVertices + 1},
		"unknown field":   map[string]any{"cursor": 0, "limit": 5, "epoch": 3},
	} {
		resp, respBody := postJSON(t, ts, "/v1/placements", body)
		if resp.StatusCode != 400 {
			t.Fatalf("%s: status %d (body %s), want 400", name, resp.StatusCode, respBody)
		}
	}
}

func TestInstanceTokenIdentifiesProcess(t *testing.T) {
	s := testServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	if s.Instance() == "" {
		t.Fatal("empty instance token")
	}
	// Every response carries the header, stable across requests.
	for _, path := range []string{"/v1/stats", "/healthz", "/metrics"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		got := resp.Header.Get("X-Apartd-Instance")
		resp.Body.Close()
		if got != s.Instance() {
			t.Fatalf("%s: X-Apartd-Instance %q, want %q", path, got, s.Instance())
		}
	}
	// Stats exposes the same token plus the routing epoch.
	s.Enqueue(ringBatch(12))
	s.TickNow()
	st := s.Stats()
	if st.Instance != s.Instance() {
		t.Fatalf("stats instance %q, want %q", st.Instance, s.Instance())
	}
	if st.RoutingEpoch != s.Routing().Epoch {
		t.Fatalf("stats routing_epoch %d, want %d", st.RoutingEpoch, s.Routing().Epoch)
	}

	// A second server (a "restarted" daemon) draws a different token —
	// the property replicas use to detect upstream restarts.
	other := testServer(t, nil)
	if other.Instance() == s.Instance() {
		t.Fatal("two server incarnations share an instance token")
	}
}
