package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"path/filepath"
	"strconv"

	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// This file is the daemon's HTTP surface. All request and response
// bodies are JSON; errors come back as {"error": "..."} with a 4xx/5xx
// status. docs/API.md is the complete endpoint reference, including the
// epoch-consistency semantics of the read endpoints.

// maxIngestBody bounds one POST /v1/mutations body (64 MiB ≈ 1.5M
// mutations) so a runaway client cannot exhaust memory in one request.
const maxIngestBody = 64 << 20

// maxBatchVertices bounds one POST /v1/placements request; clients
// shard larger lookups across requests (each request is answered from
// one snapshot either way).
const maxBatchVertices = 100_000

// maxBatchBody bounds the batch-lookup request body (IDs are ≤20 bytes
// of JSON each; 4 MiB comfortably fits maxBatchVertices).
const maxBatchBody = 4 << 20

// MutationJSON is the wire form of one mutation. Op is one of
// "add-vertex", "remove-vertex", "add-edge", "remove-edge"; U is the
// vertex for vertex ops and the first endpoint for edge ops, V the
// second endpoint.
type MutationJSON struct {
	Op string `json:"op"`
	U  int64  `json:"u"`
	V  int64  `json:"v"`
}

// IngestRequest is the body of POST /v1/mutations.
type IngestRequest struct {
	Mutations []MutationJSON `json:"mutations"`
}

// ToMutation validates and converts the wire form.
func (m MutationJSON) ToMutation() (graph.Mutation, error) {
	var kind graph.MutationKind
	needV := false
	switch m.Op {
	case "add-vertex":
		kind = graph.MutAddVertex
	case "remove-vertex":
		kind = graph.MutRemoveVertex
	case "add-edge":
		kind = graph.MutAddEdge
		needV = true
	case "remove-edge":
		kind = graph.MutRemoveEdge
		needV = true
	default:
		return graph.Mutation{}, fmt.Errorf("unknown op %q", m.Op)
	}
	if err := checkWireID(m.U); err != nil {
		return graph.Mutation{}, fmt.Errorf("u: %w", err)
	}
	mu := graph.Mutation{Kind: kind, U: graph.VertexID(m.U)}
	if needV {
		if err := checkWireID(m.V); err != nil {
			return graph.Mutation{}, fmt.Errorf("v: %w", err)
		}
		mu.V = graph.VertexID(m.V)
	}
	return mu, nil
}

// checkWireID enforces the same ID bounds as the file parsers: the
// vertex table is dense, so one huge ID would materialise every slot
// below it.
func checkWireID(id int64) error {
	if id < 0 {
		return fmt.Errorf("vertex id %d is negative", id)
	}
	if id > graph.MaxReadVertexID {
		return fmt.Errorf("vertex id %d exceeds the supported maximum %d", id, graph.MaxReadVertexID)
	}
	return nil
}

// routes builds the daemon's endpoint table.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/mutations", s.handleMutations)
	mux.HandleFunc("GET /v1/placement/{vertex}", s.handlePlacement)
	mux.HandleFunc("POST /v1/placements", s.handleBatchPlacements)
	mux.HandleFunc("GET /v1/watch", s.handleWatch)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/tick", s.handleTick)
	mux.HandleFunc("POST /v1/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// ServeHTTP serves the daemon API; Server is a plain http.Handler, so it
// mounts under any router or test server. Every response carries the
// X-Apartd-Instance header (the process-incarnation token): replication
// clients compare it across requests to detect upstream restarts, since
// epochs alone are ambiguous across incarnations (docs/REPLICATION.md).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("X-Apartd-Instance", s.instance)
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleMutations(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxIngestBody)
	var req IngestRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode body: %w", err))
		return
	}
	batch := make(graph.Batch, 0, len(req.Mutations))
	for i, m := range req.Mutations {
		mu, err := m.ToMutation()
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("mutation %d: %w", i, err))
			return
		}
		batch = append(batch, mu)
	}
	// A client keeps talking to the same shard (keyed by remote address),
	// so its own mutation order survives the sharded queue drain.
	queued, ok := s.EnqueueShard(batch, shardKey(r.RemoteAddr))
	if !ok {
		hint := s.RetryAfterHint()
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(hint.Seconds()))))
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("ingest queue full (%d mutations pending); retry after %s", queued, hint))
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]int{
		"accepted": len(batch),
		"queued":   queued,
	})
}

// shardKey hashes a producer identity (FNV-1a) onto the ingest shards.
func shardKey(id string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return h
}

func (s *Server) handlePlacement(w http.ResponseWriter, r *http.Request) {
	raw := r.PathValue("vertex")
	id, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("vertex %q: %w", raw, err))
		return
	}
	if err := checkWireID(id); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	p, ok := s.Placement(graph.VertexID(id))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("vertex %d is not placed (unknown, removed, or still in the ingest queue)", id))
		return
	}
	resp := map[string]int64{
		"vertex":    id,
		"partition": int64(p),
	}
	if s.cfg.Exchange != nil {
		// Cluster mode: every shard answers every read; the owner is the
		// shard whose decide range covers this vertex's slot.
		owner := s.ownerShard(graph.VertexID(id))
		w.Header().Set("X-Apartd-Owner-Shard", strconv.Itoa(owner))
		resp["owner_shard"] = int64(owner)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTick serves POST /v1/tick: one synchronous coalescing tick, the
// drive shaft of manual tick mode (TickEvery ≤ 0). With a background
// loop running the endpoint refuses — interleaving externally driven
// ticks with the timer's would make tick cadence (and in cluster mode,
// round pacing) unobservable to the operator. In cluster mode the call
// blocks until every shard ticks the same round, so operators invoke it
// on all shards together (ci/cluster-smoke.sh does exactly that).
func (s *Server) handleTick(w http.ResponseWriter, r *http.Request) {
	if s.cfg.TickEvery > 0 {
		writeError(w, http.StatusConflict,
			fmt.Errorf("tick loop is automatic (tick=%s); manual ticks need the daemon started with -tick 0", s.cfg.TickEvery))
		return
	}
	res := s.TickNow()
	if err := s.ClusterError(); err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("cluster mode failed: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// BatchRequest is the body of POST /v1/placements. It has two mutually
// exclusive forms: a lookup ("vertices": explicit IDs, up to
// maxBatchVertices) and a bootstrap page ("cursor"+"limit": every placed
// vertex with ID in [cursor, cursor+limit), the form replicas page
// through to copy the whole table — see docs/REPLICATION.md). Limit is
// capped at maxBatchVertices too, so one page costs the daemon no more
// than one maximal lookup.
type BatchRequest struct {
	Vertices []int64 `json:"vertices"`
	Cursor   *int64  `json:"cursor,omitempty"`
	Limit    int64   `json:"limit,omitempty"`
}

// BatchPlacement is one entry of a batch-lookup response. Partition is
// -1 when the vertex is not placed in the answering snapshot (unknown,
// removed, or still in the ingest queue) — batch lookups report absence
// inline rather than failing the whole request.
type BatchPlacement struct {
	Vertex    int64 `json:"vertex"`
	Partition int64 `json:"partition"`
}

// BatchResponse is the body of a POST /v1/placements reply. Every entry
// was answered from the single routing snapshot identified by Epoch, so
// the results are mutually consistent: no interleaved migration can be
// half-visible within one response.
type BatchResponse struct {
	Epoch      uint64           `json:"epoch"`
	Placements []BatchPlacement `json:"placements"`
}

// BatchLookup answers a batch of placement lookups from one routing
// snapshot. It never touches the adaptation state lock; the snapshot is
// pinned by a single atomic load, so the whole result set reflects one
// epoch even while ticks are publishing new ones concurrently.
func (s *Server) BatchLookup(ids []graph.VertexID) BatchResponse {
	snap := s.routing.Load()
	resp := BatchResponse{
		Epoch:      snap.Epoch,
		Placements: make([]BatchPlacement, len(ids)),
	}
	for i, v := range ids {
		resp.Placements[i] = BatchPlacement{
			Vertex:    int64(v),
			Partition: int64(snap.Table.Of(v)),
		}
		s.heatTable.Record(v)
	}
	s.batchRequests.Add(1)
	s.batchLookups.Add(uint64(len(ids)))
	return resp
}

// PageResponse is the body of a paged POST /v1/placements reply (the
// cursor+limit request form). One page is answered from ONE routing
// snapshot, like any batch read; Epoch stamps which one. Slots is the
// exclusive upper bound on vertex IDs the snapshot covers — the ID space
// a full bootstrap must page through — and NextCursor is the cursor of
// the following page, -1 when this page was the last. Instance is the
// serving process's incarnation token, duplicated from the
// X-Apartd-Instance header so paging clients need only the JSON.
type PageResponse struct {
	Epoch      uint64           `json:"epoch"`
	Instance   string           `json:"instance"`
	K          int              `json:"k"`
	Slots      int64            `json:"slots"`
	NextCursor int64            `json:"next_cursor"`
	Placements []BatchPlacement `json:"placements"`
}

// PageLookup answers one bootstrap page: every placed vertex with ID in
// [cursor, cursor+limit) of the current routing snapshot. Like
// BatchLookup it pins the snapshot with a single atomic load and never
// touches the adaptation state lock; cost is O(limit) regardless of how
// sparse the range is.
func (s *Server) PageLookup(cursor, limit int64) PageResponse {
	snap := s.routing.Load()
	slots := int64(snap.Table.Slots())
	resp := PageResponse{
		Epoch:      snap.Epoch,
		Instance:   s.instance,
		K:          snap.Table.K(),
		Slots:      slots,
		NextCursor: -1,
		Placements: []BatchPlacement{},
	}
	end := cursor + limit
	if end > slots {
		end = slots
	}
	snap.Table.Scan(int(cursor), int(end), func(v graph.VertexID, p partition.ID) {
		resp.Placements = append(resp.Placements, BatchPlacement{
			Vertex:    int64(v),
			Partition: int64(p),
		})
		// Replica-originated bootstrap pages are read traffic too: a
		// replica serving a flash crowd re-pages through it on resync.
		s.heatTable.Record(v)
	})
	if end < slots {
		resp.NextCursor = end
	}
	s.batchRequests.Add(1)
	s.batchLookups.Add(uint64(len(resp.Placements)))
	return resp
}

func (s *Server) handleBatchPlacements(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBody)
	var req BatchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode body: %w", err))
		return
	}
	if req.Cursor != nil || req.Limit != 0 {
		if len(req.Vertices) > 0 {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("vertices and cursor/limit are mutually exclusive; send either a lookup or a page request"))
			return
		}
		if req.Cursor == nil || req.Limit <= 0 {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("a page request needs both cursor ≥ 0 and limit ≥ 1"))
			return
		}
		if *req.Cursor < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("cursor %d is negative", *req.Cursor))
			return
		}
		if req.Limit > maxBatchVertices {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("limit %d exceeds the per-request maximum %d", req.Limit, maxBatchVertices))
			return
		}
		writeJSON(w, http.StatusOK, s.PageLookup(*req.Cursor, req.Limit))
		return
	}
	if len(req.Vertices) > maxBatchVertices {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("%d vertices exceeds the per-request maximum %d; shard the lookup", len(req.Vertices), maxBatchVertices))
		return
	}
	ids := make([]graph.VertexID, len(req.Vertices))
	for i, raw := range req.Vertices {
		if err := checkWireID(raw); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("vertex %d: %w", i, err))
			return
		}
		ids[i] = graph.VertexID(raw)
	}
	writeJSON(w, http.StatusOK, s.BatchLookup(ids))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// checkpointRequest optionally overrides the snapshot file name. The
// override is confined to the directory of the configured checkpoint
// path: an HTTP client must never be able to make the daemon write to
// an arbitrary filesystem location.
type checkpointRequest struct {
	Path string `json:"path"`
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	var req checkpointRequest
	if r.ContentLength != 0 {
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decode body: %w", err))
			return
		}
	}
	if s.cfg.CheckpointPath == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("no checkpoint path configured; start the daemon with -checkpoint"))
		return
	}
	path := s.cfg.CheckpointPath
	if req.Path != "" {
		// Allow alternate snapshot *names* inside the configured
		// checkpoint directory only.
		dir := filepath.Dir(s.cfg.CheckpointPath)
		candidate := filepath.Join(dir, filepath.Base(req.Path))
		if filepath.Base(req.Path) != req.Path && filepath.Clean(req.Path) != candidate {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("path %q escapes the checkpoint directory %q; pass a bare file name", req.Path, dir))
			return
		}
		path = candidate
	}
	snap, err := s.Checkpoint(path)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"path":               path,
		"ticks":              snap.Meta.Ticks,
		"mutations_ingested": snap.Meta.MutationsIngested,
		"mutations_applied":  snap.Meta.MutationsApplied,
		"vertices":           snap.Graph.NumVertices(),
		"edges":              snap.Graph.NumEdges(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best-effort: headers already sent
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
