package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// This file is the change feed: GET /v1/watch streams per-epoch routing
// diffs as NDJSON. The hub retains a bounded ring of recent diffs;
// consumers pull from the ring at their own pace, so a slow consumer
// costs the daemon nothing but its blocked handler goroutine — when the
// ring has moved past a consumer's position it gets a resync event, not
// an unbounded queue (the regression test pins both properties).

// DefaultWatchRing is the diff-ring size used when Config.WatchRing is
// zero: at the default 250 ms tick (≤2 epochs per tick) it covers ~32
// seconds of maximal-churn history for reconnecting consumers — and
// arbitrarily long idle or low-churn periods, since only epochs that
// actually changed something occupy ring slots. Size up via -watch-ring
// for consumers with longer reconnect windows under sustained churn.
const DefaultWatchRing = 256

// watchHub retains the last ringMax epoch diffs and wakes blocked
// watchers on publish. Publication happens under the server's state
// lock; reads (since/wait) take only the hub's own mutex, never the
// state lock.
type watchHub struct {
	mu      sync.Mutex
	ring    []*EpochDiff // chronological; epochs are consecutive
	ringMax int
	next    uint64        // epoch the next published diff will carry
	notify  chan struct{} // closed and replaced on every publish
	evicted uint64        // diffs dropped off the ring (watch "drops")
}

func newWatchHub(ringMax uint64) *watchHub {
	return &watchHub{
		ringMax: int(ringMax),
		next:    2, // epoch 1 is the bootstrap snapshot; its diff is never retained
		notify:  make(chan struct{}),
	}
}

// publish appends d (whose epoch must be h.next), evicts past the ring
// bound, and wakes every waiter.
func (h *watchHub) publish(d *EpochDiff) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ring = append(h.ring, d)
	h.next = d.Epoch + 1
	if len(h.ring) > h.ringMax {
		drop := len(h.ring) - h.ringMax
		h.evicted += uint64(drop)
		h.ring = append(h.ring[:0:0], h.ring[drop:]...)
	}
	close(h.notify)
	h.notify = make(chan struct{})
}

// wait returns a channel closed at the next publish. Callers must call
// wait BEFORE re-checking since() to avoid missed-wakeup races.
func (h *watchHub) wait() <-chan struct{} {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.notify
}

// since returns the retained diffs with epoch ≥ from, in order. When
// the caller cannot be served incrementally, needResync is true and it
// must re-bootstrap from a full snapshot: either the epochs it needs
// were already evicted (from < oldest retained), or it asks for an
// epoch beyond the next one this hub will issue (from > next). The
// HTTP handler pre-rejects the from > next case with a 400 — this
// process provably never published such an epoch, the signature of a
// consumer resuming across a daemon restart — so that arm survives here
// only as defence for direct (in-process) callers. from == next is the
// normal caught-up case: no diffs, no resync, wait for the next publish.
// The returned slice aliases immutable diffs and may be used without the
// hub's lock.
func (h *watchHub) since(from uint64) (diffs []*EpochDiff, needResync bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	oldest := h.next - uint64(len(h.ring))
	if from < oldest || from > h.next {
		return nil, true
	}
	if from == h.next {
		return nil, false
	}
	idx := int(from - oldest)
	return h.ring[idx:], false
}

// nextEpoch returns the epoch the next published diff will carry — the
// resume point a freshly resynced consumer should continue from.
func (h *watchHub) nextEpoch() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.next
}

// retained reports the current ring occupancy and the eviction counter
// (for /metrics and the bounded-memory regression test).
func (h *watchHub) retained() (n int, evicted uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.ring), h.evicted
}

// watchEvent is one NDJSON line of the feed: either an epoch diff
// (Resync false, Epoch+Changes set) or a resync instruction (Resync
// true, Epoch = the epoch of the currently published snapshot).
type watchEvent struct {
	Resync  bool              `json:"resync,omitempty"`
	Epoch   uint64            `json:"epoch"`
	Changes []PlacementChange `json:"changes,omitempty"`
}

// handleWatch streams epoch diffs as application/x-ndjson. ?from=N
// resumes at epoch N (the first diff wanted, i.e. one past the epoch
// the client's table is at); omitted or 0 means "only changes from
// now on". A from beyond the next epoch this process will publish is a
// 400: this daemon provably never produced the client's position, which
// is the signature of a consumer resuming across a daemon restart after
// epochs reset — it must re-bootstrap, and a silent resync here would
// mask the restart (docs/API.md documents the error, docs/REPLICATION.md
// the recovery). When requested epochs are merely no longer retained the
// stream starts with {"resync":true,"epoch":E}: re-read full state
// (batch lookup, stamped with some epoch E' ≥ E), then keep consuming,
// skipping diffs with epoch ≤ E'. The handler never touches the
// adaptation state lock.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	var from uint64
	if raw := r.URL.Query().Get("from"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("from %q: %w", raw, err))
			return
		}
		from = v
	}
	if next := s.hub.nextEpoch(); from > next {
		// NOTE a benign race: a client that just read epoch E can ask
		// from=E+1 while the publisher has stored the routing snapshot
		// but not yet handed the hub its diff (next still E). The window
		// is nanoseconds inside one publish; clients that see this 400
		// should confirm against /v1/stats routing_epoch + instance
		// before concluding the daemon restarted (the replica does).
		writeError(w, http.StatusBadRequest, fmt.Errorf(
			"from=%d is ahead of this daemon's next epoch %d; epochs are per-process, so the daemon has likely restarted — re-bootstrap from POST /v1/placements and resume from the epoch it returns", from, next))
		return
	}
	if from == 0 {
		// "Only changes from now on": resume at the hub's own next
		// epoch. Not Routing().Epoch+1 — the routing snapshot is stored
		// a moment before the hub learns its diff during a publish, and
		// a from beyond hub.next would greet the fresh consumer with a
		// spurious resync.
		from = s.hub.nextEpoch()
	}

	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported by connection"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	s.watchers.Add(1)
	defer s.watchers.Add(-1)

	// Every event write runs under a write deadline: a dead or stalled
	// consumer TCP connection produces no read-side signal (ctx.Done only
	// fires on clean disconnects), so without the deadline one wedged
	// peer would pin this handler goroutine — and its diff backlog —
	// forever. A deadline miss drops the subscriber; it can reconnect and
	// resync like any lagging consumer.
	rc := http.NewResponseController(w)
	deadline := s.cfg.WatchWriteTimeout
	if deadline == 0 {
		deadline = DefaultWatchWriteTimeout
	}
	enc := json.NewEncoder(w)
	write := func(ev watchEvent) bool {
		if deadline > 0 {
			rc.SetWriteDeadline(time.Now().Add(deadline)) //nolint:errcheck // unsupported writers just keep no deadline
		}
		if err := enc.Encode(ev); err != nil {
			s.watchDropped.Add(1)
			return false
		}
		return true
	}
	ctx := r.Context()
	for {
		// Register for wakeup BEFORE checking the ring: a diff published
		// between since() and the select would otherwise be missed.
		wakeup := s.hub.wait()
		diffs, needResync := s.hub.since(from)
		if needResync {
			s.watchResyncs.Add(1)
			if !write(watchEvent{Resync: true, Epoch: s.Routing().Epoch}) {
				return
			}
			flusher.Flush()
			// Resume from the hub's own next epoch (not routing's
			// epoch+1): routing may momentarily lead the hub inside a
			// publish, and a from beyond hub.next would resync again in
			// a loop. The consumer's refetch covers any diff ≤ its
			// stamped epoch either way.
			from = s.hub.nextEpoch()
			continue
		}
		for _, d := range diffs {
			if !write(watchEvent{Epoch: d.Epoch, Changes: d.Changes}) {
				return // consumer dead, stalled past the deadline, or gone
			}
			s.watchEvents.Add(1)
			from = d.Epoch + 1
		}
		if len(diffs) > 0 {
			flusher.Flush()
			continue // the ring may have advanced while we wrote
		}
		select {
		case <-ctx.Done():
			return
		case <-wakeup:
		}
	}
}
