package server

import (
	"fmt"
	"time"

	"xdgp/internal/cluster"
	"xdgp/internal/core"
	"xdgp/internal/graph"
	"xdgp/internal/snapshot"
)

// This file is the daemon's cluster mode: N apartd processes, each
// deciding migrations for its contiguous slice of the vertex table,
// cooperating through the round-barrier Exchange (internal/cluster) to
// compute byte-identical global assignments on every node.
//
// The design is a deterministic replicated state machine, not a
// partitioned store: every shard holds the full graph and the full
// assignment, so every shard serves any read locally, and losing a
// shard loses no data — only its share of decide throughput. Each tick
// costs one batch round (merging every shard's drained mutations, in
// shard order) plus one step round per heuristic iteration (merging
// every shard's core.ShardDecision). All rounds are barriers; replicas
// that restart behind the cluster replay journaled rounds through the
// exact same code path, so the round counter in a checkpoint is all the
// resume state a shard needs beyond the snapshot itself.
//
// Divergence is a bug, never a tolerated state: every batch round
// carries an FNV-1a hash of the sender's assignment, and any mismatch
// poisons the local cluster state (clusterErr) rather than letting two
// hash-disagreeing replicas keep answering reads differently.

// restoreClusterIdentity checks a snapshot's cluster section against
// the restoring configuration. A clustered checkpoint resumes only as
// the same shard of the same geometry: replica i advances only RNG
// stream i, so the peer streams inside its checkpoint are stale — valid
// for replica i to carry (it never reads them) but wrong for anyone
// else, a single process included. Conversely a single-process
// checkpoint has no replay watermark, so it cannot seed a cluster
// shard.
func restoreClusterIdentity(cfg *Config, snap *snapshot.Snapshot) error {
	ci := snap.Cluster
	if cfg.Exchange == nil {
		if ci != nil {
			return fmt.Errorf(
				"server: snapshot was written by shard %d of a %d-shard cluster and cannot resume single-process (its peer RNG streams are stale)",
				ci.ShardID, ci.NumShards)
		}
		return nil
	}
	if ci == nil {
		return fmt.Errorf("server: snapshot carries no cluster identity; cluster mode resumes only from cluster-mode checkpoints")
	}
	if int(ci.ShardID) != cfg.ClusterShard || int(ci.NumShards) != cfg.ClusterShards {
		return fmt.Errorf("server: snapshot identity is shard %d of %d, configured as shard %d of %d",
			ci.ShardID, ci.NumShards, cfg.ClusterShard, cfg.ClusterShards)
	}
	if snap.Params.Parallelism != cfg.ClusterShards {
		return fmt.Errorf("server: snapshot Parallelism %d does not match the %d-shard cluster",
			snap.Params.Parallelism, cfg.ClusterShards)
	}
	return nil
}

// clusterFault wraps the first error that poisoned cluster mode, so an
// atomic pointer can publish it to ticks, stats and handlers at once.
type clusterFault struct{ err error }

// failCluster records the first cluster-mode failure. Later ticks
// become no-ops and /v1/tick, /v1/stats and /metrics surface the error;
// read serving continues from the last published routing snapshot.
func (s *Server) failCluster(err error) {
	s.clusterErr.CompareAndSwap(nil, &clusterFault{err: err})
}

// ClusterError returns the error that poisoned cluster mode, or nil
// while the cluster is healthy (always nil in single-process mode).
func (s *Server) ClusterError() error {
	if f := s.clusterErr.Load(); f != nil {
		return f.err
	}
	return nil
}

// assignmentHashLocked fingerprints the current assignment (FNV-1a over
// the slot-indexed table). Replicas of the cluster state machine must
// agree on it at every batch round. Caller holds mu (read suffices).
func (s *Server) assignmentHashLocked() uint64 {
	asn := s.part.Assignment()
	slots := asn.Slots()
	h := uint64(14695981039346656037)
	mix := func(v uint32) {
		for i := 0; i < 4; i++ {
			h ^= uint64(byte(v >> (8 * i)))
			h *= 1099511628211
		}
	}
	mix(uint32(slots))
	for i := 0; i < slots; i++ {
		mix(uint32(asn.Of(graph.VertexID(i))))
	}
	return h
}

// ownerShard returns the shard whose contiguous decide range covers v in
// the current routing snapshot. Ownership is about who *decides* v's
// migrations — every shard serves reads for every vertex — so the owner
// is where an operator looks for the heuristic activity behind a
// placement.
func (s *Server) ownerShard(v graph.VertexID) int {
	n := s.cfg.ClusterShards
	slots := s.routing.Load().Table.Slots()
	per := (slots + n - 1) / n
	if per == 0 || int(v) >= slots {
		return 0
	}
	return int(v) / per
}

// tickCluster is TickNow's body in cluster mode: one batch round, then
// one step round per heuristic iteration until convergence or the step
// budget. Caller holds tickMu. When the next round number is at or below
// the Exchange's replay watermark the tick re-executes a journaled
// round: the local ingest queue is left untouched (its mutations belong
// to post-replay ticks), the decide phase still runs (advancing the RNG
// exactly as the pre-crash process did), and the journaled payloads —
// not the freshly computed ones — are what every replica applies.
func (s *Server) tickCluster() TickResult {
	var res TickResult
	ex := s.cfg.Exchange
	if s.ClusterError() != nil {
		return res
	}

	round := s.clusterRounds.Load() + 1
	replaying := round <= ex.Completed()
	var batch graph.Batch
	if !replaying {
		batch = s.drainPending()
	} else {
		s.clusterReplayed.Add(1)
	}

	s.mu.RLock()
	hash := s.assignmentHashLocked()
	s.mu.RUnlock()
	s.clusterHash.Store(hash)
	pending, _ := s.PendingMutations()

	payload, err := cluster.AppendBatchPayload(nil, cluster.BatchPayload{
		StateHash:   hash,
		MorePending: pending > 0,
		Batch:       batch,
	})
	if err != nil {
		s.failCluster(fmt.Errorf("encode batch round %d: %w", round, err))
		return res
	}
	returned, err := s.runRound(round, payload)
	if err != nil {
		s.failCluster(fmt.Errorf("batch round %d: %w", round, err))
		return res
	}

	var merged graph.Batch
	morePending := false
	for i, enc := range returned {
		p, err := cluster.DecodeBatchPayload(enc)
		if err != nil {
			s.failCluster(fmt.Errorf("batch round %d: shard %d payload: %w", round, i, err))
			return res
		}
		if p.StateHash != hash {
			s.failCluster(fmt.Errorf(
				"cluster diverged at round %d: shard %d assignment hash %016x, local %016x",
				round, i, p.StateHash, hash))
			return res
		}
		morePending = morePending || p.MorePending
		merged = append(merged, p.Batch...)
	}

	res.BatchSize = len(merged) // the global tick batch, all shards merged
	res.MorePending = morePending
	s.lastBatch.Store(int64(len(merged)))

	s.mu.Lock()
	if len(merged) > 0 {
		res.Applied = s.part.ApplyBatch(merged)
		s.applied.Add(uint64(res.Applied))
		s.publishRouting()
	}
	// Heat stays shard-local observability in cluster mode (the
	// workload objective is rejected at validate time), so folding here
	// never touches what the replicated state machine computes.
	s.foldHeatLocked()
	converged := s.part.Converged()
	s.mu.Unlock()

	for !converged && res.Steps < s.cfg.MaxStepsPerTick {
		round = s.clusterRounds.Load() + 1
		if round <= ex.Completed() {
			s.clusterReplayed.Add(1)
		}
		s.mu.Lock()
		d, err := s.part.StepClusterDecide(s.cfg.ClusterShard)
		s.mu.Unlock()
		if err != nil {
			s.failCluster(fmt.Errorf("step round %d decide: %w", round, err))
			return res
		}
		enc, err := cluster.AppendStepPayload(nil, d)
		if err != nil {
			s.failCluster(fmt.Errorf("encode step round %d: %w", round, err))
			return res
		}
		returned, err := s.runRound(round, enc)
		if err != nil {
			s.failCluster(fmt.Errorf("step round %d: %w", round, err))
			return res
		}
		decisions := make([]*core.ShardDecision, len(returned))
		for i, e := range returned {
			if decisions[i], err = cluster.DecodeStepPayload(e); err != nil {
				s.failCluster(fmt.Errorf("step round %d: shard %d payload: %w", round, i, err))
				return res
			}
		}
		s.mu.Lock()
		st, err := s.part.StepClusterApply(decisions)
		if err == nil {
			converged = s.part.Converged()
		}
		s.mu.Unlock()
		if err != nil {
			s.failCluster(fmt.Errorf("step round %d apply: %w", round, err))
			return res
		}
		s.iterations.Add(1)
		s.migrations.Add(uint64(st.Migrations))
		s.examined.Add(uint64(st.Examined))
		res.Steps++
		res.Migrations += st.Migrations
		res.Examined += st.Examined
	}
	res.Converged = converged

	s.mu.Lock()
	s.publishRouting()
	if s.part.Graph().MaybeCompact() {
		res.Compacted = true
	}
	s.mu.Unlock()

	tick := s.ticks.Add(1)
	if s.cfg.CheckpointEvery > 0 && tick%uint64(s.cfg.CheckpointEvery) == 0 {
		if _, err := s.checkpoint(s.cfg.CheckpointPath); err == nil {
			res.Checkpoint = true
		} else {
			s.ckptFailures.Add(1)
		}
	}
	return res
}

// runRound submits one round to the Exchange, accounting barrier wait
// time and advancing the persistent round counter on success.
func (s *Server) runRound(round uint64, payload []byte) ([][]byte, error) {
	start := time.Now()
	returned, err := s.cfg.Exchange.Round(round, payload)
	s.clusterWaitNs.Add(int64(time.Since(start)))
	if err != nil {
		return nil, err
	}
	s.clusterRounds.Store(round)
	return returned, nil
}

// ClusterStats is the cluster block of /v1/stats, present only in
// cluster mode.
type ClusterStats struct {
	// Shard and Shards identify this replica in the fixed geometry.
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	// OwnedLo and OwnedHi are the half-open slot range this shard
	// decides migrations for (reads are served for every vertex).
	OwnedLo int `json:"owned_lo"`
	OwnedHi int `json:"owned_hi"`
	// Rounds is the highest exchange round this replica has completed;
	// Replayed counts the rounds it re-executed from peers' journals
	// after a restart.
	Rounds   uint64 `json:"rounds"`
	Replayed uint64 `json:"replayed_rounds"`
	// StateHash is the assignment fingerprint sent with the last batch
	// round — equal on every healthy shard.
	StateHash string `json:"state_hash"`
	// Error is the failure that poisoned cluster mode, empty while
	// healthy.
	Error string `json:"error,omitempty"`
}

// clusterStats assembles the cluster block, or nil in single-process
// mode.
func (s *Server) clusterStats() *ClusterStats {
	if s.cfg.Exchange == nil {
		return nil
	}
	s.mu.RLock()
	slots := s.part.Graph().NumSlots()
	s.mu.RUnlock()
	lo, hi := graph.ShardRange(s.cfg.ClusterShard, s.cfg.ClusterShards, slots)
	cs := &ClusterStats{
		Shard:     s.cfg.ClusterShard,
		Shards:    s.cfg.ClusterShards,
		OwnedLo:   lo,
		OwnedHi:   hi,
		Rounds:    s.clusterRounds.Load(),
		Replayed:  s.clusterReplayed.Load(),
		StateHash: fmt.Sprintf("%016x", s.clusterHash.Load()),
	}
	if err := s.ClusterError(); err != nil {
		cs.Error = err.Error()
	}
	return cs
}

// clusterHealthGauge is 1 while cluster mode is healthy, 0 once
// poisoned (single-process mode never emits it).
func (s *Server) clusterHealthGauge() float64 {
	if s.ClusterError() != nil {
		return 0
	}
	return 1
}
