package server

import (
	"os"
	"strconv"
	"testing"
	"time"

	"xdgp/internal/gen"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

// Flash-crowd scenario: the read hotset of a converged daemon jumps to
// a new region of the graph (a post goes viral, a celebrity joins a
// thread), and the workload term must pull the co-read neighbourhood
// onto fewer partitions than the topology-only objective left it on.
// Two identical daemons absorb the same stream and the same read
// traffic; only -workload-weight differs. After each hotset shift the
// weighted daemon must serve ≥20% fewer cross-partition reads per
// batch than the topology-only baseline.
//
// Scale: 100k vertices in tier-1; XDGP_FLASHCROWD_SCALE overrides for
// the nightly 1M run.

// flashCrowdScale resolves the vertex count.
func flashCrowdScale(t *testing.T) int {
	if v := os.Getenv("XDGP_FLASHCROWD_SCALE"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1000 {
			t.Fatalf("XDGP_FLASHCROWD_SCALE %q invalid", v)
		}
		return n
	}
	return 100_000
}

// readBall collects the read hotset around a crowd centre: a BFS ball
// of up to max vertices — the post plus the commenters two hops out.
func readBall(g *graph.Graph, center graph.VertexID, max int) []graph.VertexID {
	ids := []graph.VertexID{center}
	seen := map[graph.VertexID]bool{center: true}
	for i := 0; i < len(ids) && len(ids) < max; i++ {
		g.ForEachNeighbor(ids[i], func(w graph.VertexID) {
			if !seen[w] && len(ids) < max {
				seen[w] = true
				ids = append(ids, w)
			}
		})
	}
	return ids
}

// crossReads counts the batch's reads that leave its modal partition —
// the per-batch fan-out a scatter-gather client pays.
func crossReads(resp BatchResponse) int {
	counts := make(map[int64]int)
	for _, p := range resp.Placements {
		counts[p.Partition]++
	}
	modal := 0
	for _, c := range counts {
		if c > modal {
			modal = c
		}
	}
	return len(resp.Placements) - modal
}

func TestFlashCrowdWorkloadAdaptation(t *testing.T) {
	n := flashCrowdScale(t)
	g := gen.BarabasiAlbert(n, 2, 5)
	stream := make(graph.Batch, 0, 2*n)
	g.ForEachEdge(func(u, v graph.VertexID) {
		stream = append(stream, graph.Mutation{Kind: graph.MutAddEdge, U: u, V: v})
	})

	mk := func(workloadWeight float64) *Server {
		cfg := DefaultConfig(8, 7)
		cfg.TickEvery = 100 * time.Millisecond // decay reference only: ticks are driven manually
		cfg.HeatHalfLife = 400 * time.Millisecond
		cfg.HeatSample = 1
		cfg.WorkloadWeight = workloadWeight
		cfg.MaxPending = -1 // the whole stream arrives as one enqueue
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Enqueue(stream); !ok {
			t.Fatal("enqueue rejected the stream")
		}
		for i := 0; i < 500 && !s.Stats().Converged; i++ {
			s.TickNow()
		}
		if !s.Stats().Converged {
			t.Fatalf("daemon (weight %g) did not converge on the base graph", workloadWeight)
		}
		return s
	}
	base, adaptive := mk(0), mk(8)

	// Before any reads the weighted daemon has no heat, so the two must
	// have converged byte-identically — the passivity contract, checked
	// here end-to-end through the serving stack.
	ta, tb := base.part.Assignment().Table(), adaptive.part.Assignment().Table()
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("slot %d diverged before any reads: %d vs %d", i, ta[i], tb[i])
		}
	}

	const (
		ballSize     = 64
		adaptTicks   = 30 // ticks each crowd lasts before we measure
		readsPerTick = 4  // hotset batches per tick
	)
	centers := []graph.VertexID{graph.VertexID(n / 4), graph.VertexID(n / 2), graph.VertexID(3 * n / 4)}
	for shift, center := range centers {
		ids := readBall(g, center, ballSize)
		for tick := 0; tick < adaptTicks; tick++ {
			for r := 0; r < readsPerTick; r++ {
				base.BatchLookup(ids)
				adaptive.BatchLookup(ids)
			}
			base.TickNow()
			adaptive.TickNow()
		}
		crossBase := crossReads(base.BatchLookup(ids))
		crossAdaptive := crossReads(adaptive.BatchLookup(ids))
		t.Logf("shift %d (centre %d, %d reads/batch): cross-partition reads %d (weight 0) vs %d (weight 8)",
			shift, center, len(ids), crossBase, crossAdaptive)
		if crossBase == 0 {
			t.Fatalf("shift %d: baseline already fully co-located — hotset exercised nothing", shift)
		}
		if limit := crossBase * 8 / 10; crossAdaptive > limit {
			t.Errorf("shift %d: cross-partition reads %d with the workload term, want ≤ %d (≥20%% below the %d baseline)",
				shift, crossAdaptive, limit, crossBase)
		}
	}

	// The workload term trades read locality only within the capacity
	// envelope: the invariant must survive the crowd migrations.
	if !partition.WithinCapacities(asnOf(adaptive), capsOf(adaptive)) {
		t.Fatal("capacity invariant violated after flash-crowd adaptation")
	}
}
