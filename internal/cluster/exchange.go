// Package cluster implements the round exchange that lets N apartd
// processes run the adaptive partitioner as one deterministic replicated
// state machine.
//
// Every replica holds the full graph and assignment; what the cluster
// exchanges is *decisions*, not state. A tick is a sequence of numbered
// rounds: one batch round (each shard contributes the mutations it
// ingested, plus a state hash for divergence detection) followed by one
// step round per heuristic iteration (each shard contributes the
// ShardDecision of its own slice of the sweep). A round is a barrier —
// Round blocks until all N payloads exist — so the replicas advance in
// lockstep and apply identical merged outcomes in identical order,
// which keeps them byte-identical to a single process running with
// Parallelism = N (see internal/core/cluster.go for the proof sketch).
//
// There is no coordinator and no election: determinism is the
// consensus. The exchange journals recent complete rounds so a replica
// restarted from a checkpoint can replay the rounds it missed (its own
// old payloads included — peers hand them back), re-deriving the exact
// state it would have had. A gap older than the journal is fatal by
// design: restore from a newer checkpoint instead of resyncing silently.
package cluster

import (
	"errors"
	"fmt"
	"sync"
)

// DefaultRetain is the number of completed rounds the exchange journals
// for replica catch-up when the transport does not specify one.
const DefaultRetain = 4096

// ErrClosed is returned by Round after the exchange has been closed.
var ErrClosed = errors.New("cluster: exchange closed")

// Exchange is one shard's handle on the cluster round barrier. It is
// transport-agnostic: tests run the in-process MemCluster, production
// runs the TCP transport — the server's tick loop cannot tell them
// apart.
type Exchange interface {
	// Round submits this shard's payload for the given round (1-based,
	// called in strictly increasing order) and blocks until every
	// shard's payload for that round is available, returning them
	// indexed by shard. During journal replay — round ≤ Completed() —
	// the submitted payload is ignored and the journaled payloads are
	// returned, the caller's own included; callers must always consume
	// the RETURNED payloads, never their local copy.
	Round(round uint64, payload []byte) ([][]byte, error)
	// Completed reports the highest round for which every payload is
	// already available: rounds ≤ Completed() replay from the journal.
	Completed() uint64
	// Shard is this handle's shard index; Shards the cluster size.
	Shard() int
	Shards() int
	// Close releases the transport; pending and future Round calls
	// return an error.
	Close() error
}

// hub is the round table shared by every transport: payload slots per
// (round, shard), a contiguous completion watermark, and a bounded
// journal of past rounds for replica catch-up.
type hub struct {
	mu        sync.Mutex
	cond      *sync.Cond
	n         int
	retain    uint64
	rounds    map[uint64]*hubRound
	completed uint64 // all rounds in [floor, completed] are complete
	floor     uint64 // oldest journaled round; older rounds are gone
	err       error
}

type hubRound struct {
	payloads [][]byte
	have     int
}

// maxRoundSkew bounds how far ahead of the completion watermark a
// delivery may land; anything further is a corrupt or hostile peer.
const maxRoundSkew = 1 << 20

func newHub(n, retain int, watermark uint64) *hub {
	if retain <= 0 {
		retain = DefaultRetain
	}
	h := &hub{
		n:         n,
		retain:    uint64(retain),
		rounds:    make(map[uint64]*hubRound),
		completed: watermark,
		floor:     watermark + 1,
	}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// deliver stores one shard's payload for a round. First write wins:
// duplicates (journal resends, reconnect catch-up, or a replica
// recomputing a payload it already sent in a previous life) are
// ignored, which is what makes replay deterministic.
func (h *hub) deliver(round uint64, shard int, payload []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.err != nil || shard < 0 || shard >= h.n {
		return
	}
	if round < h.floor || round > h.completed+maxRoundSkew {
		return
	}
	rd := h.rounds[round]
	if rd == nil {
		rd = &hubRound{payloads: make([][]byte, h.n)}
		h.rounds[round] = rd
	}
	if rd.payloads[shard] != nil {
		return
	}
	rd.payloads[shard] = append([]byte(nil), payload...)
	rd.have++
	advanced := false
	for {
		next := h.rounds[h.completed+1]
		if next == nil || next.have < h.n {
			break
		}
		h.completed++
		advanced = true
	}
	for h.completed > h.retain && h.floor < h.completed-h.retain {
		delete(h.rounds, h.floor)
		h.floor++
	}
	if advanced {
		h.cond.Broadcast()
	}
}

// await blocks until the round is complete and returns a copy of its
// payload slice (the backing arrays stay journal-owned and must not be
// mutated).
func (h *hub) await(round uint64) ([][]byte, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for h.err == nil && h.completed < round {
		h.cond.Wait()
	}
	if h.err != nil {
		return nil, h.err
	}
	if round < h.floor {
		return nil, fmt.Errorf("cluster: round %d evicted from the journal (floor %d): restore from a newer checkpoint", round, h.floor)
	}
	rd := h.rounds[round]
	if rd == nil {
		return nil, fmt.Errorf("cluster: round %d missing from the journal", round)
	}
	return append([][]byte(nil), rd.payloads...), nil
}

func (h *hub) completedRound() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.completed
}

// fail poisons the hub: every pending and future await returns err.
func (h *hub) fail(err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.err == nil {
		h.err = err
	}
	h.cond.Broadcast()
}

// journalAfter returns every journaled (round, shard, payload) triple
// with round > watermark, complete rounds and partial slots alike, in
// round order. The payloads alias journal memory: write them out before
// the journal evicts (callers copy into frames immediately).
func (h *hub) journalAfter(watermark uint64) []journalEntry {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []journalEntry
	for r := max(watermark+1, h.floor); r <= h.completed+1; r++ {
		rd := h.rounds[r]
		if rd == nil {
			continue
		}
		for s, p := range rd.payloads {
			if p != nil {
				out = append(out, journalEntry{round: r, shard: s, payload: p})
			}
		}
	}
	return out
}

// ownAfter returns this shard's journaled payloads with round >
// watermark, for resending to a peer that reconnected.
func (h *hub) ownAfter(watermark uint64, shard int) []journalEntry {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []journalEntry
	for r := max(watermark+1, h.floor); r <= h.completed+1; r++ {
		if rd := h.rounds[r]; rd != nil && rd.payloads[shard] != nil {
			out = append(out, journalEntry{round: r, shard: shard, payload: rd.payloads[shard]})
		}
	}
	return out
}

type journalEntry struct {
	round   uint64
	shard   int
	payload []byte
}
