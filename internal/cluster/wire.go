package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// This file is the cluster RPC's frame codec, mirroring the binary
// ingest plane's framing discipline (internal/graph/wire.go): a fixed
// 6-byte header — u8 version, u8 type, u32 little-endian payload
// length — followed by the payload. Every length is bounded before
// allocation and every multi-byte integer is little-endian; a malformed
// frame is an error, never a panic, which the fuzz target
// (FuzzReadFrame) enforces.
//
// Frame types:
//
//	Hello     → u32 shard, u32 shards, u64 configHash, u64 watermark.
//	            First frame on every connection, both directions. The
//	            watermark is the sender's completed round: the receiver
//	            resends journal entries above it.
//	HelloAck  → u64 watermark. The accepting side's completed round;
//	            the dialer resends its own journaled payloads above it.
//	Round     → u64 round, u32 shard, rest = opaque round payload.
//	CaughtUp  → empty. Ends the accepting side's catch-up push; the
//	            dialer may start live rounds once every peer sent one.
//	Reject    → UTF-8 reason. Fatal handshake refusal (config mismatch,
//	            journal gap); the receiver poisons its exchange.
const (
	// WireVersion is the cluster RPC frame format version.
	WireVersion = 1

	frameHeaderLen = 6
)

// FrameType identifies a cluster RPC frame.
type FrameType byte

// The cluster RPC frame types.
const (
	FrameHello    FrameType = 1
	FrameHelloAck FrameType = 2
	FrameRound    FrameType = 3
	FrameCaughtUp FrameType = 4
	FrameReject   FrameType = 5
)

// String names the frame type for logs and errors.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameHelloAck:
		return "helloack"
	case FrameRound:
		return "round"
	case FrameCaughtUp:
		return "caughtup"
	case FrameReject:
		return "reject"
	default:
		return fmt.Sprintf("type(%d)", byte(t))
	}
}

// MaxRoundPayload bounds one round payload on the wire: a full batch
// round (2M mutations × 9 bytes) plus headroom for the step decisions
// of very large frontiers.
const MaxRoundPayload = 64 << 20

// maxRejectReason bounds the Reject frame's reason string.
const maxRejectReason = 1 << 10

// Hello is the handshake frame: who is dialing, the cluster geometry
// and config fingerprint it was started with, and the highest round it
// has already completed.
type Hello struct {
	Shard      uint32
	Shards     uint32
	ConfigHash uint64
	Watermark  uint64
}

// Round is one shard's payload for one numbered round.
type Round struct {
	Round   uint64
	Shard   uint32
	Payload []byte
}

// Frame is one decoded cluster RPC frame; the field matching Type is
// populated.
type Frame struct {
	Type FrameType
	// Hello is set for FrameHello.
	Hello Hello
	// Watermark is set for FrameHelloAck.
	Watermark uint64
	// Round is set for FrameRound; its Payload is freshly allocated per
	// frame, so callers own it.
	Round Round
	// Reason is set for FrameReject.
	Reason string
}

func appendHeader(dst []byte, t FrameType, payload int) []byte {
	dst = append(dst, WireVersion, byte(t))
	return binary.LittleEndian.AppendUint32(dst, uint32(payload))
}

// AppendHelloFrame appends an encoded Hello frame to dst.
func AppendHelloFrame(dst []byte, h Hello) []byte {
	dst = appendHeader(dst, FrameHello, 24)
	dst = binary.LittleEndian.AppendUint32(dst, h.Shard)
	dst = binary.LittleEndian.AppendUint32(dst, h.Shards)
	dst = binary.LittleEndian.AppendUint64(dst, h.ConfigHash)
	return binary.LittleEndian.AppendUint64(dst, h.Watermark)
}

// AppendHelloAckFrame appends an encoded HelloAck frame to dst.
func AppendHelloAckFrame(dst []byte, watermark uint64) []byte {
	dst = appendHeader(dst, FrameHelloAck, 8)
	return binary.LittleEndian.AppendUint64(dst, watermark)
}

// AppendRoundFrame appends an encoded Round frame to dst.
func AppendRoundFrame(dst []byte, r Round) ([]byte, error) {
	if len(r.Payload) > MaxRoundPayload {
		return dst, fmt.Errorf("cluster: round payload %d bytes exceeds the wire maximum %d", len(r.Payload), MaxRoundPayload)
	}
	dst = appendHeader(dst, FrameRound, 12+len(r.Payload))
	dst = binary.LittleEndian.AppendUint64(dst, r.Round)
	dst = binary.LittleEndian.AppendUint32(dst, r.Shard)
	return append(dst, r.Payload...), nil
}

// AppendCaughtUpFrame appends an encoded CaughtUp frame to dst.
func AppendCaughtUpFrame(dst []byte) []byte {
	return appendHeader(dst, FrameCaughtUp, 0)
}

// AppendRejectFrame appends an encoded Reject frame to dst, truncating
// overlong reasons.
func AppendRejectFrame(dst []byte, reason string) []byte {
	if len(reason) > maxRejectReason {
		reason = reason[:maxRejectReason]
	}
	dst = appendHeader(dst, FrameReject, len(reason))
	return append(dst, reason...)
}

// ReadFrame reads and validates one cluster RPC frame. Errors are
// terminal for the connection: framing cannot re-align after garbage.
func ReadFrame(r *bufio.Reader) (Frame, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return Frame{}, err // clean EOF between frames stays io.EOF
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return Frame{}, noEOF(err)
	}
	if hdr[0] != WireVersion {
		return Frame{}, fmt.Errorf("cluster: unsupported wire version %d (have %d)", hdr[0], WireVersion)
	}
	t := FrameType(hdr[1])
	n := int(binary.LittleEndian.Uint32(hdr[2:]))
	if n > MaxRoundPayload+12 {
		return Frame{}, fmt.Errorf("cluster: frame payload %d bytes exceeds the wire maximum", n)
	}
	switch t {
	case FrameHello:
		if n != 24 {
			return Frame{}, fmt.Errorf("cluster: hello frame payload must be 24 bytes, got %d", n)
		}
		var b [24]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return Frame{}, noEOF(err)
		}
		return Frame{Type: t, Hello: Hello{
			Shard:      binary.LittleEndian.Uint32(b[0:]),
			Shards:     binary.LittleEndian.Uint32(b[4:]),
			ConfigHash: binary.LittleEndian.Uint64(b[8:]),
			Watermark:  binary.LittleEndian.Uint64(b[16:]),
		}}, nil
	case FrameHelloAck:
		if n != 8 {
			return Frame{}, fmt.Errorf("cluster: helloack frame payload must be 8 bytes, got %d", n)
		}
		var b [8]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return Frame{}, noEOF(err)
		}
		return Frame{Type: t, Watermark: binary.LittleEndian.Uint64(b[:])}, nil
	case FrameRound:
		if n < 12 {
			return Frame{}, fmt.Errorf("cluster: round frame payload must be ≥ 12 bytes, got %d", n)
		}
		var b [12]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return Frame{}, noEOF(err)
		}
		payload := make([]byte, n-12)
		if _, err := io.ReadFull(r, payload); err != nil {
			return Frame{}, noEOF(err)
		}
		return Frame{Type: t, Round: Round{
			Round:   binary.LittleEndian.Uint64(b[0:]),
			Shard:   binary.LittleEndian.Uint32(b[8:]),
			Payload: payload,
		}}, nil
	case FrameCaughtUp:
		if n != 0 {
			return Frame{}, fmt.Errorf("cluster: caughtup frame payload must be empty, got %d bytes", n)
		}
		return Frame{Type: t}, nil
	case FrameReject:
		if n > maxRejectReason {
			return Frame{}, fmt.Errorf("cluster: reject reason %d bytes exceeds the maximum %d", n, maxRejectReason)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return Frame{}, noEOF(err)
		}
		return Frame{Type: t, Reason: string(b)}, nil
	default:
		return Frame{}, fmt.Errorf("cluster: unknown frame type %d", hdr[1])
	}
}

// noEOF maps io.EOF to io.ErrUnexpectedEOF: once a frame has begun, a
// short read is corruption, not a clean end of stream.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
