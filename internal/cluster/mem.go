package cluster

import "fmt"

// MemCluster is the in-process transport: N Exchange handles sharing
// one round table. Tests use it to drive a whole cluster inside one
// process — including the kill/restore path, since the shared journal
// survives a "dead" handle and a fresh handle for the same shard can
// replay the rounds it missed, exactly like a TCP replica rejoining.
type MemCluster struct {
	h *hub
}

// NewMemCluster builds an in-process exchange for n shards, journaling
// retain completed rounds (≤ 0 means DefaultRetain).
func NewMemCluster(n, retain int) (*MemCluster, error) {
	if n < 2 {
		return nil, fmt.Errorf("cluster: need at least 2 shards, got %d", n)
	}
	return &MemCluster{h: newHub(n, retain, 0)}, nil
}

// Shard returns an Exchange handle for the given shard. Handles are
// cheap; a "restarted" replica simply asks for a new one.
func (c *MemCluster) Shard(i int) (Exchange, error) {
	if i < 0 || i >= c.h.n {
		return nil, fmt.Errorf("cluster: shard %d out of range [0,%d)", i, c.h.n)
	}
	return &memHandle{h: c.h, shard: i}, nil
}

// Close poisons the shared hub; every handle's pending and future
// Round calls return ErrClosed.
func (c *MemCluster) Close() error {
	c.h.fail(ErrClosed)
	return nil
}

type memHandle struct {
	h     *hub
	shard int
}

// Round implements Exchange: deliver locally, then block on the
// barrier. Duplicate deliveries during replay are ignored by the hub
// (first write wins), so the journaled payloads come back.
func (m *memHandle) Round(round uint64, payload []byte) ([][]byte, error) {
	m.h.deliver(round, m.shard, payload)
	return m.h.await(round)
}

// Completed implements Exchange.
func (m *memHandle) Completed() uint64 { return m.h.completedRound() }

// Shard implements Exchange.
func (m *memHandle) Shard() int { return m.shard }

// Shards implements Exchange.
func (m *memHandle) Shards() int { return m.h.n }

// Close implements Exchange. Closing a handle is a no-op: the shared
// table stays alive so surviving shards keep exchanging rounds (and so
// a restarted handle for this shard can replay) — the scenario the
// shard-loss tests exercise. Close the MemCluster to tear it all down.
func (m *memHandle) Close() error { return nil }
