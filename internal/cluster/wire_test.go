package cluster

import (
	"bufio"
	"bytes"
	"io"
	"testing"

	"xdgp/internal/core"
	"xdgp/internal/graph"
	"xdgp/internal/partition"
)

func readOne(t *testing.T, b []byte) Frame {
	t.Helper()
	f, err := ReadFrame(bufio.NewReader(bytes.NewReader(b)))
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	return f
}

func TestWireRoundtrip(t *testing.T) {
	h := Hello{Shard: 2, Shards: 3, ConfigHash: 0xdeadbeefcafe, Watermark: 41}
	if got := readOne(t, AppendHelloFrame(nil, h)); got.Type != FrameHello || got.Hello != h {
		t.Fatalf("hello roundtrip: %+v", got)
	}
	if got := readOne(t, AppendHelloAckFrame(nil, 99)); got.Type != FrameHelloAck || got.Watermark != 99 {
		t.Fatalf("helloack roundtrip: %+v", got)
	}
	frame, err := AppendRoundFrame(nil, Round{Round: 7, Shard: 1, Payload: []byte("payload")})
	if err != nil {
		t.Fatal(err)
	}
	got := readOne(t, frame)
	if got.Type != FrameRound || got.Round.Round != 7 || got.Round.Shard != 1 || string(got.Round.Payload) != "payload" {
		t.Fatalf("round roundtrip: %+v", got)
	}
	if got := readOne(t, AppendCaughtUpFrame(nil)); got.Type != FrameCaughtUp {
		t.Fatalf("caughtup roundtrip: %+v", got)
	}
	if got := readOne(t, AppendRejectFrame(nil, "nope")); got.Type != FrameReject || got.Reason != "nope" {
		t.Fatalf("reject roundtrip: %+v", got)
	}
}

func TestWireRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{2, byte(FrameHello), 24, 0, 0, 0},         // wrong version
		{1, 42, 0, 0, 0, 0},                        // unknown type
		{1, byte(FrameHello), 5, 0, 0, 0, 1, 2, 3}, // wrong hello length
		{1, byte(FrameRound), 4, 0, 0, 0, 1, 2, 3}, // round too short
		{1, byte(FrameRound), 0, 0, 0, 255},        // oversized payload length
		{1, byte(FrameCaughtUp), 1, 0, 0, 0, 9},    // caughtup with payload
		{1, byte(FrameHelloAck), 8, 0, 0, 0, 1, 2}, // truncated body
	}
	for i, b := range cases {
		if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(b))); err == nil {
			t.Fatalf("case %d: garbage frame accepted", i)
		}
	}
	// A clean EOF between frames is io.EOF, not corruption.
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(nil))); err != io.EOF {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}
}

func TestBatchPayloadRoundtrip(t *testing.T) {
	b := graph.Batch{
		{Kind: graph.MutAddEdge, U: 1, V: 2},
		{Kind: graph.MutAddEdge, U: 2, V: 3},
	}
	enc, err := AppendBatchPayload(nil, BatchPayload{StateHash: 77, MorePending: true, Batch: b})
	if err != nil {
		t.Fatal(err)
	}
	if PayloadKind(enc) != PayloadBatch {
		t.Fatalf("kind = %c", PayloadKind(enc))
	}
	got, err := DecodeBatchPayload(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.StateHash != 77 || !got.MorePending || len(got.Batch) != 2 || got.Batch[1] != b[1] {
		t.Fatalf("batch roundtrip: %+v", got)
	}
	if _, err := DecodeBatchPayload(enc[:5]); err == nil {
		t.Fatal("truncated batch payload accepted")
	}
}

func TestStepPayloadRoundtrip(t *testing.T) {
	d := &core.ShardDecision{
		Examined:  12,
		Requested: 3,
		Reqs: [][]core.ClusterReq{
			nil,
			{{V: 5, Off: 0, N: 2, W: 1}, {V: 9, Off: 2, N: 1, W: 4}},
			{{V: 30, Off: 3, N: 1, W: 1}},
		},
		Cands:     []partition.ID{2, 0, 1, 0},
		Settled:   []graph.VertexID{4, 8},
		Keeps:     []graph.VertexID{5, 9, 30},
		Parks:     []core.ClusterPark{{V: 17, Off: 0, N: 1}},
		ParkDests: []partition.ID{2},
	}
	enc, err := AppendStepPayload(nil, d)
	if err != nil {
		t.Fatal(err)
	}
	if PayloadKind(enc) != PayloadStep {
		t.Fatalf("kind = %c", PayloadKind(enc))
	}
	got, err := DecodeStepPayload(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Examined != d.Examined || got.Requested != d.Requested ||
		len(got.Reqs) != 3 || len(got.Reqs[1]) != 2 || got.Reqs[1][1] != d.Reqs[1][1] ||
		len(got.Cands) != 4 || got.Cands[0] != 2 ||
		len(got.Settled) != 2 || got.Settled[1] != 8 ||
		len(got.Keeps) != 3 || got.Keeps[2] != 30 ||
		len(got.Parks) != 1 || got.Parks[0] != d.Parks[0] ||
		len(got.ParkDests) != 1 || got.ParkDests[0] != 2 {
		t.Fatalf("step roundtrip mismatch: %+v", got)
	}
	// Truncations and trailing garbage are rejected at every boundary.
	for cut := 1; cut < len(enc); cut += 7 {
		if _, err := DecodeStepPayload(enc[:cut]); err == nil {
			t.Fatalf("truncated step payload of %d bytes accepted", cut)
		}
	}
	if _, err := DecodeStepPayload(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// FuzzReadFrame hammers the cluster RPC frame decoder with arbitrary
// bytes: it must never panic or over-allocate, and every frame it does
// accept must re-encode to bytes it accepts again.
func FuzzReadFrame(f *testing.F) {
	f.Add(AppendHelloFrame(nil, Hello{Shard: 1, Shards: 3, ConfigHash: 9, Watermark: 2}))
	f.Add(AppendHelloAckFrame(nil, 7))
	if rf, err := AppendRoundFrame(nil, Round{Round: 3, Shard: 0, Payload: []byte{1, 2, 3}}); err == nil {
		f.Add(rf)
	}
	f.Add(AppendCaughtUpFrame(nil))
	f.Add(AppendRejectFrame(nil, "reason"))
	f.Add([]byte{1, 3, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		var enc []byte
		switch fr.Type {
		case FrameHello:
			enc = AppendHelloFrame(nil, fr.Hello)
		case FrameHelloAck:
			enc = AppendHelloAckFrame(nil, fr.Watermark)
		case FrameRound:
			enc, err = AppendRoundFrame(nil, fr.Round)
			if err != nil {
				t.Fatalf("decoded round frame does not re-encode: %v", err)
			}
		case FrameCaughtUp:
			enc = AppendCaughtUpFrame(nil)
		case FrameReject:
			enc = AppendRejectFrame(nil, fr.Reason)
		}
		if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(enc))); err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
	})
}

// FuzzDecodeStepPayload hammers the step-decision decoder: arbitrary
// bytes must never panic, and accepted decisions must re-encode.
func FuzzDecodeStepPayload(f *testing.F) {
	seed, _ := AppendStepPayload(nil, &core.ShardDecision{
		Examined: 2, Requested: 1,
		Reqs:  [][]core.ClusterReq{{{V: 1, Off: 0, N: 1, W: 1}}},
		Cands: []partition.ID{1},
		Keeps: []graph.VertexID{1},
	})
	f.Add(seed)
	f.Add([]byte{'S', 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeStepPayload(data)
		if err != nil {
			return
		}
		if _, err := AppendStepPayload(nil, d); err != nil {
			t.Fatalf("decoded step payload does not re-encode: %v", err)
		}
	})
}
