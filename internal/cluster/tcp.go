package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the production transport: full-mesh TCP with
// send-direction connections. Shard i dials every peer j and uses that
// connection to push its Round frames; j's frames arrive on the
// connection j dialed to i. A dropped outbound connection simply loses
// frames — the redial handshake (Hello/HelloAck) tells each side what
// the other already has, and the journal resend covers the gap. The
// barrier semantics live entirely in the shared hub; TCP only moves
// payloads.
//
// Startup doubles as rejoin: NewTCP dials every peer, announces its
// checkpoint watermark in the Hello, and blocks until each peer has
// pushed its journal above that watermark and said CaughtUp. A replica
// restarted from an old checkpoint therefore has every missed round —
// its own pre-crash payloads included, handed back by the peers that
// journaled them — before the server replays its first round. A
// watermark older than a peer's journal floor is Rejected: restore
// from a newer checkpoint instead.

// tcpWriteTimeout bounds every frame write; a peer that cannot take a
// frame for this long is treated as disconnected (the journal covers
// the gap after redial).
const tcpWriteTimeout = 30 * time.Second

// tcpRedialDelay is the pause between reconnect attempts to a dead
// peer.
const tcpRedialDelay = 250 * time.Millisecond

// TCPConfig configures one shard's TCP exchange.
type TCPConfig struct {
	// Shard and Shards are this process's shard index and the cluster
	// size (≥ 2).
	Shard  int
	Shards int
	// Listener accepts the peers' send-direction connections. The
	// exchange owns it from NewTCP on and closes it on Close.
	Listener net.Listener
	// Peers holds one dialable address per shard, indexed by shard ID;
	// Peers[Shard] is this process and is never dialed.
	Peers []string
	// ConfigHash fingerprints the deterministic configuration (seed, K,
	// shard count, …). Peers with a different hash are rejected — mixed
	// configs cannot agree byte-for-byte, so failing loudly beats
	// diverging silently.
	ConfigHash uint64
	// Watermark is the round count restored from this replica's
	// checkpoint: rounds ≤ Watermark are already applied locally, and
	// peers resend everything above it during the startup handshake.
	Watermark uint64
	// Retain overrides the journal depth (≤ 0 means DefaultRetain).
	Retain int
	// Logf, when set, receives connection lifecycle messages.
	Logf func(format string, args ...any)
}

// TCP is the TCP-mesh Exchange implementation for one shard.
type TCP struct {
	cfg   TCPConfig
	h     *hub
	peers []*tcpPeer // indexed by shard; nil at own index

	closed     atomic.Bool
	wg         sync.WaitGroup
	reconnects atomic.Uint64

	inMu    sync.Mutex
	inConns map[net.Conn]struct{}
}

type tcpPeer struct {
	addr string

	mu      sync.Mutex
	conn    net.Conn
	dialing bool
}

// NewTCP starts one shard's exchange: it serves inbound connections on
// cfg.Listener, dials every peer, and blocks until each peer finishes
// its catch-up push (so journal replay is complete before the first
// Round call). A full cluster can start concurrently — every node
// listens before dialing.
func NewTCP(cfg TCPConfig) (*TCP, error) {
	if cfg.Shards < 2 {
		return nil, fmt.Errorf("cluster: need at least 2 shards, got %d", cfg.Shards)
	}
	if cfg.Shard < 0 || cfg.Shard >= cfg.Shards {
		return nil, fmt.Errorf("cluster: shard %d out of range [0,%d)", cfg.Shard, cfg.Shards)
	}
	if len(cfg.Peers) != cfg.Shards {
		return nil, fmt.Errorf("cluster: %d peer addresses for %d shards", len(cfg.Peers), cfg.Shards)
	}
	if cfg.Listener == nil {
		return nil, fmt.Errorf("cluster: listener required")
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	t := &TCP{
		cfg:     cfg,
		h:       newHub(cfg.Shards, cfg.Retain, cfg.Watermark),
		peers:   make([]*tcpPeer, cfg.Shards),
		inConns: make(map[net.Conn]struct{}),
	}
	for i, addr := range cfg.Peers {
		if i != cfg.Shard {
			t.peers[i] = &tcpPeer{addr: addr}
		}
	}
	t.wg.Add(1)
	go t.acceptLoop()

	// Dial everyone and wait out their catch-up pushes so the journal
	// holds every round above our watermark before the server replays.
	caught := make(chan int, cfg.Shards)
	for i, p := range t.peers {
		if p == nil {
			continue
		}
		t.wg.Add(1)
		go t.dialLoop(i, p, caught)
	}
	need := cfg.Shards - 1
	for need > 0 {
		select {
		case <-caught:
			need--
		case <-time.After(100 * time.Millisecond):
			if err := t.hubErr(); err != nil {
				t.Close() //nolint:errcheck // already failing
				return nil, err
			}
		}
	}
	return t, nil
}

func (t *TCP) hubErr() error {
	t.h.mu.Lock()
	defer t.h.mu.Unlock()
	return t.h.err
}

// Round implements Exchange.
func (t *TCP) Round(round uint64, payload []byte) ([][]byte, error) {
	if len(payload) > MaxRoundPayload {
		return nil, fmt.Errorf("cluster: round payload %d bytes exceeds the wire maximum", len(payload))
	}
	t.h.deliver(round, t.cfg.Shard, payload)
	frame, err := AppendRoundFrame(nil, Round{Round: round, Shard: uint32(t.cfg.Shard), Payload: payload})
	if err != nil {
		return nil, err
	}
	for i, p := range t.peers {
		if p == nil {
			continue
		}
		if !t.sendToPeer(p, frame) {
			t.cfg.Logf("cluster: shard %d unreachable for round %d (journal will cover it after redial)", i, round)
		}
	}
	return t.h.await(round)
}

// Completed implements Exchange.
func (t *TCP) Completed() uint64 { return t.h.completedRound() }

// Shard implements Exchange.
func (t *TCP) Shard() int { return t.cfg.Shard }

// Shards implements Exchange.
func (t *TCP) Shards() int { return t.cfg.Shards }

// Reconnects reports how many times an outbound peer connection had to
// be re-established.
func (t *TCP) Reconnects() uint64 { return t.reconnects.Load() }

// Close implements Exchange: the listener and every connection close,
// and pending Round calls return ErrClosed.
func (t *TCP) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	t.h.fail(ErrClosed)
	t.cfg.Listener.Close() //nolint:errcheck // teardown
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close() //nolint:errcheck // teardown
			p.conn = nil
		}
		p.mu.Unlock()
	}
	t.inMu.Lock()
	for c := range t.inConns {
		c.Close() //nolint:errcheck // teardown
	}
	t.inMu.Unlock()
	t.wg.Wait()
	return nil
}

// sendToPeer writes one frame on the peer's live connection; false
// means the peer is currently unreachable (a redial is triggered and
// the journal covers the gap).
func (t *TCP) sendToPeer(p *tcpPeer, frame []byte) bool {
	p.mu.Lock()
	conn := p.conn
	p.mu.Unlock()
	if conn == nil {
		return false
	}
	conn.SetWriteDeadline(time.Now().Add(tcpWriteTimeout)) //nolint:errcheck // net.Conn deadlines
	if _, err := conn.Write(frame); err != nil {
		p.mu.Lock()
		if p.conn == conn {
			p.conn = nil
		}
		p.mu.Unlock()
		conn.Close() //nolint:errcheck // already broken
		return false
	}
	return true
}

// dialLoop keeps the outbound connection to one peer alive: dial,
// handshake, resend the journal the peer is missing, then read its
// catch-up stream until the connection dies; repeat. The first
// completed catch-up is signalled on caught.
func (t *TCP) dialLoop(shard int, p *tcpPeer, caught chan<- int) {
	defer t.wg.Done()
	var once sync.Once
	signal := func() { once.Do(func() { caught <- shard }) }
	first := true
	for !t.closed.Load() {
		conn, err := net.DialTimeout("tcp", p.addr, 5*time.Second)
		if err != nil {
			time.Sleep(tcpRedialDelay)
			continue
		}
		if !first {
			t.reconnects.Add(1)
		}
		first = false
		if !t.runOutbound(shard, p, conn, signal) {
			return // fatal (reject) or closed
		}
	}
}

// runOutbound drives one live outbound connection; it returns false
// when the exchange must stop redialing (closed or rejected). signal
// fires (once) when the peer's catch-up push completes.
func (t *TCP) runOutbound(shard int, p *tcpPeer, conn net.Conn, signal func()) bool {
	defer conn.Close()
	hello := AppendHelloFrame(nil, Hello{
		Shard:      uint32(t.cfg.Shard),
		Shards:     uint32(t.cfg.Shards),
		ConfigHash: t.cfg.ConfigHash,
		Watermark:  t.h.completedRound(),
	})
	conn.SetWriteDeadline(time.Now().Add(tcpWriteTimeout)) //nolint:errcheck // net.Conn deadlines
	if _, err := conn.Write(hello); err != nil {
		return !t.closed.Load()
	}
	br := bufio.NewReaderSize(conn, 1<<16)
	conn.SetReadDeadline(time.Now().Add(tcpWriteTimeout)) //nolint:errcheck // handshake must not hang Close
	f, err := ReadFrame(br)
	conn.SetReadDeadline(time.Time{}) //nolint:errcheck // back to blocking reads
	if err != nil {
		if !t.closed.Load() {
			time.Sleep(tcpRedialDelay)
		}
		return !t.closed.Load()
	}
	switch f.Type {
	case FrameReject:
		err := fmt.Errorf("cluster: shard %d rejected us: %s", shard, f.Reason)
		t.cfg.Logf("%v", err)
		t.h.fail(err)
		return false
	case FrameHelloAck:
	default:
		t.cfg.Logf("cluster: shard %d answered hello with %v", shard, f.Type)
		return !t.closed.Load()
	}
	// Resend what the peer is missing from us.
	for _, e := range t.h.ownAfter(f.Watermark, t.cfg.Shard) {
		frame, err := AppendRoundFrame(nil, Round{Round: e.round, Shard: uint32(e.shard), Payload: e.payload})
		if err != nil {
			continue
		}
		conn.SetWriteDeadline(time.Now().Add(tcpWriteTimeout)) //nolint:errcheck // net.Conn deadlines
		if _, err := conn.Write(frame); err != nil {
			return !t.closed.Load()
		}
	}
	p.mu.Lock()
	p.conn = conn
	p.mu.Unlock()
	// Read the peer's catch-up stream (and any later frames it chooses
	// to push on this connection).
	for {
		f, err := ReadFrame(br)
		if err != nil {
			p.mu.Lock()
			if p.conn == conn {
				p.conn = nil
			}
			p.mu.Unlock()
			return !t.closed.Load()
		}
		switch f.Type {
		case FrameRound:
			t.h.deliver(f.Round.Round, int(f.Round.Shard), f.Round.Payload)
		case FrameCaughtUp:
			signal()
		case FrameReject:
			err := fmt.Errorf("cluster: shard %d rejected us: %s", shard, f.Reason)
			t.cfg.Logf("%v", err)
			t.h.fail(err)
			return false
		default:
			t.cfg.Logf("cluster: unexpected %v frame from shard %d", f.Type, shard)
		}
	}
}

// acceptLoop serves the peers' send-direction connections.
func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.cfg.Listener.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			if t.closed.Load() {
				return
			}
			t.cfg.Logf("cluster: accept: %v", err)
			continue
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.serveInbound(conn)
		}()
	}
}

// serveInbound handles one peer's send-direction connection: validate
// its Hello, push the journal it is missing (ending with CaughtUp),
// then deliver its Round frames until the connection dies.
func (t *TCP) serveInbound(conn net.Conn) {
	defer conn.Close()
	t.inMu.Lock()
	t.inConns[conn] = struct{}{}
	t.inMu.Unlock()
	defer func() {
		t.inMu.Lock()
		delete(t.inConns, conn)
		t.inMu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 1<<16)
	f, err := ReadFrame(br)
	if err != nil || f.Type != FrameHello {
		return
	}
	h := f.Hello
	if int(h.Shards) != t.cfg.Shards || int(h.Shard) == t.cfg.Shard || int(h.Shard) >= t.cfg.Shards {
		t.writeFrame(conn, AppendRejectFrame(nil, fmt.Sprintf("geometry mismatch: you are shard %d of %d, I am shard %d of %d", h.Shard, h.Shards, t.cfg.Shard, t.cfg.Shards)))
		return
	}
	if h.ConfigHash != t.cfg.ConfigHash {
		t.writeFrame(conn, AppendRejectFrame(nil, "config hash mismatch: the cluster must share seed, K and shard count"))
		return
	}
	floor := func() uint64 { t.h.mu.Lock(); defer t.h.mu.Unlock(); return t.h.floor }()
	if h.Watermark+1 < floor {
		t.writeFrame(conn, AppendRejectFrame(nil, fmt.Sprintf("journal gap: you completed round %d, my journal starts at %d — restore from a newer checkpoint", h.Watermark, floor)))
		return
	}
	if !t.writeFrame(conn, AppendHelloAckFrame(nil, t.h.completedRound())) {
		return
	}
	// Catch-up push: everything we journaled above the peer's
	// watermark, its own old payloads included — that is how a replica
	// restored from a checkpoint gets its pre-crash contributions back.
	for _, e := range t.h.journalAfter(h.Watermark) {
		frame, err := AppendRoundFrame(nil, Round{Round: e.round, Shard: uint32(e.shard), Payload: e.payload})
		if err != nil {
			continue
		}
		if !t.writeFrame(conn, frame) {
			return
		}
	}
	if !t.writeFrame(conn, AppendCaughtUpFrame(nil)) {
		return
	}
	for {
		f, err := ReadFrame(br)
		if err != nil {
			return
		}
		if f.Type != FrameRound {
			t.cfg.Logf("cluster: unexpected %v frame from shard %d", f.Type, h.Shard)
			continue
		}
		t.h.deliver(f.Round.Round, int(f.Round.Shard), f.Round.Payload)
	}
}

func (t *TCP) writeFrame(conn net.Conn, frame []byte) bool {
	conn.SetWriteDeadline(time.Now().Add(tcpWriteTimeout)) //nolint:errcheck // net.Conn deadlines
	_, err := conn.Write(frame)
	return err == nil
}
