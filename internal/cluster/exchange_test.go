package cluster

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// runRounds drives n handles through rounds [from, to] concurrently,
// each submitting a payload derived from (round, shard), and verifies
// every handle sees the identical full payload set per round.
func runRounds(t *testing.T, handles []Exchange, from, to uint64) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, len(handles))
	for s, ex := range handles {
		wg.Add(1)
		go func(s int, ex Exchange) {
			defer wg.Done()
			for r := from; r <= to; r++ {
				got, err := ex.Round(r, roundPayload(r, s))
				if err != nil {
					errs <- fmt.Errorf("shard %d round %d: %w", s, r, err)
					return
				}
				for i, p := range got {
					if !bytes.Equal(p, roundPayload(r, i)) {
						errs <- fmt.Errorf("shard %d round %d: payload %d = %q", s, r, i, p)
						return
					}
				}
			}
		}(s, ex)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func roundPayload(r uint64, shard int) []byte {
	return []byte(fmt.Sprintf("r%d-s%d", r, shard))
}

func TestMemExchangeBarrier(t *testing.T) {
	c, err := NewMemCluster(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	handles := make([]Exchange, 3)
	for i := range handles {
		if handles[i], err = c.Shard(i); err != nil {
			t.Fatal(err)
		}
	}
	runRounds(t, handles, 1, 20)
	if got := handles[0].Completed(); got != 20 {
		t.Fatalf("completed = %d, want 20", got)
	}
}

// TestMemExchangeReplay is the in-process rejoin path: a "restarted"
// shard takes a fresh handle and re-runs old rounds — the journal must
// hand back the original payloads, ignoring whatever the restarted
// replica submits.
func TestMemExchangeReplay(t *testing.T) {
	c, err := NewMemCluster(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a, _ := c.Shard(0)
	b, _ := c.Shard(1)
	runRounds(t, []Exchange{a, b}, 1, 5)

	reborn, _ := c.Shard(1)
	if got := reborn.Completed(); got != 5 {
		t.Fatalf("completed = %d, want 5", got)
	}
	for r := uint64(1); r <= 5; r++ {
		got, err := reborn.Round(r, []byte("fresh-and-wrong"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[1], roundPayload(r, 1)) {
			t.Fatalf("round %d: replay returned %q, want the journaled payload", r, got[1])
		}
	}
}

func TestMemExchangeJournalEviction(t *testing.T) {
	c, err := NewMemCluster(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a, _ := c.Shard(0)
	b, _ := c.Shard(1)
	runRounds(t, []Exchange{a, b}, 1, 20)
	if _, err := a.Round(2, nil); err == nil {
		t.Fatal("evicted round replayed without error")
	}
}

func TestMemExchangeClose(t *testing.T) {
	c, err := NewMemCluster(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := c.Shard(0)
	done := make(chan error, 1)
	go func() {
		_, err := a.Round(1, nil) // blocks: shard 1 never arrives
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Round returned nil after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Round still blocked after Close")
	}
}

// startTCPNode opens a listener and a TCP exchange for one shard;
// addrs must already hold every shard's listen address.
func startTCPNode(t *testing.T, shard int, lns []net.Listener, addrs []string, watermark uint64) *TCP {
	t.Helper()
	ex, err := NewTCP(TCPConfig{
		Shard:      shard,
		Shards:     len(addrs),
		Listener:   lns[shard],
		Peers:      addrs,
		ConfigHash: 0xfeed,
		Watermark:  watermark,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatalf("shard %d: %v", shard, err)
	}
	return ex
}

func clusterListeners(t *testing.T, n int) ([]net.Listener, []string) {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	return lns, addrs
}

func TestTCPExchangeRounds(t *testing.T) {
	const n = 3
	lns, addrs := clusterListeners(t, n)
	handles := make([]Exchange, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			handles[i] = startTCPNode(t, i, lns, addrs, 0)
		}(i)
	}
	wg.Wait()
	defer func() {
		for _, h := range handles {
			h.Close() //nolint:errcheck // teardown
		}
	}()
	runRounds(t, handles, 1, 30)
}

// TestTCPExchangeRejoin kills one node mid-run and restarts it from an
// older watermark: the survivors' journals must replay the missed
// rounds (the dead node's own payloads included) before live rounds
// resume.
func TestTCPExchangeRejoin(t *testing.T) {
	const n = 3
	lns, addrs := clusterListeners(t, n)
	handles := make([]Exchange, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			handles[i] = startTCPNode(t, i, lns, addrs, 0)
		}(i)
	}
	wg.Wait()
	runRounds(t, handles, 1, 10)

	// Kill shard 2. Its listener dies with it.
	handles[2].Close() //nolint:errcheck // simulated crash
	defer handles[0].Close()
	defer handles[1].Close()

	// Survivors push rounds 11..13; they block awaiting shard 2, so run
	// them in the background.
	surv := make(chan error, 2)
	for s := 0; s < 2; s++ {
		go func(s int) {
			for r := uint64(11); r <= 13; r++ {
				if _, err := handles[s].Round(r, roundPayload(r, s)); err != nil {
					surv <- err
					return
				}
			}
			surv <- nil
		}(s)
	}

	// Restart shard 2 from watermark 4: rounds 5..10 must replay from
	// the peers' journals, then 11..13 complete live.
	ln, err := net.Listen("tcp", addrs[2])
	if err != nil {
		t.Fatal(err)
	}
	lns[2] = ln
	reborn := startTCPNode(t, 2, lns, addrs, 4)
	defer reborn.Close()
	if got := reborn.Completed(); got < 10 {
		t.Fatalf("rejoined with completed = %d, want ≥ 10 (journal replay)", got)
	}
	for r := uint64(5); r <= 13; r++ {
		got, err := reborn.Round(r, roundPayload(r, 2))
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		for i, p := range got {
			if !bytes.Equal(p, roundPayload(r, i)) {
				t.Fatalf("round %d: payload %d = %q after rejoin", r, i, p)
			}
		}
	}
	for s := 0; s < 2; s++ {
		if err := <-surv; err != nil {
			t.Fatalf("survivor: %v", err)
		}
	}
}

func TestTCPExchangeRejectsConfigMismatch(t *testing.T) {
	lns, addrs := clusterListeners(t, 2)
	done := make(chan *TCP, 1)
	go func() {
		ex, err := NewTCP(TCPConfig{
			Shard: 0, Shards: 2, Listener: lns[0], Peers: addrs,
			ConfigHash: 0xfeed, Logf: t.Logf,
		})
		if err != nil {
			done <- nil
			return
		}
		done <- ex
	}()
	_, err := NewTCP(TCPConfig{
		Shard: 1, Shards: 2, Listener: lns[1], Peers: addrs,
		ConfigHash: 0xbad, Logf: t.Logf, // different deterministic config
	})
	if err == nil {
		t.Fatal("mismatched config hash accepted")
	}
	if ex := <-done; ex != nil {
		ex.Close() //nolint:errcheck // teardown
	}
}
